// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark rebuilds the corresponding testbed and workload from
// scratch per iteration and reports the headline quantity the paper plots,
// printing the full row set once.
//
// Absolute numbers are not expected to match the authors' 2015 testbed; the
// shapes (who wins, by what rough factor) are the reproduction target and
// are recorded against the paper in EXPERIMENTS.md.
//
// Dataset scale defaults to 0.05 of paper sizes so the suite runs in
// minutes; set VREAD_BENCH_SCALE (e.g. "1.0") for paper-scale runs.
package vread

import (
	"os"
	"strconv"
	"testing"
)

func benchOpts() Options {
	opt := Options{Seed: 1, Scale: 0.05}
	if s := os.Getenv("VREAD_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			opt.Scale = v
		}
	}
	return opt
}

// BenchmarkFig2ReadDelayMotivation regenerates Figure 2: HDFS-in-VM vs
// local-FS read delay, ±cache, request sizes 64KB/1MB/4MB.
func BenchmarkFig2ReadDelayMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatFig2(rows))
			// Headline: cold 1MB inter-VM/local delay ratio.
			for _, r := range rows {
				if r.ReqSize == 1<<20 && !r.Cached {
					b.ReportMetric(float64(r.InterVM)/float64(r.Local), "interVM/local")
				}
			}
		}
	}
}

// BenchmarkFig3IOThreadSync regenerates Figure 3: netperf TCP_RR rate with
// and without lookbusy VMs.
func BenchmarkFig3IOThreadSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatFig3(rows))
			rate := map[[2]int64]float64{}
			for _, r := range rows {
				rate[[2]int64{r.ReqSize, int64(r.VMs)}] = r.Rate
			}
			drop := (1 - rate[[2]int64{32 << 10, 4}]/rate[[2]int64{32 << 10, 2}]) * 100
			b.ReportMetric(drop, "%drop-4vms")
		}
	}
}

// BenchmarkFig6CPUColocated regenerates Figure 6: CPU breakdowns for the
// co-located read.
func BenchmarkFig6CPUColocated(b *testing.B) {
	benchBreakdown(b, "Figure 6 (co-located)", RunFig6)
}

// BenchmarkFig7CPURemoteRDMA regenerates Figure 7: CPU breakdowns for the
// remote read over RDMA daemons.
func BenchmarkFig7CPURemoteRDMA(b *testing.B) {
	benchBreakdown(b, "Figure 7 (remote, RDMA)", RunFig7)
}

// BenchmarkFig8CPURemoteTCP regenerates Figure 8: CPU breakdowns for the
// remote read over TCP daemons.
func BenchmarkFig8CPURemoteTCP(b *testing.B) {
	benchBreakdown(b, "Figure 8 (remote, TCP)", RunFig8)
}

func benchBreakdown(b *testing.B, title string, run func(Options) ([]BreakdownRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatBreakdowns(title, rows))
			var vr, va float64
			for _, r := range rows {
				if r.Side == "datanode" {
					if r.System == "vRead" {
						vr = r.Total()
					} else {
						va = r.Total()
					}
				}
			}
			if va > 0 {
				b.ReportMetric((1-vr/va)*100, "%dn-cpu-saved")
			}
		}
	}
}

// BenchmarkFig9ReadDelay regenerates Figure 9: vanilla vs vRead read delay.
func BenchmarkFig9ReadDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatFig9(rows))
			var maxRed float64
			for _, r := range rows {
				if red := (1 - float64(r.VRead)/float64(r.Vanilla)) * 100; red > maxRed {
					maxRed = red
				}
			}
			b.ReportMetric(maxRed, "%max-delay-reduction")
		}
	}
}

// BenchmarkFig11DFSIOThroughput regenerates Figure 11's full grid
// (scenario × VMs × frequency × system, read and re-read).
func BenchmarkFig11DFSIOThroughput(b *testing.B) {
	benchDFSIO(b, true)
}

// BenchmarkFig12DFSIOCPUTime regenerates Figure 12 from the same grid.
func BenchmarkFig12DFSIOCPUTime(b *testing.B) {
	benchDFSIO(b, false)
}

func benchDFSIO(b *testing.B, throughput bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := RunFig11and12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatDFSIO(rows))
			get := func(sys, mode string) float64 {
				for _, r := range rows {
					if r.Scenario == Colocated && r.VMs == 2 && r.FreqHz == 2_000_000_000 &&
						r.System == sys && r.Mode == mode {
						if throughput {
							return r.Throughput
						}
						return r.CPUTimeMs
					}
				}
				return 0
			}
			if throughput {
				b.ReportMetric((get("vRead", "read")/get("vanilla", "read")-1)*100, "%read-gain")
				b.ReportMetric((get("vRead", "re-read")/get("vanilla", "re-read")-1)*100, "%reread-gain")
			} else {
				b.ReportMetric((1-get("vRead", "read")/get("vanilla", "read"))*100, "%cpu-saved")
			}
		}
	}
}

// BenchmarkFig13WriteThroughput regenerates Figure 13: write throughput
// with the vRead refresh on the write path.
func BenchmarkFig13WriteThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatFig13(rows))
			var vr, va float64
			for _, r := range rows {
				if r.Scenario == Colocated {
					if r.System == "vRead" {
						vr = r.Throughput
					} else {
						va = r.Throughput
					}
				}
			}
			b.ReportMetric((1-vr/va)*100, "%write-overhead")
		}
	}
}

// BenchmarkTable2HBase regenerates Table 2: HBase PE scan / sequential /
// random read throughput.
func BenchmarkTable2HBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatTable2(rows))
			for _, r := range rows {
				b.ReportMetric(r.Improvement(), "%"+r.Phase)
			}
		}
	}
}

// BenchmarkTable3HiveSqoop regenerates Table 3: Hive select and Sqoop
// export completion times.
func BenchmarkTable3HiveSqoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatTable3(rows))
			for _, r := range rows {
				b.ReportMetric(r.Reduction(), "%"+r.Workload[:4])
			}
		}
	}
}

// BenchmarkAblationRingSlots sweeps the ring geometry (§3.3's 1024×4KiB
// slots, batched doorbells).
func BenchmarkAblationRingSlots(b *testing.B) { benchAblation(b, RunAblationRingSlots) }

// BenchmarkAblationDirectRead compares the mounted-FS daemon path with §6's
// raw-device bypass.
func BenchmarkAblationDirectRead(b *testing.B) { benchAblation(b, RunAblationDirectRead) }

// BenchmarkAblationRemoteTransport compares RDMA and TCP daemon transports.
func BenchmarkAblationRemoteTransport(b *testing.B) { benchAblation(b, RunAblationTransport) }

// BenchmarkAblationShortCircuit compares §2.2's alternatives (vanilla,
// shared-memory networking, short-circuit local reads, vRead).
func BenchmarkAblationShortCircuit(b *testing.B) { benchAblation(b, RunAblationShortCircuit) }

// BenchmarkAblationSRIOV reproduces §6's modern-hardware interplay:
// SR-IOV helps the wire, vRead removes the datanode VM, and they compose.
func BenchmarkAblationSRIOV(b *testing.B) { benchAblation(b, RunAblationSRIOV) }

func benchAblation(b *testing.B, run func(Options) ([]AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", FormatAblations(rows))
		}
	}
}
