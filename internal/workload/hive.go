package workload

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// HiveConfig parameterizes the Hive study (Table 3, column 2): a table of
// user records in HDFS and a `select * from test where id >= x and id <= y`
// full scan, run as a MapReduce job (one map per table file).
type HiveConfig struct {
	// Rows in the table. The paper loads 30 million. Default 1M.
	Rows int64
	// RowBytes per record (id, name, birthday, ...). Default 350.
	RowBytes int64
	// Files the table is stored as. Default 4.
	Files int
	// FilterCyclesPerRow is deserialization + predicate evaluation.
	// Default 400.
	FilterCyclesPerRow int64
	// Dir is the HDFS directory.
	Dir string
	// Seed varies content.
	Seed uint64
}

// WithDefaults fills zero fields.
func (c HiveConfig) WithDefaults() HiveConfig {
	if c.Rows == 0 {
		c.Rows = 1_000_000
	}
	if c.RowBytes == 0 {
		c.RowBytes = 350
	}
	if c.Files == 0 {
		c.Files = 4
	}
	if c.FilterCyclesPerRow == 0 {
		c.FilterCyclesPerRow = 400
	}
	if c.Dir == "" {
		c.Dir = "/user/hive/warehouse/test"
	}
	return c
}

func (c HiveConfig) filePath(f int) string { return fmt.Sprintf("%s/part-%05d", c.Dir, f) }

// SetupHiveTable loads the table into HDFS.
func SetupHiveTable(p *sim.Proc, client *hdfs.Client, cfg HiveConfig) error {
	cfg = cfg.WithDefaults()
	perFile := (cfg.Rows + int64(cfg.Files) - 1) / int64(cfg.Files)
	remaining := cfg.Rows
	for f := 0; f < cfg.Files && remaining > 0; f++ {
		rows := perFile
		if rows > remaining {
			rows = remaining
		}
		content := data.Pattern{Seed: cfg.Seed + uint64(f), Size: rows * cfg.RowBytes}
		if err := client.WriteFile(p, cfg.filePath(f), content); err != nil {
			return err
		}
		remaining -= rows
	}
	return nil
}

// HiveResult is one query's outcome.
type HiveResult struct {
	Rows    int64
	Bytes   int64
	Elapsed time.Duration
}

// RunHiveSelect executes the range-select scan as a MapReduce job and
// returns the query completion time (Table 3's metric).
func RunHiveSelect(p *sim.Proc, e *mapred.Engine, cfg HiveConfig) (HiveResult, error) {
	cfg = cfg.WithDefaults()
	env := p.Env()
	start := env.Now()
	tasks := make([]mapred.Task, cfg.Files)
	for f := range tasks {
		f := f
		tasks[f] = mapred.Task{ID: f, Fn: func(tp *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			r, err := tr.Client.Open(tp, cfg.filePath(f))
			if err != nil {
				return nil, err
			}
			defer r.Close(tp)
			var scanned, carry int64
			for {
				s, err := r.Read(tp, 128<<10)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					return nil, err
				}
				carry += s.Len()
				rows := carry / cfg.RowBytes
				carry -= rows * cfg.RowBytes
				tr.Kernel.VCPU().Run(tp, rows*cfg.FilterCyclesPerRow, metrics.TagClientApp)
				scanned += rows
			}
			return scanned, nil
		}}
	}
	job := e.Run(p, "hive-select", tasks)
	if failed := job.Failed(); len(failed) > 0 {
		return HiveResult{}, fmt.Errorf("workload: hive: %v", failed[0].Err)
	}
	var rows int64
	for _, tr := range job.Results {
		rows += tr.Value.(int64)
	}
	return HiveResult{Rows: rows, Bytes: rows * cfg.RowBytes, Elapsed: env.Now() - start}, nil
}
