package workload

import (
	"encoding/binary"
	"fmt"
	"time"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// NetperfPort is the control+data port of the netperf-style server.
const NetperfPort = 12865

// netperfAppCycles is the tiny per-transaction application work on each side.
const netperfAppCycles = 2000

// NetperfResult is one TCP_RR run's outcome.
type NetperfResult struct {
	Transactions int64
	Elapsed      time.Duration
}

// Rate returns transactions per second (Figure 3's y axis).
func (r NetperfResult) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Transactions) / r.Elapsed.Seconds()
}

// StartNetperfServer runs a request/response echo server in the kernel.
// Each accepted connection first carries a 16-byte size negotiation
// (request size, response size), then transactions until close.
func StartNetperfServer(k *guest.Kernel) {
	l := k.Listen(NetperfPort)
	k.Env().Go("netserver:"+k.Name(), func(p *sim.Proc) {
		for {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			k.Env().Go(fmt.Sprintf("netserver:%s:conn", k.Name()), func(hp *sim.Proc) {
				serveNetperfConn(hp, k, conn)
			})
		}
	})
}

func serveNetperfConn(p *sim.Proc, k *guest.Kernel, conn *guest.Conn) {
	hdr, ok := conn.RecvFull(p, 16)
	if !ok {
		return
	}
	b := hdr.Bytes()
	reqSize := int64(binary.BigEndian.Uint64(b[0:]))
	respSize := int64(binary.BigEndian.Uint64(b[8:]))
	resp := data.NewSlice(data.Pattern{Seed: 0xBEEF, Size: respSize})
	for {
		if _, ok := conn.RecvFull(p, reqSize); !ok {
			return
		}
		k.VCPU().Run(p, netperfAppCycles, metrics.TagOthers)
		if err := conn.Send(p, resp); err != nil {
			return
		}
	}
}

// RunNetperfRR drives TCP_RR transactions of the given request size (1-byte
// responses, netperf's default) for the duration and returns the measured
// rate.
func RunNetperfRR(p *sim.Proc, k *guest.Kernel, serverVM string, reqSize int64, dur time.Duration) (NetperfResult, error) {
	conn, err := k.Dial(p, serverVM, NetperfPort)
	if err != nil {
		return NetperfResult{}, err
	}
	defer conn.Close(p)
	respSize := int64(1)
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint64(hdr[0:], uint64(reqSize))
	binary.BigEndian.PutUint64(hdr[8:], uint64(respSize))
	if err := conn.Send(p, data.NewSlice(data.Bytes(hdr))); err != nil {
		return NetperfResult{}, err
	}
	req := data.NewSlice(data.Pattern{Seed: 0xFEED, Size: reqSize})
	env := k.Env()
	start := env.Now()
	var n int64
	for env.Now()-start < dur {
		k.VCPU().Run(p, netperfAppCycles, metrics.TagOthers)
		if err := conn.Send(p, req); err != nil {
			return NetperfResult{}, err
		}
		if _, ok := conn.RecvFull(p, respSize); !ok {
			break
		}
		n++
	}
	return NetperfResult{Transactions: n, Elapsed: env.Now() - start}, nil
}
