package workload

import (
	"testing"
	"time"

	"vread/internal/sim"
)

// TestOpenLoopArrivalsIndependent: arrivals keep their schedule even when
// operations run long — the queueing shows up in latency, not in a stretched
// arrival timeline (the open-loop property).
func TestOpenLoopArrivalsIndependent(t *testing.T) {
	env := sim.NewEnv(1)
	var results []OpResult
	env.Go("gen", func(p *sim.Proc) {
		results = RunOpenLoop(p, env, OpenLoopConfig{QPS: 1000, Arrivals: 10}, func(op *sim.Proc, i int) string {
			op.Sleep(5 * time.Millisecond) // 5× the 1 ms arrival period
			return "ok"
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	period := time.Millisecond
	for i, r := range results {
		if r.Start != time.Duration(i)*period {
			t.Fatalf("arrival %d at %v, want %v — arrivals waited on completions", i, r.Start, time.Duration(i)*period)
		}
		if r.Latency != 5*time.Millisecond {
			t.Fatalf("arrival %d latency %v", i, r.Latency)
		}
		if r.Label != "ok" {
			t.Fatalf("arrival %d label %q", i, r.Label)
		}
	}
}

// TestOpenLoopExponentialDeterministic: Poisson arrivals replay exactly for
// a fixed seed.
func TestOpenLoopExponentialDeterministic(t *testing.T) {
	run := func() []OpResult {
		env := sim.NewEnv(7)
		var results []OpResult
		env.Go("gen", func(p *sim.Proc) {
			results = RunOpenLoop(p, env, OpenLoopConfig{QPS: 2000, Arrivals: 20, Exponential: true},
				func(op *sim.Proc, i int) string { return "ok" })
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSLOOf checks the nearest-rank percentiles on a known ladder.
func TestSLOOf(t *testing.T) {
	var results []OpResult
	for i := 1; i <= 100; i++ {
		results = append(results, OpResult{Latency: time.Duration(i) * time.Millisecond, Label: "ok"})
	}
	results = append(results, OpResult{Latency: time.Hour, Label: "typed"}) // other label: excluded
	slo := SLOOf(results, "ok")
	if slo.Count != 100 {
		t.Fatalf("count = %d", slo.Count)
	}
	if slo.P50 != 50*time.Millisecond || slo.P95 != 95*time.Millisecond ||
		slo.P99 != 99*time.Millisecond || slo.Max != 100*time.Millisecond {
		t.Fatalf("percentiles: %+v", slo)
	}
	if empty := SLOOf(results, "nope"); empty.Count != 0 || empty.Max != 0 {
		t.Fatalf("empty label SLO = %+v", empty)
	}
}

// TestLabelCounts is deterministic and sorted.
func TestLabelCounts(t *testing.T) {
	results := []OpResult{{Label: "b"}, {Label: "a"}, {Label: "b"}}
	got := LabelCounts(results)
	if len(got) != 2 || got[0] != (LabelCount{"a", 1}) || got[1] != (LabelCount{"b", 2}) {
		t.Fatalf("LabelCounts = %v", got)
	}
}
