package workload

import (
	"fmt"
	"math/rand"
	"time"

	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/storage"
)

// HBaseConfig parameterizes the HBase PerformanceEvaluation emulation
// (Table 2). The store models HBase-0.94 semantics at the HDFS boundary:
// a table is a set of HFiles in HDFS; gets pread one HFile block and decode
// it; scans stream whole files; the region server's own CPU work per
// operation is a calibrated constant.
type HBaseConfig struct {
	// Rows in the table. The paper inserts 5 million. Default 100k (tests
	// scale it up via experiments).
	Rows int64
	// RowBytes per row. Default 1 KiB (PE's default value size).
	RowBytes int64
	// HFiles is the number of store files. Default 4.
	HFiles int
	// BlockBytes is the HFile block read per get/scan step. Default 64 KiB
	// (HBase-0.94's default block size).
	BlockBytes int64
	// OpCycles is region-server CPU per get (RPC, memstore/bloom checks,
	// KeyValue handling). Default 800_000.
	OpCycles int64
	// ScanRowCycles is per-row CPU during scans (scanner heap, KeyValue
	// comparisons, client round trips amortized). Default 260_000.
	ScanRowCycles int64
	// DecodeCyclesPerKB decodes block bytes into KeyValues. Default 400.
	DecodeCyclesPerKB int64
	// BlockCacheBytes enables the region server's LRU block cache (HBase
	// defaults to 25% of heap; the paper's 5 GB table vs ~250 MB cache is a
	// 20:1 ratio). 0 disables it — the calibrated Table 2 configuration.
	BlockCacheBytes int64
	// BlockCacheHitCycles is the cache-path cost per get. Default 60_000.
	BlockCacheHitCycles int64
	// Dir is the HDFS directory for the table.
	Dir string
	// Seed varies content and the random-read sequence.
	Seed uint64
}

// WithDefaults fills zero fields.
func (c HBaseConfig) WithDefaults() HBaseConfig {
	if c.Rows == 0 {
		c.Rows = 100_000
	}
	if c.RowBytes == 0 {
		c.RowBytes = 1 << 10
	}
	if c.HFiles == 0 {
		c.HFiles = 4
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64 << 10
	}
	if c.OpCycles == 0 {
		c.OpCycles = 800_000
	}
	if c.ScanRowCycles == 0 {
		c.ScanRowCycles = 260_000
	}
	if c.DecodeCyclesPerKB == 0 {
		c.DecodeCyclesPerKB = 400
	}
	if c.BlockCacheHitCycles == 0 {
		c.BlockCacheHitCycles = 60_000
	}
	if c.Dir == "" {
		c.Dir = "/hbase/TestTable"
	}
	return c
}

// HBase is one loaded table.
type HBase struct {
	cfg        HBaseConfig
	client     *hdfs.Client
	rowsPer    int64 // rows per HFile
	blockCache *storage.PageCache
}

// SetupHBase loads the table into HDFS (PE's SequentialWrite phase).
func SetupHBase(p *sim.Proc, client *hdfs.Client, cfg HBaseConfig) (*HBase, error) {
	cfg = cfg.WithDefaults()
	h := &HBase{cfg: cfg, client: client, rowsPer: (cfg.Rows + int64(cfg.HFiles) - 1) / int64(cfg.HFiles)}
	if cfg.BlockCacheBytes > 0 {
		h.blockCache = storage.NewPageCache("hbase-blockcache", cfg.BlockCacheBytes, cfg.BlockBytes)
	}
	for f := 0; f < cfg.HFiles; f++ {
		rows := h.rowsInFile(f)
		if rows == 0 {
			continue
		}
		content := data.Pattern{Seed: cfg.Seed + uint64(f), Size: rows * cfg.RowBytes}
		if err := client.WriteFile(p, h.filePath(f), content); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *HBase) filePath(f int) string { return fmt.Sprintf("%s/hfile_%d", h.cfg.Dir, f) }

// BlockCacheStats returns the block cache's hit/miss byte counters (zero
// value when the cache is disabled).
func (h *HBase) BlockCacheStats() storage.CacheStats {
	if h.blockCache == nil {
		return storage.CacheStats{}
	}
	return h.blockCache.Stats()
}

func (h *HBase) rowsInFile(f int) int64 {
	start := int64(f) * h.rowsPer
	if start >= h.cfg.Rows {
		return 0
	}
	rows := h.cfg.Rows - start
	if rows > h.rowsPer {
		rows = h.rowsPer
	}
	return rows
}

// locate maps a row to (file index, byte offset).
func (h *HBase) locate(row int64) (int, int64) {
	f := int(row / h.rowsPer)
	return f, (row % h.rowsPer) * h.cfg.RowBytes
}

// PEResult is one PerformanceEvaluation phase's outcome.
type PEResult struct {
	Rows    int64
	Bytes   int64
	Elapsed time.Duration
}

// MBps is Table 2's unit: row-data megabytes per second.
func (r PEResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// Scan walks the whole table in row order (PE's scan phase): the region
// server preads HFile blocks positionally and runs the scanner heap over
// each row.
func (h *HBase) Scan(p *sim.Proc, rows int64) (PEResult, error) {
	if rows > h.cfg.Rows {
		rows = h.cfg.Rows
	}
	env := h.client.Kernel().Env()
	vcpu := h.client.Kernel().VCPU()
	start := env.Now()
	var scanned, carry int64
	for f := 0; f < h.cfg.HFiles && scanned < rows; f++ {
		r, err := h.client.Open(p, h.filePath(f))
		if err != nil {
			return PEResult{}, err
		}
		size := h.rowsInFile(f) * h.cfg.RowBytes
		for off := int64(0); off < size && scanned < rows; off += h.cfg.BlockBytes {
			n := size - off
			if n > h.cfg.BlockBytes {
				n = h.cfg.BlockBytes
			}
			s, err := r.ReadAt(p, off, n)
			if err != nil {
				r.Close(p)
				return PEResult{}, err
			}
			carry += s.Len()
			rowsInBlock := carry / h.cfg.RowBytes
			carry -= rowsInBlock * h.cfg.RowBytes
			vcpu.Run(p, rowsInBlock*h.cfg.ScanRowCycles+n*h.cfg.DecodeCyclesPerKB/1024, metrics.TagClientApp)
			scanned += rowsInBlock
		}
		r.Close(p)
	}
	return PEResult{Rows: scanned, Bytes: scanned * h.cfg.RowBytes, Elapsed: env.Now() - start}, nil
}

// SequentialRead gets rows 0..n-1 one by one (PE's sequentialRead phase).
func (h *HBase) SequentialRead(p *sim.Proc, rows int64) (PEResult, error) {
	return h.gets(p, rows, nil)
}

// RandomRead gets n uniformly random rows (PE's randomRead phase).
func (h *HBase) RandomRead(p *sim.Proc, rows int64, rng *rand.Rand) (PEResult, error) {
	return h.gets(p, rows, rng)
}

// gets performs row GETs: region-server CPU, one HFile-block pread through
// HDFS, block decode.
func (h *HBase) gets(p *sim.Proc, rows int64, rng *rand.Rand) (PEResult, error) {
	env := h.client.Kernel().Env()
	vcpu := h.client.Kernel().VCPU()
	readers := make([]*hdfs.FileReader, h.cfg.HFiles)
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close(p)
			}
		}
	}()
	start := env.Now()
	for i := int64(0); i < rows; i++ {
		row := i % h.cfg.Rows
		if rng != nil {
			row = rng.Int63n(h.cfg.Rows)
		}
		f, off := h.locate(row)
		if readers[f] == nil {
			r, err := h.client.Open(p, h.filePath(f))
			if err != nil {
				return PEResult{}, err
			}
			readers[f] = r
		}
		vcpu.Run(p, h.cfg.OpCycles, metrics.TagClientApp)
		// pread the enclosing HFile block, unless the region server's block
		// cache holds it.
		blockOff := off - off%h.cfg.BlockBytes
		n := h.cfg.BlockBytes
		if max := h.rowsInFile(f)*h.cfg.RowBytes - blockOff; n > max {
			n = max
		}
		cached := false
		if h.blockCache != nil {
			hit, _ := h.blockCache.Lookup(int64(f), blockOff, n)
			cached = hit == n
		}
		if cached {
			vcpu.Run(p, h.cfg.BlockCacheHitCycles, metrics.TagClientApp)
		} else {
			if _, err := readers[f].ReadAt(p, blockOff, n); err != nil {
				return PEResult{}, err
			}
			if h.blockCache != nil {
				h.blockCache.Insert(int64(f), blockOff, n)
			}
			vcpu.Run(p, n*h.cfg.DecodeCyclesPerKB/1024, metrics.TagClientApp)
		}
	}
	return PEResult{Rows: rows, Bytes: rows * h.cfg.RowBytes, Elapsed: env.Now() - start}, nil
}
