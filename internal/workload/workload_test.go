package workload_test

import (
	"math/rand"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/workload"
)

// bed is a 2-host testbed with HDFS and optional vRead.
type bed struct {
	c      *cluster.Cluster
	nn     *hdfs.NameNode
	cl     *hdfs.Client
	engine *mapred.Engine
	tr     *mapred.Tracker
	mgr    *core.Manager
}

func newBed(t *testing.T, vread bool) *bed {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 8 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)
	engine := mapred.NewEngine(c.Env, mapred.Config{})
	tr := engine.AddTracker(clientVM.Kernel, cl)

	b := &bed{c: c, nn: nn, cl: cl, engine: engine, tr: tr}
	if vread {
		b.mgr = core.NewManager(c, nn, core.Config{})
		b.mgr.MountDatanode("dn1")
		b.mgr.MountDatanode("dn2")
		cl.SetBlockReader(b.mgr.EnableClient("client"))
	}
	return b
}

func (b *bed) run(t *testing.T, d time.Duration, name string, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	b.c.Go(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	if err := b.c.Env.RunUntil(b.c.Env.Now() + d); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("%s did not finish in %v", name, d)
	}
}

func TestLookbusyHoldsTargetUtilization(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	vm := h1.AddVM("hog", metrics.TagClientApp)
	c.Reg.MarkWindow(0)
	workload.StartLookbusy(vm, 0.85, 0)
	if err := c.Env.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	u := c.Reg.Utilization("hog", workload.TagLookbusy, c.Env.Now(), c.Params.FreqHz)
	if u < 0.80 || u > 0.90 {
		t.Fatalf("lookbusy utilization = %.3f, want ~0.85", u)
	}
}

func TestNetperfRRTransacts(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	workload.StartNetperfServer(b.c.VM("dn1").Kernel)
	var res workload.NetperfResult
	b.run(t, 20*time.Second, "netperf", func(p *sim.Proc) {
		r, err := workload.RunNetperfRR(p, b.c.VM("client").Kernel, "dn1", 32<<10, 2*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
	})
	if res.Transactions < 100 {
		t.Fatalf("only %d transactions in 2s", res.Transactions)
	}
	if res.Rate() <= 0 {
		t.Fatal("zero rate")
	}
}

func TestDFSIOWriteThenRead(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	cfg := workload.DFSIOConfig{Files: 2, FileSize: 8 << 20}
	var wres, rres workload.DFSIOResult
	b.run(t, 600*time.Second, "dfsio", func(p *sim.Proc) {
		var err error
		wres, err = workload.RunDFSIOWrite(p, b.engine, []*mapred.Tracker{b.tr}, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		rres, err = workload.RunDFSIORead(p, b.engine, []*mapred.Tracker{b.tr}, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	if wres.Bytes != 16<<20 || rres.Bytes != 16<<20 {
		t.Fatalf("bytes: write %d read %d", wres.Bytes, rres.Bytes)
	}
	if wres.Throughput() <= 0 || rres.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if rres.CPUCycles <= 0 {
		t.Fatal("no CPU accounted to read job")
	}
	// Cleanup works.
	b.run(t, 60*time.Second, "clean", func(p *sim.Proc) {
		if err := workload.CleanDFSIO(p, b.cl, cfg); err != nil {
			t.Error(err)
		}
	})
	if b.nn.Exists("/benchmarks/TestDFSIO/io_data/test_io_0") {
		t.Fatal("clean left files behind")
	}
}

func TestDFSIOReadFasterWithVRead(t *testing.T) {
	measure := func(vread bool) float64 {
		b := newBed(t, vread)
		defer b.c.Close()
		cfg := workload.DFSIOConfig{Files: 2, FileSize: 8 << 20}
		var thr float64
		b.run(t, 600*time.Second, "dfsio", func(p *sim.Proc) {
			if _, err := workload.RunDFSIOWrite(p, b.engine, []*mapred.Tracker{b.tr}, cfg); err != nil {
				t.Error(err)
				return
			}
			// Cold read.
			b.c.VM("dn1").Kernel.DropCaches()
			b.c.Host("host1").Cache.DropAll()
			res, err := workload.RunDFSIORead(p, b.engine, []*mapred.Tracker{b.tr}, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			thr = res.Throughput()
		})
		return thr
	}
	vanilla := measure(false)
	vread := measure(true)
	if vread <= vanilla {
		t.Fatalf("vRead DFSIO %.1f MB/s not above vanilla %.1f MB/s", vread, vanilla)
	}
}

func TestHBasePhases(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	cfg := workload.HBaseConfig{Rows: 4000, Seed: 7}
	b.run(t, 600*time.Second, "hbase", func(p *sim.Proc) {
		h, err := workload.SetupHBase(p, b.cl, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		scan, err := h.Scan(p, 4000)
		if err != nil {
			t.Error(err)
			return
		}
		if scan.Rows != 4000 || scan.MBps() <= 0 {
			t.Errorf("scan = %+v", scan)
		}
		seq, err := h.SequentialRead(p, 500)
		if err != nil {
			t.Error(err)
			return
		}
		if seq.Rows != 500 {
			t.Errorf("seq = %+v", seq)
		}
		rnd, err := h.RandomRead(p, 500, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Error(err)
			return
		}
		if rnd.Rows != 500 {
			t.Errorf("rnd = %+v", rnd)
		}
		// Scans amortize per-row costs; they must beat per-get reads.
		if scan.MBps() <= seq.MBps() {
			t.Errorf("scan %.2f MB/s not above sequentialRead %.2f MB/s", scan.MBps(), seq.MBps())
		}
	})
}

func TestHBaseBlockCacheServesSequentialGets(t *testing.T) {
	measure := func(cacheBytes int64) (time.Duration, workload.PEResult, *workload.HBase) {
		b := newBed(t, false)
		defer b.c.Close()
		cfg := workload.HBaseConfig{Rows: 4000, Seed: 7, BlockCacheBytes: cacheBytes}
		var res workload.PEResult
		var h *workload.HBase
		var elapsed time.Duration
		b.run(t, 600*time.Second, "hbase-bc", func(p *sim.Proc) {
			var err error
			h, err = workload.SetupHBase(p, b.cl, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			start := b.c.Env.Now()
			res, err = h.SequentialRead(p, 2000)
			if err != nil {
				t.Error(err)
				return
			}
			elapsed = b.c.Env.Now() - start
		})
		return elapsed, res, h
	}
	without, _, _ := measure(0)
	with, _, h := measure(64 << 20) // cache bigger than the 4 MB table
	if with >= without {
		t.Fatalf("block cache did not speed up sequential gets: %v vs %v", with, without)
	}
	st := h.BlockCacheStats()
	// Sequential 1 KiB gets over 64 KiB blocks: ~63/64 hit after warm-up.
	if st.HitBytes == 0 || st.HitBytes < st.MissBytes {
		t.Fatalf("block cache stats = %+v; expected mostly hits", st)
	}
}

func TestHiveSelectScansAllRows(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	cfg := workload.HiveConfig{Rows: 50_000, Seed: 3}
	b.run(t, 600*time.Second, "hive", func(p *sim.Proc) {
		if err := workload.SetupHiveTable(p, b.cl, cfg); err != nil {
			t.Error(err)
			return
		}
		res, err := workload.RunHiveSelect(p, b.engine, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Rows != 50_000 {
			t.Errorf("scanned %d rows", res.Rows)
		}
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
	})
}

func TestSqoopExportRateLimited(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	table := workload.HiveConfig{Rows: 50_000, Seed: 4}
	cfg := workload.SqoopConfig{Table: table, SinkRowsPerSec: 25_000}
	b.run(t, 600*time.Second, "sqoop", func(p *sim.Proc) {
		if err := workload.SetupHiveTable(p, b.cl, table); err != nil {
			t.Error(err)
			return
		}
		res, err := workload.RunSqoopExport(p, b.engine, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Rows != 50_000 {
			t.Errorf("exported %d rows", res.Rows)
		}
		// 4 files over 2 slots = 2 waves; each mapper's JDBC connection
		// inserts 12.5k rows at 25k rows/s → at least ~1s of sink time.
		if res.Elapsed < 900*time.Millisecond {
			t.Errorf("export %v faster than the per-connection sink rate allows", res.Elapsed)
		}
	})
}
