package workload

import (
	"fmt"
	"sort"
	"time"

	"vread/internal/sim"
)

// OpenLoopConfig parameterizes an open-loop load generator: arrivals are
// scheduled at a fixed rate regardless of completions — the SLO-honest load
// model (queueing delay shows up in the latency tail instead of silently
// throttling the generator, Dynamo's 99.9th-percentile framing).
type OpenLoopConfig struct {
	// QPS is the arrival rate in operations per virtual second. Default 1000.
	QPS float64
	// Arrivals is the total operation count. Default 100.
	Arrivals int
	// Exponential draws interarrival gaps from an exponential distribution
	// with mean 1/QPS (Poisson arrivals) using the environment's seeded RNG;
	// false uses fixed spacing. Either way the schedule is deterministic for
	// a given seed.
	Exponential bool
}

// WithDefaults fills zero fields.
func (c OpenLoopConfig) WithDefaults() OpenLoopConfig {
	if c.QPS == 0 {
		c.QPS = 1000
	}
	if c.Arrivals == 0 {
		c.Arrivals = 100
	}
	return c
}

// OpResult is one open-loop operation's outcome.
type OpResult struct {
	// Start is the virtual arrival instant.
	Start time.Duration
	// Latency is arrival-to-completion time (queueing included — open loop).
	Latency time.Duration
	// Label classifies the outcome ("ok", "typed-error", …), as returned by
	// the operation callback.
	Label string
}

// RunOpenLoop drives cfg.Arrivals operations at cfg.QPS from the calling
// process, spawning one process per arrival (arrivals never wait for earlier
// completions), and blocks until every operation finishes. do runs operation
// i and returns its outcome label. Results are indexed by arrival, so output
// derived from them is deterministic.
func RunOpenLoop(p *sim.Proc, env *sim.Env, cfg OpenLoopConfig, do func(p *sim.Proc, i int) string) []OpResult {
	cfg = cfg.WithDefaults()
	period := time.Duration(float64(time.Second) / cfg.QPS)
	results := make([]OpResult, cfg.Arrivals)
	done := 0
	allDone := sim.NewSignal(env)
	for i := 0; i < cfg.Arrivals; i++ {
		i := i
		start := env.Now()
		results[i].Start = start
		env.Go(fmt.Sprintf("openloop:%d", i), func(op *sim.Proc) {
			label := do(op, i)
			results[i].Latency = env.Now() - start
			results[i].Label = label
			done++
			allDone.Signal()
		})
		gap := period
		if cfg.Exponential {
			gap = time.Duration(env.Rand().ExpFloat64() * float64(period))
		}
		p.Sleep(gap)
	}
	for done < cfg.Arrivals {
		allDone.Wait(p)
	}
	return results
}

// SLO aggregates one labeled slice of open-loop results into the p50/p95/p99
// row the scale experiments emit.
type SLO struct {
	Count         int
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// SLOOf computes percentiles over the results carrying the given label
// (nearest-rank on the sorted latencies).
func SLOOf(results []OpResult, label string) SLO {
	var lats []time.Duration
	for _, r := range results {
		if r.Label == label {
			lats = append(lats, r.Latency)
		}
	}
	if len(lats) == 0 {
		return SLO{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return SLO{
		Count: len(lats),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   lats[len(lats)-1],
	}
}

// LabelCounts tallies outcome labels in deterministic (sorted-label) order.
func LabelCounts(results []OpResult) []LabelCount {
	counts := make(map[string]int)
	for _, r := range results {
		counts[r.Label]++
	}
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]LabelCount, 0, len(labels))
	for _, l := range labels {
		out = append(out, LabelCount{Label: l, Count: counts[l]})
	}
	return out
}

// LabelCount is one outcome label's tally.
type LabelCount struct {
	Label string
	Count int
}
