package workload

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// SqoopConfig parameterizes the Sqoop export study (Table 3, column 3):
// reading the Hive table from HDFS and inserting it into a MySQL database
// on another machine. The database is modeled as a fixed-rate external sink
// — the paper notes export performance is bounded by both HDFS read
// efficiency and MySQL insert efficiency, and vRead only helps the former.
type SqoopConfig struct {
	// Table is the Hive table layout being exported.
	Table HiveConfig
	// BatchRows per INSERT statement batch. Default 1000.
	BatchRows int64
	// SinkRowsPerSec is MySQL's per-connection insert service rate: each
	// mapper's JDBC batches execute synchronously against it, so within a
	// mapper reads and inserts serialize (Sqoop-1.x behavior).
	// Default 450_000.
	SinkRowsPerSec float64
	// PerRowCycles is Sqoop's per-record serialization cost. Default 500.
	PerRowCycles int64
}

// WithDefaults fills zero fields.
func (c SqoopConfig) WithDefaults() SqoopConfig {
	c.Table = c.Table.WithDefaults()
	if c.BatchRows == 0 {
		c.BatchRows = 1000
	}
	if c.SinkRowsPerSec == 0 {
		c.SinkRowsPerSec = 450_000
	}
	if c.PerRowCycles == 0 {
		c.PerRowCycles = 500
	}
	return c
}

// SqoopResult is one export's outcome.
type SqoopResult struct {
	Rows    int64
	Elapsed time.Duration
}

// RunSqoopExport exports the table as a MapReduce job (one map per table
// file). Each batch is read from HDFS, serialized, then inserted into the
// rate-limited external sink; read latency and sink pacing overlap only
// within a batch boundary, like Sqoop's synchronous JDBC batches.
func RunSqoopExport(p *sim.Proc, e *mapred.Engine, cfg SqoopConfig) (SqoopResult, error) {
	cfg = cfg.WithDefaults()
	env := p.Env()
	// Each mapper holds one JDBC connection; a batch insert blocks that
	// mapper for the batch's service time at the per-connection rate.
	sinkInsert := func(tp *sim.Proc, rows int64) {
		tp.Sleep(time.Duration(float64(rows) / cfg.SinkRowsPerSec * float64(time.Second)))
	}
	start := env.Now()
	tasks := make([]mapred.Task, cfg.Table.Files)
	for f := range tasks {
		f := f
		tasks[f] = mapred.Task{ID: f, Fn: func(tp *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			r, err := tr.Client.Open(tp, cfg.Table.filePath(f))
			if err != nil {
				return nil, err
			}
			defer r.Close(tp)
			var exported, carry int64
			batchBytes := cfg.BatchRows * cfg.Table.RowBytes
			for {
				s, err := r.Read(tp, batchBytes)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					return nil, err
				}
				carry += s.Len()
				rows := carry / cfg.Table.RowBytes
				carry -= rows * cfg.Table.RowBytes
				tr.Kernel.VCPU().Run(tp, rows*cfg.PerRowCycles, metrics.TagClientApp)
				// Synchronous JDBC batch insert into the external database.
				sinkInsert(tp, rows)
				exported += rows
			}
			return exported, nil
		}}
	}
	job := e.Run(p, "sqoop-export", tasks)
	if failed := job.Failed(); len(failed) > 0 {
		return SqoopResult{}, fmt.Errorf("workload: sqoop: %v", failed[0].Err)
	}
	var rows int64
	for _, tr := range job.Results {
		rows += tr.Value.(int64)
	}
	return SqoopResult{Rows: rows, Elapsed: env.Now() - start}, nil
}
