package workload

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/sim"
)

// DFSIOConfig parameterizes a TestDFSIO run.
type DFSIOConfig struct {
	// Files is the number of test files (one map task each). Default 5.
	Files int
	// FileSize is bytes per file. Default 1 GiB (the paper reads 5 GB total).
	FileSize int64
	// BufferBytes is the application read/write buffer (the paper's 1 MB
	// default memory buffer).
	BufferBytes int64
	// Dir is the HDFS working directory.
	Dir string
	// Seed varies the generated payload.
	Seed uint64
}

// WithDefaults fills zero fields.
func (c DFSIOConfig) WithDefaults() DFSIOConfig {
	if c.Files == 0 {
		c.Files = 5
	}
	if c.FileSize == 0 {
		c.FileSize = 1 << 30
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 1 << 20
	}
	if c.Dir == "" {
		c.Dir = "/benchmarks/TestDFSIO/io_data"
	}
	return c
}

func (c DFSIOConfig) filePath(i int) string {
	return fmt.Sprintf("%s/test_io_%d", c.Dir, i)
}

// DFSIOResult is one TestDFSIO run's outcome.
type DFSIOResult struct {
	Bytes      int64
	JobElapsed time.Duration
	IOTime     time.Duration // summed per-task I/O time (TestDFSIO's metric base)
	CPUCycles  int64         // vCPU cycles consumed by tracker VMs during the job
}

// Throughput returns TestDFSIO's "Throughput mb/sec": total bytes over the
// summed per-task I/O time.
func (r DFSIOResult) Throughput() float64 {
	if r.IOTime <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.IOTime.Seconds()
}

// AggregateRate returns total bytes over job wall time.
func (r DFSIOResult) AggregateRate() float64 {
	if r.JobElapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.JobElapsed.Seconds()
}

// CPUTime converts consumed cycles to milliseconds at the given frequency
// (Figure 12's y axis).
//
//lint:converter unitflow(reporting-side cycles→time at the caller's frequency; float math matches TestDFSIO's ms precision)
func (r DFSIOResult) CPUTime(freqHz int64) time.Duration {
	return time.Duration(float64(r.CPUCycles) / float64(freqHz) * float64(time.Second))
}

// RunDFSIOWrite writes the test files as a MapReduce job (one map per file).
func RunDFSIOWrite(p *sim.Proc, e *mapred.Engine, trackers []*mapred.Tracker, cfg DFSIOConfig) (DFSIOResult, error) {
	cfg = cfg.WithDefaults()
	tasks := make([]mapred.Task, cfg.Files)
	for i := range tasks {
		i := i
		tasks[i] = mapred.Task{ID: i, Fn: func(tp *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			start := tr.Kernel.Env().Now()
			content := data.Pattern{Seed: cfg.Seed + uint64(i), Size: cfg.FileSize}
			if err := tr.Client.WriteFile(tp, cfg.filePath(i), content); err != nil {
				return nil, err
			}
			return tr.Kernel.Env().Now() - start, nil
		}}
	}
	return runDFSIO(p, e, trackers, "dfsio-write", tasks, cfg)
}

// RunDFSIORead reads the test files as a MapReduce job (one map per file),
// using the paper's sequential read1 path with the configured buffer.
func RunDFSIORead(p *sim.Proc, e *mapred.Engine, trackers []*mapred.Tracker, cfg DFSIOConfig) (DFSIOResult, error) {
	cfg = cfg.WithDefaults()
	tasks := make([]mapred.Task, cfg.Files)
	for i := range tasks {
		i := i
		tasks[i] = mapred.Task{ID: i, Fn: func(tp *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			start := tr.Kernel.Env().Now()
			r, err := tr.Client.Open(tp, cfg.filePath(i))
			if err != nil {
				return nil, err
			}
			defer r.Close(tp)
			for {
				if _, err := r.Read(tp, cfg.BufferBytes); errors.Is(err, io.EOF) {
					break
				} else if err != nil {
					return nil, err
				}
			}
			return tr.Kernel.Env().Now() - start, nil
		}}
	}
	return runDFSIO(p, e, trackers, "dfsio-read", tasks, cfg)
}

func runDFSIO(p *sim.Proc, e *mapred.Engine, trackers []*mapred.Tracker, name string, tasks []mapred.Task, cfg DFSIOConfig) (DFSIOResult, error) {
	var before int64
	for _, tr := range trackers {
		before += tr.Kernel.VCPU().Consumed()
	}
	job := e.Run(p, name, tasks)
	if failed := job.Failed(); len(failed) > 0 {
		return DFSIOResult{}, fmt.Errorf("workload: %s: %d tasks failed: %v", name, len(failed), failed[0].Err)
	}
	var after int64
	for _, tr := range trackers {
		after += tr.Kernel.VCPU().Consumed()
	}
	res := DFSIOResult{
		Bytes:      int64(cfg.Files) * cfg.FileSize,
		JobElapsed: job.Elapsed(),
		CPUCycles:  after - before,
	}
	for _, tr := range job.Results {
		res.IOTime += tr.Value.(time.Duration)
	}
	return res, nil
}

// CleanDFSIO removes the test files (between write and re-write runs).
func CleanDFSIO(p *sim.Proc, client *hdfs.Client, cfg DFSIOConfig) error {
	cfg = cfg.WithDefaults()
	for i := 0; i < cfg.Files; i++ {
		if err := client.DeleteFile(p, cfg.filePath(i)); err != nil {
			return err
		}
	}
	return nil
}
