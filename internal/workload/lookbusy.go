// Package workload implements the paper's workload generators: lookbusy CPU
// hogs, netperf TCP_RR (Figure 3), TestDFSIO read/write (Figures 11–13), and
// the application studies — HBase PerformanceEvaluation, a Hive select, and
// a Sqoop export (Tables 2–3).
package workload

import (
	"time"

	"vread/internal/cluster"
	"vread/internal/sim"
)

// TagLookbusy marks hog cycles in the metrics registry.
const TagLookbusy = "lookbusy"

// StartLookbusy runs a lookbusy-style load generator in the VM: it holds
// the vCPU busy for target fraction of each period, indefinitely. The paper
// uses 85% hogs in its 4-VM scenarios.
func StartLookbusy(vm *cluster.VM, target float64, period time.Duration) *sim.Proc {
	if target < 0 || target > 1 {
		panic("workload: lookbusy target must be in [0,1]")
	}
	if period == 0 {
		period = 20 * time.Millisecond
	}
	busy := time.Duration(float64(period) * target)
	idle := period - busy
	return vm.Kernel.Env().Go("lookbusy:"+vm.Name, func(p *sim.Proc) {
		for {
			if busy > 0 {
				vm.VCPU.RunDur(p, busy, TagLookbusy)
			}
			if idle > 0 {
				p.Sleep(idle)
			}
		}
	})
}
