package trace

// Deterministic exporters: Chrome trace_event JSON for timeline inspection
// and flat CSVs for scripting. Both iterate slices in event order and format
// every number from integers, so identical traces serialize to identical
// bytes.

import (
	"io"
	"strconv"
	"strings"
)

// usec renders a virtual timestamp as microseconds with fixed millisecond
// precision ("123.456"), computed from integer nanoseconds so formatting is
// exact and deterministic.
func usec(ns int64) string {
	return strconv.FormatInt(ns/1000, 10) + "." + pad3(ns%1000)
}

func pad3(n int64) string {
	s := strconv.FormatInt(n, 10)
	return "000"[:3-len(s)] + s
}

// jsonEscape escapes a name for embedding in a JSON string. Names are
// ASCII identifiers by construction; this covers the general case anyway.
func jsonEscape(s string) string {
	if !strings.ContainsAny(s, `"\`) && strings.IndexFunc(s, func(r rune) bool { return r < 0x20 }) < 0 {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r == '"':
			sb.WriteString(`\"`)
		case r == '\\':
			sb.WriteString(`\\`)
		case r < 0x20:
			sb.WriteString(`\u00`)
			const hex = "0123456789abcdef"
			sb.WriteByte(hex[r>>4])
			sb.WriteByte(hex[r&0xf])
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// WriteChrome writes the traces as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto). Each request becomes one "process" (pid =
// trace ID) whose "threads" are the read-path layers; spans are complete
// ("ph":"X") events and instantaneous marks are "ph":"i".
func WriteChrome(w io.Writer, traces []*Trace) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString("\n")
		sb.WriteString(line)
	}
	for _, t := range traces {
		pid := strconv.FormatInt(t.ID, 10)
		emit(`{"name":"process_name","ph":"M","pid":` + pid +
			`,"tid":0,"args":{"name":"` + jsonEscape(t.Name) + ` #` + pid + `"}}`)
		// One metadata row per layer present, in layer order.
		var present [layerCount]bool
		for _, s := range t.Spans {
			if s.Layer < layerCount {
				present[s.Layer] = true
			}
		}
		for l := Layer(0); l < layerCount; l++ {
			if !present[l] {
				continue
			}
			emit(`{"name":"thread_name","ph":"M","pid":` + pid +
				`,"tid":` + strconv.Itoa(int(l)+1) + `,"args":{"name":"` + layerNames[l] + `"}}`)
		}
		// Root request span on tid 0.
		end := t.End
		if end < t.Start {
			end = t.Start
		}
		emit(`{"name":"` + jsonEscape(t.Name) + `","cat":"request","ph":"X","pid":` + pid +
			`,"tid":0,"ts":` + usec(int64(t.Start)) + `,"dur":` + usec(int64(end-t.Start)) +
			`,"args":{"bytes":` + strconv.FormatInt(t.Bytes, 10) + `}}`)
		for _, s := range t.Spans {
			tid := strconv.Itoa(int(s.Layer) + 1)
			args := `{"bytes":` + strconv.FormatInt(s.Bytes, 10)
			for _, a := range s.Attrs {
				args += `,"` + jsonEscape(a.Key) + `":"` + jsonEscape(a.Value) + `"`
			}
			args += "}"
			if s.End <= s.Start {
				emit(`{"name":"` + jsonEscape(s.Name) + `","cat":"` + layerNames[s.Layer] +
					`","ph":"i","s":"t","pid":` + pid + `,"tid":` + tid +
					`,"ts":` + usec(int64(s.Start)) + `,"args":` + args + `}`)
				continue
			}
			emit(`{"name":"` + jsonEscape(s.Name) + `","cat":"` + layerNames[s.Layer] +
				`","ph":"X","pid":` + pid + `,"tid":` + tid +
				`,"ts":` + usec(int64(s.Start)) + `,"dur":` + usec(int64(s.End-s.Start)) +
				`,"args":` + args + `}`)
		}
		// Cycle charges as one counter-style metadata blob per trace.
		for _, c := range t.Charges {
			emit(`{"name":"cycles:` + jsonEscape(c.Entity) + `/` + jsonEscape(c.Tag) +
				`","cat":"cycles","ph":"i","s":"p","pid":` + pid + `,"tid":0,"ts":` +
				usec(int64(end)) + `,"args":{"cycles":` + strconv.FormatInt(c.Cycles, 10) + `}}`)
		}
	}
	sb.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSpansCSV writes one row per span of every trace:
// trace_id,request,layer,span,start_us,end_us,bytes.
func WriteSpansCSV(w io.Writer, traces []*Trace) error {
	var sb strings.Builder
	sb.WriteString("trace_id,request,layer,span,start_us,end_us,bytes\n")
	for _, t := range traces {
		id := strconv.FormatInt(t.ID, 10)
		for _, s := range t.Spans {
			end := s.End
			if end < s.Start {
				end = s.Start
			}
			sb.WriteString(id)
			sb.WriteByte(',')
			sb.WriteString(csvField(t.Name))
			sb.WriteByte(',')
			sb.WriteString(s.Layer.String())
			sb.WriteByte(',')
			sb.WriteString(csvField(s.Name))
			sb.WriteByte(',')
			sb.WriteString(usec(int64(s.Start)))
			sb.WriteByte(',')
			sb.WriteString(usec(int64(end)))
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatInt(s.Bytes, 10))
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
