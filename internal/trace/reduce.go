package trace

// Reducers: everything the simulator used to account for with parallel
// bookkeeping is computed here from the span stream instead — per-stage
// latency percentiles for the delay/DFSIO experiments, and per-entity cycle
// breakdowns for the Figure 6–8 bars.

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"vread/internal/metrics"
)

// StageStat summarizes one (layer, span-name) stage across many traces.
type StageStat struct {
	Layer Layer
	Name  string
	Count int64
	Bytes int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Stages reduces traces to per-stage latency statistics, sorted by layer
// then name. The root request itself appears as a stage per request name
// (layer "client"), so delay percentiles fall out of the same reducer.
func Stages(traces []*Trace) []StageStat {
	type acc struct {
		rec   *metrics.LatencyRecorder
		bytes int64
	}
	type key struct {
		layer Layer
		name  string
	}
	m := make(map[key]*acc)
	add := func(k key, d time.Duration, bytes int64) {
		a := m[k]
		if a == nil {
			a = &acc{rec: metrics.NewLatencyRecorder()}
			m[k] = a
		}
		a.rec.Record(d)
		a.bytes += bytes
	}
	for _, t := range traces {
		add(key{LayerClient, t.Name}, t.Dur(), t.Bytes)
		for _, s := range t.Spans {
			add(key{s.Layer, s.Name}, s.Dur(), s.Bytes)
		}
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].name < keys[j].name
	})
	out := make([]StageStat, 0, len(keys))
	for _, k := range keys {
		a := m[k]
		out = append(out, StageStat{
			Layer: k.layer,
			Name:  k.name,
			Count: int64(a.rec.Count()),
			Bytes: a.bytes,
			Mean:  a.rec.Mean(),
			P50:   a.rec.Percentile(50),
			P95:   a.rec.Percentile(95),
			P99:   a.rec.Percentile(99),
			Max:   a.rec.Max(),
		})
	}
	return out
}

// WriteStagesCSV writes the per-stage statistics as CSV:
// layer,span,count,bytes,mean_us,p50_us,p95_us,p99_us,max_us.
func WriteStagesCSV(w io.Writer, stats []StageStat) error {
	var sb strings.Builder
	sb.WriteString("layer,span,count,bytes,mean_us,p50_us,p95_us,p99_us,max_us\n")
	for _, s := range stats {
		sb.WriteString(s.Layer.String())
		sb.WriteByte(',')
		sb.WriteString(csvField(s.Name))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(s.Count, 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(s.Bytes, 10))
		for _, d := range []time.Duration{s.Mean, s.P50, s.P95, s.P99, s.Max} {
			sb.WriteByte(',')
			sb.WriteString(usec(int64(d)))
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// BreakdownCycles sums the cycle charges of all traces into entity → tag →
// cycles, the same shape as metrics.Registry windows. This is how the
// Figure 6–8 bars are derived from spans.
func BreakdownCycles(traces []*Trace) map[string]map[string]int64 {
	out := make(map[string]map[string]int64)
	for _, t := range traces {
		for _, c := range t.Charges {
			m := out[c.Entity]
			if m == nil {
				m = make(map[string]int64)
				out[c.Entity] = m
			}
			m[c.Tag] += c.Cycles
		}
	}
	return out
}
