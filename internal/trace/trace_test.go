package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vread/internal/sim"
)

// TestNilFastPath: every method on a nil trace (and tracer) must be a safe
// no-op — the zero-overhead-by-default contract of the untraced read path.
func TestNilFastPath(t *testing.T) {
	var tr *Trace
	if idx := tr.Begin(LayerLib, "x"); idx != -1 {
		t.Fatalf("nil Begin = %d, want -1", idx)
	}
	tr.EndSpan(-1, 0)
	tr.EndSpan(3, 0)
	tr.Annotate(0, "k", "v")
	tr.Event(LayerDaemon, "e", 1)
	tr.AddCycles("client", "others", 100)
	tr.Finish(42)
	if tr.TotalCycles() != 0 || tr.Dur() != 0 {
		t.Fatal("nil trace accumulated state")
	}

	var tc *Tracer
	if tc.Request("read") != nil {
		t.Fatal("nil tracer sampled a request")
	}
	if tc.Seen() != 0 || tc.Traces() != nil || tc.Collector() != nil {
		t.Fatal("nil tracer has state")
	}
}

// TestNilTraceAllocFree: the nil fast path must not allocate.
func TestNilTraceAllocFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		idx := tr.Begin(LayerRing, "req")
		tr.AddCycles("client", "others", 7)
		tr.EndSpan(idx, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil trace path allocates %v per op", allocs)
	}
}

func TestTracerSampling(t *testing.T) {
	env := sim.NewEnv(1)
	tc := NewTracer(env, 3)
	sampled := 0
	for i := 0; i < 10; i++ {
		if tr := tc.Request("read"); tr != nil {
			sampled++
			if tr.ID != int64(sampled) {
				t.Fatalf("trace ID = %d, want %d", tr.ID, sampled)
			}
			tr.Finish(0)
		}
	}
	// Requests 1, 4, 7, 10 fall on the every-3rd pattern.
	if sampled != 4 {
		t.Fatalf("sampled %d of 10 at every=3, want 4", sampled)
	}
	if tc.Seen() != 10 {
		t.Fatalf("Seen = %d", tc.Seen())
	}
	if len(tc.Traces()) != 4 {
		t.Fatalf("collected %d", len(tc.Traces()))
	}
}

func TestAddCyclesMergesInOrder(t *testing.T) {
	env := sim.NewEnv(1)
	tc := NewTracer(env, 1)
	tr := tc.Request("read")
	tr.AddCycles("client", "client-application", 10)
	tr.AddCycles("dn1", "datanode-application", 20)
	tr.AddCycles("client", "client-application", 5)
	tr.AddCycles("client", "others", 1)
	tr.AddCycles("client", "zero", 0) // no-op
	want := []CycleCharge{
		{"client", "client-application", 15},
		{"dn1", "datanode-application", 20},
		{"client", "others", 1},
	}
	if len(tr.Charges) != len(want) {
		t.Fatalf("charges = %+v", tr.Charges)
	}
	for i, w := range want {
		if tr.Charges[i] != w {
			t.Fatalf("charge[%d] = %+v, want %+v", i, tr.Charges[i], w)
		}
	}
	if tr.TotalCycles() != 36 {
		t.Fatalf("TotalCycles = %d", tr.TotalCycles())
	}
}

// buildSample produces the same little trace set from any fresh env: 4
// requests with growing span durations, events, annotations, and charges.
func buildSample(t *testing.T) []*Trace {
	t.Helper()
	env := sim.NewEnv(7)
	tc := NewTracer(env, 1)
	env.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			tr := tc.Request("read1")
			sp := tr.Begin(LayerLib, "vread-read")
			rsp := tr.Begin(LayerRing, "ring-drain")
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			tr.EndSpan(rsp, 512)
			tr.Annotate(sp, "peer", "host2")
			tr.Event(LayerDaemon, "open", 1)
			p.Sleep(time.Millisecond)
			tr.EndSpan(sp, 1024)
			tr.AddCycles("client", "client-application", int64(1000*(i+1)))
			tr.AddCycles("vread-daemon@host1", "others", 50)
			tr.Finish(1024)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return tc.Traces()
}

func TestSpanBookkeeping(t *testing.T) {
	traces := buildSample(t)
	if len(traces) != 4 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[2]
	if tr.Dur() != 4*time.Millisecond {
		t.Fatalf("request dur = %v", tr.Dur())
	}
	var lib, ring, ev *Span
	for i := range tr.Spans {
		switch tr.Spans[i].Name {
		case "vread-read":
			lib = &tr.Spans[i]
		case "ring-drain":
			ring = &tr.Spans[i]
		case "open":
			ev = &tr.Spans[i]
		}
	}
	if lib == nil || ring == nil || ev == nil {
		t.Fatalf("spans = %+v", tr.Spans)
	}
	if lib.Dur() != 4*time.Millisecond || lib.Bytes != 1024 {
		t.Fatalf("lib span = %+v", *lib)
	}
	if ring.Dur() != 3*time.Millisecond || ring.Bytes != 512 {
		t.Fatalf("ring span = %+v", *ring)
	}
	if ev.Dur() != 0 || ev.Bytes != 1 {
		t.Fatalf("event = %+v", *ev)
	}
	if len(lib.Attrs) != 1 || lib.Attrs[0] != (Attr{"peer", "host2"}) {
		t.Fatalf("attrs = %+v", lib.Attrs)
	}
}

// TestExportersDeterministic: two identical runs must serialize to
// byte-identical Chrome JSON and CSV.
func TestExportersDeterministic(t *testing.T) {
	a, b := buildSample(t), buildSample(t)
	var ja, jb, ca, cb bytes.Buffer
	if err := WriteChrome(&ja, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&jb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("Chrome JSON differs between identical runs")
	}
	if err := WriteSpansCSV(&ca, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpansCSV(&cb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("spans CSV differs between identical runs")
	}

	out := ja.String()
	for _, want := range []string{
		`"traceEvents":[`,
		`"name":"process_name"`,
		`"name":"read1","cat":"request","ph":"X"`,
		`"name":"vread-read","cat":"lib","ph":"X"`,
		`"name":"open","cat":"daemon","ph":"i"`,
		`"name":"cycles:client/client-application"`,
		`"peer":"host2"`,
		`"displayTimeUnit":"ms"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome JSON missing %q", want)
		}
	}
	if !strings.HasPrefix(ca.String(), "trace_id,request,layer,span,start_us,end_us,bytes\n") {
		t.Errorf("spans CSV header = %q", strings.SplitN(ca.String(), "\n", 2)[0])
	}
}

func TestStagesPercentiles(t *testing.T) {
	traces := buildSample(t)
	stats := Stages(traces)
	find := func(layer Layer, name string) StageStat {
		for _, s := range stats {
			if s.Layer == layer && s.Name == name {
				return s
			}
		}
		t.Fatalf("stage %v/%s missing from %+v", layer, name, stats)
		return StageStat{}
	}
	// Ring drain durations are 1,2,3,4 ms across the four requests.
	ring := find(LayerRing, "ring-drain")
	if ring.Count != 4 || ring.Bytes != 4*512 {
		t.Fatalf("ring stage = %+v", ring)
	}
	if ring.P50 != 2*time.Millisecond {
		t.Fatalf("ring p50 = %v", ring.P50)
	}
	if ring.P99 != 4*time.Millisecond || ring.Max != 4*time.Millisecond {
		t.Fatalf("ring p99 = %v max = %v", ring.P99, ring.Max)
	}
	if ring.Mean != 2500*time.Microsecond {
		t.Fatalf("ring mean = %v", ring.Mean)
	}
	// The root request appears as a client-layer stage under its name.
	req := find(LayerClient, "read1")
	if req.Count != 4 || req.Max != 5*time.Millisecond {
		t.Fatalf("request stage = %+v", req)
	}

	var csv bytes.Buffer
	if err := WriteStagesCSV(&csv, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "layer,span,count,bytes,mean_us,p50_us,p95_us,p99_us,max_us\n") {
		t.Errorf("stages CSV header = %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
}

func TestBreakdownCycles(t *testing.T) {
	traces := buildSample(t)
	bd := BreakdownCycles(traces)
	if got := bd["client"]["client-application"]; got != 1000+2000+3000+4000 {
		t.Fatalf("client cycles = %d", got)
	}
	if got := bd["vread-daemon@host1"]["others"]; got != 4*50 {
		t.Fatalf("daemon cycles = %d", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("open", 1)
	c.Add("bytes-local", 4096)
	c.Add("open", 2)
	if c.Get("open") != 3 || c.Get("bytes-local") != 4096 {
		t.Fatalf("counter = %v %v", c.Get("open"), c.Get("bytes-local"))
	}
	if c.Get("never") != 0 {
		t.Fatal("unseen name nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "open" || names[1] != "bytes-local" {
		t.Fatalf("names = %v", names)
	}
}

func TestUsecFormatting(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
	} {
		if got := usec(tc.ns); got != tc.want {
			t.Errorf("usec(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

// TestAbsorb: the parallel runner's collector merge must renumber IDs into
// the destination's sequence and leave sources empty; degenerate shapes
// (nil, self, empty) are no-ops.
func TestAbsorb(t *testing.T) {
	mk := func(n int, name string) *Collector {
		env := sim.NewEnv(1)
		tc := NewTracerInto(env, 1, &Collector{})
		for i := 0; i < n; i++ {
			tc.Request(name).Finish(0)
		}
		return tc.Collector()
	}

	t.Run("empty-into-empty", func(t *testing.T) {
		dst, src := &Collector{}, &Collector{}
		dst.Absorb(src)
		if len(dst.Traces) != 0 || src.Traces != nil {
			t.Fatalf("dst=%d src=%v", len(dst.Traces), src.Traces)
		}
	})
	t.Run("nil-and-self", func(t *testing.T) {
		dst := mk(2, "a")
		dst.Absorb(nil)
		dst.Absorb(dst)
		if len(dst.Traces) != 2 {
			t.Fatalf("traces = %d after nil/self absorb", len(dst.Traces))
		}
		for i, tr := range dst.Traces {
			if tr.ID != int64(i+1) {
				t.Fatalf("trace %d has ID %d", i, tr.ID)
			}
		}
	})
	t.Run("single-cell", func(t *testing.T) {
		dst, src := &Collector{}, mk(3, "cell0")
		dst.Absorb(src)
		if len(dst.Traces) != 3 || len(src.Traces) != 0 {
			t.Fatalf("dst=%d src=%d", len(dst.Traces), len(src.Traces))
		}
		for i, tr := range dst.Traces {
			if tr.ID != int64(i+1) {
				t.Fatalf("trace %d renumbered to %d", i, tr.ID)
			}
		}
	})
	t.Run("multi-cell-serial-order", func(t *testing.T) {
		dst := mk(2, "cell0")
		dst.Absorb(mk(2, "cell1"))
		dst.Absorb(mk(1, "cell2"))
		if len(dst.Traces) != 5 {
			t.Fatalf("traces = %d", len(dst.Traces))
		}
		// IDs continue the destination sequence: exactly what one shared
		// serial collector would have assigned.
		for i, tr := range dst.Traces {
			if tr.ID != int64(i+1) {
				t.Fatalf("trace %d (%s) has ID %d, want %d", i, tr.Name, tr.ID, i+1)
			}
		}
		wantNames := []string{"cell0", "cell0", "cell1", "cell1", "cell2"}
		for i, tr := range dst.Traces {
			if tr.Name != wantNames[i] {
				t.Fatalf("trace %d = %s, want %s", i, tr.Name, wantNames[i])
			}
		}
	})
}
