// Package trace is the per-request observability spine of the simulator: a
// lightweight, deterministic span/event model carried by every read request
// from the DFS client entry point down through libvread, the request ring,
// the daemon, the host file system, the remote transports, the guest kernel,
// the virtio devices, and the physical disk and network.
//
// Design constraints, in order:
//
//   - Zero overhead by default. Every method is safe on a nil *Trace and
//     returns immediately, so untraced requests pay one nil check per
//     instrumentation point and allocate nothing.
//   - Deterministic. Timestamps are virtual (sim.Env time), span and charge
//     order is event order, and the exporters iterate slices — never maps —
//     so the same seed produces byte-identical output.
//   - Allocation-conscious. Spans and cycle charges live in small slices
//     owned by the trace; charges merge in place instead of growing a map.
//
// The existing aggregate instrumentation (metrics.Registry cycle counters,
// core.DaemonStats, the Figure 6–8 breakdowns) is derived from this one
// stream by the reducers at the bottom of the package.
package trace

import (
	"fmt"
	"time"

	"vread/internal/sim"
)

// Layer identifies which architectural layer of the read path a span or
// event belongs to. The numeric order is the top-down order of the stack.
type Layer uint8

// Layers of the read path.
const (
	LayerClient Layer = iota // DFS / QFS client request handling
	LayerLib                 // libvread inside the client VM
	LayerRing                // shared request/completion ring
	LayerDaemon              // vread daemon on the host
	LayerHostFS              // host page cache + loop-mounted image reads
	LayerRemote              // daemon-to-daemon RDMA/TCP transport
	LayerGuest               // guest kernel: sockets and page cache
	LayerServer              // datanode / chunk-server application
	LayerDisk                // physical device I/O
	LayerNet                 // fabric hops (NIC pacing, wire, RDMA)
	layerCount
)

var layerNames = [layerCount]string{
	"client", "lib", "ring", "daemon", "hostfs", "remote", "guest",
	"server", "disk", "net",
}

// String returns the stable lower-case layer name used in exports.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed stage of a request. A span with End == Start is an
// instantaneous event (a cache hit, a path-selection decision).
type Span struct {
	Layer Layer
	Name  string
	Start time.Duration
	End   time.Duration
	Bytes int64
	Attrs []Attr
}

// Dur returns the span duration (0 for events and unclosed spans).
func (s Span) Dur() time.Duration {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// CycleCharge accumulates CPU cycles consumed on behalf of the request,
// keyed the same way as metrics.Registry: accounting entity × legend tag.
type CycleCharge struct {
	Entity string
	Tag    string
	Cycles int64
}

// Trace is one request's journey. All methods are nil-safe.
type Trace struct {
	ID    int64
	Name  string
	Start time.Duration
	End   time.Duration
	Bytes int64

	Spans   []Span
	Charges []CycleCharge

	env *sim.Env
}

// Begin opens a span and returns its index (-1 on a nil trace). The span
// stays open until End is called with the index.
//
//lint:hotpath
func (t *Trace) Begin(layer Layer, name string) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, Span{Layer: layer, Name: name, Start: t.env.Now(), End: -1}) //lint:allow hotalloc(span growth amortized into the trace-owned slice; the nil default allocates nothing)
	return len(t.Spans) - 1
}

// EndSpan closes the span opened by Begin, recording the bytes it moved.
//
//lint:hotpath
func (t *Trace) EndSpan(idx int, bytes int64) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	s := &t.Spans[idx]
	s.End = t.env.Now()
	s.Bytes = bytes
}

// Annotate attaches a key/value pair to an open or closed span.
func (t *Trace) Annotate(idx int, key, value string) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	s := &t.Spans[idx]
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Event records an instantaneous mark (End == Start).
//
//lint:hotpath
func (t *Trace) Event(layer Layer, name string, bytes int64) {
	if t == nil {
		return
	}
	now := t.env.Now()
	t.Spans = append(t.Spans, Span{Layer: layer, Name: name, Start: now, End: now, Bytes: bytes}) //lint:allow hotalloc(span growth amortized into the trace-owned slice; the nil default allocates nothing)
}

// AddCycles charges CPU cycles consumed for this request, merging into the
// existing (entity, tag) bucket when one exists. Buckets keep first-seen
// order, which keeps exports deterministic.
//
//lint:hotpath
func (t *Trace) AddCycles(entity, tag string, n int64) {
	if t == nil || n == 0 {
		return
	}
	for i := range t.Charges {
		if t.Charges[i].Entity == entity && t.Charges[i].Tag == tag {
			t.Charges[i].Cycles += n
			return
		}
	}
	t.Charges = append(t.Charges, CycleCharge{Entity: entity, Tag: tag, Cycles: n}) //lint:allow hotalloc(one bucket per distinct entity×tag pair, merged in place thereafter)
}

// TotalCycles sums all cycle charges on the trace.
func (t *Trace) TotalCycles() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for _, c := range t.Charges {
		sum += c.Cycles
	}
	return sum
}

// Finish closes the request, recording its total bytes. Late asynchronous
// charges (readahead completions) may still arrive after Finish; they are
// accepted, since they were performed on the request's behalf.
func (t *Trace) Finish(bytes int64) {
	if t == nil {
		return
	}
	t.End = t.env.Now()
	t.Bytes = bytes
}

// Dur returns the request duration (End - Start).
func (t *Trace) Dur() time.Duration {
	if t == nil || t.End <= t.Start {
		return 0
	}
	return t.End - t.Start
}

// ---------------------------------------------------------------------------
// Tracer: request sampling and collection.

// Collector accumulates finished traces, possibly across several tracers
// (one experiment builds multiple testbeds that share one collector).
type Collector struct {
	Traces []*Trace
}

// Absorb moves every trace from other into c, renumbering IDs to continue
// c's sequence, and leaves other empty. The parallel experiment runner gives
// each cell a private collector and absorbs them in cell-index order, which
// reproduces exactly the IDs a single shared collector would have assigned
// in a serial run — exports stay byte-identical.
func (c *Collector) Absorb(other *Collector) {
	if other == nil || other == c {
		return
	}
	for _, t := range other.Traces {
		t.ID = int64(len(c.Traces) + 1)
		c.Traces = append(c.Traces, t)
	}
	other.Traces = nil
}

// Tracer creates request traces at the client entry points. A nil *Tracer
// is valid and never samples, which is the zero-overhead default.
type Tracer struct {
	env   *sim.Env
	every int64
	seen  int64
	col   *Collector
}

// NewTracer creates a tracer sampling every Nth request (every <= 1 traces
// all requests) into its own collector.
func NewTracer(env *sim.Env, every int) *Tracer {
	return NewTracerInto(env, every, &Collector{})
}

// NewTracerInto is NewTracer appending into a shared collector.
func NewTracerInto(env *sim.Env, every int, col *Collector) *Tracer {
	if every < 1 {
		every = 1
	}
	if col == nil {
		col = &Collector{}
	}
	return &Tracer{env: env, every: int64(every), col: col}
}

// Request starts a trace for the next request, or returns nil when the
// request falls outside the sampling pattern (or the tracer is nil).
func (tc *Tracer) Request(name string) *Trace {
	if tc == nil {
		return nil
	}
	tc.seen++
	if tc.every > 1 && (tc.seen-1)%tc.every != 0 {
		return nil
	}
	t := &Trace{
		ID:    int64(len(tc.col.Traces) + 1),
		Name:  name,
		Start: tc.env.Now(),
		End:   -1,
		env:   tc.env,
		Spans: make([]Span, 0, 16),
	}
	tc.col.Traces = append(tc.col.Traces, t)
	return t
}

// Seen returns how many requests have passed the tracer (sampled or not).
func (tc *Tracer) Seen() int64 {
	if tc == nil {
		return 0
	}
	return tc.seen
}

// Traces returns the collected traces in creation order.
func (tc *Tracer) Traces() []*Trace {
	if tc == nil {
		return nil
	}
	return tc.col.Traces
}

// Collector returns the underlying collector.
func (tc *Tracer) Collector() *Collector {
	if tc == nil {
		return nil
	}
	return tc.col
}

// ---------------------------------------------------------------------------
// Counter: an always-on event reducer.
//
// Components that need running totals regardless of sampling (DaemonStats)
// feed their events through a Counter as well as the request trace; the
// stats struct is then *derived* from the reduced stream instead of being
// maintained as parallel bookkeeping.

// Counter reduces a named event stream to totals. Names keep first-seen
// order for deterministic iteration.
type Counter struct {
	names []string
	vals  map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{vals: make(map[string]int64)} }

// Add accumulates delta under name.
func (c *Counter) Add(name string, delta int64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += delta
}

// Get returns the total for name (0 when never seen).
func (c *Counter) Get(name string) int64 { return c.vals[name] }

// Names returns the event names in first-seen order.
func (c *Counter) Names() []string { return c.names }
