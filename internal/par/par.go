// Package par is the simulator's only concurrency shim outside internal/sim.
//
// The vread simulator is deterministic because every simulated Env is
// single-threaded: the sim discipline analyzer forbids goroutines, channels,
// and sync primitives everywhere else. But independent experiment cells —
// different (scenario, frequency, VM count) grid points, each with its own
// Env, RNG, and collectors — share nothing, so running them on separate OS
// threads cannot perturb results as long as outputs are collected by cell
// index rather than completion order.
//
// This package concentrates that one sanctioned use of real parallelism:
// Each fans a fixed index space over a bounded worker set, and Counter
// accumulates totals from concurrently running cells. internal/experiments
// calls these and stays free of go/sync itself, which keeps the analyzer
// allowlist to exactly two packages (sim for the coroutine engine, par for
// the fan-out).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree against n independent
// tasks: requested <= 0 means "one worker per available CPU" (GOMAXPROCS),
// and the result is clamped to [1, n] so callers can pass it straight to
// Each.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Each runs fn(i) for every i in [0, n) using at most workers OS threads and
// returns the error from the lowest failing index, or nil.
//
// With workers <= 1 it degrades to a plain serial loop on the calling
// goroutine — no goroutines are spawned, so serial runs have exactly the
// stack and scheduling behaviour they had before parallelism existed.
// Otherwise indices are handed out through an atomic counter; after the
// first failure workers stop claiming new indices (in-flight calls finish).
// fn must write its outputs into per-index slots — Each imposes no output
// ordering of its own.
func Each(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Gang is a fixed crew of persistent workers driven in lockstep rounds — the
// epoch-barrier primitive under the sharded event engine. Each Round(fn)
// runs fn(w) once per worker w in [0, n) and returns only after every call
// has finished: a full barrier on both sides, so fn bodies from consecutive
// rounds never overlap and everything written during round r is visible to
// every worker in round r+1 (channel synchronization orders the memory).
//
// Unlike Each, the workers persist across rounds. An epoch loop runs tens of
// thousands of short windows; respawning goroutines per window would cost
// more than the window's work.
//
// With n <= 1 no goroutines exist at all and Round calls fn(0) inline on the
// caller's stack — the serial engine stays byte-for-byte the pre-parallelism
// engine, scheduling included.
type Gang struct {
	n    int
	cmd  []chan func(int) error
	res  chan gangResult
	errs []error
}

type gangResult struct {
	w   int
	err error
}

// NewGang starts n-1 worker goroutines (the zeroth worker is the caller) and
// returns the gang. n < 1 is treated as 1. Close must be called to release
// the workers.
func NewGang(n int) *Gang {
	if n < 1 {
		n = 1
	}
	g := &Gang{n: n, errs: make([]error, n)}
	if n == 1 {
		return g
	}
	g.cmd = make([]chan func(int) error, n)
	g.res = make(chan gangResult, n-1)
	for w := 1; w < n; w++ {
		w := w
		g.cmd[w] = make(chan func(int) error)
		go func() {
			for fn := range g.cmd[w] {
				g.res <- gangResult{w, fn(w)}
			}
		}()
	}
	return g
}

// Workers returns the gang's worker count.
func (g *Gang) Workers() int { return g.n }

// Round runs fn(w) for every worker w in [0, n) — worker 0 on the calling
// goroutine, the rest on the persistent workers — and returns after all have
// completed. The error from the lowest failing worker is returned; every
// worker always runs to completion regardless of other workers' errors, so a
// failed round still leaves the gang at the barrier, safe to reuse or Close.
func (g *Gang) Round(fn func(w int) error) error {
	if g.n == 1 {
		return fn(0)
	}
	for w := 1; w < g.n; w++ {
		g.cmd[w] <- fn
	}
	g.errs[0] = fn(0)
	for i := 1; i < g.n; i++ {
		r := <-g.res
		g.errs[r.w] = r.err
	}
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases the worker goroutines. The gang must be outside a Round.
// Close is not idempotent; call it exactly once.
func (g *Gang) Close() {
	for w := 1; w < g.n; w++ {
		close(g.cmd[w])
	}
}

// Counter is an atomic accumulator for totals gathered across concurrently
// running cells (e.g. simulated-event counts feeding events/sec in the
// bench report).
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) {
	c.v.Add(delta)
}

// Load returns the current total.
func (c *Counter) Load() int64 {
	return c.v.Load()
}
