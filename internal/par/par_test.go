package par

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, maxprocs}, // 0 = one per CPU
		{-3, 100, maxprocs},
		{1, 100, 1},
		{7, 100, 7},
		{7, 3, 3},  // clamp to task count
		{7, 0, 1},  // never below 1
		{0, 1, 1},  // single cell stays serial
		{-1, 0, 1}, // degenerate
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestEachCoversAllIndicesSerial(t *testing.T) {
	testEachCoversAllIndices(t, 1)
}

func TestEachCoversAllIndicesParallel(t *testing.T) {
	testEachCoversAllIndices(t, 8)
}

func testEachCoversAllIndices(t *testing.T, workers int) {
	const n = 1000
	hits := make([]int, n) // per-index slots, no shared mutation
	err := Each(workers, n, func(i int) error {
		hits[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, h)
		}
	}
}

func TestEachZeroTasks(t *testing.T) {
	if err := Each(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	err := Each(1, 10, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 7:
			return errors.New("high")
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("serial Each returned %v, want the index-3 error", err)
	}

	// Parallel: whatever completion order, the reported error is from the
	// lowest failing index among those that actually ran.
	err = Each(8, 10, func(i int) error {
		return fmt.Errorf("cell %d", i)
	})
	if err == nil {
		t.Fatal("parallel Each returned nil, want an error")
	}
}

func TestEachStopsClaimingAfterFailure(t *testing.T) {
	// Serial mode must stop at the first error and never reach later cells.
	reached := make([]bool, 10)
	boom := errors.New("boom")
	err := Each(1, 10, func(i int) error {
		reached[i] = true
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	for i := 3; i < 10; i++ {
		if reached[i] {
			t.Fatalf("serial Each ran index %d after index 2 failed", i)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero Counter = %d", got)
	}
	err := Each(8, 100, func(i int) error {
		c.Add(int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Load(); got != 4950 {
		t.Fatalf("Counter = %d, want 4950", got)
	}
}

func TestGangRoundsAreBarriers(t *testing.T) {
	const n = 4
	g := NewGang(n)
	defer g.Close()
	if g.Workers() != n {
		t.Fatalf("Workers() = %d, want %d", g.Workers(), n)
	}
	// Each round increments one slot per worker; after the round returns,
	// every slot must show the round's value — no straggler may still be
	// running. Writes from round r must be visible to all workers in r+1
	// without any synchronization inside fn.
	counts := make([]int, n)
	for round := 1; round <= 200; round++ {
		err := g.Round(func(w int) error {
			if counts[w] != round-1 {
				t.Errorf("worker %d entered round %d seeing count %d", w, round, counts[w])
			}
			counts[w]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for w, c := range counts {
			if c != round {
				t.Fatalf("after round %d worker %d count = %d", round, w, c)
			}
		}
	}
}

func TestGangErrorLowestWorkerWins(t *testing.T) {
	g := NewGang(5)
	defer g.Close()
	errA := errors.New("worker 1 failed")
	errB := errors.New("worker 3 failed")
	ran := make([]bool, 5)
	err := g.Round(func(w int) error {
		ran[w] = true
		switch w {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("Round error = %v, want lowest-worker error %v", err, errA)
	}
	for w, r := range ran {
		if !r {
			t.Fatalf("worker %d skipped in a failing round", w)
		}
	}
	// The gang must still be usable after a failed round.
	if err := g.Round(func(int) error { return nil }); err != nil {
		t.Fatalf("round after failure: %v", err)
	}
}

func TestGangSerialRunsInline(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewGang(1)
	defer g.Close()
	if got := runtime.NumGoroutine(); got != before {
		t.Fatalf("serial gang spawned goroutines: %d -> %d", before, got)
	}
	calls := 0
	if err := g.Round(func(w int) error {
		if w != 0 {
			t.Fatalf("serial gang ran worker %d", w)
		}
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("serial round ran fn %d times", calls)
	}
	g2 := NewGang(0)
	defer g2.Close()
	if g2.Workers() != 1 {
		t.Fatalf("NewGang(0).Workers() = %d, want 1", g2.Workers())
	}
}
