package hdfs

import "testing"

// FuzzWriteReqRoundTrip: the pipeline-write header survives encode/decode
// for arbitrary targets and sizes.
func FuzzWriteReqRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(64<<20), "dn1", "dn2", "")
	f.Add(int64(999), int64(0), "", "", "")
	f.Fuzz(func(t *testing.T, id, n int64, t1, t2, t3 string) {
		var targets []string
		for _, s := range []string{t1, t2, t3} {
			if s == "" {
				continue
			}
			if len(s) > targetNameLen {
				t.Skip()
			}
			for _, r := range s {
				if r == 0 { // NUL is the padding terminator
					t.Skip()
				}
			}
			targets = append(targets, s)
		}
		w := writeReq{id: BlockID(id), n: n, targets: targets}
		got := decodeWriteReq(encodeWriteReq(w).Bytes())
		if got.id != w.id || got.n != w.n || len(got.targets) != len(w.targets) {
			t.Fatalf("round trip: %+v vs %+v", got, w)
		}
		for i := range targets {
			if got.targets[i] != targets[i] {
				t.Fatalf("target %d: %q vs %q", i, got.targets[i], targets[i])
			}
		}
	})
}

// FuzzReadReqRoundTrip: the read header survives encode/decode.
func FuzzReadReqRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(0), int64(64<<10))
	f.Fuzz(func(t *testing.T, id, off, n int64) {
		r := readReq{id: BlockID(id), off: off, n: n}
		b := encodeReadReq(r).Bytes()
		if decodeOp(b) != opRead {
			t.Fatal("opcode lost")
		}
		got := decodeReadReq(b)
		if got != r {
			t.Fatalf("round trip: %+v vs %+v", got, r)
		}
	})
}
