// Package hdfs implements the Hadoop distributed file system of the paper's
// testbed (Hadoop 1.2.1 era): a namenode holding file→block metadata,
// datanode servers that store blocks as regular files in their VM's file
// system and stream them over TCP, and a DFSClient with the two read paths
// the paper re-implements (read1 sequential, read2 positional) plus the
// write pipeline.
//
// The vRead integration point is the BlockReader hook: when installed (by
// internal/core), DFSClient reads go through vRead descriptors, falling back
// to the original socket path exactly as Algorithms 1 and 2 prescribe.
package hdfs

import (
	"errors"
	"fmt"
	"time"

	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Errors returned by HDFS operations.
var (
	ErrNotFound   = errors.New("hdfs: file not found")
	ErrExists     = errors.New("hdfs: file already exists")
	ErrIncomplete = errors.New("hdfs: file not complete")
	ErrNoDatanode = errors.New("hdfs: no datanode available")
)

// DataPort is the datanode streaming port (Hadoop's 50010).
const DataPort = 50010

// Config holds HDFS parameters. Zero values select Hadoop-1.2-era defaults.
type Config struct {
	// BlockSize is the HDFS block size. Default 64 MiB.
	BlockSize int64
	// PacketBytes is the streaming packet size. Default 64 KiB.
	PacketBytes int64
	// ChecksumCyclesPerKB models CRC32 generation/verification per side.
	// Default 1500 (~1.5 cycles/byte in the era's Java CRC32).
	ChecksumCyclesPerKB int64
	// StreamCyclesPerKB is the client-side DFSInputStream/BlockReader Java
	// processing per received KB (buffer chains, packet reassembly).
	// Default 3600.
	StreamCyclesPerKB int64
	// DNStreamCyclesPerKB is the datanode-side BlockSender Java processing
	// per sent KB. Default 1200.
	DNStreamCyclesPerKB int64
	// PacketClientCycles is per-packet client processing (header parse,
	// bookkeeping). Default 20000.
	PacketClientCycles int64
	// PacketDNCycles is per-packet datanode processing. Default 15000.
	PacketDNCycles int64
	// RequestCycles is per-read-request datanode processing (DataXceiver
	// setup). Default 15000.
	RequestCycles int64
	// RPCLatency is a namenode RPC round trip. Default 250µs.
	RPCLatency time.Duration
	// RPCCycles is client-side RPC processing. Default 10000.
	RPCCycles int64
	// Replication is the write pipeline depth. Default 1 (the paper's
	// experiments place one replica per scenario).
	Replication int
	// ShortCircuit enables HDFS-2246/347 short-circuit local reads when the
	// client runs in the same VM as the datanode (§2.2 comparison).
	ShortCircuit bool
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 20
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 64 << 10
	}
	if c.ChecksumCyclesPerKB == 0 {
		c.ChecksumCyclesPerKB = 1500
	}
	if c.StreamCyclesPerKB == 0 {
		c.StreamCyclesPerKB = 3600
	}
	if c.DNStreamCyclesPerKB == 0 {
		c.DNStreamCyclesPerKB = 1200
	}
	if c.PacketClientCycles == 0 {
		c.PacketClientCycles = 20000
	}
	if c.PacketDNCycles == 0 {
		c.PacketDNCycles = 15000
	}
	if c.RequestCycles == 0 {
		c.RequestCycles = 15000
	}
	if c.RPCLatency == 0 {
		c.RPCLatency = 250 * time.Microsecond
	}
	if c.RPCCycles == 0 {
		c.RPCCycles = 10000
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	return c
}

func (c Config) checksumCycles(n int64) int64 { return n * c.ChecksumCyclesPerKB / 1024 }

// clientRecvCycles is the full client-side cost of receiving n streamed
// bytes: checksum verify + stream processing + per-packet overheads.
func (c Config) clientRecvCycles(n int64) int64 {
	packets := (n + c.PacketBytes - 1) / c.PacketBytes
	return c.checksumCycles(n) + n*c.StreamCyclesPerKB/1024 + packets*c.PacketClientCycles
}

// dnSendCycles is the datanode-side per-packet cost beyond raw copies.
func (c Config) dnSendCycles(n int64) int64 {
	return c.checksumCycles(n) + n*c.DNStreamCyclesPerKB/1024 + c.PacketDNCycles
}

// BlockID identifies one HDFS block.
type BlockID int64

// BlockName renders the on-disk file name of a block.
func (id BlockID) BlockName() string { return fmt.Sprintf("blk_%d", int64(id)) }

// BlockInfo is the namenode's record of one block.
type BlockInfo struct {
	ID         BlockID
	Size       int64
	FileOffset int64
	Locations  []string // datanode VM names, preferred order
}

// BlockName returns the block's file name.
func (b BlockInfo) BlockName() string { return b.ID.BlockName() }

// Topology resolves VM placement (implemented by netsim.Fabric).
type Topology interface {
	HostOf(vm string) (string, bool)
}

// DomainTopology extends Topology with the failure topology: which rack and
// fault domain a host sits in. netsim.Fabric implements it; placement layers
// that receive a plain Topology fall back to domain-blind behavior.
type DomainTopology interface {
	Topology
	RackOf(host string) (string, bool)
	DomainOf(host string) (string, bool)
}

// PlacementPolicy picks datanodes for a new block's replicas. key identifies
// the block being placed ("<path>#<index>") so consistent-hash policies can
// spread a file's blocks around the ring; topology-only policies ignore it.
type PlacementPolicy func(clientVM, key string, replication int) []string

// Namespace is the metadata plane a client, datanode, or vRead manager binds
// to: a single NameNode or a federated Router of namespace shards. The
// unexported methods keep implementations inside this package — federation
// is a property of the metadata service, not something callers compose.
type Namespace interface {
	Config() Config
	DataNodes() []string
	SetPlacementPolicy(p PlacementPolicy)
	AddBlockListener(l BlockEventListener)
	GetBlockLocations(p *sim.Proc, k *guest.Kernel, path string) ([]BlockInfo, error)
	CreateFile(p *sim.Proc, k *guest.Kernel, path string) error
	AllocateBlock(p *sim.Proc, k *guest.Kernel, path string) (BlockInfo, error)
	CompleteFile(p *sim.Proc, k *guest.Kernel, path string) error
	DeleteFile(p *sim.Proc, k *guest.Kernel, path string) error
	FileSize(path string) (int64, bool)
	Exists(path string) bool

	getBlockLocations(p *sim.Proc, k *guest.Kernel, tr *trace.Trace, path string) ([]BlockInfo, error)
	registerDataNode(dn *DataNode)
	blockReceived(dn string, id BlockID, size int64)
}

// BlockEventListener observes block lifecycle on a datanode — the namenode-
// driven trigger that vRead uses to refresh daemon mount points (§3.2).
type BlockEventListener interface {
	// BlockAdded fires when dn has completed writing the named block file.
	BlockAdded(dn string, blockPath string)
	// BlockRemoved fires when dn deletes the block file.
	BlockRemoved(dn string, blockPath string)
}

// NameNode holds all file metadata. RPCs to it are modeled as a fixed
// latency plus client cycles (the paper leaves client↔namenode logic
// untouched, and metadata traffic is not on the measured path).
type NameNode struct {
	env       *sim.Env
	cfg       Config
	topo      Topology
	files     map[string]*fileMeta
	datanodes map[string]*DataNode
	dnOrder   []string
	nextBlock BlockID // allocation count, not the ID itself
	// blockBase/blockStride stripe block IDs across federation shards:
	// shard i of S allocates i+1, i+1+S, i+1+2S, … so IDs stay cluster-
	// unique without shard coordination. A standalone namenode has
	// base 0, stride 1 (IDs 1, 2, 3, … as before).
	blockBase   int64
	blockStride int64
	placement   PlacementPolicy
	listeners   []BlockEventListener
	rrNext      int
}

type fileMeta struct {
	name     string
	blocks   []BlockInfo
	complete bool
}

// NewNameNode creates a standalone namenode (a federation of one).
func NewNameNode(env *sim.Env, cfg Config, topo Topology) *NameNode {
	return newShard(env, cfg, topo, 0, 1)
}

// newShard creates one namespace shard with a block-ID stripe.
func newShard(env *sim.Env, cfg Config, topo Topology, base, stride int64) *NameNode {
	nn := &NameNode{
		env:         env,
		cfg:         cfg.WithDefaults(),
		topo:        topo,
		files:       make(map[string]*fileMeta),
		datanodes:   make(map[string]*DataNode),
		blockBase:   base,
		blockStride: stride,
	}
	nn.placement = nn.defaultPlacement
	return nn
}

// Config returns the cluster configuration.
func (nn *NameNode) Config() Config { return nn.cfg }

// SetPlacementPolicy overrides replica placement (experiments use this to
// force co-located / remote / hybrid reads).
func (nn *NameNode) SetPlacementPolicy(p PlacementPolicy) { nn.placement = p }

// AddBlockListener registers a block lifecycle observer.
func (nn *NameNode) AddBlockListener(l BlockEventListener) {
	nn.listeners = append(nn.listeners, l)
}

// registerDataNode is called by StartDataNode.
func (nn *NameNode) registerDataNode(dn *DataNode) {
	if _, ok := nn.datanodes[dn.Name()]; ok {
		panic(fmt.Sprintf("hdfs: duplicate datanode %q", dn.Name()))
	}
	nn.datanodes[dn.Name()] = dn
	nn.dnOrder = append(nn.dnOrder, dn.Name())
}

// DataNodes returns the registered datanode names in registration order.
func (nn *NameNode) DataNodes() []string { return append([]string(nil), nn.dnOrder...) }

// defaultPlacement prefers a datanode co-located with the client (HVE-style
// topology awareness), then round-robins the rest. It ignores the block key.
func (nn *NameNode) defaultPlacement(clientVM, _ string, replication int) []string {
	clientHost, _ := nn.topo.HostOf(clientVM)
	var local, remote []string
	for _, name := range nn.dnOrder {
		h, _ := nn.topo.HostOf(name)
		if h == clientHost {
			local = append(local, name)
		} else {
			remote = append(remote, name)
		}
	}
	ordered := append(local, remote...)
	if len(ordered) == 0 {
		return nil
	}
	if replication > len(ordered) {
		replication = len(ordered)
	}
	// Rotate the non-local tail for balance across blocks.
	nn.rrNext++
	return append([]string(nil), ordered[:replication]...)
}

// orderLocations sorts replicas for a reader: same-VM first (short-circuit),
// then same-host, then remote.
func (nn *NameNode) orderLocations(clientVM string, locs []string) []string {
	clientHost, _ := nn.topo.HostOf(clientVM)
	var sameVM, sameHost, remote []string
	for _, l := range locs {
		h, _ := nn.topo.HostOf(l)
		switch {
		case l == clientVM:
			sameVM = append(sameVM, l)
		case h == clientHost:
			sameHost = append(sameHost, l)
		default:
			remote = append(remote, l)
		}
	}
	out := append(sameVM, sameHost...)
	return append(out, remote...)
}

// rpc charges one namenode round trip to the calling client.
func (nn *NameNode) rpc(p *sim.Proc, k *guest.Kernel) {
	nn.rpcT(p, k, nil)
}

// rpcT is rpc attributing the round trip to a request trace.
func (nn *NameNode) rpcT(p *sim.Proc, k *guest.Kernel, tr *trace.Trace) {
	sp := tr.Begin(trace.LayerClient, "namenode-rpc")
	k.VCPU().RunT(p, nn.cfg.RPCCycles, metrics.TagOthers, tr)
	p.Sleep(nn.cfg.RPCLatency)
	tr.EndSpan(sp, 0)
}

// GetBlockLocations returns the block list of a complete file, replica
// lists ordered for this client.
func (nn *NameNode) GetBlockLocations(p *sim.Proc, k *guest.Kernel, path string) ([]BlockInfo, error) {
	return nn.getBlockLocations(p, k, nil, path)
}

func (nn *NameNode) getBlockLocations(p *sim.Proc, k *guest.Kernel, tr *trace.Trace, path string) ([]BlockInfo, error) {
	nn.rpcT(p, k, tr)
	meta, ok := nn.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if !meta.complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, path)
	}
	out := make([]BlockInfo, len(meta.blocks))
	for i, b := range meta.blocks {
		b.Locations = nn.orderLocations(k.Name(), b.Locations)
		out[i] = b
	}
	return out, nil
}

// CreateFile registers a new, incomplete file.
func (nn *NameNode) CreateFile(p *sim.Proc, k *guest.Kernel, path string) error {
	nn.rpc(p, k)
	if _, ok := nn.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	nn.files[path] = &fileMeta{name: path}
	return nil
}

// AllocateBlock assigns the next block of an open file to datanodes.
func (nn *NameNode) AllocateBlock(p *sim.Proc, k *guest.Kernel, path string) (BlockInfo, error) {
	nn.rpc(p, k)
	meta, ok := nn.files[path]
	if !ok {
		return BlockInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	targets := nn.placement(k.Name(), fmt.Sprintf("%s#%d", path, len(meta.blocks)), nn.cfg.Replication)
	if len(targets) == 0 {
		return BlockInfo{}, ErrNoDatanode
	}
	nn.nextBlock++
	id := BlockID(nn.blockBase + 1 + (int64(nn.nextBlock)-1)*nn.blockStride)
	var off int64
	for _, b := range meta.blocks {
		off += b.Size
	}
	info := BlockInfo{ID: id, FileOffset: off, Locations: targets}
	meta.blocks = append(meta.blocks, info)
	return info, nil
}

// blockReceived records a completed replica and fires the vRead refresh
// trigger. Called by datanodes (not billed to the client).
func (nn *NameNode) blockReceived(dn string, id BlockID, size int64) {
	for _, meta := range nn.files {
		for i := range meta.blocks {
			if meta.blocks[i].ID == id {
				meta.blocks[i].Size = size
			}
		}
	}
	path := blockPath(id)
	for _, l := range nn.listeners {
		l.BlockAdded(dn, path)
	}
}

// CompleteFile marks a file complete (readable).
func (nn *NameNode) CompleteFile(p *sim.Proc, k *guest.Kernel, path string) error {
	nn.rpc(p, k)
	meta, ok := nn.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	meta.complete = true
	return nil
}

// DeleteFile removes a file's metadata and its block files on datanodes.
func (nn *NameNode) DeleteFile(p *sim.Proc, k *guest.Kernel, path string) error {
	nn.rpc(p, k)
	meta, ok := nn.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(nn.files, path)
	for _, b := range meta.blocks {
		for _, loc := range b.Locations {
			if dn := nn.datanodes[loc]; dn != nil {
				dn.removeBlock(p, b.ID)
				for _, l := range nn.listeners {
					l.BlockRemoved(loc, blockPath(b.ID))
				}
			}
		}
	}
	return nil
}

// FileSize returns the total length of a file.
func (nn *NameNode) FileSize(path string) (int64, bool) {
	meta, ok := nn.files[path]
	if !ok {
		return 0, false
	}
	var n int64
	for _, b := range meta.blocks {
		n += b.Size
	}
	return n, true
}

// Exists reports whether a path is registered.
func (nn *NameNode) Exists(path string) bool {
	_, ok := nn.files[path]
	return ok
}

// DataDir is where datanodes keep block files inside their VM.
const DataDir = "/hadoop/dfs/data"

// blockPath returns a block's file path inside the datanode VM.
func blockPath(id BlockID) string { return DataDir + "/" + id.BlockName() }

// BlockPath is the exported form used by the vRead daemon.
func BlockPath(id BlockID) string { return blockPath(id) }

// BlockPathByName returns the path for a block file name ("blk_7").
func BlockPathByName(name string) string { return DataDir + "/" + name }
