package hdfs

import (
	"fmt"

	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// DataNode serves block reads and pipeline writes from inside its VM. Blocks
// are ordinary files under /hadoop/dfs/data in the VM's file system — which
// is precisely what lets the vRead daemon read them from the hypervisor.
type DataNode struct {
	env      *sim.Env
	cfg      Config
	nn       Namespace
	kernel   *guest.Kernel
	listener *guest.Listener
	blocks   map[BlockID]int64
	served   int64 // bytes streamed to readers
	accepted int64 // connections accepted
}

// StartDataNode boots a datanode in the given VM kernel and registers it
// with the namespace (a standalone NameNode or a federated Router).
func StartDataNode(env *sim.Env, nn Namespace, kernel *guest.Kernel) *DataNode {
	if err := kernel.FS().MkdirAll(DataDir); err != nil {
		panic(fmt.Sprintf("hdfs: %v", err))
	}
	dn := &DataNode{
		env:    env,
		cfg:    nn.Config(),
		nn:     nn,
		kernel: kernel,
		blocks: make(map[BlockID]int64),
	}
	nn.registerDataNode(dn)
	dn.listener = kernel.Listen(DataPort)
	env.Go("datanode:"+kernel.Name(), dn.serve)
	return dn
}

// Name returns the datanode's VM name (its ID in the paper's terms).
func (dn *DataNode) Name() string { return dn.kernel.Name() }

// Kernel returns the VM kernel the datanode runs in.
func (dn *DataNode) Kernel() *guest.Kernel { return dn.kernel }

// Stop simulates a datanode crash: the listener closes, so new connections
// are refused. Readers fail over to other replicas.
func (dn *DataNode) Stop() {
	dn.listener.Close()
}

// HasBlock reports whether the datanode stores the block.
func (dn *DataNode) HasBlock(id BlockID) bool {
	_, ok := dn.blocks[id]
	return ok
}

// ServedBytes returns total bytes streamed to readers over TCP (zero when
// every read went through vRead).
func (dn *DataNode) ServedBytes() int64 { return dn.served }

// AcceptedConns returns how many DataXceiver sessions were opened.
func (dn *DataNode) AcceptedConns() int64 { return dn.accepted }

// serve accepts connections, one handler process each.
func (dn *DataNode) serve(p *sim.Proc) {
	for {
		conn, ok := dn.listener.Accept(p)
		if !ok {
			return
		}
		dn.accepted++
		dn.env.Go(fmt.Sprintf("dn:%s:xceiver", dn.Name()), func(hp *sim.Proc) {
			dn.handle(hp, conn)
		})
	}
}

// handle processes one DataXceiver session. Read sessions serve requests in
// a loop until the client closes (connection reuse for positional reads);
// write sessions carry one block and then close.
func (dn *DataNode) handle(p *sim.Proc, conn *guest.Conn) {
	for {
		hdr, ok := conn.RecvFull(p, readReqSize)
		if !ok {
			return
		}
		head := hdr.Bytes()
		switch decodeOp(head) {
		case opRead:
			if !dn.handleRead(p, conn, decodeReadReq(head)) {
				return
			}
		case opWrite:
			rest, ok := conn.RecvFull(p, writeReqSize-readReqSize)
			if !ok {
				return
			}
			dn.handleWrite(p, conn, decodeWriteReq(append(head, rest.Bytes()...)))
			return
		default:
			_ = conn.Send(p, encodeResp(statusErr, 0))
			return
		}
	}
}

// handleRead streams [off, off+n) of a block in packet-sized reads:
// DataXceiver setup, per-packet file read (guest cache or virtio-blk),
// checksum generation, and socket send. It reports whether the connection
// is still usable for further requests.
func (dn *DataNode) handleRead(p *sim.Proc, conn *guest.Conn, req readReq) bool {
	// The connection adopted the client request's trace when the request
	// segment arrived, so server-side work attributes to that request.
	tr := conn.Trace()
	dn.kernel.VCPU().RunT(p, dn.cfg.RequestCycles, metrics.TagDatanodeApp, tr)
	path := blockPath(req.id)
	if _, err := dn.kernel.FS().Stat(path); err != nil {
		_ = conn.Send(p, encodeResp(statusErr, 0))
		conn.Close(p)
		return false
	}
	sp := tr.Begin(trace.LayerServer, "dn-read")
	if err := conn.Send(p, encodeResp(statusOK, req.n)); err != nil {
		tr.EndSpan(sp, 0)
		return false
	}
	sent := int64(0)
	for sent < req.n {
		pkt := req.n - sent
		if pkt > dn.cfg.PacketBytes {
			pkt = dn.cfg.PacketBytes
		}
		s, err := dn.kernel.ReadFileAtT(p, tr, path, req.off+sent, pkt)
		if err != nil {
			// Header already promised n bytes; this is a stream-level
			// failure (client sees premature EOF).
			tr.EndSpan(sp, sent)
			conn.Close(p)
			return false
		}
		dn.kernel.VCPU().RunT(p, dn.cfg.dnSendCycles(pkt), metrics.TagDatanodeApp, tr)
		if err := conn.Send(p, s); err != nil {
			tr.EndSpan(sp, sent)
			return false
		}
		sent += pkt
	}
	tr.EndSpan(sp, sent)
	dn.served += sent
	return true
}

// handleWrite receives a block (possibly forwarding down a pipeline), stores
// it as a file, reports to the namenode, and acks upstream.
func (dn *DataNode) handleWrite(p *sim.Proc, conn *guest.Conn, req writeReq) {
	dn.kernel.VCPU().Run(p, dn.cfg.RequestCycles, metrics.TagDatanodeApp)
	path := blockPath(req.id)
	if err := dn.kernel.CreateFile(p, path); err != nil {
		_ = conn.Send(p, encodeAck(statusErr))
		conn.Close(p)
		return
	}
	// Open the downstream pipeline before receiving data.
	var next *guest.Conn
	if len(req.targets) > 0 {
		var err error
		next, err = dn.kernel.Dial(p, req.targets[0], DataPort)
		if err == nil {
			err = next.Send(p, encodeWriteReq(writeReq{id: req.id, n: req.n, targets: req.targets[1:]}))
		}
		if err != nil {
			_ = conn.Send(p, encodeAck(statusErr))
			conn.Close(p)
			return
		}
	}
	received := int64(0)
	for received < req.n {
		pkt := req.n - received
		if pkt > dn.cfg.PacketBytes {
			pkt = dn.cfg.PacketBytes
		}
		s, ok := conn.RecvFull(p, pkt)
		if !ok {
			conn.Close(p)
			return
		}
		dn.kernel.VCPU().Run(p, dn.cfg.checksumCycles(pkt), metrics.TagDatanodeApp)
		if err := dn.kernel.AppendFile(p, path, s.Content()); err != nil {
			conn.Close(p)
			return
		}
		if next != nil {
			if err := next.Send(p, s); err != nil {
				conn.Close(p)
				return
			}
		}
		received += pkt
	}
	if next != nil {
		if ack, ok := next.RecvFull(p, ackSize); !ok || decodeAck(ack.Bytes()) != statusOK {
			_ = conn.Send(p, encodeAck(statusErr))
			conn.Close(p)
			return
		}
		next.Close(p)
	}
	dn.blocks[req.id] = req.n
	dn.nn.blockReceived(dn.Name(), req.id, req.n)
	_ = conn.Send(p, encodeAck(statusOK))
	conn.Close(p)
}

// removeBlock deletes a block file (namenode-commanded).
func (dn *DataNode) removeBlock(p *sim.Proc, id BlockID) {
	if _, ok := dn.blocks[id]; !ok {
		return
	}
	delete(dn.blocks, id)
	_ = dn.kernel.RemoveFile(p, blockPath(id))
}
