package hdfs_test

import (
	"errors"
	"io"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// testCluster builds the paper's Figure 10 skeleton: client VM + datanode VM
// on host1, a second datanode VM on host2. Block size is shrunk to 4 MiB so
// multi-block files stay cheap to simulate.
type testCluster struct {
	c   *cluster.Cluster
	nn  *hdfs.NameNode
	dn1 *hdfs.DataNode
	dn2 *hdfs.DataNode
	cl  *hdfs.Client
}

func newTestCluster(t *testing.T, cfg hdfs.Config) *testCluster {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4 << 20
	}
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, cfg, c.Fabric)
	dn1 := hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	dn2 := hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)
	return &testCluster{c: c, nn: nn, dn1: dn1, dn2: dn2, cl: cl}
}

func (tc *testCluster) run(t *testing.T, d time.Duration, name string, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	tc.c.Go(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	if err := tc.c.Env.RunUntil(tc.c.Env.Now() + d); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("%s did not finish within %v", name, d)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 21, Size: 10 << 20} // 10 MiB = 3 blocks of 4 MiB

	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/user/test/file1", content); err != nil {
			t.Error(err)
		}
	})
	if size, ok := tc.nn.FileSize("/user/test/file1"); !ok || size != content.Size {
		t.Fatalf("FileSize = %d,%v", size, ok)
	}

	tc.run(t, 60*time.Second, "reader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/user/test/file1")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if r.Size() != content.Size {
			t.Errorf("reader size = %d", r.Size())
		}
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("read-back bytes differ from written bytes")
		}
		if _, err := r.Read(p, 1); err != io.EOF {
			t.Errorf("Read at EOF = %v", err)
		}
	})
}

func TestReadSpansBlocks(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 5, Size: 9 << 20}
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	tc.run(t, 30*time.Second, "preader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		// A positional read crossing the first block boundary (read2).
		off := int64(4<<20) - 1000
		n := int64(5000)
		got, err := r.ReadAt(p, off, n)
		if err != nil {
			t.Error(err)
			return
		}
		want := data.NewSlice(content).Sub(off, n)
		if !data.Equal(got, want) {
			t.Error("cross-block pread bytes differ")
		}
	})
}

func TestSeekAndSequentialRead(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 6, Size: 6 << 20}
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	tc.run(t, 30*time.Second, "reader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if err := r.Seek(p, 5<<20); err != nil {
			t.Error(err)
			return
		}
		got, err := r.ReadFull(p, 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content).Sub(5<<20, 1<<20)) {
			t.Error("post-seek read differs")
		}
		if err := r.Seek(p, content.Size+1); err == nil {
			t.Error("seek past EOF succeeded")
		}
	})
}

func TestPlacementPrefersColocated(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", data.Pattern{Seed: 1, Size: 1 << 20}); err != nil {
			t.Error(err)
		}
	})
	// Default placement must have chosen dn1 (same host as client).
	if !tc.dn1.HasBlock(1) {
		t.Fatal("block not placed on co-located datanode")
	}
	if tc.dn2.HasBlock(1) {
		t.Fatal("replication-1 block also on remote datanode")
	}
}

func TestReplicationPipeline(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{Replication: 2})
	defer tc.c.Close()
	content := data.Pattern{Seed: 8, Size: 2 << 20}
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	if !tc.dn1.HasBlock(1) || !tc.dn2.HasBlock(1) {
		t.Fatal("replica missing from a pipeline member")
	}
	// Both copies hold identical bytes.
	for _, dn := range []*hdfs.DataNode{tc.dn1, tc.dn2} {
		s, err := dn.Kernel().FS().ReadAt(hdfs.BlockPath(1), 0, content.Size)
		if err != nil {
			t.Fatalf("%s: %v", dn.Name(), err)
		}
		if !data.Equal(s, data.NewSlice(content)) {
			t.Fatalf("%s holds corrupted replica", dn.Name())
		}
	}
}

func TestRemoteRead(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	// Force placement on the remote datanode only.
	tc.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
	content := data.Pattern{Seed: 13, Size: 3 << 20}
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	if !tc.dn2.HasBlock(1) || tc.dn1.HasBlock(1) {
		t.Fatal("placement override ignored")
	}
	tc.run(t, 30*time.Second, "reader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("remote read differs")
		}
	})
	// Remote read must cross the physical network.
	if tc.c.Fabric.NIC("host2").TxBytes() < content.Size {
		t.Fatalf("host2 NIC sent only %d bytes", tc.c.Fabric.NIC("host2").TxBytes())
	}
}

func TestOpenErrors(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	tc.run(t, 10*time.Second, "opener", func(p *sim.Proc) {
		if _, err := tc.cl.Open(p, "/missing"); !errors.Is(err, hdfs.ErrNotFound) {
			t.Errorf("Open missing = %v", err)
		}
		if err := tc.nn.CreateFile(p, tc.cl.Kernel(), "/incomplete"); err != nil {
			t.Error(err)
		}
		if _, err := tc.cl.Open(p, "/incomplete"); !errors.Is(err, hdfs.ErrIncomplete) {
			t.Errorf("Open incomplete = %v", err)
		}
		if err := tc.nn.CreateFile(p, tc.cl.Kernel(), "/incomplete"); !errors.Is(err, hdfs.ErrExists) {
			t.Errorf("duplicate create = %v", err)
		}
	})
}

func TestDeleteFileRemovesBlocks(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", data.Pattern{Seed: 2, Size: 1 << 20}); err != nil {
			t.Error(err)
		}
		if err := tc.cl.DeleteFile(p, "/f"); err != nil {
			t.Error(err)
		}
	})
	if tc.nn.Exists("/f") {
		t.Fatal("file metadata survives delete")
	}
	if tc.dn1.HasBlock(1) {
		t.Fatal("block survives delete")
	}
	if _, err := tc.dn1.Kernel().FS().Stat(hdfs.BlockPath(1)); err == nil {
		t.Fatal("block file survives delete")
	}
}

func TestBlockListenerFires(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	var added, removed []string
	tc.nn.AddBlockListener(listenerFuncs{
		add:    func(dn, path string) { added = append(added, dn+":"+path) },
		remove: func(dn, path string) { removed = append(removed, dn+":"+path) },
	})
	tc.run(t, 30*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", data.Pattern{Seed: 2, Size: 1 << 20}); err != nil {
			t.Error(err)
		}
		if err := tc.cl.DeleteFile(p, "/f"); err != nil {
			t.Error(err)
		}
	})
	if len(added) != 1 || added[0] != "dn1:/hadoop/dfs/data/blk_1" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 {
		t.Fatalf("removed = %v", removed)
	}
}

type listenerFuncs struct {
	add    func(dn, path string)
	remove func(dn, path string)
}

func (l listenerFuncs) BlockAdded(dn, path string)   { l.add(dn, path) }
func (l listenerFuncs) BlockRemoved(dn, path string) { l.remove(dn, path) }

func TestShortCircuitSkipsDatanodeProcess(t *testing.T) {
	// Client running *inside* the datanode VM with short-circuit on: the
	// datanode process streams nothing.
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	dnVM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 4 << 20, ShortCircuit: true}, c.Fabric)
	dn := hdfs.StartDataNode(c.Env, nn, dnVM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, dnVM.Kernel) // same VM
	defer c.Close()

	content := data.Pattern{Seed: 3, Size: 2 << 20}
	done := false
	c.Go("writer-reader", func(p *sim.Proc) {
		if err := cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
			return
		}
		r, err := cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("short-circuit read differs")
		}
		done = true
	})
	if err := c.Env.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("short-circuit read did not finish")
	}
	if dn.ServedBytes() != 0 {
		t.Fatalf("datanode streamed %d bytes despite short-circuit", dn.ServedBytes())
	}
}

func TestColocatedVsLocalDelayMotivation(t *testing.T) {
	// The essence of Figure 2: reading through the co-located datanode VM is
	// substantially slower than reading the same bytes from the local file
	// system in-VM.
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 30, Size: 8 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})

	var interVM, local time.Duration
	tc.run(t, 120*time.Second, "measure", func(p *sim.Proc) {
		// Cold caches on both sides.
		tc.dn1.Kernel().DropCaches()
		tc.cl.Kernel().DropCaches()
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		start := tc.c.Env.Now()
		if _, err := r.ReadFull(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		interVM = tc.c.Env.Now() - start
		r.Close(p)

		// Local baseline: the same bytes in the client VM's own FS.
		vm := tc.c.VM("client")
		if err := vm.FS.MkdirAll("/local"); err != nil {
			t.Error(err)
			return
		}
		if err := vm.FS.WriteFile("/local/f", content); err != nil {
			t.Error(err)
			return
		}
		vm.Kernel.DropCaches()
		start = tc.c.Env.Now()
		if _, err := vm.Kernel.ReadFileAt(p, "/local/f", 0, content.Size); err != nil {
			t.Error(err)
			return
		}
		local = tc.c.Env.Now() - start
	})
	if interVM < local*5/4 {
		t.Fatalf("inter-VM read %v not clearly slower than local read %v", interVM, local)
	}
}
