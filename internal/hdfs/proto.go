package hdfs

import (
	"encoding/binary"
	"fmt"

	"vread/internal/data"
)

// Wire protocol between DFSClient and datanodes: fixed-size binary headers
// followed by raw streamed data, length-framed so both sides always know how
// many bytes to expect.

const (
	opRead  uint64 = 1
	opWrite uint64 = 2

	statusOK  uint64 = 0
	statusErr uint64 = 1

	readReqSize   = 32  // op, blockID, off, len
	writeReqSize  = 128 // op, blockID, len, nTargets, 3×32-byte target names
	respHdrSize   = 16  // status, len
	ackSize       = 8   // status
	maxTargets    = 3
	targetNameLen = 32
)

type readReq struct {
	id  BlockID
	off int64
	n   int64
}

func encodeReadReq(r readReq) data.Slice {
	b := make([]byte, readReqSize)
	binary.BigEndian.PutUint64(b[0:], opRead)
	binary.BigEndian.PutUint64(b[8:], uint64(r.id))
	binary.BigEndian.PutUint64(b[16:], uint64(r.off))
	binary.BigEndian.PutUint64(b[24:], uint64(r.n))
	return data.NewSlice(data.Bytes(b))
}

type writeReq struct {
	id      BlockID
	n       int64
	targets []string // downstream pipeline (not including the receiver)
}

func encodeWriteReq(w writeReq) data.Slice {
	if len(w.targets) > maxTargets {
		panic(fmt.Sprintf("hdfs: %d pipeline targets exceeds %d", len(w.targets), maxTargets))
	}
	b := make([]byte, writeReqSize)
	binary.BigEndian.PutUint64(b[0:], opWrite)
	binary.BigEndian.PutUint64(b[8:], uint64(w.id))
	binary.BigEndian.PutUint64(b[16:], uint64(w.n))
	binary.BigEndian.PutUint64(b[24:], uint64(len(w.targets)))
	for i, tgt := range w.targets {
		if len(tgt) > targetNameLen {
			panic(fmt.Sprintf("hdfs: target name %q too long", tgt))
		}
		copy(b[32+i*targetNameLen:], tgt)
	}
	return data.NewSlice(data.Bytes(b))
}

// decodeOp reads the opcode from a request's first 8 bytes.
func decodeOp(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func decodeReadReq(b []byte) readReq {
	return readReq{
		id:  BlockID(binary.BigEndian.Uint64(b[8:])),
		off: int64(binary.BigEndian.Uint64(b[16:])),
		n:   int64(binary.BigEndian.Uint64(b[24:])),
	}
}

func decodeWriteReq(b []byte) writeReq {
	w := writeReq{
		id: BlockID(binary.BigEndian.Uint64(b[8:])),
		n:  int64(binary.BigEndian.Uint64(b[16:])),
	}
	nt := int(binary.BigEndian.Uint64(b[24:]))
	for i := 0; i < nt; i++ {
		raw := b[32+i*targetNameLen : 32+(i+1)*targetNameLen]
		end := 0
		for end < len(raw) && raw[end] != 0 {
			end++
		}
		w.targets = append(w.targets, string(raw[:end]))
	}
	return w
}

func encodeResp(status uint64, n int64) data.Slice {
	b := make([]byte, respHdrSize)
	binary.BigEndian.PutUint64(b[0:], status)
	binary.BigEndian.PutUint64(b[8:], uint64(n))
	return data.NewSlice(data.Bytes(b))
}

func decodeResp(b []byte) (status uint64, n int64) {
	return binary.BigEndian.Uint64(b[0:]), int64(binary.BigEndian.Uint64(b[8:]))
}

func encodeAck(status uint64) data.Slice {
	b := make([]byte, ackSize)
	binary.BigEndian.PutUint64(b, status)
	return data.NewSlice(data.Bytes(b))
}

func decodeAck(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
