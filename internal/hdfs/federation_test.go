package hdfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func ringOf(seed int64, nodes int) *Ring {
	r := NewRing(seed, 0)
	for i := 0; i < nodes; i++ {
		r.AddNode(fmt.Sprintf("dn%d", i), fmt.Sprintf("d%d", i%3))
	}
	return r
}

// TestRingDeterminism: two same-seed constructions are byte-identical, and
// the seed actually matters.
func TestRingDeterminism(t *testing.T) {
	a, b := ringOf(42, 10), ringOf(42, 10)
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("same-seed rings differ")
	}
	if bytes.Equal(a.Marshal(), ringOf(43, 10).Marshal()) {
		t.Fatal("different seeds produced identical rings")
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("/f%d#0", i)
		av, bv := a.Place(key, 3), b.Place(key, 3)
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			t.Fatalf("placement of %s diverged: %v vs %v", key, av, bv)
		}
	}
}

// TestRingRebalanceBound: removing one of N nodes moves only the keys it
// owned — about K/N of them, and never a key another node owned.
func TestRingRebalanceBound(t *testing.T) {
	const nodes, keys = 10, 2000
	r := ringOf(7, nodes)
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Place(fmt.Sprintf("key-%d", i), 1)[0]
	}
	const victim = "dn4"
	r.RemoveNode(victim)
	moved := 0
	for i := range before {
		after := r.Place(fmt.Sprintf("key-%d", i), 1)[0]
		if after == before[i] {
			continue
		}
		if before[i] != victim {
			t.Fatalf("key-%d moved from %s to %s although %s was the node removed", i, before[i], after, victim)
		}
		moved++
	}
	// Expect ~K/N = 200 moves; allow 2× slack for hash imbalance.
	if moved == 0 || moved > 2*keys/nodes {
		t.Fatalf("removal moved %d of %d keys, want ~%d (≤ %d)", moved, keys, keys/nodes, 2*keys/nodes)
	}
}

// TestRingDomainSpread: with enough domains, replicas land in distinct ones;
// when the replica count exceeds the domain count, nodes are still distinct.
func TestRingDomainSpread(t *testing.T) {
	r := ringOf(3, 9) // 9 nodes over domains d0,d1,d2
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("/spread/f%d#0", i)
		reps := r.Place(key, 3)
		if len(reps) != 3 {
			t.Fatalf("%s: got %d replicas", key, len(reps))
		}
		doms := map[string]bool{}
		for _, n := range reps {
			doms[r.DomainOf(n)] = true
		}
		if len(doms) != 3 {
			t.Fatalf("%s: replicas %v span only domains %v", key, reps, doms)
		}
		wide := r.Place(key, 5)
		seen := map[string]bool{}
		for _, n := range wide {
			if seen[n] {
				t.Fatalf("%s: duplicate node in %v", key, wide)
			}
			seen[n] = true
		}
		if len(wide) != 5 {
			t.Fatalf("%s: got %d of 5 replicas", key, len(wide))
		}
	}
}

type fixedTopo struct{}

func (fixedTopo) HostOf(vm string) (string, bool) { return "h", true }

// TestRouterMountsAndStripes: mount-table prefixes beat hash routing
// (longest prefix first), and the block-ID stripe is invertible.
func TestRouterMountsAndStripes(t *testing.T) {
	env := sim.NewEnv(1)
	ro := NewRouter(env, Config{}, fixedTopo{}, RouterOptions{Shards: 4, RingSeed: 9})
	ro.AddMount("/hot", 1)
	ro.AddMount("/hot/cold", 2)
	if got := ro.ShardOf("/hot/x"); got != 1 {
		t.Fatalf("/hot/x routed to %d", got)
	}
	if got := ro.ShardOf("/hot/cold/x"); got != 2 {
		t.Fatalf("/hot/cold/x routed to %d (longest prefix must win)", got)
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		idx := ro.ShardOf(fmt.Sprintf("/data/f%d", i))
		if idx < 0 || idx >= 4 {
			t.Fatalf("shard %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 3 {
		t.Fatalf("hash routing used only shards %v of 4", seen)
	}
	// Stripe: shard i allocates i+1, i+1+S, i+1+2S, …
	for i, sh := range ro.shards {
		for k := 0; k < 3; k++ {
			id := BlockID(sh.blockBase + 1 + int64(k)*sh.blockStride)
			if got := ro.shardOfBlock(id); got != i {
				t.Fatalf("block %d: shardOfBlock = %d, want %d", id, got, i)
			}
		}
	}
}

// TestFederationEndToEnd writes replicated files through a 4-shard router on
// a 3-domain topology and checks: block IDs are cluster-unique, replicas
// span 3 fault domains, reads return the written bytes, and PlacementOf is
// deterministic.
func TestFederationEndToEnd(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	hosts := c.BuildTopology(cluster.TopologySpec{Domains: 3, RacksPerDomain: 1, HostsPerRack: 2})
	for i, h := range hosts {
		h.AddVM(fmt.Sprintf("dn%d", i), metrics.TagDatanodeApp)
	}
	clientVM := hosts[0].AddVM("client", metrics.TagClientApp)

	ro := NewRouter(c.Env, Config{Replication: 3, BlockSize: 1 << 20}, c.Fabric,
		RouterOptions{Shards: 4, RingSeed: 1})
	for i := range hosts {
		StartDataNode(c.Env, ro, c.VM(fmt.Sprintf("dn%d", i)).Kernel)
	}
	cl := NewClient(c.Env, ro, clientVM.Kernel)

	const files = 6
	content := data.Pattern{Seed: 99, Size: 2<<20 + 512} // 3 blocks each
	done := false
	c.Go("fed", func(p *sim.Proc) {
		ids := map[BlockID]bool{}
		for f := 0; f < files; f++ {
			path := fmt.Sprintf("/fed/f%d", f)
			if err := cl.WriteFile(p, path, content); err != nil {
				t.Errorf("write %s: %v", path, err)
				return
			}
			infos, err := ro.GetBlockLocations(p, cl.Kernel(), path)
			if err != nil {
				t.Error(err)
				return
			}
			for _, b := range infos {
				if ids[b.ID] {
					t.Errorf("block ID %d allocated twice across shards", b.ID)
				}
				ids[b.ID] = true
				if ro.shardOfBlock(b.ID) != ro.ShardOf(path) {
					t.Errorf("block %d of %s: stripe says shard %d, path routes to %d",
						b.ID, path, ro.shardOfBlock(b.ID), ro.ShardOf(path))
				}
				doms := map[string]bool{}
				for _, loc := range b.Locations {
					host, _ := c.Fabric.HostOf(loc)
					d, _ := c.Fabric.DomainOf(host)
					doms[d] = true
				}
				if len(b.Locations) != 3 || len(doms) != 3 {
					t.Errorf("block %d: replicas %v span domains %v, want 3 across 3", b.ID, b.Locations, doms)
				}
			}
		}
		r, err := cl.Open(p, "/fed/f0")
		if err != nil {
			t.Error(err)
			return
		}
		got, err := r.ReadFull(p, content.Size)
		r.Close(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("read-back bytes differ from written bytes")
		}
		done = true
	})
	if err := c.Env.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("federation workload did not finish")
	}

	pa, err := ro.PlacementOf("/fed/f1")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := ro.PlacementOf("/fed/f1")
	if fmt.Sprintf("%+v", pa) != fmt.Sprintf("%+v", pb) {
		t.Fatal("PlacementOf is not deterministic")
	}
	if len(pa) != 3 || len(pa[0].Replicas) != 3 {
		t.Fatalf("placement shape wrong: %+v", pa)
	}
}
