// Federated namespace: a Router fronts N namespace shards (HDFS-federation /
// ViewFS mount-table style) and replaces topology-round-robin placement with
// a consistent-hash ring over the datanodes (Dynamo-style virtual nodes,
// replication factor N) that spreads replicas across fault domains
// (WAS-style storage stamps/racks).
//
// Determinism: the ring is built from an explicit seed, entries are kept
// fully sorted with total-order tie-breaks, and routing hashes contain no
// map iteration — two same-seed constructions are byte-identical
// (Ring.Marshal) and every placement decision replays exactly.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"vread/internal/faults"
	"vread/internal/guest"
	"vread/internal/sim"
	"vread/internal/trace"
)

// ErrShardDown is returned for namespace RPCs routed to a shard that a
// shard.kill fault has taken down and whose failover has not completed yet.
var ErrShardDown = errors.New("hdfs: namespace shard down (failover in progress)")

// DefaultFailoverDelay is how long a killed shard refuses RPCs before its
// standby takes over (lazy recovery: the window simply expires).
const DefaultFailoverDelay = 5 * time.Millisecond

// fnv1a is the ring/routing hash: FNV-1a 64, seed-mixed by hashing the seed
// bytes before the key bytes, then finalized with a murmur-style mixer. The
// finalizer matters: raw FNV-1a barely propagates trailing bytes into the
// high bits, so ring positions compared on the full 64-bit value would
// cluster keys that share a prefix (and starve some nodes entirely).
func fnv1a(seed int64, s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seed >> (8 * i)))
		h *= prime
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ---------------------------------------------------------------------------
// Consistent-hash ring.

// DefaultVNodes is the virtual-node count per ring member.
const DefaultVNodes = 64

type ringEntry struct {
	hash uint64
	node string
	vidx int
}

// Ring is a deterministic consistent-hash ring with virtual nodes and
// fault-domain-aware replica selection.
type Ring struct {
	seed    int64
	vnodes  int
	entries []ringEntry // sorted by (hash, node, vidx)
	domains map[string]string
	order   []string // node insertion order (reporting only)
}

// NewRing creates an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(seed int64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{seed: seed, vnodes: vnodes, domains: make(map[string]string)}
}

// AddNode inserts a node with its fault domain (empty = domain-blind).
func (r *Ring) AddNode(node, domain string) {
	if _, ok := r.domains[node]; ok {
		panic(fmt.Sprintf("hdfs: ring node %q already present", node))
	}
	r.domains[node] = domain
	r.order = append(r.order, node)
	for v := 0; v < r.vnodes; v++ {
		r.entries = append(r.entries, ringEntry{
			hash: fnv1a(r.seed, fmt.Sprintf("%s#%d", node, v)),
			node: node,
			vidx: v,
		})
	}
	sort.Slice(r.entries, func(i, j int) bool {
		a, b := r.entries[i], r.entries[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.vidx < b.vidx
	})
}

// RemoveNode drops a node and its virtual nodes (host death / decommission).
func (r *Ring) RemoveNode(node string) {
	if _, ok := r.domains[node]; !ok {
		return
	}
	delete(r.domains, node)
	for i, n := range r.order {
		if n == node {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.node != node {
			kept = append(kept, e)
		}
	}
	r.entries = kept
}

// Nodes returns the members in insertion order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.order...) }

// DomainOf returns a member's fault domain.
func (r *Ring) DomainOf(node string) string { return r.domains[node] }

// KeyPos returns the ring position a key hashes to.
func (r *Ring) KeyPos(key string) uint64 { return fnv1a(r.seed, key) }

// successor returns the index of the first entry at or after pos (wrapping).
func (r *Ring) successor(pos uint64) int {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= pos })
	if i == len(r.entries) {
		i = 0
	}
	return i
}

// Place returns up to n distinct nodes for a key: the successor walk first
// takes at most one node per fault domain (inter-domain durability — a rack
// or domain loss leaves live replicas), then, when domains are exhausted,
// fills with remaining distinct nodes (intra-domain redundancy).
func (r *Ring) Place(key string, n int) []string {
	if n <= 0 || len(r.entries) == 0 {
		return nil
	}
	start := r.successor(r.KeyPos(key))
	out := make([]string, 0, n)
	used := make(map[string]bool, n)
	usedDom := make(map[string]bool, n)
	for i := 0; i < len(r.entries) && len(out) < n; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if used[e.node] || usedDom[r.domains[e.node]] {
			continue
		}
		used[e.node] = true
		usedDom[r.domains[e.node]] = true
		out = append(out, e.node)
	}
	for i := 0; i < len(r.entries) && len(out) < n; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if used[e.node] {
			continue
		}
		used[e.node] = true
		out = append(out, e.node)
	}
	return out
}

// Marshal renders the full ring state as deterministic bytes — the byte-
// identity witness for same-seed constructions.
func (r *Ring) Marshal() []byte {
	var b []byte
	b = append(b, fmt.Sprintf("ring seed=%d vnodes=%d\n", r.seed, r.vnodes)...)
	for _, n := range r.order {
		b = append(b, fmt.Sprintf("node %s domain=%s\n", n, r.domains[n])...)
	}
	for _, e := range r.entries {
		b = append(b, fmt.Sprintf("%016x %s#%d\n", e.hash, e.node, e.vidx)...)
	}
	return b
}

// ---------------------------------------------------------------------------
// Federation router.

// RouterOptions tunes a federation.
type RouterOptions struct {
	// Shards is the namespace shard count. Default 1.
	Shards int
	// RingSeed seeds the consistent-hash ring (and path routing).
	RingSeed int64
	// VNodes per ring member. Default DefaultVNodes.
	VNodes int
	// FailoverDelay is how long a shard.kill keeps a shard down.
	// Default DefaultFailoverDelay.
	FailoverDelay time.Duration
}

// Router is the federated Namespace: a mount table routes each path to one
// of its shards, block IDs are striped so they stay cluster-unique, and a
// shared consistent-hash ring places replicas across fault domains.
type Router struct {
	env       *sim.Env
	cfg       Config
	topo      Topology
	shards    []*NameNode
	ring      *Ring
	seed      int64
	mounts    []mountEntry // longest-prefix mount table, checked in order
	faults    *faults.Plan
	failover  time.Duration
	deadUntil []time.Duration
	routed    int64
	kills     int64
}

type mountEntry struct {
	prefix string
	shard  int
}

// NewRouter creates a federation of namespace shards over one topology.
func NewRouter(env *sim.Env, cfg Config, topo Topology, opt RouterOptions) *Router {
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.FailoverDelay <= 0 {
		opt.FailoverDelay = DefaultFailoverDelay
	}
	ro := &Router{
		env:       env,
		cfg:       cfg.WithDefaults(),
		topo:      topo,
		ring:      NewRing(opt.RingSeed, opt.VNodes),
		seed:      opt.RingSeed,
		failover:  opt.FailoverDelay,
		deadUntil: make([]time.Duration, opt.Shards),
	}
	for i := 0; i < opt.Shards; i++ {
		sh := newShard(env, ro.cfg, topo, int64(i), int64(opt.Shards))
		sh.placement = ro.ringPlace
		ro.shards = append(ro.shards, sh)
	}
	return ro
}

// InjectFaults arms the shard.kill faultpoint, evaluated once per routed
// namespace RPC against the shard it routes to.
func (ro *Router) InjectFaults(plan *faults.Plan) { ro.faults = plan }

// NumShards returns the shard count.
func (ro *Router) NumShards() int { return len(ro.shards) }

// Ring returns the placement ring (read-only use).
func (ro *Router) Ring() *Ring { return ro.ring }

// Routed returns how many namespace RPCs were routed.
func (ro *Router) Routed() int64 { return ro.routed }

// ShardKills returns how many shard.kill faults have fired.
func (ro *Router) ShardKills() int64 { return ro.kills }

// AddMount pins a path prefix to a shard (ViewFS mount-table entry). Mounts
// are consulted before hash routing, longest prefix first.
func (ro *Router) AddMount(prefix string, shard int) {
	if shard < 0 || shard >= len(ro.shards) {
		panic(fmt.Sprintf("hdfs: mount %q → shard %d out of range", prefix, shard))
	}
	ro.mounts = append(ro.mounts, mountEntry{prefix: prefix, shard: shard})
	sort.SliceStable(ro.mounts, func(i, j int) bool {
		return len(ro.mounts[i].prefix) > len(ro.mounts[j].prefix)
	})
}

// ShardOf returns the shard index a path routes to.
func (ro *Router) ShardOf(path string) int {
	for _, m := range ro.mounts {
		if len(path) >= len(m.prefix) && path[:len(m.prefix)] == m.prefix {
			return m.shard
		}
	}
	return int(fnv1a(ro.seed, path) % uint64(len(ro.shards)))
}

// ShardDown reports whether a shard is currently refusing RPCs.
func (ro *Router) ShardDown(idx int) bool {
	return ro.env.Now() < ro.deadUntil[idx]
}

// shardOfBlock inverts the block-ID stripe.
func (ro *Router) shardOfBlock(id BlockID) int {
	return int((int64(id) - 1) % int64(len(ro.shards)))
}

// checkShard evaluates shard.kill for one routed RPC and reports whether the
// target shard is serving. A firing takes the shard down until failover
// elapses; RPCs meanwhile still pay the round trip (the client burned a
// timeout learning the answer) and fail with ErrShardDown.
func (ro *Router) checkShard(p *sim.Proc, k *guest.Kernel, tr *trace.Trace, idx int) error {
	ro.routed++
	if ro.faults.Should(faults.ShardKill) {
		ro.kills++
		until := ro.env.Now() + ro.failover
		if until > ro.deadUntil[idx] {
			ro.deadUntil[idx] = until
		}
	}
	if ro.env.Now() < ro.deadUntil[idx] {
		ro.shards[idx].rpcT(p, k, tr)
		return fmt.Errorf("%w: shard %d", ErrShardDown, idx)
	}
	return nil
}

// domainOfVM maps a VM to its host's fault domain ("" when unknown).
func (ro *Router) domainOfVM(vm string) string {
	host, ok := ro.topo.HostOf(vm)
	if !ok {
		return ""
	}
	dt, ok := ro.topo.(DomainTopology)
	if !ok {
		return ""
	}
	d, _ := dt.DomainOf(host)
	return d
}

// ringPlace is the federation placement policy: the ring picks replication
// distinct datanodes spread across fault domains, then the writer-domain
// replica (if the ring offered one) is promoted to pipeline head — the
// intra-domain synchronous copy lands close, the inter-domain copies carry
// the durability.
func (ro *Router) ringPlace(clientVM, key string, replication int) []string {
	nodes := ro.ring.Place(key, replication)
	cd := ro.domainOfVM(clientVM)
	if cd != "" {
		for i, n := range nodes {
			if ro.domainOfVM(n) == cd {
				nodes[0], nodes[i] = nodes[i], nodes[0]
				break
			}
		}
	}
	return nodes
}

// Placement describes where one block of a path lives — the hdfs-cli
// `placement` view.
type Placement struct {
	Block   BlockID
	Shard   int
	RingPos uint64 // ring position of the block's placement key
	// Replicas in location order, each "dn@host rack=<r> domain=<d>".
	Replicas []string
}

// PlacementOf reports shard, ring position, and replica fault domains for
// every block of a path. Output order is deterministic: blocks in file
// order, replicas in stored location order.
func (ro *Router) PlacementOf(path string) ([]Placement, error) {
	idx := ro.ShardOf(path)
	meta, ok := ro.shards[idx].files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	dt, _ := ro.topo.(DomainTopology)
	out := make([]Placement, 0, len(meta.blocks))
	for i, b := range meta.blocks {
		pl := Placement{
			Block:   b.ID,
			Shard:   idx,
			RingPos: ro.ring.KeyPos(fmt.Sprintf("%s#%d", path, i)),
		}
		for _, loc := range b.Locations {
			host, _ := ro.topo.HostOf(loc)
			rack, domain := "", ""
			if dt != nil {
				rack, _ = dt.RackOf(host)
				domain, _ = dt.DomainOf(host)
			}
			pl.Replicas = append(pl.Replicas, fmt.Sprintf("%s@%s rack=%s domain=%s", loc, host, rack, domain))
		}
		out = append(out, pl)
	}
	return out, nil
}

// --- Namespace implementation ---------------------------------------------

// Config returns the cluster configuration.
func (ro *Router) Config() Config { return ro.cfg }

// DataNodes returns registered datanode names in registration order (every
// shard sees every datanode, so shard 0 speaks for the federation).
func (ro *Router) DataNodes() []string { return ro.shards[0].DataNodes() }

// SetPlacementPolicy overrides ring placement on every shard (tests use it
// to force degenerate layouts).
func (ro *Router) SetPlacementPolicy(p PlacementPolicy) {
	for _, sh := range ro.shards {
		sh.placement = p
	}
}

// AddBlockListener subscribes to block events on every shard.
func (ro *Router) AddBlockListener(l BlockEventListener) {
	for _, sh := range ro.shards {
		sh.AddBlockListener(l)
	}
}

// registerDataNode registers the datanode with every shard (any shard may
// route a delete to it) and joins it to the placement ring under its host's
// fault domain.
func (ro *Router) registerDataNode(dn *DataNode) {
	for _, sh := range ro.shards {
		sh.registerDataNode(dn)
	}
	ro.ring.AddNode(dn.Name(), ro.domainOfVM(dn.Name()))
}

// blockReceived routes a replica-completed report to the owning shard.
func (ro *Router) blockReceived(dn string, id BlockID, size int64) {
	ro.shards[ro.shardOfBlock(id)].blockReceived(dn, id, size)
}

// GetBlockLocations routes to the owning shard.
func (ro *Router) GetBlockLocations(p *sim.Proc, k *guest.Kernel, path string) ([]BlockInfo, error) {
	return ro.getBlockLocations(p, k, nil, path)
}

func (ro *Router) getBlockLocations(p *sim.Proc, k *guest.Kernel, tr *trace.Trace, path string) ([]BlockInfo, error) {
	idx := ro.ShardOf(path)
	if err := ro.checkShard(p, k, tr, idx); err != nil {
		return nil, err
	}
	return ro.shards[idx].getBlockLocations(p, k, tr, path)
}

// CreateFile routes to the owning shard.
func (ro *Router) CreateFile(p *sim.Proc, k *guest.Kernel, path string) error {
	idx := ro.ShardOf(path)
	if err := ro.checkShard(p, k, nil, idx); err != nil {
		return err
	}
	return ro.shards[idx].CreateFile(p, k, path)
}

// AllocateBlock routes to the owning shard.
func (ro *Router) AllocateBlock(p *sim.Proc, k *guest.Kernel, path string) (BlockInfo, error) {
	idx := ro.ShardOf(path)
	if err := ro.checkShard(p, k, nil, idx); err != nil {
		return BlockInfo{}, err
	}
	return ro.shards[idx].AllocateBlock(p, k, path)
}

// CompleteFile routes to the owning shard.
func (ro *Router) CompleteFile(p *sim.Proc, k *guest.Kernel, path string) error {
	idx := ro.ShardOf(path)
	if err := ro.checkShard(p, k, nil, idx); err != nil {
		return err
	}
	return ro.shards[idx].CompleteFile(p, k, path)
}

// DeleteFile routes to the owning shard.
func (ro *Router) DeleteFile(p *sim.Proc, k *guest.Kernel, path string) error {
	idx := ro.ShardOf(path)
	if err := ro.checkShard(p, k, nil, idx); err != nil {
		return err
	}
	return ro.shards[idx].DeleteFile(p, k, path)
}

// FileSize peeks the owning shard (pure metadata, no RPC billed).
func (ro *Router) FileSize(path string) (int64, bool) {
	return ro.shards[ro.ShardOf(path)].FileSize(path)
}

// Exists peeks the owning shard.
func (ro *Router) Exists(path string) bool {
	return ro.shards[ro.ShardOf(path)].Exists(path)
}
