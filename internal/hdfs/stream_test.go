package hdfs_test

import (
	"fmt"
	"testing"
	"time"

	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/sim"
)

// TestSeekAbandonsStreamCleanly: seeking away from an open stream aborts
// the datanode's push (RST semantics) instead of wedging the handler.
func TestSeekAbandonsStreamCleanly(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 51, Size: 8 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	tc.run(t, 120*time.Second, "seeker", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		for i := 0; i < 10; i++ {
			// Start a stream, read a little, abandon it by seeking.
			if _, err := r.Read(p, 64<<10); err != nil {
				t.Error(err)
				return
			}
			if err := r.Seek(p, int64(i)*512<<10); err != nil {
				t.Error(err)
				return
			}
		}
		// Drain stragglers so abandoned handlers can observe the RSTs.
		p.Sleep(time.Second)
	})
	// Every abandoned handler must have exited: the only long-lived procs
	// are the infrastructure loops (vhosts, iothreads, datanode accept
	// loops, daemons). Generous bound: well under one per abandoned stream.
	if live := tc.c.Env.Live(); live > 25 {
		t.Fatalf("%d live processes; abandoned stream handlers leaked", live)
	}
}

// TestPreadConnectionReuse: positional reads reuse one DataXceiver session
// per datanode instead of dialing per request.
func TestPreadConnectionReuse(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 52, Size: 4 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	before := tc.dn1.AcceptedConns()
	tc.run(t, 120*time.Second, "preader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		for i := 0; i < 50; i++ {
			off := int64(i) * 64 << 10
			s, err := r.ReadAt(p, off, 4<<10)
			if err != nil {
				t.Error(err)
				return
			}
			if !data.Equal(s, data.NewSlice(content).Sub(off, 4<<10)) {
				t.Error("pread bytes differ")
				return
			}
		}
	})
	if got := tc.dn1.AcceptedConns() - before; got != 1 {
		t.Fatalf("50 preads opened %d connections, want 1 (reuse)", got)
	}
}

// TestConcurrentFileReaders: several readers of one file make progress
// together and all verify their bytes (the 2-map-slot DFSIO situation).
func TestConcurrentFileReaders(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	content := data.Pattern{Seed: 53, Size: 6 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	done := 0
	for i := 0; i < 3; i++ {
		tc.c.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			r, err := tc.cl.Open(p, "/f")
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close(p)
			got, err := r.ReadFull(p, content.Size)
			if err != nil {
				t.Error(err)
				return
			}
			if !data.Equal(got, data.NewSlice(content)) {
				t.Error("concurrent reader got corrupted bytes")
				return
			}
			done++
		})
	}
	if err := tc.c.Env.RunUntil(tc.c.Env.Now() + 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("%d/3 concurrent readers finished", done)
	}
}

// TestWriteWhileReading: HDFS's write-once model — a file being written is
// unreadable (ErrIncomplete) until completed, then becomes readable without
// disturbing concurrent readers of other files.
func TestWriteWhileReading(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	a := data.Pattern{Seed: 54, Size: 4 << 20}
	tc.run(t, 60*time.Second, "writerA", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/a", a); err != nil {
			t.Error(err)
		}
	})
	finished := false
	tc.c.Go("readerA", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/a")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if _, err := r.ReadFull(p, a.Size); err != nil {
			t.Error(err)
			return
		}
		finished = true
	})
	tc.c.Go("writerB", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/b", data.Pattern{Seed: 55, Size: 4 << 20}); err != nil {
			t.Error(err)
		}
	})
	if err := tc.c.Env.RunUntil(tc.c.Env.Now() + 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("reader starved by concurrent writer")
	}
}
