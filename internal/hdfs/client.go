package hdfs

import (
	"fmt"
	"io"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// BlockHandle is an open vRead descriptor (Table 1's vfd) from the client's
// perspective. Every method carries the request trace (nil when untraced).
type BlockHandle interface {
	// ReadAt reads [off, off+n) of the block.
	ReadAt(p *sim.Proc, tr *trace.Trace, off, n int64) (data.Slice, error)
	// Close releases the descriptor.
	Close(p *sim.Proc, tr *trace.Trace)
}

// BlockReader is the pluggable read shortcut. internal/core installs the
// vRead implementation; a nil reader is vanilla HDFS.
type BlockReader interface {
	// OpenBlock attempts to open a block stored on the named datanode.
	// ok=false means "fall back to the original socket read path"
	// (Algorithm 1's vfd == null branch).
	OpenBlock(p *sim.Proc, tr *trace.Trace, client *guest.Kernel, info BlockInfo, datanode string) (BlockHandle, bool)
}

// Client is the DFSClient: the paper modifies exactly this layer
// (DFSInputStream read1/read2), leaving applications above untouched.
type Client struct {
	env    *sim.Env
	cfg    Config
	nn     Namespace
	kernel *guest.Kernel
	reader BlockReader
	tracer *trace.Tracer

	// Positional reads keep one connection per datanode (DataXceiver
	// sessions are reusable); preadMu serializes request/response pairs.
	preadConns map[string]*guest.Conn
	preadMu    map[string]*sim.Mutex
}

// NewClient creates a DFSClient inside the given VM kernel, bound to a
// namespace (a standalone NameNode or a federated Router).
func NewClient(env *sim.Env, nn Namespace, kernel *guest.Kernel) *Client {
	return &Client{
		env: env, cfg: nn.Config(), nn: nn, kernel: kernel,
		preadConns: make(map[string]*guest.Conn),
		preadMu:    make(map[string]*sim.Mutex),
	}
}

// SetBlockReader installs (or removes, with nil) the vRead shortcut.
func (c *Client) SetBlockReader(r BlockReader) { c.reader = r }

// SetTracer installs (or removes, with nil) the request tracer. Each Open,
// Read (read1) and ReadAt (read2) call becomes a sampling candidate.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// Tracer returns the installed request tracer (nil when untraced).
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// Kernel returns the client's VM kernel.
func (c *Client) Kernel() *guest.Kernel { return c.kernel }

// Namespace returns the metadata service the client is bound to.
func (c *Client) Namespace() Namespace { return c.nn }

// ---------------------------------------------------------------------------
// Write path.

// WriteFile streams content into HDFS as a new file, block by block through
// the datanode pipeline.
func (c *Client) WriteFile(p *sim.Proc, path string, content data.Content) error {
	if err := c.nn.CreateFile(p, c.kernel, path); err != nil {
		return err
	}
	total := content.Len()
	whole := data.NewSlice(content)
	for off := int64(0); off < total; {
		n := total - off
		if n > c.cfg.BlockSize {
			n = c.cfg.BlockSize
		}
		info, err := c.nn.AllocateBlock(p, c.kernel, path)
		if err != nil {
			return err
		}
		if err := c.writeBlock(p, info, whole.Sub(off, n)); err != nil {
			return err
		}
		off += n
	}
	return c.nn.CompleteFile(p, c.kernel, path)
}

// writeBlock pushes one block through the pipeline head.
func (c *Client) writeBlock(p *sim.Proc, info BlockInfo, s data.Slice) error {
	head := info.Locations[0]
	conn, err := c.kernel.Dial(p, head, DataPort)
	if err != nil {
		return fmt.Errorf("hdfs: pipeline to %s: %w", head, err)
	}
	defer conn.Close(p)
	if err := conn.Send(p, encodeWriteReq(writeReq{id: info.ID, n: s.Len(), targets: info.Locations[1:]})); err != nil {
		return err
	}
	for off := int64(0); off < s.Len(); {
		pkt := s.Len() - off
		if pkt > c.cfg.PacketBytes {
			pkt = c.cfg.PacketBytes
		}
		c.kernel.VCPU().Run(p, c.cfg.checksumCycles(pkt), c.appTag())
		if err := conn.Send(p, s.Sub(off, pkt)); err != nil {
			return err
		}
		off += pkt
	}
	ack, ok := conn.RecvFull(p, ackSize)
	if !ok || decodeAck(ack.Bytes()) != statusOK {
		return fmt.Errorf("hdfs: pipeline write of %s failed", info.BlockName())
	}
	return nil
}

// DeleteFile removes a file.
func (c *Client) DeleteFile(p *sim.Proc, path string) error {
	return c.nn.DeleteFile(p, c.kernel, path)
}

func (c *Client) appTag() string {
	return metrics.TagClientApp
}

// ---------------------------------------------------------------------------
// Read path.

// FileReader is a DFSInputStream: sequential Read (the paper's read1) and
// positional ReadAt (read2).
type FileReader struct {
	c       *Client
	path    string
	blocks  []BlockInfo
	size    int64
	pos     int64
	stream  *blockStream           // current socket stream (vanilla path)
	handles map[string]BlockHandle // the vfd hash of Algorithm 1
}

// Open fetches block locations and returns a reader positioned at 0.
func (c *Client) Open(p *sim.Proc, path string) (*FileReader, error) {
	tr := c.tracer.Request("open")
	blocks, err := c.nn.getBlockLocations(p, c.kernel, tr, path)
	tr.Finish(0)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, b := range blocks {
		size += b.Size
	}
	return &FileReader{
		c:       c,
		path:    path,
		blocks:  blocks,
		size:    size,
		handles: make(map[string]BlockHandle),
	}, nil
}

// Size returns the file length.
func (r *FileReader) Size() int64 { return r.size }

// Pos returns the stream position.
func (r *FileReader) Pos() int64 { return r.pos }

// Seek repositions the sequential stream (vRead_seek; the socket stream, if
// any, is abandoned like HDFS does on seek).
func (r *FileReader) Seek(p *sim.Proc, pos int64) error {
	if pos < 0 || pos > r.size {
		return fmt.Errorf("hdfs: seek to %d outside [0,%d]", pos, r.size)
	}
	r.dropStream(p)
	r.pos = pos
	return nil
}

// blockAt locates the block covering pos.
func (r *FileReader) blockAt(pos int64) (BlockInfo, bool) {
	for _, b := range r.blocks {
		if pos >= b.FileOffset && pos < b.FileOffset+b.Size {
			return b, true
		}
	}
	return BlockInfo{}, false
}

// Read is the paper's read1: sequential, within the current block, vRead
// descriptor first and socket fallback otherwise. It returns io.EOF at end
// of file.
func (r *FileReader) Read(p *sim.Proc, n int64) (data.Slice, error) {
	tr := r.c.tracer.Request("read1")
	s, err := r.read(p, tr, n)
	tr.Finish(s.Len())
	return s, err
}

func (r *FileReader) read(p *sim.Proc, tr *trace.Trace, n int64) (data.Slice, error) {
	if r.pos >= r.size {
		return data.Slice{}, io.EOF
	}
	blk, ok := r.blockAt(r.pos)
	if !ok {
		return data.Slice{}, fmt.Errorf("hdfs: no block at offset %d of %s", r.pos, r.path)
	}
	inBlk := r.pos - blk.FileOffset
	if max := blk.Size - inBlk; n > max {
		n = max
	}

	s, err := r.readFromBlock(p, tr, blk, inBlk, n, true)
	if err != nil {
		return data.Slice{}, err
	}
	r.pos += n
	// Algorithm 1 lines 24–28: close the descriptor at block end.
	if r.pos == blk.FileOffset+blk.Size {
		r.closeHandle(p, tr, blk)
		r.dropStream(p)
	}
	return s, nil
}

// ReadAt is the paper's read2: positional, possibly spanning blocks
// (Algorithm 2).
func (r *FileReader) ReadAt(p *sim.Proc, position, n int64) (data.Slice, error) {
	tr := r.c.tracer.Request("read2")
	s, err := r.readAt(p, tr, position, n)
	tr.Finish(s.Len())
	return s, err
}

func (r *FileReader) readAt(p *sim.Proc, tr *trace.Trace, position, n int64) (data.Slice, error) {
	if position < 0 || position+n > r.size {
		return data.Slice{}, fmt.Errorf("hdfs: pread [%d,%d) outside file of %d", position, position+n, r.size)
	}
	var parts data.Concat
	remaining := n
	for remaining > 0 {
		blk, ok := r.blockAt(position)
		if !ok {
			return data.Slice{}, fmt.Errorf("hdfs: no block at offset %d", position)
		}
		start := position - blk.FileOffset
		bytesToRead := blk.Size - start
		if bytesToRead > remaining {
			bytesToRead = remaining
		}
		s, err := r.readFromBlock(p, tr, blk, start, bytesToRead, false)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		remaining -= bytesToRead
		position += bytesToRead
	}
	return data.NewSlice(parts), nil
}

// readFromBlock dispatches one in-block range: short-circuit, vRead
// descriptor, or socket (streaming for read1, one-shot for read2). A
// failing replica is skipped and the next location tried (HDFS's dead-node
// failover).
func (r *FileReader) readFromBlock(p *sim.Proc, tr *trace.Trace, blk BlockInfo, off, n int64, sequential bool) (data.Slice, error) {
	if len(blk.Locations) == 0 {
		return data.Slice{}, ErrNoDatanode
	}
	var lastErr error
	for _, dn := range blk.Locations {
		s, err := r.readFromReplica(p, tr, blk, dn, off, n, sequential)
		if err == nil {
			return s, nil
		}
		lastErr = err
	}
	return data.Slice{}, fmt.Errorf("hdfs: all %d replicas of %s failed: %w",
		len(blk.Locations), blk.BlockName(), lastErr)
}

// readFromReplica reads one in-block range from one datanode. The trace
// records which of the three paths served the range.
func (r *FileReader) readFromReplica(p *sim.Proc, tr *trace.Trace, blk BlockInfo, dn string, off, n int64, sequential bool) (data.Slice, error) {
	// HDFS-2246 short-circuit: client and datanode share the VM.
	if r.c.cfg.ShortCircuit && dn == r.c.kernel.Name() {
		tr.Event(trace.LayerClient, "path:short-circuit", n)
		return r.c.kernel.ReadFileAtT(p, tr, blockPath(blk.ID), off, n)
	}

	// vRead path (Algorithm 1 lines 10–19).
	if r.c.reader != nil {
		h, ok := r.handles[blk.BlockName()]
		if !ok {
			if vfd, opened := r.c.reader.OpenBlock(p, tr, r.c.kernel, blk, dn); opened {
				r.handles[blk.BlockName()] = vfd
				h = vfd
			}
		}
		if h != nil {
			tr.Event(trace.LayerClient, "path:vread", n)
			s, err := h.ReadAt(p, tr, off, n)
			if err == nil {
				return s, nil
			}
			// Broken descriptor: drop it and fall through to the socket.
			h.Close(p, tr)
			delete(r.handles, blk.BlockName())
		}
	}

	// Original socket path (read_buffer / fetchBlocks).
	tr.Event(trace.LayerClient, "path:socket", n)
	if sequential {
		return r.streamRead(p, tr, blk, dn, off, n)
	}
	return r.oneShotRead(p, tr, blk, dn, off, n)
}

// blockStream is an open sequential socket read of one block's tail.
type blockStream struct {
	conn      *guest.Conn
	blockID   BlockID
	nextOff   int64
	remaining int64
}

// streamRead keeps one streaming request open per block and pulls n bytes.
func (r *FileReader) streamRead(p *sim.Proc, tr *trace.Trace, blk BlockInfo, dn string, off, n int64) (data.Slice, error) {
	st := r.stream
	if st == nil || st.blockID != blk.ID || st.nextOff != off {
		r.dropStream(p)
		conn, err := r.c.kernel.DialT(p, tr, dn, DataPort)
		if err != nil {
			return data.Slice{}, fmt.Errorf("hdfs: connect %s: %w", dn, err)
		}
		want := blk.Size - off
		if err := conn.Send(p, encodeReadReq(readReq{id: blk.ID, off: off, n: want})); err != nil {
			return data.Slice{}, err
		}
		hdr, ok := conn.RecvFull(p, respHdrSize)
		if !ok {
			return data.Slice{}, fmt.Errorf("hdfs: short response from %s", dn)
		}
		if status, _ := decodeResp(hdr.Bytes()); status != statusOK {
			conn.Close(p)
			return data.Slice{}, fmt.Errorf("hdfs: %s rejected read of %s", dn, blk.BlockName())
		}
		st = &blockStream{conn: conn, blockID: blk.ID, nextOff: off, remaining: want}
		r.stream = st
	}
	// Reused streams adopted earlier requests' traces from arriving data;
	// point the receive side back at this request before pulling.
	st.conn.SetTrace(tr)
	sp := tr.Begin(trace.LayerClient, "socket-stream")
	s, ok := st.conn.RecvFull(p, n)
	if !ok {
		tr.EndSpan(sp, 0)
		r.dropStream(p)
		return data.Slice{}, fmt.Errorf("hdfs: stream of %s ended early", blk.BlockName())
	}
	r.c.kernel.VCPU().RunT(p, r.c.cfg.clientRecvCycles(n), r.c.appTag(), tr)
	tr.EndSpan(sp, n)
	st.nextOff += n
	st.remaining -= n
	if st.remaining == 0 {
		r.dropStream(p)
	}
	return s, nil
}

// oneShotRead performs a single positional request (read2's fetchBlocks)
// over the client's cached per-datanode connection.
func (r *FileReader) oneShotRead(p *sim.Proc, tr *trace.Trace, blk BlockInfo, dn string, off, n int64) (data.Slice, error) {
	mu := r.c.preadMu[dn]
	if mu == nil {
		mu = sim.NewMutex(r.c.env)
		r.c.preadMu[dn] = mu
	}
	mu.Lock(p)
	defer mu.Unlock()

	conn := r.c.preadConns[dn]
	if conn == nil {
		var err error
		conn, err = r.c.kernel.DialT(p, tr, dn, DataPort)
		if err != nil {
			return data.Slice{}, fmt.Errorf("hdfs: connect %s: %w", dn, err)
		}
		r.c.preadConns[dn] = conn
	}
	// Cached connections still carry the previous request's trace.
	conn.SetTrace(tr)
	sp := tr.Begin(trace.LayerClient, "socket-pread")
	drop := func() {
		tr.EndSpan(sp, 0)
		conn.Close(p)
		delete(r.c.preadConns, dn)
	}
	if err := conn.Send(p, encodeReadReq(readReq{id: blk.ID, off: off, n: n})); err != nil {
		drop()
		return data.Slice{}, err
	}
	hdr, ok := conn.RecvFull(p, respHdrSize)
	if !ok {
		drop()
		return data.Slice{}, fmt.Errorf("hdfs: short response from %s", dn)
	}
	if status, _ := decodeResp(hdr.Bytes()); status != statusOK {
		drop()
		return data.Slice{}, fmt.Errorf("hdfs: %s rejected read of %s", dn, blk.BlockName())
	}
	s, ok := conn.RecvFull(p, n)
	if !ok {
		drop()
		return data.Slice{}, fmt.Errorf("hdfs: stream of %s ended early", blk.BlockName())
	}
	r.c.kernel.VCPU().RunT(p, r.c.cfg.clientRecvCycles(n), r.c.appTag(), tr)
	tr.EndSpan(sp, n)
	return s, nil
}

func (r *FileReader) closeHandle(p *sim.Proc, tr *trace.Trace, blk BlockInfo) {
	if h, ok := r.handles[blk.BlockName()]; ok {
		h.Close(p, tr)
		delete(r.handles, blk.BlockName())
	}
}

func (r *FileReader) dropStream(p *sim.Proc) {
	if r.stream != nil {
		r.stream.conn.Close(p)
		r.stream = nil
	}
}

// Close releases descriptors and streams.
func (r *FileReader) Close(p *sim.Proc) {
	for name, h := range r.handles {
		h.Close(p, nil)
		delete(r.handles, name)
	}
	r.dropStream(p)
}

// ReadFull reads exactly n sequential bytes via Read.
func (r *FileReader) ReadFull(p *sim.Proc, n int64) (data.Slice, error) {
	var parts data.Concat
	var got int64
	for got < n {
		s, err := r.Read(p, n-got)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		got += s.Len()
	}
	return data.NewSlice(parts), nil
}
