package hdfs_test

import (
	"testing"
	"time"

	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/sim"
)

// TestReadFailsOverToSecondReplica: with replication 2, killing the
// preferred (co-located) datanode leaves reads working off the remote
// replica.
func TestReadFailsOverToSecondReplica(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{Replication: 2})
	defer tc.c.Close()
	content := data.Pattern{Seed: 71, Size: 6 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	if !tc.dn1.HasBlock(1) || !tc.dn2.HasBlock(1) {
		t.Fatal("replicas not on both datanodes")
	}

	// Crash the co-located datanode.
	tc.dn1.Stop()

	tc.run(t, 120*time.Second, "reader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("failover read corrupted")
		}
	})
	if tc.dn2.ServedBytes() < content.Size {
		t.Fatalf("surviving replica served only %d bytes", tc.dn2.ServedBytes())
	}
}

// TestReadFailsWhenAllReplicasDead: with a single replica, killing its
// datanode makes reads fail with a replica-exhaustion error.
func TestReadFailsWhenAllReplicasDead(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{})
	defer tc.c.Close()
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", data.Pattern{Seed: 72, Size: 1 << 20}); err != nil {
			t.Error(err)
		}
	})
	tc.dn1.Stop()
	tc.run(t, 60*time.Second, "reader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if _, err := r.ReadFull(p, 1<<20); err == nil {
			t.Error("read from dead cluster succeeded")
		}
	})
}

// TestPositionalReadFailover: read2's per-request path also fails over.
func TestPositionalReadFailover(t *testing.T) {
	tc := newTestCluster(t, hdfs.Config{Replication: 2})
	defer tc.c.Close()
	content := data.Pattern{Seed: 73, Size: 2 << 20}
	tc.run(t, 60*time.Second, "writer", func(p *sim.Proc) {
		if err := tc.cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
		}
	})
	tc.dn1.Stop()
	tc.run(t, 120*time.Second, "preader", func(p *sim.Proc) {
		r, err := tc.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		s, err := r.ReadAt(p, 1<<20, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(s, data.NewSlice(content).Sub(1<<20, 64<<10)) {
			t.Error("failover pread corrupted")
		}
	})
}
