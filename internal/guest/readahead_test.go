package guest_test

import (
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// TestReadaheadAcceleratesSequential: the guest kernel's readahead makes a
// sequential chunked read of a cold file substantially faster than the same
// chunks in a cache-defeating order.
func TestReadaheadAcceleratesSequential(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	vm := h1.AddVM("vm", metrics.TagClientApp)
	const fileSize = 16 << 20
	const chunk = 64 << 10
	if err := vm.FS.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := vm.FS.WriteFile("/d/f", data.Pattern{Seed: 1, Size: fileSize}); err != nil {
		t.Fatal(err)
	}

	var seq, scattered time.Duration
	done := false
	c.Go("reader", func(p *sim.Proc) {
		k := vm.Kernel
		k.DropCaches()
		start := c.Env.Now()
		for off := int64(0); off < fileSize; off += chunk {
			if _, err := k.ReadFileAt(p, "/d/f", off, chunk); err != nil {
				t.Error(err)
				return
			}
		}
		seq = c.Env.Now() - start

		k.DropCaches()
		start = c.Env.Now()
		// Stride pattern: same chunk count, never sequential.
		const stride = 1 << 20
		for s := int64(0); s < stride; s += chunk {
			for off := s; off < fileSize; off += stride {
				if _, err := k.ReadFileAt(p, "/d/f", off, chunk); err != nil {
					t.Error(err)
					return
				}
			}
		}
		scattered = c.Env.Now() - start
		done = true
	})
	if err := c.Env.RunUntil(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("reader did not finish")
	}
	if seq >= scattered {
		t.Fatalf("sequential %v not faster than scattered %v; readahead ineffective", seq, scattered)
	}
	// Readahead must actually populate the cache, not just issue I/O.
	if ratio := float64(scattered) / float64(seq); ratio < 1.3 {
		t.Fatalf("scattered/sequential = %.2f; readahead too weak", ratio)
	}
}

// TestReadaheadRestartsAfterDropCaches: a second sequential pass after
// DropCaches must re-issue readahead (regression test for the stale
// raIssued bookkeeping bug).
func TestReadaheadRestartsAfterDropCaches(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	vm := h1.AddVM("vm", metrics.TagClientApp)
	const fileSize = 8 << 20
	if err := vm.FS.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := vm.FS.WriteFile("/d/f", data.Pattern{Seed: 2, Size: fileSize}); err != nil {
		t.Fatal(err)
	}
	var first, second time.Duration
	done := false
	c.Go("reader", func(p *sim.Proc) {
		k := vm.Kernel
		read := func() time.Duration {
			start := c.Env.Now()
			for off := int64(0); off < fileSize; off += 64 << 10 {
				if _, err := k.ReadFileAt(p, "/d/f", off, 64<<10); err != nil {
					t.Error(err)
					return 0
				}
			}
			return c.Env.Now() - start
		}
		k.DropCaches()
		first = read()
		k.DropCaches()
		second = read()
		done = true
	})
	if err := c.Env.RunUntil(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("reader did not finish")
	}
	// Both passes are cold; they must be within 10% of each other.
	ratio := float64(second) / float64(first)
	if ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("second cold pass %v vs first %v (ratio %.2f); readahead state stale", second, first, ratio)
	}
}
