package guest_test

import (
	"testing"
	"testing/quick"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// Property: for any sequence of send sizes and any receive chunking, the
// stream delivers exactly the concatenation of what was sent — across the
// full virtio/vhost path, co-located or remote.
func TestStreamIntegrityProperty(t *testing.T) {
	f := func(sendSizes []uint16, recvChunkSeed uint16, remote bool) bool {
		if len(sendSizes) == 0 {
			return true
		}
		if len(sendSizes) > 12 {
			sendSizes = sendSizes[:12]
		}
		c := cluster.New(3, cluster.Params{})
		defer c.Close()
		h1 := c.AddHost("h1")
		h2 := c.AddHost("h2")
		h1.AddVM("a", metrics.TagClientApp)
		if remote {
			h2.AddVM("b", metrics.TagDatanodeApp)
		} else {
			h1.AddVM("b", metrics.TagDatanodeApp)
		}

		var total int64
		var contents data.Concat
		for i, sz := range sendSizes {
			n := int64(sz)%100_000 + 1
			total += n
			contents = append(contents, data.Pattern{Seed: uint64(i) + 11, Size: n})
		}
		recvChunk := int64(recvChunkSeed)%70_000 + 1

		var got data.Slice
		okRun := true
		c.Go("server", func(p *sim.Proc) {
			l := c.VM("b").Kernel.Listen(1)
			conn, ok := l.Accept(p)
			if !ok {
				okRun = false
				return
			}
			var parts data.Concat
			var n int64
			for n < total {
				want := total - n
				if want > recvChunk {
					want = recvChunk
				}
				s, ok := conn.Recv(p, want)
				if !ok {
					okRun = false
					return
				}
				parts = append(parts, s.Content())
				n += s.Len()
			}
			got = data.NewSlice(parts)
		})
		c.Go("client", func(p *sim.Proc) {
			conn, err := c.VM("a").Kernel.Dial(p, "b", 1)
			if err != nil {
				okRun = false
				return
			}
			for _, part := range contents {
				if err := conn.Send(p, data.NewSlice(part)); err != nil {
					okRun = false
					return
				}
			}
		})
		if err := c.Env.RunUntil(5 * time.Minute); err != nil {
			return false
		}
		return okRun && got.Len() == total && data.Equal(got, data.NewSlice(contents))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
