// Package guest models the guest operating system of each VM: the socket
// layer (TCP-like reliable streams over virtio-net) and the file layer
// (guest page cache over virtio-blk), with syscall and user↔kernel copy
// costs charged to the VM's vCPU thread.
//
// Simplifications, documented for honesty:
//   - acknowledgements and window updates are free (they piggyback in real
//     TCP); the data path carries all modeled cost;
//   - connection handshakes are real frame exchanges (SYN / SYN-ACK / RST)
//     so connection setup pays the full virtualized path latency;
//   - in-order delivery is guaranteed by construction (one FIFO path), so
//     there is no retransmission machinery.
package guest

import (
	"errors"
	"fmt"

	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/fsim"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/storage"
	"vread/internal/trace"
	"vread/internal/virtio"
)

// Errors returned by the socket layer.
var (
	ErrRefused = errors.New("guest: connection refused")
	ErrClosed  = errors.New("guest: connection closed")
)

// Config holds guest-kernel cost parameters. Zero values select defaults.
type Config struct {
	// SyscallCycles per system call. Default 1500.
	SyscallCycles int64
	// CopyCyclesPerKB for user↔kernel copies. Default 256.
	CopyCyclesPerKB int64
	// TCPTxSegCycles is transmit-path TCP/IP processing per segment.
	// Default 4500.
	TCPTxSegCycles int64
	// TCPRxSegCycles is receive-path TCP/IP processing per segment.
	// Default 6000.
	TCPRxSegCycles int64
	// SockBufBytes is the per-connection send window. Default 1 MiB.
	SockBufBytes int64
	// SegmentBytes is the TSO segment size; must not exceed the virtio
	// segment size. Default 64 KiB.
	SegmentBytes int64
	// ReadaheadBytes is the guest kernel's sequential readahead window.
	// Default 512 KiB.
	ReadaheadBytes int64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.SyscallCycles == 0 {
		c.SyscallCycles = 1500
	}
	if c.CopyCyclesPerKB == 0 {
		c.CopyCyclesPerKB = 256
	}
	if c.TCPTxSegCycles == 0 {
		c.TCPTxSegCycles = 4500
	}
	if c.TCPRxSegCycles == 0 {
		c.TCPRxSegCycles = 6000
	}
	if c.SockBufBytes == 0 {
		c.SockBufBytes = 1 << 20
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 10
	}
	if c.ReadaheadBytes == 0 {
		c.ReadaheadBytes = 512 << 10
	}
	return c
}

func (c Config) copyCycles(n int64) int64 { return n * c.CopyCyclesPerKB / 1024 }

// Network is the cluster-wide registry that lets kernels resolve peers for
// connection bookkeeping (the data path still rides virtio/netsim).
type Network struct {
	env *sim.Env
	// kernels spans every host: in the sharded regime a looked-up kernel may
	// live on another LP's Env.
	//
	//lint:source lpowner(a registered kernel may live on another host's Env)
	kernels map[string]*Kernel
	//lint:owner(coordinator: kernel IDs are assigned at registration, before the clock starts)
	nextKid int64
	// crossEnv schedules a closure on the destination kernel's Env when the
	// two kernels live on different LPs — LP.Send in the sharded regime.
	crossEnv func(src, dst *Kernel, deliver func())
}

// NewNetwork creates an empty registry.
func NewNetwork(env *sim.Env) *Network {
	return &Network{env: env, kernels: make(map[string]*Kernel)}
}

// SetCrossEnv installs the cross-Env scheduling channel used when two
// connected kernels live on different Envs: deliver must run on dst's Env
// no earlier than the fabric lookahead. Single-env clusters never need it;
// sharded clusters wire it to LP.Send.
func (n *Network) SetCrossEnv(fn func(src, dst *Kernel, deliver func())) { n.crossEnv = fn }

// Kernel returns a registered kernel by VM name, or nil — a possibly-remote
// handle in the sharded regime.
//
//lint:source lpowner(the kernel may live on another host's Env)
func (n *Network) Kernel(vm string) *Kernel { return n.kernels[vm] }

// Kernel is one VM's guest OS.
type Kernel struct {
	env    *sim.Env
	cfg    Config
	name   string
	id     int64 // dense registration index; the high half of conn IDs
	appTag string
	vcpu   *cpusched.Thread
	net    *virtio.NetDev
	blk    *virtio.BlkDev
	cache  *storage.PageCache
	fs     *fsim.FS
	netw   *Network

	//lint:owner(lp: accept queues live on the kernel's own Env)
	listeners map[int]*sim.Queue[*Conn]
	//lint:owner(lp: connection state is touched only by this kernel's callbacks)
	conns map[int64]*connEnd
	//lint:owner(lp: per-kernel conn sequence — the LP-local half of conn IDs)
	connSeq  int64
	raSeq    map[fsim.Ino]int64 // next sequential offset per file
	raIssued map[fsim.Ino]int64 // readahead issued up to (exclusive)
	raFlight map[fsim.Ino][]*raWindow
}

// raWindow tracks one in-flight readahead I/O so overlapping reads wait on
// it instead of re-issuing the same disk work.
type raWindow struct {
	start, end int64
	finished   bool
	canceled   bool
	done       *sim.Signal
}

// KernelParams collects the pieces a Kernel is assembled from.
type KernelParams struct {
	Name    string // VM name (also the metrics entity)
	AppTag  string // metrics tag for application-attributed work
	VCPU    *cpusched.Thread
	NetDev  *virtio.NetDev
	BlkDev  *virtio.BlkDev
	Cache   *storage.PageCache // guest page cache
	FS      *fsim.FS           // the VM's disk-image file system
	Network *Network
}

// NewKernel assembles a guest kernel and registers it on the network.
func NewKernel(env *sim.Env, cfg Config, params KernelParams) *Kernel {
	k := &Kernel{
		env:       env,
		cfg:       cfg.WithDefaults(),
		name:      params.Name,
		appTag:    params.AppTag,
		vcpu:      params.VCPU,
		net:       params.NetDev,
		blk:       params.BlkDev,
		cache:     params.Cache,
		fs:        params.FS,
		netw:      params.Network,
		listeners: make(map[int]*sim.Queue[*Conn]),
		conns:     make(map[int64]*connEnd),
		raSeq:     make(map[fsim.Ino]int64),
		raIssued:  make(map[fsim.Ino]int64),
		raFlight:  make(map[fsim.Ino][]*raWindow),
	}
	if k.appTag == "" {
		k.appTag = metrics.TagClientApp
	}
	if k.net != nil {
		k.net.SetDeliver(k.handleFrame)
	}
	k.id = params.Network.nextKid
	params.Network.nextKid++
	params.Network.kernels[k.name] = k
	return k
}

// Name returns the VM name.
func (k *Kernel) Name() string { return k.name }

// Migrate rebinds the kernel to new virtual hardware after a live
// migration (new vCPU thread and devices on the destination host). The VM
// must be quiesced: no in-flight I/O on the old devices.
func (k *Kernel) Migrate(vcpu *cpusched.Thread, net *virtio.NetDev, blk *virtio.BlkDev) {
	k.vcpu = vcpu
	k.net = net
	k.blk = blk
	if k.net != nil {
		k.net.SetDeliver(k.handleFrame)
	}
}

// VCPU returns the VM's vCPU thread (workloads run compute on it).
func (k *Kernel) VCPU() *cpusched.Thread { return k.vcpu }

// FS returns the VM's file system.
func (k *Kernel) FS() *fsim.FS { return k.fs }

// Cache returns the guest page cache.
func (k *Kernel) Cache() *storage.PageCache { return k.cache }

// Env returns the simulation environment.
func (k *Kernel) Env() *sim.Env { return k.env }

// ---------------------------------------------------------------------------
// Socket layer.

type segKind int

const (
	segSYN segKind = iota
	segSYNACK
	segRST
	segData
	segFIN
)

type segMeta struct {
	kind   segKind
	connID int64
	port   int    // SYN only
	srcVM  string // SYN only
}

type connEnd struct {
	kernel       *Kernel
	peerVM       string
	tr           *trace.Trace // request currently attributed to this end
	key          int64        // id<<1 | role; role 0 = dialer, 1 = acceptor
	recvQ        []data.Slice
	recvBytes    int64
	recvSig      *sim.Signal
	inflight     int64 // bytes sent, not yet consumed by peer app
	windowSig    *sim.Signal
	synSig       *sim.Signal
	synOK        bool
	synDone      bool
	remoteClosed bool
	localClosed  bool
}

// Conn is one end of an established stream.
type Conn struct{ end *connEnd }

// PeerVM returns the VM name of the other end.
func (c *Conn) PeerVM() string { return c.end.peerVM }

// SetTrace attributes subsequent socket work on this end to the request
// trace (nil detaches). The passive end of a connection needs no SetTrace
// calls: it adopts the trace of each arriving segment, which is how a
// datanode's service cycles are charged to the requesting client's trace
// without the server code knowing about tracing at all.
func (c *Conn) SetTrace(tr *trace.Trace) { c.end.tr = tr }

// Trace returns the request currently attributed to this end (the trace of
// the most recent arriving segment, unless SetTrace overrode it).
func (c *Conn) Trace() *trace.Trace { return c.end.tr }

// Listen binds a port and returns the accept queue.
func (k *Kernel) Listen(port int) *Listener {
	if _, ok := k.listeners[port]; ok {
		panic(fmt.Sprintf("guest: port %d already bound on %s", port, k.name))
	}
	q := sim.NewQueue[*Conn](k.env, 0)
	k.listeners[port] = q
	return &Listener{kernel: k, port: port, q: q}
}

// Listener accepts inbound connections on one port.
type Listener struct {
	kernel *Kernel
	port   int
	q      *sim.Queue[*Conn]
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept(p *sim.Proc) (*Conn, bool) {
	return l.q.Get(p)
}

// Close unbinds the port.
func (l *Listener) Close() {
	delete(l.kernel.listeners, l.port)
	l.q.Close()
}

// Dial opens a stream to dstVM:port, paying a full SYN/SYN-ACK exchange
// through the virtualized network path.
func (k *Kernel) Dial(p *sim.Proc, dstVM string, port int) (*Conn, error) {
	return k.DialT(p, nil, dstVM, port)
}

// DialT is Dial with the handshake attributed to a request trace; the new
// connection's active end starts attributed to it.
func (k *Kernel) DialT(p *sim.Proc, tr *trace.Trace, dstVM string, port int) (*Conn, error) {
	if k.netw.Kernel(dstVM) == nil {
		return nil, fmt.Errorf("%w: unknown VM %s", ErrRefused, dstVM)
	}
	// Conn IDs are (kernel id, per-kernel sequence): no cross-LP counter,
	// and the numbering is identical at every shard count.
	k.connSeq++
	id := k.id<<32 | k.connSeq
	end := &connEnd{
		kernel: k, peerVM: dstVM, tr: tr, key: id << 1,
		recvSig:   sim.NewSignal(k.env),
		windowSig: sim.NewSignal(k.env),
		synSig:    sim.NewSignal(k.env),
	}
	k.conns[end.key] = end
	sp := tr.Begin(trace.LayerGuest, "dial")
	// The SYN targets the not-yet-existing acceptor end (key id<<1|1).
	k.sendSegment(p, tr, dstVM, data.NewSlice(data.Zero(64)), segMeta{kind: segSYN, connID: end.key | 1, port: port, srcVM: k.name})
	for !end.synDone {
		end.synSig.Wait(p)
	}
	tr.EndSpan(sp, 0)
	if !end.synOK {
		delete(k.conns, end.key)
		return nil, fmt.Errorf("%w: %s:%d", ErrRefused, dstVM, port)
	}
	return &Conn{end: end}, nil
}

// Send writes the slice to the stream, blocking on the send window and the
// virtio ring. Tags: syscall+user-copy to the app tag, TCP processing to
// "others".
func (c *Conn) Send(p *sim.Proc, s data.Slice) error {
	end := c.end
	k := end.kernel
	if end.localClosed {
		return ErrClosed
	}
	for off := int64(0); off < s.Len(); {
		seg := s.Len() - off
		if seg > k.cfg.SegmentBytes {
			seg = k.cfg.SegmentBytes
		}
		for end.inflight+seg > k.cfg.SockBufBytes && !end.remoteClosed {
			end.windowSig.Wait(p)
		}
		if end.remoteClosed {
			return ErrClosed // peer went away; stop streaming
		}
		end.inflight += seg
		k.sendSegment(p, end.tr, end.peerVM, s.Sub(off, seg), segMeta{kind: segData, connID: end.key ^ 1})
		off += seg
	}
	return nil
}

// sendSegment pays the guest transmit path and hands the frame to virtio.
// The frame carries the request trace so every downstream hop (vhost, wire,
// the receiving guest) charges against it.
func (k *Kernel) sendSegment(p *sim.Proc, tr *trace.Trace, dstVM string, payload data.Slice, meta segMeta) {
	k.vcpu.RunT(p, k.cfg.SyscallCycles+k.cfg.copyCycles(payload.Len()), k.appTag, tr)
	k.vcpu.RunT(p, k.cfg.TCPTxSegCycles, metrics.TagOthers, tr)
	k.net.Transmit(p, netsim.Frame{DstVM: dstVM, Payload: payload, Meta: meta, Trace: tr})
}

// Recv returns up to max bytes, blocking until data or EOF. ok is false at
// EOF (peer closed and buffer drained).
func (c *Conn) Recv(p *sim.Proc, max int64) (data.Slice, bool) {
	end := c.end
	k := end.kernel
	for end.recvBytes == 0 && !end.remoteClosed {
		end.recvSig.Wait(p)
	}
	if end.recvBytes == 0 {
		return data.Slice{}, false
	}
	var parts data.Concat
	var got int64
	for got < max && len(end.recvQ) > 0 {
		head := end.recvQ[0]
		take := head.Len()
		if take > max-got {
			take = max - got
			end.recvQ[0] = head.Sub(take, head.Len()-take)
			head = head.Sub(0, take)
		} else {
			end.recvQ = end.recvQ[1:]
		}
		parts = append(parts, sliceContent{head})
		got += take
	}
	end.recvBytes -= got
	// Window credit back to the sender (free, as piggybacked acks). The
	// sending end lives on the peer kernel's Env; creditPeer routes it there.
	k.creditPeer(end.peerVM, end.key^1, got)
	k.vcpu.RunT(p, k.cfg.SyscallCycles+k.cfg.copyCycles(got), k.appTag, end.tr)
	return data.Slice{C: parts, N: got}, true
}

// creditPeer returns window credit for consumed bytes to the sending end of
// a connection, on the Env that owns it: directly when the peer kernel
// shares this kernel's Env, through the network's cross-Env channel (with
// its lookahead delay) otherwise. This is the one place the socket layer
// touches another kernel's state, which is why it is the boundary.
//
//lint:owner(boundary: credit applies on the Env owning the sending end — same-Env directly, else via SetCrossEnv)
func (k *Kernel) creditPeer(peerVM string, connKey int64, bytes int64) {
	peerK := k.netw.Kernel(peerVM)
	if peerK == nil {
		return // peer torn down; nothing left to credit
	}
	if peerK.env == k.env {
		peerK.applyCredit(connKey, bytes)
		return
	}
	if k.netw.crossEnv == nil {
		panic(fmt.Sprintf("guest: kernels %s and %s live on different Envs and no cross-Env channel is set", k.name, peerVM))
	}
	k.netw.crossEnv(k, peerK, func() {
		peerK.applyCredit(connKey, bytes)
	})
}

// applyCredit releases window credit on the sending end. Runs on the Env
// that owns this kernel; a missing end (closed connection) is fine — the
// credit is moot.
func (k *Kernel) applyCredit(connKey int64, bytes int64) {
	if end, ok := k.conns[connKey]; ok {
		end.inflight -= bytes
		end.windowSig.Broadcast()
	}
}

// sliceContent adapts a Slice window into a Content (for reassembly).
type sliceContent struct{ s data.Slice }

func (sc sliceContent) Len() int64 { return sc.s.Len() }
func (sc sliceContent) ReadAt(b []byte, off int64) {
	sc.s.C.ReadAt(b, sc.s.Off+off)
}

// RecvFull reads exactly n bytes (or returns ok=false at premature EOF).
func (c *Conn) RecvFull(p *sim.Proc, n int64) (data.Slice, bool) {
	var parts data.Concat
	var got int64
	for got < n {
		s, ok := c.Recv(p, n-got)
		if !ok {
			return data.Slice{}, false
		}
		parts = append(parts, sliceContent{s})
		got += s.Len()
	}
	return data.Slice{C: parts, N: got}, true
}

// Close sends FIN. Reads on the peer drain and then report EOF.
func (c *Conn) Close(p *sim.Proc) {
	end := c.end
	if end.localClosed {
		return
	}
	end.localClosed = true
	end.kernel.sendSegment(p, end.tr, end.peerVM, data.Slice{C: data.Zero(0)}, segMeta{kind: segFIN, connID: end.key ^ 1})
}

// handleFrame is the virtio deliver hook: runs in event context after the
// guest IRQ charge; posts receive-path work on the vCPU.
func (k *Kernel) handleFrame(fr netsim.Frame) {
	meta, ok := fr.Meta.(segMeta)
	if !ok {
		panic(fmt.Sprintf("guest: %s received non-segment frame", k.name))
	}
	k.vcpu.PostT(k.cfg.TCPRxSegCycles, metrics.TagOthers, fr.Trace, func() {
		k.processSegment(fr, meta)
	})
}

func (k *Kernel) processSegment(fr netsim.Frame, meta segMeta) {
	switch meta.kind {
	case segSYN:
		k.acceptSYN(fr, meta)
	case segSYNACK, segRST:
		end := k.conns[meta.connID]
		if end == nil {
			return
		}
		end.synOK = meta.kind == segSYNACK
		end.synDone = true
		end.synSig.Broadcast()
	case segData:
		end := k.conns[meta.connID]
		if end == nil {
			return // data after close; drop
		}
		// Adopt the arriving segment's trace: the app work this data causes
		// (Recv copies, the reply it triggers) belongs to that request.
		end.tr = fr.Trace
		end.recvQ = append(end.recvQ, fr.Payload)
		end.recvBytes += fr.Payload.Len()
		end.recvSig.Broadcast()
	case segFIN:
		end := k.conns[meta.connID]
		if end == nil {
			return
		}
		end.remoteClosed = true
		end.recvSig.Broadcast()
		end.windowSig.Broadcast() // unblock senders into a dead peer
	}
}

// acceptSYN creates the passive end and replies (SYN-ACK or RST). The reply
// is sent by a short-lived kernel process so it pays the normal path.
func (k *Kernel) acceptSYN(fr netsim.Frame, meta segMeta) {
	q, ok := k.listeners[meta.port]
	if !ok {
		k.env.Go(fmt.Sprintf("%s:rst", k.name), func(p *sim.Proc) {
			k.sendSegment(p, fr.Trace, meta.srcVM, data.Slice{C: data.Zero(0)}, segMeta{kind: segRST, connID: meta.connID ^ 1})
		})
		return
	}
	end := &connEnd{
		kernel: k, peerVM: meta.srcVM, tr: fr.Trace, key: meta.connID, // SYN targeted this key
		recvSig:   sim.NewSignal(k.env),
		windowSig: sim.NewSignal(k.env),
		synSig:    sim.NewSignal(k.env),
	}
	k.conns[end.key] = end
	k.env.Go(fmt.Sprintf("%s:synack", k.name), func(p *sim.Proc) {
		k.sendSegment(p, fr.Trace, meta.srcVM, data.NewSlice(data.Zero(64)), segMeta{kind: segSYNACK, connID: meta.connID ^ 1})
	})
	q.TryPut(&Conn{end: end})
}

// ---------------------------------------------------------------------------
// File layer.

// ReadFileAt reads [off, off+n) of a file on the VM's disk through the guest
// page cache; misses go to virtio-blk. This is the paper's "local read"
// baseline: 2 copies (device→kernel via the virtqueue, kernel→user here).
func (k *Kernel) ReadFileAt(p *sim.Proc, path string, off, n int64) (data.Slice, error) {
	return k.ReadFileAtT(p, nil, path, off, n)
}

// ReadFileAtT is ReadFileAt attributed to a request trace: the read becomes
// one guest-layer span, page-cache hits and misses become events, and the
// virtio-blk round trip charges against the request.
func (k *Kernel) ReadFileAtT(p *sim.Proc, tr *trace.Trace, path string, off, n int64) (data.Slice, error) {
	sp := tr.Begin(trace.LayerGuest, "file-read")
	k.vcpu.RunT(p, k.cfg.SyscallCycles, k.appTag, tr)
	node, err := k.fs.Stat(path)
	if err != nil {
		tr.EndSpan(sp, 0)
		return data.Slice{}, err
	}
	obj := int64(node.Ino())
	hit, miss := k.cache.Lookup(obj, off, n)
	if hit > 0 {
		tr.Event(trace.LayerGuest, "page-cache-hit", hit)
	}
	if miss > 0 {
		tr.Event(trace.LayerGuest, "page-cache-miss", miss)
		// Wait for any overlapping in-flight readahead before touching the
		// device ourselves — the kernel's lock_page-on-readahead behavior.
		k.waitInflightRA(p, node.Ino(), off, n)
		if _, miss = k.cache.Lookup(obj, off, n); miss > 0 {
			k.blk.ReadT(p, tr, miss)
			k.cache.Insert(obj, off, n)
		}
	}
	k.readahead(tr, node, off, n)
	k.vcpu.RunT(p, k.cfg.copyCycles(n), k.appTag, tr)
	s, err := k.fs.ReadAt(path, off, n)
	tr.EndSpan(sp, n)
	return s, err
}

// waitInflightRA blocks until no unfinished readahead window overlaps the
// range.
func (k *Kernel) waitInflightRA(p *sim.Proc, ino fsim.Ino, off, n int64) {
	for {
		var w *raWindow
		for _, cand := range k.raFlight[ino] {
			if !cand.finished && cand.start < off+n && off < cand.end {
				w = cand
				break
			}
		}
		if w == nil {
			return
		}
		for !w.finished {
			w.done.Wait(p)
		}
	}
}

// readahead issues an asynchronous block read of the next window when the
// access pattern is sequential (the guest kernel's readahead machinery, the
// reason streaming block files keeps the device busy ahead of the reader).
func (k *Kernel) readahead(tr *trace.Trace, node *fsim.Inode, off, n int64) {
	ino := node.Ino()
	end := off + n
	if off != k.raSeq[ino] {
		k.raSeq[ino] = end // pattern broken; re-arm
		k.raIssued[ino] = 0
		return
	}
	k.raSeq[ino] = end
	raStart := end
	if issued := k.raIssued[ino]; issued > raStart {
		raStart = issued
	}
	// Keep up to two full windows in flight ahead of the reader (the
	// kernel's async readahead pipeline), issuing whole windows at a time.
	if raStart-end >= 2*k.cfg.ReadaheadBytes {
		return
	}
	raEnd := raStart + k.cfg.ReadaheadBytes
	if raEnd > node.Size() {
		raEnd = node.Size()
	}
	if raEnd > raStart+k.blk.MaxRequestBytes() {
		raEnd = raStart + k.blk.MaxRequestBytes()
	}
	if raEnd <= raStart {
		return
	}
	obj := int64(ino)
	if k.cache.Contains(obj, raStart, raEnd-raStart) {
		k.raIssued[ino] = raEnd
		return
	}
	w := &raWindow{start: raStart, end: raEnd, done: sim.NewSignal(k.env)}
	if k.blk.TryReadAsyncT(tr, raEnd-raStart, func() {
		if !w.canceled {
			k.cache.Insert(obj, w.start, w.end-w.start)
		}
		w.finished = true
		w.done.Broadcast()
		k.dropWindow(ino, w)
	}) {
		k.raFlight[ino] = append(k.raFlight[ino], w)
		k.raIssued[ino] = raEnd
	}
}

func (k *Kernel) dropWindow(ino fsim.Ino, w *raWindow) {
	list := k.raFlight[ino]
	for i, cand := range list {
		if cand == w {
			k.raFlight[ino] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// CreateFile creates an empty file (metadata only).
func (k *Kernel) CreateFile(p *sim.Proc, path string) error {
	k.vcpu.Run(p, k.cfg.SyscallCycles, k.appTag)
	_, err := k.fs.Create(path)
	return err
}

// AppendFile appends content to a file: user→kernel copy, page-cache
// insertion, and asynchronous writeback to virtio-blk.
func (k *Kernel) AppendFile(p *sim.Proc, path string, c data.Content) error {
	n := c.Len()
	k.vcpu.Run(p, k.cfg.SyscallCycles+k.cfg.copyCycles(n), k.appTag)
	node, err := k.fs.Stat(path)
	if err != nil {
		return err
	}
	oldSize := node.Size()
	if err := k.fs.Append(path, c); err != nil {
		return err
	}
	k.cache.Insert(int64(node.Ino()), oldSize, n)
	k.blk.WriteAsync(p, n)
	return nil
}

// MkdirAll creates directories (metadata only).
func (k *Kernel) MkdirAll(p *sim.Proc, path string) error {
	k.vcpu.Run(p, k.cfg.SyscallCycles, k.appTag)
	return k.fs.MkdirAll(path)
}

// RemoveFile deletes a file.
func (k *Kernel) RemoveFile(p *sim.Proc, path string) error {
	k.vcpu.Run(p, k.cfg.SyscallCycles, k.appTag)
	node, err := k.fs.Stat(path)
	if err != nil {
		return err
	}
	k.cache.InvalidateObject(int64(node.Ino()))
	return k.fs.Remove(path)
}

// RenameFile renames a file.
func (k *Kernel) RenameFile(p *sim.Proc, oldPath, newPath string) error {
	k.vcpu.Run(p, k.cfg.SyscallCycles, k.appTag)
	return k.fs.Rename(oldPath, newPath)
}

// DropCaches empties the guest page cache (the experiment's
// /proc/sys/vm/drop_caches between cold-read runs) and resets readahead
// tracking.
func (k *Kernel) DropCaches() {
	k.cache.DropAll()
	k.raSeq = make(map[fsim.Ino]int64)
	k.raIssued = make(map[fsim.Ino]int64)
	// In-flight readahead must not repopulate the dropped cache.
	for _, list := range k.raFlight {
		for _, w := range list {
			w.canceled = true
		}
	}
}
