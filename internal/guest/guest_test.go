package guest_test

import (
	"errors"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// testbed: two co-located VMs on host1, one remote VM on host2.
func newTestbed(t *testing.T) *cluster.Cluster {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	h1.AddVM("client", metrics.TagClientApp)
	h1.AddVM("dn1", metrics.TagDatanodeApp)
	h2.AddVM("dn2", metrics.TagDatanodeApp)
	return c
}

func TestSocketColocatedRoundTrip(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	payload := data.Pattern{Seed: 11, Size: 300 << 10} // spans 5 segments

	var got data.Slice
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn1").Kernel.Listen(50010)
		conn, ok := l.Accept(p)
		if !ok {
			t.Error("accept failed")
			return
		}
		s, ok := conn.RecvFull(p, payload.Size)
		if !ok {
			t.Error("recv failed")
			return
		}
		got = s
		// Echo a small ack back.
		if err := conn.Send(p, data.NewSlice(data.Bytes("ok"))); err != nil {
			t.Error(err)
		}
	})
	var ack string
	c.Go("client", func(p *sim.Proc) {
		k := c.VM("client").Kernel
		conn, err := k.Dial(p, "dn1", 50010)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(p, data.NewSlice(payload)); err != nil {
			t.Error(err)
			return
		}
		s, ok := conn.RecvFull(p, 2)
		if !ok {
			t.Error("no ack")
			return
		}
		ack = string(s.Bytes())
	})
	if err := c.Env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !data.Equal(got, data.NewSlice(payload)) {
		t.Fatal("payload corrupted through co-located socket")
	}
	if ack != "ok" {
		t.Fatalf("ack = %q", ack)
	}
	// Inter-VM traffic stays off the physical NIC.
	if c.Fabric.NIC("host1").TxFrames() != 0 {
		t.Fatal("co-located traffic used the physical NIC")
	}
}

func TestSocketRemoteRoundTrip(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	payload := data.Pattern{Seed: 12, Size: 200 << 10}
	var got data.Slice
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn2").Kernel.Listen(50010)
		conn, _ := l.Accept(p)
		got, _ = conn.RecvFull(p, payload.Size)
	})
	c.Go("client", func(p *sim.Proc) {
		conn, err := c.VM("client").Kernel.Dial(p, "dn2", 50010)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(p, data.NewSlice(payload)); err != nil {
			t.Error(err)
		}
	})
	if err := c.Env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !data.Equal(got, data.NewSlice(payload)) {
		t.Fatal("payload corrupted through remote socket")
	}
	if c.Fabric.NIC("host1").TxFrames() == 0 {
		t.Fatal("remote traffic never hit the physical NIC")
	}
}

func TestDialRefused(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	var err error
	c.Go("client", func(p *sim.Proc) {
		_, err = c.VM("client").Kernel.Dial(p, "dn1", 9999) // nothing listening
	})
	if runErr := c.Env.RunUntil(time.Second); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, guest.ErrRefused) {
		t.Fatalf("Dial error = %v, want ErrRefused", err)
	}
	var err2 error
	c.Go("client2", func(p *sim.Proc) {
		_, err2 = c.VM("client").Kernel.Dial(p, "ghost-vm", 1)
	})
	if runErr := c.Env.RunUntil(2 * time.Second); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err2, guest.ErrRefused) {
		t.Fatalf("Dial unknown VM error = %v", err2)
	}
}

func TestCloseGivesEOF(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	var sawData, sawEOF bool
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn1").Kernel.Listen(50010)
		conn, _ := l.Accept(p)
		s, ok := conn.Recv(p, 1024)
		sawData = ok && s.Len() == 5
		_, ok = conn.Recv(p, 1024)
		sawEOF = !ok
	})
	c.Go("client", func(p *sim.Proc) {
		conn, err := c.VM("client").Kernel.Dial(p, "dn1", 50010)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(p, data.NewSlice(data.Bytes("hello"))); err != nil {
			t.Error(err)
		}
		conn.Close(p)
		if err := conn.Send(p, data.NewSlice(data.Bytes("x"))); !errors.Is(err, guest.ErrClosed) {
			t.Errorf("Send after Close = %v", err)
		}
	})
	if err := c.Env.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !sawData || !sawEOF {
		t.Fatalf("sawData=%v sawEOF=%v", sawData, sawEOF)
	}
}

func TestSendWindowBackpressure(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	const payload = 4 << 20 // 4 MiB, far above the 1 MiB window
	var sendDone, consumeStart time.Duration
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn1").Kernel.Listen(50010)
		conn, _ := l.Accept(p)
		p.Sleep(500 * time.Millisecond) // let the sender hit the window
		consumeStart = c.Env.Now()
		if _, ok := conn.RecvFull(p, payload); !ok {
			t.Error("recv failed")
		}
	})
	c.Go("client", func(p *sim.Proc) {
		conn, err := c.VM("client").Kernel.Dial(p, "dn1", 50010)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(p, data.NewSlice(data.Pattern{Seed: 1, Size: payload})); err != nil {
			t.Error(err)
		}
		sendDone = c.Env.Now()
	})
	if err := c.Env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sendDone <= consumeStart {
		t.Fatalf("Send finished at %v before consumer started at %v; window not enforced", sendDone, consumeStart)
	}
}

func TestTwoConnectionsIndependent(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	results := map[string]string{}
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn1").Kernel.Listen(50010)
		for i := 0; i < 2; i++ {
			conn, _ := l.Accept(p)
			c.Go("handler", func(p *sim.Proc) {
				s, _ := conn.RecvFull(p, 2)
				results[conn.PeerVM()+string(s.Bytes())] = "yes"
			})
		}
	})
	for _, src := range []string{"client", "dn2"} {
		src := src
		c.Go("dial:"+src, func(p *sim.Proc) {
			conn, err := c.VM(src).Kernel.Dial(p, "dn1", 50010)
			if err != nil {
				t.Error(err)
				return
			}
			msg := src[:2]
			if err := conn.Send(p, data.NewSlice(data.Bytes(msg))); err != nil {
				t.Error(err)
			}
		})
	}
	if err := c.Env.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if results["clientcl"] != "yes" || results["dn2dn"] != "yes" {
		t.Fatalf("results = %v", results)
	}
}

func TestFileReadCacheAndDisk(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	vm := c.VM("dn1")
	content := data.Pattern{Seed: 9, Size: 2 << 20}
	if err := vm.FS.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	if err := vm.FS.WriteFile("/data/blk", content); err != nil {
		t.Fatal(err)
	}

	var cold, warm time.Duration
	var coldReads int64
	c.Go("reader", func(p *sim.Proc) {
		k := vm.Kernel
		start := c.Env.Now()
		s, err := k.ReadFileAt(p, "/data/blk", 0, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		cold = c.Env.Now() - start
		if !data.Equal(s, data.NewSlice(content)) {
			t.Error("cold read corrupted")
		}
		coldReads = vm.Host.Disk.Stats().Reads

		start = c.Env.Now()
		if _, err := k.ReadFileAt(p, "/data/blk", 0, content.Size); err != nil {
			t.Error(err)
		}
		warm = c.Env.Now() - start
		if vm.Host.Disk.Stats().Reads != coldReads {
			t.Error("warm read touched the disk")
		}

		// Drop caches: next read hits the disk again.
		k.DropCaches()
		if _, err := k.ReadFileAt(p, "/data/blk", 0, content.Size); err != nil {
			t.Error(err)
		}
		if vm.Host.Disk.Stats().Reads == coldReads {
			t.Error("read after DropCaches did not touch the disk")
		}
	})
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if coldReads == 0 {
		t.Fatal("cold read never touched the disk")
	}
	if warm >= cold {
		t.Fatalf("warm read %v not faster than cold read %v", warm, cold)
	}
}

func TestAppendFileWritebackReachesDisk(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	vm := c.VM("dn1")
	if err := vm.FS.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	c.Go("writer", func(p *sim.Proc) {
		k := vm.Kernel
		if err := k.CreateFile(p, "/data/blk"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			if err := k.AppendFile(p, "/data/blk", data.Pattern{Seed: uint64(i), Size: 256 << 10}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := c.Env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	node, err := vm.FS.Stat("/data/blk")
	if err != nil {
		t.Fatal(err)
	}
	if node.Size() != 1<<20 {
		t.Fatalf("file size = %d", node.Size())
	}
	if w := vm.Host.Disk.Stats().BytesWritten; w != 1<<20 {
		t.Fatalf("disk received %d bytes of writeback", w)
	}
}

func TestTransferChargesExpectedEntities(t *testing.T) {
	c := newTestbed(t)
	defer c.Close()
	c.Reg.MarkWindow(0)
	const n = 1 << 20
	c.Go("server", func(p *sim.Proc) {
		l := c.VM("dn1").Kernel.Listen(50010)
		conn, _ := l.Accept(p)
		conn.RecvFull(p, n)
	})
	c.Go("client", func(p *sim.Proc) {
		conn, err := c.VM("client").Kernel.Dial(p, "dn1", 50010)
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, data.NewSlice(data.Pattern{Seed: 3, Size: n}))
	})
	if err := c.Env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Sender side: app copy + virtio copies (guest→host, inter-VM).
	if c.Reg.Cycles("client", metrics.TagClientApp) == 0 {
		t.Fatal("no client-application cycles")
	}
	senderCopies := c.Reg.Cycles("client", metrics.TagCopyVirtio)
	wantSender := 2 * (int64(n) * 256 / 1024)
	if senderCopies < wantSender*9/10 || senderCopies > wantSender*11/10 {
		t.Fatalf("sender virtio copies = %d, want ~%d", senderCopies, wantSender)
	}
	// Receiver side: datanode app copy on Recv, vhost only for sender.
	if c.Reg.Cycles("dn1", metrics.TagDatanodeApp) == 0 {
		t.Fatal("no datanode-application cycles")
	}
	if c.Reg.Cycles("client", metrics.TagVhostNet) == 0 {
		t.Fatal("no vhost-net cycles on sender")
	}
}

func TestGuestDeterminism(t *testing.T) {
	run := func() time.Duration {
		c := cluster.New(7, cluster.Params{})
		defer c.Close()
		h1 := c.AddHost("h1")
		h1.AddVM("a", metrics.TagClientApp)
		h1.AddVM("b", metrics.TagDatanodeApp)
		var done time.Duration
		c.Go("server", func(p *sim.Proc) {
			l := c.VM("b").Kernel.Listen(1)
			conn, _ := l.Accept(p)
			conn.RecvFull(p, 1<<20)
			done = c.Env.Now()
		})
		c.Go("client", func(p *sim.Proc) {
			conn, err := c.VM("a").Kernel.Dial(p, "b", 1)
			if err != nil {
				return
			}
			conn.Send(p, data.NewSlice(data.Pattern{Seed: 1, Size: 1 << 20}))
		})
		if err := c.Env.RunUntil(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return done
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic transfer: %v vs %v", a, b)
	}
}
