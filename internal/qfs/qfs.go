// Package qfs implements a second distributed file system in the
// QFS/GFS family — a metaserver tracking files as chunk lists and chunk
// servers storing 64 MiB chunk files inside their VMs — to demonstrate the
// paper's §3 claim that the vRead framework "is able to be generalized to
// other similar distributed file systems such as QFS and GFS".
//
// The integration point is deliberately thin: chunks are regular files in
// the chunk server VM's file system, so the same vRead daemons, mounts and
// rings serve them — the client plugs core.Lib in through the PathReader
// hook and the metaserver drives the daemon's dentry refresh exactly like
// the HDFS namenode does.
package qfs

import (
	"errors"
	"fmt"
	"time"

	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Errors returned by QFS operations.
var (
	ErrNotFound = errors.New("qfs: file not found")
	ErrExists   = errors.New("qfs: file already exists")
	ErrNoServer = errors.New("qfs: no chunk server available")
)

// ChunkPort is the chunk server port.
const ChunkPort = 20000

// ChunkDir is where chunk servers keep chunk files inside their VM.
const ChunkDir = "/qfs/chunks"

// Config holds QFS parameters.
type Config struct {
	// ChunkSize is the striping unit. Default 64 MiB.
	ChunkSize int64
	// PacketBytes is the streaming unit. Default 64 KiB.
	PacketBytes int64
	// RPCLatency is one metaserver round trip. Default 250µs.
	RPCLatency time.Duration
	// RPCCycles is client-side RPC processing. Default 10000.
	RPCCycles int64
	// IOCyclesPerKB is client/server per-KB processing (QFS's C++ stack is
	// leaner than Hadoop's Java one). Default 1800.
	IOCyclesPerKB int64
	// PacketCycles is per-packet processing on each side. Default 9000.
	PacketCycles int64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.ChunkSize == 0 {
		c.ChunkSize = 64 << 20
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 64 << 10
	}
	if c.RPCLatency == 0 {
		c.RPCLatency = 250 * time.Microsecond
	}
	if c.RPCCycles == 0 {
		c.RPCCycles = 10000
	}
	if c.IOCyclesPerKB == 0 {
		c.IOCyclesPerKB = 1800
	}
	if c.PacketCycles == 0 {
		c.PacketCycles = 9000
	}
	return c
}

func (c Config) ioCycles(n int64) int64 {
	packets := (n + c.PacketBytes - 1) / c.PacketBytes
	return n*c.IOCyclesPerKB/1024 + packets*c.PacketCycles
}

// ChunkID identifies one chunk.
type ChunkID int64

// Path returns the chunk's file path inside its chunk server VM.
func (id ChunkID) Path() string { return fmt.Sprintf("%s/chunk_%d", ChunkDir, int64(id)) }

// ChunkInfo is the metaserver's record of one chunk.
type ChunkInfo struct {
	ID         ChunkID
	Size       int64
	FileOffset int64
	Server     string // chunk server VM name
}

// FileEventListener observes chunk lifecycle (the vRead manager implements
// the same shape for HDFS; adapt with ListenerFunc).
type FileEventListener interface {
	BlockAdded(server, path string)
	BlockRemoved(server, path string)
}

// MetaServer tracks file → chunk metadata. As with the HDFS namenode,
// metadata RPCs are modeled as latency + client cycles.
type MetaServer struct {
	env       *sim.Env
	cfg       Config
	files     map[string]*fileMeta
	servers   map[string]*ChunkServer
	order     []string
	nextChunk ChunkID
	nextRR    int
	listeners []FileEventListener
}

type fileMeta struct {
	chunks   []ChunkInfo
	complete bool
}

// NewMetaServer creates an empty metaserver.
func NewMetaServer(env *sim.Env, cfg Config) *MetaServer {
	return &MetaServer{
		env:     env,
		cfg:     cfg.WithDefaults(),
		files:   make(map[string]*fileMeta),
		servers: make(map[string]*ChunkServer),
	}
}

// Config returns the cluster configuration.
func (ms *MetaServer) Config() Config { return ms.cfg }

// AddListener subscribes to chunk lifecycle events (vRead's refresh hook).
func (ms *MetaServer) AddListener(l FileEventListener) {
	ms.listeners = append(ms.listeners, l)
}

func (ms *MetaServer) rpc(p *sim.Proc, k *guest.Kernel) {
	ms.rpcT(p, k, nil)
}

// rpcT is rpc attributing the round trip to a request trace.
func (ms *MetaServer) rpcT(p *sim.Proc, k *guest.Kernel, tr *trace.Trace) {
	sp := tr.Begin(trace.LayerClient, "metaserver-rpc")
	k.VCPU().RunT(p, ms.cfg.RPCCycles, metrics.TagOthers, tr)
	p.Sleep(ms.cfg.RPCLatency)
	tr.EndSpan(sp, 0)
}

// allocateChunk assigns the next chunk round-robin across chunk servers.
func (ms *MetaServer) allocateChunk(path string) (ChunkInfo, error) {
	if len(ms.order) == 0 {
		return ChunkInfo{}, ErrNoServer
	}
	meta := ms.files[path]
	ms.nextChunk++
	var off int64
	for _, c := range meta.chunks {
		off += c.Size
	}
	info := ChunkInfo{
		ID:         ms.nextChunk,
		FileOffset: off,
		Server:     ms.order[ms.nextRR%len(ms.order)],
	}
	ms.nextRR++
	meta.chunks = append(meta.chunks, info)
	return info, nil
}

// chunkWritten records a completed chunk and fires the refresh listeners.
func (ms *MetaServer) chunkWritten(server string, id ChunkID, size int64) {
	for _, meta := range ms.files {
		for i := range meta.chunks {
			if meta.chunks[i].ID == id {
				meta.chunks[i].Size = size
			}
		}
	}
	for _, l := range ms.listeners {
		l.BlockAdded(server, id.Path())
	}
}

// GetChunks returns the chunk list of a complete file.
func (ms *MetaServer) GetChunks(p *sim.Proc, k *guest.Kernel, path string) ([]ChunkInfo, error) {
	return ms.getChunks(p, k, nil, path)
}

func (ms *MetaServer) getChunks(p *sim.Proc, k *guest.Kernel, tr *trace.Trace, path string) ([]ChunkInfo, error) {
	ms.rpcT(p, k, tr)
	meta, ok := ms.files[path]
	if !ok || !meta.complete {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]ChunkInfo(nil), meta.chunks...), nil
}

// FileSize returns a file's total size.
func (ms *MetaServer) FileSize(path string) (int64, bool) {
	meta, ok := ms.files[path]
	if !ok {
		return 0, false
	}
	var n int64
	for _, c := range meta.chunks {
		n += c.Size
	}
	return n, true
}
