package qfs

import (
	"fmt"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Handle is an open read descriptor for one chunk (core.VFD satisfies it).
type Handle interface {
	ReadAt(p *sim.Proc, tr *trace.Trace, off, n int64) (data.Slice, error)
	Close(p *sim.Proc, tr *trace.Trace)
}

// PathReader is the vRead generalization hook: open a file by path on a
// chunk server VM's disk image. A thin adapter over core.Lib.OpenPath
// implements it (see UseVReadFunc in the tests and examples).
type PathReader interface {
	OpenPath(p *sim.Proc, tr *trace.Trace, server, path, key string) (Handle, bool)
}

// PathReaderFunc adapts a function to PathReader.
type PathReaderFunc func(p *sim.Proc, tr *trace.Trace, server, path, key string) (Handle, bool)

// OpenPath implements PathReader.
func (f PathReaderFunc) OpenPath(p *sim.Proc, tr *trace.Trace, server, path, key string) (Handle, bool) {
	return f(p, tr, server, path, key)
}

// Client is the QFS client: chunk-striped writes and reads with the
// optional vRead shortcut.
type Client struct {
	env    *sim.Env
	cfg    Config
	ms     *MetaServer
	kernel *guest.Kernel
	reader PathReader
	tracer *trace.Tracer
}

// NewClient creates a client inside the VM kernel.
func NewClient(env *sim.Env, ms *MetaServer, kernel *guest.Kernel) *Client {
	return &Client{env: env, cfg: ms.cfg, ms: ms, kernel: kernel}
}

// SetPathReader installs (or removes, with nil) the vRead shortcut.
func (c *Client) SetPathReader(r PathReader) { c.reader = r }

// SetTracer installs (or removes, with nil) the request tracer. Each
// ReadFile and ReadAt call becomes a sampling candidate.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// Tracer returns the installed request tracer (nil when untraced).
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// Kernel returns the client's VM kernel.
func (c *Client) Kernel() *guest.Kernel { return c.kernel }

// WriteFile stripes content across chunk servers.
func (c *Client) WriteFile(p *sim.Proc, path string, content data.Content) error {
	c.ms.rpc(p, c.kernel)
	if _, ok := c.ms.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	c.ms.files[path] = &fileMeta{}
	total := content.Len()
	whole := data.NewSlice(content)
	for off := int64(0); off < total; {
		n := total - off
		if n > c.cfg.ChunkSize {
			n = c.cfg.ChunkSize
		}
		info, err := c.ms.allocateChunk(path)
		if err != nil {
			return err
		}
		if err := c.writeChunk(p, info, whole.Sub(off, n)); err != nil {
			return err
		}
		off += n
	}
	c.ms.files[path].complete = true
	return nil
}

func (c *Client) writeChunk(p *sim.Proc, info ChunkInfo, s data.Slice) error {
	conn, err := c.kernel.Dial(p, info.Server, ChunkPort)
	if err != nil {
		return err
	}
	defer conn.Close(p)
	if err := conn.Send(p, encodeHdr(opWriteChunk, info.ID, 0, s.Len())); err != nil {
		return err
	}
	for off := int64(0); off < s.Len(); {
		pkt := s.Len() - off
		if pkt > c.cfg.PacketBytes {
			pkt = c.cfg.PacketBytes
		}
		c.kernel.VCPU().Run(p, c.cfg.ioCycles(pkt), metrics.TagClientApp)
		if err := conn.Send(p, s.Sub(off, pkt)); err != nil {
			return err
		}
		off += pkt
	}
	if _, ok := conn.RecvFull(p, ackSize); !ok {
		return fmt.Errorf("qfs: chunk %d write unacked", info.ID)
	}
	return nil
}

// ReadFile reads the whole file, chunk by chunk, preferring vRead
// descriptors and falling back to chunk-server sockets.
func (c *Client) ReadFile(p *sim.Proc, path string) (data.Slice, error) {
	tr := c.tracer.Request("qfs-read")
	s, err := c.readFile(p, tr, path)
	tr.Finish(s.Len())
	return s, err
}

func (c *Client) readFile(p *sim.Proc, tr *trace.Trace, path string) (data.Slice, error) {
	chunks, err := c.ms.getChunks(p, c.kernel, tr, path)
	if err != nil {
		return data.Slice{}, err
	}
	var parts data.Concat
	var total int64
	for _, ch := range chunks {
		s, err := c.readChunk(p, tr, ch, 0, ch.Size)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		total += s.Len()
	}
	return data.Slice{C: parts, N: total}, nil
}

// ReadAt reads [off, off+n) of a file.
func (c *Client) ReadAt(p *sim.Proc, path string, off, n int64) (data.Slice, error) {
	tr := c.tracer.Request("qfs-pread")
	s, err := c.readAt(p, tr, path, off, n)
	tr.Finish(s.Len())
	return s, err
}

func (c *Client) readAt(p *sim.Proc, tr *trace.Trace, path string, off, n int64) (data.Slice, error) {
	chunks, err := c.ms.getChunks(p, c.kernel, tr, path)
	if err != nil {
		return data.Slice{}, err
	}
	var parts data.Concat
	var got int64
	for _, ch := range chunks {
		if off >= ch.FileOffset+ch.Size || off+n <= ch.FileOffset {
			continue
		}
		start := off - ch.FileOffset
		if start < 0 {
			start = 0
		}
		end := off + n - ch.FileOffset
		if end > ch.Size {
			end = ch.Size
		}
		s, err := c.readChunk(p, tr, ch, start, end-start)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		got += s.Len()
	}
	if got != n {
		return data.Slice{}, fmt.Errorf("qfs: read [%d,%d) of %s returned %d bytes", off, off+n, path, got)
	}
	return data.Slice{C: parts, N: got}, nil
}

func (c *Client) readChunk(p *sim.Proc, tr *trace.Trace, ch ChunkInfo, off, n int64) (data.Slice, error) {
	if c.reader != nil {
		if h, ok := c.reader.OpenPath(p, tr, ch.Server, ch.ID.Path(), fmt.Sprintf("qfs-chunk-%d", ch.ID)); ok {
			tr.Event(trace.LayerClient, "path:vread", n)
			s, err := h.ReadAt(p, tr, off, n)
			h.Close(p, tr)
			if err == nil {
				return s, nil
			}
		}
	}
	// Vanilla socket path.
	tr.Event(trace.LayerClient, "path:socket", n)
	conn, err := c.kernel.DialT(p, tr, ch.Server, ChunkPort)
	if err != nil {
		return data.Slice{}, err
	}
	defer conn.Close(p)
	sp := tr.Begin(trace.LayerClient, "socket-chunk")
	if err := conn.Send(p, encodeHdr(opReadChunk, ch.ID, off, n)); err != nil {
		tr.EndSpan(sp, 0)
		return data.Slice{}, err
	}
	s, ok := conn.RecvFull(p, n)
	if !ok {
		tr.EndSpan(sp, 0)
		return data.Slice{}, fmt.Errorf("qfs: chunk %d stream ended early", ch.ID)
	}
	c.kernel.VCPU().RunT(p, c.cfg.ioCycles(n), metrics.TagClientApp, tr)
	tr.EndSpan(sp, n)
	return s, nil
}
