package qfs

import (
	"fmt"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// Handle is an open read descriptor for one chunk (core.VFD satisfies it).
type Handle interface {
	ReadAt(p *sim.Proc, off, n int64) (data.Slice, error)
	Close(p *sim.Proc)
}

// PathReader is the vRead generalization hook: open a file by path on a
// chunk server VM's disk image. A thin adapter over core.Lib.OpenPath
// implements it (see UseVReadFunc in the tests and examples).
type PathReader interface {
	OpenPath(p *sim.Proc, server, path, key string) (Handle, bool)
}

// PathReaderFunc adapts a function to PathReader.
type PathReaderFunc func(p *sim.Proc, server, path, key string) (Handle, bool)

// OpenPath implements PathReader.
func (f PathReaderFunc) OpenPath(p *sim.Proc, server, path, key string) (Handle, bool) {
	return f(p, server, path, key)
}

// Client is the QFS client: chunk-striped writes and reads with the
// optional vRead shortcut.
type Client struct {
	env    *sim.Env
	cfg    Config
	ms     *MetaServer
	kernel *guest.Kernel
	reader PathReader
}

// NewClient creates a client inside the VM kernel.
func NewClient(env *sim.Env, ms *MetaServer, kernel *guest.Kernel) *Client {
	return &Client{env: env, cfg: ms.cfg, ms: ms, kernel: kernel}
}

// SetPathReader installs (or removes, with nil) the vRead shortcut.
func (c *Client) SetPathReader(r PathReader) { c.reader = r }

// Kernel returns the client's VM kernel.
func (c *Client) Kernel() *guest.Kernel { return c.kernel }

// WriteFile stripes content across chunk servers.
func (c *Client) WriteFile(p *sim.Proc, path string, content data.Content) error {
	c.ms.rpc(p, c.kernel)
	if _, ok := c.ms.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	c.ms.files[path] = &fileMeta{}
	total := content.Len()
	whole := data.NewSlice(content)
	for off := int64(0); off < total; {
		n := total - off
		if n > c.cfg.ChunkSize {
			n = c.cfg.ChunkSize
		}
		info, err := c.ms.allocateChunk(path)
		if err != nil {
			return err
		}
		if err := c.writeChunk(p, info, whole.Sub(off, n)); err != nil {
			return err
		}
		off += n
	}
	c.ms.files[path].complete = true
	return nil
}

func (c *Client) writeChunk(p *sim.Proc, info ChunkInfo, s data.Slice) error {
	conn, err := c.kernel.Dial(p, info.Server, ChunkPort)
	if err != nil {
		return err
	}
	defer conn.Close(p)
	if err := conn.Send(p, encodeHdr(opWriteChunk, info.ID, 0, s.Len())); err != nil {
		return err
	}
	for off := int64(0); off < s.Len(); {
		pkt := s.Len() - off
		if pkt > c.cfg.PacketBytes {
			pkt = c.cfg.PacketBytes
		}
		c.kernel.VCPU().Run(p, c.cfg.ioCycles(pkt), metrics.TagClientApp)
		if err := conn.Send(p, s.Sub(off, pkt)); err != nil {
			return err
		}
		off += pkt
	}
	if _, ok := conn.RecvFull(p, ackSize); !ok {
		return fmt.Errorf("qfs: chunk %d write unacked", info.ID)
	}
	return nil
}

// ReadFile reads the whole file, chunk by chunk, preferring vRead
// descriptors and falling back to chunk-server sockets.
func (c *Client) ReadFile(p *sim.Proc, path string) (data.Slice, error) {
	chunks, err := c.ms.GetChunks(p, c.kernel, path)
	if err != nil {
		return data.Slice{}, err
	}
	var parts data.Concat
	var total int64
	for _, ch := range chunks {
		s, err := c.readChunk(p, ch, 0, ch.Size)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		total += s.Len()
	}
	return data.Slice{C: parts, N: total}, nil
}

// ReadAt reads [off, off+n) of a file.
func (c *Client) ReadAt(p *sim.Proc, path string, off, n int64) (data.Slice, error) {
	chunks, err := c.ms.GetChunks(p, c.kernel, path)
	if err != nil {
		return data.Slice{}, err
	}
	var parts data.Concat
	var got int64
	for _, ch := range chunks {
		if off >= ch.FileOffset+ch.Size || off+n <= ch.FileOffset {
			continue
		}
		start := off - ch.FileOffset
		if start < 0 {
			start = 0
		}
		end := off + n - ch.FileOffset
		if end > ch.Size {
			end = ch.Size
		}
		s, err := c.readChunk(p, ch, start, end-start)
		if err != nil {
			return data.Slice{}, err
		}
		parts = append(parts, s.Content())
		got += s.Len()
	}
	if got != n {
		return data.Slice{}, fmt.Errorf("qfs: read [%d,%d) of %s returned %d bytes", off, off+n, path, got)
	}
	return data.Slice{C: parts, N: got}, nil
}

func (c *Client) readChunk(p *sim.Proc, ch ChunkInfo, off, n int64) (data.Slice, error) {
	if c.reader != nil {
		if h, ok := c.reader.OpenPath(p, ch.Server, ch.ID.Path(), fmt.Sprintf("qfs-chunk-%d", ch.ID)); ok {
			s, err := h.ReadAt(p, off, n)
			h.Close(p)
			if err == nil {
				return s, nil
			}
		}
	}
	// Vanilla socket path.
	conn, err := c.kernel.Dial(p, ch.Server, ChunkPort)
	if err != nil {
		return data.Slice{}, err
	}
	defer conn.Close(p)
	if err := conn.Send(p, encodeHdr(opReadChunk, ch.ID, off, n)); err != nil {
		return data.Slice{}, err
	}
	s, ok := conn.RecvFull(p, n)
	if !ok {
		return data.Slice{}, fmt.Errorf("qfs: chunk %d stream ended early", ch.ID)
	}
	c.kernel.VCPU().Run(p, c.cfg.ioCycles(n), metrics.TagClientApp)
	return s, nil
}
