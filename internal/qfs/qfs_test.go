package qfs_test

import (
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/qfs"
	"vread/internal/sim"
	"vread/internal/trace"
)

type bed struct {
	c   *cluster.Cluster
	ms  *qfs.MetaServer
	cs1 *qfs.ChunkServer
	cs2 *qfs.ChunkServer
	cl  *qfs.Client
	mgr *core.Manager
	lib *core.Lib
}

func newBed(t *testing.T, vread bool) *bed {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	cs1VM := h1.AddVM("cs1", metrics.TagDatanodeApp)
	cs2VM := h2.AddVM("cs2", metrics.TagDatanodeApp)

	ms := qfs.NewMetaServer(c.Env, qfs.Config{ChunkSize: 4 << 20})
	cs1 := qfs.StartChunkServer(c.Env, ms, cs1VM.Kernel)
	cs2 := qfs.StartChunkServer(c.Env, ms, cs2VM.Kernel)
	cl := qfs.NewClient(c.Env, ms, clientVM.Kernel)

	b := &bed{c: c, ms: ms, cs1: cs1, cs2: cs2, cl: cl}
	if vread {
		b.mgr = core.NewManager(c, nil, core.Config{}) // no HDFS namenode
		b.mgr.MountDatanode("cs1")
		b.mgr.MountDatanode("cs2")
		ms.AddListener(b.mgr) // metaserver drives the dentry refresh
		b.lib = b.mgr.EnableClient("client")
		cl.SetPathReader(qfs.PathReaderFunc(func(p *sim.Proc, tr *trace.Trace, server, path, key string) (qfs.Handle, bool) {
			return b.lib.OpenPath(p, tr, server, path, key)
		}))
	}
	return b
}

func (b *bed) run(t *testing.T, d time.Duration, name string, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	b.c.Go(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	if err := b.c.Env.RunUntil(b.c.Env.Now() + d); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("%s did not finish", name)
	}
}

func TestQFSRoundTrip(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	content := data.Pattern{Seed: 81, Size: 10 << 20} // 3 chunks, striped over 2 servers
	b.run(t, 5*time.Minute, "rw", func(p *sim.Proc) {
		if err := b.cl.WriteFile(p, "/q/f", content); err != nil {
			t.Error(err)
			return
		}
		got, err := b.cl.ReadFile(p, "/q/f")
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("QFS round trip corrupted")
		}
	})
	if size, ok := b.ms.FileSize("/q/f"); !ok || size != content.Size {
		t.Fatalf("FileSize = %d,%v", size, ok)
	}
	// Striping used both servers.
	if b.cs1.ServedBytes() == 0 || b.cs2.ServedBytes() == 0 {
		t.Fatalf("striping broken: served %d / %d", b.cs1.ServedBytes(), b.cs2.ServedBytes())
	}
}

func TestQFSPositionalRead(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	content := data.Pattern{Seed: 82, Size: 9 << 20}
	b.run(t, 5*time.Minute, "pread", func(p *sim.Proc) {
		if err := b.cl.WriteFile(p, "/q/f", content); err != nil {
			t.Error(err)
			return
		}
		// Cross-chunk positional read.
		off, n := int64(4<<20)-512, int64(2048)
		got, err := b.cl.ReadAt(p, "/q/f", off, n)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content).Sub(off, n)) {
			t.Error("cross-chunk pread corrupted")
		}
	})
}

func TestQFSWithVReadBypassesChunkServers(t *testing.T) {
	b := newBed(t, true)
	defer b.c.Close()
	content := data.Pattern{Seed: 83, Size: 10 << 20}
	b.run(t, 5*time.Minute, "vread-rw", func(p *sim.Proc) {
		if err := b.cl.WriteFile(p, "/q/f", content); err != nil {
			t.Error(err)
			return
		}
		got, err := b.cl.ReadFile(p, "/q/f")
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("QFS vRead read corrupted")
		}
	})
	// Every byte came through the daemons (local for cs1, remote for cs2).
	if b.cs1.ServedBytes() != 0 || b.cs2.ServedBytes() != 0 {
		t.Fatalf("chunk servers streamed %d/%d bytes despite vRead",
			b.cs1.ServedBytes(), b.cs2.ServedBytes())
	}
	st := b.mgr.Daemon("client").Stats()
	if st.BytesLocal+st.BytesRemote != content.Size {
		t.Fatalf("daemon served %d bytes, want %d", st.BytesLocal+st.BytesRemote, content.Size)
	}
	if st.BytesLocal == 0 || st.BytesRemote == 0 {
		t.Fatalf("expected both local and remote daemon traffic: %+v", st)
	}
	if st.OpenMisses != 0 {
		t.Fatalf("open misses: %d (refresh hook broken?)", st.OpenMisses)
	}
}

func TestQFSVReadFasterThanVanilla(t *testing.T) {
	measure := func(vread bool) time.Duration {
		b := newBed(t, vread)
		defer b.c.Close()
		content := data.Pattern{Seed: 84, Size: 8 << 20}
		var elapsed time.Duration
		b.run(t, 10*time.Minute, "measure", func(p *sim.Proc) {
			if err := b.cl.WriteFile(p, "/q/f", content); err != nil {
				t.Error(err)
				return
			}
			for _, vm := range b.c.AllVMs() {
				vm.Kernel.DropCaches()
			}
			b.c.Host("host1").Cache.DropAll()
			b.c.Host("host2").Cache.DropAll()
			start := b.c.Env.Now()
			if _, err := b.cl.ReadFile(p, "/q/f"); err != nil {
				t.Error(err)
				return
			}
			elapsed = b.c.Env.Now() - start
		})
		return elapsed
	}
	vanilla := measure(false)
	vread := measure(true)
	if vread >= vanilla {
		t.Fatalf("QFS with vRead %v not faster than vanilla %v", vread, vanilla)
	}
}

func TestQFSErrors(t *testing.T) {
	b := newBed(t, false)
	defer b.c.Close()
	b.run(t, time.Minute, "errs", func(p *sim.Proc) {
		if _, err := b.cl.ReadFile(p, "/missing"); err == nil {
			t.Error("read of missing file succeeded")
		}
		if err := b.cl.WriteFile(p, "/q/f", data.Bytes("x")); err != nil {
			t.Error(err)
			return
		}
		if err := b.cl.WriteFile(p, "/q/f", data.Bytes("y")); err == nil {
			t.Error("duplicate write succeeded")
		}
	})
}
