package qfs

import (
	"encoding/binary"
	"fmt"

	"vread/internal/data"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Wire protocol: fixed 32-byte headers (op, chunkID, off, n), raw data.
const (
	opReadChunk  uint64 = 1
	opWriteChunk uint64 = 2
	hdrSize             = 32
	ackSize             = 8
)

func encodeHdr(op uint64, id ChunkID, off, n int64) data.Slice {
	b := make([]byte, hdrSize)
	binary.BigEndian.PutUint64(b[0:], op)
	binary.BigEndian.PutUint64(b[8:], uint64(id))
	binary.BigEndian.PutUint64(b[16:], uint64(off))
	binary.BigEndian.PutUint64(b[24:], uint64(n))
	return data.NewSlice(data.Bytes(b))
}

func decodeHdr(b []byte) (op uint64, id ChunkID, off, n int64) {
	return binary.BigEndian.Uint64(b[0:]),
		ChunkID(binary.BigEndian.Uint64(b[8:])),
		int64(binary.BigEndian.Uint64(b[16:])),
		int64(binary.BigEndian.Uint64(b[24:]))
}

// ChunkServer stores and serves chunk files from inside its VM.
type ChunkServer struct {
	env    *sim.Env
	cfg    Config
	ms     *MetaServer
	kernel *guest.Kernel
	served int64
}

// StartChunkServer boots a chunk server in the VM and registers it.
func StartChunkServer(env *sim.Env, ms *MetaServer, kernel *guest.Kernel) *ChunkServer {
	if err := kernel.FS().MkdirAll(ChunkDir); err != nil {
		panic(fmt.Sprintf("qfs: %v", err))
	}
	cs := &ChunkServer{env: env, cfg: ms.cfg, ms: ms, kernel: kernel}
	if _, ok := ms.servers[kernel.Name()]; ok {
		panic(fmt.Sprintf("qfs: duplicate chunk server %q", kernel.Name()))
	}
	ms.servers[kernel.Name()] = cs
	ms.order = append(ms.order, kernel.Name())
	listener := kernel.Listen(ChunkPort)
	env.Go("qfs-cs:"+kernel.Name(), func(p *sim.Proc) {
		for {
			conn, ok := listener.Accept(p)
			if !ok {
				return
			}
			env.Go("qfs-cs:"+kernel.Name()+":conn", func(hp *sim.Proc) {
				cs.handle(hp, conn)
			})
		}
	})
	return cs
}

// Name returns the chunk server's VM name.
func (cs *ChunkServer) Name() string { return cs.kernel.Name() }

// ServedBytes returns bytes streamed to readers over TCP (zero when every
// read went through vRead).
func (cs *ChunkServer) ServedBytes() int64 { return cs.served }

func (cs *ChunkServer) handle(p *sim.Proc, conn *guest.Conn) {
	for {
		hdr, ok := conn.RecvFull(p, hdrSize)
		if !ok {
			return
		}
		op, id, off, n := decodeHdr(hdr.Bytes())
		switch op {
		case opReadChunk:
			if !cs.handleRead(p, conn, id, off, n) {
				return
			}
		case opWriteChunk:
			cs.handleWrite(p, conn, id, n)
			return
		default:
			return
		}
	}
}

func (cs *ChunkServer) handleRead(p *sim.Proc, conn *guest.Conn, id ChunkID, off, n int64) bool {
	// The connection adopted the client request's trace with the arriving
	// header segment.
	tr := conn.Trace()
	path := id.Path()
	if _, err := cs.kernel.FS().Stat(path); err != nil {
		return false
	}
	sp := tr.Begin(trace.LayerServer, "cs-read")
	sent := int64(0)
	for sent < n {
		pkt := n - sent
		if pkt > cs.cfg.PacketBytes {
			pkt = cs.cfg.PacketBytes
		}
		s, err := cs.kernel.ReadFileAtT(p, tr, path, off+sent, pkt)
		if err != nil {
			tr.EndSpan(sp, sent)
			conn.Close(p)
			return false
		}
		cs.kernel.VCPU().RunT(p, cs.cfg.ioCycles(pkt), metrics.TagDatanodeApp, tr)
		if err := conn.Send(p, s); err != nil {
			tr.EndSpan(sp, sent)
			return false
		}
		sent += pkt
	}
	tr.EndSpan(sp, sent)
	cs.served += sent
	return true
}

func (cs *ChunkServer) handleWrite(p *sim.Proc, conn *guest.Conn, id ChunkID, n int64) {
	path := id.Path()
	if err := cs.kernel.CreateFile(p, path); err != nil {
		conn.Close(p)
		return
	}
	received := int64(0)
	for received < n {
		pkt := n - received
		if pkt > cs.cfg.PacketBytes {
			pkt = cs.cfg.PacketBytes
		}
		s, ok := conn.RecvFull(p, pkt)
		if !ok {
			conn.Close(p)
			return
		}
		cs.kernel.VCPU().Run(p, cs.cfg.ioCycles(pkt), metrics.TagDatanodeApp)
		if err := cs.kernel.AppendFile(p, path, s.Content()); err != nil {
			conn.Close(p)
			return
		}
		received += pkt
	}
	cs.ms.chunkWritten(cs.Name(), id, n)
	ack := make([]byte, ackSize)
	_ = conn.Send(p, data.NewSlice(data.Bytes(ack)))
	conn.Close(p)
}
