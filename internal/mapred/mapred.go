// Package mapred is the miniature MapReduce execution engine that the
// Hadoop-level workloads (TestDFSIO, the HBase/Hive/Sqoop studies) run on:
// task trackers with fixed slot counts inside VMs, per-task setup cost (the
// era's JVM spawning), FIFO dispatch, bounded retries, and result
// collection. Shuffle is not modeled — none of the paper's measured jobs is
// shuffle-bound (TestDFSIO's reduce aggregates a handful of counters).
package mapred

import (
	"fmt"
	"time"

	"vread/internal/guest"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// Config holds engine parameters.
type Config struct {
	// SlotsPerTracker is the number of concurrent tasks per tracker.
	// Default 2 (the era's default map slots on small nodes).
	SlotsPerTracker int
	// TaskSetupCycles is charged on the tracker VM per task (JVM start,
	// task initialization). Default 30M cycles (~15ms at 2 GHz).
	TaskSetupCycles int64
	// TaskSetupDelay is non-CPU task launch latency. Default 50ms.
	TaskSetupDelay time.Duration
	// MaxAttempts bounds per-task retries. Default 2.
	MaxAttempts int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.SlotsPerTracker == 0 {
		c.SlotsPerTracker = 2
	}
	if c.TaskSetupCycles == 0 {
		c.TaskSetupCycles = 30_000_000
	}
	if c.TaskSetupDelay == 0 {
		c.TaskSetupDelay = 50 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 2
	}
	return c
}

// Tracker is one task tracker: a VM kernel plus its DFS client.
type Tracker struct {
	Kernel *guest.Kernel
	Client *hdfs.Client
	slots  int
}

// Task is one unit of work. Fn runs in a dedicated process on the tracker.
type Task struct {
	ID int
	Fn func(p *sim.Proc, tr *Tracker) (interface{}, error)
}

// TaskResult pairs a task with its outcome.
type TaskResult struct {
	TaskID   int
	Value    interface{}
	Err      error
	Attempts int
	Start    time.Duration
	End      time.Duration
}

// JobResult summarizes one job run.
type JobResult struct {
	Name    string
	Start   time.Duration
	End     time.Duration
	Results []TaskResult
}

// Elapsed returns the job wall-clock (virtual) duration.
func (r JobResult) Elapsed() time.Duration { return r.End - r.Start }

// Failed returns the results that exhausted their attempts.
func (r JobResult) Failed() []TaskResult {
	var out []TaskResult
	for _, tr := range r.Results {
		if tr.Err != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Engine dispatches jobs over registered trackers.
type Engine struct {
	env      *sim.Env
	cfg      Config
	trackers []*Tracker
}

// NewEngine creates an engine.
func NewEngine(env *sim.Env, cfg Config) *Engine {
	return &Engine{env: env, cfg: cfg.WithDefaults()}
}

// AddTracker registers a tracker VM.
func (e *Engine) AddTracker(kernel *guest.Kernel, client *hdfs.Client) *Tracker {
	tr := &Tracker{Kernel: kernel, Client: client, slots: e.cfg.SlotsPerTracker}
	e.trackers = append(e.trackers, tr)
	return tr
}

// Run executes all tasks and blocks p until the job completes. Tasks are
// dispatched FIFO to free slots across all trackers; a failing task is
// retried up to MaxAttempts times (possibly on another tracker).
func (e *Engine) Run(p *sim.Proc, name string, tasks []Task) JobResult {
	if len(e.trackers) == 0 {
		panic("mapred: no trackers registered")
	}
	job := JobResult{Name: name, Start: e.env.Now()}
	queue := sim.NewQueue[*taskState](e.env, 0)
	for i := range tasks {
		queue.TryPut(&taskState{task: tasks[i]})
	}
	remaining := len(tasks)
	done := sim.NewSignal(e.env)
	results := make([]TaskResult, 0, len(tasks))

	for ti, tr := range e.trackers {
		for s := 0; s < tr.slots; s++ {
			tr := tr
			e.env.Go(fmt.Sprintf("mapred:%s:t%d.s%d", name, ti, s), func(wp *sim.Proc) {
				for {
					st, ok := queue.Get(wp)
					if !ok {
						return
					}
					st.attempts++
					start := e.env.Now()
					tr.Kernel.VCPU().Run(wp, e.cfg.TaskSetupCycles, metrics.TagOthers)
					wp.Sleep(e.cfg.TaskSetupDelay)
					v, err := st.task.Fn(wp, tr)
					if err != nil && st.attempts < e.cfg.MaxAttempts {
						queue.TryPut(st) // retry, possibly elsewhere
						continue
					}
					results = append(results, TaskResult{
						TaskID:   st.task.ID,
						Value:    v,
						Err:      err,
						Attempts: st.attempts,
						Start:    start,
						End:      e.env.Now(),
					})
					remaining--
					if remaining == 0 {
						queue.Close()
						done.Broadcast()
					}
				}
			})
		}
	}
	for remaining > 0 {
		done.Wait(p)
	}
	job.End = e.env.Now()
	job.Results = results
	return job
}

type taskState struct {
	task     Task
	attempts int
}
