package mapred_test

import (
	"errors"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/hdfs"
	"vread/internal/mapred"
	"vread/internal/metrics"
	"vread/internal/sim"
)

func newEngine(t *testing.T, cfg mapred.Config) (*cluster.Cluster, *mapred.Engine) {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	vm := h1.AddVM("worker", metrics.TagClientApp)
	nn := hdfs.NewNameNode(c.Env, hdfs.Config{}, c.Fabric)
	cl := hdfs.NewClient(c.Env, nn, vm.Kernel)
	e := mapred.NewEngine(c.Env, cfg)
	e.AddTracker(vm.Kernel, cl)
	return c, e
}

func TestRunCollectsResults(t *testing.T) {
	c, e := newEngine(t, mapred.Config{})
	defer c.Close()
	tasks := make([]mapred.Task, 5)
	for i := range tasks {
		i := i
		tasks[i] = mapred.Task{ID: i, Fn: func(p *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			p.Sleep(10 * time.Millisecond)
			return i * i, nil
		}}
	}
	var job mapred.JobResult
	finished := false
	c.Go("driver", func(p *sim.Proc) {
		job = e.Run(p, "squares", tasks)
		finished = true
	})
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("job did not finish")
	}
	if len(job.Results) != 5 || len(job.Failed()) != 0 {
		t.Fatalf("results = %d failed = %d", len(job.Results), len(job.Failed()))
	}
	seen := map[int]int{}
	for _, r := range job.Results {
		seen[r.TaskID] = r.Value.(int)
	}
	for i := 0; i < 5; i++ {
		if seen[i] != i*i {
			t.Fatalf("task %d result = %d", i, seen[i])
		}
	}
	if job.Elapsed() <= 0 {
		t.Fatal("job elapsed not positive")
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	c, e := newEngine(t, mapred.Config{SlotsPerTracker: 2})
	defer c.Close()
	running, maxRunning := 0, 0
	tasks := make([]mapred.Task, 6)
	for i := range tasks {
		tasks[i] = mapred.Task{ID: i, Fn: func(p *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			p.Sleep(20 * time.Millisecond)
			running--
			return nil, nil
		}}
	}
	c.Go("driver", func(p *sim.Proc) { e.Run(p, "bounded", tasks) })
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if maxRunning != 2 {
		t.Fatalf("max concurrent tasks = %d, want 2", maxRunning)
	}
}

func TestRetryOnFailure(t *testing.T) {
	c, e := newEngine(t, mapred.Config{MaxAttempts: 3})
	defer c.Close()
	attempts := 0
	boom := errors.New("flaky")
	tasks := []mapred.Task{{ID: 1, Fn: func(p *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
		attempts++
		if attempts < 3 {
			return nil, boom
		}
		return "ok", nil
	}}}
	var job mapred.JobResult
	c.Go("driver", func(p *sim.Proc) { job = e.Run(p, "flaky", tasks) })
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
	if len(job.Failed()) != 0 || job.Results[0].Value != "ok" {
		t.Fatalf("job = %+v", job.Results)
	}
}

func TestPermanentFailureReported(t *testing.T) {
	c, e := newEngine(t, mapred.Config{MaxAttempts: 2})
	defer c.Close()
	boom := errors.New("always")
	tasks := []mapred.Task{{ID: 7, Fn: func(p *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
		return nil, boom
	}}}
	var job mapred.JobResult
	c.Go("driver", func(p *sim.Proc) { job = e.Run(p, "doomed", tasks) })
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	failed := job.Failed()
	if len(failed) != 1 || !errors.Is(failed[0].Err, boom) || failed[0].Attempts != 2 {
		t.Fatalf("failed = %+v", failed)
	}
}

func TestMultipleTrackersShareWork(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	nn := hdfs.NewNameNode(c.Env, hdfs.Config{}, c.Fabric)
	e := mapred.NewEngine(c.Env, mapred.Config{SlotsPerTracker: 1})
	byTracker := map[string]int{}
	for _, name := range []string{"w1", "w2"} {
		vm := h1.AddVM(name, metrics.TagClientApp)
		e.AddTracker(vm.Kernel, hdfs.NewClient(c.Env, nn, vm.Kernel))
	}
	tasks := make([]mapred.Task, 8)
	for i := range tasks {
		tasks[i] = mapred.Task{ID: i, Fn: func(p *sim.Proc, tr *mapred.Tracker) (interface{}, error) {
			byTracker[tr.Kernel.Name()]++
			p.Sleep(10 * time.Millisecond)
			return nil, nil
		}}
	}
	c.Go("driver", func(p *sim.Proc) { e.Run(p, "shared", tasks) })
	if err := c.Env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if byTracker["w1"] == 0 || byTracker["w2"] == 0 {
		t.Fatalf("work distribution = %v", byTracker)
	}
}
