package faults

import (
	"sort"
	"strings"
	"testing"
	"time"

	"vread/internal/sim"
)

// TestPointsSortedGolden locks the Points() list: sorted, complete, and
// exactly these names. The list feeds ParseSpec's unknown-point error and
// every registry report, so its content and order are observable output —
// adding a faultpoint means updating this golden alongside it.
func TestPointsSortedGolden(t *testing.T) {
	want := []string{
		"daemon.crash",
		"disk.read.error",
		"disk.read.slow",
		"disk.read.torn",
		"domain.partition",
		"mount.migrate",
		"net.frame.delay",
		"net.frame.drop",
		"rack.kill",
		"rdma.qp.teardown",
		"ring.badslot",
		"ring.doorbell.lost",
		"ring.doorbellstorm",
		"ring.slotheld",
		"ring.stalekey",
		"ring.stall",
		"shard.kill",
	}
	got := Points()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Points() is not sorted: %v", got)
	}
	if len(got) != len(want) {
		t.Fatalf("Points() has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestUnknownPointErrorListsSortedPoints pins the ParseSpec error shape: the
// known-point listing is the sorted Points() joined with ", ".
func TestUnknownPointErrorListsSortedPoints(t *testing.T) {
	// Assembled at runtime so the faultpoint analyzer's spec-literal grammar
	// check doesn't trip over a point that is deliberately unknown.
	bogus := "bogus" + ".point"
	_, err := ParseSpec(bogus)
	if err == nil {
		t.Fatal("ParseSpec accepted an unknown point")
	}
	wantList := strings.Join(Points(), ", ")
	if !strings.Contains(err.Error(), wantList) {
		t.Fatalf("error %q does not list the sorted points %q", err, wantList)
	}
}

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if p.Should(DiskReadError) {
		t.Fatal("nil plan fired")
	}
	if d, ok := p.ShouldDelay(DiskReadSlow); ok || d != 0 {
		t.Fatal("nil plan fired a delay fault")
	}
	if p.Fired(DiskReadError) != 0 || p.Counts() != nil {
		t.Fatal("nil plan reported fires")
	}
}

func TestUnarmedPointNeverFiresOrDrawsRandomness(t *testing.T) {
	env := sim.NewEnv(7)
	p := NewPlan(env)
	before := env.Rand().Int63()

	env2 := sim.NewEnv(7)
	_ = before
	p2 := NewPlan(env2)
	for i := 0; i < 100; i++ {
		if p2.Should(DaemonCrash) {
			t.Fatal("unarmed point fired")
		}
	}
	// The RNG stream must be untouched by unarmed evaluations.
	if got, want := env2.Rand().Int63(), sim.NewEnv(7).Rand().Int63(); got != want {
		t.Fatalf("unarmed evaluations consumed randomness: %d != %d", got, want)
	}
	_ = p
}

func TestAfterNAndOneShot(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPlan(env)
	p.Set(Rule{Point: RDMAQPTeardown, Prob: 1, AfterN: 3, MaxFires: 1})

	var fired []int
	for i := 1; i <= 10; i++ {
		if p.Should(RDMAQPTeardown) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 4 {
		t.Fatalf("want exactly eval #4 to fire, got %v", fired)
	}
	if p.Fired(RDMAQPTeardown) != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired(RDMAQPTeardown))
	}
	cs := p.Counts()
	if len(cs) != 1 || cs[0].Evals != 10 || cs[0].Fires != 1 {
		t.Fatalf("Counts = %+v", cs)
	}
}

func TestProbabilisticFiringIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		env := sim.NewEnv(seed)
		p := NewPlan(env)
		p.Set(Rule{Point: NetFrameDrop, Prob: 0.3})
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Should(NetFrameDrop) {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 over 200 evals fired %d times — not probabilistic", len(a))
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire schedules")
	}
}

func TestZeroProbEvaluatesButNeverFires(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPlan(env)
	p.Set(Rule{Point: DiskReadError, Prob: 0})
	for i := 0; i < 50; i++ {
		if p.Should(DiskReadError) {
			t.Fatal("p=0 fired")
		}
	}
	cs := p.Counts()
	if len(cs) != 1 || cs[0].Evals != 50 || cs[0].Fires != 0 {
		t.Fatalf("Counts = %+v, want 50 evals 0 fires", cs)
	}
}

func TestShouldDelay(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPlan(env)
	p.Set(Rule{Point: DiskReadSlow, Prob: 1, Delay: 2 * time.Millisecond})
	d, ok := p.ShouldDelay(DiskReadSlow)
	if !ok || d != 2*time.Millisecond {
		t.Fatalf("ShouldDelay = %v, %v", d, ok)
	}
}

func TestCountsFirstArmedOrder(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPlan(env)
	p.Set(Rule{Point: RingStall, Prob: 1})
	p.Set(Rule{Point: DaemonCrash, Prob: 1})
	p.Set(Rule{Point: DiskReadTorn, Prob: 1})
	p.Should(DaemonCrash)
	p.Should(DiskReadTorn)
	cs := p.Counts()
	want := []string{RingStall, DaemonCrash, DiskReadTorn}
	if len(cs) != len(want) {
		t.Fatalf("Counts len = %d", len(cs))
	}
	for i, c := range cs {
		if c.Point != want[i] {
			t.Fatalf("Counts[%d] = %s, want %s", i, c.Point, want[i])
		}
	}
	if p.TotalFired() != 2 || p.DistinctFired() != 2 {
		t.Fatalf("TotalFired=%d DistinctFired=%d, want 2,2", p.TotalFired(), p.DistinctFired())
	}
}

func TestSetRearmKeepsTallies(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPlan(env)
	p.Set(Rule{Point: RingDoorbellLost, Prob: 1})
	p.Should(RingDoorbellLost)
	p.Set(Rule{Point: RingDoorbellLost, Prob: 0})
	if p.Should(RingDoorbellLost) {
		t.Fatal("re-armed p=0 rule fired")
	}
	cs := p.Counts()
	if len(cs) != 1 || cs[0].Evals != 2 || cs[0].Fires != 1 {
		t.Fatalf("Counts = %+v, want evals 2 fires 1", cs)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	in := "disk.read.slow:p=0.05,delay=2ms;rdma.qp.teardown:after=6,max=1;daemon.crash"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 3 {
		t.Fatalf("len = %d", len(spec))
	}
	want := Spec{
		{Point: DiskReadSlow, Prob: 0.05, Delay: 2 * time.Millisecond},
		{Point: RDMAQPTeardown, Prob: 1, AfterN: 6, MaxFires: 1},
		{Point: DaemonCrash, Prob: 1},
	}
	for i := range want {
		if spec[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, spec[i], want[i])
		}
	}
	// Render → reparse must be stable.
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	for i := range spec {
		if again[i] != spec[i] {
			t.Fatalf("round-trip rule %d = %+v, want %+v", i, again[i], spec[i])
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		":p=1",
		"disk.read.slo",
		"bogus.point:p=0.5",
		"disk.read.slow:oops",
		"disk.read.slow:wat=1",
		"disk.read.slow:p=abc",
		"disk.read.slow:delay=xyz",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
	spec, err := ParseSpec("  ;; ")
	if err != nil || spec != nil {
		t.Fatalf("empty spec: %v, %v", spec, err)
	}
}

func TestSpecPlanBindsRules(t *testing.T) {
	env := sim.NewEnv(9)
	spec := Spec{{Point: NetFrameDelay, Prob: 1, Delay: time.Millisecond}}
	p := spec.Plan(env)
	if d, ok := p.ShouldDelay(NetFrameDelay); !ok || d != time.Millisecond {
		t.Fatalf("ShouldDelay = %v, %v", d, ok)
	}
}
