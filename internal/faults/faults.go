// Package faults is the simulator's deterministic fault-injection registry.
//
// A Plan maps named faultpoints — fixed strings owned by the layer that can
// fail (storage, netsim, the vRead ring, the daemon) — to trigger rules.
// Each time a layer reaches a faultpoint it asks the plan whether the fault
// fires this time. All randomness is drawn from the simulation environment's
// seeded RNG, so a (seed, plan) pair replays byte-identically: the same
// faults fire at the same virtual instants on every run. That property is
// what makes chaos testing cheap — a failing seed IS the reproducer
// (FoundationDB-style deterministic simulation testing).
//
// A nil *Plan is valid and never fires, mirroring the nil-*Trace discipline:
// production paths pay one nil check per faultpoint and nothing else.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vread/internal/sim"
)

// Canonical faultpoint names. The constant lives here, the evaluation lives
// in the layer that owns the failure mode:
//
//   - storage.Disk evaluates DiskReadSlow per read submission;
//   - the vRead daemon and the per-host server evaluate DiskReadError and
//     DiskReadTorn per loop-mount read batch (the EIO and torn-short-read
//     surface of a failing device);
//   - netsim evaluates NetFrameDelay on every transmit, NetFrameDrop on
//     host-terminated and RDMA frames (the vRead transports, which carry
//     their own timeout/retry; guest TCP has no retransmit model, so drops
//     there would simulate a kernel bug rather than a network fault), and
//     RDMAQPTeardown per posted work request;
//   - the daemon evaluates RingDoorbellLost per doorbell, RingStall per
//     slot-fill batch, and DaemonCrash per dequeued ring request;
//   - cluster evaluates RackKill per load-generator arrival that names a
//     victim rack (fired = every host in the rack goes dark);
//   - the hdfs federation router evaluates ShardKill per routed namespace
//     RPC (fired = that shard refuses RPCs until failover elapses);
//   - netsim evaluates DomainPartition per inter-domain host/RDMA frame
//     (fired = the two fault domains stop exchanging such frames for the
//     rule's delay window; guest TCP is exempt for the NetFrameDrop reason);
//   - libvread (the guest side of the ring, also in core) evaluates the
//     hostile-guest points per submitted descriptor: RingBadSlot forges a
//     malformed descriptor (bad opcode, negative or overflowing range,
//     oversized name), RingStaleKey stamps the previous epoch's ring key,
//     and RingDoorbellStorm floods the descriptor area with junk no-reply
//     descriptors before the real one;
//   - the daemon evaluates RingSlotHeld per slot-fill batch (the guest holds
//     a slot spinlock — the daemon burns CPU spinning, distinct from
//     RingStall's passive backpressure);
//   - the vRead manager evaluates MountMigrate per MaybeMigrateMount call
//     (fired = a live mount migration: quiesce every client ring, re-mount
//     the datanode image on the target host, replay captured descriptors).
const (
	DiskReadSlow      = "disk.read.slow"
	DiskReadError     = "disk.read.error"
	DiskReadTorn      = "disk.read.torn"
	NetFrameDrop      = "net.frame.drop"
	NetFrameDelay     = "net.frame.delay"
	RDMAQPTeardown    = "rdma.qp.teardown"
	RingDoorbellLost  = "ring.doorbell.lost"
	RingStall         = "ring.stall"
	RingBadSlot       = "ring.badslot"
	RingDoorbellStorm = "ring.doorbellstorm"
	RingSlotHeld      = "ring.slotheld"
	RingStaleKey      = "ring.stalekey"
	DaemonCrash       = "daemon.crash"
	RackKill          = "rack.kill"
	ShardKill         = "shard.kill"
	DomainPartition   = "domain.partition"
	MountMigrate      = "mount.migrate"
)

// Points lists every canonical faultpoint name, sorted: the list feeds error
// messages and reports, so its order is part of the observable output and
// must not depend on registration order.
func Points() []string {
	return []string{
		DaemonCrash,
		DiskReadError,
		DiskReadSlow,
		DiskReadTorn,
		DomainPartition,
		MountMigrate,
		NetFrameDelay,
		NetFrameDrop,
		RackKill,
		RDMAQPTeardown,
		RingBadSlot,
		RingDoorbellLost,
		RingDoorbellStorm,
		RingSlotHeld,
		RingStaleKey,
		RingStall,
		ShardKill,
	}
}

func knownPoint(name string) bool {
	for _, p := range Points() {
		if p == name {
			return true
		}
	}
	return false
}

// Rule is one faultpoint's trigger: the fault fires when the point has been
// evaluated more than AfterN times, has fired fewer than MaxFires times
// (0 = unlimited), and a draw from the sim RNG lands under Prob. Prob >= 1
// fires deterministically, which combined with AfterN and MaxFires pins a
// fault to an exact operation ("break the QP on the 7th work request").
type Rule struct {
	// Point is the faultpoint name the rule arms.
	Point string
	// Prob is the per-evaluation firing probability. Values >= 1 always
	// fire; values <= 0 never fire (useful for overhead measurement: the
	// evaluation machinery runs, the fault does not).
	Prob float64
	// AfterN skips the first N evaluations of the point.
	AfterN int64
	// MaxFires caps the number of firings (0 = unlimited, 1 = one-shot).
	MaxFires int64
	// Delay is the extra latency injected by delay-class faults
	// (disk.read.slow, net.frame.delay, ring.stall).
	Delay time.Duration
}

// Spec is an ordered set of rules — the serializable description of a fault
// plan, independent of any simulation environment.
type Spec []Rule

// Plan binds a Spec to a simulation environment's RNG.
func (s Spec) Plan(env *sim.Env) *Plan {
	p := NewPlan(env)
	for _, r := range s {
		p.Set(r)
	}
	return p
}

// String renders the spec in ParseSpec's format.
func (s Spec) String() string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(r.Point)
		var opts []string
		if r.Prob != 0 {
			opts = append(opts, "p="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.AfterN != 0 {
			opts = append(opts, "after="+strconv.FormatInt(r.AfterN, 10))
		}
		if r.MaxFires != 0 {
			opts = append(opts, "max="+strconv.FormatInt(r.MaxFires, 10))
		}
		if r.Delay != 0 {
			opts = append(opts, "delay="+r.Delay.String())
		}
		if len(opts) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(opts, ","))
		}
	}
	return b.String()
}

// ParseSpec parses the CLI syntax
//
//	point[:opt,...][;point[:opt,...]]...
//
// where each opt is p=<prob>, after=<n>, max=<n>, or delay=<duration>.
// A rule with no p= option fires deterministically (p=1). Example:
//
//	disk.read.slow:p=0.05,delay=2ms;rdma.qp.teardown:after=6,max=1
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("faults: empty faultpoint in %q", part)
		}
		if !knownPoint(name) {
			return nil, fmt.Errorf("faults: unknown faultpoint %q (known: %s)",
				name, strings.Join(Points(), ", "))
		}
		r := Rule{Point: name, Prob: 1}
		if opts != "" {
			for _, opt := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("faults: bad option %q in rule %q", opt, part)
				}
				var err error
				switch key {
				case "p", "prob":
					r.Prob, err = strconv.ParseFloat(val, 64)
				case "after":
					r.AfterN, err = strconv.ParseInt(val, 10, 64)
				case "max":
					r.MaxFires, err = strconv.ParseInt(val, 10, 64)
				case "delay":
					r.Delay, err = time.ParseDuration(val)
				default:
					return nil, fmt.Errorf("faults: unknown option %q in rule %q", key, part)
				}
				if err != nil {
					return nil, fmt.Errorf("faults: bad %s value in rule %q: %v", key, part, err)
				}
			}
		}
		spec = append(spec, r)
	}
	return spec, nil
}

// PointCount is one faultpoint's evaluation/firing tally.
type PointCount struct {
	Point string
	Evals int64
	Fires int64
}

// Plan is a live fault-injection registry bound to one simulation
// environment. It is not safe for concurrent use — like everything else in
// the simulator, exactly one goroutine drives it at a time.
type Plan struct {
	env    *sim.Env
	points map[string]*pointState
	order  []string // first-armed order, for deterministic reporting
}

type pointState struct {
	rule  Rule
	evals int64
	fires int64
}

// NewPlan returns an empty plan drawing randomness from env's seeded RNG.
func NewPlan(env *sim.Env) *Plan {
	return &Plan{env: env, points: make(map[string]*pointState)}
}

// Set arms (or re-arms) the rule for its faultpoint, keeping accumulated
// tallies when the point was already armed.
func (p *Plan) Set(r Rule) {
	if st, ok := p.points[r.Point]; ok {
		st.rule = r
		return
	}
	p.points[r.Point] = &pointState{rule: r}
	p.order = append(p.order, r.Point)
}

// Should evaluates the faultpoint and reports whether the fault fires this
// time. Unarmed points (and a nil plan) never fire and draw no randomness.
func (p *Plan) Should(point string) bool {
	if p == nil {
		return false
	}
	st, ok := p.points[point]
	if !ok {
		return false
	}
	st.evals++
	if st.evals <= st.rule.AfterN {
		return false
	}
	if st.rule.MaxFires > 0 && st.fires >= st.rule.MaxFires {
		return false
	}
	if st.rule.Prob <= 0 {
		return false
	}
	if st.rule.Prob < 1 && p.env.Rand().Float64() >= st.rule.Prob {
		return false
	}
	st.fires++
	return true
}

// ShouldDelay is Should for delay-class faults: when the fault fires it also
// returns the rule's configured extra latency.
func (p *Plan) ShouldDelay(point string) (time.Duration, bool) {
	if !p.Should(point) {
		return 0, false
	}
	return p.points[point].rule.Delay, true
}

// Fired returns how many times the point has fired.
func (p *Plan) Fired(point string) int64 {
	if p == nil {
		return 0
	}
	st, ok := p.points[point]
	if !ok {
		return 0
	}
	return st.fires
}

// Counts returns every armed point's tallies in first-armed order.
func (p *Plan) Counts() []PointCount {
	if p == nil {
		return nil
	}
	out := make([]PointCount, 0, len(p.order))
	for _, name := range p.order {
		st := p.points[name]
		out = append(out, PointCount{Point: name, Evals: st.evals, Fires: st.fires})
	}
	return out
}

// TotalFired sums firings across all points.
func (p *Plan) TotalFired() int64 {
	var n int64
	for _, c := range p.Counts() {
		n += c.Fires
	}
	return n
}

// DistinctFired counts points that fired at least once.
func (p *Plan) DistinctFired() int {
	n := 0
	for _, c := range p.Counts() {
		if c.Fires > 0 {
			n++
		}
	}
	return n
}
