package chaostest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// hostileGuestPoints are the faultpoints that model a misbehaving guest on
// its own ring. RunHostile arms these on the hostile VM only (via
// InjectGuestFaults), so the storm proves per-VM isolation: the victims'
// rings never see the forgeries.
var hostileGuestPoints = map[string]bool{
	faults.RingBadSlot:       true,
	faults.RingStaleKey:      true,
	faults.RingDoorbellStorm: true,
	faults.RingSlotHeld:      true,
}

// HostileOptions selects one hostile-guest chaos run: one hostile client VM
// whose ring endpoints forge descriptors per the spec's hostile points, plus
// victim client VMs reading the same blocks cleanly, all on a two-host
// topology with alternating block placement.
type HostileOptions struct {
	Seed      int64
	Spec      faults.Spec
	Transport core.Transport
	// Shards is the mount-table shard count K; the suite runs every storm at
	// K=1 and K>1 and asserts byte-identical fingerprints (the fold and
	// everything behind it must be shard-count-agnostic).
	Shards int
	// Victims is how many well-behaved client VMs read alongside the hostile
	// one (default 2).
	Victims int
	// RevokeThreshold, when > 0, arms the daemon's auto-revocation after that
	// many consecutive rejects on the hostile ring.
	RevokeThreshold int
	Files           int
	FileSize        int64
	Reads           int // read rounds; each round is one hostile + one read per victim
	Deadline        time.Duration
}

func (o HostileOptions) withDefaults() HostileOptions {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Victims == 0 {
		o.Victims = 2
	}
	if o.Files == 0 {
		o.Files = 3
	}
	if o.FileSize == 0 {
		o.FileSize = 1 << 20
	}
	if o.Reads == 0 {
		o.Reads = 25
	}
	if o.Deadline == 0 {
		o.Deadline = time.Hour
	}
	return o
}

// HostileResult extends Result with per-cohort outcome counts.
type HostileResult struct {
	Result
	HostileOKs    int // hostile reads that still returned correct bytes
	HostileErrors int // hostile reads refused with a typed error
	HostileMisses int // hostile opens denied (e.g. after revocation)
	VictimOKs     int
	VictimErrors  int
	Migrations    int  // live mount migrations fired by mount.migrate
	Revoked       bool // the hostile ring ended the storm revoked
}

// hostileOnly reports whether every armed point is a per-VM ring forgery or
// the migration action — the plans under which victim reads have no excuse to
// fail (per-VM isolation is the property under test).
func hostileOnly(spec faults.Spec) bool {
	for _, r := range spec {
		if !hostileGuestPoints[r.Point] && !strings.HasPrefix(r.Point, "mount.") {
			return false
		}
	}
	return true
}

// RunHostile executes one hostile-guest scenario. On top of Run's invariants
// (correct-bytes-or-typed-error, span balance, full drain, deterministic
// fingerprint) it checks per-VM isolation: when the spec arms only hostile
// ring points and migrations, every victim read must return correct bytes.
// When the spec arms mount.migrate, each round ping-pongs dn2's mount
// between the two hosts mid-storm.
func RunHostile(o HostileOptions) HostileResult {
	o = o.withDefaults()
	res := HostileResult{}
	violate := func(format string, args ...interface{}) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	c := cluster.New(o.Seed, cluster.Params{})
	defer c.Close()
	plan := faults.NewPlan(c.Env)
	hostilePlan := faults.NewPlan(c.Env)
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.Fabric.InjectFaults(plan)
	h1.Disk.InjectFaults(plan)
	h2.Disk.InjectFaults(plan)
	hostileVM := h1.AddVM("hostile", metrics.TagClientApp)
	victims := make([]string, o.Victims)
	for i := range victims {
		victims[i] = fmt.Sprintf("victim%d", i)
		h1.AddVM(victims[i], metrics.TagClientApp)
	}
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 4 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	writer := hdfs.NewClient(c.Env, nn, hostileVM.Kernel)

	// Alternate placement, as in Run: both ring-local and remote reads.
	var nextBlock int64
	blockDN := make(map[int64]string)
	nn.SetPlacementPolicy(func(string, string, int) []string {
		nextBlock++
		dn := "dn1"
		if nextBlock%2 == 0 {
			dn = "dn2"
		}
		blockDN[nextBlock] = dn
		return []string{dn}
	})

	mgr := core.NewManager(c, nn, core.Config{
		Transport:           o.Transport,
		Faults:              plan,
		MountTableShards:    o.Shards,
		RingRevokeThreshold: o.RevokeThreshold,
	})
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	hostileLib := mgr.EnableClient("hostile")
	writer.SetBlockReader(hostileLib)
	victimLibs := make([]*core.Lib, o.Victims)
	for i, v := range victims {
		victimLibs[i] = mgr.EnableClient(v)
	}
	// The isolation lever: the hostile plan owns exactly this VM's ring
	// endpoints. Victim rings keep the manager-wide plan.
	mgr.InjectGuestFaults("hostile", hostilePlan)

	migrating := false
	for _, r := range o.Spec {
		if r.Point == faults.MountMigrate {
			migrating = true
		}
	}

	contents := make([]data.Pattern, o.Files)
	tracer := trace.NewTracer(c.Env, 1)
	fp := fnv.New64a()
	record := func(format string, args ...interface{}) {
		fmt.Fprintf(fp, format, args...)
	}

	// One read through one lib, classified. Victim blocks may live on a
	// mount that is mid-quiesce when a migration fires — the read simply
	// blocks through the blackout, which is exactly the property under test.
	readOnce := func(p *sim.Proc, lib *core.Lib, who string, i int, rng interface{ Intn(int) int }) string {
		blk := int64(rng.Intn(int(nextBlock))) + 1
		fileIdx := int(blk-1) % o.Files
		want := data.NewSlice(contents[fileIdx])
		off := int64(rng.Intn(int(o.FileSize - 1)))
		n := int64(rng.Intn(int(o.FileSize-off))) + 1

		tr := tracer.Request(fmt.Sprintf("%s-read-%d", who, i))
		vfd, ok := lib.OpenPath(p, tr, blockDN[blk], hdfs.BlockPath(hdfs.BlockID(blk)), fmt.Sprintf("blk_%d", blk))
		if !ok {
			tr.Finish(0)
			record("%d|%s|blk%d|%d|%d|openmiss|%d\n", i, who, blk, off, n, c.Env.Now())
			return "miss"
		}
		got, err := vfd.ReadAt(p, tr, off, n)
		vfd.Close(p, tr)
		tr.Finish(n)
		switch {
		case err == nil:
			if !data.Equal(got, want.Sub(off, n)) {
				record("%d|%s|blk%d|%d|%d|corrupt|%d\n", i, who, blk, off, n, c.Env.Now())
				return "corrupt"
			}
			record("%d|%s|blk%d|%d|%d|ok|%d\n", i, who, blk, off, n, c.Env.Now())
			return "ok"
		case errors.Is(err, core.ErrDaemonFailed), errors.Is(err, core.ErrShortRead), errors.Is(err, core.ErrRingClosed),
			errors.Is(err, core.ErrStaleKey), errors.Is(err, core.ErrRingRevoked):
			record("%d|%s|blk%d|%d|%d|err:%v|%d\n", i, who, blk, off, n, err, c.Env.Now())
			return "typed"
		default:
			record("%d|%s|blk%d|%d|%d|untyped:%v|%d\n", i, who, blk, off, n, err, c.Env.Now())
			return "untyped"
		}
	}

	done := false
	c.Go("hostile-storm", func(p *sim.Proc) {
		for i := range contents {
			contents[i] = data.Pattern{Seed: uint64(o.Seed)*1000 + uint64(i), Size: o.FileSize}
			if err := writer.WriteFile(p, fmt.Sprintf("/hostile/f%d", i), contents[i]); err != nil {
				violate("write f%d: %v", i, err)
				return
			}
		}
		// Split the spec: hostile ring forgeries arm on the hostile VM's plan,
		// everything else manager-wide.
		for _, r := range o.Spec {
			if hostileGuestPoints[r.Point] {
				hostilePlan.Set(r)
			} else {
				plan.Set(r)
			}
		}

		rng := c.Env.Rand()
		for i := 0; i < o.Reads; i++ {
			if migrating {
				dst := "host1"
				if c.VM("dn2").Host.Name == "host1" {
					dst = "host2"
				}
				mig, fired, err := mgr.MaybeMigrateMount(p, "dn2", dst)
				if err != nil {
					violate("round %d: migration: %v", i, err)
				} else if fired {
					res.Migrations++
					record("%d|migrate|%s->%s|%d|%d\n", i, mig.SrcHost, mig.DstHost, mig.Captured, c.Env.Now())
				}
			}
			res.Reads++
			switch readOnce(p, hostileLib, "hostile", i, rng) {
			case "ok":
				res.OKs++
				res.HostileOKs++
			case "typed":
				res.TypedErrors++
				res.HostileErrors++
			case "miss":
				res.OpenMisses++
				res.HostileMisses++
			case "corrupt":
				violate("hostile read %d: silent corruption", i)
			case "untyped":
				violate("hostile read %d: untyped error", i)
			}
			for v := range victimLibs {
				res.Reads++
				switch readOnce(p, victimLibs[v], victims[v], i, rng) {
				case "ok":
					res.OKs++
					res.VictimOKs++
				case "typed":
					res.TypedErrors++
					res.VictimErrors++
				case "miss":
					res.OpenMisses++
					violate("victim %d round %d: open denied", v, i)
				case "corrupt":
					violate("victim %d read %d: silent corruption", v, i)
				case "untyped":
					violate("victim %d read %d: untyped error", v, i)
				}
			}
		}
		done = true
	})

	start := c.Env.Now()
	if err := c.Env.RunUntil(start + o.Deadline); err != nil {
		violate("engine: %v", err)
		return res
	}
	if !done {
		violate("workload wedged: storm did not finish within %v", o.Deadline)
		return res
	}
	if pend := c.Env.Pending(); pend != 0 {
		violate("%d events still pending after the storm drained", pend)
	}
	if pend := mgr.PendingRemoteReads(); pend != 0 {
		violate("%d remote reads leaked", pend)
	}
	for _, tr := range tracer.Traces() {
		for _, s := range tr.Spans {
			if s.End < s.Start {
				violate("%s: span %s/%s opened at %v never closed", tr.Name, s.Layer, s.Name, s.Start)
			}
		}
	}
	// Per-VM isolation: under a purely hostile (plus migration) plan the
	// victims must come through spotless.
	if hostileOnly(o.Spec) && res.VictimErrors != 0 {
		violate("%d victim reads failed under a hostile-only plan: isolation broken", res.VictimErrors)
	}
	res.Revoked = mgr.Daemon("hostile").RingState() == "revoked"
	for _, v := range victims {
		if st := mgr.Daemon(v).RingState(); st != "attached" {
			violate("victim %s ring ended the storm %s", v, st)
		}
	}
	hs := mgr.DaemonStats("hostile")
	record("rejects=%d stale=%d revoked=%v migrations=%d\n", hs.RingRejects, hs.StaleKeys, res.Revoked, res.Migrations)
	res.FaultCounts = append(plan.Counts(), hostilePlan.Counts()...)
	for _, pc := range res.FaultCounts {
		record("fault|%s|%d|%d\n", pc.Point, pc.Evals, pc.Fires)
	}
	res.Fingerprint = fp.Sum64()
	return res
}
