package chaostest

import (
	"testing"

	"vread/internal/faults"
)

// rackPlans arm the datacenter-scale faultpoints: whole-rack loss, namespace
// shard loss, and inter-domain partitions, alone and composed with the
// classic fault surface.
var rackPlans = []struct {
	name string
	spec string
}{
	{"rack-kill", "rack.kill:after=10,max=1"},
	{"shard-kill", "shard.kill:p=0.05"},
	{"domain-partition", "domain.partition:p=0.08,delay=2ms"},
	{"full-storm", "rack.kill:after=8,max=1;shard.kill:p=0.04;domain.partition:p=0.05,delay=1ms;net.frame.drop:p=0.02"},
}

// TestRackStorm kills a full rack (and worse) mid-storm and requires the
// chaos invariants to hold: every read returns correct bytes or a typed
// error after replica failover, every span closes, and the run drains.
func TestRackStorm(t *testing.T) {
	for _, plan := range rackPlans {
		spec, err := faults.ParseSpec(plan.spec)
		if err != nil {
			t.Fatalf("plan %s: %v", plan.name, err)
		}
		for _, seed := range []int64{1, 7} {
			res := RunRack(RackOptions{Seed: seed, Spec: spec})
			for _, v := range res.Violations {
				t.Errorf("plan %s seed %d: %s", plan.name, seed, v)
			}
			if res.OKs == 0 {
				t.Errorf("plan %s seed %d: no read survived (%d typed errors, %d open misses)",
					plan.name, seed, res.TypedErrors, res.OpenMisses)
			}
		}
	}
}

// TestRackStormFires checks the rack kill actually takes effect: the plan
// fires, and the storm still completes with reads surviving via the replicas
// outside the victim rack.
func TestRackStormFires(t *testing.T) {
	spec, err := faults.ParseSpec("rack.kill:after=5,max=1")
	if err != nil {
		t.Fatal(err)
	}
	res := RunRack(RackOptions{Seed: 3, Spec: spec, Reads: 30})
	for _, v := range res.Violations {
		t.Error(v)
	}
	fired := false
	for _, pc := range res.FaultCounts {
		if pc.Point == faults.RackKill && pc.Fires == 1 {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("rack.kill never fired: %+v", res.FaultCounts)
	}
	if res.OKs == 0 {
		t.Errorf("no read survived the rack kill (%d typed, %d misses)", res.TypedErrors, res.OpenMisses)
	}
}

// TestRackStormDeterminism replays the composed storm: same (seed, spec) must
// produce a byte-identical outcome stream.
func TestRackStormDeterminism(t *testing.T) {
	spec, err := faults.ParseSpec("rack.kill:after=8,max=1;shard.kill:p=0.05;domain.partition:p=0.06,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	a := RunRack(RackOptions{Seed: 11, Spec: spec})
	b := RunRack(RackOptions{Seed: 11, Spec: spec})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same (seed, spec) diverged: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
	if len(a.Violations)+len(b.Violations) > 0 {
		t.Fatalf("violations: %v %v", a.Violations, b.Violations)
	}
}
