// Package chaostest is the invariant-checking chaos harness for the full
// vRead read path: it builds a two-host cluster, runs a seeded random read
// workload under a fault plan, and checks the properties that must survive
// any fault schedule:
//
//   - every read returns exactly the written bytes or a typed error — never
//     silently corrupted or truncated data;
//   - every trace span opened on a read is closed, fault paths included;
//   - the workload terminates (no read wedges forever) and leaves nothing
//     behind: Env.Pending drains to zero and no remote read stays pending;
//   - the entire run is deterministic — two runs with the same (seed, plan)
//     produce byte-identical outcome streams, so a failing seed IS the
//     reproducer.
//
// The harness is a plain package (not _test) so the chaos smoke test, the
// soak test, and the fault-sweep experiment can all drive it.
package chaostest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Options selects one chaos run. The zero value of every field but Seed and
// Spec is replaced by a sensible default.
type Options struct {
	Seed      int64
	Spec      faults.Spec
	Transport core.Transport
	Files     int           // files written before the storm (default 3)
	FileSize  int64         // bytes per file (default 1 MiB)
	Reads     int           // read operations in the storm (default 30)
	Deadline  time.Duration // virtual-time budget for the run (default 1h)
}

func (o Options) withDefaults() Options {
	if o.Files == 0 {
		o.Files = 3
	}
	if o.FileSize == 0 {
		o.FileSize = 1 << 20
	}
	if o.Reads == 0 {
		o.Reads = 30
	}
	if o.Deadline == 0 {
		o.Deadline = time.Hour
	}
	return o
}

// Result is one run's observable outcome.
type Result struct {
	Fingerprint uint64 // FNV-1a over the outcome stream, virtual times included
	Reads       int    // read operations attempted
	OKs         int    // reads that returned correct bytes
	TypedErrors int    // reads that failed with a typed vRead error
	OpenMisses  int    // vRead opens that fell back (e.g. after a crash)
	FaultCounts []faults.PointCount
	Violations  []string // broken invariants; empty on a clean run
}

// DistinctFired counts faultpoints that fired at least once.
func (r Result) DistinctFired() int {
	n := 0
	for _, pc := range r.FaultCounts {
		if pc.Fires > 0 {
			n++
		}
	}
	return n
}

// Run executes one chaos scenario and returns its outcome. It never calls
// testing APIs: violations are data, so callers can aggregate them across a
// seed sweep before failing.
func Run(o Options) Result {
	o = o.withDefaults()
	res := Result{}
	violate := func(format string, args ...interface{}) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	c := cluster.New(o.Seed, cluster.Params{})
	defer c.Close()
	plan := faults.NewPlan(c.Env)
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.Fabric.InjectFaults(plan)
	h1.Disk.InjectFaults(plan)
	h2.Disk.InjectFaults(plan)
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 4 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)

	// Alternate placement so the storm exercises both the local (ring) and
	// remote (RDMA/TCP) halves of the read path. The policy is called once
	// per block in block-ID order, so the counter maps IDs to datanodes.
	var nextBlock int64
	blockDN := make(map[int64]string)
	nn.SetPlacementPolicy(func(string, string, int) []string {
		nextBlock++
		dn := "dn1"
		if nextBlock%2 == 0 {
			dn = "dn2"
		}
		blockDN[nextBlock] = dn
		return []string{dn}
	})

	mgr := core.NewManager(c, nn, core.Config{Transport: o.Transport, Faults: plan})
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	lib := mgr.EnableClient("client")
	cl.SetBlockReader(lib)

	contents := make([]data.Pattern, o.Files)
	tracer := trace.NewTracer(c.Env, 1)
	fp := fnv.New64a()
	record := func(format string, args ...interface{}) {
		fmt.Fprintf(fp, format, args...)
	}

	done := false
	c.Go("chaos", func(p *sim.Proc) {
		// Quiet phase: the faultpoints arm only after the data is written,
		// so every failure afterwards has known-good bytes to check against.
		for i := range contents {
			contents[i] = data.Pattern{Seed: uint64(o.Seed)*1000 + uint64(i), Size: o.FileSize}
			if err := cl.WriteFile(p, fmt.Sprintf("/chaos/f%d", i), contents[i]); err != nil {
				violate("write f%d: %v", i, err)
				return
			}
		}
		for _, r := range o.Spec {
			plan.Set(r)
		}

		rng := c.Env.Rand()
		for i := 0; i < o.Reads; i++ {
			res.Reads++
			blk := int64(rng.Intn(int(nextBlock))) + 1
			fileIdx := int(blk-1) % o.Files // one block per file at these sizes
			want := data.NewSlice(contents[fileIdx])
			off := int64(rng.Intn(int(o.FileSize - 1)))
			n := int64(rng.Intn(int(o.FileSize-off))) + 1

			tr := tracer.Request(fmt.Sprintf("chaos-read-%d", i))
			vfd, ok := lib.OpenPath(p, tr, blockDN[blk], hdfs.BlockPath(hdfs.BlockID(blk)), fmt.Sprintf("blk_%d", blk))
			if !ok {
				// A miss (crash-invalidated mount) degrades; it must not
				// corrupt. Real deployments take the vanilla socket path and
				// the restarted daemon remounts — model that resync here so
				// later reads exercise vRead again.
				res.OpenMisses++
				tr.Finish(0)
				record("%d|blk%d|%d|%d|openmiss|%d\n", i, blk, off, n, c.Env.Now())
				mgr.ResyncHost("host1")
				mgr.ResyncHost("host2")
				continue
			}
			got, err := vfd.ReadAt(p, tr, off, n)
			vfd.Close(p, tr)
			tr.Finish(n)
			switch {
			case err == nil:
				if !data.Equal(got, want.Sub(off, n)) {
					violate("read %d blk%d [%d,%d): silent corruption", i, blk, off, off+n)
					record("%d|blk%d|%d|%d|corrupt|%d\n", i, blk, off, n, c.Env.Now())
				} else {
					res.OKs++
					record("%d|blk%d|%d|%d|ok|%d\n", i, blk, off, n, c.Env.Now())
				}
			case errors.Is(err, core.ErrDaemonFailed), errors.Is(err, core.ErrShortRead), errors.Is(err, core.ErrRingClosed),
				errors.Is(err, core.ErrStaleKey), errors.Is(err, core.ErrRingRevoked):
				res.TypedErrors++
				record("%d|blk%d|%d|%d|err:%v|%d\n", i, blk, off, n, err, c.Env.Now())
			default:
				violate("read %d blk%d: untyped error %v", i, blk, err)
				record("%d|blk%d|%d|%d|untyped|%d\n", i, blk, off, n, c.Env.Now())
			}
		}
		done = true
	})

	start := c.Env.Now()
	if err := c.Env.RunUntil(start + o.Deadline); err != nil {
		violate("engine: %v", err)
		return res
	}
	if !done {
		violate("workload wedged: storm did not finish within %v", o.Deadline)
		return res
	}
	if pend := c.Env.Pending(); pend != 0 {
		violate("%d events still pending after the storm drained", pend)
	}
	if pend := mgr.PendingRemoteReads(); pend != 0 {
		violate("%d remote reads leaked", pend)
	}
	// Span balance is checked after the drain: readahead disk spans and
	// dropped-frame wire spans close asynchronously (at disk-finish or
	// would-have-arrived instants), but once the event loop is empty every
	// span opened on any trace must have ended — fault paths included.
	for _, tr := range tracer.Traces() {
		for _, s := range tr.Spans {
			if s.End < s.Start {
				violate("%s: span %s/%s opened at %v never closed", tr.Name, s.Layer, s.Name, s.Start)
			}
		}
	}
	record("downgrades=%d retries=%d crashes=%d\n",
		mgr.Downgrades(), mgr.DaemonStats("client").RemoteRetries, mgr.DaemonStats("client").Crashes)
	res.FaultCounts = plan.Counts()
	for _, pc := range res.FaultCounts {
		record("fault|%s|%d|%d\n", pc.Point, pc.Evals, pc.Fires)
	}
	res.Fingerprint = fp.Sum64()
	return res
}
