package chaostest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// RackOptions selects one rack-storm chaos run: a federated namespace over a
// multi-domain topology with replicated blocks, a read storm with replica
// failover, and a fault plan that may take out a whole rack (rack.kill), a
// namespace shard (shard.kill) or an inter-domain link (domain.partition)
// mid-storm.
type RackOptions struct {
	Seed      int64
	Spec      faults.Spec
	Transport core.Transport
	// Topology: Domains × RacksPerDomain × HostsPerRack (default 3×2×2).
	Domains        int
	RacksPerDomain int
	HostsPerRack   int
	Shards         int    // namespace shards (default 4)
	Replication    int    // replicas per block (default 3)
	KillRack       string // victim rack for rack.kill (default first rack)
	// MigrateDN composes the migration storm with the rack storm: when set
	// (and the spec arms mount.migrate), each read round may ping-pong this
	// datanode's mount between its home host and the client's host mid-kill.
	// Pick a datanode outside the victim rack.
	MigrateDN string
	Files     int   // files written before the storm (default 4)
	FileSize  int64 // bytes per file (default 256 KiB)
	Reads     int   // read operations in the storm (default 40)
	Deadline  time.Duration
}

func (o RackOptions) withDefaults() RackOptions {
	if o.Domains == 0 {
		o.Domains = 3
	}
	if o.RacksPerDomain == 0 {
		o.RacksPerDomain = 2
	}
	if o.HostsPerRack == 0 {
		o.HostsPerRack = 2
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Replication == 0 {
		o.Replication = 3
	}
	if o.Files == 0 {
		o.Files = 4
	}
	if o.FileSize == 0 {
		o.FileSize = 256 << 10
	}
	if o.Reads == 0 {
		o.Reads = 40
	}
	if o.Deadline == 0 {
		o.Deadline = time.Hour
	}
	return o
}

// RunRack executes one rack-storm scenario and returns its outcome under the
// same invariants as Run: correct-bytes-or-typed-error on every read (with
// replica failover — a read only counts as failed when every replica failed
// typed), span balance, full drain, and a deterministic fingerprint.
func RunRack(o RackOptions) Result {
	o = o.withDefaults()
	res := Result{}
	violate := func(format string, args ...interface{}) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	c := cluster.New(o.Seed, cluster.Params{})
	defer c.Close()
	plan := faults.NewPlan(c.Env)
	hosts := c.BuildTopology(cluster.TopologySpec{
		Domains:        o.Domains,
		RacksPerDomain: o.RacksPerDomain,
		HostsPerRack:   o.HostsPerRack,
	})
	racks := c.Racks()
	victim := o.KillRack
	if victim == "" {
		victim = racks[0]
	}
	c.InjectFaults(plan)
	c.Fabric.InjectFaults(plan)
	for _, h := range hosts {
		h.Disk.InjectFaults(plan)
	}

	// One datanode VM on the first host of every rack; the client in the
	// last domain, so the victim rack never takes the reader down with it.
	dnNames := make([]string, len(racks))
	for i, rack := range racks {
		dnNames[i] = fmt.Sprintf("dn%d", i)
		c.RackHosts(rack)[0].AddVM(dnNames[i], metrics.TagDatanodeApp)
	}
	clientVM := hosts[len(hosts)-1].AddVM("client", metrics.TagClientApp)

	router := hdfs.NewRouter(c.Env, hdfs.Config{Replication: o.Replication}, c.Fabric,
		hdfs.RouterOptions{Shards: o.Shards, RingSeed: o.Seed})
	router.InjectFaults(plan)
	for _, dn := range dnNames {
		hdfs.StartDataNode(c.Env, router, c.VM(dn).Kernel)
	}
	cl := hdfs.NewClient(c.Env, router, clientVM.Kernel)

	mgr := core.NewManager(c, router, core.Config{Transport: o.Transport, Faults: plan})
	for _, dn := range dnNames {
		mgr.MountDatanode(dn)
	}
	lib := mgr.EnableClient("client")
	cl.SetBlockReader(lib)

	contents := make([]data.Pattern, o.Files)
	tracer := trace.NewTracer(c.Env, 1)
	fp := fnv.New64a()
	record := func(format string, args ...interface{}) {
		fmt.Fprintf(fp, format, args...)
	}

	done := false
	c.Go("rack-storm", func(p *sim.Proc) {
		for i := range contents {
			contents[i] = data.Pattern{Seed: uint64(o.Seed)*1000 + uint64(i), Size: o.FileSize}
			if err := cl.WriteFile(p, fmt.Sprintf("/rack/f%d", i), contents[i]); err != nil {
				violate("write f%d: %v", i, err)
				return
			}
		}
		for _, r := range o.Spec {
			plan.Set(r)
		}

		var migHome, migAway string
		if o.MigrateDN != "" {
			migHome = c.VM(o.MigrateDN).Host.Name
			migAway = clientVM.Host.Name
		}
		rng := c.Env.Rand()
		for i := 0; i < o.Reads; i++ {
			res.Reads++
			if c.MaybeKillRack(victim) {
				record("%d|rack-kill|%s|%d\n", i, victim, c.Env.Now())
			}
			if o.MigrateDN != "" {
				dst := migAway
				if c.VM(o.MigrateDN).Host.Name == migAway {
					dst = migHome
				}
				mig, fired, err := mgr.MaybeMigrateMount(p, o.MigrateDN, dst)
				if err != nil {
					violate("round %d: migration of %s: %v", i, o.MigrateDN, err)
				} else if fired {
					record("%d|migrate|%s->%s|%d|%d\n", i, mig.SrcHost, mig.DstHost, mig.Captured, c.Env.Now())
				}
			}
			fileIdx := rng.Intn(o.Files)
			off := int64(rng.Intn(int(o.FileSize - 1)))
			n := int64(rng.Intn(int(o.FileSize-off))) + 1
			want := data.NewSlice(contents[fileIdx]).Sub(off, n)

			tr := tracer.Request(fmt.Sprintf("rack-read-%d", i))
			infos, err := router.GetBlockLocations(p, cl.Kernel(), fmt.Sprintf("/rack/f%d", fileIdx))
			if err != nil {
				tr.Finish(0)
				if errors.Is(err, hdfs.ErrShardDown) {
					res.TypedErrors++
					record("%d|f%d|%d|%d|shard-down|%d\n", i, fileIdx, off, n, c.Env.Now())
				} else {
					violate("read %d f%d: untyped metadata error %v", i, fileIdx, err)
					record("%d|f%d|%d|%d|untyped|%d\n", i, fileIdx, off, n, c.Env.Now())
				}
				continue
			}
			blk := infos[0] // one block per file at these sizes

			outcome := "exhausted"
			for _, loc := range blk.Locations {
				vfd, ok := lib.OpenPath(p, tr, loc, hdfs.BlockPath(blk.ID), blk.BlockName())
				if !ok {
					res.OpenMisses++
					record("%d|%s@%s|openmiss|%d\n", i, blk.BlockName(), loc, c.Env.Now())
					continue // fail over to the next replica
				}
				got, rerr := vfd.ReadAt(p, tr, off, n)
				vfd.Close(p, tr)
				switch {
				case rerr == nil:
					if data.Equal(got, want) {
						outcome = "ok"
					} else {
						outcome = "corrupt"
					}
				case errors.Is(rerr, core.ErrDaemonFailed), errors.Is(rerr, core.ErrShortRead),
					errors.Is(rerr, core.ErrRingClosed), errors.Is(rerr, core.ErrStaleKey),
					errors.Is(rerr, core.ErrRingRevoked):
					record("%d|%s@%s|err:%v|%d\n", i, blk.BlockName(), loc, rerr, c.Env.Now())
					continue // typed failure — fail over
				default:
					outcome = "untyped:" + rerr.Error()
				}
				break
			}
			tr.Finish(n)
			record("%d|%s|%d|%d|%s|%d\n", i, blk.BlockName(), off, n, outcome, c.Env.Now())
			switch outcome {
			case "ok":
				res.OKs++
			case "exhausted":
				res.TypedErrors++ // every replica failed with a typed error or miss
			case "corrupt":
				violate("read %d %s [%d,%d): silent corruption", i, blk.BlockName(), off, off+n)
			default:
				violate("read %d %s: %s", i, blk.BlockName(), outcome)
			}
		}
		done = true
	})

	start := c.Env.Now()
	if err := c.Env.RunUntil(start + o.Deadline); err != nil {
		violate("engine: %v", err)
		return res
	}
	if !done {
		violate("workload wedged: storm did not finish within %v", o.Deadline)
		return res
	}
	if pend := c.Env.Pending(); pend != 0 {
		violate("%d events still pending after the storm drained", pend)
	}
	if pend := mgr.PendingRemoteReads(); pend != 0 {
		violate("%d remote reads leaked", pend)
	}
	for _, tr := range tracer.Traces() {
		for _, s := range tr.Spans {
			if s.End < s.Start {
				violate("%s: span %s/%s opened at %v never closed", tr.Name, s.Layer, s.Name, s.Start)
			}
		}
	}
	record("kills=%d routed=%d\n", router.ShardKills(), router.Routed())
	res.FaultCounts = plan.Counts()
	for _, pc := range res.FaultCounts {
		record("fault|%s|%d|%d\n", pc.Point, pc.Evals, pc.Fires)
	}
	res.Fingerprint = fp.Sum64()
	return res
}
