package chaostest

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"vread/internal/core"
	"vread/internal/faults"
)

// smokePlans is the chaos-smoke matrix: every faultpoint appears in at least
// one plan, at rates high enough to fire within a 30-read storm.
var smokePlans = []struct {
	name      string
	spec      string
	transport core.Transport
}{
	{"slow-disk", "disk.read.slow:p=0.4,delay=2ms", core.TransportRDMA},
	{"failing-disk", "disk.read.error:p=0.08;disk.read.torn:p=0.12", core.TransportRDMA},
	{"lossy-net", "net.frame.drop:p=0.04;net.frame.delay:p=0.3,delay=1ms", core.TransportTCP},
	{"flaky-rdma", "rdma.qp.teardown:p=0.03", core.TransportRDMA},
	{"noisy-ring", "ring.doorbell.lost:p=0.4;ring.stall:p=0.3,delay=500us", core.TransportRDMA},
	{"crashy-daemon", "daemon.crash:p=0.05", core.TransportRDMA},
}

var smokeSeeds = []int64{1, 7, 42}

// failureRecord is what the CI artifact carries for a red chaos run: the
// (seed, spec) pair replays the failure exactly.
type failureRecord struct {
	Seed       int64    `json:"seed"`
	Plan       string   `json:"plan"`
	Spec       string   `json:"spec"`
	Violations []string `json:"violations"`
}

// TestChaosSmoke sweeps the seed × plan matrix, requiring every run to hold
// all invariants and the suite as a whole to exercise most of the fault
// surface. When CHAOS_REPORT names a file, failing (seed, spec) pairs are
// written there as JSON so CI can attach the reproducers as an artifact.
func TestChaosSmoke(t *testing.T) {
	distinct := make(map[string]bool)
	var failures []failureRecord
	for _, plan := range smokePlans {
		spec, err := faults.ParseSpec(plan.spec)
		if err != nil {
			t.Fatalf("plan %s: %v", plan.name, err)
		}
		for _, seed := range smokeSeeds {
			res := Run(Options{Seed: seed, Spec: spec, Transport: plan.transport})
			if len(res.Violations) > 0 {
				failures = append(failures, failureRecord{
					Seed: seed, Plan: plan.name, Spec: plan.spec, Violations: res.Violations,
				})
				for _, v := range res.Violations {
					t.Errorf("plan %s seed %d: %s", plan.name, seed, v)
				}
			}
			if res.OKs == 0 {
				t.Errorf("plan %s seed %d: no read survived (%d typed errors, %d open misses)",
					plan.name, seed, res.TypedErrors, res.OpenMisses)
			}
			for _, pc := range res.FaultCounts {
				if pc.Fires > 0 {
					distinct[pc.Point] = true
				}
			}
		}
	}
	if len(distinct) < 6 {
		t.Errorf("only %d distinct faultpoints fired across the smoke matrix, want >= 6: %v",
			len(distinct), distinct)
	}
	if path := os.Getenv("CHAOS_REPORT"); path != "" && len(failures) > 0 {
		blob, err := json.MarshalIndent(failures, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatalf("writing CHAOS_REPORT: %v", err)
		}
		t.Logf("wrote %d failing seeds to %s", len(failures), path)
	}
}

// TestChaosSameSeedIsByteIdentical is the determinism acceptance criterion:
// the same (seed, plan) pair must replay to the same fingerprint — outcome
// stream, virtual timestamps, and fault tallies included — so a failing seed
// is a complete reproducer.
func TestChaosSameSeedIsByteIdentical(t *testing.T) {
	for _, plan := range smokePlans {
		spec, err := faults.ParseSpec(plan.spec)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Seed: 42, Spec: spec, Transport: plan.transport}
		a, b := Run(o), Run(o)
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("plan %s: same-seed fingerprints differ: %016x vs %016x",
				plan.name, a.Fingerprint, b.Fingerprint)
		}
		if a.Fingerprint == 0 {
			t.Errorf("plan %s: empty fingerprint", plan.name)
		}
	}
	// Different seeds must actually change the schedule (guards against a
	// fingerprint that ignores its inputs).
	spec, _ := faults.ParseSpec(smokePlans[0].spec)
	a := Run(Options{Seed: 1, Spec: spec})
	b := Run(Options{Seed: 2, Spec: spec})
	if a.Fingerprint == b.Fingerprint {
		t.Error("different seeds produced identical fingerprints")
	}
}

// TestChaosFaultFreeBaseline: with no plan armed, the harness itself must be
// clean — every read ok, nothing fired, no violations.
func TestChaosFaultFreeBaseline(t *testing.T) {
	res := Run(Options{Seed: 5, Reads: 10})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs != res.Reads || res.TypedErrors != 0 || res.OpenMisses != 0 {
		t.Fatalf("baseline: %d/%d ok, %d errors, %d misses",
			res.OKs, res.Reads, res.TypedErrors, res.OpenMisses)
	}
	if res.DistinctFired() != 0 {
		t.Fatalf("faults fired with no plan armed: %+v", res.FaultCounts)
	}
}

// TestChaosCombinedStorm arms everything at once for a longer run — the
// closest the suite gets to the paper's "modified virtio + RDMA under real
// clouds" worst case.
func TestChaosCombinedStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("combined storm skipped in -short mode")
	}
	spec, err := faults.ParseSpec(
		"disk.read.slow:p=0.2,delay=1ms;disk.read.error:p=0.03;disk.read.torn:p=0.05;" +
			"net.frame.drop:p=0.02;net.frame.delay:p=0.2,delay=500us;" +
			"rdma.qp.teardown:p=0.02;ring.doorbell.lost:p=0.2;ring.stall:p=0.2,delay=200us;" +
			"daemon.crash:p=0.02")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(Options{Seed: 1234, Spec: spec, Reads: 60, Deadline: 4 * time.Hour})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs == 0 {
		t.Fatal("no read survived the combined storm")
	}
	t.Logf("combined storm: %d ok / %d typed errors / %d misses; %d distinct faultpoints fired",
		res.OKs, res.TypedErrors, res.OpenMisses, res.DistinctFired())
}
