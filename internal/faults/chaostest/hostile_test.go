package chaostest

import (
	"testing"

	"vread/internal/faults"
)

// hostilePlans is the hostile-guest smoke matrix: every hostile ring
// faultpoint appears in at least one plan, at rates high enough to fire
// within a 25-round storm, plus a composition with live mount migration.
var hostilePlans = []struct {
	name string
	spec string
}{
	{"bad-slot", "ring.badslot:p=0.3"},
	{"stale-key", "ring.stalekey:p=0.3"},
	{"doorbell-storm", "ring.doorbellstorm:p=0.25"},
	{"slot-held", "ring.slotheld:p=0.3,delay=500us"},
	{"full-hostile", "ring.badslot:p=0.15;ring.stalekey:p=0.15;ring.doorbellstorm:p=0.1;ring.slotheld:p=0.1,delay=200us"},
	{"hostile-migrate", "ring.badslot:p=0.15;ring.stalekey:p=0.15;mount.migrate:p=0.2"},
}

var hostileSeeds = []int64{1, 7, 42}

// hostileShards is the mount-table shard sweep: every storm must replay
// byte-identically at K=1 and K>1 (the fold and everything behind it is
// shard-count-agnostic).
var hostileShards = []int{1, 4}

// TestChaosHostileSmoke sweeps the hostile seed × plan × shard matrix. Every
// run must hold all four invariants (correct-bytes-or-typed-error, span
// balance, full drain, determinism) plus per-VM isolation — the plans are all
// hostile-only, so a single failed victim read is a violation — and the K=1
// and K>1 runs of each (seed, plan) must produce byte-identical fingerprints.
func TestChaosHostileSmoke(t *testing.T) {
	distinct := make(map[string]bool)
	for _, plan := range hostilePlans {
		spec, err := faults.ParseSpec(plan.spec)
		if err != nil {
			t.Fatalf("plan %s: %v", plan.name, err)
		}
		for _, seed := range hostileSeeds {
			var fps []uint64
			for _, k := range hostileShards {
				res := RunHostile(HostileOptions{Seed: seed, Spec: spec, Shards: k})
				for _, v := range res.Violations {
					t.Errorf("plan %s seed %d K=%d: %s", plan.name, seed, k, v)
				}
				if res.VictimOKs == 0 {
					t.Errorf("plan %s seed %d K=%d: no victim read survived", plan.name, seed, k)
				}
				if res.HostileOKs+res.HostileErrors+res.HostileMisses == 0 {
					t.Errorf("plan %s seed %d K=%d: hostile cohort never read", plan.name, seed, k)
				}
				for _, pc := range res.FaultCounts {
					if pc.Fires > 0 {
						distinct[pc.Point] = true
					}
				}
				fps = append(fps, res.Fingerprint)
			}
			for i := 1; i < len(fps); i++ {
				if fps[i] != fps[0] {
					t.Errorf("plan %s seed %d: fingerprint differs across shard counts: K=%d %016x vs K=%d %016x",
						plan.name, seed, hostileShards[0], fps[0], hostileShards[i], fps[i])
				}
			}
		}
	}
	for _, point := range []string{
		faults.RingBadSlot, faults.RingStaleKey, faults.RingDoorbellStorm,
		faults.RingSlotHeld, faults.MountMigrate,
	} {
		if !distinct[point] {
			t.Errorf("faultpoint %s never fired across the hostile smoke matrix", point)
		}
	}
}

// TestChaosHostileSameSeedIsByteIdentical: determinism for the hostile
// harness — same (seed, plan, K) → same fingerprint, different seed → a
// different schedule.
func TestChaosHostileSameSeedIsByteIdentical(t *testing.T) {
	for _, plan := range hostilePlans {
		spec, err := faults.ParseSpec(plan.spec)
		if err != nil {
			t.Fatal(err)
		}
		o := HostileOptions{Seed: 42, Spec: spec, Shards: 4}
		a, b := RunHostile(o), RunHostile(o)
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("plan %s: same-seed fingerprints differ: %016x vs %016x",
				plan.name, a.Fingerprint, b.Fingerprint)
		}
		if a.Fingerprint == 0 {
			t.Errorf("plan %s: empty fingerprint", plan.name)
		}
	}
	spec, _ := faults.ParseSpec(hostilePlans[0].spec)
	a := RunHostile(HostileOptions{Seed: 1, Spec: spec})
	b := RunHostile(HostileOptions{Seed: 2, Spec: spec})
	if a.Fingerprint == b.Fingerprint {
		t.Error("different seeds produced identical fingerprints")
	}
}

// TestChaosHostileRevocation: a persistently forging guest trips the
// revocation threshold; the storm must end with the hostile ring revoked,
// the victims untouched, and no invariant broken — the hostile VM's reads
// degrade to typed errors and open misses, never corruption or a hang.
func TestChaosHostileRevocation(t *testing.T) {
	spec, err := faults.ParseSpec("ring.badslot:p=0.9")
	if err != nil {
		t.Fatal(err)
	}
	res := RunHostile(HostileOptions{Seed: 11, Spec: spec, RevokeThreshold: 4})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if !res.Revoked {
		t.Fatal("persistent forgeries did not revoke the hostile ring")
	}
	if res.VictimErrors != 0 {
		t.Fatalf("%d victim reads failed alongside the revocation", res.VictimErrors)
	}
	if res.HostileErrors+res.HostileMisses == 0 {
		t.Fatal("revocation left no trace on the hostile cohort")
	}
}

// TestChaosHostileFaultFreeBaseline: the hostile harness itself is clean —
// with nothing armed, both cohorts read perfectly.
func TestChaosHostileFaultFreeBaseline(t *testing.T) {
	res := RunHostile(HostileOptions{Seed: 5, Reads: 8})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs != res.Reads || res.TypedErrors != 0 || res.OpenMisses != 0 {
		t.Fatalf("baseline: %d/%d ok, %d errors, %d misses",
			res.OKs, res.Reads, res.TypedErrors, res.OpenMisses)
	}
	if res.DistinctFired() != 0 {
		t.Fatalf("faults fired with no plan armed: %+v", res.FaultCounts)
	}
}

// TestChaosMigrateSmoke: the migration storm alone — mount.migrate firing
// every few rounds must cost only latency: zero lost or corrupted reads on
// either cohort, with the blackout visible as captured descriptors.
func TestChaosMigrateSmoke(t *testing.T) {
	spec, err := faults.ParseSpec("mount.migrate:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range hostileSeeds {
		res := RunHostile(HostileOptions{Seed: seed, Spec: spec})
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if res.Migrations == 0 {
			t.Errorf("seed %d: mount.migrate never fired", seed)
		}
		if res.TypedErrors != 0 || res.OpenMisses != 0 {
			t.Errorf("seed %d: migration cost %d typed errors and %d misses, want pure latency",
				seed, res.TypedErrors, res.OpenMisses)
		}
		if res.OKs != res.Reads {
			t.Errorf("seed %d: %d/%d reads ok across migrations", seed, res.OKs, res.Reads)
		}
	}
}

// TestChaosMigrateDuringRackStorm composes live mount migration with the
// rack-kill storm: a mount ping-ponging between hosts while a whole rack goes
// dark, under the full rack-storm invariants.
func TestChaosMigrateDuringRackStorm(t *testing.T) {
	spec, err := faults.ParseSpec("rack.kill:p=0.05;mount.migrate:p=0.2")
	if err != nil {
		t.Fatal(err)
	}
	res := RunRack(RackOptions{Seed: 42, Spec: spec, MigrateDN: "dn2"})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.OKs == 0 {
		t.Fatal("no read survived the composed storm")
	}
	migrated := false
	for _, pc := range res.FaultCounts {
		if pc.Point == faults.MountMigrate && pc.Fires > 0 {
			migrated = true
		}
	}
	if !migrated {
		t.Fatal("mount.migrate never fired during the rack storm")
	}
}
