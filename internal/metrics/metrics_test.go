package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAddAndQueryCycles(t *testing.T) {
	r := NewRegistry()
	r.AddCycles("client", TagClientApp, 100)
	r.AddCycles("client", TagClientApp, 50)
	r.AddCycles("client", TagVhostNet, 25)
	r.AddCycles("datanode", TagDiskRead, 10)

	if got := r.Cycles("client", TagClientApp); got != 150 {
		t.Fatalf("Cycles = %d, want 150", got)
	}
	if got := r.EntityCycles("client"); got != 175 {
		t.Fatalf("EntityCycles = %d, want 175", got)
	}
	if got := r.TotalCycles(); got != 185 {
		t.Fatalf("TotalCycles = %d, want 185", got)
	}
	if got := r.Cycles("nobody", "nothing"); got != 0 {
		t.Fatalf("missing entity Cycles = %d, want 0", got)
	}
}

func TestNegativeCyclesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().AddCycles("e", "t", -1)
}

func TestEntitiesAndTagsSorted(t *testing.T) {
	r := NewRegistry()
	r.AddCycles("zeta", "b", 1)
	r.AddCycles("alpha", "c", 1)
	r.AddCycles("alpha", "a", 1)
	es := r.Entities()
	if len(es) != 2 || es[0] != "alpha" || es[1] != "zeta" {
		t.Fatalf("Entities = %v", es)
	}
	ts := r.Tags("alpha")
	if len(ts) != 2 || ts[0] != "a" || ts[1] != "c" {
		t.Fatalf("Tags = %v", ts)
	}
}

func TestWindowAndUtilization(t *testing.T) {
	r := NewRegistry()
	const freq = 1_000_000_000 // 1 GHz: 1 cycle = 1 ns
	r.AddCycles("vm", "work", 12345)
	r.MarkWindow(10 * time.Second)
	r.AddCycles("vm", "work", 500_000_000) // 0.5s of CPU at 1GHz

	if got := r.WindowCycles("vm", "work"); got != 500_000_000 {
		t.Fatalf("WindowCycles = %d", got)
	}
	u := r.Utilization("vm", "work", 11*time.Second, freq)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	eu := r.EntityUtilization("vm", 11*time.Second, freq)
	if math.Abs(eu-0.5) > 1e-9 {
		t.Fatalf("EntityUtilization = %v, want 0.5", eu)
	}
	// Zero-length window reports 0 rather than dividing by zero.
	if got := r.Utilization("vm", "work", 10*time.Second, freq); got != 0 {
		t.Fatalf("zero-window Utilization = %v", got)
	}
}

func TestBreakdownOmitsZero(t *testing.T) {
	r := NewRegistry()
	r.MarkWindow(0)
	r.AddCycles("vm", "busy", 1000)
	r.AddCycles("vm", "idle-tag", 0)
	b := r.Breakdown("vm", time.Second, 1_000_000)
	if _, ok := b["idle-tag"]; ok {
		t.Fatal("zero-cycle tag present in breakdown")
	}
	if _, ok := b["busy"]; !ok {
		t.Fatal("busy tag missing from breakdown")
	}
	s := FormatBreakdown(b)
	if s == "" {
		t.Fatal("empty formatted breakdown")
	}
}

func TestLatencyRecorderStats(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	for _, ms := range []int{5, 1, 3, 2, 4} {
		l.Record(time.Duration(ms) * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if l.Min() != time.Millisecond || l.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	if p := l.Percentile(50); p != 3*time.Millisecond {
		t.Fatalf("P50 = %v", p)
	}
	if p := l.Percentile(100); p != 5*time.Millisecond {
		t.Fatalf("P100 = %v", p)
	}
	// Record after sorting still works.
	l.Record(10 * time.Millisecond)
	if l.Max() != 10*time.Millisecond {
		t.Fatalf("Max after re-record = %v", l.Max())
	}
}

func TestThroughputAndRate(t *testing.T) {
	if got := Throughput(100e6, time.Second); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Throughput = %v, want 100", got)
	}
	if got := Throughput(1e6, 0); got != 0 {
		t.Fatalf("Throughput with zero time = %v", got)
	}
	if got := Rate(500, 2*time.Second); math.Abs(got-250) > 1e-9 {
		t.Fatalf("Rate = %v, want 250", got)
	}
}

// Property: mean of a recorder lies between min and max, and percentiles are
// monotone in p.
func TestLatencyPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatencyRecorder()
		for _, v := range raw {
			l.Record(time.Duration(v) * time.Microsecond)
		}
		if l.Mean() < l.Min() || l.Mean() > l.Max() {
			return false
		}
		prev := time.Duration(0)
		for p := 1.0; p <= 100; p += 7 {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: window accounting equals total minus pre-window counts for any
// interleaving of charges.
func TestWindowAccountingProperty(t *testing.T) {
	f := func(pre, post []uint8) bool {
		r := NewRegistry()
		var preSum int64
		for _, v := range pre {
			r.AddCycles("e", "t", int64(v))
			preSum += int64(v)
		}
		r.MarkWindow(time.Second)
		var postSum int64
		for _, v := range post {
			r.AddCycles("e", "t", int64(v))
			postSum += int64(v)
		}
		return r.WindowCycles("e", "t") == postSum && r.Cycles("e", "t") == preSum+postSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
