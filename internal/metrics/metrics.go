// Package metrics accumulates the measurements the paper reports: CPU cycles
// attributed to (entity, tag) pairs — the stacked bars of Figures 6–8 — plus
// latency and throughput aggregates for the delay and DFSIO experiments.
//
// Entities are coarse accounting domains ("client", "datanode"); tags are the
// paper's legend labels ("client-application", "loop device",
// "copy:virtio-vqueue", "copy:vread-buffer", "vhost-net", "rdma", "vread-net",
// "disk read", "others").
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Canonical tag names, matching the legends of Figures 6, 7 and 8.
const (
	TagClientApp   = "client-application"
	TagLoopDevice  = "loop device"
	TagCopyVirtio  = "copy:virtio-vqueue"
	TagCopyVRead   = "copy:vread-buffer"
	TagVhostNet    = "vhost-net"
	TagRDMA        = "rdma"
	TagVReadNet    = "vread-net"
	TagDiskRead    = "disk read"
	TagOthers      = "others"
	TagDatanodeApp = "datanode-application"
)

// Registry accumulates cycle counts. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	cycles map[string]map[string]int64 // entity -> tag -> cycles
	marks  map[string]int64            // snapshot support: key "entity\x00tag"
	start  time.Duration               // window start for utilization reports

	// Scheduler-injected overhead (context switches, cache-cold refills) is
	// charged to "others" like any work, but also recorded here per entity:
	// it is the one class of cycles that belongs to no single request, so
	// trace-derived breakdowns add it back to reconcile with the registry.
	sched      map[string]int64
	schedMarks map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cycles:     make(map[string]map[string]int64),
		marks:      make(map[string]int64),
		sched:      make(map[string]int64),
		schedMarks: make(map[string]int64),
	}
}

// AddCycles charges n cycles to (entity, tag). Negative n panics.
func (r *Registry) AddCycles(entity, tag string, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative cycles %d for %s/%s", n, entity, tag))
	}
	m := r.cycles[entity]
	if m == nil {
		m = make(map[string]int64)
		r.cycles[entity] = m
	}
	m[tag] += n
}

// AddSchedCycles records n scheduler-injected cycles for entity. The cycles
// must also be charged via AddCycles (under "others"); this side ledger only
// classifies them as request-unattributable.
func (r *Registry) AddSchedCycles(entity string, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative sched cycles %d for %s", n, entity))
	}
	r.sched[entity] += n
}

// SchedCycles returns scheduler-injected cycles for entity since creation.
func (r *Registry) SchedCycles(entity string) int64 { return r.sched[entity] }

// WindowSchedCycles returns scheduler-injected cycles for entity since
// MarkWindow.
func (r *Registry) WindowSchedCycles(entity string) int64 {
	return r.sched[entity] - r.schedMarks[entity]
}

// Cycles returns the cycles charged to (entity, tag) since creation.
func (r *Registry) Cycles(entity, tag string) int64 { return r.cycles[entity][tag] }

// EntityCycles returns total cycles charged to an entity across all tags.
func (r *Registry) EntityCycles(entity string) int64 {
	var sum int64
	for _, v := range r.cycles[entity] {
		sum += v
	}
	return sum
}

// TotalCycles returns the grand total across all entities.
func (r *Registry) TotalCycles() int64 {
	var sum int64
	for e := range r.cycles {
		sum += r.EntityCycles(e)
	}
	return sum
}

// Entities returns all entity names, sorted.
func (r *Registry) Entities() []string {
	out := make([]string, 0, len(r.cycles))
	for e := range r.cycles {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Tags returns the tags charged under entity, sorted.
func (r *Registry) Tags(entity string) []string {
	m := r.cycles[entity]
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// MarkWindow records the current counters and time as the start of a
// measurement window; Utilization and WindowCycles report relative to it.
func (r *Registry) MarkWindow(now time.Duration) {
	r.start = now
	for e, m := range r.cycles {
		for t, v := range m {
			r.marks[e+"\x00"+t] = v
		}
	}
	for e, v := range r.sched {
		r.schedMarks[e] = v
	}
}

// WindowCycles returns cycles charged to (entity, tag) since MarkWindow.
func (r *Registry) WindowCycles(entity, tag string) int64 {
	return r.cycles[entity][tag] - r.marks[entity+"\x00"+tag]
}

// WindowEntityCycles returns cycles charged to entity since MarkWindow.
func (r *Registry) WindowEntityCycles(entity string) int64 {
	var sum int64
	for t := range r.cycles[entity] {
		sum += r.WindowCycles(entity, t)
	}
	return sum
}

// Utilization returns the fraction of one core (0..n) that (entity, tag)
// consumed between MarkWindow and now at the given clock frequency.
func (r *Registry) Utilization(entity, tag string, now time.Duration, freqHz int64) float64 {
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.WindowCycles(entity, tag)) / (float64(freqHz) * elapsed.Seconds())
}

// EntityUtilization is Utilization summed over all tags of entity.
func (r *Registry) EntityUtilization(entity string, now time.Duration, freqHz int64) float64 {
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.WindowEntityCycles(entity)) / (float64(freqHz) * elapsed.Seconds())
}

// Breakdown returns the per-tag utilization for entity as a map, suitable for
// rendering one stacked bar of Figures 6–8.
func (r *Registry) Breakdown(entity string, now time.Duration, freqHz int64) map[string]float64 {
	out := make(map[string]float64)
	for _, tag := range r.Tags(entity) {
		if u := r.Utilization(entity, tag, now, freqHz); u > 0 {
			out[tag] = u
		}
	}
	return out
}

// FormatBreakdown renders a breakdown as "tag pct%" lines sorted descending,
// for experiment output.
func FormatBreakdown(b map[string]float64) string {
	type kv struct {
		k string
		v float64
	}
	rows := make([]kv, 0, len(b))
	for k, v := range b {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-24s %6.2f%%\n", r.k, r.v*100)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Latency samples.

// LatencyRecorder collects duration samples and reports simple statistics.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one sample.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (l *LatencyRecorder) Min() time.Duration {
	l.sort()
	if len(l.samples) == 0 {
		return 0
	}
	return l.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (l *LatencyRecorder) Max() time.Duration {
	l.sort()
	if len(l.samples) == 0 {
		return 0
	}
	return l.samples[len(l.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	l.sort()
	if len(l.samples) == 0 {
		return 0
	}
	if p <= 0 {
		return l.samples[0]
	}
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

func (l *LatencyRecorder) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// ---------------------------------------------------------------------------
// Throughput.

// Throughput converts bytes moved in elapsed virtual time to MB/s (decimal
// megabytes, as the paper's MBps axes).
func Throughput(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}

// Rate converts a count of operations in elapsed virtual time to ops/second
// (the transaction-rate axis of Figure 3).
func Rate(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
