// Package cluster assembles the simulated testbed: hosts (CPU, disk, host
// page cache, NIC) and VMs (vCPU + vhost threads, virtio devices, guest page
// cache, disk-image file system, guest kernel), wired to the shared LAN
// fabric — the machinery of the paper's Figure 10 setups.
package cluster

import (
	"fmt"
	"time"

	"vread/internal/cpusched"
	"vread/internal/faults"
	"vread/internal/fsim"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/sim/shard"
	"vread/internal/storage"
	"vread/internal/virtio"
)

// Params collects every subsystem's configuration. Zero values reproduce the
// paper's testbed: quad-core hosts, 16 GB RAM, SSD, 10 Gbps RoCE LAN, 2 GB
// VMs, KVM with vhost-net on and vhost-blk off.
type Params struct {
	// Cores per host. Default 4.
	Cores int
	// FreqHz is the host clock. Default 2.0 GHz (the paper sweeps
	// 1.6/2.0/3.2 via cpufreq-set).
	FreqHz int64
	// HostCacheBytes is the host page cache serving loop-mounted image
	// reads. Default 12 GiB (16 GB host minus VMs and host overhead is
	// generous; the daemon competes with nothing else for it).
	HostCacheBytes int64
	// GuestCacheBytes is each VM's page cache. Default 1.5 GiB (2 GB VM).
	GuestCacheBytes int64
	// CacheChunkBytes is simulation cache granularity. Default 64 KiB.
	CacheChunkBytes int64

	Sched  cpusched.Config
	Net    netsim.Config
	Virtio virtio.Config
	Guest  guest.Config
	Disk   storage.DiskConfig
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Cores == 0 {
		p.Cores = 4
	}
	if p.FreqHz == 0 {
		p.FreqHz = 2_000_000_000
	}
	if p.HostCacheBytes == 0 {
		p.HostCacheBytes = 12 << 30
	}
	if p.GuestCacheBytes == 0 {
		p.GuestCacheBytes = 3 << 29 // 1.5 GiB
	}
	if p.CacheChunkBytes == 0 {
		p.CacheChunkBytes = 64 << 10
	}
	return p
}

// Cluster is the whole simulated testbed.
//
// A cluster is either single-env (New: one Env shared by every host and VM,
// the classic serial regime) or sharded (NewSharded: one Env, metrics
// registry, and shard.LP per host, advanced in parallel under conservative
// lookahead). In the sharded regime Env and Reg are nil — all state is per
// host. The VM stack rides the shards: every VM's devices and guest kernel
// live on its host's Env, frames between hosts cross LPs through the
// fabric's interconnect (LP.Send), and guest window credit crosses through
// the network's SetCrossEnv channel. VM live-migration is single-env only —
// a cross-LP migration would span a lookahead boundary.
type Cluster struct {
	Env     *sim.Env
	Reg     *metrics.Registry
	Fabric  *netsim.Fabric
	Network *guest.Network
	Params  Params
	// Coord drives the epoch loop of a sharded cluster; nil otherwise.
	Coord *shard.Coordinator

	seed      int64
	sharded   bool
	hosts     map[string]*Host
	hostOrder []*Host // insertion order: deterministic iteration + dense IDs
	racks     map[string][]*Host
	rackOrder []string
	vms       map[string]*VM
	nextID    int64
	faults    *faults.Plan
}

// Host is one physical machine.
type Host struct {
	Name string
	// ID is a dense cluster-unique index assigned at AddHost time: the
	// Nth host added gets ID N-1. Allocation is O(1) off a counter and
	// collision-checked against the name map, so thousand-host topologies
	// construct without quadratic scans or silent ID reuse.
	ID int
	// Rack and Domain place the host in the failure topology: hosts in a
	// rack share a ToR switch (a rack kill takes them all out); racks in
	// a fault domain share power/cooling (WAS-style fault domains).
	Rack    string
	Domain  string
	Cluster *Cluster
	// Env is the event loop this host's devices and daemons run on: the
	// cluster Env in the single-env regime, the host's own in the sharded
	// one.
	Env *sim.Env
	// Reg receives this host's metrics. Shared cluster-wide in the
	// single-env regime, per host when sharded (concurrent shards must not
	// write one registry).
	Reg *metrics.Registry
	// LP is the host's logical process in a sharded cluster; nil otherwise.
	LP      *shard.LP
	CPU     *cpusched.CPU
	Disk    *storage.Disk
	Cache   *storage.PageCache // host page cache (loop-mount reads)
	NIC     *netsim.NIC
	Softirq *cpusched.Thread
	VMs     []*VM
	down    bool
}

// VM is one virtual machine.
type VM struct {
	Name    string
	Host    *Host
	ImageID int64 // namespaces this VM's inodes in the host page cache
	VCPU    *cpusched.Thread
	Vhost   *cpusched.Thread
	IOTh    *cpusched.Thread
	NetDev  *virtio.NetDev
	BlkDev  *virtio.BlkDev
	Cache   *storage.PageCache // guest page cache
	FS      *fsim.FS           // file system inside the disk image
	Kernel  *guest.Kernel
}

// New creates an empty cluster.
func New(seed int64, params Params) *Cluster {
	params = params.WithDefaults()
	env := sim.NewEnv(seed)
	reg := metrics.NewRegistry()
	return &Cluster{
		Env:     env,
		Reg:     reg,
		Fabric:  netsim.NewFabric(env, params.Net),
		Network: guest.NewNetwork(env),
		Params:  params,
		seed:    seed,
	}
}

// NewSharded creates an empty sharded cluster: every host added gets its own
// Env (seeded deterministically from the cluster seed and the host ID), its
// own metrics registry, and an LP registered with the coordinator. The
// fabric's interconnect is wired to the coordinator's mailboxes, with the
// fabric's minimum link latency as the lookahead window. shards is the
// worker count K; the run is byte-identical for every K by construction.
func NewSharded(seed int64, params Params, shards int) *Cluster {
	params = params.WithDefaults()
	c := &Cluster{
		Fabric:  netsim.NewFabric(nil, params.Net),
		Network: guest.NewNetwork(nil),
		Params:  params,
		Coord:   shard.New(shard.Config{Shards: shards, Lookahead: params.Net.Lookahead()}),
		seed:    seed,
		sharded: true,
	}
	c.Fabric.SetInterconnect(func(src, dst string, delay time.Duration, deliver func()) {
		c.hosts[src].LP.Send(c.hosts[dst].LP, delay, deliver)
	})
	// Guest window credit between kernels on different hosts rides the same
	// mailboxes, after the same lookahead.
	c.Network.SetCrossEnv(func(src, dst *guest.Kernel, deliver func()) {
		c.vms[src.Name()].Host.LP.Send(c.vms[dst.Name()].Host.LP, params.Net.Lookahead(), deliver)
	})
	return c
}

// Sharded reports whether the cluster runs one Env per host.
func (c *Cluster) Sharded() bool { return c.sharded }

// AddHost creates a host with its CPU, SSD, page cache and NIC in the
// default rack/domain ("r0"/"d0").
func (c *Cluster) AddHost(name string) *Host {
	return c.AddHostAt(name, "r0", "d0")
}

// AddHostAt creates a host in the given rack and fault domain.
func (c *Cluster) AddHostAt(name, rack, domain string) *Host {
	if c.hosts == nil {
		c.hosts = make(map[string]*Host)
		c.racks = make(map[string][]*Host)
	}
	if _, ok := c.hosts[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate host %q", name))
	}
	id := len(c.hostOrder)
	env, reg := c.Env, c.Reg
	if c.sharded {
		// Per-host seed: a fixed odd multiplier spreads host IDs across the
		// seed space; any deterministic injection works, this one keeps
		// host N's stream stable as hosts are added.
		env = sim.NewEnv(c.seed*1_000_003 + int64(id) + 1)
		reg = metrics.NewRegistry()
	}
	cpu := cpusched.New(env, reg, c.Params.Cores, c.Params.FreqHz, c.Params.Sched)
	h := &Host{
		Name:    name,
		ID:      id,
		Rack:    rack,
		Domain:  domain,
		Cluster: c,
		Env:     env,
		Reg:     reg,
		CPU:     cpu,
		Disk:    storage.NewDisk(env, name+":ssd", c.Params.Disk),
		Cache:   storage.NewPageCache(name+":pagecache", c.Params.HostCacheBytes, c.Params.CacheChunkBytes),
		Softirq: cpu.NewThread(name+":softirq", name),
	}
	if c.sharded {
		h.LP = c.Coord.AddLP(env)
		h.NIC = c.Fabric.AddHostOn(name, h.Softirq, env)
	} else {
		h.NIC = c.Fabric.AddHost(name, h.Softirq)
	}
	c.Fabric.SetHostLocation(name, rack, domain)
	c.hosts[name] = h
	c.hostOrder = append(c.hostOrder, h)
	if _, ok := c.racks[rack]; !ok {
		c.rackOrder = append(c.rackOrder, rack)
	}
	c.racks[rack] = append(c.racks[rack], h)
	return h
}

// TopologySpec describes a regular datacenter fabric: Domains fault domains,
// each holding RacksPerDomain racks of HostsPerRack hosts. Host names are
// "d<i>r<j>h<k>", rack names "d<i>r<j>", domain names "d<i>".
type TopologySpec struct {
	Domains        int
	RacksPerDomain int
	HostsPerRack   int
}

// Hosts returns the total host count the spec describes.
func (t TopologySpec) Hosts() int { return t.Domains * t.RacksPerDomain * t.HostsPerRack }

// BuildTopology adds every host in the spec in deterministic order (domain-
// major, then rack, then host) and returns them in that order.
func (c *Cluster) BuildTopology(spec TopologySpec) []*Host {
	hosts := make([]*Host, 0, spec.Hosts())
	for d := 0; d < spec.Domains; d++ {
		for r := 0; r < spec.RacksPerDomain; r++ {
			rack := fmt.Sprintf("d%dr%d", d, r)
			for h := 0; h < spec.HostsPerRack; h++ {
				hosts = append(hosts, c.AddHostAt(fmt.Sprintf("%sh%d", rack, h), rack, fmt.Sprintf("d%d", d)))
			}
		}
	}
	return hosts
}

// AssignRackShards pins every host's LP to a shard by rack: racks are
// divided into contiguous blocks, one block per shard, so hosts that share a
// ToR switch — the cluster's densest communication neighborhood — land on
// the same worker and their frames cross the mailbox no more often than the
// topology requires. Call after the topology is built, before the run. A
// no-op on single-env clusters.
func (c *Cluster) AssignRackShards() {
	if !c.sharded {
		return
	}
	k := c.Coord.Shards()
	nracks := len(c.rackOrder)
	if nracks == 0 {
		return
	}
	for ri, rack := range c.rackOrder {
		s := ri * k / nracks
		for _, h := range c.racks[rack] {
			h.LP.SetShard(s)
		}
	}
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// Hosts returns every host in insertion (ID) order. Callers must not mutate
// the slice.
func (c *Cluster) Hosts() []*Host { return c.hostOrder }

// Racks returns every rack name in first-host-added order.
func (c *Cluster) Racks() []string { return c.rackOrder }

// RackHosts returns the hosts of one rack in insertion order.
func (c *Cluster) RackHosts(rack string) []*Host { return c.racks[rack] }

// Down reports whether the host has been killed (rack kill or explicit).
func (h *Host) Down() bool { return h.down }

// InjectFaults arms a fault plan on the cluster itself (rack.kill). Device
// plans (disk, fabric) are armed on those layers directly.
func (c *Cluster) InjectFaults(plan *faults.Plan) { c.faults = plan }

// KillRack takes a whole rack dark: every host in it stops exchanging
// frames (the ToR died). In-flight frames to or from the rack are dropped
// at the fabric; readers see timeouts and fail over to replicas in other
// racks. The hosts' processes keep running — they are partitioned, not
// descheduled — which is exactly the gray-failure shape that stresses the
// timeout/degradation machinery.
func (c *Cluster) KillRack(rack string) {
	for _, h := range c.racks[rack] {
		h.down = true
		c.Fabric.SetHostDown(h.Name, true)
	}
}

// ReviveRack undoes KillRack (the ToR came back).
func (c *Cluster) ReviveRack(rack string) {
	for _, h := range c.racks[rack] {
		h.down = false
		c.Fabric.SetHostDown(h.Name, false)
	}
}

// MaybeKillRack evaluates the rack.kill faultpoint and, when it fires,
// kills the named rack. Load generators call this per arrival so a chaos
// spec like "rack.kill:after=40,max=1" pins the kill to an exact point in
// the storm.
func (c *Cluster) MaybeKillRack(rack string) bool {
	if !c.faults.Should(faults.RackKill) {
		return false
	}
	c.KillRack(rack)
	return true
}

// VM returns a VM by name, or nil.
func (c *Cluster) VM(name string) *VM { return c.vms[name] }

// VMs returns the registry of all VMs.
func (c *Cluster) AllVMs() map[string]*VM { return c.vms }

// AddVM creates a 1-vCPU / 2 GB VM on the host. appTag is the metrics tag
// for application-attributed cycles (metrics.TagClientApp or
// metrics.TagDatanodeApp).
func (h *Host) AddVM(name, appTag string) *VM {
	c := h.Cluster
	if c.vms == nil {
		c.vms = make(map[string]*VM)
	}
	if _, ok := c.vms[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate VM %q", name))
	}
	c.nextID++
	vm := &VM{
		Name:    name,
		Host:    h,
		ImageID: c.nextID,
		VCPU:    h.CPU.NewThread(name+":vcpu", name),
		Vhost:   h.CPU.NewThread(name+":vhost", name),
		IOTh:    h.CPU.NewThread(name+":iothread", name),
		Cache:   storage.NewPageCache(name+":guestcache", c.Params.GuestCacheBytes, c.Params.CacheChunkBytes),
		FS:      fsim.New(name + ":image"),
	}
	// Everything the VM schedules — devices, kernel, vhost — lives on its
	// host's Env: the cluster Env in the single-env regime, the host's own
	// LP when sharded.
	vm.NetDev = virtio.NewNetDev(h.Env, c.Params.Virtio, name, h.Name, vm.VCPU, vm.Vhost, h.NIC, c.Fabric)
	vm.BlkDev = virtio.NewBlkDev(h.Env, c.Params.Virtio, name, vm.VCPU, vm.IOTh, h.Disk)
	vm.Kernel = guest.NewKernel(h.Env, c.Params.Guest, guest.KernelParams{
		Name:    name,
		AppTag:  appTag,
		VCPU:    vm.VCPU,
		NetDev:  vm.NetDev,
		BlkDev:  vm.BlkDev,
		Cache:   vm.Cache,
		FS:      vm.FS,
		Network: c.Network,
	})
	vm.NetDev.Start()
	vm.BlkDev.Start()
	h.VMs = append(h.VMs, vm)
	c.vms[name] = vm
	return vm
}

// HostCacheObject namespaces a VM-image inode into the host page cache's
// object space (what the host caches when the daemon reads the image).
func (vm *VM) HostCacheObject(ino fsim.Ino) int64 {
	return vm.ImageID<<32 | int64(ino)
}

// MigrateVM live-migrates a VM to another host (§6 of the paper): new
// vCPU/vhost/iothread threads on the destination CPU, fresh virtio devices,
// and a fabric re-registration. The disk image travels logically (the
// paper's centralized NFS/iSCSI storage); the guest page cache moves with
// the VM's memory. The VM must be quiesced (no in-flight I/O). Single-env
// only: a cross-LP migration would move the kernel's Env mid-epoch, which
// the lookahead contract forbids.
func (c *Cluster) MigrateVM(vmName string, dst *Host) {
	if c.sharded {
		panic(fmt.Sprintf("cluster: MigrateVM(%q) on a sharded cluster; live migration is single-env only", vmName))
	}
	vm := c.vms[vmName]
	if vm == nil {
		panic(fmt.Sprintf("cluster: unknown VM %q", vmName))
	}
	if vm.Host == dst {
		return
	}
	src := vm.Host
	vm.NetDev.Stop()
	vm.BlkDev.Stop()
	c.Fabric.UnregisterVM(vmName)

	vm.Host = dst
	vm.VCPU = dst.CPU.NewThread(vmName+":vcpu", vmName)
	vm.Vhost = dst.CPU.NewThread(vmName+":vhost", vmName)
	vm.IOTh = dst.CPU.NewThread(vmName+":iothread", vmName)
	vm.NetDev = virtio.NewNetDev(dst.Env, c.Params.Virtio, vmName, dst.Name, vm.VCPU, vm.Vhost, dst.NIC, c.Fabric)
	vm.BlkDev = virtio.NewBlkDev(dst.Env, c.Params.Virtio, vmName, vm.VCPU, vm.IOTh, dst.Disk)
	vm.Kernel.Migrate(vm.VCPU, vm.NetDev, vm.BlkDev)
	vm.NetDev.Start()
	vm.BlkDev.Start()

	for i, v := range src.VMs {
		if v == vm {
			src.VMs = append(src.VMs[:i], src.VMs[i+1:]...)
			break
		}
	}
	dst.VMs = append(dst.VMs, vm)
}

// Go starts a simulated process (convenience passthrough). Single-env only;
// sharded clusters start processes on a specific host via Host.Go.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	return c.Env.Go(name, fn)
}

// Go starts a simulated process on this host's Env.
func (h *Host) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	return h.Env.Go(name, fn)
}

// RunUntil advances a sharded cluster through every event with timestamp
// <= t, leaving all host clocks at exactly t.
func (c *Cluster) RunUntil(t time.Duration) error {
	if !c.sharded {
		return c.Env.RunUntil(t)
	}
	return c.Coord.RunUntil(t)
}

// Close shuts the cluster's devices and aborts residual processes.
func (c *Cluster) Close() {
	for _, vm := range c.vms {
		vm.NetDev.Stop()
		vm.BlkDev.Stop()
	}
	if c.sharded {
		for _, h := range c.hostOrder {
			h.Env.Close()
		}
		return
	}
	c.Env.Close()
}
