// Package cluster assembles the simulated testbed: hosts (CPU, disk, host
// page cache, NIC) and VMs (vCPU + vhost threads, virtio devices, guest page
// cache, disk-image file system, guest kernel), wired to the shared LAN
// fabric — the machinery of the paper's Figure 10 setups.
package cluster

import (
	"fmt"

	"vread/internal/cpusched"
	"vread/internal/fsim"
	"vread/internal/guest"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/storage"
	"vread/internal/virtio"
)

// Params collects every subsystem's configuration. Zero values reproduce the
// paper's testbed: quad-core hosts, 16 GB RAM, SSD, 10 Gbps RoCE LAN, 2 GB
// VMs, KVM with vhost-net on and vhost-blk off.
type Params struct {
	// Cores per host. Default 4.
	Cores int
	// FreqHz is the host clock. Default 2.0 GHz (the paper sweeps
	// 1.6/2.0/3.2 via cpufreq-set).
	FreqHz int64
	// HostCacheBytes is the host page cache serving loop-mounted image
	// reads. Default 12 GiB (16 GB host minus VMs and host overhead is
	// generous; the daemon competes with nothing else for it).
	HostCacheBytes int64
	// GuestCacheBytes is each VM's page cache. Default 1.5 GiB (2 GB VM).
	GuestCacheBytes int64
	// CacheChunkBytes is simulation cache granularity. Default 64 KiB.
	CacheChunkBytes int64

	Sched  cpusched.Config
	Net    netsim.Config
	Virtio virtio.Config
	Guest  guest.Config
	Disk   storage.DiskConfig
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Cores == 0 {
		p.Cores = 4
	}
	if p.FreqHz == 0 {
		p.FreqHz = 2_000_000_000
	}
	if p.HostCacheBytes == 0 {
		p.HostCacheBytes = 12 << 30
	}
	if p.GuestCacheBytes == 0 {
		p.GuestCacheBytes = 3 << 29 // 1.5 GiB
	}
	if p.CacheChunkBytes == 0 {
		p.CacheChunkBytes = 64 << 10
	}
	return p
}

// Cluster is the whole simulated testbed.
type Cluster struct {
	Env     *sim.Env
	Reg     *metrics.Registry
	Fabric  *netsim.Fabric
	Network *guest.Network
	Params  Params

	hosts  map[string]*Host
	vms    map[string]*VM
	nextID int64
}

// Host is one physical machine.
type Host struct {
	Name    string
	Cluster *Cluster
	CPU     *cpusched.CPU
	Disk    *storage.Disk
	Cache   *storage.PageCache // host page cache (loop-mount reads)
	NIC     *netsim.NIC
	Softirq *cpusched.Thread
	VMs     []*VM
}

// VM is one virtual machine.
type VM struct {
	Name    string
	Host    *Host
	ImageID int64 // namespaces this VM's inodes in the host page cache
	VCPU    *cpusched.Thread
	Vhost   *cpusched.Thread
	IOTh    *cpusched.Thread
	NetDev  *virtio.NetDev
	BlkDev  *virtio.BlkDev
	Cache   *storage.PageCache // guest page cache
	FS      *fsim.FS           // file system inside the disk image
	Kernel  *guest.Kernel
}

// New creates an empty cluster.
func New(seed int64, params Params) *Cluster {
	params = params.WithDefaults()
	env := sim.NewEnv(seed)
	reg := metrics.NewRegistry()
	return &Cluster{
		Env:     env,
		Reg:     reg,
		Fabric:  netsim.NewFabric(env, params.Net),
		Network: guest.NewNetwork(env),
		Params:  params,
	}
}

// AddHost creates a host with its CPU, SSD, page cache and NIC.
func (c *Cluster) AddHost(name string) *Host {
	if c.hosts == nil {
		c.hosts = make(map[string]*Host)
	}
	if _, ok := c.hosts[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate host %q", name))
	}
	cpu := cpusched.New(c.Env, c.Reg, c.Params.Cores, c.Params.FreqHz, c.Params.Sched)
	h := &Host{
		Name:    name,
		Cluster: c,
		CPU:     cpu,
		Disk:    storage.NewDisk(c.Env, name+":ssd", c.Params.Disk),
		Cache:   storage.NewPageCache(name+":pagecache", c.Params.HostCacheBytes, c.Params.CacheChunkBytes),
		Softirq: cpu.NewThread(name+":softirq", name),
	}
	h.NIC = c.Fabric.AddHost(name, h.Softirq)
	c.hosts[name] = h
	return h
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// VM returns a VM by name, or nil.
func (c *Cluster) VM(name string) *VM { return c.vms[name] }

// VMs returns the registry of all VMs.
func (c *Cluster) AllVMs() map[string]*VM { return c.vms }

// AddVM creates a 1-vCPU / 2 GB VM on the host. appTag is the metrics tag
// for application-attributed cycles (metrics.TagClientApp or
// metrics.TagDatanodeApp).
func (h *Host) AddVM(name, appTag string) *VM {
	c := h.Cluster
	if c.vms == nil {
		c.vms = make(map[string]*VM)
	}
	if _, ok := c.vms[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate VM %q", name))
	}
	c.nextID++
	vm := &VM{
		Name:    name,
		Host:    h,
		ImageID: c.nextID,
		VCPU:    h.CPU.NewThread(name+":vcpu", name),
		Vhost:   h.CPU.NewThread(name+":vhost", name),
		IOTh:    h.CPU.NewThread(name+":iothread", name),
		Cache:   storage.NewPageCache(name+":guestcache", c.Params.GuestCacheBytes, c.Params.CacheChunkBytes),
		FS:      fsim.New(name + ":image"),
	}
	vm.NetDev = virtio.NewNetDev(c.Env, c.Params.Virtio, name, h.Name, vm.VCPU, vm.Vhost, h.NIC, c.Fabric)
	vm.BlkDev = virtio.NewBlkDev(c.Env, c.Params.Virtio, name, vm.VCPU, vm.IOTh, h.Disk)
	vm.Kernel = guest.NewKernel(c.Env, c.Params.Guest, guest.KernelParams{
		Name:    name,
		AppTag:  appTag,
		VCPU:    vm.VCPU,
		NetDev:  vm.NetDev,
		BlkDev:  vm.BlkDev,
		Cache:   vm.Cache,
		FS:      vm.FS,
		Network: c.Network,
	})
	vm.NetDev.Start()
	vm.BlkDev.Start()
	h.VMs = append(h.VMs, vm)
	c.vms[name] = vm
	return vm
}

// HostCacheObject namespaces a VM-image inode into the host page cache's
// object space (what the host caches when the daemon reads the image).
func (vm *VM) HostCacheObject(ino fsim.Ino) int64 {
	return vm.ImageID<<32 | int64(ino)
}

// MigrateVM live-migrates a VM to another host (§6 of the paper): new
// vCPU/vhost/iothread threads on the destination CPU, fresh virtio devices,
// and a fabric re-registration. The disk image travels logically (the
// paper's centralized NFS/iSCSI storage); the guest page cache moves with
// the VM's memory. The VM must be quiesced (no in-flight I/O).
func (c *Cluster) MigrateVM(vmName string, dst *Host) {
	vm := c.vms[vmName]
	if vm == nil {
		panic(fmt.Sprintf("cluster: unknown VM %q", vmName))
	}
	if vm.Host == dst {
		return
	}
	src := vm.Host
	vm.NetDev.Stop()
	vm.BlkDev.Stop()
	c.Fabric.UnregisterVM(vmName)

	vm.Host = dst
	vm.VCPU = dst.CPU.NewThread(vmName+":vcpu", vmName)
	vm.Vhost = dst.CPU.NewThread(vmName+":vhost", vmName)
	vm.IOTh = dst.CPU.NewThread(vmName+":iothread", vmName)
	vm.NetDev = virtio.NewNetDev(c.Env, c.Params.Virtio, vmName, dst.Name, vm.VCPU, vm.Vhost, dst.NIC, c.Fabric)
	vm.BlkDev = virtio.NewBlkDev(c.Env, c.Params.Virtio, vmName, vm.VCPU, vm.IOTh, dst.Disk)
	vm.Kernel.Migrate(vm.VCPU, vm.NetDev, vm.BlkDev)
	vm.NetDev.Start()
	vm.BlkDev.Start()

	for i, v := range src.VMs {
		if v == vm {
			src.VMs = append(src.VMs[:i], src.VMs[i+1:]...)
			break
		}
	}
	dst.VMs = append(dst.VMs, vm)
}

// Go starts a simulated process (convenience passthrough).
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	return c.Env.Go(name, fn)
}

// Close shuts the cluster's devices and aborts residual processes.
func (c *Cluster) Close() {
	for _, vm := range c.vms {
		vm.NetDev.Stop()
		vm.BlkDev.Stop()
	}
	c.Env.Close()
}
