package cluster_test

import (
	"testing"
	"time"

	"fmt"
	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/hdfs"

	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
)

func TestBuildTopology(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	vm1 := h1.AddVM("a", metrics.TagClientApp)
	h2.AddVM("b", metrics.TagDatanodeApp)

	if c.Host("host1") != h1 || c.Host("nope") != nil {
		t.Fatal("host lookup broken")
	}
	if c.VM("a") != vm1 || c.VM("nope") != nil {
		t.Fatal("vm lookup broken")
	}
	if got, _ := c.Fabric.HostOf("a"); got != "host1" {
		t.Fatalf("fabric placement = %q", got)
	}
	if len(h1.VMs) != 1 || len(h2.VMs) != 1 {
		t.Fatal("host VM lists wrong")
	}
	// Host-cache object namespacing: distinct VMs never collide.
	if vm1.HostCacheObject(5) == c.VM("b").HostCacheObject(5) {
		t.Fatal("host cache objects collide across VMs")
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h := c.AddHost("h")
	h.AddVM("x", metrics.TagClientApp)
	for _, fn := range []func(){
		func() { c.AddHost("h") },
		func() { h.AddVM("x", metrics.TagClientApp) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on duplicate name")
				}
			}()
			fn()
		}()
	}
}

// TestMigrateVM moves a datanode VM between hosts and checks reads keep
// working through both the vanilla and vRead paths (§6's compatibility).
func TestMigrateVM(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dnVM := h1.AddVM("dn1", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 4 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dnVM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)
	mgr := core.NewManager(c, nn, core.Config{})
	mgr.MountDatanode("dn1")
	cl.SetBlockReader(mgr.EnableClient("client"))

	content := data.Pattern{Seed: 61, Size: 2 << 20}
	phase := 0
	c.Go("driver", func(p *sim.Proc) {
		if err := cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
			return
		}
		phase = 1
	})
	if err := c.Env.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if phase != 1 {
		t.Fatal("write did not finish")
	}

	// Migrate the datanode VM to host2 (quiesced) and update vRead.
	c.MigrateVM("dn1", h2)
	mgr.DatanodeMigrated("dn1", "host1")
	if got, _ := c.Fabric.HostOf("dn1"); got != "host2" {
		t.Fatalf("fabric says dn1 on %q after migration", got)
	}
	if dnVM.Host != h2 || len(h1.VMs) != 1 || len(h2.VMs) != 1 {
		t.Fatal("cluster bookkeeping wrong after migration")
	}

	// The read is now remote and must go daemon-to-daemon over RDMA.
	c.Go("reader", func(p *sim.Proc) {
		r, err := cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("post-migration read corrupted")
		}
		phase = 2
	})
	if err := c.Env.RunUntil(c.Env.Now() + 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if phase != 2 {
		t.Fatal("post-migration read did not finish")
	}
	if st := mgr.Daemon("client").Stats(); st.BytesRemote != content.Size {
		t.Fatalf("remote bytes after migration = %d, want %d", st.BytesRemote, content.Size)
	}
}

// TestShardedClusterTopology checks the sharded regime's construction
// invariants: per-host Envs and registries, LP registration, rack-contiguous
// shard assignment, and the VM-stack guard.
func TestShardedClusterTopology(t *testing.T) {
	c := cluster.NewSharded(7, cluster.Params{}, 3)
	defer c.Close()
	hosts := c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 6, HostsPerRack: 2})
	if !c.Sharded() {
		t.Fatal("NewSharded cluster does not report sharded")
	}
	if c.Env != nil || c.Reg != nil {
		t.Fatal("sharded cluster must not expose a global Env/Registry")
	}
	seen := map[*sim.Env]bool{}
	for _, h := range hosts {
		if h.Env == nil || h.Reg == nil || h.LP == nil {
			t.Fatalf("host %s missing per-host Env/Reg/LP", h.Name)
		}
		if seen[h.Env] {
			t.Fatalf("host %s shares an Env with another host", h.Name)
		}
		seen[h.Env] = true
		if h.CPU.Env() != h.Env {
			t.Fatalf("host %s CPU runs on a foreign Env", h.Name)
		}
	}
	c.AssignRackShards()
	// 6 racks over 3 shards: racks [0,1]->0, [2,3]->1, [4,5]->2 — whole
	// racks only, contiguous blocks.
	for ri, rack := range c.Racks() {
		want := ri / 2
		for _, h := range c.RackHosts(rack) {
			if got := h.LP.Shard(); got != want {
				t.Fatalf("rack %s host %s pinned to shard %d, want %d", rack, h.Name, got, want)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddVM on a sharded cluster did not panic")
		}
	}()
	hosts[0].AddVM("vm", metrics.TagClientApp)
}

// TestShardedClusterCrossHostFrames runs a tiny sharded scenario end to end:
// a daemon on each host echoes frames, a client host fires requests at every
// other host, and the completion log must be byte-identical for K=1 and
// K=4.
func TestShardedClusterCrossHostFrames(t *testing.T) {
	run := func(k int) string {
		c := cluster.NewSharded(42, cluster.Params{}, k)
		defer c.Close()
		hosts := c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 2, HostsPerRack: 2})
		c.AssignRackShards()
		for _, h := range hosts {
			h := h
			c.Fabric.BindHostPort(h.Name, 7000, func(fr netsim.Frame) {
				// Echo half the payload back to the requester.
				h.NIC.SendToHost(fr.SrcHost, 7001, netsim.Frame{Payload: fr.Payload.Sub(0, fr.Payload.Len()/2)}, nil)
			})
		}
		log := ""
		client := hosts[0]
		c.Fabric.BindHostPort(client.Name, 7001, func(fr netsim.Frame) {
			log += fmt.Sprintf("%s echoed %dB @%v\n", fr.SrcHost, fr.Payload.Len(), client.Env.Now())
		})
		client.Env.Schedule(time.Microsecond, func() {
			for _, h := range hosts[1:] {
				client.NIC.SendToHost(h.Name, 7000, netsim.Frame{Payload: data.NewSlice(data.Zero(8192))}, nil)
			}
		})
		if err := c.RunUntil(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return log
	}
	serial := run(1)
	if serial == "" {
		t.Fatal("no echoes completed")
	}
	if got := run(4); got != serial {
		t.Fatalf("K=4 diverges from K=1:\n--- K=1 ---\n%s--- K=4 ---\n%s", serial, got)
	}
}
