package cluster_test

import (
	"strings"
	"testing"
	"time"

	"fmt"
	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"

	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
)

func TestBuildTopology(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	vm1 := h1.AddVM("a", metrics.TagClientApp)
	h2.AddVM("b", metrics.TagDatanodeApp)

	if c.Host("host1") != h1 || c.Host("nope") != nil {
		t.Fatal("host lookup broken")
	}
	if c.VM("a") != vm1 || c.VM("nope") != nil {
		t.Fatal("vm lookup broken")
	}
	if got, _ := c.Fabric.HostOf("a"); got != "host1" {
		t.Fatalf("fabric placement = %q", got)
	}
	if len(h1.VMs) != 1 || len(h2.VMs) != 1 {
		t.Fatal("host VM lists wrong")
	}
	// Host-cache object namespacing: distinct VMs never collide.
	if vm1.HostCacheObject(5) == c.VM("b").HostCacheObject(5) {
		t.Fatal("host cache objects collide across VMs")
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h := c.AddHost("h")
	h.AddVM("x", metrics.TagClientApp)
	for _, fn := range []func(){
		func() { c.AddHost("h") },
		func() { h.AddVM("x", metrics.TagClientApp) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on duplicate name")
				}
			}()
			fn()
		}()
	}
}

// TestMigrateVM moves a datanode VM between hosts and checks reads keep
// working through both the vanilla and vRead paths (§6's compatibility).
func TestMigrateVM(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dnVM := h1.AddVM("dn1", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hdfs.Config{BlockSize: 4 << 20}, c.Fabric)
	hdfs.StartDataNode(c.Env, nn, dnVM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)
	mgr := core.NewManager(c, nn, core.Config{})
	mgr.MountDatanode("dn1")
	cl.SetBlockReader(mgr.EnableClient("client"))

	content := data.Pattern{Seed: 61, Size: 2 << 20}
	phase := 0
	c.Go("driver", func(p *sim.Proc) {
		if err := cl.WriteFile(p, "/f", content); err != nil {
			t.Error(err)
			return
		}
		phase = 1
	})
	if err := c.Env.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if phase != 1 {
		t.Fatal("write did not finish")
	}

	// Migrate the datanode VM to host2 (quiesced) and update vRead.
	c.MigrateVM("dn1", h2)
	mgr.DatanodeMigrated("dn1", "host1")
	if got, _ := c.Fabric.HostOf("dn1"); got != "host2" {
		t.Fatalf("fabric says dn1 on %q after migration", got)
	}
	if dnVM.Host != h2 || len(h1.VMs) != 1 || len(h2.VMs) != 1 {
		t.Fatal("cluster bookkeeping wrong after migration")
	}

	// The read is now remote and must go daemon-to-daemon over RDMA.
	c.Go("reader", func(p *sim.Proc) {
		r, err := cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("post-migration read corrupted")
		}
		phase = 2
	})
	if err := c.Env.RunUntil(c.Env.Now() + 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if phase != 2 {
		t.Fatal("post-migration read did not finish")
	}
	if st := mgr.Daemon("client").Stats(); st.BytesRemote != content.Size {
		t.Fatalf("remote bytes after migration = %d, want %d", st.BytesRemote, content.Size)
	}
}

// TestShardedClusterTopology checks the sharded regime's construction
// invariants: per-host Envs and registries, LP registration, rack-contiguous
// shard assignment, VM placement on the host's own Env, and the migration
// guard.
func TestShardedClusterTopology(t *testing.T) {
	c := cluster.NewSharded(7, cluster.Params{}, 3)
	defer c.Close()
	hosts := c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 6, HostsPerRack: 2})
	if !c.Sharded() {
		t.Fatal("NewSharded cluster does not report sharded")
	}
	if c.Env != nil || c.Reg != nil {
		t.Fatal("sharded cluster must not expose a global Env/Registry")
	}
	seen := map[*sim.Env]bool{}
	for _, h := range hosts {
		if h.Env == nil || h.Reg == nil || h.LP == nil {
			t.Fatalf("host %s missing per-host Env/Reg/LP", h.Name)
		}
		if seen[h.Env] {
			t.Fatalf("host %s shares an Env with another host", h.Name)
		}
		seen[h.Env] = true
		if h.CPU.Env() != h.Env {
			t.Fatalf("host %s CPU runs on a foreign Env", h.Name)
		}
	}
	c.AssignRackShards()
	// 6 racks over 3 shards: racks [0,1]->0, [2,3]->1, [4,5]->2 — whole
	// racks only, contiguous blocks.
	for ri, rack := range c.Racks() {
		want := ri / 2
		for _, h := range c.RackHosts(rack) {
			if got := h.LP.Shard(); got != want {
				t.Fatalf("rack %s host %s pinned to shard %d, want %d", rack, h.Name, got, want)
			}
		}
	}

	// The VM stack rides the shards: everything a VM schedules must land on
	// its host's Env, not some global one.
	vm := hosts[0].AddVM("vm", metrics.TagClientApp)
	if vm.Kernel.Env() != hosts[0].Env {
		t.Fatal("sharded VM kernel does not run on its host's Env")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("MigrateVM on a sharded cluster did not panic")
		}
	}()
	c.MigrateVM("vm", hosts[1])
}

// TestShardedClusterCrossHostFrames runs a tiny sharded scenario end to end:
// a daemon on each host echoes frames, a client host fires requests at every
// other host, and the completion log must be byte-identical for K=1 and
// K=4.
func TestShardedClusterCrossHostFrames(t *testing.T) {
	run := func(k int) string {
		c := cluster.NewSharded(42, cluster.Params{}, k)
		defer c.Close()
		hosts := c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 2, HostsPerRack: 2})
		c.AssignRackShards()
		for _, h := range hosts {
			h := h
			c.Fabric.BindHostPort(h.Name, 7000, func(fr netsim.Frame) {
				// Echo half the payload back to the requester.
				h.NIC.SendToHost(fr.SrcHost, 7001, netsim.Frame{Payload: fr.Payload.Sub(0, fr.Payload.Len()/2)}, nil)
			})
		}
		log := ""
		client := hosts[0]
		c.Fabric.BindHostPort(client.Name, 7001, func(fr netsim.Frame) {
			log += fmt.Sprintf("%s echoed %dB @%v\n", fr.SrcHost, fr.Payload.Len(), client.Env.Now())
		})
		client.Env.Schedule(time.Microsecond, func() {
			for _, h := range hosts[1:] {
				client.NIC.SendToHost(h.Name, 7000, netsim.Frame{Payload: data.NewSlice(data.Zero(8192))}, nil)
			}
		})
		if err := c.RunUntil(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return log
	}
	serial := run(1)
	if serial == "" {
		t.Fatal("no echoes completed")
	}
	if got := run(4); got != serial {
		t.Fatalf("K=4 diverges from K=1:\n--- K=1 ---\n%s--- K=4 ---\n%s", serial, got)
	}
}

// TestShardedGuestVMByteIdentity runs a full guest-VM workload on sharded
// clusters and checks the client completion log is byte-identical at every
// shard count, quiet and under a fault plan. The workload is shaped so the
// cross-LP paths the lpowner analyzer guards actually fire: client kernels
// dial servers on other hosts (guest frames ride the fabric interconnect,
// i.e. LP.Send), each stream pushes twice the 1 MiB send window so window
// credit has to travel back through Network.SetCrossEnv (LP.Send again),
// one dial stays co-located (the vhost fast path), and the servers re-read
// their blob through virtio-blk so disk faults perturb timing.
func TestShardedGuestVMByteIdentity(t *testing.T) {
	const port = 9000
	run := func(k int, withFaults bool) string {
		c := cluster.NewSharded(11, cluster.Params{}, k)
		defer c.Close()
		hosts := c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 2, HostsPerRack: 2})
		c.AssignRackShards()
		if withFaults {
			for _, h := range hosts {
				plan := faults.NewPlan(h.Env)
				plan.Set(faults.Rule{Point: faults.DiskReadSlow, Prob: 0.3, Delay: 200 * time.Microsecond})
				plan.Set(faults.Rule{Point: faults.NetFrameDelay, Prob: 0.2, Delay: 50 * time.Microsecond})
				h.Disk.InjectFaults(plan)
				c.Fabric.InjectHostFaults(h.Name, plan)
			}
		}
		// One server VM per host. The client lives on host 0, so its dial
		// to srv0 is co-located and the other three cross LPs.
		servers := make([]*cluster.VM, len(hosts))
		for i, h := range hosts {
			servers[i] = h.AddVM(fmt.Sprintf("srv%d", i), metrics.TagDatanodeApp)
		}
		for i, vm := range servers {
			i, vm := i, vm
			if err := vm.FS.MkdirAll("/srv"); err != nil {
				t.Fatal(err)
			}
			vm.Host.Go(fmt.Sprintf("srv%d:serve", i), func(p *sim.Proc) {
				k := vm.Kernel
				// Bind the port before the (slow) blob write so dials at t=0 are
				// not refused; accepted streams only start draining once the
				// accept loop below runs, i.e. after the blob is on disk.
				ln := k.Listen(port)
				if err := k.CreateFile(p, "/srv/blob"); err != nil {
					t.Error(err)
					return
				}
				if err := k.AppendFile(p, "/srv/blob", data.Pattern{Seed: uint64(i), Size: 2 << 20}); err != nil {
					t.Error(err)
					return
				}
				k.DropCaches() // make the per-chunk reads below hit virtio-blk
				for {
					conn, ok := ln.Accept(p)
					if !ok {
						return
					}
					vm.Host.Go(fmt.Sprintf("srv%d:conn", i), func(p *sim.Proc) {
						var total int64
						for {
							s, ok := conn.Recv(p, 256<<10)
							if !ok {
								return
							}
							total += s.Len()
							if _, err := k.ReadFileAt(p, "/srv/blob", total%(1<<20), 64<<10); err != nil {
								t.Error(err)
								return
							}
						}
					})
				}
			})
		}
		client := hosts[0].AddVM("client", metrics.TagClientApp)
		var log strings.Builder
		done := 0
		for i := range servers {
			i := i
			hosts[0].Go(fmt.Sprintf("client:%d", i), func(p *sim.Proc) {
				conn, err := client.Kernel.Dial(p, fmt.Sprintf("srv%d", i), port)
				if err != nil {
					t.Error(err)
					return
				}
				// 2 MiB through a 1 MiB send window: the sender stalls
				// mid-stream until the receiver's credit makes it back.
				for j := 0; j < 8; j++ {
					if err := conn.Send(p, data.NewSlice(data.Zero(256<<10))); err != nil {
						t.Error(err)
						return
					}
				}
				conn.Close(p)
				fmt.Fprintf(&log, "srv%d drained @%v\n", i, hosts[0].Env.Now())
				done++
			})
		}
		if err := c.RunUntil(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		if done != len(servers) {
			t.Fatalf("shards=%d faults=%v: only %d/%d streams finished", k, withFaults, done, len(servers))
		}
		return log.String()
	}
	for _, withFaults := range []bool{false, true} {
		serial := run(1, withFaults)
		for _, k := range []int{2, 4} {
			if got := run(k, withFaults); got != serial {
				t.Fatalf("faults=%v: K=%d diverges from K=1:\n--- K=1 ---\n%s--- K=%d ---\n%s", withFaults, k, serial, k, got)
			}
		}
	}
}
