package cluster_test

import (
	"fmt"
	"testing"

	"vread/internal/cluster"
	"vread/internal/faults"
)

// TestTopologyShape checks BuildTopology's deterministic naming, dense host
// IDs, and rack/domain bookkeeping.
func TestTopologyShape(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	spec := cluster.TopologySpec{Domains: 2, RacksPerDomain: 3, HostsPerRack: 4}
	hosts := c.BuildTopology(spec)
	if len(hosts) != spec.Hosts() || spec.Hosts() != 24 {
		t.Fatalf("built %d hosts, want 24", len(hosts))
	}
	for i, h := range hosts {
		if h.ID != i {
			t.Fatalf("host %s has ID %d, want dense %d", h.Name, h.ID, i)
		}
	}
	if hosts[0].Name != "d0r0h0" || hosts[23].Name != "d1r2h3" {
		t.Fatalf("naming wrong: %s … %s", hosts[0].Name, hosts[23].Name)
	}
	racks := c.Racks()
	if len(racks) != 6 || racks[0] != "d0r0" || racks[5] != "d1r2" {
		t.Fatalf("racks = %v", racks)
	}
	if got := c.RackHosts("d1r0"); len(got) != 4 || got[0].Domain != "d1" {
		t.Fatalf("RackHosts(d1r0) = %v", got)
	}
	if r, _ := c.Fabric.RackOf("d1r2h3"); r != "d1r2" {
		t.Fatalf("fabric rack of d1r2h3 = %q", r)
	}
	if d, _ := c.Fabric.DomainOf("d1r2h3"); d != "d1" {
		t.Fatalf("fabric domain of d1r2h3 = %q", d)
	}
	if len(c.Hosts()) != 24 {
		t.Fatalf("Hosts() returned %d", len(c.Hosts()))
	}
}

// TestTopologyScales builds a 1000-host fabric — the host-ID allocation and
// rack bookkeeping must stay O(1) per host (this test is fast or broken).
func TestTopologyScales(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	hosts := c.BuildTopology(cluster.TopologySpec{Domains: 4, RacksPerDomain: 10, HostsPerRack: 25})
	if len(hosts) != 1000 {
		t.Fatalf("built %d hosts", len(hosts))
	}
	if hosts[999].ID != 999 || hosts[999].Name != "d3r9h24" {
		t.Fatalf("last host = %s id %d", hosts[999].Name, hosts[999].ID)
	}
}

// TestKillRack takes a rack down and back up, checking host and fabric state.
func TestKillRack(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	c.BuildTopology(cluster.TopologySpec{Domains: 2, RacksPerDomain: 2, HostsPerRack: 2})
	c.KillRack("d0r1")
	for _, h := range c.RackHosts("d0r1") {
		if !h.Down() || !c.Fabric.HostDown(h.Name) {
			t.Fatalf("%s not down after KillRack", h.Name)
		}
	}
	for _, h := range c.RackHosts("d0r0") {
		if h.Down() || c.Fabric.HostDown(h.Name) {
			t.Fatalf("%s down although its rack was not killed", h.Name)
		}
	}
	c.ReviveRack("d0r1")
	for _, h := range c.RackHosts("d0r1") {
		if h.Down() || c.Fabric.HostDown(h.Name) {
			t.Fatalf("%s still down after ReviveRack", h.Name)
		}
	}
}

// TestMaybeKillRack arms the rack.kill faultpoint and checks the kill fires
// exactly where the spec pins it.
func TestMaybeKillRack(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	c.BuildTopology(cluster.TopologySpec{Domains: 1, RacksPerDomain: 2, HostsPerRack: 1})
	plan := faults.NewPlan(c.Env)
	c.InjectFaults(plan)

	// Unarmed: never fires.
	if c.MaybeKillRack("d0r0") {
		t.Fatal("rack.kill fired with no rule armed")
	}
	spec, err := faults.ParseSpec("rack.kill:after=2,max=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range spec {
		plan.Set(r)
	}
	var fired []int
	for i := 0; i < 6; i++ {
		if c.MaybeKillRack("d0r0") {
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[2]" {
		t.Fatalf("rack.kill fired at %v, want exactly [2]", fired)
	}
	if !c.Host("d0r0h0").Down() || c.Host("d0r1h0").Down() {
		t.Fatal("kill hit the wrong rack")
	}
}

// TestDuplicateHostIDsImpossible: the collision check rejects a reused host
// name before any ID is burned.
func TestDuplicateHostIDsImpossible(t *testing.T) {
	c := cluster.New(1, cluster.Params{})
	defer c.Close()
	c.AddHostAt("h0", "r0", "d0")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate host name")
			}
		}()
		c.AddHostAt("h0", "r1", "d1")
	}()
	h := c.AddHostAt("h1", "r0", "d0")
	if h.ID != 1 {
		t.Fatalf("ID after rejected duplicate = %d, want 1", h.ID)
	}
}
