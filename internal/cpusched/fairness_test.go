package cpusched

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"vread/internal/metrics"
	"vread/internal/sim"
)

// Property: N always-runnable threads with equal demand receive CPU within
// a fair-share tolerance of each other over a long window, for any N and
// core count — the CFS guarantee everything else is built on.
func TestFairShareProperty(t *testing.T) {
	f := func(nSeed, coreSeed uint8) bool {
		n := 2 + int(nSeed%6)        // 2..7 threads
		cores := 1 + int(coreSeed%4) // 1..4 cores
		env := sim.NewEnv(int64(nSeed)*31 + int64(coreSeed))
		reg := metrics.NewRegistry()
		cpu := New(env, reg, cores, ghz, Config{})
		for i := 0; i < n; i++ {
			th := cpu.NewThread(fmt.Sprintf("t%d", i), fmt.Sprintf("e%d", i))
			env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				for env.Now() < 2*time.Second {
					th.Run(p, 2_000_000, "w") // 2ms chunks, never idle
				}
			})
		}
		if err := env.RunUntil(2 * time.Second); err != nil {
			return false
		}
		env.Close()
		var min, max int64
		for i := 0; i < n; i++ {
			c := reg.EntityCycles(fmt.Sprintf("e%d", i))
			if i == 0 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min <= 0 {
			return false // starvation
		}
		// Oversubscribed: shares within 30% of each other. Undersubscribed:
		// everyone runs essentially unimpeded.
		if n > cores {
			return float64(max-min)/float64(max) < 0.30
		}
		return float64(max-min)/float64(max) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: work conservation — with more runnable demand than cores, total
// consumed cycles over a window is at least 95% of the machine's capacity.
func TestWorkConservationProperty(t *testing.T) {
	f := func(coreSeed uint8) bool {
		cores := 1 + int(coreSeed%4)
		env := sim.NewEnv(int64(coreSeed) + 7)
		reg := metrics.NewRegistry()
		cpu := New(env, reg, cores, ghz, Config{})
		n := cores * 2
		for i := 0; i < n; i++ {
			th := cpu.NewThread(fmt.Sprintf("t%d", i), "all")
			env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				for env.Now() < time.Second {
					th.Run(p, 1_000_000, "w")
				}
			})
		}
		if err := env.RunUntil(time.Second); err != nil {
			return false
		}
		env.Close()
		capacity := int64(cores) * ghz // cycles in 1s
		return reg.EntityCycles("all") >= capacity*95/100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}
