// Package cpusched models a virtualized host's CPU: a small number of cores
// multiplexed among host-schedulable threads (vCPU threads, vhost-net I/O
// threads, QEMU block iothreads, the vRead daemon, host softirq work) under a
// CFS-like fair-share policy.
//
// This scheduler is where the paper's second systemic overhead lives: when
// more runnable threads exist than cores, a waking I/O thread cannot always
// run immediately, so VM↔I/O-thread synchronization pays scheduling delay
// (Figure 3, and the 2-VM vs 4-VM gaps of Figures 9, 11, 12).
//
// The model mirrors the structure of Linux CFS around the paper's 3.12
// kernel: per-core runqueues ordered by vruntime, cache-affine wakeup
// placement with an idle-sibling scan, wakeup preemption checked only
// against the target core's current thread, sleeper-fairness vruntime
// placement, timeslices of sched_latency/nr_running clamped to a minimum
// granularity, new-idle stealing, and periodic load balancing. All cycle
// consumption is charged to a metrics.Registry under the consuming thread's
// entity and the work item's tag.
//
// Threads are *work queues*, not coroutines: any number of simulated
// processes may submit cycle-work to one thread (a 1-vCPU guest multiplexes
// its application, syscall and softirq work on one host thread), and the
// thread consumes items FIFO. CPU frequency converts cycles to time, which
// is how the paper's 1.6/2.0/3.2 GHz sweep is reproduced.
package cpusched

import (
	"container/heap"
	"fmt"
	"time"

	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Config holds the scheduler's tunables. Zero values select defaults that
// approximate Linux CFS of the paper's era.
type Config struct {
	// SchedLatency is the target period in which every runnable thread on a
	// core runs once. Default 6ms.
	SchedLatency time.Duration
	// MinGranularity is the smallest timeslice. Default 750µs.
	MinGranularity time.Duration
	// WakeupGranularity gates wakeup preemption: a waking thread preempts
	// the target core's current thread only if its vruntime is at least
	// this far behind. Default 1ms.
	WakeupGranularity time.Duration
	// SleeperCredit bounds how far behind a core's min vruntime a waking
	// thread is placed (GENTLE_FAIR_SLEEPERS). Default 3ms.
	SleeperCredit time.Duration
	// CtxSwitchCycles is charged (to the incoming thread's entity, tag
	// "others") on every context switch. Default 4000; -1 disables.
	CtxSwitchCycles int64
	// WakeLatency is the fixed cost (IPI + dispatch) of placing a waking
	// thread on an idle core. Default 3µs.
	WakeLatency time.Duration
	// BalanceInterval is the periodic load-balance period. Default 4ms.
	BalanceInterval time.Duration
	// Tick caps how long a thread runs before the scheduler re-evaluates
	// preemption (the scheduler-tick granularity). Default 1ms.
	Tick time.Duration
	// CacheColdCycles is charged when a thread is placed on a core whose
	// previous occupant was a different thread (L1/L2/TLB refill). This is
	// what makes over-subscribed hosts slower even when cores are nominally
	// free — threads play musical chairs. Default 15000; -1 disables.
	CacheColdCycles int64
}

func (c Config) withDefaults() Config {
	if c.SchedLatency == 0 {
		c.SchedLatency = 6 * time.Millisecond
	}
	if c.MinGranularity == 0 {
		c.MinGranularity = 750 * time.Microsecond
	}
	if c.WakeupGranularity == 0 {
		c.WakeupGranularity = time.Millisecond
	}
	if c.SleeperCredit == 0 {
		c.SleeperCredit = 3 * time.Millisecond
	}
	if c.CtxSwitchCycles == 0 {
		c.CtxSwitchCycles = 4000
	}
	if c.WakeLatency == 0 {
		c.WakeLatency = 3 * time.Microsecond
	}
	if c.BalanceInterval == 0 {
		c.BalanceInterval = 4 * time.Millisecond
	}
	if c.Tick == 0 {
		c.Tick = time.Millisecond
	}
	if c.CacheColdCycles == 0 {
		c.CacheColdCycles = 15000
	}
	return c
}

// CPU is one host's processor: n cores at a given frequency.
type CPU struct {
	env      *sim.Env
	reg      *metrics.Registry
	cfg      Config
	freqHz   int64
	cores    []*core
	seq      uint64
	rr       int // rotation cursor for placement tie-breaking
	balArmed bool
}

type core struct {
	id         int
	cpu        *CPU
	runq       threadHeap
	cur        *Thread
	last       *Thread // previous occupant, for the cache-cold penalty
	minVR      time.Duration
	sliceTimer sim.Timer
	sliceStart time.Duration
	planned    int64 // cycles planned for the current slice; -1 = reserved
}

// ThreadState is a thread's scheduling state.
type ThreadState int

// Thread states.
const (
	StateIdle ThreadState = iota // no pending work
	StateRunnable
	StateRunning
)

// Thread is one host-schedulable execution context.
type Thread struct {
	cpu      *CPU
	name     string
	entity   string
	state    ThreadState
	vruntime time.Duration
	seq      uint64 // runqueue FIFO tiebreak
	core     *core  // core currently running on (nil unless StateRunning)
	lastCore *core  // cache-affinity hint
	work     []*workItem
	pending  int64 // total cycles across work items
	consumed int64 // lifetime cycles consumed
}

type workItem struct {
	remaining int64
	tag       string
	tr        *trace.Trace // request the cycles are performed for (may be nil)
	sched     bool         // scheduler-injected (context switch, cache refill)
	onDone    func()
}

// New creates a CPU with the given core count and frequency.
func New(env *sim.Env, reg *metrics.Registry, cores int, freqHz int64, cfg Config) *CPU {
	if cores <= 0 {
		panic("cpusched: cores must be positive")
	}
	if freqHz <= 0 {
		panic("cpusched: frequency must be positive")
	}
	c := &CPU{env: env, reg: reg, cfg: cfg.withDefaults(), freqHz: freqHz}
	for i := 0; i < cores; i++ {
		c.cores = append(c.cores, &core{id: i, cpu: c})
	}
	return c
}

// FreqHz returns the clock frequency.
func (c *CPU) FreqHz() int64 { return c.freqHz }

// Cores returns the number of cores.
func (c *CPU) Cores() int { return len(c.cores) }

// Env returns the simulation environment.
func (c *CPU) Env() *sim.Env { return c.env }

// Registry returns the metrics registry charged by this CPU.
func (c *CPU) Registry() *metrics.Registry { return c.reg }

// CyclesFor converts a duration at this CPU's frequency into cycles.
func (c *CPU) CyclesFor(d time.Duration) int64 {
	return int64(float64(d.Nanoseconds()) * float64(c.freqHz) / 1e9)
}

// DurFor converts cycles into execution time at this CPU's frequency
// (rounded up so consumption always completes the planned cycles). It is
// the canonical cycles→time crossing; everything else must route through
// it rather than casting cycles to time.Duration directly.
//
//lint:converter unitflow(integer cycles over freqHz with round-up is the one blessed cycles→time conversion)
func (c *CPU) DurFor(cycles int64) time.Duration {
	ns := (cycles*1e9 + c.freqHz - 1) / c.freqHz
	return time.Duration(ns)
}

// NewThread registers a thread. Entity names group metrics ("client",
// "datanode", "vread-daemon"...).
func (c *CPU) NewThread(name, entity string) *Thread {
	return &Thread{cpu: c, name: name, entity: entity}
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Entity returns the accounting entity.
func (t *Thread) Entity() string { return t.entity }

// State returns the scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Consumed returns lifetime cycles consumed by the thread.
func (t *Thread) Consumed() int64 { return t.consumed }

// Pending returns cycles queued but not yet consumed.
func (t *Thread) Pending() int64 { return t.pending }

// Post submits cycles of work tagged tag; onDone (may be nil) runs when the
// work completes. Post never blocks and may be called from event context.
func (t *Thread) Post(cycles int64, tag string, onDone func()) {
	t.PostT(cycles, tag, nil, onDone)
}

// PostT is Post with the cycles attributed to a request trace (nil is the
// untraced fast path, identical to Post).
func (t *Thread) PostT(cycles int64, tag string, tr *trace.Trace, onDone func()) {
	if cycles < 0 {
		panic(fmt.Sprintf("cpusched: negative work %d on %s", cycles, t.name))
	}
	if cycles == 0 {
		if onDone != nil {
			t.cpu.env.Schedule(0, onDone)
		}
		return
	}
	t.work = append(t.work, &workItem{remaining: cycles, tag: tag, tr: tr, onDone: onDone})
	t.pending += cycles
	if t.state == StateIdle {
		t.cpu.wake(t)
	}
}

// Run submits cycles of work and blocks p until the work completes. This is
// how simulated processes "execute on" a thread.
func (t *Thread) Run(p *sim.Proc, cycles int64, tag string) {
	t.RunT(p, cycles, tag, nil)
}

// RunT is Run with the cycles attributed to a request trace (nil is the
// untraced fast path, identical to Run).
func (t *Thread) RunT(p *sim.Proc, cycles int64, tag string, tr *trace.Trace) {
	if cycles <= 0 {
		return
	}
	sig := sim.NewSignal(t.cpu.env)
	done := false
	t.PostT(cycles, tag, tr, func() {
		done = true
		sig.Broadcast()
	})
	for !done {
		sig.Wait(p)
	}
}

// RunDur is Run with the cycle count derived from a duration at the CPU's
// frequency (for "this takes d on *this* CPU" calibrations).
func (t *Thread) RunDur(p *sim.Proc, d time.Duration, tag string) {
	t.Run(p, t.cpu.CyclesFor(d), tag)
}

// ---------------------------------------------------------------------------
// Scheduler internals. All methods below run in event context.

// wake makes an idle thread with pending work runnable and places it:
// last-run core if idle, else any idle core, else enqueue on the affine core
// with a local preemption check — the CFS placement dance.
func (c *CPU) wake(t *Thread) {
	c.armBalancer()
	target := t.lastCore
	if target == nil {
		target = c.leastLoaded()
	}
	if target.cur == nil {
		c.dispatch(target, t, c.cfg.WakeLatency)
		return
	}
	// Idle-sibling scan, rotated so placements spread instead of piling
	// onto the lowest-numbered core.
	n := len(c.cores)
	for i := 0; i < n; i++ {
		co := c.cores[(c.rr+i)%n]
		if co.cur == nil {
			c.rr = (c.rr + i + 1) % n
			c.dispatch(co, t, c.cfg.WakeLatency)
			return
		}
	}
	// No idle core: place on the affine core's runqueue with sleeper credit
	// relative to that core's min vruntime.
	t.state = StateRunnable
	if bound := target.minVR - c.cfg.SleeperCredit; t.vruntime < bound {
		t.vruntime = bound
	}
	target.enqueue(t)
	// Wakeup preemption, checked against this core's current thread only.
	if target.planned >= 0 && t.vruntime+c.cfg.WakeupGranularity < target.cur.vruntime {
		target.preemptCurrent()
		target.pickNext()
	}
}

func (c *CPU) leastLoaded() *core {
	n := len(c.cores)
	best := c.cores[c.rr%n]
	bestLoad := best.load()
	for i := 1; i < n; i++ {
		co := c.cores[(c.rr+i)%n]
		if l := co.load(); l < bestLoad {
			best, bestLoad = co, l
		}
	}
	c.rr = (c.rr + 1) % n
	return best
}

func (co *core) load() int {
	n := len(co.runq)
	if co.cur != nil {
		n++
	}
	return n
}

// dispatch reserves an idle core for t and starts its slice after delay.
func (c *CPU) dispatch(co *core, t *Thread, delay time.Duration) {
	co.cur = t
	co.planned = -1
	t.state = StateRunning
	t.core = co
	t.lastCore = co
	co.chargeCold(t)
	c.env.Schedule(delay, func() { co.startSlice() })
}

// chargeCold prepends the cache-refill penalty when the core's previous
// occupant differs from the incoming thread.
func (co *core) chargeCold(t *Thread) {
	c := co.cpu
	if c.cfg.CacheColdCycles > 0 && co.last != t {
		t.work = append([]*workItem{{remaining: c.cfg.CacheColdCycles, tag: metrics.TagOthers, sched: true}}, t.work...)
		t.pending += c.cfg.CacheColdCycles
	}
	co.last = t
}

func (co *core) enqueue(t *Thread) {
	t.state = StateRunnable
	t.lastCore = co
	co.cpu.seq++
	t.seq = co.cpu.seq
	heap.Push(&co.runq, t)
}

// timeslice returns the CFS slice for this core's load.
func (co *core) timeslice() time.Duration {
	n := co.load()
	if n <= 0 {
		n = 1
	}
	s := co.cpu.cfg.SchedLatency / time.Duration(n)
	if s < co.cpu.cfg.MinGranularity {
		s = co.cpu.cfg.MinGranularity
	}
	return s
}

// startSlice begins (or continues) execution of co.cur.
func (co *core) startSlice() {
	t := co.cur
	if t == nil {
		return
	}
	if t.pending == 0 {
		co.finishCurrent()
		return
	}
	c := co.cpu
	slice := co.timeslice()
	if slice > c.cfg.Tick {
		slice = c.cfg.Tick // re-evaluate preemption at tick granularity
	}
	sliceCycles := c.CyclesFor(slice)
	if sliceCycles < 1 {
		sliceCycles = 1
	}
	if t.pending < sliceCycles {
		sliceCycles = t.pending
	}
	co.planned = sliceCycles
	co.sliceStart = c.env.Now()
	co.sliceTimer = c.env.Schedule(c.DurFor(sliceCycles), co.sliceEnd)
}

// sliceEnd fires when the planned cycles have been consumed.
func (co *core) sliceEnd() {
	t := co.cur
	if t == nil {
		return
	}
	c := co.cpu
	elapsed := c.env.Now() - co.sliceStart
	c.consume(t, co.planned)
	t.vruntime += elapsed
	co.updateMinVR()
	co.sliceTimer = sim.Timer{}
	co.planned = -1
	if t.pending == 0 {
		co.finishCurrent()
		return
	}
	// Tick preemption against this core's queue.
	if next, ok := co.runq.peek(); ok && next.vruntime+c.cfg.WakeupGranularity < t.vruntime {
		co.requeueCurrent()
		co.pickNext()
		return
	}
	co.startSlice()
}

// preemptCurrent stops the current slice mid-flight, charging partial
// consumption, and requeues the thread on this core.
func (co *core) preemptCurrent() {
	t := co.cur
	if t == nil {
		return
	}
	c := co.cpu
	co.sliceTimer.Cancel()
	co.sliceTimer = sim.Timer{}
	if co.planned >= 0 {
		elapsed := c.env.Now() - co.sliceStart
		consumed := c.CyclesFor(elapsed)
		if consumed > co.planned {
			consumed = co.planned
		}
		c.consume(t, consumed)
		t.vruntime += elapsed
		co.updateMinVR()
	}
	co.planned = -1
	co.requeueCurrent()
}

func (co *core) requeueCurrent() {
	t := co.cur
	co.cur = nil
	t.core = nil
	if t.pending > 0 {
		co.enqueue(t)
	} else {
		t.state = StateIdle
	}
}

// finishCurrent idles the current thread and picks new work.
func (co *core) finishCurrent() {
	t := co.cur
	co.cur = nil
	co.planned = -1
	t.core = nil
	t.state = StateIdle
	co.pickNext()
}

// pickNext pulls the lowest-vruntime thread from this core's queue — or
// steals from the busiest other core (new-idle balancing) — onto the core.
func (co *core) pickNext() {
	if co.cur != nil {
		return
	}
	next, ok := co.runq.pop()
	if !ok {
		next = co.cpu.steal(co)
		if next == nil {
			return
		}
	}
	c := co.cpu
	co.cur = next
	co.planned = -1
	next.state = StateRunning
	next.core = co
	next.lastCore = co
	co.chargeCold(next)
	// Context-switch cost charged as leading work on the incoming thread.
	if c.cfg.CtxSwitchCycles > 0 {
		next.work = append([]*workItem{{remaining: c.cfg.CtxSwitchCycles, tag: metrics.TagOthers, sched: true}}, next.work...)
		next.pending += c.cfg.CtxSwitchCycles
	}
	c.env.Schedule(0, co.startSlice)
}

// steal takes the head of the most-loaded other core's runqueue,
// renormalizing vruntime between the queues.
func (c *CPU) steal(dst *core) *Thread {
	var src *core
	for _, co := range c.cores {
		if co == dst || len(co.runq) == 0 {
			continue
		}
		if src == nil || len(co.runq) > len(src.runq) {
			src = co
		}
	}
	if src == nil {
		return nil
	}
	t, _ := src.runq.pop()
	t.vruntime += dst.minVR - src.minVR
	if bound := dst.minVR - c.cfg.SleeperCredit; t.vruntime < bound {
		t.vruntime = bound
	}
	return t
}

// consume charges cycles through the thread's FIFO work items.
func (c *CPU) consume(t *Thread, cycles int64) {
	for cycles > 0 && len(t.work) > 0 {
		it := t.work[0]
		use := it.remaining
		if use > cycles {
			use = cycles
		}
		it.remaining -= use
		t.pending -= use
		t.consumed += use
		cycles -= use
		c.reg.AddCycles(t.entity, it.tag, use)
		it.tr.AddCycles(t.entity, it.tag, use) // nil-safe
		if it.sched {
			c.reg.AddSchedCycles(t.entity, use)
		}
		if it.remaining == 0 {
			t.work = t.work[1:]
			if it.onDone != nil {
				c.env.Schedule(0, it.onDone)
			}
		}
	}
}

// updateMinVR advances this core's monotone minimum vruntime.
func (co *core) updateMinVR() {
	min := time.Duration(1<<62 - 1)
	found := false
	if co.cur != nil {
		min = co.cur.vruntime
		found = true
	}
	if next, ok := co.runq.peek(); ok && next.vruntime < min {
		min = next.vruntime
		found = true
	}
	if found && min > co.minVR {
		co.minVR = min
	}
}

// ---------------------------------------------------------------------------
// Periodic load balancing. The balancer self-arms on wake and disarms when
// the machine is fully idle, so it never keeps the event loop alive.

func (c *CPU) armBalancer() {
	if c.balArmed {
		return
	}
	c.balArmed = true
	c.env.Schedule(c.cfg.BalanceInterval, c.balanceTick)
}

func (c *CPU) balanceTick() {
	c.balArmed = false
	busy := false
	for _, co := range c.cores {
		if co.cur != nil || len(co.runq) > 0 {
			busy = true
			break
		}
	}
	if !busy {
		return
	}
	// Move one queued thread from the most- to the least-loaded core
	// whenever the loads differ. A 3-vs-2 split oscillates under this rule,
	// which is exactly how long-run fairness emerges for thread counts that
	// don't divide the core count (the kernel's periodic load balancing).
	var maxC, minC *core
	for _, co := range c.cores {
		if maxC == nil || co.load() > maxC.load() {
			maxC = co
		}
		if minC == nil || co.load() < minC.load() {
			minC = co
		}
	}
	if maxC != minC && maxC.load() > minC.load() && len(maxC.runq) > 0 {
		t, _ := maxC.runq.pop()
		t.vruntime += minC.minVR - maxC.minVR
		if minC.cur == nil {
			c.dispatch(minC, t, c.cfg.WakeLatency)
		} else {
			minC.enqueue(t)
		}
	}
	c.armBalancer()
}

// ---------------------------------------------------------------------------
// Runqueue heap ordered by (vruntime, seq).

type threadHeap []*Thread

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	if h[i].vruntime != h[j].vruntime {
		return h[i].vruntime < h[j].vruntime
	}
	return h[i].seq < h[j].seq
}
func (h threadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x interface{}) { *h = append(*h, x.(*Thread)) }
func (h *threadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

func (h *threadHeap) peek() (*Thread, bool) {
	if len(*h) == 0 {
		return nil, false
	}
	return (*h)[0], true
}

func (h *threadHeap) pop() (*Thread, bool) {
	if len(*h) == 0 {
		return nil, false
	}
	return heap.Pop(h).(*Thread), true
}
