package cpusched

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"vread/internal/metrics"
	"vread/internal/sim"
)

const ghz = int64(1_000_000_000)

func newCPU(t *testing.T, cores int, freq int64) (*sim.Env, *metrics.Registry, *CPU) {
	t.Helper()
	env := sim.NewEnv(1)
	reg := metrics.NewRegistry()
	cpu := New(env, reg, cores, freq, Config{})
	return env, reg, cpu
}

func TestSingleThreadRunTime(t *testing.T) {
	env, reg, cpu := newCPU(t, 1, ghz)
	th := cpu.NewThread("worker", "vm")
	var done time.Duration
	env.Go("p", func(p *sim.Proc) {
		th.Run(p, 10_000_000, "work") // 10M cycles at 1GHz = 10ms
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 10ms of work plus wake latency and context switch; well under 11ms.
	if done < 10*time.Millisecond || done > 11*time.Millisecond {
		t.Fatalf("10M cycles at 1GHz finished at %v", done)
	}
	if got := reg.Cycles("vm", "work"); got != 10_000_000 {
		t.Fatalf("charged %d cycles, want 10M", got)
	}
	if th.Consumed() < 10_000_000 {
		t.Fatalf("Consumed = %d", th.Consumed())
	}
}

func TestFrequencyScalesTime(t *testing.T) {
	run := func(freq int64) time.Duration {
		env := sim.NewEnv(1)
		cpu := New(env, metrics.NewRegistry(), 1, freq, Config{})
		th := cpu.NewThread("w", "vm")
		var done time.Duration
		env.Go("p", func(p *sim.Proc) {
			th.Run(p, 32_000_000, "work")
			done = env.Now()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	slow := run(1_600_000_000) // 1.6 GHz
	fast := run(3_200_000_000) // 3.2 GHz
	ratio := float64(slow) / float64(fast)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("1.6GHz/3.2GHz time ratio = %v, want ~2", ratio)
	}
}

func TestFairShareTwoThreadsOneCore(t *testing.T) {
	env, reg, cpu := newCPU(t, 1, ghz)
	const work = 50_000_000 // 50ms each at 1GHz
	var finish [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		th := cpu.NewThread(fmt.Sprintf("w%d", i), fmt.Sprintf("vm%d", i))
		env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			th.Run(p, work, "work")
			finish[i] = env.Now()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Both need 50ms of CPU on one core: total ~100ms, and fair share means
	// both finish near the end (neither finishes at 50ms).
	for i, f := range finish {
		if f < 95*time.Millisecond || f > 110*time.Millisecond {
			t.Fatalf("thread %d finished at %v, want ~100ms (fair share)", i, f)
		}
	}
	if got := reg.Cycles("vm0", "work") + reg.Cycles("vm1", "work"); got != 2*work {
		t.Fatalf("total charged %d, want %d", got, 2*work)
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	env, _, cpu := newCPU(t, 2, ghz)
	const work = 50_000_000
	var maxFinish time.Duration
	for i := 0; i < 2; i++ {
		th := cpu.NewThread(fmt.Sprintf("w%d", i), "vm")
		env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			th.Run(p, work, "work")
			if env.Now() > maxFinish {
				maxFinish = env.Now()
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxFinish > 55*time.Millisecond {
		t.Fatalf("parallel finish at %v, want ~50ms", maxFinish)
	}
}

func TestWorkFIFOWithinThread(t *testing.T) {
	env, _, cpu := newCPU(t, 1, ghz)
	th := cpu.NewThread("w", "vm")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		th.Post(1000, "work", func() { order = append(order, i) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order = %v", order)
		}
	}
}

func TestPostZeroCompletesImmediately(t *testing.T) {
	env, _, cpu := newCPU(t, 1, ghz)
	th := cpu.NewThread("w", "vm")
	called := false
	th.Post(0, "work", func() { called = true })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("onDone not called for zero-cycle post")
	}
	if th.Consumed() != 0 {
		t.Fatalf("Consumed = %d", th.Consumed())
	}
}

// TestSleeperWakeLatencyLow: a long-sleeping thread that wakes once gets to
// run almost immediately even on a fully busy machine (sleeper credit +
// wakeup preemption) — faithful CFS behavior.
func TestSleeperWakeLatencyLow(t *testing.T) {
	env := sim.NewEnv(1)
	cpu := New(env, metrics.NewRegistry(), 1, ghz, Config{})
	hog := cpu.NewThread("hog", "hog")
	env.Go("hog", func(p *sim.Proc) {
		for j := 0; j < 100; j++ {
			hog.Run(p, 5_000_000, "burn")
		}
	})
	io := cpu.NewThread("io", "io")
	var latency time.Duration
	env.Go("waker", func(p *sim.Proc) {
		p.Sleep(20 * time.Millisecond)
		start := env.Now()
		io.Run(p, 50_000, "io-work") // 50µs of work
		latency = env.Now() - start
		env.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Close()
	if latency > 500*time.Microsecond {
		t.Fatalf("sleeper wake-to-done latency = %v, want <500µs", latency)
	}
}

// TestChainThroughputUnderContention is the essence of Figure 3: a sustained
// ping-pong between two moderately busy threads (a netperf-like
// request/response chain) slows down when CPU hogs keep all cores busy,
// because the chain threads are not "sleepers" — their vruntime tracks the
// hogs', so wakeup preemption often fails and they wait in runqueues.
func TestChainThroughputUnderContention(t *testing.T) {
	measure := func(hogs int) time.Duration {
		env := sim.NewEnv(1)
		cpu := New(env, metrics.NewRegistry(), 2, ghz, Config{})
		for i := 0; i < hogs; i++ {
			hog := cpu.NewThread(fmt.Sprintf("hog%d", i), "hog")
			env.Go(fmt.Sprintf("hog%d", i), func(p *sim.Proc) {
				for env.Now() < 400*time.Millisecond {
					hog.Run(p, 2_000_000, "burn") // 2ms chunks, never idle
				}
			})
		}
		a := cpu.NewThread("a", "chain")
		b := cpu.NewThread("b", "chain")
		var elapsed time.Duration
		env.Go("chain", func(p *sim.Proc) {
			start := env.Now()
			const hops = 300
			for i := 0; i < hops; i++ {
				a.Run(p, 100_000, "hop") // 100µs each side
				b.Run(p, 100_000, "hop")
			}
			elapsed = env.Now() - start
			env.Stop()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Close()
		return elapsed
	}
	idle := measure(0)
	contended := measure(2)
	ratio := float64(contended) / float64(idle)
	if ratio < 1.05 {
		t.Fatalf("contended/idle chain time = %.2f (%v vs %v); expected visible slowdown", ratio, contended, idle)
	}
	if ratio > 20 {
		t.Fatalf("contended/idle chain time = %.2f; implausibly large", ratio)
	}
}

// TestWakeupPreemption: a far-behind waking thread preempts a long-running
// hog rather than waiting for the hog to finish its work.
func TestWakeupPreemption(t *testing.T) {
	env, _, cpu := newCPU(t, 1, ghz)
	hog := cpu.NewThread("hog", "hog")
	io := cpu.NewThread("io", "io")
	var ioDone time.Duration
	env.Go("hog", func(p *sim.Proc) {
		hog.Run(p, 500_000_000, "burn") // 500ms
	})
	env.Go("io", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond) // hog has 100ms of vruntime
		io.Run(p, 100_000, "io")        // 100µs
		ioDone = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Preemption should let io finish long before the hog's 500ms.
	if ioDone > 120*time.Millisecond {
		t.Fatalf("io finished at %v; wakeup preemption not working", ioDone)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	env, reg, cpu := newCPU(t, 2, ghz)
	th := cpu.NewThread("w", "vm")
	reg.MarkWindow(0)
	env.Go("p", func(p *sim.Proc) {
		th.Run(p, 100_000_000, "work") // 100ms of one core
	})
	if err := env.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	u := reg.Utilization("vm", "work", env.Now(), ghz)
	if math.Abs(u-0.5) > 0.02 { // 100ms busy over 200ms window
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	env.Close()
}

func TestMultipleProcsShareOneThread(t *testing.T) {
	// A 1-vCPU guest: two processes' work serializes on the single thread.
	env, _, cpu := newCPU(t, 4, ghz) // plenty of cores; the thread is the bottleneck
	th := cpu.NewThread("vcpu", "vm")
	var finish [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			th.Run(p, 50_000_000, "work")
			finish[i] = env.Now()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO within the thread: first ~50ms, second ~100ms despite 4 cores.
	if finish[0] > 60*time.Millisecond || finish[1] < 95*time.Millisecond {
		t.Fatalf("finish times %v; vCPU work should serialize", finish)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() string {
		env := sim.NewEnv(9)
		reg := metrics.NewRegistry()
		cpu := New(env, reg, 2, ghz, Config{})
		trace := ""
		for i := 0; i < 4; i++ {
			i := i
			th := cpu.NewThread(fmt.Sprintf("t%d", i), fmt.Sprintf("e%d", i))
			env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				for j := 0; j < 10; j++ {
					th.Run(p, int64(1_000_000*(i+1)), "w")
					p.Sleep(time.Duration(i) * 100 * time.Microsecond)
				}
				trace += fmt.Sprintf("%d@%v;", i, env.Now())
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic schedule:\n%s\n%s", a, b)
	}
}

func TestCyclesDurRoundTrip(t *testing.T) {
	f := func(raw uint32, pick uint8) bool {
		freqs := []int64{1_600_000_000, 2_000_000_000, 3_200_000_000}
		freq := freqs[int(pick)%len(freqs)]
		env := sim.NewEnv(1)
		cpu := New(env, metrics.NewRegistry(), 1, freq, Config{})
		cycles := int64(raw)
		d := cpu.DurFor(cycles)
		// Running for DurFor(cycles) must cover at least cycles of work.
		return cpu.CyclesFor(d) >= cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total cycles charged to the registry always equals total cycles
// posted, for arbitrary work mixes on arbitrary core counts.
func TestConservationOfCyclesProperty(t *testing.T) {
	f := func(works []uint16, coreSeed uint8) bool {
		if len(works) == 0 {
			return true
		}
		cores := 1 + int(coreSeed%4)
		env := sim.NewEnv(5)
		reg := metrics.NewRegistry()
		cpu := New(env, reg, cores, ghz, Config{CtxSwitchCycles: -1}) // -1 disables, isolating posted work
		var total int64
		for i, w := range works {
			th := cpu.NewThread(fmt.Sprintf("t%d", i), "e")
			cycles := int64(w) + 1
			total += cycles
			th.Post(cycles, "w", nil)
		}
		if err := env.Run(); err != nil {
			return false
		}
		return reg.Cycles("e", "w") == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
