package netsim

import (
	"testing"
	"time"

	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/sim/shard"
)

const ghz = int64(2_000_000_000)

type fixture struct {
	env  *sim.Env
	reg  *metrics.Registry
	fab  *Fabric
	cpu1 *cpusched.CPU
	cpu2 *cpusched.CPU
	nic1 *NIC
	nic2 *NIC
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	env := sim.NewEnv(1)
	reg := metrics.NewRegistry()
	fab := NewFabric(env, Config{})
	cpu1 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	cpu2 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	nic1 := fab.AddHost("host1", cpu1.NewThread("softirq1", "host1"))
	nic2 := fab.AddHost("host2", cpu2.NewThread("softirq2", "host2"))
	return &fixture{env: env, reg: reg, fab: fab, cpu1: cpu1, cpu2: cpu2, nic1: nic1, nic2: nic2}
}

type captureEP struct {
	frames []Frame
	at     []time.Duration
	env    *sim.Env
}

func (c *captureEP) DeliverFromWire(fr Frame) {
	c.frames = append(c.frames, fr)
	c.at = append(c.at, c.env.Now())
}

func TestSendToVMDelivers(t *testing.T) {
	fx := newFixture(t)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("vm2", "host2", ep)

	payload := data.NewSlice(data.Bytes("hello over the wire"))
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: payload}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ep.frames) != 1 {
		t.Fatalf("delivered %d frames", len(ep.frames))
	}
	if got := string(ep.frames[0].Payload.Bytes()); got != "hello over the wire" {
		t.Fatalf("payload = %q", got)
	}
	if ep.frames[0].SrcHost != "host1" || ep.frames[0].DstHost != "host2" {
		t.Fatalf("frame routing = %+v", ep.frames[0])
	}
	// Arrival no earlier than wire latency, and softirq cycles charged.
	if ep.at[0] < 20*time.Microsecond {
		t.Fatalf("arrived at %v, before wire latency", ep.at[0])
	}
	if fx.reg.Cycles("host2", metrics.TagVhostNet) == 0 {
		t.Fatal("no softirq cycles charged on receiving host")
	}
}

func TestNICPacingSerializesFrames(t *testing.T) {
	fx := newFixture(t)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("vm2", "host2", ep)

	// Two 1.25MB frames at 10Gbps = 1ms wire time each; FIFO pacing means
	// the second arrives ~1ms after the first.
	payload := data.NewSlice(data.Pattern{Seed: 1, Size: 1_250_000})
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: payload}, nil)
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: payload}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ep.at) != 2 {
		t.Fatalf("delivered %d frames", len(ep.at))
	}
	gap := ep.at[1] - ep.at[0]
	if gap < 900*time.Microsecond || gap > 1100*time.Microsecond {
		t.Fatalf("inter-arrival gap = %v, want ~1ms", gap)
	}
	if fx.nic1.TxBytes() != 2_500_000 || fx.nic1.TxFrames() != 2 {
		t.Fatalf("tx stats = %d bytes %d frames", fx.nic1.TxBytes(), fx.nic1.TxFrames())
	}
}

func TestOnSentFiresAtTransmitComplete(t *testing.T) {
	fx := newFixture(t)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("vm2", "host2", ep)

	var sentAt time.Duration
	payload := data.NewSlice(data.Pattern{Seed: 1, Size: 1_250_000}) // 1ms at 10Gbps
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: payload}, func() { sentAt = fx.env.Now() })
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt < 990*time.Microsecond || sentAt > 1010*time.Microsecond {
		t.Fatalf("onSent at %v, want ~1ms", sentAt)
	}
	// Delivery is after transmit + latency.
	if ep.at[0] <= sentAt {
		t.Fatalf("delivery %v not after transmit-complete %v", ep.at[0], sentAt)
	}
}

func TestSendToHostHandler(t *testing.T) {
	fx := newFixture(t)
	var got []Frame
	fx.fab.BindHostPort("host2", 9999, func(fr Frame) { got = append(got, fr) })
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: data.NewSlice(data.Bytes("daemon-msg"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload.Bytes()) != "daemon-msg" {
		t.Fatalf("host frames = %v", got)
	}
	if fx.reg.Cycles("host2", metrics.TagVReadNet) == 0 {
		t.Fatal("no vread-net cycles charged for host-terminated traffic")
	}
}

func TestVMRegistryAndMigration(t *testing.T) {
	fx := newFixture(t)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("dn1", "host1", ep)
	if h, ok := fx.fab.HostOf("dn1"); !ok || h != "host1" {
		t.Fatalf("HostOf = %q,%v", h, ok)
	}
	// Migrate: unregister then register on the other host.
	fx.fab.UnregisterVM("dn1")
	if _, ok := fx.fab.HostOf("dn1"); ok {
		t.Fatal("VM still registered after unregister")
	}
	fx.fab.RegisterVM("dn1", "host2", ep)
	if h, _ := fx.fab.HostOf("dn1"); h != "host2" {
		t.Fatalf("HostOf after migration = %q", h)
	}
}

func TestRDMATransfer(t *testing.T) {
	fx := newFixture(t)
	daemon1 := fx.cpu1.NewThread("daemon1", "vread-daemon-1")
	daemon2 := fx.cpu2.NewThread("daemon2", "vread-daemon-2")
	var atB []Frame
	var atA []Frame
	qp := fx.fab.NewQP(
		"host1", daemon1, func(fr Frame) { atA = append(atA, fr) },
		"host2", daemon2, func(fr Frame) { atB = append(atB, fr) },
	)
	payload := data.NewSlice(data.Pattern{Seed: 3, Size: 1 << 20})
	qp.PostFrom("host1", Frame{Payload: payload}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(atB) != 1 || len(atA) != 0 {
		t.Fatalf("delivery: A=%d B=%d", len(atA), len(atB))
	}
	if !data.Equal(atB[0].Payload, payload) {
		t.Fatal("payload corrupted through QP")
	}
	// Both sides paid small RDMA CPU; no softirq/vhost involvement.
	if fx.reg.Cycles("vread-daemon-1", metrics.TagRDMA) == 0 {
		t.Fatal("poster paid no RDMA cycles")
	}
	if fx.reg.Cycles("vread-daemon-2", metrics.TagRDMA) == 0 {
		t.Fatal("completer paid no RDMA cycles")
	}
	if fx.reg.Cycles("host2", metrics.TagVhostNet) != 0 {
		t.Fatal("RDMA traffic went through softirq")
	}
	if qp.Ops() != 1 || qp.OpsBytes() != 1<<20 {
		t.Fatalf("QP stats = %d ops %d bytes", qp.Ops(), qp.OpsBytes())
	}
}

func TestRDMACheaperThanTCPPath(t *testing.T) {
	// The CPU charged for moving a payload over RDMA must be far below the
	// softirq cost of the same payload as host-terminated TCP frames —
	// Figure 7 vs Figure 8's premise.
	fx := newFixture(t)
	daemon1 := fx.cpu1.NewThread("d1", "d1")
	daemon2 := fx.cpu2.NewThread("d2", "d2")
	qp := fx.fab.NewQP("host1", daemon1, nil, "host2", daemon2, func(Frame) {})
	fx.fab.BindHostPort("host2", 7000, func(Frame) {})

	const segs = 16
	payload := data.NewSlice(data.Pattern{Seed: 4, Size: 64 << 10})
	for i := 0; i < segs; i++ {
		qp.PostFrom("host1", Frame{Payload: payload}, nil)
		fx.nic1.SendToHost("host2", 7000, Frame{Payload: payload}, nil)
	}
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	rdma := fx.reg.Cycles("d1", metrics.TagRDMA) + fx.reg.Cycles("d2", metrics.TagRDMA)
	tcp := fx.reg.Cycles("host2", metrics.TagVReadNet)
	if rdma >= tcp {
		t.Fatalf("RDMA cycles %d not below TCP softirq cycles %d", rdma, tcp)
	}
}

func TestBidirectionalQP(t *testing.T) {
	fx := newFixture(t)
	d1 := fx.cpu1.NewThread("d1", "d1")
	d2 := fx.cpu2.NewThread("d2", "d2")
	var atA, atB int
	qp := fx.fab.NewQP("host1", d1, func(Frame) { atA++ }, "host2", d2, func(Frame) { atB++ })
	pl := data.NewSlice(data.Bytes("x"))
	qp.PostFrom("host1", Frame{Payload: pl}, nil)
	qp.PostFrom("host2", Frame{Payload: pl}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if atA != 1 || atB != 1 {
		t.Fatalf("deliveries A=%d B=%d", atA, atB)
	}
}

func TestUnknownDestinationPanics(t *testing.T) {
	fx := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown VM")
		}
	}()
	fx.nic1.SendToVM(Frame{DstVM: "ghost", Payload: data.NewSlice(data.Bytes("x"))}, nil)
}

func TestHostFrameDropFault(t *testing.T) {
	fx := newFixture(t)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.NetFrameDrop, Prob: 1, MaxFires: 1})
	fx.fab.InjectFaults(plan)
	var got []Frame
	fx.fab.BindHostPort("host2", 9999, func(fr Frame) { got = append(got, fr) })
	pl := data.NewSlice(data.Bytes("doomed"))
	sentAt := time.Duration(-1)
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: pl}, func() { sentAt = fx.env.Now() })
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: data.NewSlice(data.Bytes("survivor"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload.Bytes()) != "survivor" {
		t.Fatalf("delivered frames = %v, want only the second", got)
	}
	if sentAt < 0 {
		t.Fatal("onSent never fired for the dropped frame")
	}
	if fx.env.Pending() != 0 {
		t.Fatalf("%d events still pending after drop", fx.env.Pending())
	}
}

func TestGuestFramesNeverDropped(t *testing.T) {
	// net.frame.drop must not apply to inter-VM traffic: guest TCP has no
	// retransmit model, so a drop there would wedge vanilla HDFS forever.
	fx := newFixture(t)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.NetFrameDrop, Prob: 1})
	fx.fab.InjectFaults(plan)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("vm2", "host2", ep)
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: data.NewSlice(data.Bytes("x"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ep.frames) != 1 {
		t.Fatalf("guest frame dropped: delivered %d", len(ep.frames))
	}
}

func TestFrameDelayFault(t *testing.T) {
	fx := newFixture(t)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.NetFrameDelay, Prob: 1, Delay: 3 * time.Millisecond})
	fx.fab.InjectFaults(plan)
	ep := &captureEP{env: fx.env}
	fx.fab.RegisterVM("vm2", "host2", ep)
	fx.nic1.SendToVM(Frame{DstVM: "vm2", Payload: data.NewSlice(data.Bytes("x"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ep.frames) != 1 {
		t.Fatalf("delivered %d frames", len(ep.frames))
	}
	if ep.at[0] < 3*time.Millisecond {
		t.Fatalf("arrived at %v, before injected delay", ep.at[0])
	}
}

func TestQPTeardownFault(t *testing.T) {
	fx := newFixture(t)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.RDMAQPTeardown, Prob: 1, AfterN: 1, MaxFires: 1})
	fx.fab.InjectFaults(plan)
	d1 := fx.cpu1.NewThread("d1", "d1")
	d2 := fx.cpu2.NewThread("d2", "d2")
	var atB int
	qp := fx.fab.NewQP("host1", d1, nil, "host2", d2, func(Frame) { atB++ })
	pl := data.NewSlice(data.Bytes("x"))
	var sent int
	qp.PostFrom("host1", Frame{Payload: pl}, func() { sent++ }) // delivered
	qp.PostFrom("host1", Frame{Payload: pl}, func() { sent++ }) // tears down, dropped
	qp.PostFrom("host1", Frame{Payload: pl}, func() { sent++ }) // QP stays broken
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if atB != 1 {
		t.Fatalf("delivered %d work requests, want 1 (pre-teardown only)", atB)
	}
	if !qp.Broken() {
		t.Fatal("QP not marked broken")
	}
	if sent != 3 {
		t.Fatalf("onSent fired %d times, want 3 (posting always completes locally)", sent)
	}
	if fx.env.Pending() != 0 {
		t.Fatalf("%d events pending after teardown", fx.env.Pending())
	}
}

// TestShardedFabricCrossEnvDelivery wires two hosts on separate Envs to a
// shard coordinator and checks a host-terminated frame crosses through the
// interconnect: receive softirq and handler run on the destination Env, at
// the same virtual instant a single-env fabric would deliver, and with
// shard-count-identical results.
func TestShardedFabricCrossEnvDelivery(t *testing.T) {
	run := func(k int) (arrivedAt time.Duration, payload string) {
		coord := shard.New(shard.Config{Shards: k, Lookahead: Config{}.Lookahead()})
		reg := metrics.NewRegistry()
		envA, envB := sim.NewEnv(1), sim.NewEnv(2)
		lpA, lpB := coord.AddLP(envA), coord.AddLP(envB)
		lps := map[string]*shard.LP{"hostA": lpA, "hostB": lpB}

		fab := NewFabric(nil, Config{})
		fab.SetInterconnect(func(src, dst string, delay time.Duration, deliver func()) {
			lps[src].Send(lps[dst], delay, deliver)
		})
		cpuA := cpusched.New(envA, reg, 2, ghz, cpusched.Config{})
		cpuB := cpusched.New(envB, reg, 2, ghz, cpusched.Config{})
		nicA := fab.AddHostOn("hostA", cpuA.NewThread("softirqA", "hostA"), envA)
		fab.AddHostOn("hostB", cpuB.NewThread("softirqB", "hostB"), envB)

		fab.BindHostPort("hostB", 9000, func(fr Frame) {
			arrivedAt = envB.Now()
			payload = string(fr.Payload.Bytes())
		})
		envA.Schedule(time.Microsecond, func() {
			nicA.SendToHost("hostB", 9000, Frame{Payload: data.NewSlice(data.Bytes("cross-shard"))}, nil)
		})
		if err := coord.RunUntil(time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return arrivedAt, payload
	}
	at1, pay1 := run(1)
	if pay1 != "cross-shard" {
		t.Fatalf("payload = %q", pay1)
	}
	if at1 <= 21*time.Microsecond { // send instant + wire latency + softirq
		t.Fatalf("handler ran at %v, before wire latency could have elapsed", at1)
	}
	at2, pay2 := run(2)
	if at2 != at1 || pay2 != pay1 {
		t.Fatalf("sharded run diverges: (%v, %q) vs (%v, %q)", at2, pay2, at1, pay1)
	}
}

// TestShardedFabricRejectsCrossEnvQP pins the guard: RDMA endpoints must
// share an Env until QP state is split per side.
func TestShardedFabricRejectsCrossEnvQP(t *testing.T) {
	reg := metrics.NewRegistry()
	envA, envB := sim.NewEnv(1), sim.NewEnv(2)
	fab := NewFabric(nil, Config{})
	cpuA := cpusched.New(envA, reg, 2, ghz, cpusched.Config{})
	cpuB := cpusched.New(envB, reg, 2, ghz, cpusched.Config{})
	thA := cpuA.NewThread("a", "hostA")
	thB := cpuB.NewThread("b", "hostB")
	fab.AddHostOn("hostA", thA, envA)
	fab.AddHostOn("hostB", thB, envB)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-Env QP did not panic")
		}
	}()
	fab.NewQP("hostA", thA, nil, "hostB", thB, nil)
}

// TestLookaheadIsMinLatency pins the lookahead derivation.
func TestLookaheadIsMinLatency(t *testing.T) {
	if got := (Config{}).Lookahead(); got != 8*time.Microsecond {
		t.Fatalf("default Lookahead = %v, want 8µs (RDMA latency)", got)
	}
	cfg := Config{Latency: 5 * time.Microsecond, RDMALatency: 9 * time.Microsecond}
	if got := cfg.Lookahead(); got != 5*time.Microsecond {
		t.Fatalf("Lookahead = %v, want the wire latency 5µs", got)
	}
}
