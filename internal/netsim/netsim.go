// Package netsim models the physical network of the testbed: per-host NICs
// feeding a non-blocking 10 Gbps LAN switch, host-kernel receive processing
// (softirq), and RDMA-over-Converged-Ethernet queue pairs between hosts.
//
// Frames are opaque to the network: virtio-net (inter-VM traffic), the vRead
// daemons' TCP transport, and RDMA verbs all ride the same NIC pacing, so
// competing flows share wire bandwidth the way the paper's single 10 Gbps
// port does.
package netsim

import (
	"fmt"
	"time"

	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Config holds network parameters. Zero values select the paper's testbed:
// 10 Gbps LAN, RoCE-capable NICs.
type Config struct {
	// Bandwidth of each NIC port in bytes/second. Default 1.25e9 (10 Gbps).
	Bandwidth int64
	// Latency is the one-way wire+switch delay. Default 20µs.
	Latency time.Duration
	// SoftirqFrameCycles is host-kernel receive processing per frame.
	// Default 4000.
	SoftirqFrameCycles int64
	// RDMAPostCycles is the CPU cost of posting one RDMA work request.
	// Default 1200.
	RDMAPostCycles int64
	// RDMACompleteCycles is the CPU cost of reaping one completion.
	// Default 800.
	RDMACompleteCycles int64
	// RDMALatency is the hardware-offloaded one-way latency. Default 8µs.
	RDMALatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Bandwidth == 0 {
		c.Bandwidth = 1_250_000_000
	}
	if c.Latency == 0 {
		c.Latency = 20 * time.Microsecond
	}
	if c.SoftirqFrameCycles == 0 {
		c.SoftirqFrameCycles = 4000
	}
	if c.RDMAPostCycles == 0 {
		c.RDMAPostCycles = 1200
	}
	if c.RDMACompleteCycles == 0 {
		c.RDMACompleteCycles = 800
	}
	if c.RDMALatency == 0 {
		c.RDMALatency = 8 * time.Microsecond
	}
	return c
}

// Lookahead returns the minimum latency of any cross-host interaction the
// fabric can carry — the conservative-lookahead window for the sharded
// event engine (sim/shard). No frame, RDMA op included, reaches another
// host in less than this.
func (c Config) Lookahead() time.Duration {
	c = c.withDefaults()
	if c.RDMALatency < c.Latency {
		return c.RDMALatency
	}
	return c.Latency
}

// Frame is one unit on the wire: a TSO-sized guest segment, a daemon TCP
// segment, or an RDMA transfer chunk.
type Frame struct {
	SrcHost string
	DstHost string
	DstVM   string // "" for host-terminated traffic (daemon TCP, RDMA)
	Payload data.Slice
	Meta    interface{}
	// Trace is the request this frame is carried for (nil when untraced).
	// Every hop — NIC pacing, softirq, vhost, RDMA completion — charges its
	// cycles against it, so a request's journey across hosts stays one
	// stream.
	Trace *trace.Trace
}

// Endpoint receives frames addressed to a VM on a host. virtio.NetDev
// implements it.
type Endpoint interface {
	// DeliverFromWire is invoked in event context on the *receiving host*
	// after NIC+softirq processing; the endpoint charges its own vhost-copy
	// and guest costs.
	DeliverFromWire(fr Frame)
}

// HostHandler receives host-terminated frames (the vRead daemon's TCP
// transport).
type HostHandler func(fr Frame)

// DefaultPartitionWindow is how long a fired domain.partition fault keeps
// the two domains severed when the rule carries no delay= duration.
const DefaultPartitionWindow = 10 * time.Millisecond

// Fabric is the LAN: a registry of hosts and VM endpoints plus the switch.
//
// A fabric runs in one of two clock regimes. In the classic single-env
// regime every NIC shares the fabric's Env and frames schedule directly. In
// the sharded regime each host's NIC lives on its own Env (AddHostOn) and a
// frame whose source and destination Envs differ is handed to the
// interconnect hook (SetInterconnect) — the sharded engine's cross-LP
// mailbox — instead of being scheduled locally. Everything the receive side
// does (softirq charge, handler, endpoint delivery) runs inside the
// delivered closure on the destination Env.
type Fabric struct {
	env *sim.Env
	cfg Config
	//lint:shared(host NIC registry; topology is frozen before the clock starts)
	nics map[string]*NIC
	// vms binds VM names to hosts that may live on other Envs; anything read
	// out of it is a possibly-remote handle.
	//
	//lint:source lpowner(a VM registration may point at another host's Env)
	vms map[string]vmReg
	//lint:owner(coordinator: port bindings change only while no LP is executing)
	ports map[hostPort]HostHandler
	locs  map[string]hostLoc
	//lint:owner(coordinator: dark-host set, mutated by fault actions on the fabric's own Env)
	down map[string]bool
	//lint:owner(coordinator: severed-until windows; domain partitions are a single-env feature)
	partitions map[domPair]time.Duration // severed-until instant per domain pair
	faults     *faults.Plan
	hostFaults map[string]*faults.Plan
	xconnect   func(src, dst string, delay time.Duration, deliver func())
}

type vmReg struct {
	host string
	ep   Endpoint
}

type hostPort struct {
	host string
	port int
}

type hostLoc struct {
	rack   string
	domain string
}

// domPair is an unordered domain pair (normalized a <= b).
type domPair struct {
	a, b string
}

func pairOf(d1, d2 string) domPair {
	if d1 > d2 {
		d1, d2 = d2, d1
	}
	return domPair{d1, d2}
}

// NewFabric creates an empty LAN.
func NewFabric(env *sim.Env, cfg Config) *Fabric {
	return &Fabric{
		env:        env,
		cfg:        cfg.withDefaults(),
		nics:       make(map[string]*NIC),
		vms:        make(map[string]vmReg),
		ports:      make(map[hostPort]HostHandler),
		locs:       make(map[string]hostLoc),
		down:       make(map[string]bool),
		partitions: make(map[domPair]time.Duration),
	}
}

// Config returns the fabric parameters.
func (f *Fabric) Config() Config { return f.cfg }

// InjectFaults arms the network faultpoints from plan: net.frame.delay on
// every transmit, net.frame.drop on host-terminated frames (the vRead
// daemons' TCP transport, which carries its own timeout/retry — guest TCP
// has no retransmit model, so dropping inter-VM frames would simulate a
// kernel bug rather than a network fault), rdma.qp.teardown per posted
// work request, and domain.partition per inter-domain host/RDMA frame (a
// firing severs the two fault domains for the rule's delay window). A nil
// plan disables injection.
func (f *Fabric) InjectFaults(plan *faults.Plan) { f.faults = plan }

// InjectHostFaults arms a per-host fault plan consulted for frames whose
// send side is host, overriding the global plan for that host. Sharded runs
// need this: a fault plan draws from its own RNG, so sharing one across
// concurrently advancing hosts would race and break shard-count invariance.
// One plan per host, seeded per host, keeps every draw inside its LP.
func (f *Fabric) InjectHostFaults(host string, plan *faults.Plan) {
	if f.hostFaults == nil {
		f.hostFaults = make(map[string]*faults.Plan)
	}
	f.hostFaults[host] = plan
}

// plan returns the fault plan governing sends from host.
func (f *Fabric) plan(host string) *faults.Plan {
	if p, ok := f.hostFaults[host]; ok {
		return p
	}
	return f.faults
}

// SetInterconnect installs the cross-Env frame handoff used when source and
// destination NICs live on different Envs. delay is always at least the
// config's Lookahead. Single-env fabrics never invoke it.
func (f *Fabric) SetInterconnect(fn func(src, dst string, delay time.Duration, deliver func())) {
	f.xconnect = fn
}

// envFor returns the Env frames terminating at host run on — possibly
// another LP's engine; only boundary code may schedule on it.
//
//lint:source lpowner(the returned Env may belong to another LP)
func (f *Fabric) envFor(host string) *sim.Env {
	if nic, ok := f.nics[host]; ok {
		return nic.env
	}
	return f.env
}

// deliverOn schedules fn after delay on dst's Env: directly when dst shares
// src's Env, through the interconnect otherwise.
//
//lint:owner(boundary: cross-Env delivery rides the interconnect — LP.Send in the sharded regime)
func (f *Fabric) deliverOn(srcEnv *sim.Env, src, dst string, delay time.Duration, fn func()) {
	dstEnv := f.envFor(dst)
	if dstEnv == srcEnv {
		srcEnv.Schedule(delay, fn)
		return
	}
	if f.xconnect == nil {
		panic(fmt.Sprintf("netsim: hosts %q and %q live on different Envs and no interconnect is set", src, dst))
	}
	f.xconnect(src, dst, delay, fn)
}

// AddHost registers a host NIC. softirq is the host thread that receive
// processing is charged to; entity/tag attribution follows that thread.
func (f *Fabric) AddHost(name string, softirq *cpusched.Thread) *NIC {
	return f.AddHostOn(name, softirq, f.env)
}

// AddHostOn registers a host NIC that lives on its own Env — the sharded
// regime, one Env per simulated host. The softirq thread (and everything
// else the host touches from event context) must run on the same Env.
func (f *Fabric) AddHostOn(name string, softirq *cpusched.Thread, env *sim.Env) *NIC {
	if _, ok := f.nics[name]; ok {
		panic(fmt.Sprintf("netsim: duplicate host %q", name))
	}
	nic := &NIC{fabric: f, host: name, softirq: softirq, env: env}
	f.nics[name] = nic
	return nic
}

// NIC returns the registered NIC for host, or nil. Callers name their own
// host, so the result runs on the caller's Env — the same-Env escape hatch.
//
//lint:sanitizer lpowner(callers pass their own host name; the NIC lives on that host's Env)
func (f *Fabric) NIC(host string) *NIC { return f.nics[host] }

// SetHostLocation records a host's rack and fault domain. Hosts with no
// recorded location (or an empty domain) are exempt from domain partitions.
func (f *Fabric) SetHostLocation(host, rack, domain string) {
	f.locs[host] = hostLoc{rack: rack, domain: domain}
}

// RackOf returns the recorded rack of a host.
func (f *Fabric) RackOf(host string) (string, bool) {
	l, ok := f.locs[host]
	return l.rack, ok
}

// DomainOf returns the recorded fault domain of a host.
func (f *Fabric) DomainOf(host string) (string, bool) {
	l, ok := f.locs[host]
	return l.domain, ok
}

// SetHostDown marks a host dark (rack kill): every frame to or from it —
// guest, daemon TCP, or RDMA — is dropped in flight. Spans still close at
// the would-have-arrived instant, so tracing invariants hold.
func (f *Fabric) SetHostDown(host string, down bool) {
	if down {
		f.down[host] = true //lint:allow lpowner(rack-kill actions run on the fabric's own Env; sharded runs drive host-down between epochs)
	} else {
		delete(f.down, host) //lint:allow lpowner(rack-kill actions run on the fabric's own Env; sharded runs drive host-down between epochs)
	}
}

// HostDown reports whether the host is marked dark.
func (f *Fabric) HostDown(host string) bool { return f.down[host] }

// PartitionActive reports whether the two domains are currently severed.
func (f *Fabric) PartitionActive(d1, d2 string) bool {
	until, ok := f.partitions[pairOf(d1, d2)]
	return ok && f.env.Now() < until
}

// domainBlocked reports whether an inter-domain host/RDMA frame between the
// two hosts must be dropped. Inside an active partition window every such
// frame drops without drawing randomness; otherwise the domain.partition
// faultpoint is evaluated, and a firing severs the pair for the rule's
// delay= window (DefaultPartitionWindow when unset). Recovery is lazy: the
// window simply expires, no timers.
func (f *Fabric) domainBlocked(fr *Frame, src, dst string) bool {
	ls, okS := f.locs[src]
	ld, okD := f.locs[dst]
	if !okS || !okD || ls.domain == "" || ld.domain == "" || ls.domain == ld.domain {
		return false
	}
	pair := pairOf(ls.domain, ld.domain)
	now := f.envFor(src).Now()
	if until, ok := f.partitions[pair]; ok && now < until {
		fr.Trace.Event(trace.LayerNet, "fault:domain-partition-drop", 0)
		return true
	}
	// The severed-until map is fabric-global; domain partitions are a
	// single-env feature (sharded runs leave fault domains unset, so this
	// path is never reached from a concurrently advancing host).
	if window, ok := f.plan(src).ShouldDelay(faults.DomainPartition); ok {
		if window <= 0 {
			window = DefaultPartitionWindow
		}
		f.partitions[pair] = now + window //lint:allow lpowner(single-env feature per the comment above; sharded runs leave fault domains unset)
		fr.Trace.Event(trace.LayerNet, "fault:domain-partition-drop", 0)
		return true
	}
	return false
}

// RegisterVM binds a VM name to its host and endpoint.
func (f *Fabric) RegisterVM(vm, host string, ep Endpoint) {
	if _, ok := f.vms[vm]; ok {
		panic(fmt.Sprintf("netsim: duplicate VM %q", vm))
	}
	f.vms[vm] = vmReg{host: host, ep: ep}
}

// UnregisterVM removes a VM binding (live migration support).
func (f *Fabric) UnregisterVM(vm string) { delete(f.vms, vm) }

// HostOf returns the host a VM currently runs on. A host name is data, not
// a schedulable handle — anything that turns it into a NIC or Env goes back
// through the fabric's own accessors.
//
//lint:sanitizer lpowner(a host name is not a handle; resolving it re-routes through the fabric)
func (f *Fabric) HostOf(vm string) (string, bool) {
	r, ok := f.vms[vm]
	return r.host, ok
}

// EndpointOf returns the endpoint of a VM — a possibly-remote handle: the
// VM may live on another host's Env, and its endpoint must only be touched
// from code already running there.
//
//lint:source lpowner(the endpoint may live on another host's Env)
func (f *Fabric) EndpointOf(vm string) (Endpoint, bool) {
	r, ok := f.vms[vm]
	return r.ep, ok
}

// BindHostPort registers a host-terminated service (the vRead daemon's TCP
// listener).
func (f *Fabric) BindHostPort(host string, port int, h HostHandler) {
	key := hostPort{host, port}
	if _, ok := f.ports[key]; ok {
		panic(fmt.Sprintf("netsim: port %d already bound on %s", port, host))
	}
	f.ports[key] = h //lint:allow lpowner(lazy daemon-port binding during mount migration; cross-LP migration quiesces at an epoch boundary)
}

// NIC is one host's 10 Gbps port with FIFO egress pacing.
type NIC struct {
	fabric *Fabric
	host   string
	//lint:owner(lp: the host's engine — only code already on it schedules here)
	env *sim.Env
	//lint:owner(lp: receive processing runs on the host's own Env)
	softirq *cpusched.Thread
	//lint:owner(lp: egress pacing state, mutated only on the NIC's own Env)
	busyUntil time.Duration
	//lint:owner(lp: egress counters, mutated only on the NIC's own Env)
	txBytes int64
	//lint:owner(lp: egress counters, mutated only on the NIC's own Env)
	txFrames int64
}

// Host returns the owning host name.
func (n *NIC) Host() string { return n.host }

// TxBytes returns total bytes transmitted.
func (n *NIC) TxBytes() int64 { return n.txBytes }

// TxFrames returns total frames transmitted.
func (n *NIC) TxFrames() int64 { return n.txFrames }

// SendToVM transmits a frame to a VM on another host. After wire time, the
// receiving host's softirq processing runs, then the VM endpoint's
// DeliverFromWire. onSent (may be nil) fires when the frame leaves this NIC
// (transmit-complete, for sender-side pacing).
func (n *NIC) SendToVM(fr Frame, onSent func()) {
	reg, ok := n.fabric.vms[fr.DstVM]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown destination VM %q", fr.DstVM))
	}
	fr.SrcHost = n.host
	fr.DstHost = reg.host
	n.transmit(fr, onSent, func(arrived Frame) {
		dst := n.fabric.nics[reg.host]
		dst.softirq.PostT(n.fabric.cfg.SoftirqFrameCycles, metrics.TagVhostNet, arrived.Trace, func() {
			reg.ep.DeliverFromWire(arrived)
		})
	})
}

// SendToHost transmits a host-terminated frame (daemon TCP). Receive
// processing is charged to the receiving host's softirq thread with the
// vread-net tag, then the bound handler runs.
func (n *NIC) SendToHost(dstHost string, port int, fr Frame, onSent func()) {
	h, ok := n.fabric.ports[hostPort{dstHost, port}]
	if !ok {
		panic(fmt.Sprintf("netsim: no handler on %s:%d", dstHost, port))
	}
	fr.SrcHost = n.host
	fr.DstHost = dstHost
	if n.fabric.domainBlocked(&fr, n.host, dstHost) {
		n.transmit(fr, onSent, nil)
		return
	}
	if n.fabric.plan(n.host).Should(faults.NetFrameDrop) {
		fr.Trace.Event(trace.LayerNet, "fault:frame-drop", 0)
		n.transmit(fr, onSent, nil)
		return
	}
	n.transmit(fr, onSent, func(arrived Frame) {
		dst := n.fabric.nics[dstHost]
		dst.softirq.PostT(n.fabric.cfg.SoftirqFrameCycles, metrics.TagVReadNet, arrived.Trace, func() {
			h(arrived)
		})
	})
}

// SendDMA transmits a frame fully in hardware (SR-IOV virtual functions):
// NIC pacing and wire latency apply, but no host softirq runs — deliver is
// invoked directly on arrival. Co-located destinations hairpin through the
// NIC's internal switch (same pacing, same latency).
func (n *NIC) SendDMA(fr Frame, onSent func(), deliver func(Frame)) {
	fr.SrcHost = n.host
	n.transmit(fr, onSent, deliver)
}

// transmit paces the frame through this NIC and schedules arrival. A nil
// deliver means the frame was dropped in flight: it still occupies the wire
// and its span still closes (at the instant it would have arrived), it just
// never reaches the destination. Frames touching a down host are dropped
// here, the single chokepoint every send path funnels through.
func (n *NIC) transmit(fr Frame, onSent func(), deliver func(Frame)) {
	if deliver != nil && (n.fabric.down[fr.SrcHost] || n.fabric.down[fr.DstHost]) {
		fr.Trace.Event(trace.LayerNet, "fault:host-down-drop", 0)
		deliver = nil
	}
	cfg := n.fabric.cfg
	now := n.env.Now()
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	wire := cfg.Latency
	if extra, ok := n.fabric.plan(n.host).ShouldDelay(faults.NetFrameDelay); ok {
		fr.Trace.Event(trace.LayerNet, "fault:frame-delay", 0)
		wire += extra
	}
	txTime := time.Duration(float64(fr.Payload.Len()) / float64(cfg.Bandwidth) * float64(time.Second))
	done := start + txTime
	n.busyUntil = done
	n.txBytes += fr.Payload.Len()
	n.txFrames++
	if onSent != nil {
		n.env.Schedule(done-now, onSent)
	}
	sp := fr.Trace.Begin(trace.LayerNet, "wire")
	arrive := func() {
		fr.Trace.EndSpan(sp, fr.Payload.Len())
		if deliver != nil {
			deliver(fr)
		}
	}
	// Dropped frames (nil deliver) close their span on the sender's Env —
	// the destination may be down, unregistered, or on another shard, and
	// nothing observable happens there anyway.
	if deliver == nil || fr.DstHost == "" {
		n.env.Schedule(done-now+wire, arrive)
		return
	}
	n.fabric.deliverOn(n.env, n.host, fr.DstHost, done-now+wire, arrive)
}

// ---------------------------------------------------------------------------
// RDMA (RoCE).

// QP is a reliable-connected RDMA queue pair between two hosts. Work
// requests pay small per-op CPU on the posting thread and are transferred by
// NIC hardware (wire pacing, no softirq, no copies).
type QP struct {
	fabric   *Fabric
	hostA    string
	hostB    string
	recvA    func(Frame)
	recvB    func(Frame)
	threadA  *cpusched.Thread
	threadB  *cpusched.Thread
	ops      int64
	opsBytes int64
	broken   bool
}

// NewQP connects two hosts. threadX is the thread whose entity RDMA CPU is
// charged to on each side; recvX handles messages arriving at that side.
func (f *Fabric) NewQP(hostA string, threadA *cpusched.Thread, recvA func(Frame),
	hostB string, threadB *cpusched.Thread, recvB func(Frame)) *QP {
	if f.nics[hostA] == nil || f.nics[hostB] == nil {
		panic("netsim: QP hosts must be registered")
	}
	if f.nics[hostA].env != f.nics[hostB].env {
		// A QP's op counters and broken flag are one shared structure
		// mutated from both ends; splitting them per side is what a
		// cross-shard QP would need, and nothing needs it yet.
		panic(fmt.Sprintf("netsim: QP between %q and %q crosses Envs; RDMA endpoints must share a shard", hostA, hostB))
	}
	return &QP{
		fabric: f, hostA: hostA, hostB: hostB,
		recvA: recvA, recvB: recvB, threadA: threadA, threadB: threadB,
	}
}

// Ops returns the number of posted work requests.
func (q *QP) Ops() int64 { return q.ops }

// Broken reports whether the QP has been torn down by an injected
// rdma.qp.teardown fault. A broken QP accepts posts (the sender's verbs
// library doesn't learn synchronously) but delivers nothing; the caller's
// timeout is what detects it, as in the paper's RDMA→TCP fallback.
func (q *QP) Broken() bool { return q.broken }

// OpsBytes returns total bytes moved through the QP.
func (q *QP) OpsBytes() int64 { return q.opsBytes }

// PostFrom posts a send/write work request from the given side ("A" side is
// hostA). The posting thread pays RDMAPostCycles; the NIC DMAs the payload
// at wire speed; the remote side pays RDMACompleteCycles and then its recv
// handler runs. onSent (may be nil) fires at local transmit-complete.
func (q *QP) PostFrom(host string, fr Frame, onSent func()) {
	cfg := q.fabric.cfg
	var postTh, complTh *cpusched.Thread
	var recv func(Frame)
	var dstHost string
	switch host {
	case q.hostA:
		postTh, complTh, recv, dstHost = q.threadA, q.threadB, q.recvB, q.hostB
	case q.hostB:
		postTh, complTh, recv, dstHost = q.threadB, q.threadA, q.recvA, q.hostA
	default:
		panic(fmt.Sprintf("netsim: host %q not part of QP", host))
	}
	q.ops++
	q.opsBytes += fr.Payload.Len()
	fr.SrcHost = host
	fr.DstHost = dstHost
	nic := q.fabric.nics[host]
	if q.fabric.plan(host).Should(faults.RDMAQPTeardown) {
		q.broken = true
	}
	unreachable := q.broken
	switch {
	case q.broken:
		fr.Trace.Event(trace.LayerNet, "fault:qp-broken-drop", 0)
	case q.fabric.down[host] || q.fabric.down[dstHost]:
		fr.Trace.Event(trace.LayerNet, "fault:host-down-drop", 0)
		unreachable = true
	case q.fabric.domainBlocked(&fr, host, dstHost):
		unreachable = true
	}
	if unreachable {
		// Posting still costs CPU and the sender still sees local
		// transmit-complete — the loss surfaces only at the reader's
		// timeout, never as a synchronous error.
		postTh.PostT(cfg.RDMAPostCycles, metrics.TagRDMA, fr.Trace, func() {
			if onSent != nil {
				onSent()
			}
		})
		return
	}
	sp := fr.Trace.Begin(trace.LayerNet, "rdma")
	postTh.PostT(cfg.RDMAPostCycles, metrics.TagRDMA, fr.Trace, func() {
		now := nic.env.Now()
		start := now
		if nic.busyUntil > start {
			start = nic.busyUntil
		}
		txTime := time.Duration(float64(fr.Payload.Len()) / float64(cfg.Bandwidth) * float64(time.Second))
		done := start + txTime
		nic.busyUntil = done
		nic.txBytes += fr.Payload.Len()
		nic.txFrames++
		if onSent != nil {
			nic.env.Schedule(done-now, onSent)
		}
		q.fabric.deliverOn(nic.env, host, dstHost, done-now+cfg.RDMALatency, func() {
			complTh.PostT(cfg.RDMACompleteCycles, metrics.TagRDMA, fr.Trace, func() {
				fr.Trace.EndSpan(sp, fr.Payload.Len())
				recv(fr)
			})
		})
	})
}
