package netsim

import (
	"testing"
	"time"

	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/sim"
)

// locate puts host1 and host2 into distinct racks and fault domains.
func locate(fx *fixture) {
	fx.fab.SetHostLocation("host1", "r0", "d0")
	fx.fab.SetHostLocation("host2", "r1", "d1")
}

// TestHostDownDropsFrames: a dark host exchanges nothing, in either
// direction, but onSent still fires (the sender's NIC did its work).
func TestHostDownDropsFrames(t *testing.T) {
	fx := newFixture(t)
	var got int
	fx.fab.BindHostPort("host2", 9999, func(Frame) { got++ })
	fx.fab.SetHostDown("host2", true)
	sent := false
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: data.NewSlice(data.Bytes("x"))}, func() { sent = true })
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("frame delivered to a dark host")
	}
	if !sent {
		t.Fatal("onSent never fired for the dropped frame")
	}
	if !fx.fab.HostDown("host2") || fx.fab.HostDown("host1") {
		t.Fatal("down bookkeeping wrong")
	}
	fx.fab.SetHostDown("host2", false)
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: data.NewSlice(data.Bytes("y"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("revived host received %d frames, want 1", got)
	}
}

// TestDomainPartitionFault: a fired domain.partition severs inter-domain
// host frames for the delay window, then heals lazily.
func TestDomainPartitionFault(t *testing.T) {
	fx := newFixture(t)
	locate(fx)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.DomainPartition, Prob: 1, MaxFires: 1, Delay: 2 * time.Millisecond})
	fx.fab.InjectFaults(plan)
	var at []time.Duration
	fx.fab.BindHostPort("host2", 9999, func(Frame) { at = append(at, fx.env.Now()) })

	pl := data.NewSlice(data.Bytes("x"))
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: pl}, nil) // fires: dropped, window opens
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: pl}, nil) // inside window: dropped
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 0 {
		t.Fatalf("%d frames crossed an active partition", len(at))
	}
	if !fx.fab.PartitionActive("d0", "d1") || !fx.fab.PartitionActive("d1", "d0") {
		t.Fatal("partition not active (or not symmetric)")
	}

	// After the window expires the link heals with no timer event: advance
	// the clock past it with an unrelated sleeper.
	fx.env.Go("later", func(p *sim.Proc) { p.Sleep(3 * time.Millisecond) })
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if fx.fab.PartitionActive("d0", "d1") {
		t.Fatal("partition still active after its window")
	}
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: pl}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 1 {
		t.Fatalf("healed link delivered %d frames, want 1", len(at))
	}
}

// TestDomainPartitionSparesIntraDomain: co-domain traffic never evaluates
// the partition point.
func TestDomainPartitionSparesIntraDomain(t *testing.T) {
	fx := newFixture(t)
	fx.fab.SetHostLocation("host1", "r0", "d0")
	fx.fab.SetHostLocation("host2", "r1", "d0") // same domain, different rack
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.DomainPartition, Prob: 1})
	fx.fab.InjectFaults(plan)
	var got int
	fx.fab.BindHostPort("host2", 9999, func(Frame) { got++ })
	fx.nic1.SendToHost("host2", 9999, Frame{Payload: data.NewSlice(data.Bytes("x"))}, nil)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("intra-domain frame was partitioned")
	}
	for _, pc := range plan.Counts() {
		if pc.Point == faults.DomainPartition && pc.Evals != 0 {
			t.Fatalf("domain.partition evaluated %d times for intra-domain traffic", pc.Evals)
		}
	}
}

// TestDomainPartitionSeversRDMA: the partition applies to RDMA work
// requests too — the QP itself stays healthy and carries traffic after the
// window.
func TestDomainPartitionSeversRDMA(t *testing.T) {
	fx := newFixture(t)
	locate(fx)
	plan := faults.NewPlan(fx.env)
	plan.Set(faults.Rule{Point: faults.DomainPartition, Prob: 1, MaxFires: 1, Delay: time.Millisecond})
	fx.fab.InjectFaults(plan)
	d1 := fx.cpu1.NewThread("d1", "d1")
	d2 := fx.cpu2.NewThread("d2", "d2")
	var delivered int
	qp := fx.fab.NewQP("host1", d1, nil, "host2", d2, func(Frame) { delivered++ })
	pl := data.NewSlice(data.Bytes("x"))
	var sent int
	qp.PostFrom("host1", Frame{Payload: pl}, func() { sent++ }) // partitioned
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 || sent != 1 {
		t.Fatalf("partitioned QP: delivered=%d sent=%d", delivered, sent)
	}
	if qp.Broken() {
		t.Fatal("partition must not break the QP")
	}
	fx.env.Go("later", func(p *sim.Proc) { p.Sleep(2 * time.Millisecond) })
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	qp.PostFrom("host1", Frame{Payload: pl}, func() { sent++ })
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("healed QP delivered %d, want 1", delivered)
	}
}
