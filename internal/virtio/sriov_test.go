package virtio

import (
	"testing"
	"time"

	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
)

func newSRIOVFixture(t *testing.T, cfg Config) *netFixture {
	t.Helper()
	env := sim.NewEnv(1)
	reg := metrics.NewRegistry()
	fab := netsim.NewFabric(env, netsim.Config{})
	cpu1 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	cpu2 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	nic1 := fab.AddHost("host1", cpu1.NewThread("softirq1", "host1"))
	nic2 := fab.AddHost("host2", cpu2.NewThread("softirq2", "host2"))
	mk := func(cpu *cpusched.CPU, nic *netsim.NIC, vm, host string) *NetDev {
		d := NewNetDev(env, cfg, vm, host,
			cpu.NewThread("vcpu:"+vm, vm), cpu.NewThread("vhost:"+vm, vm), nic, fab)
		d.Start()
		return d
	}
	return &netFixture{
		env: env, reg: reg, fab: fab, cpu1: cpu1, cpu2: cpu2,
		devA: mk(cpu1, nic1, "vmA", "host1"),
		devB: mk(cpu1, nic1, "vmB", "host1"),
		devC: mk(cpu2, nic2, "vmC", "host2"),
	}
}

func TestSRIOVBypassesVhost(t *testing.T) {
	fx := newSRIOVFixture(t, Config{SRIOV: true})
	defer fx.close()
	var got []netsim.Frame
	fx.devC.SetDeliver(func(fr netsim.Frame) { got = append(got, fr) })

	payload := data.NewSlice(data.Pattern{Seed: 1, Size: 64 << 10})
	fx.env.Go("sender", func(p *sim.Proc) {
		fx.devA.Transmit(p, netsim.Frame{DstVM: "vmC", Payload: payload})
	})
	if err := fx.env.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !data.Equal(got[0].Payload, payload) {
		t.Fatalf("delivery failed: %d frames", len(got))
	}
	// No vhost copies anywhere, no softirq on the receiving host.
	if fx.reg.Cycles("vmA", metrics.TagCopyVirtio) != 0 || fx.reg.Cycles("vmC", metrics.TagCopyVirtio) != 0 {
		t.Fatal("SR-IOV path charged virtio copies")
	}
	if fx.reg.Cycles("vmA", metrics.TagVhostNet) != 0 {
		t.Fatal("SR-IOV path used vhost-net")
	}
	if fx.reg.Cycles("host2", metrics.TagVhostNet) != 0 {
		t.Fatal("SR-IOV path used host softirq")
	}
}

func TestSRIOVColocatedHairpins(t *testing.T) {
	fx := newSRIOVFixture(t, Config{SRIOV: true})
	defer fx.close()
	var got int
	fx.devB.SetDeliver(func(fr netsim.Frame) { got++ })
	fx.env.Go("sender", func(p *sim.Proc) {
		fx.devA.Transmit(p, netsim.Frame{DstVM: "vmB", Payload: data.NewSlice(data.Pattern{Seed: 2, Size: 64 << 10})})
	})
	if err := fx.env.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d frames", got)
	}
	// Hairpin: co-located SR-IOV traffic goes through the physical NIC.
	if fx.fab.NIC("host1").TxFrames() != 1 {
		t.Fatalf("NIC tx frames = %d, want 1 (hairpin)", fx.fab.NIC("host1").TxFrames())
	}
}

func TestSRIOVCheaperThanVirtioForRemote(t *testing.T) {
	measure := func(sriov bool) int64 {
		fx := newSRIOVFixture(t, Config{SRIOV: sriov})
		defer fx.close()
		fx.devC.SetDeliver(func(netsim.Frame) {})
		fx.env.Go("sender", func(p *sim.Proc) {
			payload := data.NewSlice(data.Pattern{Seed: 3, Size: 64 << 10})
			for i := 0; i < 16; i++ {
				fx.devA.Transmit(p, netsim.Frame{DstVM: "vmC", Payload: payload})
			}
		})
		if err := fx.env.RunUntil(time.Second); err != nil {
			t.Fatal(err)
		}
		return fx.reg.EntityCycles("vmA") + fx.reg.EntityCycles("vmC") +
			fx.reg.EntityCycles("host1") + fx.reg.EntityCycles("host2")
	}
	virtio := measure(false)
	sriov := measure(true)
	if sriov >= virtio {
		t.Fatalf("SR-IOV cycles %d not below virtio %d", sriov, virtio)
	}
}
