package virtio

import (
	"testing"
	"time"

	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/storage"
)

const ghz = int64(2_000_000_000)

type netFixture struct {
	env  *sim.Env
	reg  *metrics.Registry
	fab  *netsim.Fabric
	cpu1 *cpusched.CPU
	cpu2 *cpusched.CPU
	devA *NetDev // vmA on host1
	devB *NetDev // vmB on host1 (co-located with A)
	devC *NetDev // vmC on host2 (remote)
}

func newNetFixture(t *testing.T) *netFixture {
	t.Helper()
	env := sim.NewEnv(1)
	reg := metrics.NewRegistry()
	fab := netsim.NewFabric(env, netsim.Config{})
	cpu1 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	cpu2 := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	nic1 := fab.AddHost("host1", cpu1.NewThread("softirq1", "host1"))
	nic2 := fab.AddHost("host2", cpu2.NewThread("softirq2", "host2"))

	mk := func(cpu *cpusched.CPU, nic *netsim.NIC, vm, host string) *NetDev {
		d := NewNetDev(env, Config{}, vm, host,
			cpu.NewThread("vcpu:"+vm, vm), cpu.NewThread("vhost:"+vm, vm), nic, fab)
		d.Start()
		return d
	}
	fx := &netFixture{
		env: env, reg: reg, fab: fab, cpu1: cpu1, cpu2: cpu2,
		devA: mk(cpu1, nic1, "vmA", "host1"),
		devB: mk(cpu1, nic1, "vmB", "host1"),
		devC: mk(cpu2, nic2, "vmC", "host2"),
	}
	return fx
}

func (fx *netFixture) close() { fx.env.Close() }

func TestColocatedFrameDelivery(t *testing.T) {
	fx := newNetFixture(t)
	defer fx.close()
	var got []netsim.Frame
	fx.devB.SetDeliver(func(fr netsim.Frame) { got = append(got, fr) })

	payload := data.NewSlice(data.Bytes("inter-vm hello"))
	done := false
	fx.env.Go("sender", func(p *sim.Proc) {
		fx.devA.Transmit(p, netsim.Frame{DstVM: "vmB", Payload: payload})
		done = true
	})
	if err := fx.env.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("transmit never completed")
	}
	if len(got) != 1 || string(got[0].Payload.Bytes()) != "inter-vm hello" {
		t.Fatalf("delivery = %v", got)
	}
	// Co-located copies: guest→host + inter-VM, charged to sender entity.
	copyCycles := fx.reg.Cycles("vmA", metrics.TagCopyVirtio)
	wantCopies := 2 * Config{}.WithDefaults().CopyCycles(int64(len("inter-vm hello")))
	if copyCycles != wantCopies {
		t.Fatalf("sender copy cycles = %d, want %d (2 copies)", copyCycles, wantCopies)
	}
	// No physical NIC involvement.
	if fx.fab.NIC("host1").TxFrames() != 0 {
		t.Fatal("co-located traffic hit the physical NIC")
	}
	// Guest IRQ charged on receiver vCPU.
	if fx.reg.Cycles("vmB", metrics.TagOthers) == 0 {
		t.Fatal("no guest IRQ cycles on receiver")
	}
}

func TestRemoteFrameDelivery(t *testing.T) {
	fx := newNetFixture(t)
	defer fx.close()
	var got []netsim.Frame
	fx.devC.SetDeliver(func(fr netsim.Frame) { got = append(got, fr) })

	payload := data.NewSlice(data.Pattern{Seed: 2, Size: 64 << 10})
	fx.env.Go("sender", func(p *sim.Proc) {
		fx.devA.Transmit(p, netsim.Frame{DstVM: "vmC", Payload: payload})
	})
	if err := fx.env.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !data.Equal(got[0].Payload, payload) {
		t.Fatalf("remote delivery failed: %d frames", len(got))
	}
	if fx.fab.NIC("host1").TxFrames() != 1 {
		t.Fatalf("NIC tx frames = %d", fx.fab.NIC("host1").TxFrames())
	}
	// Receive-side vhost copy charged to vmC.
	if fx.reg.Cycles("vmC", metrics.TagCopyVirtio) == 0 {
		t.Fatal("no receive-side virtio copy charged")
	}
}

func TestTransmitOrderPreserved(t *testing.T) {
	fx := newNetFixture(t)
	defer fx.close()
	var order []byte
	fx.devB.SetDeliver(func(fr netsim.Frame) {
		order = append(order, fr.Payload.Bytes()[0])
	})
	fx.env.Go("sender", func(p *sim.Proc) {
		for i := byte('a'); i <= 'e'; i++ {
			fx.devA.Transmit(p, netsim.Frame{DstVM: "vmB", Payload: data.NewSlice(data.Bytes{i})})
		}
	})
	if err := fx.env.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(order) != "abcde" {
		t.Fatalf("delivery order = %q", order)
	}
}

func TestOversizeFramePanics(t *testing.T) {
	fx := newNetFixture(t)
	defer fx.close()
	fx.env.Go("sender", func(p *sim.Proc) {
		fx.devA.Transmit(p, netsim.Frame{DstVM: "vmB", Payload: data.NewSlice(data.Pattern{Seed: 1, Size: 128 << 10})})
	})
	if err := fx.env.RunUntil(10 * time.Millisecond); err == nil {
		t.Fatal("expected oversize frame to fail the sender process")
	}
}

type blkFixture struct {
	env  *sim.Env
	reg  *metrics.Registry
	disk *storage.Disk
	dev  *BlkDev
}

func newBlkFixture(t *testing.T, diskCfg storage.DiskConfig) *blkFixture {
	t.Helper()
	env := sim.NewEnv(1)
	reg := metrics.NewRegistry()
	cpu := cpusched.New(env, reg, 4, ghz, cpusched.Config{})
	disk := storage.NewDisk(env, "ssd", diskCfg)
	dev := NewBlkDev(env, Config{}, "vm1",
		cpu.NewThread("vcpu", "vm1"), cpu.NewThread("iothread", "vm1"), disk)
	dev.Start()
	return &blkFixture{env: env, reg: reg, disk: disk, dev: dev}
}

func TestBlkReadHitsDisk(t *testing.T) {
	fx := newBlkFixture(t, storage.DiskConfig{})
	var elapsed time.Duration
	fx.env.Go("reader", func(p *sim.Proc) {
		start := fx.env.Now()
		fx.dev.Read(p, 10<<20) // 10 MiB
		elapsed = fx.env.Now() - start
	})
	if err := fx.env.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	fx.env.Close()
	if s := fx.disk.Stats(); s.BytesRead != 10<<20 {
		t.Fatalf("disk read %d bytes", s.BytesRead)
	}
	// 10 MiB at 500MB/s ≈ 21ms; with per-request latency and copies, below 40ms.
	if elapsed < 20*time.Millisecond || elapsed > 40*time.Millisecond {
		t.Fatalf("10MiB read took %v", elapsed)
	}
	if fx.reg.Cycles("vm1", metrics.TagCopyVirtio) == 0 {
		t.Fatal("no virtio copy cycles charged for block read")
	}
	if fx.reg.Cycles("vm1", metrics.TagDiskRead) == 0 {
		t.Fatal("no host-side block processing charged")
	}
}

func TestBlkWrite(t *testing.T) {
	fx := newBlkFixture(t, storage.DiskConfig{})
	fx.env.Go("writer", func(p *sim.Proc) {
		fx.dev.Write(p, 1<<20)
	})
	if err := fx.env.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	fx.env.Close()
	if s := fx.disk.Stats(); s.BytesWritten != 1<<20 {
		t.Fatalf("disk wrote %d bytes", s.BytesWritten)
	}
}

func TestBlkWriteAsyncReturnsBeforeDiskDone(t *testing.T) {
	// Slow disk: WriteAsync should return long before the device finishes.
	fx := newBlkFixture(t, storage.DiskConfig{WriteBandwidth: 10_000_000}) // 10MB/s
	var submitted time.Duration
	fx.env.Go("writer", func(p *sim.Proc) {
		fx.dev.WriteAsync(p, 10<<20) // 1s of device time
		submitted = fx.env.Now()
	})
	if err := fx.env.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fx.env.Close()
	if submitted > 100*time.Millisecond {
		t.Fatalf("WriteAsync blocked until %v", submitted)
	}
	if s := fx.disk.Stats(); s.BytesWritten != 10<<20 {
		t.Fatalf("disk wrote %d bytes", s.BytesWritten)
	}
}

func TestBlkRequestSplitting(t *testing.T) {
	fx := newBlkFixture(t, storage.DiskConfig{})
	fx.env.Go("reader", func(p *sim.Proc) {
		fx.dev.Read(p, 3<<20) // 3 MiB = 6 requests of 512 KiB
	})
	if err := fx.env.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	fx.env.Close()
	if s := fx.disk.Stats(); s.Reads != 6 {
		t.Fatalf("disk request count = %d, want 6", s.Reads)
	}
}
