// Package virtio models KVM's para-virtual devices: virtio-net backed by a
// per-VM vhost-net kernel thread, and virtio-blk backed by a per-VM QEMU
// iothread (vhost-blk stays disabled, as in the paper's setup).
//
// Every boundary crossing the paper's Figure 1 counts is explicit here:
// guest→host kicks (VM exits), per-frame vhost processing, the data copies
// through the virtqueues, the direct inter-VM copy between co-located VMs,
// and interrupt injection back into the guest. Each copy charges cycles on
// the thread that performs it, so the stacked CPU bars of Figures 6–8 and
// the scheduling interference of Figure 3 both emerge from the same model.
package virtio

import (
	"fmt"

	"vread/internal/cpusched"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/storage"
	"vread/internal/trace"
)

// Config holds device-model parameters. Zero values select defaults
// calibrated for the paper's era of hardware.
type Config struct {
	// CopyCyclesPerKB is the cost of moving one KiB across a protection
	// boundary. Default 256 (0.25 cycles/byte).
	CopyCyclesPerKB int64
	// VhostFrameCycles is vhost-net per-frame processing (descriptor
	// handling, skb setup). Default 3000.
	VhostFrameCycles int64
	// KickCycles is the guest-side VM-exit cost of notifying the host.
	// Default 5000.
	KickCycles int64
	// IRQInjectCycles is the host-side cost of injecting a virtual
	// interrupt. Default 3000.
	IRQInjectCycles int64
	// GuestIRQCycles is the guest-side interrupt handling cost. Default 2500.
	GuestIRQCycles int64
	// NetRingFrames is the virtio-net ring depth. Default 256.
	NetRingFrames int
	// SegmentBytes is the TSO/GRO segment size riding one ring slot.
	// Default 64 KiB.
	SegmentBytes int64
	// BlkRingReqs is the virtio-blk ring depth. Default 128.
	BlkRingReqs int
	// BlkReqBytes is the largest single block request. Default 512 KiB.
	BlkReqBytes int64
	// BlkReqCycles is host-side per-request processing for virtio-blk.
	// Default 8000.
	BlkReqCycles int64
	// SharedMemNet models the §2.2 inter-VM shared-memory alternative
	// (XenSocket/ZIVM-style): co-located transfers skip exactly the one
	// inter-VM copy, but the datanode VM and both I/O threads stay on the
	// data path. Default false.
	SharedMemNet bool
	// SRIOV models §6's modern-hardware interplay: the guest owns a NIC
	// virtual function, so frames DMA straight to the wire with no vhost
	// thread and no host-side copies. Co-located traffic hairpins through
	// the NIC's internal switch. The datanode VM stays on the data path —
	// which is the paper's point about SR-IOV being orthogonal to vRead.
	SRIOV bool
	// SRIOVTxCycles is the guest's per-frame cost of driving the VF
	// directly. Default 2500.
	SRIOVTxCycles int64
}

// WithDefaults fills zero fields with defaults.
func (c Config) WithDefaults() Config {
	if c.CopyCyclesPerKB == 0 {
		c.CopyCyclesPerKB = 256
	}
	if c.VhostFrameCycles == 0 {
		c.VhostFrameCycles = 3000
	}
	if c.KickCycles == 0 {
		c.KickCycles = 5000
	}
	if c.IRQInjectCycles == 0 {
		c.IRQInjectCycles = 3000
	}
	if c.GuestIRQCycles == 0 {
		c.GuestIRQCycles = 2500
	}
	if c.NetRingFrames == 0 {
		c.NetRingFrames = 256
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 10
	}
	if c.BlkRingReqs == 0 {
		c.BlkRingReqs = 128
	}
	if c.BlkReqBytes == 0 {
		c.BlkReqBytes = 512 << 10
	}
	if c.BlkReqCycles == 0 {
		c.BlkReqCycles = 8000
	}
	if c.SRIOVTxCycles == 0 {
		c.SRIOVTxCycles = 2500
	}
	return c
}

// CopyCycles returns the cycle cost of copying n bytes.
func (c Config) CopyCycles(n int64) int64 {
	return n * c.CopyCyclesPerKB / 1024
}

// ---------------------------------------------------------------------------
// virtio-net + vhost-net.

// NetDev is one VM's para-virtual NIC with its vhost-net thread.
type NetDev struct {
	env    *sim.Env
	cfg    Config
	vmName string
	host   string
	vcpu   *cpusched.Thread
	vhost  *cpusched.Thread
	nic    *netsim.NIC
	fabric *netsim.Fabric
	// tx is the virtio-net descriptor ring: the guest wrote every popped
	// frame, so vhostLoop must run it through sanitizeFrame before using
	// its length or destination on the host side.
	//
	//lint:source guesttaint(tx descriptors live in guest memory)
	tx      *sim.Queue[netsim.Frame]
	deliver func(fr netsim.Frame) // guest kernel rx hook
	started bool

	sriovInflight int
	sriovSig      *sim.Signal
	sriovDone     func()             // prebound descriptor-retire hook (no per-frame closure)
	rxFn          func(netsim.Frame) // prebound injectRx method value (no per-frame binding)
}

// NewNetDev creates the device. vcpu is the VM's vCPU thread (guest IRQ
// work), vhost the VM's vhost-net thread, nic the host port.
func NewNetDev(env *sim.Env, cfg Config, vmName, host string,
	vcpu, vhost *cpusched.Thread, nic *netsim.NIC, fabric *netsim.Fabric) *NetDev {
	cfg = cfg.WithDefaults()
	d := &NetDev{
		env: env, cfg: cfg, vmName: vmName, host: host,
		vcpu: vcpu, vhost: vhost, nic: nic, fabric: fabric,
		tx:       sim.NewQueue[netsim.Frame](env, cfg.NetRingFrames),
		sriovSig: sim.NewSignal(env),
	}
	d.sriovDone = func() {
		d.sriovInflight--
		d.sriovSig.Broadcast()
	}
	d.rxFn = d.injectRx
	fabric.RegisterVM(vmName, host, d)
	return d
}

// VMName returns the owning VM.
func (d *NetDev) VMName() string { return d.vmName }

// SetDeliver installs the guest kernel's frame handler. It runs in event
// context after the guest IRQ cost; the handler posts further guest work.
func (d *NetDev) SetDeliver(fn func(fr netsim.Frame)) { d.deliver = fn }

// Start launches the vhost-net service loop.
func (d *NetDev) Start() {
	if d.started {
		return
	}
	d.started = true
	d.env.Go("vhost-net:"+d.vmName, d.vhostLoop)
}

// Transmit hands a frame to the device: the caller pays the kick (VM exit)
// on the vCPU and blocks while the tx ring is full. It is not //lint:hotpath:
// charging the kick posts scheduler work items, so the no-alloc contract
// cannot hold through its callees (the per-frame cost lives in the cycle
// model, not in allocator pressure).
func (d *NetDev) Transmit(p *sim.Proc, fr netsim.Frame) {
	if fr.Payload.Len() > d.cfg.SegmentBytes {
		panic(fmt.Sprintf("virtio: frame %d exceeds segment size %d", fr.Payload.Len(), d.cfg.SegmentBytes))
	}
	if d.cfg.SRIOV {
		d.transmitSRIOV(p, fr)
		return
	}
	d.vcpu.RunT(p, d.cfg.KickCycles, metrics.TagOthers, fr.Trace)
	d.tx.Put(p, fr)
}

// transmitSRIOV drives the VF directly: no VM exit, no vhost, no host-side
// copies — the device DMAs from guest memory through the NIC (hairpinning
// locally for co-located peers) into the peer guest's buffers. Descriptors
// post asynchronously, bounded by the VF's ring depth.
func (d *NetDev) transmitSRIOV(p *sim.Proc, fr netsim.Frame) {
	d.vcpu.RunT(p, d.cfg.SRIOVTxCycles, metrics.TagOthers, fr.Trace)
	ep, ok := d.fabric.EndpointOf(fr.DstVM)
	if !ok {
		panic(fmt.Sprintf("virtio: unknown destination VM %q", fr.DstVM))
	}
	peer := ep.(*NetDev)
	dstHost, _ := d.fabric.HostOf(fr.DstVM)
	fr.DstHost = dstHost
	for d.sriovInflight >= d.cfg.NetRingFrames {
		d.sriovSig.Wait(p)
	}
	d.sriovInflight++
	d.nic.SendDMA(fr, d.sriovDone, peer.rxFn)
}

// sanitizeFrame is the host-side check of one guest-written tx descriptor:
// the payload length must fit a TSO segment (a corrupt length would inflate
// the copy charge) and the destination VM must exist in the fabric. Transmit
// enforces the same bounds guest-side, but vhost must not trust that — the
// descriptor is re-read from shared memory after the guest could have
// scribbled on it.
//
//lint:sanitizer guesttaint(rejects oversized payloads and unknown destinations before any host-side use)
func (d *NetDev) sanitizeFrame(fr netsim.Frame) (netsim.Frame, bool) {
	if fr.Payload.Len() < 0 || fr.Payload.Len() > d.cfg.SegmentBytes {
		return fr, false
	}
	if _, ok := d.fabric.HostOf(fr.DstVM); !ok {
		return fr, false
	}
	return fr, true
}

// vhostLoop drains the tx ring: per-frame processing, the guest→host copy,
// then either the direct inter-VM copy (co-located destination) or the
// physical NIC.
func (d *NetDev) vhostLoop(p *sim.Proc) {
	for {
		fr, ok := d.tx.Get(p)
		if !ok {
			return
		}
		fr, ok = d.sanitizeFrame(fr)
		if !ok {
			// A malformed descriptor is dropped like a bad skb; the guest
			// sees it as a lost frame.
			continue
		}
		n := fr.Payload.Len()
		d.vhost.RunT(p, d.cfg.VhostFrameCycles, metrics.TagVhostNet, fr.Trace)
		d.vhost.RunT(p, d.cfg.CopyCycles(n), metrics.TagCopyVirtio, fr.Trace)
		dstHost, ok := d.fabric.HostOf(fr.DstVM)
		if !ok {
			panic(fmt.Sprintf("virtio: unknown destination VM %q", fr.DstVM))
		}
		if dstHost == d.host {
			// Co-located: the sender's vhost writes straight into the peer
			// VM's receive ring — the paper's "1 inter-VM data copy".
			// Shared-memory networking (§2.2) elides exactly this copy.
			if !d.cfg.SharedMemNet {
				d.vhost.RunT(p, d.cfg.CopyCycles(n), metrics.TagCopyVirtio, fr.Trace)
			}
			peer := d.localPeer(fr.DstVM)
			d.vhost.RunT(p, d.cfg.IRQInjectCycles, metrics.TagVhostNet, fr.Trace)
			peer.injectRx(fr)
			continue
		}
		// Remote: pace into the physical NIC; wait for transmit-complete so
		// the vhost thread applies backpressure like a bounded device queue.
		sent := sim.NewSignal(d.env)
		done := false
		d.nic.SendToVM(fr, func() {
			done = true
			sent.Broadcast()
		})
		for !done {
			sent.Wait(p)
		}
	}
}

// localPeer returns the co-located destination device. Callers establish
// co-location first (dstHost == d.host); a co-located peer shares this VM's
// Env, so touching it directly is the same-Env escape hatch — and the
// assertion below turns that static claim into a runtime check.
//
//lint:sanitizer lpowner(guarded by the co-location check — the peer shares this VM's Env)
func (d *NetDev) localPeer(dstVM string) *NetDev {
	ep, ok := d.fabric.EndpointOf(dstVM)
	if !ok {
		panic(fmt.Sprintf("virtio: unknown destination VM %q", dstVM))
	}
	peer := ep.(*NetDev)
	if peer.env != d.env {
		panic(fmt.Sprintf("virtio: %s is not co-located with %s — cross-Env delivery must ride the NIC", dstVM, d.vmName))
	}
	return peer
}

// DeliverFromWire implements netsim.Endpoint: a frame arriving from the
// physical NIC is copied into the guest ring by this VM's vhost thread, then
// injected.
func (d *NetDev) DeliverFromWire(fr netsim.Frame) {
	n := fr.Payload.Len()
	d.vhost.PostT(d.cfg.VhostFrameCycles, metrics.TagVhostNet, fr.Trace, nil)
	d.vhost.PostT(d.cfg.CopyCycles(n), metrics.TagCopyVirtio, fr.Trace, nil)
	d.vhost.PostT(d.cfg.IRQInjectCycles, metrics.TagVhostNet, fr.Trace, func() {
		d.injectRx(fr)
	})
}

// injectRx charges the guest interrupt on the vCPU, then hands the frame to
// the guest kernel.
func (d *NetDev) injectRx(fr netsim.Frame) {
	d.vcpu.PostT(d.cfg.GuestIRQCycles, metrics.TagOthers, fr.Trace, func() {
		if d.deliver == nil {
			panic(fmt.Sprintf("virtio: no deliver hook on %s", d.vmName))
		}
		d.deliver(fr)
	})
}

// Stop closes the tx ring, terminating the vhost loop once drained.
func (d *NetDev) Stop() { d.tx.Close() }

// ---------------------------------------------------------------------------
// virtio-blk + QEMU iothread.

// BlkDev is one VM's para-virtual disk, served by a QEMU iothread with
// cache=none (the paper disables the hypervisor disk cache for the virtio
// path; the host page cache only serves the vRead daemon's loop mounts).
type BlkDev struct {
	env      *sim.Env
	cfg      Config
	vmName   string
	vcpu     *cpusched.Thread
	iothread *cpusched.Thread
	disk     *storage.Disk
	// reqs is the virtio-blk descriptor ring: popped requests carry
	// guest-written sizes that ioLoop must bounds-check via sanitizeBlkReq
	// before charging copies or issuing disk I/O.
	//
	//lint:source guesttaint(blk descriptors live in guest memory)
	reqs    *sim.Queue[blkReq]
	started bool
}

type blkReq struct {
	bytes  int64
	write  bool
	tr     *trace.Trace
	onDone func()
}

// NewBlkDev creates the device on the given physical disk.
func NewBlkDev(env *sim.Env, cfg Config, vmName string,
	vcpu, iothread *cpusched.Thread, disk *storage.Disk) *BlkDev {
	cfg = cfg.WithDefaults()
	return &BlkDev{
		env: env, cfg: cfg, vmName: vmName,
		vcpu: vcpu, iothread: iothread, disk: disk,
		reqs: sim.NewQueue[blkReq](env, cfg.BlkRingReqs),
	}
}

// Start launches the iothread service loop.
func (b *BlkDev) Start() {
	if b.started {
		return
	}
	b.started = true
	b.env.Go("iothread:"+b.vmName, b.ioLoop)
}

// Read performs a guest block read of n bytes, blocking p until the data is
// in guest memory. Large reads split into BlkReqBytes requests that pipeline
// through the ring.
func (b *BlkDev) Read(p *sim.Proc, n int64) {
	b.transfer(p, nil, n, false)
}

// ReadT is Read attributed to a request trace.
func (b *BlkDev) ReadT(p *sim.Proc, tr *trace.Trace, n int64) {
	b.transfer(p, tr, n, false)
}

// Write performs a guest block write of n bytes. It blocks until the device
// acknowledges (writeback caching happens above, in the guest page cache).
func (b *BlkDev) Write(p *sim.Proc, n int64) {
	b.transfer(p, nil, n, true)
}

// MaxRequestBytes returns the largest single block request.
func (b *BlkDev) MaxRequestBytes() int64 { return b.cfg.BlkReqBytes }

// TryReadAsync submits one read request without blocking (the guest
// kernel's readahead path). n must not exceed MaxRequestBytes. It reports
// false when the ring is full; the caller simply skips the readahead.
// onDone runs in guest (vCPU) context when the data is in guest memory.
func (b *BlkDev) TryReadAsync(n int64, onDone func()) bool {
	return b.TryReadAsyncT(nil, n, onDone)
}

// TryReadAsyncT is TryReadAsync attributed to a request trace.
func (b *BlkDev) TryReadAsyncT(tr *trace.Trace, n int64, onDone func()) bool {
	if n <= 0 || n > b.cfg.BlkReqBytes {
		return false
	}
	if !b.reqs.TryPut(blkReq{bytes: n, tr: tr, onDone: onDone}) {
		return false
	}
	b.vcpu.PostT(b.cfg.KickCycles, metrics.TagOthers, tr, nil)
	return true
}

// WriteAsync submits a write without waiting for completion (guest
// writeback flusher behavior). It still blocks while the ring is full,
// which is the dirty-page throttling bound.
func (b *BlkDev) WriteAsync(p *sim.Proc, n int64) {
	for n > 0 {
		req := n
		if req > b.cfg.BlkReqBytes {
			req = b.cfg.BlkReqBytes
		}
		n -= req
		b.vcpu.Run(p, b.cfg.KickCycles, metrics.TagOthers)
		b.reqs.Put(p, blkReq{bytes: req, write: true})
	}
}

func (b *BlkDev) transfer(p *sim.Proc, tr *trace.Trace, n int64, write bool) {
	if n <= 0 {
		return
	}
	remaining := 0
	done := sim.NewSignal(b.env)
	for n > 0 {
		req := n
		if req > b.cfg.BlkReqBytes {
			req = b.cfg.BlkReqBytes
		}
		n -= req
		remaining++
		b.vcpu.RunT(p, b.cfg.KickCycles, metrics.TagOthers, tr)
		b.reqs.Put(p, blkReq{bytes: req, write: write, tr: tr, onDone: func() {
			remaining--
			done.Broadcast()
		}})
	}
	for remaining > 0 {
		done.Wait(p)
	}
}

// sanitizeBlkReq is the host-side check of one guest-written block request:
// the size must be positive and fit one ring request. The guest submit
// paths clamp to the same bound, but the iothread re-reads the descriptor
// from the shared ring and must not trust the guest's copy of the check.
//
//lint:sanitizer guesttaint(rejects non-positive and oversized request sizes before copy charging and disk I/O)
func (b *BlkDev) sanitizeBlkReq(req blkReq) (blkReq, bool) {
	if req.bytes <= 0 || req.bytes > b.cfg.BlkReqBytes {
		return req, false
	}
	return req, true
}

// ioLoop services block requests: host-side request processing, the device
// transfer, the virtqueue copy, and completion interrupt.
func (b *BlkDev) ioLoop(p *sim.Proc) {
	for {
		req, ok := b.reqs.Get(p)
		if !ok {
			return
		}
		req, ok = b.sanitizeBlkReq(req)
		if !ok {
			// A malformed descriptor completes immediately with no transfer,
			// like a device rejecting an out-of-range request.
			onDone := req.onDone
			b.vcpu.PostT(b.cfg.GuestIRQCycles, metrics.TagOthers, req.tr, func() {
				if onDone != nil {
					onDone()
				}
			})
			continue
		}
		b.iothread.RunT(p, b.cfg.BlkReqCycles, metrics.TagDiskRead, req.tr)
		if req.write {
			b.iothread.RunT(p, b.cfg.CopyCycles(req.bytes), metrics.TagCopyVirtio, req.tr)
			b.disk.WriteT(p, req.tr, req.bytes)
		} else {
			b.disk.ReadT(p, req.tr, req.bytes)
			b.iothread.RunT(p, b.cfg.CopyCycles(req.bytes), metrics.TagCopyVirtio, req.tr)
		}
		b.iothread.RunT(p, b.cfg.IRQInjectCycles, metrics.TagOthers, req.tr)
		onDone := req.onDone
		b.vcpu.PostT(b.cfg.GuestIRQCycles, metrics.TagOthers, req.tr, func() {
			if onDone != nil {
				onDone()
			}
		})
	}
}

// Stop closes the request ring, terminating the iothread loop once drained.
func (b *BlkDev) Stop() { b.reqs.Close() }
