package analysis_test

import (
	"testing"

	"vread/internal/analysis"
	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/simdiscipline"
)

// TestSuppressionFullPath is the regression fixture for suppression keying:
// supa/util.go and supb/util.go share a basename and hold the same violation
// on the same line number, but only supa carries a //lint:allow. The want in
// supb must still be claimed — a basename-keyed index would suppress it.
//
// supc proves the external-test-package variant of Pass.IsTestFile: its only
// file has a package clause ending in _test but is not named *_test.go, and
// its violation must not be reported at all.
func TestSuppressionFullPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), simdiscipline.Analyzer,
		"supa", "supb", "supc")
}

// TestUnusedAllow drives the stale-suppression reporter: allowfix holds one
// used allow (silent), one stale allow for a ran analyzer (reported), and one
// allow for an analyzer outside the ran set (skipped — its staleness cannot
// be judged).
func TestUnusedAllow(t *testing.T) {
	analysistest.RunUnused(t, analysistest.TestData(t),
		[]*analysis.Analyzer{simdiscipline.Analyzer}, "allowfix")
}
