// Package par stands in for the fan-out shim: like the engine it is
// allowlisted wholesale, because it runs independent experiment cells on
// real OS threads — goroutines, WaitGroups and atomics here draw no
// findings.
package par

import (
	"sync"
	"sync/atomic"
)

// Each would trip every rule the analyzer has if it lived anywhere else.
func Each(workers, n int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
