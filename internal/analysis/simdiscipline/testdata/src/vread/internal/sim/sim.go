// Package sim stands in for the engine package: the allowlist exempts it
// from the sim-discipline invariant wholesale — it implements the Proc
// handoff protocol on real goroutines and channels.
package sim

import "sync"

var mu sync.Mutex

// Go would be a violation anywhere else; here it draws no findings.
func Go(f func()) {
	done := make(chan struct{})
	go func() {
		f()
		done <- struct{}{}
	}()
	<-done
}
