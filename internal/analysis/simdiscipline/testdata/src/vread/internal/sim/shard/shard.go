// Package shard stands in for the parallel coordinator: allowlisted like the
// engine, because the epoch barrier runs whole Envs on real worker
// goroutines — channels and goroutines here draw no findings.
package shard

// Round would trip the go-statement and channel rules anywhere else; here it
// draws no findings.
func Round(workers int, fn func(int)) {
	done := make(chan int)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			fn(w)
			done <- w
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
