// Package shardfix exercises the boundary of the shard allowlist: the same
// barrier pattern the coordinator is allowed to use is still a violation in
// any package outside vread/internal/sim/shard — the allowlist covers the
// package, not the pattern.
package shardfix

import "sync"

// Barrier mimics the coordinator's epoch round on raw primitives.
func Barrier(workers int, fn func(int)) {
	var wg sync.WaitGroup // want `sync.WaitGroup outside internal/sim`
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() { // want `raw go statement outside internal/sim`
			defer wg.Done()
			fn(w)
		}()
	}
	wg.Wait()
}

// Mailbox mimics the cross-shard handoff on a bare channel.
func Mailbox() int {
	ch := make(chan int, 1) // want `bare channel make outside internal/sim`
	ch <- 42                // want `bare channel send outside internal/sim`
	return <-ch
}
