// Package simfix exercises the sim-discipline analyzer: raw goroutines,
// bare channels, sync primitives, and real timers outside the engine.
package simfix

import (
	"sync"
	"sync/atomic"
	"time"
)

func Spawn(f func()) {
	go f() // want `raw go statement outside internal/sim`
}

func Channels() int {
	ch := make(chan int, 1) // want `bare channel make outside internal/sim`
	ch <- 1                 // want `bare channel send outside internal/sim`
	return <-ch
}

var mu sync.Mutex // want `sync.Mutex outside internal/sim`

// FanOut is the internal/par worker-pool pattern verbatim; the allowlist
// covers that one package, not the pattern, so outside it every piece is
// still flagged.
func FanOut(workers, n int, fn func(int)) {
	var next atomic.Int64 // want `sync/atomic.Int64 outside internal/sim`
	var wg sync.WaitGroup // want `sync.WaitGroup outside internal/sim`
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() { // want `raw go statement outside internal/sim`
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func Timer() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer arms a real timer`
}

// Allowed exercises the escape hatch: the directive suppresses the finding
// on the next line.
//
//lint:allow simdiscipline(fixture exercises the escape hatch)
var registry sync.Map
