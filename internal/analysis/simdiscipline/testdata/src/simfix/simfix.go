// Package simfix exercises the sim-discipline analyzer: raw goroutines,
// bare channels, sync primitives, and real timers outside the engine.
package simfix

import (
	"sync"
	"time"
)

func Spawn(f func()) {
	go f() // want `raw go statement outside internal/sim`
}

func Channels() int {
	ch := make(chan int, 1) // want `bare channel make outside internal/sim`
	ch <- 1                 // want `bare channel send outside internal/sim`
	return <-ch
}

var mu sync.Mutex // want `sync.Mutex outside internal/sim`

func Timer() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer arms a real timer`
}

// Allowed exercises the escape hatch: the directive suppresses the finding
// on the next line.
//
//lint:allow simdiscipline(fixture exercises the escape hatch)
var registry sync.Map
