package simdiscipline_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/simdiscipline"
)

func TestSimDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), simdiscipline.Analyzer,
		"simfix", "shardfix", "vread/internal/sim", "vread/internal/sim/shard", "vread/internal/par")
}
