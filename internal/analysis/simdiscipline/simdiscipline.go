// Package simdiscipline enforces that all concurrency flows through the
// deterministic engine: outside internal/sim there must be no raw go
// statements, no sync primitives, no bare channels, and no real timers.
//
// The invariant (internal/sim/sim.go): at most one goroutine — the engine
// loop or exactly one Proc — executes at a time, with explicit channel
// handoff owned by the engine. A raw `go` statement or a sync.Mutex outside
// the engine reintroduces scheduler nondeterminism that no seed can
// reproduce; sim.Proc, sim.Queue, sim.Signal, sim.Mutex and Env.Schedule are
// the sanctioned equivalents.
package simdiscipline

import (
	"go/ast"

	"vread/internal/analysis"
)

// Analyzer is the sim-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "simdiscipline",
	Doc: "forbid raw goroutines, sync primitives, bare channels and real " +
		"timers outside internal/sim (one-runnable-Proc invariant)",
	Run: run,
}

// allowedPkgs may use real concurrency: the engine implements the Proc
// handoff protocol on goroutines and channels; par is the one fan-out
// shim that runs independent experiment cells (each a whole, isolated Env)
// on real OS threads; and sim/shard is the parallel coordinator that
// advances whole Envs on par.Gang workers under conservative lookahead —
// its barrier protocol is exactly the kind of real concurrency the
// analyzer exists to keep out of simulation code.
var allowedPkgs = map[string]bool{
	"vread/internal/sim":       true,
	"vread/internal/sim/shard": true,
	"vread/internal/par":       true,
}

// syncTypes are the sync identifiers whose mere mention marks real
// concurrency.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Map": true, "Once": true, "Locker": true, "Pool": true,
}

// timerFuncs are the time package entry points that arm real timers.
var timerFuncs = map[string]bool{
	"NewTimer": true, "NewTicker": true, "Tick": true, "After": true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if allowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(v.Pos(), "raw go statement outside internal/sim breaks the one-runnable-Proc invariant (sim-discipline); start simulated processes with sim.Env.Go")
			case *ast.SendStmt:
				pass.Reportf(v.Pos(), "bare channel send outside internal/sim bypasses the engine's deterministic handoff (sim-discipline invariant); use sim.Queue or sim.Signal")
			case *ast.CallExpr:
				checkCall(pass, v)
			case *ast.SelectorExpr:
				checkSelector(pass, v)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "make" || len(call.Args) == 0 {
		return
	}
	if _, isChan := call.Args[0].(*ast.ChanType); isChan {
		pass.Reportf(call.Pos(), "bare channel make outside internal/sim bypasses the engine's deterministic handoff (sim-discipline invariant); use sim.NewQueue or sim.NewSignal")
	}
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	path, name, ok := analysis.PkgFunc(pass.TypesInfo, sel)
	if !ok {
		// Not a pkg.Name selector; could still be a type mention like
		// sync.Mutex in a field list, which PkgFunc already covers (PkgName
		// resolution works for types too).
		return
	}
	switch {
	case path == "sync" && syncTypes[name]:
		pass.Reportf(sel.Pos(), "sync.%s outside internal/sim introduces real scheduler nondeterminism (sim-discipline invariant); use the simulated primitives (sim.Mutex, sim.Signal, sim.Queue)", name)
	case path == "sync/atomic":
		pass.Reportf(sel.Pos(), "sync/atomic.%s outside internal/sim introduces real scheduler nondeterminism (sim-discipline invariant); the simulator is single-threaded by construction — plain operations suffice", name)
	case path == "time" && timerFuncs[name]:
		pass.Reportf(sel.Pos(), "time.%s arms a real timer outside internal/sim, racing the virtual clock (sim-discipline invariant); schedule virtual-time callbacks with sim.Env.Schedule", name)
	}
}
