package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
)

// VetConfig is the per-package configuration file cmd/go hands to a
// -vettool. Only the fields the suite needs are decoded; the rest of the
// protocol (facts import/export) is honored with empty placeholder files,
// since these analyzers are package-local.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes the analyzers under the go vet -vettool protocol: read the
// .cfg file, type-check the one package it describes against the export data
// cmd/go already built, and report findings. It returns the diagnostics and
// whether analysis ran (false for VetxOnly invocations, which only need the
// facts placeholder).
func RunVet(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", cfgPath, err)
	}
	// cmd/go caches the (empty) facts file; it must exist even on failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := Check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(pkg, analyzers)
}
