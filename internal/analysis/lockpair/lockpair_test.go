package lockpair_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/lockpair"
)

func TestLockPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockpair.Analyzer, "lockfix")
}
