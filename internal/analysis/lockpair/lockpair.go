// Package lockpair verifies that every simulated spinlock acquire has a
// release on all paths of the same function — by defer or by an explicit
// Unlock before every return.
//
// The invariant (paper §3.3, internal/core/ring.go): the guest↔daemon ring
// serializes requests under per-ring spinlocks (sim.Mutex in the
// reproduction). The engine panics on unlock-of-unlocked, but a *leaked*
// lock deadlocks the simulated cluster silently at some later virtual time —
// far from the buggy return path. This analyzer moves that failure to build
// time.
package lockpair

import (
	"go/ast"
	"go/types"

	"vread/internal/analysis"
)

// Analyzer is the lock-pairing checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc: "require every sim.Mutex.Lock to be paired with Unlock on all " +
		"return paths of the same function (ring spinlock invariant)",
	Run: run,
}

// skipPkgs: the engine implements the lock itself.
var skipPkgs = map[string]bool{
	"vread/internal/sim": true,
}

const mutexPath = "vread/internal/sim"
const mutexType = "Mutex"

func run(pass *analysis.Pass) error {
	if skipPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, fb := range analysis.FuncBodies(f) {
			checkFunc(pass, fb)
		}
	}
	return nil
}

// lockKey identifies a lock by the source text of its receiver expression —
// two mentions of `d.ring.reqMu` in one function are the same lock.
type lockKey string

func checkFunc(pass *analysis.Pass, fb analysis.FuncBody) {
	hooks := analysis.FlowHooks{
		Classify: func(stmt ast.Stmt, isDefer bool) ([]analysis.Held, []interface{}) {
			return classify(pass, fb, stmt, isDefer)
		},
		AtExit: func(ret *ast.ReturnStmt, held []analysis.Held) {
			for _, h := range held {
				pos := h.Pos
				where := "before falling off the end of " + fb.Name
				if ret != nil {
					pos = ret.Pos()
					where = "on this return path"
				}
				pass.Reportf(pos, "ring spinlock %s.Lock (acquired at line %d) is not released %s: the lock-pairing invariant (paper §3.3 per-slot spinlocks) requires Unlock on every path or a defer",
					h.Key, pass.Fset.Position(h.Pos).Line, where)
			}
		},
	}
	analysis.WalkPaths(fb.Body, hooks)
}

// classify finds sim.Mutex Lock/Unlock calls in one statement. Nested
// function literals are skipped — they are analyzed as their own roots —
// except under defer, where a deferred closure's Unlocks count as deferred
// releases of the enclosing function.
func classify(pass *analysis.Pass, fb analysis.FuncBody, stmt ast.Stmt, isDefer bool) (acq []analysis.Held, rel []interface{}) {
	inspect := func(n ast.Node, inLit bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recvPath, recvType, method, sel, ok := analysis.CallMethod(pass.TypesInfo, call)
		if !ok || recvPath != mutexPath || recvType != mutexType {
			return
		}
		key := lockKey(types.ExprString(sel.X))
		switch method {
		case "Lock":
			if !inLit {
				acq = append(acq, analysis.Held{Key: key, Pos: call.Pos()})
			}
		case "Unlock":
			rel = append(rel, interface{}(key))
		}
	}
	walk(stmt, isDefer, inspect)
	return acq, rel
}

// walk visits call expressions in stmt. Calls inside nested function
// literals are reported with inLit=true when the literal is deferred (its
// body will run at function exit) and are skipped entirely otherwise.
func walk(stmt ast.Stmt, isDefer bool, visit func(n ast.Node, inLit bool)) {
	var lits []*ast.FuncLit
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		visit(n, false)
		return true
	})
	if !isDefer {
		return
	}
	for _, lit := range lits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			visit(n, true)
			return true
		})
	}
}
