// Package lockfix exercises the lock-pairing analyzer against the real
// sim.Mutex type: leaks on early returns, leaks at fall-off-the-end, and the
// sanctioned defer and explicit-unlock shapes.
package lockfix

import (
	"errors"

	"vread/internal/sim"
)

var errFail = errors.New("fail")

func Leak(p *sim.Proc, mu *sim.Mutex, fail bool) {
	mu.Lock(p)
	if fail {
		return // want `ring spinlock mu.Lock \(acquired at line \d+\) is not released on this return path`
	}
	mu.Unlock()
}

func LeakEnd(p *sim.Proc, mu *sim.Mutex) {
	mu.Lock(p) // want `ring spinlock mu.Lock \(acquired at line \d+\) is not released before falling off the end of LeakEnd`
}

func Deferred(p *sim.Proc, mu *sim.Mutex, fail bool) error {
	mu.Lock(p)
	defer mu.Unlock()
	if fail {
		return errFail
	}
	return nil
}

func Explicit(p *sim.Proc, mu *sim.Mutex, fail bool) error {
	mu.Lock(p)
	if fail {
		mu.Unlock()
		return errFail
	}
	mu.Unlock()
	return nil
}

// DeferredClosure releases through a deferred closure; its Unlock counts.
func DeferredClosure(p *sim.Proc, mu *sim.Mutex) {
	mu.Lock(p)
	defer func() {
		mu.Unlock()
	}()
}

// Handoff exercises the escape hatch: the daemon releases this lock, so the
// leak on this return path is deliberate.
func Handoff(p *sim.Proc, mu *sim.Mutex, fail bool) {
	mu.Lock(p)
	if fail {
		return //lint:allow lockpair(lock handed to the daemon, which releases it)
	}
	mu.Unlock()
}
