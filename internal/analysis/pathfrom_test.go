package analysis_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"vread/internal/analysis"
)

// witnessProgram type-checks one self-contained package from source and
// returns its Program. The source has no imports, so no importer is needed.
func witnessProgram(t *testing.T, src string) *analysis.Program {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "witfix.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.Check(fset, nil, "witfix", dir, []string{file})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewProgram([]*analysis.Package{pkg})
}

const witnessSrc = `package witfix

type handler interface{ Handle(s string) }

type alpha struct{}

func (alpha) Handle(s string) { leaf(s) }

type beta struct{}

func (*beta) Handle(s string) {}

func leaf(s string) {}

func dispatch(h handler, s string) { h.Handle(s) }

func root() {
	dispatch(alpha{}, "x")
	func() {
		func() { leaf("y") }()
	}()
}
`

// TestPathFromInterfaceWitness checks the witness shape through an interface
// fan-out: the chain from root to a concrete method goes through the
// dispatching function, and PathString renders it in caller→callee order.
func TestPathFromInterfaceWitness(t *testing.T) {
	g := witnessProgram(t, witnessSrc).Graph()
	root := g.Lookup("witfix.root")
	if root == nil {
		t.Fatal("no node for witfix.root")
	}
	tree := g.ReachableFrom(root)

	for _, target := range []string{"(witfix.alpha).Handle", "(witfix.beta).Handle"} {
		n := g.Lookup(target)
		if n == nil {
			t.Fatalf("no node for %s", target)
		}
		path := analysis.PathFrom(tree, n)
		if path == nil {
			t.Fatalf("%s not reachable from root through the interface fan-out", target)
		}
		want := "witfix.root → witfix.dispatch → " + target
		if got := analysis.PathString(path); got != want {
			t.Errorf("witness for %s = %q, want %q", target, got, want)
		}
	}

	// The concrete method's body keeps the chain going: leaf is reachable
	// and its witness passes through the fan-out edge.
	leaf := g.Lookup("witfix.leaf")
	path := analysis.PathFrom(tree, leaf)
	if path == nil {
		t.Fatal("witfix.leaf not reachable from root")
	}
	if got, want := analysis.PathString(path), "witfix.root → witfix.dispatch → (witfix.alpha).Handle → witfix.leaf"; got != want {
		t.Errorf("leaf witness = %q, want %q", got, want)
	}
}

// TestPathFromClosureWitness checks the parent$N naming in witnesses:
// literals are numbered in source order under their parent, nested literals
// extend the name, and PathFrom walks through them like any other node.
func TestPathFromClosureWitness(t *testing.T) {
	g := witnessProgram(t, witnessSrc).Graph()
	root := g.Lookup("witfix.root")
	if root == nil {
		t.Fatal("no node for witfix.root")
	}
	outer := g.Lookup("witfix.root$1")
	nested := g.Lookup("witfix.root$1$1")
	if outer == nil || nested == nil {
		t.Fatalf("closure nodes missing: outer=%v nested=%v", outer, nested)
	}
	tree := g.ReachableFrom(root)
	path := analysis.PathFrom(tree, nested)
	if path == nil {
		t.Fatal("nested closure not reachable from root")
	}
	if got, want := analysis.PathString(path), "witfix.root → witfix.root$1 → witfix.root$1$1"; got != want {
		t.Errorf("closure witness = %q, want %q", got, want)
	}

	// A node outside the tree yields a nil path, not a partial one.
	if p := analysis.PathFrom(g.ReachableFrom(outer), root); p != nil {
		t.Errorf("PathFrom returned %q for an unreachable node, want nil", analysis.PathString(p))
	}
}
