package hotalloc_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "hotfix", "hothelper")
}
