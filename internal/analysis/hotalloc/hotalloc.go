// Package hotalloc statically enforces the simulator's zero-alloc hot paths.
//
// A function annotated with a //lint:hotpath line in its doc comment is a hot
// seed: the engine's schedule/fire path, the virtio ring slot path, the trace
// span recorders. The hot fact propagates through the program call graph —
// direct calls, static method calls, and the per-package function-value
// fan-out — so a helper called from a hot path is held to the same standard.
// Inside every hot function the analyzer flags constructs that heap-allocate:
//
//   - make, new, and append (growth);
//   - &T{} composite-literal addresses and slice/map literals;
//   - function literals that capture variables (non-capturing literals are
//     static and free);
//   - interface boxing: a concrete, non-pointer-shaped value converted to an
//     interface at a call argument, assignment, return, or conversion;
//   - fmt calls and non-constant string concatenation.
//
// Two deliberate blind spots keep the check honest rather than noisy: the
// argument of panic is skipped (the unwinding path is not the hot path — this
// admits the panic(fmt.Sprintf(...)) idiom), and zero-size allocations
// (struct{}{}, empty literals) are ignored.
//
// Escape hatches, both requiring a written reason:
//
//	x := &thing{}        //lint:allow hotalloc(pool refill on cold start)
//
// suppresses one finding, while the same directive in a function's doc
// comment declares the whole function a cold boundary: propagation stops
// there and its body is not checked. Use the latter for macro-scale work
// (cpusched.RunT) reachable from, but not meaningfully part of, a hot path.
//
// Ground truth is testing.AllocsPerRun: TestScheduleZeroAlloc holds the
// schedule-fire cycle at 0 allocs/op, and this analyzer keeps it that way at
// build time.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vread/internal/analysis"
)

// Analyzer flags heap allocations reachable from //lint:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name:       "hotalloc",
	Doc:        "functions marked //lint:hotpath (and everything they call) must not heap-allocate",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Graph

	var seeds []*analysis.FuncNode
	boundary := map[*analysis.FuncNode]bool{}
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			switch {
			case strings.HasPrefix(t, "lint:hotpath"):
				seeds = append(seeds, n)
			case strings.HasPrefix(t, "lint:allow hotalloc("):
				boundary[n] = true
			}
		}
	}

	// BFS from the seeds, never entering a cold boundary. g.Nodes and each
	// callee list are name-sorted, so the parent tree — and with it every
	// reported call chain — is deterministic.
	parent := map[*analysis.FuncNode]*analysis.FuncNode{}
	var queue []*analysis.FuncNode
	for _, s := range seeds {
		if boundary[s] {
			continue
		}
		if _, ok := parent[s]; !ok {
			parent[s] = s
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range g.Callees(n) {
			if boundary[c] {
				continue
			}
			if _, ok := parent[c]; !ok {
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}

	for _, n := range g.Nodes {
		if _, hot := parent[n]; hot {
			checkNode(pass, n, parent)
		}
	}
	return nil
}

// checkNode walks one hot function's body and reports allocating constructs.
func checkNode(pass *analysis.ProgramPass, n *analysis.FuncNode, parent map[*analysis.FuncNode]*analysis.FuncNode) {
	chain := analysis.PathString(analysis.PathFrom(parent, n))
	info := n.Pkg.TypesInfo
	results := resultTuple(info, n)

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			if capt := captures(info, v); len(capt) > 0 {
				pass.Reportf(v.Pos(), "closure capturing %s allocates on hot path %s",
					strings.Join(capt, ", "), chain)
			}
			// The literal body is a call-graph node of its own; it is checked
			// separately when the definition edge makes it hot.
			return false
		case *ast.CallExpr:
			return checkCall(pass, info, v, chain)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok && !zeroSize(info, cl) {
					pass.Reportf(v.Pos(), "&%s{...} escapes to the heap on hot path %s",
						typeName(info, cl), chain)
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(v); t != nil && len(v.Elts) > 0 {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(v.Pos(), "%s literal allocates on hot path %s",
						typeName(info, v), chain)
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(info.TypeOf(v)) && info.Types[v].Value == nil {
				pass.Reportf(v.Pos(), "string concatenation allocates on hot path %s", chain)
			}
		case *ast.AssignStmt:
			for i := range v.Lhs {
				if i < len(v.Rhs) && len(v.Lhs) == len(v.Rhs) {
					if lt := info.TypeOf(v.Lhs[i]); isIface(lt) && boxes(info, v.Rhs[i]) {
						pass.Reportf(v.Rhs[i].Pos(), "assignment boxes %s into %s on hot path %s",
							typeString(info.TypeOf(v.Rhs[i])), typeString(lt), chain)
					}
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(v.Results) == results.Len() {
				for i, r := range v.Results {
					if rt := results.At(i).Type(); isIface(rt) && boxes(info, r) {
						pass.Reportf(r.Pos(), "return boxes %s into %s on hot path %s",
							typeString(info.TypeOf(r)), typeString(rt), chain)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// checkCall handles the call-shaped allocation sources. The returned bool is
// the ast.Inspect recursion decision.
func checkCall(pass *analysis.ProgramPass, info *types.Info, call *ast.CallExpr, chain string) bool {
	fun := ast.Unparen(call.Fun)

	// panic(...) arguments run only while unwinding; skip the whole subtree.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false
			case "make":
				pass.Reportf(call.Pos(), "make allocates on hot path %s", chain)
				return true
			case "new":
				pass.Reportf(call.Pos(), "new allocates on hot path %s", chain)
				return true
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array on hot path %s", chain)
				return true
			}
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if path, name, ok := analysis.PkgFunc(info, sel); ok && path == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates on hot path %s", name, chain)
			return true // arguments are subsumed by the call finding
		}
	}

	// Conversion to an interface type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if isIface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion boxes %s into %s on hot path %s",
				typeString(info.TypeOf(call.Args[0])), typeString(tv.Type), chain)
		}
		return true
	}

	// Interface-typed parameters box concrete arguments.
	sig, _ := underlyingSig(info.TypeOf(call.Fun))
	if sig == nil {
		return true
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis != token.NoPos)
		if isIface(pt) && boxes(info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into %s on hot path %s",
				typeString(info.TypeOf(arg)), typeString(pt), chain)
		}
	}
	return true
}

// paramType returns the type of parameter i, unrolling variadics (unless the
// call forwards a slice with ...).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && i >= np-1 {
		if ellipsis {
			return sig.Params().At(np - 1).Type()
		}
		if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
	}
	if i < np {
		return sig.Params().At(i).Type()
	}
	return nil
}

func underlyingSig(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// resultTuple returns the node's result types (nil when unknown).
func resultTuple(info *types.Info, n *analysis.FuncNode) *types.Tuple {
	if n.Obj != nil {
		if sig, ok := n.Obj.Type().(*types.Signature); ok {
			return sig.Results()
		}
	}
	if n.Lit != nil {
		if sig, ok := underlyingSig(info.TypeOf(n.Lit)); ok {
			return sig.Results()
		}
	}
	return nil
}

// isIface reports whether t's underlying type is a non-nil interface.
func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing e into an interface allocates: the static
// type is concrete and not pointer-shaped (pointers, maps, channels,
// functions, and unsafe.Pointer fit the interface word for free), and e is
// not the nil literal or a zero-size value.
func boxes(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil || isIface(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	case *types.Struct:
		if u.NumFields() == 0 {
			return false
		}
	case *types.Array:
		if u.Len() == 0 {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// zeroSize reports whether the composite literal builds a zero-size value
// (struct{}{} and friends): taking its address allocates nothing.
func zeroSize(info *types.Info, cl *ast.CompositeLit) bool {
	t := info.TypeOf(cl)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

// captures lists the variables a function literal closes over: identifiers
// resolving to non-field variables declared in an enclosing function scope
// (package-level variables are reached directly, not captured).
func captures(info *types.Info, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // local to the literal
		}
		if scope := v.Parent(); scope == nil || v.Pkg() == nil || scope == v.Pkg().Scope() {
			return true // field promoted through embedding, or package-level
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

func typeName(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.TypeOf(cl); t != nil {
		return typeString(t)
	}
	return "composite"
}

func typeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
