// Package hothelper is called from hotfix's annotated functions: the hot
// fact must cross the package boundary through the call graph.
package hothelper

// Grow is a helper with no annotation of its own; it is hot only because
// hotfix.Fire calls it.
func Grow(xs []int, v int) []int {
	return append(xs, v) // want `append may grow its backing array on hot path hotfix.Fire → hothelper.Grow`
}

// Cold is identical but unreachable from any hot seed: no finding.
func Cold(xs []int, v int) []int {
	return append(xs, v)
}
