// Package hotfix exercises hotalloc: seeds, propagation (local, method,
// cross-package, through function values), every allocation class, the
// panic/zero-size blind spots, and both escape-hatch forms.
package hotfix

import (
	"fmt"

	"hothelper"
)

// T is a small struct whose address-of literal must be flagged.
type T struct{ x int }

// Boxer is a local empty interface for conversion-boxing findings.
type Boxer interface{}

func sink(v interface{}) { _ = v }

// handler keeps process address-taken so Dispatch's indirect call fans out
// to it.
var handler = process

// Fire is the fixture's main hot seed.
//
//lint:hotpath
func Fire(n int, name string) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // unwinding path: no finding
	}
	_ = make([]int, n) // want `make allocates on hot path hotfix\.Fire`
	_ = new(int)       // want `new allocates on hot path hotfix\.Fire`
	xs := []int{1, 2}  // want `\[\]int literal allocates on hot path hotfix\.Fire`
	xs = hothelper.Grow(xs, 3)
	_ = xs
	_ = &T{x: 1}       // want `&hotfix\.T\{\.\.\.\} escapes to the heap on hot path hotfix\.Fire`
	_ = &struct{}{}    // zero-size: no finding
	_ = fmt.Sprint(n)  // want `fmt\.Sprint allocates on hot path hotfix\.Fire`
	s := "pfx:" + name // want `string concatenation allocates on hot path hotfix\.Fire`
	_ = s
	var i interface{}
	i = n // want `assignment boxes int into interface\{\} on hot path hotfix\.Fire`
	_ = i
	sink(n)      // want `argument boxes int into interface\{\} on hot path hotfix\.Fire`
	_ = Boxer(n) // want `conversion boxes int into hotfix\.Boxer on hot path hotfix\.Fire`
	y := n
	capture := func() int { return y } // want `closure capturing y allocates on hot path hotfix\.Fire`
	_ = capture
	static := func() int { return 42 } // non-capturing: no finding
	_ = static
	_ = make([]int, 4) //lint:allow hotalloc(cold-start warmup buffer)
	ColdSink()
}

// Result boxes its return value.
//
//lint:hotpath
func Result(v int) interface{} {
	return v // want `return boxes int into interface\{\} on hot path hotfix\.Result`
}

// Ring checks propagation into methods.
type Ring struct{ xs []int }

// Push is the ring's hot entry.
//
//lint:hotpath
func (r *Ring) Push(v int) {
	r.xs = append(r.xs, v) // want `append may grow its backing array on hot path \(hotfix\.Ring\)\.Push`
}

// Dispatch calls through a function value: the per-package fan-out must make
// every address-taken same-signature function hot.
//
//lint:hotpath
func Dispatch(fn func(int)) {
	fn(1)
}

func process(v int) {
	_ = make([]int, v) // want `make allocates on hot path hotfix\.Dispatch → hotfix\.process`
}

// ColdSink is reachable from Fire but declared a cold boundary: nothing in
// it is reported and propagation stops here.
//
//lint:allow hotalloc(macro-scale helper, not part of the per-event loop)
func ColdSink() {
	_ = make([]int, 1024) // boundary: no finding
}

// Unreferenced is not reachable from any seed: no findings.
func Unreferenced() {
	_ = make([]int, 8)
	_ = fmt.Sprint("cold")
}
