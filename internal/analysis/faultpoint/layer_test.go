package faultpoint

import (
	"strings"
	"testing"

	"vread/internal/faults"
)

// TestLayerTableGolden pins the layer→package table: adding a faultpoint
// family is a one-line change here and a one-line change to the golden, and
// any drift (a renamed package, a dropped family) fails loudly instead of
// silently exempting the family from the layer check.
func TestLayerTableGolden(t *testing.T) {
	const golden = `disk. -> core, storage
net. -> netsim
rdma. -> netsim
ring. -> core
daemon. -> core
mount. -> core
rack. -> cluster
shard. -> hdfs
domain. -> netsim
`
	var b strings.Builder
	for _, e := range layerTable {
		b.WriteString(e.prefix + " -> " + strings.Join(e.pkgs, ", ") + "\n")
	}
	if b.String() != golden {
		t.Fatalf("layer table drifted from golden:\ngot:\n%swant:\n%s", b.String(), golden)
	}
}

// TestLayerTableCoversEveryPoint checks no canonical faultpoint family is
// silently exempt from the layer check: every registered point name must
// resolve to a table entry.
func TestLayerTableCoversEveryPoint(t *testing.T) {
	for _, p := range faults.Points() {
		if allowedPkgs(p) == nil {
			t.Errorf("faultpoint %q matches no layerTable prefix — its family is exempt from the layer check", p)
		}
	}
}

// TestLayerTablePrefixesDisjoint guards the lookup's first-match semantics:
// no prefix may shadow another.
func TestLayerTablePrefixesDisjoint(t *testing.T) {
	for i, a := range layerTable {
		for j, b := range layerTable {
			if i != j && strings.HasPrefix(b.prefix, a.prefix) {
				t.Errorf("layerTable prefix %q shadows %q", a.prefix, b.prefix)
			}
		}
	}
}
