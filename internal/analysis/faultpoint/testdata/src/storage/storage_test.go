// The fixture's arming tests: spec literals and constant mentions that arm
// points, plus ParseSpec literals in every grammar state. Unarmed is — by
// design — mentioned nowhere in this file.
package storage_test

import (
	"testing"

	"faults"
)

func TestArming(t *testing.T) {
	// Arms DiskSlow (inside a spec string) and validates cleanly.
	if _, err := faults.ParseSpec("disk.read.slow:p=0.5,delay=2ms"); err != nil {
		t.Fatal(err)
	}
	// Arms DiskErr through its constant, and exercises concatenation.
	_ = faults.DiskErr
	if _, err := faults.ParseSpec("disk.read." + "error:after=3,max=1"); err != nil {
		t.Fatal(err)
	}
	// Arms Ghost and NetDrop and Custom by naming them.
	_ = "disk.read.ghost"
	_ = "net.frame.drop"
	_ = "custom.point"
}

func TestBadSpecs(t *testing.T) {
	_, _ = faults.ParseSpec("disk.read.bogus")        // want `spec literal does not parse: unknown faultpoint "disk\.read\.bogus"`
	_, _ = faults.ParseSpec("disk.read.slow:zap=1")   // want `spec literal does not parse: unknown option "zap" in rule "disk\.read\.slow:zap=1"`
	_, _ = faults.ParseSpec("disk.read.slow:delay=x") // want `spec literal does not parse: bad delay value in rule "disk\.read\.slow:delay=x"`
	_, _ = faults.ParseSpec("disk.read.slow:oops=1")  //lint:allow faultpoint(negative fixture: the parse error is the subject under test)
}
