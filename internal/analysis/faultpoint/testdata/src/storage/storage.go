// Package storage is the fixture's disk layer: legitimate evaluation sites,
// a typo'd point, a wrong-layer evaluation, a non-constant evaluation, and
// the allow escape hatch.
package storage

import "faults"

// Disk evaluates its own layer's points.
type Disk struct {
	plan *faults.Plan
}

// Read evaluates disk points in the disk layer: fine.
func (d *Disk) Read() {
	if d.plan.Should(faults.DiskSlow) {
		return
	}
	if _, ok := d.plan.ShouldDelay(faults.DiskErr); ok {
		return
	}
	if d.plan.Should(faults.Unarmed) {
		return
	}
	if d.plan.Should(faults.Custom) { // no layer entry for custom.*: allowed anywhere
		return
	}
}

// Typo evaluates a point that was never declared.
func (d *Disk) Typo() {
	if d.plan.Should("disk.read.sloww") { // want `faultpoint "disk\.read\.sloww" is not declared in the faults registry`
		return
	}
}

// WrongLayer evaluates a net-layer point from the storage package.
func (d *Disk) WrongLayer() {
	if d.plan.Should(faults.NetDrop) { // want `faultpoint "net\.frame\.drop" belongs to the net\.\* layer and must not be evaluated in package storage`
		return
	}
}

// Opaque evaluates through a variable, which the cross-check cannot see.
func (d *Disk) Opaque(name string) {
	if d.plan.Should(name) { // want `faultpoint name passed to Should is not a constant`
		return
	}
}

// Sanctioned is Opaque with a documented suppression.
func (d *Disk) Sanctioned(name string) {
	if d.plan.Should(name) { //lint:allow faultpoint(the point name is validated by the caller against Points())
		return
	}
}
