// Package faults is a miniature fault registry for the faultpoint fixture:
// the same declaration shape as the real one, with deliberate registry rot.
package faults

import "time"

// Declared points. Orphan is declared but never registered in Points();
// Ghost is registered but never evaluated anywhere; Unarmed is evaluated
// but no test arms it.
const (
	DiskSlow = "disk.read.slow"
	DiskErr  = "disk.read.error"
	Ghost    = "disk.read.ghost"   // want `faultpoint Ghost = "disk\.read\.ghost" is registered but never evaluated`
	Unarmed  = "disk.read.unarmed" // want `faultpoint Unarmed = "disk\.read\.unarmed" has no arming test`
	Orphan   = "disk.read.orphan"  // want `faultpoint constant Orphan = "disk\.read\.orphan" is not registered in Points\(\)`
	Custom   = "custom.point"      // no layer table entry: exempt from the layer check
	NetDrop  = "net.frame.drop"    // want `faultpoint NetDrop = "net\.frame\.drop" is never evaluated in its declared layer \(want one of: netsim; evaluated in: storage\)`
)

// notAPoint must not be mistaken for a faultpoint declaration.
const notAPoint = "just a sentence, not a point"

// Points lists the registered faultpoints.
func Points() []string {
	return []string{DiskSlow, DiskErr, Ghost, Unarmed, Custom, NetDrop}
}

// Plan is the evaluation half of the registry.
type Plan struct{}

// Should evaluates a faultpoint.
func (p *Plan) Should(point string) bool { return false }

// ShouldDelay evaluates a delay-class faultpoint.
func (p *Plan) ShouldDelay(point string) (time.Duration, bool) { return 0, false }

// ParseSpec parses a spec string (grammar only; the analyzer never calls it).
func ParseSpec(s string) (int, error) { return 0, nil }
