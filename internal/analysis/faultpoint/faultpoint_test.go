package faultpoint_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/faultpoint"
)

func TestFaultPoint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), faultpoint.Analyzer, "faults", "storage")
}
