// Package faultpoint cross-checks the fault-injection registry against its
// use, program-wide. The contract it enforces (DESIGN.md §10):
//
//   - every faultpoint registered in the faults package's Points() list is
//     evaluated (Plan.Should / Plan.ShouldDelay) at least once, in the layer
//     its name prefix declares (disk.* in storage or core, net.*/rdma.* in
//     netsim, ring.*/daemon.*/mount.* in core, rack.* in cluster, shard.* in
//     hdfs, domain.* in netsim);
//   - every registered point is armed by at least one test — a fixture that
//     names the point, as a string (possibly inside a spec string) or
//     through its constant;
//   - no evaluation names an undeclared point (a typo in the constant or a
//     point that was removed but not its evaluation site);
//   - every declared dotted-name string constant in the faults package is
//     registered in Points() (declaring without registering makes the point
//     unparsable in specs);
//   - every spec string literal handed to ParseSpec in a test parses under
//     the spec grammar, with point names drawn from the registered set.
//
// The grammar check reimplements ParseSpec's syntax locally on purpose: the
// real parser validates names against the real, compiled-in point list,
// while the analyzer must validate fixture specs against the *analyzed*
// program's declarations.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"path"
	"strconv"
	"strings"
	"time"

	"vread/internal/analysis"
)

// Analyzer is the faultpoint registry cross-checker.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "cross-check fault-injection points: declared ⇔ evaluated in the " +
		"owning layer ⇔ armed by a test; spec literals in tests must parse",
	RunProgram: run,
}

// layerTable maps a point-name prefix to the package base names allowed to
// evaluate it. Prefixes absent from the table are exempt from the layer
// check (but still need evaluation and arming).
var layerTable = []struct {
	prefix string
	pkgs   []string
}{
	{"disk.", []string{"core", "storage"}},
	{"net.", []string{"netsim"}},
	{"rdma.", []string{"netsim"}},
	{"ring.", []string{"core"}},
	{"daemon.", []string{"core"}},
	{"mount.", []string{"core"}},
	{"rack.", []string{"cluster"}},
	{"shard.", []string{"hdfs"}},
	{"domain.", []string{"netsim"}},
}

func allowedPkgs(point string) []string {
	for _, e := range layerTable {
		if strings.HasPrefix(point, e.prefix) {
			return e.pkgs
		}
	}
	return nil
}

// declPoint is one registered faultpoint.
type declPoint struct {
	name  string // constant identifier
	value string // the point string
	pos   token.Pos
}

func run(pass *analysis.ProgramPass) error {
	fpkg := faultsPackage(pass.Prog)
	if fpkg == nil {
		return nil // program does not contain a fault registry
	}
	consts, registered := declarations(fpkg)

	declared := map[string]*declPoint{}
	var points []*declPoint
	for _, d := range consts {
		if !registered[d.name] {
			if looksLikePoint(d.value) {
				pass.Reportf(d.pos, "faultpoint constant %s = %q is not registered in Points(): specs naming it will not parse", d.name, d.value)
			}
			continue
		}
		declared[d.value] = d
		points = append(points, d)
	}

	evaled := map[string][]string{} // point value -> package base names that eval it
	for _, pkg := range pass.Prog.Pkgs {
		if pkg == fpkg {
			continue // ShouldDelay calls Should internally
		}
		checkEvals(pass, pkg, declared, evaled)
	}

	armed := armedPoints(pass.Prog, points)

	for _, d := range points {
		want := allowedPkgs(d.value)
		if bases := evaled[d.value]; len(bases) == 0 {
			pass.Reportf(d.pos, "faultpoint %s = %q is registered but never evaluated: no layer calls Should/ShouldDelay with it", d.name, d.value)
		} else if want != nil && !intersects(bases, want) {
			pass.Reportf(d.pos, "faultpoint %s = %q is never evaluated in its declared layer (want one of: %s; evaluated in: %s)",
				d.name, d.value, strings.Join(want, ", "), strings.Join(bases, ", "))
		}
		if !armed[d.value] {
			pass.Reportf(d.pos, "faultpoint %s = %q has no arming test: no test file names it in a spec, string, or constant", d.name, d.value)
		}
	}

	checkSpecLiterals(pass, declared)
	return nil
}

// faultsPackage finds the program's fault registry: the package with base
// name "faults" that declares a Points function.
func faultsPackage(prog *analysis.Program) *analysis.Package {
	for _, pkg := range prog.Pkgs {
		if path.Base(pkg.Path) != "faults" {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Points" {
					return pkg
				}
			}
		}
	}
	return nil
}

// declarations collects the faults package's top-level string constants and
// the set of constant names registered through the Points() return literal.
func declarations(fpkg *analysis.Package) ([]*declPoint, map[string]bool) {
	var consts []*declPoint
	registered := map[string]bool{}
	for _, f := range fpkg.Files {
		for _, d := range f.Decls {
			switch v := d.(type) {
			case *ast.GenDecl:
				if v.Tok != token.CONST {
					continue
				}
				for _, spec := range v.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						val, err := strconv.Unquote(lit.Value)
						if err != nil {
							continue
						}
						consts = append(consts, &declPoint{name: name.Name, value: val, pos: name.Pos()})
					}
				}
			case *ast.FuncDecl:
				if v.Recv != nil || v.Name.Name != "Points" || v.Body == nil {
					continue
				}
				ast.Inspect(v.Body, func(n ast.Node) bool {
					if cl, ok := n.(*ast.CompositeLit); ok {
						for _, el := range cl.Elts {
							if id, ok := el.(*ast.Ident); ok {
								registered[id.Name] = true
							}
						}
					}
					return true
				})
			}
		}
	}
	return consts, registered
}

// looksLikePoint reports whether a string constant has the dotted-name shape
// of a faultpoint ("layer.thing.mode"); other string constants in the faults
// package are none of this analyzer's business.
func looksLikePoint(s string) bool {
	if strings.Count(s, ".") < 1 || strings.ContainsAny(s, " \t\n:;,=") || s == "" {
		return false
	}
	for _, part := range strings.Split(s, ".") {
		if part == "" {
			return false
		}
	}
	return true
}

// checkEvals finds every Plan.Should / Plan.ShouldDelay call in one package,
// validates the argument against the declared set and the layer table, and
// records which package evaluated which point.
func checkEvals(pass *analysis.ProgramPass, pkg *analysis.Package, declared map[string]*declPoint, evaled map[string][]string) {
	base := path.Base(pkg.Path)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recvPath, recvType, method, _, ok := analysis.CallMethod(pkg.TypesInfo, call)
			if !ok || recvType != "Plan" || path.Base(recvPath) != "faults" {
				return true
			}
			if method != "Should" && method != "ShouldDelay" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			tv, ok := pkg.TypesInfo.Types[call.Args[0]]
			if ok && tv.Value != nil && tv.Value.Kind() != constant.String {
				return true // not a faultpoint name; other overloads don't exist
			}
			if !ok || tv.Value == nil {
				pass.Reportf(call.Args[0].Pos(), "faultpoint name passed to %s is not a constant: the declared⇔evaluated cross-check cannot see it", method)
				return true
			}
			val := constant.StringVal(tv.Value)
			d, ok := declared[val]
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "faultpoint %q is not declared in the faults registry (Points())", val)
				return true
			}
			if want := allowedPkgs(d.value); want != nil && !contains(want, base) {
				pass.Reportf(call.Pos(), "faultpoint %q belongs to the %s* layer and must not be evaluated in package %s (allowed: %s)",
					val, d.value[:strings.Index(d.value, ".")+1], base, strings.Join(want, ", "))
			}
			if !contains(evaled[val], base) {
				evaled[val] = append(evaled[val], base)
			}
			return true
		})
	}
}

// armedPoints scans every test file (in-package and external, parse-only)
// for mentions of each point: its string value inside any string literal, or
// its constant name as a bare or selected identifier.
func armedPoints(prog *analysis.Program, points []*declPoint) map[string]bool {
	armed := map[string]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BasicLit:
					if v.Kind != token.STRING {
						return true
					}
					s, err := strconv.Unquote(v.Value)
					if err != nil {
						return true
					}
					for _, d := range points {
						if strings.Contains(s, d.value) {
							armed[d.value] = true
						}
					}
				case *ast.Ident:
					for _, d := range points {
						if v.Name == d.name {
							armed[d.value] = true
						}
					}
				}
				return true
			})
		}
	}
	return armed
}

// checkSpecLiterals validates every string literal passed directly to a
// ParseSpec call in a test file against the spec grammar and the declared
// point set. Specs built in variables or helpers are out of reach — and
// deliberately so: the table-driven negative tests in the faults package
// keep their invalid specs in tables.
func checkSpecLiterals(pass *analysis.ProgramPass, declared map[string]*declPoint) {
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				var name string
				switch fn := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					name = fn.Name
				case *ast.SelectorExpr:
					name = fn.Sel.Name
				}
				if name != "ParseSpec" {
					return true
				}
				lit, ok := literalString(call.Args[0])
				if !ok {
					return true
				}
				if err := validateSpec(lit, declared); err != "" {
					pass.Reportf(call.Args[0].Pos(), "spec literal does not parse: %s", err)
				}
				return true
			})
		}
	}
}

// literalString evaluates an expression made only of string literals and
// `+` concatenations.
func literalString(e ast.Expr) (string, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, ok1 := literalString(v.X)
		r, ok2 := literalString(v.Y)
		return l + r, ok1 && ok2
	}
	return "", false
}

// validateSpec is the local reimplementation of the ParseSpec grammar:
//
//	point[:opt,...][;point[:opt,...]]...
//	opt = p=<float> | prob=<float> | after=<int> | max=<int> | delay=<duration>
//
// It returns "" on success or a description of the first problem.
func validateSpec(s string, declared map[string]*declPoint) string {
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return "empty faultpoint name in " + strconv.Quote(part)
		}
		if _, ok := declared[name]; !ok {
			return "unknown faultpoint " + strconv.Quote(name)
		}
		if opts == "" {
			continue
		}
		for _, opt := range strings.Split(opts, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return "bad option " + strconv.Quote(opt) + " in rule " + strconv.Quote(part)
			}
			var err error
			switch key {
			case "p", "prob":
				_, err = strconv.ParseFloat(val, 64)
			case "after", "max":
				_, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				_, err = time.ParseDuration(val)
			default:
				return "unknown option " + strconv.Quote(key) + " in rule " + strconv.Quote(part)
			}
			if err != nil {
				return "bad " + key + " value in rule " + strconv.Quote(part)
			}
		}
	}
	return ""
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func intersects(a, b []string) bool {
	for _, x := range a {
		if contains(b, x) {
			return true
		}
	}
	return false
}
