// Package errdiscipline enforces the simulator's error-matching discipline:
//
//   - errors are compared with errors.Is, never ==/!=. The core read path
//     wraps its typed set (ErrDaemonFailed, ErrShortRead, ErrBadRange, …)
//     with %w as failures propagate up the stack, so an == against a
//     sentinel silently stops matching the moment anyone adds context;
//   - in the core package — the layer that owns the typed set and the
//     retry boundary (retryableRead walks errors with errors.Is) — every
//     error an exported function fabricates with fmt.Errorf must wrap a
//     cause or a typed sentinel with %w. The rule extends to *all*
//     functions in lib.go and remote.go, exported or not: those files sit
//     on the retry path, and an unwrappable error there reclassifies a
//     retryable failure as permanent.
//
// Comparisons against nil are, of course, fine.
package errdiscipline

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"strings"

	"vread/internal/analysis"
)

// Analyzer is the error-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: "compare errors with errors.Is, not ==; core's exported and " +
		"retry-boundary functions must return typed or %w-wrapped errors",
	RunProgram: run,
}

// retryFiles are the core files on the retry path, where the wrap rule
// applies to unexported functions too.
var retryFiles = map[string]bool{"lib.go": true, "remote.go": true}

func run(pass *analysis.ProgramPass) error {
	for _, pkg := range pass.Prog.Pkgs {
		checkComparisons(pass, pkg)
		if path.Base(pkg.Path) == "core" {
			checkWrapping(pass, pkg)
		}
	}
	return nil
}

// checkComparisons flags ==/!= where both operands are error interfaces and
// neither is nil.
func checkComparisons(pass *analysis.ProgramPass, pkg *analysis.Package) {
	for _, f := range pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isErrorExpr(pkg, be.X) || !isErrorExpr(pkg, be.Y) {
				return true
			}
			op := "=="
			if be.Op == token.NEQ {
				op = "!="
			}
			pass.Reportf(be.OpPos, "errors compared with %s never match once wrapped: use errors.Is(%s, %s)",
				op, types.ExprString(be.X), types.ExprString(be.Y))
			return true
		})
	}
}

// isErrorExpr reports whether e is a non-nil expression of the interface
// type error.
func isErrorExpr(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.IsNil() {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// checkWrapping flags fmt.Errorf calls without %w inside functions the wrap
// rule covers: exported error-returning functions anywhere in the package,
// and every error-returning function in the retry-boundary files.
func checkWrapping(pass *analysis.ProgramPass, pkg *analysis.Package) {
	for _, f := range pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		base := path.Base(pass.Prog.Fset.Position(f.Pos()).Filename)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsError(pkg, fd) {
				continue
			}
			if !fd.Name.IsExported() && !retryFiles[base] {
				continue
			}
			where := "exported function " + fd.Name.Name
			if retryFiles[base] {
				where = fd.Name.Name + " in retry-boundary file " + base
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				p, name, ok := analysis.PkgFunc(pkg.TypesInfo, sel)
				if !ok || p != "fmt" || name != "Errorf" || len(call.Args) == 0 {
					return true
				}
				tv, ok := pkg.TypesInfo.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true
				}
				if strings.Contains(constant.StringVal(tv.Value), "%w") {
					return true
				}
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w in %s: callers cannot errors.Is the result — wrap the cause or a typed sentinel (errors.go)",
					where)
				return true
			})
		}
	}
}

// returnsError reports whether the function's last result is error.
func returnsError(pkg *analysis.Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	last := fd.Type.Results.List[len(fd.Type.Results.List)-1]
	t := pkg.TypesInfo.TypeOf(last.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
