// Package app exercises the comparison rule from a consumer package.
package app

import (
	"errors"
	"io"

	"core"
)

// Drain compares errors every way.
func Drain(next func() error) int {
	n := 0
	for {
		err := next()
		if err == nil { // nil comparisons are fine
			n++
			continue
		}
		if err == io.EOF { // want `errors compared with == never match once wrapped: use errors\.Is\(err, io\.EOF\)`
			return n
		}
		if err != core.ErrShort { // want `errors compared with != never match once wrapped: use errors\.Is\(err, core\.ErrShort\)`
			return -1
		}
		if errors.Is(err, core.ErrShort) { // the sanctioned form
			continue
		}
		return -1
	}
}

// Pump uses the one == that is deliberate: instrumentation counting exact,
// unwrapped sentinels from its own channel.
func Pump(next func() error, sentinel error) int {
	n := 0
	for {
		if err := next(); err == sentinel { //lint:allow errdiscipline(the harness injects this exact value; wrapping cannot occur between injection and here)
			return n
		}
		n++
	}
}
