package core

import "fmt"

// Open is exported and returns error: the wrap rule applies anywhere in the
// package.
func Open(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty name") // want `fmt\.Errorf without %w in exported function Open`
	}
	if name == "." {
		return fmt.Errorf("core: bad name %q: %w", name, ErrShort)
	}
	return nil
}

// helper is unexported and outside the retry files: exempt.
func helper() error {
	return fmt.Errorf("core: helper detail")
}

// Describe returns no error: fmt.Errorf-free formatting is fine, and the
// rule does not apply.
func Describe(name string) string {
	return fmt.Sprintf("core: %s", name)
}
