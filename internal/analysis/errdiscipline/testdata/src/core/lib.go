// Package core is the errdiscipline fixture's stand-in for the real core
// package: this file plays the retry boundary (the rule covers unexported
// functions here too).
package core

import (
	"errors"
	"fmt"
)

// ErrShort is the fixture's typed sentinel.
var ErrShort = errors.New("core: short read")

// readAt is unexported but lives in lib.go: the wrap rule applies.
func readAt(off int64) error {
	if off < 0 {
		return fmt.Errorf("core: bad offset %d", off) // want `fmt\.Errorf without %w in readAt in retry-boundary file lib\.go`
	}
	return nil
}

// retry wraps properly on the retry path.
func retry(off int64) error {
	if err := readAt(off); err != nil {
		return fmt.Errorf("core: retrying %d: %w", off, err)
	}
	return nil
}

// probe fabricates a deliberate leaf error and says why.
func probe() error {
	return fmt.Errorf("core: probe sentinel, never matched by callers") //lint:allow errdiscipline(the probe error is compared by string in the harness, by design)
}
