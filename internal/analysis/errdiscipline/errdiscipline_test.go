package errdiscipline_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/errdiscipline"
)

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errdiscipline.Analyzer, "core", "app")
}
