package analysis

// The interprocedural layer: a deterministic cross-package call graph over
// one loaded Program, shared by the hotalloc, lockorder, and errdiscipline
// analyzers (and available to any future one through ProgramPass.Graph).
//
// Construction is purely static and intentionally approximate, in the
// conservative direction each client needs:
//
//   - direct calls and method calls resolve through the type checker
//     (generic instantiations collapse onto their origin declaration);
//   - a call through an interface method fans out to every method in the
//     program whose receiver type implements the interface (static method-set
//     check, no pointer analysis);
//   - a call through a function value fans out to every function or literal
//     in the *same package* whose value is taken somewhere and whose
//     signature matches — the per-package approximation documented in
//     DESIGN.md §10;
//   - a function literal gets an edge from its enclosing function at its
//     definition site (defining a closure on a path is treated as calling
//     it), and is its own node so facts propagate into its body.
//
// Everything is sorted — nodes by name, callees by name, edges by
// (caller, callee) — so traversals and diagnostics replay byte-identically
// for the same source tree.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function in the call graph: a declared function or method,
// or a function literal.
type FuncNode struct {
	// Name is the node's unique, stable identifier:
	//
	//	pkg/path.Func             top-level function
	//	(pkg/path.Type).Method    method (pointer receivers unstarred)
	//	<parent>$N                Nth function literal inside <parent>
	Name string
	// Obj is the declared function object (generic origin for instantiated
	// calls); nil for literals.
	Obj *types.Func
	// Pkg is the package the node's body lives in.
	Pkg *Package
	// Decl is the declaration (nil for literals).
	Decl *ast.FuncDecl
	// Lit is the literal (nil for declarations).
	Lit *ast.FuncLit
	// Body is the function body; never nil for graph nodes.
	Body *ast.BlockStmt
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Edge is one caller→callee pair.
type Edge struct {
	Caller, Callee *FuncNode
}

// CallGraph is the program's static call graph.
type CallGraph struct {
	// Nodes holds every function in the program, sorted by Name.
	Nodes []*FuncNode

	byName  map[string]*FuncNode
	byObj   map[*types.Func]*FuncNode
	callees map[*FuncNode][]*FuncNode // sorted by Name, deduplicated
	callers map[*FuncNode][]*FuncNode // sorted by Name, deduplicated
}

// Lookup returns the node with the given stable name, or nil.
func (g *CallGraph) Lookup(name string) *FuncNode { return g.byName[name] }

// NodeOf returns the node for a declared function object (resolving generic
// instantiations to their origin), or nil for functions outside the program.
// The loader type-checks each package from source but resolves its imports
// from export data, so a cross-package callee arrives as a different
// *types.Func than the one its home package defined — the stable node name
// bridges the two object worlds when the pointer lookup misses.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if n := g.byObj[fn]; n != nil {
		return n
	}
	return g.byName[funcName(fn)]
}

// Callees returns n's direct callees, sorted by name.
func (g *CallGraph) Callees(n *FuncNode) []*FuncNode { return g.callees[n] }

// Callers returns n's direct callers, sorted by name.
func (g *CallGraph) Callers(n *FuncNode) []*FuncNode { return g.callers[n] }

// Edges returns every edge sorted by (caller name, callee name).
func (g *CallGraph) Edges() []Edge {
	var out []Edge
	for _, n := range g.Nodes {
		for _, c := range g.callees[n] {
			out = append(out, Edge{Caller: n, Callee: c})
		}
	}
	return out
}

// EdgeList renders the sorted edge list one "caller -> callee" per line —
// the canonical byte-comparable form the determinism test asserts on.
func (g *CallGraph) EdgeList() string {
	var b strings.Builder
	for _, e := range g.Edges() {
		b.WriteString(e.Caller.Name)
		b.WriteString(" -> ")
		b.WriteString(e.Callee.Name)
		b.WriteByte('\n')
	}
	return b.String()
}

// ReachableFrom walks the graph breadth-first from the roots and returns the
// BFS tree as a node→parent map (roots map to themselves). The map doubles
// as the reachable set and, through PathFrom, as the deterministic
// shortest-call-chain witness for diagnostics. Traversal order is
// deterministic: roots in argument order, callees in name order.
func (g *CallGraph) ReachableFrom(roots ...*FuncNode) map[*FuncNode]*FuncNode {
	parent := make(map[*FuncNode]*FuncNode)
	var queue []*FuncNode
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := parent[r]; !ok {
			parent[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range g.callees[n] {
			if _, ok := parent[c]; !ok {
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}
	return parent
}

// PathFrom reconstructs the call chain root→…→n from a ReachableFrom tree.
// It returns nil when n is not reachable.
func PathFrom(tree map[*FuncNode]*FuncNode, n *FuncNode) []*FuncNode {
	if _, ok := tree[n]; !ok {
		return nil
	}
	var rev []*FuncNode
	for {
		rev = append(rev, n)
		p := tree[n]
		if p == n {
			break
		}
		n = p
	}
	out := make([]*FuncNode, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// PathString renders a call chain as "a → b → c".
func PathString(path []*FuncNode) string {
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = n.Name
	}
	return strings.Join(names, " → ")
}

// ---------------------------------------------------------------------------
// Construction.

// BuildCallGraph builds the deterministic static call graph over the
// program's packages.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		byName:  make(map[string]*FuncNode),
		byObj:   make(map[*types.Func]*FuncNode),
		callees: make(map[*FuncNode][]*FuncNode),
		callers: make(map[*FuncNode][]*FuncNode),
	}
	b := &graphBuilder{
		g:         g,
		litNode:   make(map[*ast.FuncLit]*FuncNode),
		valueRefs: make(map[*Package][]*FuncNode),
		methods:   make(map[string][]*FuncNode),
		edgeSeen:  make(map[[2]*FuncNode]bool),
	}

	pkgs := append([]*Package(nil), prog.Pkgs...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	// Pass 1: nodes — declared functions first (so literal ordinals can hang
	// off their enclosing declaration), then literals in source order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Name: funcName(obj), Obj: obj, Pkg: pkg, Decl: fd, Body: fd.Body}
				g.byName[n.Name] = n
				g.byObj[obj] = n
				g.Nodes = append(g.Nodes, n)
				b.addLiterals(pkg, n, fd.Body)
			}
		}
	}

	// Pass 2: per-package value-referenced functions (indirect-call fan-out
	// candidates) and the program-wide method index (interface fan-out).
	for _, pkg := range pkgs {
		b.collectValueRefs(pkg)
	}
	for _, n := range g.Nodes {
		if n.Obj != nil {
			if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				b.methods[n.Obj.Name()] = append(b.methods[n.Obj.Name()], n)
			}
		}
	}

	// Pass 3: edges.
	for _, n := range append([]*FuncNode(nil), g.Nodes...) {
		b.addEdges(n)
	}

	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Name < g.Nodes[j].Name })
	for _, list := range g.callees {
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	}
	for _, list := range g.callers {
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	}
	return g
}

type graphBuilder struct {
	g         *CallGraph
	litNode   map[*ast.FuncLit]*FuncNode
	valueRefs map[*Package][]*FuncNode // address-taken funcs/literals, per package
	methods   map[string][]*FuncNode   // method name -> concrete method nodes
	edgeSeen  map[[2]*FuncNode]bool
}

// addLiterals registers every function literal under parent as a node named
// parent$N, in source order, recursively.
func (b *graphBuilder) addLiterals(pkg *Package, parent *FuncNode, body *ast.BlockStmt) {
	ord := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ord++
		ln := &FuncNode{Name: fmt.Sprintf("%s$%d", parent.Name, ord), Pkg: pkg, Lit: lit, Body: lit.Body}
		b.g.byName[ln.Name] = ln
		b.litNode[lit] = ln
		b.g.Nodes = append(b.g.Nodes, ln)
		b.addLiterals(pkg, ln, lit.Body)
		return false // nested literals handled by the recursive call
	})
	_ = ord
}

// collectValueRefs records functions whose value escapes into a variable,
// field, argument, or return — the candidate targets of indirect calls in
// the same package — plus every literal that is not immediately invoked.
func (b *graphBuilder) collectValueRefs(pkg *Package) {
	callPos := make(map[ast.Expr]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callPos[ast.Unparen(call.Fun)] = true
			}
			return true
		})
	}
	seen := make(map[*FuncNode]bool)
	add := func(n *FuncNode) {
		if n != nil && !seen[n] {
			seen[n] = true
			b.valueRefs[pkg] = append(b.valueRefs[pkg], n)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Ident:
				if fn, ok := pkg.TypesInfo.Uses[v].(*types.Func); ok && !callPos[ast.Expr(v)] {
					add(b.g.NodeOf(fn))
				}
			case *ast.SelectorExpr:
				if fn, ok := pkg.TypesInfo.Uses[v.Sel].(*types.Func); ok && !callPos[ast.Expr(v)] {
					add(b.g.NodeOf(fn))
				}
			case *ast.FuncLit:
				if !callPos[ast.Expr(v)] {
					add(b.litNode[v])
				}
			}
			return true
		})
	}
}

func (b *graphBuilder) edge(from, to *FuncNode) {
	if from == nil || to == nil {
		return
	}
	key := [2]*FuncNode{from, to}
	if b.edgeSeen[key] {
		return
	}
	b.edgeSeen[key] = true
	b.g.callees[from] = append(b.g.callees[from], to)
	b.g.callers[to] = append(b.g.callers[to], from)
}

// addEdges walks one node's body, stopping at nested literals (they are
// their own nodes and get a definition edge).
func (b *graphBuilder) addEdges(n *FuncNode) {
	pkg := n.Pkg
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			b.edge(n, b.litNode[v])
			return false
		case *ast.CallExpr:
			b.callEdges(n, pkg, v)
		}
		return true
	})
}

func (b *graphBuilder) callEdges(caller *FuncNode, pkg *Package, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.TypesInfo.Uses[fn].(type) {
		case *types.Func:
			b.edge(caller, b.g.NodeOf(obj))
			return
		case *types.Var:
			b.indirectEdges(caller, pkg, obj.Type())
			return
		case *types.Builtin, *types.TypeName:
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
					b.interfaceEdges(caller, pkg, fn, obj)
					return
				}
			}
			b.edge(caller, b.g.NodeOf(obj))
			return
		}
		if obj, ok := pkg.TypesInfo.Uses[fn.Sel].(*types.Var); ok {
			// Function-typed field or package-level variable.
			b.indirectEdges(caller, pkg, obj.Type())
			return
		}
	case *ast.FuncLit:
		b.edge(caller, b.litNode[fn])
		return
	}
	// Anything else with function type (index expressions, call results,
	// conversions applied then called) is an indirect call too.
	if t := pkg.TypesInfo.TypeOf(call.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			b.indirectEdges(caller, pkg, t)
		}
	}
}

// interfaceEdges fans an interface-method call out to every concrete method
// in the program whose receiver implements the interface.
func (b *graphBuilder) interfaceEdges(caller *FuncNode, pkg *Package, sel *ast.SelectorExpr, iface *types.Func) {
	recvT := iface.Type().(*types.Signature).Recv().Type()
	it, ok := recvT.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, m := range b.methods[iface.Name()] {
		sig, _ := m.Obj.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, it) {
			b.edge(caller, m)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), it) {
			b.edge(caller, m)
		}
	}
	_ = sel
	_ = pkg
}

// indirectEdges approximates a call through a function value: every
// value-referenced function or literal in the same package with an identical
// signature is a candidate target.
func (b *graphBuilder) indirectEdges(caller *FuncNode, pkg *Package, t types.Type) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	want := sigKey(sig)
	for _, cand := range b.valueRefs[pkg] {
		var cs *types.Signature
		if cand.Obj != nil {
			cs, _ = cand.Obj.Type().(*types.Signature)
		} else if lt := cand.Pkg.TypesInfo.TypeOf(cand.Lit); lt != nil {
			cs, _ = lt.Underlying().(*types.Signature)
		}
		if cs != nil && sigKey(cs) == want {
			b.edge(caller, cand)
		}
	}
}

// sigKey renders a signature's parameters and results (receiver excluded,
// so method values compare like plain functions) for matching.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	tuple := func(t *types.Tuple) {
		b.WriteByte('(')
		for i := 0; i < t.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(t.At(i).Type(), nil))
		}
		b.WriteByte(')')
	}
	tuple(sig.Params())
	tuple(sig.Results())
	if sig.Variadic() {
		b.WriteString("...")
	}
	return b.String()
}

// funcName builds the stable node name for a declared function or method.
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return fmt.Sprintf("(%s.%s).%s", obj.Pkg().Path(), obj.Name(), fn.Name())
			}
			return fmt.Sprintf("(%s).%s", obj.Name(), fn.Name())
		}
		return fmt.Sprintf("(%s).%s", types.TypeString(t, nil), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}
