// Package all registers the complete vread-lint analyzer suite.
package all

import (
	"vread/internal/analysis"
	"vread/internal/analysis/determinism"
	"vread/internal/analysis/lockpair"
	"vread/internal/analysis/simdiscipline"
	"vread/internal/analysis/tracecharge"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		simdiscipline.Analyzer,
		lockpair.Analyzer,
		tracecharge.Analyzer,
	}
}
