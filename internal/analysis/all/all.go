// Package all registers the complete vread-lint analyzer suite.
package all

import (
	"vread/internal/analysis"
	"vread/internal/analysis/determinism"
	"vread/internal/analysis/errdiscipline"
	"vread/internal/analysis/faultpoint"
	"vread/internal/analysis/guesttaint"
	"vread/internal/analysis/hotalloc"
	"vread/internal/analysis/lockorder"
	"vread/internal/analysis/lockpair"
	"vread/internal/analysis/lpowner"
	"vread/internal/analysis/simdiscipline"
	"vread/internal/analysis/tracecharge"
	"vread/internal/analysis/unitflow"
)

// Analyzers returns the full suite in stable order: the per-package
// analyzers first, then the interprocedural (whole-program) ones.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		simdiscipline.Analyzer,
		lockpair.Analyzer,
		tracecharge.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		faultpoint.Analyzer,
		errdiscipline.Analyzer,
		guesttaint.Analyzer,
		unitflow.Analyzer,
		lpowner.Analyzer,
	}
}
