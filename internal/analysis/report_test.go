package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestMarshalReportGolden pins the versioned report's exact bytes: the
// version field leads, the field order inside each diagnostic is fixed, and
// repeated marshals of the same input are identical. CI diffs
// lint-report.json artifacts across builds, so any drift here is a schema
// change and must come with a ReportVersion bump.
func TestMarshalReportGolden(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "guesttaint", Pos: token.Position{Filename: "/repo/a.go", Line: 7, Column: 3}, Message: `tainted "x" hits sink`},
		{Analyzer: "unitflow", Pos: token.Position{Filename: "/repo/b.go", Line: 12, Column: 9}, Message: "bytes\nmixed"},
	}
	timings := []AnalyzerTiming{
		{Analyzer: "guesttaint", Millis: 42, Findings: 1},
		{Analyzer: "unitflow", Millis: 3, Findings: 1},
	}
	want := "{\"version\":2,\n\"timings\":[\n" +
		"  {\"analyzer\":\"guesttaint\",\"ms\":42,\"findings\":1},\n" +
		"  {\"analyzer\":\"unitflow\",\"ms\":3,\"findings\":1}\n" +
		"],\n\"diagnostics\":[\n" +
		"  {\"file\":\"/repo/a.go\",\"line\":7,\"col\":3,\"analyzer\":\"guesttaint\",\"message\":\"tainted \\\"x\\\" hits sink\"},\n" +
		"  {\"file\":\"/repo/b.go\",\"line\":12,\"col\":9,\"analyzer\":\"unitflow\",\"message\":\"bytes\\nmixed\"}\n" +
		"]\n}\n"
	got := MarshalReport(diags, timings)
	if string(got) != want {
		t.Fatalf("report bytes drifted from golden:\ngot  %q\nwant %q", got, want)
	}
	if again := MarshalReport(diags, timings); !bytes.Equal(got, again) {
		t.Fatalf("marshal is not byte-stable:\nfirst  %q\nsecond %q", got, again)
	}

	var decoded struct {
		Version int `json:"version"`
		Timings []struct {
			Analyzer string `json:"analyzer"`
			Millis   int64  `json:"ms"`
			Findings int    `json:"findings"`
		} `json:"timings"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, got)
	}
	if decoded.Version != ReportVersion {
		t.Fatalf("version field = %d, want ReportVersion = %d", decoded.Version, ReportVersion)
	}
	if len(decoded.Diagnostics) != 2 || decoded.Diagnostics[1].Message != "bytes\nmixed" {
		t.Fatalf("diagnostics did not round-trip: %+v", decoded.Diagnostics)
	}
	if len(decoded.Timings) != 2 || decoded.Timings[0].Millis != 42 || decoded.Timings[1].Analyzer != "unitflow" {
		t.Fatalf("timing rows did not round-trip: %+v", decoded.Timings)
	}
}

func TestMarshalReportEmpty(t *testing.T) {
	want := "{\"version\":2,\n\"timings\":[],\n\"diagnostics\":[]\n}\n"
	if got := string(MarshalReport(nil, nil)); got != want {
		t.Fatalf("empty report = %q, want %q", got, want)
	}
}
