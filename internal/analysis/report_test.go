package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestMarshalReportGolden pins the versioned report's exact bytes: the
// version field leads, the field order inside each diagnostic is fixed, and
// repeated marshals of the same input are identical. CI diffs
// lint-report.json artifacts across builds, so any drift here is a schema
// change and must come with a ReportVersion bump.
func TestMarshalReportGolden(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "guesttaint", Pos: token.Position{Filename: "/repo/a.go", Line: 7, Column: 3}, Message: `tainted "x" hits sink`},
		{Analyzer: "unitflow", Pos: token.Position{Filename: "/repo/b.go", Line: 12, Column: 9}, Message: "bytes\nmixed"},
	}
	want := "{\"version\":1,\n\"diagnostics\":[\n" +
		"  {\"file\":\"/repo/a.go\",\"line\":7,\"col\":3,\"analyzer\":\"guesttaint\",\"message\":\"tainted \\\"x\\\" hits sink\"},\n" +
		"  {\"file\":\"/repo/b.go\",\"line\":12,\"col\":9,\"analyzer\":\"unitflow\",\"message\":\"bytes\\nmixed\"}\n" +
		"]\n}\n"
	got := MarshalReport(diags)
	if string(got) != want {
		t.Fatalf("report bytes drifted from golden:\ngot  %q\nwant %q", got, want)
	}
	if again := MarshalReport(diags); !bytes.Equal(got, again) {
		t.Fatalf("marshal is not byte-stable:\nfirst  %q\nsecond %q", got, again)
	}

	var decoded struct {
		Version     int `json:"version"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, got)
	}
	if decoded.Version != ReportVersion {
		t.Fatalf("version field = %d, want ReportVersion = %d", decoded.Version, ReportVersion)
	}
	if len(decoded.Diagnostics) != 2 || decoded.Diagnostics[1].Message != "bytes\nmixed" {
		t.Fatalf("diagnostics did not round-trip: %+v", decoded.Diagnostics)
	}
}

func TestMarshalReportEmpty(t *testing.T) {
	want := "{\"version\":1,\n\"diagnostics\":[]\n}\n"
	if got := string(MarshalReport(nil)); got != want {
		t.Fatalf("empty report = %q, want %q", got, want)
	}
}
