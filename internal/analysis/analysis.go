// Package analysis is a small, dependency-free re-implementation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus the machinery the
// vread-lint suite shares: a go-list-driven package loader, a //lint:allow
// suppression index, and helpers for resolving calls against type
// information.
//
// The suite exists because the simulator's core invariants — bit-reproducible
// runs, all concurrency through sim.Proc, paired ring spinlocks, trace
// contexts threaded through every layer — live in comments and code review
// otherwise. Each analyzer turns one of those comments into a build break.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one named invariant checker. Exactly one of Run and RunProgram
// is set: Run analyzers see one package at a time, RunProgram analyzers see
// the whole loaded program plus its call graph (the interprocedural layer)
// and only run under RunSuite — the vet driver, which hands us one package
// per process, skips them.
type Analyzer struct {
	// Name is the analyzer's identifier, used in -run filters and in
	// //lint:allow directives.
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunProgram inspects the whole program; nil for per-package analyzers.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ReportVersion identifies the lint-report.json schema. Bump it whenever a
// field is added, removed, or reordered, so report diffs across PRs are
// attributable to findings rather than format drift. Version 2 added the
// per-analyzer timing rows.
const ReportVersion = 2

// AnalyzerTiming is one analyzer's wall-clock cost and surviving finding
// count for the report's timing rows.
type AnalyzerTiming struct {
	Analyzer string
	Millis   int64
	Findings int
}

// MarshalReport renders the versioned lint report: a fixed-field-order
// object wrapping the timing and diagnostics arrays. The diagnostics bytes
// are identical on every run over the same tree — the golden test pins
// them; the timing rows are the report's one wall-clock-dependent part
// (their ms values vary run to run, their order and fields do not).
func MarshalReport(diags []Diagnostic, timings []AnalyzerTiming) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "{\"version\":%d,\n\"timings\":[", ReportVersion)
	for i, tr := range timings {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		fmt.Fprintf(&b, `{"analyzer":%s,"ms":%d,"findings":%d}`,
			jsonString(tr.Analyzer), tr.Millis, tr.Findings)
	}
	if len(timings) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("],\n\"diagnostics\":")
	b.Write(MarshalDiagnostics(diags))
	b.WriteString("}\n")
	return []byte(b.String())
}

// MarshalDiagnostics renders diagnostics as a JSON array with a fixed field
// order (file, line, col, analyzer, message) and one object per line. The
// input must already be sorted (RunAnalyzers/RunSuite output is); given the
// same diagnostics the bytes are identical on every run, which is what lets
// CI diff lint-report.json artifacts across builds.
func MarshalDiagnostics(diags []Diagnostic) []byte {
	var b strings.Builder
	b.WriteString("[")
	for i, d := range diags {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		fmt.Fprintf(&b, `{"file":%s,"line":%d,"col":%d,"analyzer":%s,"message":%s}`,
			jsonString(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			jsonString(d.Analyzer), jsonString(d.Message))
	}
	if len(diags) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	return []byte(b.String())
}

// jsonString quotes s as a JSON string (the subset of escaping Go source
// positions and lint messages can contain).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a test file. The analyzers enforce
// invariants on simulator code only; tests may consult the wall clock or
// spin goroutines to exercise the engine from outside. Both the in-package
// form (foo_test.go, package foo) and the external variant (package foo_test)
// count: the filename check catches the common case, and the package-clause
// check catches external-test-package files however they are named — fixture
// trees and generated files don't always follow the _test.go convention.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	if strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go") {
		return true
	}
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return strings.HasSuffix(f.Name.Name, "_test")
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Running analyzers with suppression.

// allowRx matches //lint:allow <analyzer>(<reason>) directives. The reason
// is mandatory: a suppression with no recorded justification is itself a
// finding.
var allowRx = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_-]+)\s*\(([^)]*)\)`)

// allowDirective is one //lint:allow comment: its claim (analyzer, file, the
// two lines it covers) plus whether any diagnostic actually hit it — the
// input to the stale-suppression report.
type allowDirective struct {
	analyzer string
	pos      token.Position
	used     bool
}

// suppressions indexes //lint:allow directives by analyzer, file, and line.
type suppressions struct {
	byKey      map[string]map[string]map[int]*allowDirective
	directives []*allowDirective // in comment order
}

// buildSuppressions indexes every //lint:allow directive in the files. A
// directive suppresses findings of the named analyzer on its own line and on
// the line immediately below (so it works both as a trailing comment and as
// a standalone comment above the offending statement). Directives with an
// empty reason are returned as diagnostics instead.
func buildSuppressions(fset *token.FileSet, files []*ast.File) (*suppressions, []Diagnostic) {
	sup := &suppressions{byKey: map[string]map[string]map[int]*allowDirective{}}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("lint:allow %s() needs a reason: write //lint:allow %s(why this is safe)", m[1], m[1]),
					})
					continue
				}
				d := &allowDirective{analyzer: m[1], pos: pos}
				sup.directives = append(sup.directives, d)
				byFile := sup.byKey[m[1]]
				if byFile == nil {
					byFile = map[string]map[int]*allowDirective{}
					sup.byKey[m[1]] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = map[int]*allowDirective{}
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = d
				lines[pos.Line+1] = d
			}
		}
	}
	return sup, bad
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	byFile := s.byKey[d.Analyzer]
	if byFile == nil {
		return false
	}
	dir := byFile[d.Pos.Filename][d.Pos.Line]
	if dir == nil {
		return false
	}
	dir.used = true
	return true
}

// unused returns a diagnostic for every directive naming one of the ran
// analyzers that suppressed nothing — a stale //lint:allow whose finding has
// since been fixed (or whose analyzer name is misspelled). Only meaningful
// after a full-suite run: a -run subset would mark every other analyzer's
// allows stale.
func (s *suppressions) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.directives {
		if d.used || !ran[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "unused-allow",
			Pos:      d.pos,
			Message:  fmt.Sprintf("stale suppression: no %s finding on this line anymore; delete the //lint:allow", d.analyzer),
		})
	}
	return out
}

// RunAnalyzers applies the analyzers to one type-checked package and returns
// the surviving findings sorted by position. //lint:allow directives are
// honored here so every driver (standalone, vettool, analysistest) behaves
// identically.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup, bad := buildSuppressions(pkg.Fset, pkg.Files)
	diags := bad
	for _, a := range analyzers {
		var out []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &out,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range out {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// ---------------------------------------------------------------------------
// Type-resolution helpers shared by the analyzers.

// PkgFunc resolves a call/selector of the form pkg.Name where pkg is an
// imported package, returning the package path and function name. ok is
// false for method calls, locals, and anything else.
func PkgFunc(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Method resolves a method selector to (receiver type package path, receiver
// type name, method name). ok is false when sel is not a method on a named
// type.
func Method(info *types.Info, sel *ast.SelectorExpr) (recvPath, recvType, name string, ok bool) {
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), fn.Name(), true
}

// CallMethod is Method applied to a call expression's callee.
func CallMethod(info *types.Info, call *ast.CallExpr) (recvPath, recvType, name string, sel *ast.SelectorExpr, ok bool) {
	s, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", nil, false
	}
	recvPath, recvType, name, ok = Method(info, s)
	return recvPath, recvType, name, s, ok
}

// IsMap reports whether the expression has map type.
func IsMap(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// RootIdent returns the leftmost identifier of a selector/index/call chain
// (x in x.y[i].z), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}
