package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vread/internal/analysis"
)

// writeModule lays out a throwaway module under a temp dir and returns it.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.22\n",
	})
	_, err := analysis.Load(dir, []string{"./nope"})
	if err == nil {
		t.Fatalf("Load of a nonexistent package succeeded")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

func TestLoadSyntaxError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module tmp.test/m\n\ngo 1.22\n",
		"a/bad.go": "package a\n\nfunc Broken( {\n",
	})
	_, err := analysis.Load(dir, []string{"./a"})
	if err == nil {
		t.Fatalf("Load of a package with a syntax error succeeded")
	}
}

// TestLoadExportDataAbsent drives the importer's missing-export path: the
// dependency fails to compile, so `go list -export` records no export data
// for it, and type-checking the importing target must fail cleanly rather
// than panic or silently skip the import.
func TestLoadExportDataAbsent(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"tmp.test/m/b\"\n\nvar V = b.X\n",
		"b/b.go": "package b\n\nvar X int = \"not an int\"\n",
	})
	_, err := analysis.Load(dir, []string{"./a"})
	if err == nil {
		t.Fatalf("Load succeeded despite a dependency that does not compile")
	}
	if !strings.Contains(err.Error(), "tmp.test/m/b") {
		t.Errorf("error does not name the broken dependency: %v", err)
	}
}
