// Package lockorder checks that simulated mutexes are always acquired in a
// consistent global order, and never re-acquired while already held.
//
// The invariant: sim.Mutex is FIFO and non-reentrant, so two processes that
// take the same pair of locks in opposite orders deadlock the simulated
// cluster at some later virtual time, far from either acquisition site — the
// same failure mode lockpair moves to build time for leaks, but across
// functions. The analyzer abstracts every lock to its *class* — the struct
// field that owns it, "(pkg.Type).field" — builds a static acquired-while-
// holding graph over the whole program (flow-walking each function with the
// call graph supplying transitive acquisition summaries for callees), and
// reports every cycle and every same-class double-acquire.
//
// Keying by field means all instances of a class (every per-datanode entry
// of a `map[string]*sim.Mutex` field, say) share one node. That is the
// useful abstraction for ordering — code that locks two instances of the
// same class in arbitrary instance order is itself a deadlock unless an
// instance order is imposed, which is exactly what the self-cycle report
// flags. Deliberate instance-ordered acquisition can be suppressed with
// //lint:allow lockorder(reason).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vread/internal/analysis"
)

// Analyzer is the lock-ordering checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "require a consistent global sim.Mutex acquisition order: no " +
		"cycles in the acquired-while-holding graph, no double-acquires",
	RunProgram: run,
}

const mutexPath = "vread/internal/sim"
const mutexType = "Mutex"

// edgeInfo is the first-seen witness for one acquired-while-holding edge.
type edgeInfo struct {
	pos token.Pos // acquisition (or call) site that created the edge
	via string    // "" for a direct Lock; callee chain for summarized calls
}

type checker struct {
	pass  *analysis.ProgramPass
	graph *analysis.CallGraph

	// direct[node] = lock classes Lock()ed directly in the node's body.
	direct map[*analysis.FuncNode][]string
	// summary[node] = classes acquired by the node or anything it calls.
	summary map[*analysis.FuncNode][]string

	// edges[from][to] = witnesses of "to acquired while holding from", in
	// discovery order (node-name order, then source order — deterministic).
	edges map[string]map[string][]edgeInfo
	// recvText[pos] = source text of the Lock receiver at that acquisition,
	// used to tell a same-instance re-acquire from a same-class one.
	recvText map[token.Pos]string
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass:     pass,
		graph:    pass.Graph,
		direct:   make(map[*analysis.FuncNode][]string),
		summary:  make(map[*analysis.FuncNode][]string),
		edges:    make(map[string]map[string][]edgeInfo),
		recvText: make(map[token.Pos]string),
	}
	// The engine package implements the lock itself.
	var nodes []*analysis.FuncNode
	for _, n := range c.graph.Nodes {
		if n.Pkg.Path == mutexPath || pass.IsTestFile(n.Pos()) {
			continue
		}
		nodes = append(nodes, n)
		c.direct[n] = c.directAcquires(n)
	}
	for _, n := range nodes {
		c.summarize(n, make(map[*analysis.FuncNode]bool))
	}
	for _, n := range nodes {
		c.walk(n)
	}
	c.reportCycles()
	return nil
}

// directAcquires collects the classes of every Lock call lexically inside
// the node's body, nested literals excluded (they are their own nodes).
func (c *checker) directAcquires(n *analysis.FuncNode) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != ast.Node(n.Lit) {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cls, kind := c.mutexCall(n, call); kind == "Lock" && !seen[cls] {
			seen[cls] = true
			out = append(out, cls)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// summarize computes the transitive acquisition summary of n (memoized;
// cycles in the call graph contribute what was known when re-entered).
func (c *checker) summarize(n *analysis.FuncNode, walking map[*analysis.FuncNode]bool) []string {
	if s, ok := c.summary[n]; ok {
		return s
	}
	if walking[n] {
		return c.direct[n]
	}
	walking[n] = true
	set := map[string]bool{}
	for _, cls := range c.direct[n] {
		set[cls] = true
	}
	for _, callee := range c.graph.Callees(n) {
		for _, cls := range c.summarize(callee, walking) {
			set[cls] = true
		}
	}
	delete(walking, n)
	out := make([]string, 0, len(set))
	for cls := range set {
		out = append(out, cls)
	}
	sort.Strings(out)
	c.summary[n] = out
	return out
}

// walk flow-walks one function, recording acquired-while-holding edges at
// every direct Lock and — through the callee summaries — at every call.
func (c *checker) walk(n *analysis.FuncNode) {
	hooks := analysis.FlowHooks{
		Classify: func(stmt ast.Stmt, isDefer bool) ([]analysis.Held, []interface{}) {
			return c.classify(n, stmt, isDefer)
		},
		AtExit: func(ret *ast.ReturnStmt, held []analysis.Held) {},
		AtAcquire: func(h analysis.Held, held []analysis.Held) {
			cls := h.Key.(string)
			for _, a := range held {
				if a.Key.(string) != cls {
					c.edge(a.Key.(string), cls, edgeInfo{pos: h.Pos})
					continue
				}
				line := c.pass.Prog.Fset.Position(a.Pos).Line
				if c.recvText[h.Pos] == c.recvText[a.Pos] {
					c.pass.Reportf(h.Pos, "lock %s is acquired while already held (acquired at line %d): sim.Mutex is not reentrant, this deadlocks the simulated cluster",
						cls, line)
				} else {
					c.pass.Reportf(h.Pos, "lock %s may be acquired while an instance of it is already held (%s at line %d): impose an instance order or release the first lock",
						cls, c.recvText[a.Pos], line)
				}
			}
		},
		Events: func(stmt ast.Stmt, isDefer bool) []analysis.Held {
			if isDefer {
				// A deferred call runs at exit; deferred Unlocks are the
				// release idiom and deferred lock-taking does not occur.
				return nil
			}
			return c.callEvents(n, stmt)
		},
		AtEvent: func(ev analysis.Held, held []analysis.Held) {
			if len(held) == 0 {
				return
			}
			callee := ev.Key.(*analysis.FuncNode)
			for _, cls := range c.summary[callee] {
				for _, a := range held {
					// A same-class summary acquisition makes a self-loop
					// edge, reported as a reentrancy cycle.
					c.edge(a.Key.(string), cls, edgeInfo{pos: ev.Pos, via: callee.Name})
				}
			}
		},
	}
	analysis.WalkPaths(n.Body, hooks)
}

// classify reports Lock calls as acquisitions and non-deferred Unlock calls
// as releases. Deferred Unlocks are NOT releases here: a lock under
// `defer mu.Unlock()` stays held for the rest of the function, which is the
// window the ordering invariant cares about (the opposite of lockpair's
// leak accounting, which retires defer-released locks immediately).
func (c *checker) classify(n *analysis.FuncNode, stmt ast.Stmt, isDefer bool) (acq []analysis.Held, rel []interface{}) {
	ast.Inspect(stmt, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // separate graph node, walked on its own
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		cls, kind := c.mutexCall(n, call)
		switch kind {
		case "Lock":
			acq = append(acq, analysis.Held{Key: cls, Pos: call.Pos()})
		case "Unlock":
			if !isDefer {
				rel = append(rel, interface{}(cls))
			}
		}
		return true
	})
	return acq, rel
}

// callEvents returns one event per resolvable call in stmt: direct calls to
// program functions, and function-literal definitions (defining a closure on
// a path is conservatively treated as calling it, matching the call graph).
func (c *checker) callEvents(n *analysis.FuncNode, stmt ast.Stmt) []analysis.Held {
	var out []analysis.Held
	ast.Inspect(stmt, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			if ln := c.litNode(n, v); ln != nil {
				out = append(out, analysis.Held{Key: ln, Pos: v.Pos()})
			}
			return false
		case *ast.CallExpr:
			if cls, _ := c.mutexCall(n, v); cls != "" {
				return true // the Lock/Unlock itself, handled by Classify
			}
			var obj types.Object
			switch fn := ast.Unparen(v.Fun).(type) {
			case *ast.Ident:
				obj = n.Pkg.TypesInfo.Uses[fn]
			case *ast.SelectorExpr:
				obj = n.Pkg.TypesInfo.Uses[fn.Sel]
			}
			if fn, ok := obj.(*types.Func); ok {
				if callee := c.graph.NodeOf(fn); callee != nil {
					out = append(out, analysis.Held{Key: callee, Pos: v.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// litNode finds the graph node of a literal nested in n by position.
func (c *checker) litNode(n *analysis.FuncNode, lit *ast.FuncLit) *analysis.FuncNode {
	for _, cand := range c.graph.Nodes {
		if cand.Lit == lit {
			return cand
		}
	}
	return nil
}

// mutexCall classifies call as a sim.Mutex Lock/Unlock and resolves the
// receiver's lock class; kind is "" for any other call.
func (c *checker) mutexCall(n *analysis.FuncNode, call *ast.CallExpr) (cls, kind string) {
	recvPath, recvType, method, sel, ok := analysis.CallMethod(n.Pkg.TypesInfo, call)
	if !ok || recvPath != mutexPath || recvType != mutexType {
		return "", ""
	}
	if method != "Lock" && method != "Unlock" {
		return "", ""
	}
	if method == "Lock" {
		c.recvText[call.Pos()] = types.ExprString(sel.X)
	}
	return c.lockClass(n, sel.X), method
}

// lockClass abstracts a lock expression to its class:
//
//	x.field          -> (pkg.Type).field   field of a named struct type
//	x.field[k]       -> (pkg.Type).field   one instance of a lock map/slice
//	pkgvar           -> pkg/path.name      package-level lock
//	local            -> class of its defining assignment's RHS
//	anything else    -> <node>:<expr>      function-local fallback class
func (c *checker) lockClass(n *analysis.FuncNode, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch v := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := n.Pkg.TypesInfo.Selections[v]; ok && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return "(" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")." + v.Sel.Name
			}
		}
		if obj, ok := n.Pkg.TypesInfo.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.IndexExpr:
		return c.lockClass(n, v.X)
	case *ast.Ident:
		obj, ok := n.Pkg.TypesInfo.Uses[v].(*types.Var)
		if !ok {
			break
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		if cls := c.localOrigin(n, obj); cls != "" {
			return cls
		}
	}
	return n.Name + ":" + types.ExprString(expr)
}

// localOrigin resolves a local lock variable to the class of the expression
// it was assigned from, scanning the node body for its defining assignments.
// Assignments from sim.NewMutex (fresh locks being installed into a map) are
// skipped in favor of an assignment that names the owning container.
func (c *checker) localOrigin(n *analysis.FuncNode, obj *types.Var) string {
	var cls string
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if cls != "" {
			return false
		}
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def := n.Pkg.TypesInfo.Defs[id]
			use := n.Pkg.TypesInfo.Uses[id]
			if def != obj && use != obj {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if _, isCall := rhs.(*ast.CallExpr); isCall {
				continue // sim.NewMutex or another constructor: no class
			}
			if got := c.lockClass(n, rhs); !strings.Contains(got, ":") {
				cls = got
				return false
			}
		}
		return true
	})
	return cls
}

// edge records a witness for from→to.
func (c *checker) edge(from, to string, info edgeInfo) {
	m := c.edges[from]
	if m == nil {
		m = make(map[string][]edgeInfo)
		c.edges[from] = m
	}
	m[to] = append(m[to], info)
}

// reportCycles finds every elementary cycle reachable by DFS over the
// sorted class graph and reports each once, at its first edge's witness.
func (c *checker) reportCycles() {
	classes := make([]string, 0, len(c.edges))
	for cls := range c.edges {
		classes = append(classes, cls)
	}
	sort.Strings(classes)

	reported := map[string]bool{}
	var stack []string
	onStack := map[string]bool{}
	var dfs func(cls string)
	dfs = func(cls string) {
		stack = append(stack, cls)
		onStack[cls] = true
		next := make([]string, 0, len(c.edges[cls]))
		for to := range c.edges[cls] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if to == cls {
				// Self-loops only arise from call summaries (direct
				// same-class re-acquires are reported by AtAcquire), and
				// every witness is its own site: report them all, so a
				// suppression at one site cannot mask another.
				for _, info := range c.edges[cls][cls] {
					msg := "lock " + cls + " may be acquired while an instance of it is already held"
					if info.via != "" {
						msg += " (through the call to " + info.via + ")"
					}
					c.pass.Reportf(info.pos, "%s: sim.Mutex is not reentrant, and two instances of one class locked in arbitrary instance order deadlock", msg)
				}
				continue
			}
			if onStack[to] {
				i := len(stack) - 1
				for i >= 0 && stack[i] != to {
					i--
				}
				cyc := append(append([]string(nil), stack[i:]...), to)
				c.reportCycleOnce(cyc, reported)
				continue
			}
			dfs(to)
		}
		onStack[cls] = false
		stack = stack[:len(stack)-1]
	}
	for _, cls := range classes {
		dfs(cls)
	}
}

// reportCycleOnce canonicalizes (rotates the smallest class first) so each
// cycle is reported exactly once however the DFS entered it.
func (c *checker) reportCycleOnce(cyc []string, reported map[string]bool) {
	body := cyc[:len(cyc)-1] // drop the closing repeat
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), body[min:]...), body[:min]...)
	rot = append(rot, rot[0])
	key := strings.Join(rot, "→")
	if reported[key] {
		return
	}
	reported[key] = true
	c.reportCycle(rot)
}

func (c *checker) reportCycle(cyc []string) {
	info := c.edges[cyc[0]][cyc[1]][0]
	var detail []string
	for i := 0; i+1 < len(cyc); i++ {
		e := c.edges[cyc[i]][cyc[i+1]][0]
		at := c.pass.Prog.Fset.Position(e.pos)
		step := cyc[i+1] + " while holding " + cyc[i] + " at " + at.Filename + ":" + itoa(at.Line)
		if e.via != "" {
			step += " (via " + e.via + ")"
		}
		detail = append(detail, step)
	}
	c.pass.Reportf(info.pos, "lock order cycle %s: %s — impose one global acquisition order",
		strings.Join(cyc, " → "), strings.Join(detail, "; "))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
