// Package ordfix exercises the lock-order analyzer: consistent-order code,
// a two-lock inversion, a double-acquire, a map-instance self-cycle, an
// interprocedural inversion through a helper, and the allow escape hatch.
package ordfix

import "vread/internal/sim"

// Node is a component with two ordered locks.
type Node struct {
	a *sim.Mutex
	b *sim.Mutex
}

// Registry owns a lock per peer.
type Registry struct {
	peers map[string]*sim.Mutex
}

// Pair is a second component whose cycle closes only through a helper call.
type Pair struct {
	c *sim.Mutex
	d *sim.Mutex
}

// DeferHolds takes a (defer-released, so held for the rest of the function
// as far as ordering is concerned) then b. This is the first a→b edge the
// analyzer sees, so the cycle with Inverted's b→a edge is reported here.
func DeferHolds(p *sim.Proc, n *Node) {
	n.a.Lock(p)
	defer n.a.Unlock()
	n.b.Lock(p) // want `lock order cycle \(ordfix\.Node\)\.a → \(ordfix\.Node\)\.b → \(ordfix\.Node\)\.a`
	n.b.Unlock()
}

// Ordered takes a before b — the same order as DeferHolds, so it adds no new
// cycle and no diagnostic of its own.
func Ordered(p *sim.Proc, n *Node) {
	n.a.Lock(p)
	n.b.Lock(p)
	n.b.Unlock()
	n.a.Unlock()
}

// Inverted takes b before a: the reverse of DeferHolds/Ordered. The cycle is
// reported once, at the canonical rotation's first edge (in DeferHolds).
func Inverted(p *sim.Proc, n *Node) {
	n.b.Lock(p)
	n.a.Lock(p)
	n.a.Unlock()
	n.b.Unlock()
}

// Double re-acquires the same lock expression while holding it.
func Double(p *sim.Proc, n *Node) {
	n.a.Lock(p)
	n.a.Lock(p) // want `lock \(ordfix\.Node\)\.a is acquired while already held \(acquired at line \d+\): sim\.Mutex is not reentrant`
	n.a.Unlock()
}

// ReleasedBetween is sequential, not nested: no ordering edge, no report.
func ReleasedBetween(p *sim.Proc, n *Node) {
	n.a.Lock(p)
	n.a.Unlock()
	n.b.Lock(p)
	n.b.Unlock()
}

// TwoPeers locks two instances of the same class with no instance order.
func TwoPeers(p *sim.Proc, r *Registry, x, y string) {
	r.peers[x].Lock(p)
	r.peers[y].Lock(p) // want `lock \(ordfix\.Registry\)\.peers may be acquired while an instance of it is already held \(r\.peers\[x\] at line \d+\)`
	r.peers[y].Unlock()
	r.peers[x].Unlock()
}

// Sanctioned is TwoPeers with an imposed instance order, documented and
// suppressed.
func Sanctioned(p *sim.Proc, r *Registry, x, y string) {
	if x > y {
		x, y = y, x
	}
	r.peers[x].Lock(p)
	r.peers[y].Lock(p) //lint:allow lockorder(instances are locked in key order, so the class self-cycle cannot deadlock)
	r.peers[y].Unlock()
	r.peers[x].Unlock()
}

// LocalAlias locks through a local variable; the class resolves through the
// defining assignment back to the owning field, so the lock participates in
// the global order under its real class instead of a private one.
func LocalAlias(p *sim.Proc, r *Registry, k string) {
	mu := r.peers[k]
	if mu == nil {
		mu = sim.NewMutex(nil)
		r.peers[k] = mu
	}
	mu.Lock(p)
	mu.Unlock()
}

// lockD is the helper whose acquisition summary carries d to its callers.
func lockD(p *sim.Proc, q *Pair) {
	q.d.Lock(p)
	q.d.Unlock()
}

// CHoldsCallsD holds c across a call that acquires d: the c→d edge exists
// only interprocedurally, and closes a cycle with DHoldsLocksC's direct d→c
// edge.
func CHoldsCallsD(p *sim.Proc, q *Pair) {
	q.c.Lock(p)
	lockD(p, q) // want `lock order cycle \(ordfix\.Pair\)\.c → \(ordfix\.Pair\)\.d → \(ordfix\.Pair\)\.c.*via ordfix\.lockD`
	q.c.Unlock()
}

// DHoldsLocksC takes d then c directly.
func DHoldsLocksC(p *sim.Proc, q *Pair) {
	q.d.Lock(p)
	q.c.Lock(p)
	q.c.Unlock()
	q.d.Unlock()
}
