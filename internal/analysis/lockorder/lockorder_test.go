package lockorder_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "ordfix")
}
