package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// The pairing walker: a conservative, branch-aware traversal that tracks
// "resources" (held spinlocks, open trace spans) through a function body and
// reports the ones still held at each exit. It is deliberately simpler than
// a full CFG — the simulator's code style is straight-line with early error
// returns, which this models exactly:
//
//   - if/else, switch and select branches are walked with copies of the held
//     set; the fall-through state is the union of every branch that does not
//     terminate (so a resource released on only one side stays "held", which
//     is precisely the "not released on all paths" bug).
//   - loops are walked once and unioned with the pre-loop state.
//   - a release inside a defer (including inside a deferred closure) retires
//     the resource for the whole remainder of the function.
//   - panic and t.Fatal-style terminators end a path without a report: an
//     unwinding path is not a leak.

// Held is one live resource.
type Held struct {
	Key interface{} // analyzer-chosen identity (string, types.Object, ...)
	Pos token.Pos   // acquisition site
}

// FlowHooks parameterizes the walk.
type FlowHooks struct {
	// Classify inspects one non-control-flow statement and returns the
	// resource keys it acquires and releases. The walker calls it for
	// expression, assignment, declaration, and (with isDefer set) defer
	// statements.
	Classify func(stmt ast.Stmt, isDefer bool) (acquired []Held, released []interface{})
	// AtExit is invoked with the held resources at every return statement
	// (ret non-nil) and at an implicit fall-off-the-end exit (ret nil).
	AtExit func(ret *ast.ReturnStmt, held []Held)
	// AtAcquire, when set, is invoked for every acquisition Classify returns,
	// with the resources held at that moment (before the acquisition is
	// applied). Unlike AtExit it also fires when the key is already held,
	// which is how the lock-order analyzer sees double-acquires.
	AtAcquire func(h Held, held []Held)
	// Events and AtEvent, when both set, deliver analyzer-defined point
	// events (function calls, closure definitions) together with the held
	// set at that point. Events are not added to the held set.
	Events  func(stmt ast.Stmt, isDefer bool) []Held
	AtEvent func(ev Held, held []Held)
	// ClassifyState is Classify with the current held set visible — the
	// transfer-function form the dataflow layer needs, where what a
	// statement generates depends on what its operands already carry.
	// Both hooks may be set; releases apply before acquisitions either way.
	// ClassifyState is additionally called for range statements (to bind
	// the iteration variables) before the body is walked.
	ClassifyState func(stmt ast.Stmt, isDefer bool, held []Held) (acquired []Held, released []interface{})
	// Cond, when set, is invoked for branch conditions — if and for
	// conditions, switch tags, and range operands — with the held set at
	// the branch point. Its effects apply to every outgoing branch; a
	// condition that launders a resource (a declared sanitizer called in a
	// guard) retires it for the fall-through state.
	Cond func(e ast.Expr, held []Held) (acquired []Held, released []interface{})
	// Init seeds the held set before the first statement — how the dataflow
	// layer gives parameters their symbolic facts on entry.
	Init []Held
}

// WalkPaths runs the pairing walk over a function body.
func WalkPaths(body *ast.BlockStmt, hooks FlowHooks) {
	if body == nil {
		return
	}
	w := &flowWalker{hooks: hooks, deferred: map[interface{}]bool{}}
	held := newHeldSet()
	for _, h := range hooks.Init {
		held.add(h)
	}
	terminated := w.walkList(body.List, held)
	if !terminated {
		hooks.AtExit(nil, held.items())
	}
}

type flowWalker struct {
	hooks    FlowHooks
	deferred map[interface{}]bool // released by a defer: retired everywhere
}

// heldSet is an insertion-ordered set of held resources.
type heldSet struct {
	order []interface{}
	byKey map[interface{}]Held
}

func newHeldSet() *heldSet {
	return &heldSet{byKey: map[interface{}]Held{}}
}

func (s *heldSet) add(h Held) {
	if _, ok := s.byKey[h.Key]; !ok {
		s.order = append(s.order, h.Key)
	}
	s.byKey[h.Key] = h
}

func (s *heldSet) remove(key interface{}) {
	if _, ok := s.byKey[key]; !ok {
		return
	}
	delete(s.byKey, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *heldSet) items() []Held {
	out := make([]Held, 0, len(s.byKey))
	for _, k := range s.order {
		out = append(out, s.byKey[k])
	}
	return out
}

func (s *heldSet) clone() *heldSet {
	c := newHeldSet()
	c.order = append([]interface{}(nil), s.order...)
	for k, v := range s.byKey {
		c.byKey[k] = v
	}
	return c
}

// union merges o into s, keeping a stable order.
func (s *heldSet) union(o *heldSet) {
	for _, k := range o.order {
		s.add(o.byKey[k])
	}
}

// walkList walks statements in order; it reports true when control cannot
// fall off the end of the list.
func (w *flowWalker) walkList(stmts []ast.Stmt, held *heldSet) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *flowWalker) classify(s ast.Stmt, isDefer bool, held *heldSet) {
	var acq []Held
	var rel []interface{}
	if w.hooks.Classify != nil {
		acq, rel = w.hooks.Classify(s, isDefer)
	}
	if w.hooks.ClassifyState != nil {
		a, r := w.hooks.ClassifyState(s, isDefer, held.items())
		acq = append(acq, a...)
		rel = append(rel, r...)
	}
	for _, k := range rel {
		if isDefer {
			w.deferred[k] = true
		}
		held.remove(k)
	}
	if w.hooks.Events != nil && w.hooks.AtEvent != nil {
		for _, ev := range w.hooks.Events(s, isDefer) {
			w.hooks.AtEvent(ev, held.items())
		}
	}
	for _, h := range acq {
		if w.hooks.AtAcquire != nil {
			w.hooks.AtAcquire(h, held.items())
		}
		if w.deferred[h.Key] {
			continue // a defer already guarantees its release
		}
		held.add(h)
	}
}

// cond applies the Cond hook to a branch condition.
func (w *flowWalker) cond(e ast.Expr, held *heldSet) {
	if w.hooks.Cond == nil || e == nil {
		return
	}
	acq, rel := w.hooks.Cond(e, held.items())
	for _, k := range rel {
		held.remove(k)
	}
	for _, h := range acq {
		held.add(h)
	}
}

func (w *flowWalker) walkStmt(s ast.Stmt, held *heldSet) (terminated bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		w.hooks.AtExit(st, held.items())
		return true

	case *ast.ExprStmt:
		if isPanicCall(st.X) {
			return true
		}
		w.classify(st, false, held)

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.classify(s, false, held)

	case *ast.DeferStmt:
		w.classify(st, true, held)

	case *ast.BlockStmt:
		return w.walkList(st.List, held)

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)

	case *ast.IfStmt:
		if st.Init != nil {
			w.classify(st.Init, false, held)
		}
		w.cond(st.Cond, held)
		thenHeld := held.clone()
		thenTerm := w.walkList(st.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = w.walkStmt(st.Else, elseHeld)
		}
		merged := newHeldSet()
		if !thenTerm {
			merged.union(thenHeld)
		}
		if !elseTerm {
			merged.union(elseHeld)
		}
		*held = *merged
		return thenTerm && elseTerm && st.Else != nil

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, held)

	case *ast.ForStmt:
		if st.Init != nil {
			w.classify(st.Init, false, held)
		}
		if st.Cond != nil {
			w.cond(st.Cond, held)
		}
		body := held.clone()
		w.walkList(st.Body.List, body)
		held.union(body)
		// `for {}` with no break is terminating per the spec.
		return st.Cond == nil && !hasBreak(st.Body)

	case *ast.RangeStmt:
		w.cond(st.X, held)
		if w.hooks.ClassifyState != nil {
			// Bind the iteration variables (key/value derive from the
			// ranged operand) before walking the body.
			acq, rel := w.hooks.ClassifyState(st, false, held.items())
			for _, k := range rel {
				held.remove(k)
			}
			for _, h := range acq {
				held.add(h)
			}
		}
		body := held.clone()
		w.walkList(st.Body.List, body)
		held.union(body)

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; stop the linear
		// walk so following (unreachable from here) statements are not
		// double-processed with this branch's state.
		return true
	}
	return false
}

// walkBranches handles switch / type-switch / select uniformly.
func (w *flowWalker) walkBranches(s ast.Stmt, held *heldSet) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.classify(st.Init, false, held)
		}
		if st.Tag != nil {
			w.cond(st.Tag, held)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	merged := newHeldSet()
	allTerm := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			hasDefault = true // select blocks until a case runs
		}
		ch := held.clone()
		if !w.walkList(body, ch) {
			merged.union(ch)
			allTerm = false
		}
	}
	if len(clauses) == 0 || !hasDefault {
		merged.union(held)
		allTerm = false
	}
	*held = *merged
	return allTerm
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		// os.Exit, t.Fatal/Fatalf, log.Fatal*, runtime.Goexit.
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Goexit":
			return true
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BranchStmt:
			if v.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			// break inside these does not break the outer for; a labeled
			// break would, but the simulator does not use labels for this.
			return false
		}
		return !found
	})
	return found
}

// FuncBodies yields every function body in the file as an independent
// analysis root: declarations and, separately, each function literal (whose
// resources must not leak into the enclosing function's accounting).
type FuncBody struct {
	Name string         // declared name, or "func literal"
	Decl *ast.FuncDecl  // nil for literals
	Lit  *ast.FuncLit   // nil for declarations
	Body *ast.BlockStmt // never nil
}

// FuncBodies collects the analysis roots of a file in source order.
func FuncBodies(f *ast.File) []FuncBody {
	var out []FuncBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, FuncBody{Name: v.Name.Name, Decl: v, Body: v.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncBody{Name: "func literal", Lit: v, Body: v.Body})
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Body.Pos() < out[j].Body.Pos() })
	return out
}
