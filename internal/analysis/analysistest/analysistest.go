// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments — a
// self-contained stand-in for golang.org/x/tools' package of the same name.
//
// Fixture layout mirrors the upstream convention:
//
//	testdata/src/<import/path>/*.go
//
// Imports inside fixtures resolve against testdata/src first and fall back
// to the real build: standard-library and module packages are imported from
// compiled export data located with `go list -export`, so fixtures can use
// the real sim.Mutex and trace.Trace types the analyzers match on.
//
// Expectations are comments of the form
//
//	expr // want `regexp` `another regexp`
//
// Every diagnostic must match an unclaimed want on its (file, line), and
// every want must be claimed by some diagnostic. Suppression directives
// (//lint:allow) are honored exactly as in the real drivers, so fixtures can
// also prove the escape hatch works.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vread/internal/analysis"
)

// TestData returns the caller's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads the fixture packages from testdata/src/<path>, applies the
// analyzer (with //lint:allow suppression, exactly as the real drivers do),
// and compares the diagnostics against the fixtures' // want comments.
//
// All listed packages load into one Program and the analyzer runs once over
// it via RunSuite, so program analyzers (RunProgram) see a cross-package call
// graph: a fixture that needs interprocedural propagation between packages
// simply lists every package involved. Packages a fixture merely imports for
// types (the sim/trace stubs) resolve through the importer but stay out of
// the Program — their bodies are not analyzed.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, analysis.RunSuite, []*analysis.Analyzer{a}, pkgPaths)
}

// RunUnused is Run under the stale-suppression driver (RunSuiteUnused) with
// an explicit analyzer list: //lint:allow comments naming a ran analyzer that
// suppressed nothing must be claimed by "stale suppression" wants.
func RunUnused(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, analysis.RunSuiteUnused, analyzers, pkgPaths)
}

func run(t *testing.T, testdata string, drive func(*analysis.Program, []*analysis.Analyzer) ([]analysis.Diagnostic, error), analyzers []*analysis.Analyzer, pkgPaths []string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:    fset,
		srcRoot: filepath.Join(testdata, "src"),
		cache:   map[string]*analysis.Package{},
		exports: map[string]string{},
	}
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := imp.loadFixture(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := analysis.NewProgram(pkgs)
	diags, err := drive(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	check(t, fset, prog, diags)
}

// ---------------------------------------------------------------------------
// Fixture loading.

// fixtureImporter resolves imports from testdata/src first, then from the
// surrounding module's compiled export data.
type fixtureImporter struct {
	fset     *token.FileSet
	srcRoot  string
	cache    map[string]*analysis.Package
	exports  map[string]string // import path -> export data file, via go list
	fallback types.Importer
}

var _ types.Importer = (*fixtureImporter)(nil)

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg.Types, nil
	}
	if dir := filepath.Join(im.srcRoot, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := im.loadFixture(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.importExport(path)
}

func (im *fixtureImporter) loadFixture(path string) (*analysis.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Mirror the real loader's split: *_test.go files become syntax-only
	// TestFiles (the external _test package variant cannot type-check with
	// the package proper anyway), everything else type-checks as the package.
	var files, testFiles []string
	for _, e := range entries {
		switch {
		case e.IsDir() || !strings.HasSuffix(e.Name(), ".go"):
		case strings.HasSuffix(e.Name(), "_test.go"):
			testFiles = append(testFiles, filepath.Join(dir, e.Name()))
		default:
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	sort.Strings(testFiles)
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg, err := analysis.Check(im.fset, im, path, dir, files)
	if err != nil {
		return nil, err
	}
	pkg.TestFiles, err = analysis.ParseOnly(im.fset, testFiles)
	if err != nil {
		return nil, err
	}
	im.cache[path] = pkg
	return pkg, nil
}

// importExport resolves a real package from its compiled export data,
// querying `go list -export` lazily — once per missing path, with its
// dependency closure batched in.
func (im *fixtureImporter) importExport(path string) (*types.Package, error) {
	if im.fallback == nil {
		im.fallback = analysis.ExportImporter(im.fset, func(p string) (string, bool) {
			if f, ok := im.exports[p]; ok {
				return f, true
			}
			if err := im.list(p); err != nil {
				return "", false
			}
			f, ok := im.exports[p]
			return f, ok
		})
	}
	return im.fallback.Import(path)
}

func (im *fixtureImporter) list(path string) error {
	out, err := exec.Command("go", "list", "-e", "-export", "-deps", "-f",
		"{{.ImportPath}}\t{{.Export}}", path).Output()
	if err != nil {
		return fmt.Errorf("go list %s: %v", path, err)
	}
	for _, line := range strings.Split(string(out), "\n") {
		p, f, ok := strings.Cut(line, "\t")
		if ok && f != "" {
			im.exports[p] = f
		}
	}
	return nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// ---------------------------------------------------------------------------
// Matching diagnostics against // want comments.

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)`)

type want struct {
	pos     token.Position
	rx      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, prog *analysis.Program, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, prog)
	for _, d := range diags {
		if w := claim(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matched want %q", w.pos, w.rx)
		}
	}
}

func claim(wants []*want, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.pos.Filename == d.Pos.Filename && w.pos.Line == d.Pos.Line && w.rx.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

func parseWants(t *testing.T, fset *token.FileSet, prog *analysis.Program) []*want {
	t.Helper()
	var files []*ast.File
	for _, pkg := range prog.Pkgs {
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
	}
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{pos: pos, rx: rx})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits the text after "want" into backquoted or quoted
// regular expressions.
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s, err)
			}
			unq, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, q, err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[len(q):])
		default:
			t.Fatalf("%s: want patterns must be `backquoted` or \"quoted\", got %q", pos, s)
		}
	}
	return pats
}
