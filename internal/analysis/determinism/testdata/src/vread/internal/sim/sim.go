// Package sim stands in for the engine package: the allowlist exempts it
// from the determinism invariant wholesale — it owns the virtual clock and
// the seeded random source everyone else must use.
package sim

import "time"

// Wall would be a violation anywhere else; here it draws no findings.
func Wall() time.Time {
	return time.Now()
}
