// Package detfix exercises the determinism analyzer: wall-clock reads,
// global math/rand draws, and map iteration order reaching emitted output.
package detfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func Clocky() time.Duration {
	start := time.Now()          // want `time.Now consults the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep consults the wall clock`
	return time.Since(start)     // want `time.Since consults the wall clock`
}

func Roll() int {
	return rand.Intn(6) // want `math/rand.Intn draws from the global unseeded source`
}

// Seeded uses the per-run source idiom: a *rand.Rand type mention and method
// calls on it are fine.
func Seeded(r *rand.Rand) int {
	return r.Intn(6)
}

// AllowedClock exercises the escape hatch: the directive suppresses the
// wall-clock finding on the next line.
func AllowedClock() time.Duration {
	//lint:allow determinism(fixture exercises the escape hatch)
	return time.Since(time.Time{})
}

// EmptyReason shows that a reason-less directive is itself a finding and
// suppresses nothing.
func EmptyReason() time.Time {
	//lint:allow determinism() // want `needs a reason`
	return time.Now() // want `time.Now consults the wall clock`
}

func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside a map-range loop`
	}
}

func Leaky(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map-range loop`
	}
	return keys
}

// Collected is the sanctioned idiom: collect, sort, then use.
func Collected(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
