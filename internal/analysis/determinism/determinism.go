// Package determinism flags wall-clock reads, unseeded global math/rand use,
// and map-iteration order escaping into emitted output — the three ways a
// simulator run stops being bit-reproducible.
//
// The invariant (internal/sim/sim.go): "No component of the simulator may
// consult the wall clock." Virtual time comes from sim.Env.Now, randomness
// from sim.Env.Rand (seeded per run), and every exporter iterates slices in
// event order. The engine package itself is allowlisted: it owns the
// time.Duration clock and the seeded rand.Rand everyone else must use.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"vread/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, unseeded math/rand, and map-range order " +
		"reaching emitted output (bit-reproducibility invariant)",
	Run: run,
}

// allowedPkgs are engine internals that implement the virtual clock and the
// seeded random source.
var allowedPkgs = map[string]bool{
	"vread/internal/sim": true,
}

// wallClockFuncs are the time package functions that read the wall clock.
// Timers and tickers are the simdiscipline analyzer's department.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// seededCtors are the math/rand entry points that do not touch the global
// source.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// outputMethods are method names whose call inside a map-range body means
// iteration order reaches an encoder or writer.
var outputMethods = map[string]bool{
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) error {
	if allowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		checkCalls(pass, f)
		checkMapRanges(pass, f)
	}
	return nil
}

func checkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := analysis.PkgFunc(pass.TypesInfo, sel)
		if !ok {
			return true
		}
		// Only function references draw from the clock or the global
		// source; type mentions like *rand.Rand are the seeded idiom.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		switch {
		case path == "time" && wallClockFuncs[name]:
			pass.Reportf(sel.Pos(), "time.%s consults the wall clock, violating the determinism invariant (sim.go: no component of the simulator may consult the wall clock); use sim.Env.Now for virtual time", name)
		case path == "math/rand" && !seededCtors[name]:
			pass.Reportf(sel.Pos(), "math/rand.%s draws from the global unseeded source, so runs stop being bit-reproducible (determinism invariant); use the per-run sim.Env.Rand", name)
		case path == "math/rand/v2":
			pass.Reportf(sel.Pos(), "math/rand/v2.%s is seeded from the OS, so runs stop being bit-reproducible (determinism invariant); use the per-run sim.Env.Rand", name)
		}
		return true
	})
}

// checkMapRanges flags map-range loops whose bodies feed emitted output:
// either a direct write/encode call, or an append into a slice declared
// outside the loop that is never subsequently sorted in the same function.
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	for _, fb := range analysis.FuncBodies(f) {
		checkBodyMapRanges(pass, fb)
	}
}

func checkBodyMapRanges(pass *analysis.Pass, fb analysis.FuncBody) {
	type cand struct {
		rng    *ast.RangeStmt
		target *ast.Ident // the appended-to variable
	}
	var cands []cand

	var ranges []*ast.RangeStmt
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fb.Lit {
			return false // nested literal is its own root
		}
		if r, ok := n.(*ast.RangeStmt); ok && analysis.IsMap(pass.TypesInfo, r.X) {
			ranges = append(ranges, r)
		}
		return true
	})

	for _, r := range ranges {
		ast.Inspect(r.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch v := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					if isOutputCall(pass, sel) {
						pass.Reportf(v.Pos(), "%s inside a map-range loop leaks map iteration order into emitted output, breaking byte-identical runs (determinism invariant); iterate a sorted slice of keys instead", callName(pass, sel))
					}
				}
			case *ast.AssignStmt:
				// v = append(v, ...) where v is declared outside the loop.
				if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
					return true
				}
				lhs, ok := v.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				call, ok := v.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
					return true
				}
				obj := pass.TypesInfo.ObjectOf(lhs)
				if obj == nil || obj.Pos() == 0 {
					return true
				}
				if obj.Pos() >= r.Pos() && obj.Pos() <= r.End() {
					return true // loop-local accumulator; harmless
				}
				cands = append(cands, cand{rng: r, target: lhs})
			}
			return true
		})
	}

	for _, c := range cands {
		if sortedAfter(pass, fb, c.target) {
			continue
		}
		pass.Reportf(c.target.Pos(), "append to %q inside a map-range loop captures map iteration order, breaking byte-identical runs (determinism invariant); sort %q before it is used, or collect and sort the keys first", c.target.Name, c.target.Name)
	}
}

// sortedAfter reports whether the variable is passed to a sort/slices sort
// call anywhere in the function — the sanctioned collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fb analysis.FuncBody, target *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(target)
	found := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		path, name, ok := analysis.PkgFunc(pass.TypesInfo, sel)
		if !ok || (path != "sort" && path != "slices") {
			return !found
		}
		if !strings.Contains(name, "Sort") && !isSortHelper(path, name) {
			return !found
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSortHelper(path, name string) bool {
	if path != "sort" {
		return false
	}
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

func isOutputCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Write") || outputMethods[name] {
		// Package-level fmt.Fprint* / method Write*/Encode on anything.
		return true
	}
	return false
}

func callName(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	if path, name, ok := analysis.PkgFunc(pass.TypesInfo, sel); ok {
		return path + "." + name
	}
	return sel.Sel.Name
}
