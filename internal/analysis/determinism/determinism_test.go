package determinism_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer,
		"detfix", "vread/internal/sim")
}
