package analysis_test

import (
	"os"
	"strings"
	"testing"

	"vread/internal/analysis"
)

// loadEdgeList loads the given real packages into a fresh Program and
// renders its call graph's canonical edge list.
func loadEdgeList(t *testing.T, patterns ...string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	return analysis.NewProgram(pkgs).Graph().EdgeList()
}

// TestCallGraphDeterministic asserts the property every program analyzer
// leans on: building the call graph twice — two independent Loads, two
// FileSets, two map-iteration schedules — yields byte-identical EdgeList
// output. Any map-order leak in graph construction shows up here as a diff.
func TestCallGraphDeterministic(t *testing.T) {
	patterns := []string{"vread/internal/sim", "vread/internal/virtio", "vread/internal/netsim"}
	first := loadEdgeList(t, patterns...)
	second := loadEdgeList(t, patterns...)
	if first == "" {
		t.Fatalf("empty edge list for %v", patterns)
	}
	if first != second {
		t.Errorf("EdgeList differs between two builds of the same packages:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// Spot-check shape: every line is "caller -> callee" and the list is
	// sorted, which is what makes the bytes comparable at all.
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	for i, ln := range lines {
		if !strings.Contains(ln, " -> ") {
			t.Fatalf("edge %d not in canonical form: %q", i, ln)
		}
		if i > 0 && lines[i-1] > ln {
			t.Errorf("edge list not sorted at %d: %q > %q", i, lines[i-1], ln)
		}
	}
}
