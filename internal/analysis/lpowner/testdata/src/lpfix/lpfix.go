// Package lpfix exercises the LP-ownership invariant: LP context must not
// call coordinator phases or mutate shared/coordinator state, and handles
// that may belong to another LP must not reach its Env-affine state without
// passing through a boundary channel or a declared sanitizer.
package lpfix

import (
	"time"

	"vread/internal/sim"
	"vread/internal/sim/shard"
)

type worker struct {
	env   *sim.Env
	inbox *sim.Queue[int]
	// pending is this worker's run-queue depth.
	//
	//lint:owner(lp: touched only by the owning Env's callbacks)
	pending int
}

type engine struct {
	// topo is the host topology.
	//
	//lint:shared(frozen before the clock starts)
	topo map[string]int
	// epoch is the coordinator's epoch counter.
	//
	//lint:owner(coordinator: bumped only between epochs)
	epoch int
	// peers indexes workers by name; a lookup may cross hosts.
	//
	//lint:source lpowner(a peer may live on another host's Env)
	peers map[string]*worker
}

// peer resolves a name to a worker that may live anywhere.
//
//lint:source lpowner(the worker may live on another host's Env)
func (e *engine) peer(name string) *worker { return e.peers[name] }

// local resolves a name to a worker pinned to the caller's Env.
//
//lint:sanitizer lpowner(callers pass co-located names only)
func (e *engine) local(name string) *worker { return e.peers[name] }

// drain runs between epochs, while every LP is quiesced.
//
//lint:owner(coordinator: runs while every LP is quiesced)
func (e *engine) drain() {
	e.epoch++ // coordinator body — exempt
}

// forward is the sanctioned cross-LP channel; values passed through it
// arrive laundered on the destination Env.
//
//lint:owner(boundary: rides LP.Send under the fabric lookahead)
func (e *engine) forward(lp *shard.LP, w *worker, fn func()) {
	lp.Send(lp, time.Millisecond, fn)
}

// start wires tick into the clock: tick and everything it calls runs in LP
// context.
func (e *engine) start(env *sim.Env) {
	env.Schedule(time.Millisecond, e.tick)
}

func (e *engine) tick() {
	e.drain()       // want `coordinator-phase function drain .* called from LP context`
	e.topo["x"] = 1 // want `write to //lint:shared state e\.topo .* from LP context`
	e.epoch++       // want `write to coordinator-owned state e\.epoch .* from LP context`
	e.helper()
}

// helper is reached from tick, so it is LP context too — the report carries
// the call-chain witness.
func (e *engine) helper() {
	delete(e.topo, "y") // want `write to //lint:shared state e\.topo .* call chain`
}

// badSchedule schedules straight onto a possibly-remote Env.
func (e *engine) badSchedule() {
	w := e.peer("b")
	w.env.Schedule(time.Millisecond, func() {}) // want `possibly-remote handle .* reaches cross-Env schedule`
}

// badField reads the annotated source field directly, then pokes the
// worker's LP-owned counter.
func (e *engine) badField() {
	w := e.peers["c"]
	_ = w.pending // want `possibly-remote handle .* reaches lp-owned field w\.pending`
}

// badQueue blocks on a possibly-remote worker's queue.
func (e *engine) badQueue(p *sim.Proc) {
	w := e.peer("d")
	w.inbox.Put(p, 1) // want `possibly-remote handle .* reaches cross-Env queue op`
}

// viaSanitizer uses the same-Env escape hatch: no facts, no findings.
func (e *engine) viaSanitizer() {
	w := e.local("self")
	w.env.Schedule(time.Millisecond, func() {})
	_ = w.pending
}

// viaBoundary launders the handle through the boundary channel; the closure
// delivered on the destination Env touches only laundered state.
func (e *engine) viaBoundary(lp *shard.LP) {
	w := e.peer("far")
	e.forward(lp, w, func() { w.pending++ })
}

// pinned is suppressed: the deployment pins both ends to one shard.
func (e *engine) pinned() {
	w := e.peer("near")
	w.env.Schedule(time.Millisecond, func() {}) //lint:allow lpowner(both ends pinned to one shard by rack assignment)
}
