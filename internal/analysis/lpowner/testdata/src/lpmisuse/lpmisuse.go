// Package lpmisuse exercises the annotation-validation diagnostics: unknown
// owner classes, missing reasons, conflicting declarations, and directives
// on things that are not state.
package lpmisuse

type state struct {
	//lint:owner(host: no such class) // want `unknown owner class "host" on state`
	a int
	//lint:owner(lp) // want `ownership annotation needs a reason`
	b int
	// c carries two contradictory declarations.
	//
	//lint:owner(lp: first)
	//lint:shared(second) // want `conflicting ownership for c: already declared lp`
	c int
}

//lint:owner(lp: functions are coordinator or boundary) // want `unknown owner class "lp" on a function`
func wrongClass() {}

func local() {
	//lint:owner(lp: locals are not state) // want `ownership directives apply to struct fields, package-level vars, and function declarations`
	x := 0
	_ = x
	_ = state{}
}
