// Package sim stands in for the engine package: lpowner matches scheduling
// sinks (Env.Schedule/Go, Queue ops) and LP-context roots by import path,
// so fixtures import this stub at the real path.
package sim

import "time"

// Env is the event-loop stub.
type Env struct{}

// Schedule runs fn after d.
func (e *Env) Schedule(d time.Duration, fn func()) {}

// Go starts a process.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc { return &Proc{} }

// Proc is the process stub.
type Proc struct{}

// Queue is the bounded queue stub.
type Queue[T any] struct{ zero T }

// NewQueue creates a queue.
func NewQueue[T any](env *Env, capacity int) *Queue[T] { return &Queue[T]{} }

// Put pushes one element.
func (q *Queue[T]) Put(p *Proc, v T) {}

// Get pops one element.
func (q *Queue[T]) Get(p *Proc) (T, bool) { return q.zero, false }
