// Package shard stands in for the sharded engine: lpowner treats LP.Send as
// both an LP-context root and the sanctioned cross-LP channel.
package shard

import "time"

// LP is the logical-process stub.
type LP struct{}

// Send delivers fn onto dst after delay.
func (lp *LP) Send(dst *LP, delay time.Duration, fn func()) {}
