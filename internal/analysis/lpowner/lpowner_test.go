package lpowner_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/lpowner"
)

func TestLPOwner(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lpowner.Analyzer,
		"lpfix", "lpmisuse", "vread/internal/sim", "vread/internal/sim/shard")
}
