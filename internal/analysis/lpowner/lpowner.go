// Package lpowner machine-checks the sharded engine's isolation invariant:
// all simulation state reachable from an LP's callbacks is private to that
// LP, and the only sanctioned cross-LP channels are LP.Send and the
// coordinator's between-epoch phases (internal/sim/shard/shard.go). The
// ownership of a piece of state is declared where it lives:
//
//	//lint:owner(lp: reason)          Env-affine — owned by the LP whose
//	                                  sim.Env schedules into it
//	//lint:owner(coordinator: reason) touched only between epochs (mailbox
//	                                  drain, epoch windows); LPs may read it
//	                                  — the coordinator mutates only while
//	                                  every LP is quiesced — but never write
//	//lint:shared(reason)             immutable-shared — config and topology
//	                                  frozen before the clock starts
//
// and on functions:
//
//	//lint:owner(coordinator: reason) a coordinator-phase function — must
//	                                  never be reachable from LP context
//	//lint:owner(boundary: reason)    a sanctioned cross-LP channel
//	                                  (LP.Send, the fabric's deliverOn):
//	                                  its body is exempt and values passed
//	                                  through it arrive laundered
//
// LP context is computed from the call graph: every function value passed to
// an entry point into sim context (Env.Schedule/Go, Thread.Post, LP.Send,
// cluster/testbed proc launchers, fabric delivery hooks, virtio/storage
// completion callbacks — the rootAPIs table) runs under some LP's Env, and
// everything reachable from those roots (not crossing a boundary or
// coordinator-phase function) is LP context. The call graph records a
// definition edge from each function to the literals it defines, so a
// closure built inside an LP callback is LP context too, even when it is
// stored in a variable before being scheduled. From there the analyzer
// reports:
//
//   - a coordinator-phase function called from LP context;
//   - a write to //lint:shared or coordinator-owned state from LP context;
//   - a possibly-remote handle — a value read through a //lint:source
//     lpowner field or returned by a //lint:source lpowner accessor —
//     reaching another LP's Env-affine state: a scheduling method
//     (Env.Schedule/Go, Thread.Post, Queue/Signal operations) on the remote
//     object, or a //lint:owner(lp) field of it, without first passing
//     through a boundary function or a //lint:sanitizer lpowner accessor
//     (the same-Env escape hatch).
//
// Reports carry the scheduling site of the root callback and the call-chain
// witness, like lockorder and guesttaint. Precision notes: closure captures
// do not carry remote facts (a closure handed to LP.Send re-resolves its
// peer on the destination Env, which is exactly the sanctioned pattern);
// writes are detected through selector/index lvalues, not pointer
// indirection; indirect calls to coordinator-phase functions are not seen;
// a setup-time closure held in a variable and scheduled later is rooted at
// its definition only if the definer is itself LP context.
package lpowner

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"vread/internal/analysis"
)

// Analyzer is the LP-ownership invariant.
var Analyzer = &analysis.Analyzer{
	Name:       "lpowner",
	Doc:        "LP state is private to its Env: no coordinator-phase calls, shared/coordinator-state writes, or remote-handle scheduling from LP context without LP.Send",
	RunProgram: run,
}

const (
	simPath   = "vread/internal/sim"
	cpuPath   = "vread/internal/cpusched"
	shardPath = "vread/internal/sim/shard"
)

// schedSinks lists the methods that schedule work onto (or block on) the
// state of their receiver's Env — the operations a remote handle must not
// reach. Keyed by import path, then "Type.Method".
var schedSinks = map[string]map[string]string{
	simPath: {
		"Env.Schedule": "cross-Env schedule", "Env.Go": "cross-Env schedule",
		"Env.GoAfter": "cross-Env schedule", "Env.Run": "cross-Env run",
		"Env.RunUntil": "cross-Env run", "Env.RunFor": "cross-Env run",
		"Env.Stop": "cross-Env stop", "Env.Close": "cross-Env close",
		"Env.SetIdleHook": "cross-Env hook",
		"Queue.Put":       "cross-Env queue op", "Queue.TryPut": "cross-Env queue op",
		"Queue.Get": "cross-Env queue op", "Queue.TryGet": "cross-Env queue op",
		"Queue.GetTimeout": "cross-Env queue op", "Queue.Close": "cross-Env queue op",
		"Signal.Broadcast": "cross-Env signal", "Signal.Signal": "cross-Env signal",
		"Signal.Wait": "cross-Env signal", "Signal.WaitTimeout": "cross-Env signal",
	},
	cpuPath: {
		"Thread.Post": "cross-Env thread post", "Thread.PostT": "cross-Env thread post",
		"Thread.Run": "cross-Env thread run", "Thread.RunT": "cross-Env thread run",
		"Thread.RunDur": "cross-Env thread run",
	},
}

// rootAPIs lists the entry points into sim context: any function-typed
// argument at a call to one of these runs (or may run) under some LP's Env,
// and becomes an LP-context root. Keyed by import path, then "Type.Method"
// for methods and the bare name for package functions. Deliberately absent:
// par.Gang.Round (worker harness, not sim), sort.Slice and friends, and the
// experiment cell builders — those run on the coordinator or the test
// goroutine.
var rootAPIs = map[string]map[string]bool{
	simPath: {
		"Env.Schedule": true, "Env.Go": true, "Env.GoAfter": true,
		"Env.SetIdleHook": true,
	},
	cpuPath: {
		"Thread.Post": true, "Thread.PostT": true,
		"Thread.Run": true, "Thread.RunT": true, "Thread.RunDur": true,
	},
	shardPath:                    {"LP.Send": true},
	"vread/internal/cluster":     {"Cluster.Go": true, "Host.Go": true},
	"vread/internal/experiments": {"Testbed.Run": true},
	"vread/internal/netsim": {
		"Fabric.SetInterconnect": true, "Fabric.BindHostPort": true,
		"Fabric.NewQP": true, "QP.PostFrom": true,
		"NIC.SendToVM": true, "NIC.SendToHost": true, "NIC.SendDMA": true,
	},
	"vread/internal/virtio": {
		"NetDev.SetDeliver":   true,
		"BlkDev.TryReadAsync": true, "BlkDev.TryReadAsyncT": true,
	},
	"vread/internal/storage": {
		"Disk.ReadAsync": true, "Disk.ReadAsyncT": true, "Disk.WriteAsync": true,
	},
	"vread/internal/workload": {"RunOpenLoop": true},
	"vread/internal/guest":    {"Network.SetCrossEnv": true},
}

// ownerRx matches the ownership directives: //lint:owner(class: reason) and
// //lint:shared(reason).
var ownerRx = regexp.MustCompile(`^//\s*lint:(owner|shared)\s*\(([^)]*)\)`)

// stateClass is the declared ownership of one field or package-level var.
type stateClass string

const (
	classLP          stateClass = "lp"
	classCoordinator stateClass = "coordinator"
	classShared      stateClass = "shared"
	classBoundary    stateClass = "boundary"
)

type annotation struct {
	class stateClass
	pos   token.Pos // directive position, cited in witnesses
}

// ownership is the collected annotation index.
type ownership struct {
	state map[*types.Var]annotation  // struct fields and package-level vars
	funcs map[*types.Func]annotation // coordinator-phase and boundary functions
}

func run(pass *analysis.ProgramPass) error {
	prog, g := pass.Prog, pass.Graph
	badDirective := func(pos token.Pos, msg string) { pass.Reportf(pos, "%s", msg) }
	ann := collectOwnership(prog, pass)
	sanitizers := analysis.AnnotatedFuncs(prog, "sanitizer", "lpowner", badDirective)
	srcFuncs := analysis.AnnotatedFuncs(prog, "source", "lpowner", badDirective)
	srcFields := analysis.AnnotatedFields(prog, "source", "lpowner", badDirective)

	// Each package type-checks in its own object world, so *types.Func keys
	// from the defining package never match a Uses entry in an importing
	// package. The call graph's canonical node names bridge the worlds: all
	// function lookups below go through names.
	idx := &funcIndex{
		coord:    make(map[string]annotation),
		boundary: make(map[string]bool),
		san:      nameSet(g, sanitizers),
		source:   nameSet(g, srcFuncs),
		g:        g,
	}
	for fn, a := range ann.funcs {
		n := g.NodeOf(fn)
		if n == nil {
			continue
		}
		switch a.class {
		case classCoordinator:
			idx.coord[n.Name] = a
		case classBoundary:
			idx.boundary[n.Name] = true
		}
	}

	exempt := exemptNames(g, ann)
	isExempt := func(n *analysis.FuncNode) bool {
		if exempt[n.Name] {
			return true
		}
		// Nested literals inherit their parent's exemption: drain$1 is part
		// of drain.
		for name := range exempt {
			if strings.HasPrefix(n.Name, name+"$") {
				return true
			}
		}
		return false
	}

	tree, rootSite := lpContext(prog, g, isExempt)
	checkContext(pass, g, ann, idx, tree, rootSite, isExempt)
	checkRemoteHandles(pass, ann, idx, srcFields, isExempt)
	return nil
}

// funcIndex resolves function-level classifications by canonical call-graph
// node name, which works across package object worlds.
type funcIndex struct {
	coord    map[string]annotation // coordinator-phase functions
	boundary map[string]bool       // boundary functions
	san      map[string]bool       // //lint:sanitizer lpowner functions
	source   map[string]bool       // //lint:source lpowner functions
	g        *analysis.CallGraph
}

func (x *funcIndex) nameOf(fn *types.Func) string {
	if n := x.g.NodeOf(fn); n != nil {
		return n.Name
	}
	return ""
}

func nameSet(g *analysis.CallGraph, fns map[*types.Func]string) map[string]bool {
	out := make(map[string]bool, len(fns))
	for fn := range fns {
		if n := g.NodeOf(fn); n != nil {
			out[n.Name] = true
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Annotation collection.

func collectOwnership(prog *analysis.Program, pass *analysis.ProgramPass) *ownership {
	ann := &ownership{
		state: make(map[*types.Var]annotation),
		funcs: make(map[*types.Func]annotation),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			consumed := make(map[*ast.Comment]bool)
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					collectFuncAnn(pass, pkg, d, ann, consumed)
				case *ast.GenDecl:
					collectDeclAnn(pass, pkg, d, ann, consumed)
				}
			}
			// Any ownership directive not attached to a struct field, a
			// package-level var, or a function declaration is misplaced —
			// the local-var case the contract forbids.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if consumed[c] || !ownerRx.MatchString(c.Text) {
						continue
					}
					pass.Reportf(c.Pos(), "ownership directives apply to struct fields, package-level vars, and function declarations — not local declarations; move the annotation to the owning type")
				}
			}
		}
	}
	return ann
}

// ownerDirectives parses the ownership directives of one comment group,
// marking every matched comment consumed.
func ownerDirectives(cg *ast.CommentGroup, consumed map[*ast.Comment]bool) []parsedDirective {
	if cg == nil {
		return nil
	}
	var out []parsedDirective
	for _, c := range cg.List {
		m := ownerRx.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		consumed[c] = true
		d := parsedDirective{kind: m[1], pos: c.Pos()}
		payload := strings.TrimSpace(m[2])
		if d.kind == "shared" {
			d.class, d.reason = classShared, payload
		} else if i := strings.Index(payload, ":"); i >= 0 {
			d.class = stateClass(strings.TrimSpace(payload[:i]))
			d.reason = strings.TrimSpace(payload[i+1:])
		} else {
			d.class = stateClass(payload)
		}
		out = append(out, d)
	}
	return out
}

type parsedDirective struct {
	kind   string // "owner" or "shared"
	class  stateClass
	reason string
	pos    token.Pos
}

// recordState validates and records one state annotation, reporting unknown
// classes, missing reasons, and conflicting annotations on the same decl.
func recordState(pass *analysis.ProgramPass, ann *ownership, v *types.Var, d parsedDirective) {
	if v == nil {
		return
	}
	if d.kind == "owner" && d.class != classLP && d.class != classCoordinator {
		pass.Reportf(d.pos, "unknown owner class %q on state: want //lint:owner(lp: why) or //lint:owner(coordinator: why), or //lint:shared(why)", d.class)
		return
	}
	if d.reason == "" {
		pass.Reportf(d.pos, "ownership annotation needs a reason: write //lint:%s", exampleFor(d))
		return
	}
	if prev, ok := ann.state[v]; ok && prev.class != d.class {
		pass.Reportf(d.pos, "conflicting ownership for %s: already declared %s at %s", v.Name(), prev.class, shortPos(pass, prev.pos))
		return
	}
	ann.state[v] = annotation{class: d.class, pos: d.pos}
}

func exampleFor(d parsedDirective) string {
	if d.kind == "shared" {
		return "shared(why)"
	}
	return fmt.Sprintf("owner(%s: why)", d.class)
}

func collectFuncAnn(pass *analysis.ProgramPass, pkg *analysis.Package, fd *ast.FuncDecl, ann *ownership, consumed map[*ast.Comment]bool) {
	for _, d := range ownerDirectives(fd.Doc, consumed) {
		if d.kind == "shared" || (d.class != classCoordinator && d.class != classBoundary) {
			pass.Reportf(d.pos, "unknown owner class %q on a function: want //lint:owner(coordinator: why) or //lint:owner(boundary: why)", d.class)
			continue
		}
		if d.reason == "" {
			pass.Reportf(d.pos, "ownership annotation needs a reason: write //lint:%s", exampleFor(d))
			continue
		}
		fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		if prev, ok := ann.funcs[fn]; ok && prev.class != d.class {
			pass.Reportf(d.pos, "conflicting ownership for %s: already declared %s at %s", fn.Name(), prev.class, shortPos(pass, prev.pos))
			continue
		}
		ann.funcs[fn] = annotation{class: d.class, pos: d.pos}
	}
	// Directives on local declarations inside the body surface through the
	// leftover scan; struct fields of local types are walked here so their
	// comments are still classified as misplaced, not silently dropped.
}

func collectDeclAnn(pass *analysis.ProgramPass, pkg *analysis.Package, gd *ast.GenDecl, ann *ownership, consumed map[*ast.Comment]bool) {
	switch gd.Tok {
	case token.VAR:
		declDs := ownerDirectives(gd.Doc, consumed)
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ds := append(append([]parsedDirective(nil), declDs...), ownerDirectives(vs.Doc, consumed)...)
			ds = append(ds, ownerDirectives(vs.Comment, consumed)...)
			for _, name := range vs.Names {
				v, _ := pkg.TypesInfo.Defs[name].(*types.Var)
				for _, d := range ds {
					recordState(pass, ann, v, d)
				}
			}
		}
	case token.TYPE:
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			ast.Inspect(ts.Type, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					ds := append(ownerDirectives(field.Doc, consumed), ownerDirectives(field.Comment, consumed)...)
					for _, name := range field.Names {
						v, _ := pkg.TypesInfo.Defs[name].(*types.Var)
						for _, d := range ds {
							recordState(pass, ann, v, d)
						}
					}
				}
				return true
			})
		}
	}
}

// exemptNames returns the node names of coordinator-phase and boundary
// functions — the bodies the context and dataflow rules do not look inside.
func exemptNames(g *analysis.CallGraph, ann *ownership) map[string]bool {
	out := make(map[string]bool, len(ann.funcs))
	for fn := range ann.funcs {
		if n := g.NodeOf(fn); n != nil {
			out[n.Name] = true
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// LP-context computation.

// lpContext computes the set of functions assumed to run under some LP's
// Env, as a BFS parent tree for witness reconstruction, plus each root's
// scheduling site (where the function value escaped into a callback).
// Deterministic: roots sorted by node name, callees expanded in name order.
func lpContext(prog *analysis.Program, g *analysis.CallGraph, isExempt func(*analysis.FuncNode) bool) (map[*analysis.FuncNode]*analysis.FuncNode, map[*analysis.FuncNode]token.Pos) {
	litNode := make(map[*ast.FuncLit]*analysis.FuncNode)
	for _, n := range g.Nodes {
		if n.Lit != nil {
			litNode[n.Lit] = n
		}
	}

	rootSite := make(map[*analysis.FuncNode]token.Pos)
	note := func(n *analysis.FuncNode, pos token.Pos) {
		if n == nil || isExempt(n) {
			return
		}
		if old, ok := rootSite[n]; !ok || pos < old {
			rootSite[n] = pos
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRootCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					switch v := ast.Unparen(arg).(type) {
					case *ast.FuncLit:
						note(litNode[v], call.Pos())
					case *ast.Ident:
						if fn, ok := pkg.TypesInfo.Uses[v].(*types.Func); ok {
							note(g.NodeOf(fn), call.Pos())
						}
					case *ast.SelectorExpr:
						if fn, ok := pkg.TypesInfo.Uses[v.Sel].(*types.Func); ok {
							note(g.NodeOf(fn), call.Pos())
						}
					}
				}
				return true
			})
		}
	}

	roots := make([]*analysis.FuncNode, 0, len(rootSite))
	for n := range rootSite {
		roots = append(roots, n)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name < roots[j].Name })

	parent := make(map[*analysis.FuncNode]*analysis.FuncNode, len(roots))
	queue := make([]*analysis.FuncNode, 0, len(roots))
	for _, r := range roots {
		parent[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range g.Callees(n) {
			if isExempt(c) {
				continue // boundaries and coordinator phases end LP context
			}
			if _, ok := parent[c]; !ok {
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}
	return parent, rootSite
}

// isRootCall reports whether call resolves to one of the rootAPIs entry
// points — a method match via receiver path/type, or a package function by
// name.
func isRootCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	if recvPath, recvType, name, _, ok := analysis.CallMethod(pkg.TypesInfo, call); ok {
		return rootAPIs[recvPath][recvType+"."+name]
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return rootAPIs[fn.Pkg().Path()][fn.Name()]
}

// witness renders the "scheduled at S; call chain: a → b" suffix for a
// function in LP context.
func witness(pass *analysis.ProgramPass, tree map[*analysis.FuncNode]*analysis.FuncNode, rootSite map[*analysis.FuncNode]token.Pos, n *analysis.FuncNode) string {
	path := analysis.PathFrom(tree, n)
	if len(path) == 0 {
		return ""
	}
	out := fmt.Sprintf(" (callback scheduled at %s)", shortPos(pass, rootSite[path[0]]))
	if len(path) > 1 {
		out += "; call chain: " + analysis.PathString(path)
	}
	return out
}

func shortPos(pass *analysis.ProgramPass, pos token.Pos) string {
	p := pass.Prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---------------------------------------------------------------------------
// Context rules: coordinator-phase calls and shared/coordinator writes.

func checkContext(pass *analysis.ProgramPass, g *analysis.CallGraph, ann *ownership, idx *funcIndex, tree map[*analysis.FuncNode]*analysis.FuncNode, rootSite map[*analysis.FuncNode]token.Pos, isExempt func(*analysis.FuncNode) bool) {
	for _, n := range g.Nodes {
		if _, inLP := tree[n]; !inLP || isExempt(n) {
			continue
		}
		node, pkg := n, n.Pkg
		ast.Inspect(n.Body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.FuncLit:
				return false // its own node — walked separately if reachable
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkWrite(pass, pkg, ann, tree, rootSite, node, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, pkg, ann, tree, rootSite, node, x.X)
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
						checkWrite(pass, pkg, ann, tree, rootSite, node, x.Args[0])
					}
				}
				if callee := calleeFunc(pkg, x); callee != nil {
					if a, ok := idx.coord[idx.nameOf(callee)]; ok {
						if !pass.IsTestFile(x.Pos()) {
							pass.Reportf(x.Pos(), "coordinator-phase function %s (declared at %s) called from LP context%s; coordinator phases run only between epochs, while every LP is quiesced",
								callee.Name(), shortPos(pass, a.pos), witness(pass, tree, rootSite, node))
						}
					}
				}
			}
			return true
		})
	}
}

// checkWrite reports a write to //lint:shared or coordinator-owned state
// from LP context. The lvalue is stripped down through index, slice, paren,
// and star expressions to the base selector or identifier.
func checkWrite(pass *analysis.ProgramPass, pkg *analysis.Package, ann *ownership, tree map[*analysis.FuncNode]*analysis.FuncNode, rootSite map[*analysis.FuncNode]token.Pos, node *analysis.FuncNode, lhs ast.Expr) {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = x.X
			continue
		case *ast.SliceExpr:
			lhs = x.X
			continue
		case *ast.StarExpr:
			lhs = x.X
			continue
		}
		break
	}
	var v *types.Var
	var name string
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		v, _ = pkg.TypesInfo.Uses[x.Sel].(*types.Var)
		name = types.ExprString(x)
	case *ast.Ident:
		v, _ = pkg.TypesInfo.Uses[x].(*types.Var)
		name = x.Name
	default:
		return
	}
	if v == nil {
		return
	}
	a, ok := ann.state[v]
	if !ok || pass.IsTestFile(lhs.Pos()) {
		return
	}
	switch a.class {
	case classShared:
		pass.Reportf(lhs.Pos(), "write to //lint:shared state %s (annotated at %s) from LP context%s; shared state is frozen once the clock starts — mutate it during setup or reclassify it",
			name, shortPos(pass, a.pos), witness(pass, tree, rootSite, node))
	case classCoordinator:
		pass.Reportf(lhs.Pos(), "write to coordinator-owned state %s (annotated at %s) from LP context%s; only the coordinator may mutate it, between epochs — route the update through LP.Send or a coordinator phase",
			name, shortPos(pass, a.pos), witness(pass, tree, rootSite, node))
	}
}

func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.TypesInfo.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Remote-handle dataflow.

func checkRemoteHandles(pass *analysis.ProgramPass, ann *ownership, idx *funcIndex, srcFields map[*types.Var]string, isExempt func(*analysis.FuncNode) bool) {
	prog := pass.Prog
	analysis.RunDataflow(prog, pass.Graph, analysis.DataflowSpec{
		SourceFacts: func(pkg *analysis.Package, e ast.Expr) []analysis.Fact {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if v, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok {
					if _, annotated := srcFields[v]; annotated {
						return []analysis.Fact{{Label: "remote", Pos: x.Pos()}}
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pkg, x); fn != nil && idx.source[idx.nameOf(fn)] {
					return []analysis.Fact{{Label: "remote", Pos: x.Pos()}}
				}
			}
			return nil
		},
		IsSanitizer: func(fn *types.Func) bool {
			name := idx.nameOf(fn)
			return idx.san[name] || idx.boundary[name]
		},
		SkipBody: isExempt,
		ExprSink: func(pkg *analysis.Package, e ast.Expr) []analysis.Sink {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			v, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok {
				return nil
			}
			if a, ok := ann.state[v]; ok && a.class == classLP {
				return []analysis.Sink{{Expr: sel.X, Kind: "lp-owned field", Detail: types.ExprString(sel)}}
			}
			return nil
		},
		CallSink: func(pkg *analysis.Package, call *ast.CallExpr) []analysis.Sink {
			recvPath, recvType, name, sel, ok := analysis.CallMethod(pkg.TypesInfo, call)
			if !ok {
				return nil
			}
			table, ok := schedSinks[recvPath]
			if !ok {
				return nil
			}
			kind, ok := table[recvType+"."+name]
			if !ok {
				return nil
			}
			return []analysis.Sink{{Expr: sel.X, Kind: kind, Detail: types.ExprString(call)}}
		},
		Report: func(fn *analysis.FuncNode, f analysis.Fact, hit analysis.SinkHit) {
			if f.Label != "remote" || pass.IsTestFile(hit.Pos) {
				return
			}
			msg := fmt.Sprintf("possibly-remote handle (obtained at %s) reaches %s %s — Env-affine state of another LP; route the wakeup through LP.Send / a //lint:owner(boundary) channel, or pin it with a same-Env //lint:sanitizer lpowner accessor",
				shortPos(pass, f.Pos), hit.Kind, hit.Detail)
			if len(hit.Chain) > 0 {
				msg += "; call chain: " + fn.Name + " → " + strings.Join(hit.Chain, " → ")
			}
			pass.Reportf(hit.Pos, "%s", msg)
		},
	})
}
