// Package tracecharge verifies the trace-propagation invariants added with
// the per-request trace contexts:
//
//  1. Every span opened with trace.Trace.Begin is ended on all return paths
//     of the function that opened it (EndSpan, or a defer). A span left open
//     records End == -1 and silently drops its cycles from the Figure 6–8
//     breakdowns — the reducers cannot attribute what was never closed.
//  2. An exported function that accepts a *trace.Trace must actually use it
//     — pass it to a callee, charge cycles, open a span. Accepting and
//     dropping a trace context severs the request's observability spine for
//     every layer below.
package tracecharge

import (
	"go/ast"
	"go/types"

	"vread/internal/analysis"
)

// Analyzer is the trace-propagation checker.
var Analyzer = &analysis.Analyzer{
	Name: "tracecharge",
	Doc: "require Begin/EndSpan pairing on all paths and forbid dropped " +
		"*trace.Trace parameters (trace-propagation invariant)",
	Run: run,
}

// skipPkgs implement the trace/engine machinery itself.
var skipPkgs = map[string]bool{
	"vread/internal/trace": true,
	"vread/internal/sim":   true,
}

const tracePath = "vread/internal/trace"

func run(pass *analysis.Pass) error {
	if skipPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, fb := range analysis.FuncBodies(f) {
			checkSpans(pass, fb)
		}
		checkDroppedContexts(pass, f)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Part 1: Begin/EndSpan pairing.

// isTraceMethod reports whether call is (*trace.Trace).<name>.
func isTraceMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	recvPath, recvType, method, _, ok := analysis.CallMethod(pass.TypesInfo, call)
	return ok && recvPath == tracePath && recvType == "Trace" && method == name
}

func checkSpans(pass *analysis.Pass, fb analysis.FuncBody) {
	info := pass.TypesInfo
	hooks := analysis.FlowHooks{
		Classify: func(stmt ast.Stmt, isDefer bool) ([]analysis.Held, []interface{}) {
			var acq []analysis.Held
			var rel []interface{}
			visit := func(n ast.Node, inDeferredLit bool) {
				switch v := n.(type) {
				case *ast.AssignStmt:
					if len(v.Lhs) != len(v.Rhs) {
						break
					}
					for i, rhs := range v.Rhs {
						call, ok := ast.Unparen(rhs).(*ast.CallExpr)
						if !ok || !isTraceMethod(pass, call, "Begin") {
							continue
						}
						id, ok := v.Lhs[i].(*ast.Ident)
						if !ok || id.Name == "_" {
							pass.Reportf(call.Pos(), "span index from Begin is discarded, so the span can never be ended and its cycles vanish from the breakdowns (trace-propagation invariant)")
							continue
						}
						if obj := info.ObjectOf(id); obj != nil && !inDeferredLit {
							acq = append(acq, analysis.Held{Key: obj, Pos: call.Pos()})
						}
					}
				case *ast.ExprStmt:
					call, ok := ast.Unparen(v.X).(*ast.CallExpr)
					if ok && isTraceMethod(pass, call, "Begin") {
						pass.Reportf(call.Pos(), "result of Begin is discarded, so the span can never be ended and its cycles vanish from the breakdowns (trace-propagation invariant)")
					}
				case *ast.CallExpr:
					if isTraceMethod(pass, v, "EndSpan") && len(v.Args) > 0 {
						if id := analysis.RootIdent(v.Args[0]); id != nil {
							if obj := info.ObjectOf(id); obj != nil {
								rel = append(rel, interface{}(obj))
							}
						}
					} else {
						// A span index escaping into any other call (helper
						// that closes it, append into a batch) transfers
						// ownership; stop tracking it rather than guess.
						for _, k := range escapingSpanArgs(pass, v) {
							rel = append(rel, k)
						}
					}
				}
			}
			captured := func(id *ast.Ident) {
				obj := info.ObjectOf(id)
				if obj == nil {
					return
				}
				if b, ok := obj.Type().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					rel = append(rel, interface{}(obj))
				}
			}
			walkStmt(stmt, isDefer, visit, captured)
			return acq, rel
		},
		AtExit: func(ret *ast.ReturnStmt, held []analysis.Held) {
			for _, h := range held {
				obj := h.Key.(types.Object)
				if ret != nil {
					// A span index returned to the caller transfers
					// ownership.
					if returnsObj(pass, ret, obj) {
						continue
					}
					pass.Reportf(ret.Pos(), "span %q (opened at line %d) is not ended on this return path, so its cycles vanish from the Figure 6-8 breakdowns (trace-propagation invariant: every Begin must reach EndSpan)",
						obj.Name(), pass.Fset.Position(h.Pos).Line)
					continue
				}
				pass.Reportf(h.Pos, "span %q is not ended before %s falls off the end, so its cycles vanish from the Figure 6-8 breakdowns (trace-propagation invariant: every Begin must reach EndSpan)",
					obj.Name(), fb.Name)
			}
		},
	}
	analysis.WalkPaths(fb.Body, hooks)
}

// escapingSpanArgs returns the objects of plain identifier arguments of
// integer type passed to non-EndSpan calls — potential span-index handoffs.
// Only identifiers already tracked will match in the held set; everything
// else is ignored by the walker.
func escapingSpanArgs(pass *analysis.Pass, call *ast.CallExpr) []interface{} {
	if isTraceMethod(pass, call, "Annotate") {
		return nil // Annotate reads the index without closing the span
	}
	var out []interface{}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if b, ok := obj.Type().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					out = append(out, interface{}(obj))
				}
			}
		}
	}
	return out
}

func returnsObj(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	for _, r := range ret.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// walkStmt visits nodes of stmt, handling nested function literals by
// ownership: a deferred closure runs at function exit, so its EndSpan calls
// are defer-releases; any other closure that captures a span variable (the
// async-completion idiom — EndSpan inside a Schedule or PostT callback)
// takes ownership of it, so the enclosing function stops tracking it.
func walkStmt(stmt ast.Stmt, isDefer bool, visit func(n ast.Node, inDeferredLit bool), captured func(id *ast.Ident)) {
	var lits []*ast.FuncLit
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		visit(n, false)
		return true
	})
	for _, lit := range lits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && isDefer {
				return false
			}
			if isDefer {
				visit(n, true)
			} else if id, ok := n.(*ast.Ident); ok {
				// Captures anywhere under the literal count, including
				// inside further-nested completion callbacks.
				captured(id)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Part 2: dropped trace contexts.

// checkDroppedContexts flags exported functions that accept a named
// *trace.Trace parameter and never touch it. The entry points of the read
// path (core, hdfs, qfs, guest, virtio, netsim, storage) thread the request
// trace downward; a signature that accepts one and drops it silently
// truncates every breakdown below that layer.
func checkDroppedContexts(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		for _, field := range fd.Type.Params.List {
			if !isTracePtr(pass, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue // explicitly discarded in the signature
				}
				obj := pass.TypesInfo.ObjectOf(name)
				if obj == nil || usesObj(pass, fd.Body, obj) {
					continue
				}
				pass.Reportf(name.Pos(), "exported %s accepts trace context %q but never uses it: the request's spans and cycle charges are silently dropped below this layer (trace-propagation invariant); pass it to the callees or annotate why not",
					fd.Name.Name, name.Name)
			}
		}
	}
}

func isTracePtr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == tracePath && named.Obj().Name() == "Trace"
}

func usesObj(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
