// Package tracefix exercises the trace-propagation analyzer against the
// real trace.Trace type: span leaks on return paths, discarded Begin
// results, dropped trace-context parameters, and the ownership-transfer
// idioms (defer, return, async completion callback).
package tracefix

import "vread/internal/trace"

func Leak(tr *trace.Trace, fail bool) {
	sp := tr.Begin(trace.LayerLib, "op")
	if fail {
		return // want `span "sp" \(opened at line \d+\) is not ended on this return path`
	}
	tr.EndSpan(sp, 0)
}

func LeakEnd(tr *trace.Trace) {
	sp := tr.Begin(trace.LayerLib, "op") // want `span "sp" is not ended before LeakEnd falls off the end`
	tr.Annotate(sp, "k", "v")
}

func Discard(tr *trace.Trace) {
	tr.Begin(trace.LayerLib, "op") // want `result of Begin is discarded`
}

func Blank(tr *trace.Trace) {
	_ = tr.Begin(trace.LayerLib, "op") // want `span index from Begin is discarded`
}

// Dropped accepts a trace context and never touches it.
func Dropped(tr *trace.Trace) { // want `exported Dropped accepts trace context "tr" but never uses it`
	_ = 0
}

// Deferred ends its span through a defer: fine on every path.
func Deferred(tr *trace.Trace, fail bool) int {
	sp := tr.Begin(trace.LayerLib, "op")
	defer tr.EndSpan(sp, 0)
	if fail {
		return 0
	}
	return 1
}

// Transfer hands the span index to the caller, which owns ending it.
func Transfer(tr *trace.Trace) int {
	return tr.Begin(trace.LayerLib, "op")
}

// Async ends the span inside a completion callback — the closure takes
// ownership of it (the Schedule/PostT idiom).
func Async(tr *trace.Trace, submit func(func())) {
	sp := tr.Begin(trace.LayerLib, "op")
	submit(func() {
		tr.EndSpan(sp, 0)
	})
}

// Annotated exercises the escape hatch: the collector ends this span, so
// leaving it open here is deliberate.
func Annotated(tr *trace.Trace, fail bool) {
	sp := tr.Begin(trace.LayerLib, "op")
	if fail {
		return //lint:allow tracecharge(span ownership documented: the collector ends it)
	}
	tr.EndSpan(sp, 0)
}
