package tracecharge_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/tracecharge"
)

func TestTraceCharge(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tracecharge.Analyzer, "tracefix")
}
