// Package supc compiles as an external test package — the package clause
// ends in _test — but the file is not named *_test.go, which is how external
// test files reach an analyzer through fixture trees and generated code.
// Pass.IsTestFile must classify it by package clause, so the raw goroutine
// below must produce no diagnostic (analyzers exempt test files).
package supc_test

func Spawn(f func()) {
	go f()
}
