// Package allowfix exercises stale-suppression reporting: an //lint:allow
// that suppresses a live finding stays silent, one whose finding has gone
// away is itself reported, and one naming an analyzer outside the ran set is
// skipped rather than guessed about.
package allowfix

// Spawn still violates simdiscipline; its allow is used and draws nothing.
func Spawn(f func()) {
	go f() //lint:allow simdiscipline(fixture: the violation is the point)
}

// Fixed no longer contains the violation its allow once suppressed.
func Fixed(f func()) {
	//lint:allow simdiscipline(fixture: stale, the go statement is gone) // want `stale suppression: no simdiscipline finding on this line anymore`
	f()
}

// Other carries an allow for an analyzer that does not run in this fixture's
// suite; staleness cannot be judged, so it is not reported.
func Other() {
	//lint:allow hotalloc(fixture: analyzer not in the ran set)
	_ = make([]int, 4)
}
