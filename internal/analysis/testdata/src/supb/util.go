// Package supb holds the same violation as supa, in a file with the same
// basename (util.go) and on the same line number. The //lint:allow in
// supa/util.go must not reach it: suppressions are keyed by the file's full
// path as recorded in the FileSet.
package supb

func Spawn(f func()) {
	go f() // want `raw go statement outside internal/sim`
}
