// Package supa holds one suppressed violation. Its file shares the basename
// util.go with supb/util.go, and the violation sits on the same line number
// there: if suppressions were keyed by basename instead of full path, the
// allow below would silently mask supb's finding.
package supa

func Spawn(f func()) {
	go f() //lint:allow simdiscipline(fixture: proves suppression keys on full path)
}
