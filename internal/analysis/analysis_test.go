package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func mustParse(t *testing.T, fset *token.FileSet, name, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	return f
}

// TestPassIsTestFile pins down all three ways a position can land in a test
// file: the *_test.go filename, membership in a type-checked file whose
// package clause names an external test package (package foo_test — fixture
// trees and generated files don't always follow the filename convention),
// and plain package files, which must stay non-test.
func TestPassIsTestFile(t *testing.T) {
	fset := token.NewFileSet()
	regular := mustParse(t, fset, "a/regular.go", "package foo\n")
	external := mustParse(t, fset, "a/external.go", "package foo_test\n")
	named := mustParse(t, fset, "a/x_test.go", "package foo\n")
	pass := &Pass{Fset: fset, Files: []*ast.File{regular, external, named}}

	if pass.IsTestFile(regular.Name.Pos()) {
		t.Errorf("regular.go (package foo) classified as a test file")
	}
	if !pass.IsTestFile(external.Name.Pos()) {
		t.Errorf("external.go (package foo_test) not classified as a test file: the package-clause check is broken")
	}
	if !pass.IsTestFile(named.Name.Pos()) {
		t.Errorf("x_test.go not classified as a test file by filename")
	}
}

// TestProgramPassIsTestFile covers the program-level variant: positions in a
// package's parse-only TestFiles and in external-test-package Files must
// classify as test positions; ordinary package files must not.
func TestProgramPassIsTestFile(t *testing.T) {
	fset := token.NewFileSet()
	regular := mustParse(t, fset, "b/regular.go", "package bar\n")
	external := mustParse(t, fset, "b/external.go", "package bar_test\n")
	arming := mustParse(t, fset, "b/arming.go", "package bar\n") // lives in TestFiles
	pkg := &Package{
		Path:      "b",
		Fset:      fset,
		Files:     []*ast.File{regular, external},
		TestFiles: []*ast.File{arming},
	}
	pass := &ProgramPass{Prog: NewProgram([]*Package{pkg})}

	if pass.IsTestFile(regular.Name.Pos()) {
		t.Errorf("regular.go classified as a test file")
	}
	if !pass.IsTestFile(external.Name.Pos()) {
		t.Errorf("external.go (package bar_test) not classified as a test file")
	}
	if !pass.IsTestFile(arming.Name.Pos()) {
		t.Errorf("TestFiles member not classified as a test file")
	}
}
