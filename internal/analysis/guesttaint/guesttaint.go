// Package guesttaint machine-checks the simulator's trust boundary: the
// guest↔daemon shared-memory ring. Every queue field annotated
//
//	//lint:source guesttaint(reason)
//
// holds guest-written descriptors; values popped off it are hostile until
// they pass a function annotated
//
//	//lint:sanitizer guesttaint(reason)
//
// A declared sanitizer launders every argument it is passed and returns
// clean values, so both `req, ok := d.sanitize(req)` and the bool-guard
// `if !d.valid(req) { ... }` idioms work. Unlaundered guest values must not
// reach a slice/array/string index, a slice bound, a copy or make length, a
// map key (including delete), or a sim.Env schedule delay — the sinks where
// a hostile length or offset becomes an out-of-bounds access or a stalled
// event loop. Reports carry the pop site and, for flows through callees, the
// call-chain witness.
package guesttaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"vread/internal/analysis"
)

// Analyzer is the guest-taint invariant.
var Analyzer = &analysis.Analyzer{
	Name:       "guesttaint",
	Doc:        "guest-written ring values must pass a declared //lint:sanitizer guesttaint function before index, copy-length, map-key, and schedule-delay sinks",
	RunProgram: run,
}

const simPath = "vread/internal/sim"

// popMethods are the sim.Queue methods that hand a guest-written element to
// host-side code.
var popMethods = map[string]bool{"Get": true, "TryGet": true, "GetTimeout": true, "Peek": true}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog
	badDirective := func(pos token.Pos, msg string) { pass.Reportf(pos, "%s", msg) }
	sanitizers := analysis.AnnotatedFuncs(prog, "sanitizer", "guesttaint", badDirective)
	sources := analysis.AnnotatedFields(prog, "source", "guesttaint", badDirective)

	analysis.RunDataflow(prog, pass.Graph, analysis.DataflowSpec{
		SourceFacts: func(pkg *analysis.Package, e ast.Expr) []analysis.Fact {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return nil
			}
			recvPath, recvType, name, sel, ok := analysis.CallMethod(pkg.TypesInfo, call)
			if !ok || recvPath != simPath || recvType != "Queue" || !popMethods[name] {
				return nil
			}
			if !refsSourceField(pkg, sel.X, sources) {
				return nil
			}
			return []analysis.Fact{{Label: "guest", Pos: call.Pos()}}
		},
		IsSanitizer: func(fn *types.Func) bool {
			_, ok := sanitizers[fn.Origin()]
			return ok
		},
		ExprSink: exprSinks,
		CallSink: callSinks,
		Report: func(fn *analysis.FuncNode, f analysis.Fact, hit analysis.SinkHit) {
			if f.Label != "guest" || pass.IsTestFile(hit.Pos) {
				return
			}
			src := prog.Fset.Position(f.Pos)
			msg := fmt.Sprintf("guest-controlled value (ring pop at %s:%d) reaches %s %s without a declared sanitizer; validate it through a //lint:sanitizer guesttaint function",
				filepath.Base(src.Filename), src.Line, hit.Kind, hit.Detail)
			if len(hit.Chain) > 0 {
				msg += "; call chain: " + fn.Name + " → " + strings.Join(hit.Chain, " → ")
			}
			pass.Reportf(hit.Pos, "%s", msg)
		},
	})
	return nil
}

// refsSourceField reports whether the receiver expression reads through an
// annotated guest-written field (d.ring.reqs → field reqs).
func refsSourceField(pkg *analysis.Package, e ast.Expr, sources map[*types.Var]string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok {
				if _, annotated := sources[v]; annotated {
					found = true
				}
			}
		case *ast.Ident:
			if v, ok := pkg.TypesInfo.Uses[x].(*types.Var); ok {
				if _, annotated := sources[v]; annotated {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// exprSinks declares the indexing sinks.
func exprSinks(pkg *analysis.Package, e ast.Expr) []analysis.Sink {
	switch x := e.(type) {
	case *ast.IndexExpr:
		// Skip generic instantiations (Queue[T]): the "index" is a type.
		if tv, ok := pkg.TypesInfo.Types[x.Index]; ok && tv.IsType() {
			return nil
		}
		t := pkg.TypesInfo.TypeOf(x.X)
		if t == nil {
			return nil
		}
		switch u := t.Underlying().(type) {
		case *types.Map:
			return []analysis.Sink{{Expr: x.Index, Kind: "map key", Detail: types.ExprString(x)}}
		case *types.Slice, *types.Array:
			return []analysis.Sink{{Expr: x.Index, Kind: "slice index", Detail: types.ExprString(x)}}
		case *types.Pointer:
			if _, isArr := u.Elem().Underlying().(*types.Array); isArr {
				return []analysis.Sink{{Expr: x.Index, Kind: "slice index", Detail: types.ExprString(x)}}
			}
		case *types.Basic:
			if u.Info()&types.IsString != 0 {
				return []analysis.Sink{{Expr: x.Index, Kind: "string index", Detail: types.ExprString(x)}}
			}
		}
	case *ast.SliceExpr:
		var out []analysis.Sink
		for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
			if bound != nil {
				out = append(out, analysis.Sink{Expr: bound, Kind: "slice bound", Detail: types.ExprString(x)})
			}
		}
		return out
	}
	return nil
}

// callSinks declares the copy/make/delete and schedule-delay sinks.
func callSinks(pkg *analysis.Package, call *ast.CallExpr) []analysis.Sink {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy":
				// The copied length is min(len(dst), len(src)): either slice
				// being guest-derived makes the copy guest-sized.
				var out []analysis.Sink
				for _, a := range call.Args {
					out = append(out, analysis.Sink{Expr: a, Kind: "copy length", Detail: types.ExprString(call)})
				}
				return out
			case "make":
				var out []analysis.Sink
				for _, a := range call.Args[1:] {
					out = append(out, analysis.Sink{Expr: a, Kind: "make size", Detail: types.ExprString(call)})
				}
				return out
			case "delete":
				if len(call.Args) == 2 {
					return []analysis.Sink{{Expr: call.Args[1], Kind: "map key", Detail: types.ExprString(call)}}
				}
			}
			return nil
		}
	}
	recvPath, recvType, name, _, ok := analysis.CallMethod(pkg.TypesInfo, call)
	if !ok || recvPath != simPath {
		return nil
	}
	sink := func(arg int) []analysis.Sink {
		if arg >= len(call.Args) {
			return nil
		}
		return []analysis.Sink{{Expr: call.Args[arg], Kind: "schedule delay", Detail: types.ExprString(call)}}
	}
	switch recvType + "." + name {
	case "Env.Schedule", "Env.RunFor", "Env.RunUntil", "Proc.Sleep":
		return sink(0)
	case "Queue.GetTimeout", "Signal.WaitTimeout":
		return sink(1)
	}
	return nil
}
