package guesttaint_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/guesttaint"
)

func TestGuestTaint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), guesttaint.Analyzer,
		"taintfix", "vread/internal/sim")
}
