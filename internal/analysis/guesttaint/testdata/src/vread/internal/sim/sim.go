// Package sim stands in for the engine package: guesttaint matches ring pops
// on sim.Queue receivers and the delay arguments of the sim time APIs by
// import path, so fixtures import this stub at the real path.
package sim

import "time"

// Env is the event-loop stub.
type Env struct{}

// Schedule runs fn after d.
func (e *Env) Schedule(d time.Duration, fn func()) {}

// RunFor advances the clock by d.
func (e *Env) RunFor(d time.Duration) {}

// Proc is the process stub.
type Proc struct{}

// Sleep blocks p for d.
func (p *Proc) Sleep(d time.Duration) {}

// Queue is the bounded queue the analyzer treats as the ring boundary.
type Queue[T any] struct{ zero T }

// NewQueue creates a queue.
func NewQueue[T any](env *Env, capacity int) *Queue[T] { return &Queue[T]{} }

// Get pops one element.
func (q *Queue[T]) Get(p *Proc) (T, bool) { return q.zero, false }

// TryGet pops without blocking.
func (q *Queue[T]) TryGet() (T, bool) { return q.zero, false }

// GetTimeout pops with a deadline.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) { return q.zero, false }

// Peek returns the head without popping.
func (q *Queue[T]) Peek() (T, bool) { return q.zero, false }

// Put pushes one element.
func (q *Queue[T]) Put(p *Proc, v T) {}

// Signal is the condition-variable stub.
type Signal struct{}

// WaitTimeout waits with a deadline.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool { return false }
