// Package taintfix exercises the guest-taint boundary: values popped off an
// annotated ring queue are hostile until a declared sanitizer accepts them,
// and must not reach index, copy-length, map-key, or schedule-delay sinks.
package taintfix

import (
	"time"

	"vread/internal/sim"
)

type req struct {
	dn  string
	off int64
	n   int64
}

type dev struct {
	env *sim.Env
	// reqs is the guest-written descriptor ring.
	//
	//lint:source guesttaint(descriptor area is guest-writable)
	reqs *sim.Queue[req]
	// trusted is host-internal: pops off it draw no findings.
	trusted *sim.Queue[req]

	mounts map[string]int
	slots  []byte
}

// sanitize launders a descriptor by value.
//
//lint:sanitizer guesttaint(bounds-checks the byte range)
func (d *dev) sanitize(r req) (req, bool) {
	if r.off < 0 || r.n < 0 || r.off+r.n < 0 {
		return r, false
	}
	return r, true
}

// valid is the bool-guard sanitizer idiom: the argument itself is laundered.
//
//lint:sanitizer guesttaint(rejects negative ranges)
func (d *dev) valid(r req) bool {
	return r.off >= 0 && r.n >= 0
}

// lookup indexes the mount map with its argument; callers feeding it guest
// data get a call-chain witness.
func (d *dev) lookup(dn string) int {
	return d.mounts[dn]
}

// raw uses a popped descriptor with no sanitizer: every sink fires.
func (d *dev) raw(p *sim.Proc) {
	r, ok := d.reqs.Get(p)
	if !ok {
		return
	}
	_ = d.mounts[r.dn]                            // want `map key d\.mounts\[r\.dn\] without a declared sanitizer`
	_ = d.slots[r.off]                            // want `slice index d\.slots\[r\.off\] without a declared sanitizer`
	_ = d.slots[:r.n]                             // want `slice bound`
	delete(d.mounts, r.dn)                        // want `map key delete\(d\.mounts, r\.dn\)`
	buf := make([]byte, r.n)                      // want `make size`
	copy(buf, r.dn)                               // want `copy length`
	d.env.Schedule(time.Duration(r.n), func() {}) // want `schedule delay`
	p.Sleep(time.Duration(r.off))                 // want `schedule delay`
}

// chained reaches the map through a helper: the report cites the chain.
func (d *dev) chained(p *sim.Proc) {
	r, ok := d.reqs.TryGet()
	if !ok {
		return
	}
	_ = p
	_ = d.lookup(r.dn) // want `map key d\.mounts\[dn\] .*call chain: \(taintfix\.dev\)\.chained → \(taintfix\.dev\)\.lookup`
}

// sanitized launders the descriptor at the pop: no findings.
func (d *dev) sanitized(p *sim.Proc) {
	r, ok := d.reqs.Get(p)
	if !ok {
		return
	}
	r, ok = d.sanitize(r)
	if !ok {
		return
	}
	_ = d.mounts[r.dn]
	_ = d.slots[r.off]
	d.env.Schedule(time.Duration(r.n), func() {})
}

// guarded uses the bool-guard idiom: passing r to the sanitizer launders it.
func (d *dev) guarded(p *sim.Proc) {
	r, ok := d.reqs.Get(p)
	if !ok {
		return
	}
	if !d.valid(r) {
		return
	}
	_ = d.slots[r.off]
}

// hostSide pops an unannotated queue: not guest data, no findings.
func (d *dev) hostSide(p *sim.Proc) {
	r, ok := d.trusted.Get(p)
	if !ok {
		return
	}
	_ = d.mounts[r.dn]
	_ = d.slots[r.off]
}

// allowed documents a deliberate exception through the suppression comment.
func (d *dev) allowed(p *sim.Proc) {
	r, ok := d.reqs.Get(p)
	if !ok {
		return
	}
	//lint:allow guesttaint(fixture proves the escape hatch works)
	_ = d.mounts[r.dn]
}
