package analysis

// The program-level driver. RunSuite is what cmd/vread-lint's standalone
// mode and the analysistest harness call: it loads nothing itself (callers
// bring a []*Package from Load or a fixture loader), builds the shared call
// graph once, merges //lint:allow suppressions across every file of every
// package — keyed by full path, so same-named files in different packages
// cannot suppress each other's findings — and runs per-package analyzers on
// each package and program analyzers on the whole.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Program is one loaded set of packages plus the interprocedural state the
// program analyzers share.
type Program struct {
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package

	graph *CallGraph
}

// NewProgram assembles a Program from loaded packages. All packages must
// share one *token.FileSet (Load and the fixture loader guarantee this).
func NewProgram(pkgs []*Package) *Program {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var fset *token.FileSet
	if len(sorted) > 0 {
		fset = sorted[0].Fset
	}
	return &Program{Fset: fset, Pkgs: sorted}
}

// Graph returns the program's call graph, building it on first use.
func (prog *Program) Graph() *CallGraph {
	if prog.graph == nil {
		prog.graph = BuildCallGraph(prog)
	}
	return prog.graph
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package {
	for _, p := range prog.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// ProgramPass carries the whole program through one program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Graph    *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a test file of any program package
// — by filename suffix, or by landing in a parsed TestFiles entry, or in a
// type-checked file whose package clause names an external test package.
func (p *ProgramPass) IsTestFile(pos token.Pos) bool {
	if strings.HasSuffix(p.Prog.Fset.Position(pos).Filename, "_test.go") {
		return true
	}
	for _, pkg := range p.Prog.Pkgs {
		for _, f := range pkg.TestFiles {
			if f.FileStart <= pos && pos < f.FileEnd {
				return true
			}
		}
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return strings.HasSuffix(f.Name.Name, "_test")
			}
		}
	}
	return false
}

// RunSuite applies the analyzers — per-package and program-level — to the
// program and returns the surviving findings sorted by position. One merged
// suppression index spans every file (sources and test files of every
// package); because it is keyed by the file's full path as recorded in the
// FileSet, a //lint:allow in pkg/a/util.go can never mask a finding in
// pkg/b/util.go.
func RunSuite(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := runSuite(prog, analyzers, false)
	return diags, err
}

// RunSuiteUnused is RunSuite plus stale-suppression reporting: every
// //lint:allow naming one of the ran analyzers that suppressed nothing comes
// back as an "unused-allow" diagnostic. Callers should pass the full suite —
// under a subset, allows for the analyzers that did not run are skipped, not
// reported.
func RunSuiteUnused(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := runSuite(prog, analyzers, true)
	return diags, err
}

// RunSuiteTimed is RunSuite (or RunSuiteUnused when reportUnused is set)
// plus one wall-clock timing row per analyzer, in suite order, for the
// versioned report. Suppressed findings do not count toward a row's
// finding total.
func RunSuiteTimed(prog *Program, analyzers []*Analyzer, reportUnused bool) ([]Diagnostic, []AnalyzerTiming, error) {
	return runSuite(prog, analyzers, reportUnused)
}

func runSuite(prog *Program, analyzers []*Analyzer, reportUnused bool) ([]Diagnostic, []AnalyzerTiming, error) {
	var all []*ast.File
	for _, pkg := range prog.Pkgs {
		all = append(all, pkg.Files...)
		all = append(all, pkg.TestFiles...)
	}
	sup, bad := buildSuppressions(prog.Fset, all)
	diags := bad
	timings := make([]AnalyzerTiming, 0, len(analyzers))

	for _, a := range analyzers {
		start := time.Now() //lint:allow determinism(wall-clock timing rows measure the analyzers, not the simulation)
		var out []Diagnostic
		if a.RunProgram != nil {
			pass := &ProgramPass{Analyzer: a, Prog: prog, Graph: prog.Graph(), diags: &out}
			if err := a.RunProgram(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
			}
		} else {
			for _, pkg := range prog.Pkgs {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					diags:     &out,
				}
				if err := a.Run(pass); err != nil {
					return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
				}
			}
		}
		kept := 0
		for _, d := range out {
			if !sup.suppressed(d) {
				diags = append(diags, d)
				kept++
			}
		}
		timings = append(timings, AnalyzerTiming{
			Analyzer: a.Name,
			Millis:   time.Since(start).Milliseconds(), //lint:allow determinism(wall-clock timing rows measure the analyzers, not the simulation)
			Findings: kept,
		})
	}
	if reportUnused {
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		diags = append(diags, sup.unused(ran)...)
	}
	sortDiagnostics(diags)
	return diags, timings, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
