package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TestFiles holds the package's test files — both the in-package
	// (TestGoFiles) and external-package (XTestGoFiles) variants — parsed
	// syntax-only. They are not type-checked (external test packages cannot
	// be checked together with the package proper), so program analyzers that
	// consult them (faultpoint's arming checks) work on the AST alone.
	TestFiles []*ast.File
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	DepOnly      bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns with `go list -export
// -deps` (run in dir), then parses and type-checks every non-dependency
// match. Dependencies — including the standard library — are imported from
// their compiled export data, so loading needs no network and no
// pre-installed tooling beyond the go command itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,TestGoFiles,XTestGoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := Check(fset, imp, t.ImportPath, t.Dir, absJoin(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		testNames := append(absJoin(t.Dir, t.TestGoFiles), absJoin(t.Dir, t.XTestGoFiles)...)
		pkg.TestFiles, err = ParseOnly(fset, testNames)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ParseOnly parses the named files without type-checking them.
func ParseOnly(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// ExportImporter returns a types.Importer that resolves import paths through
// compiled export data files named by lookup.
func ExportImporter(fset *token.FileSet, lookup func(path string) (file string, ok bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses the named files and type-checks them as one package.
func Check(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, TypesInfo: info}, nil
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}
