package unitflow_test

import (
	"testing"

	"vread/internal/analysis/analysistest"
	"vread/internal/analysis/unitflow"
)

func TestUnitFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unitflow.Analyzer, "unitfix")
}
