// Package unitfix exercises the unit discipline: cycles must reach
// time.Duration only through declared converters, and byte counts must not
// mix into cycle arithmetic except via the bytes × cyclesPerKB idiom.
package unitfix

import "time"

type cfg struct {
	KickCycles      int64
	CopyCyclesPerKB int64
	SegmentBytes    int64
}

// DurFor is the declared converter: its body is the one place the raw
// conversion may live.
//
//lint:converter unitflow(fixture's blessed cycles→time crossing)
func DurFor(cycles int64) time.Duration {
	return time.Duration(cycles)
}

// charge declares a cycles parameter; byte counts must not feed it.
func charge(cycles int64) {}

// setupCycles labels its result by name.
func setupCycles() int64 { return 100 }

func bad(c cfg) {
	_ = time.Duration(c.KickCycles)    // want `cycle count converted directly to time\.Duration`
	_ = time.Duration(setupCycles())   // want `cycle count converted directly to time\.Duration`
	_ = c.KickCycles + c.SegmentBytes  // want `byte count mixed into cycle arithmetic`
	_ = c.SegmentBytes * c.KickCycles  // want `byte count multiplied into cycle arithmetic`
	charge(c.SegmentBytes)             // want `byte count passed as the cycles argument of charge`
	d := c.KickCycles - c.SegmentBytes // want `byte count mixed into cycle arithmetic`
	_ = d
}

// allowed carries the same violation as bad, suppressed through the escape
// hatch: no want, so the harness proves the allow is honored.
func allowed(c cfg) {
	_ = time.Duration(c.KickCycles) //lint:allow unitflow(fixture proves the escape hatch works)
}

func good(c cfg) {
	_ = DurFor(c.KickCycles)
	// The blessed idiom: bytes × rate (/1024) yields cycles.
	copyCycles := c.SegmentBytes * c.CopyCyclesPerKB / 1024
	charge(copyCycles)
	charge(c.KickCycles + c.SegmentBytes*c.CopyCyclesPerKB/1024)
	_ = DurFor(c.SegmentBytes * c.CopyCyclesPerKB / 1024)
	// Dividing like units cancels; comparisons carry no units.
	if c.KickCycles > 0 && c.SegmentBytes > 0 {
		_ = c.SegmentBytes / 1024
	}
}
