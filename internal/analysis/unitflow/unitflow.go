// Package unitflow enforces the simulator's unit discipline between its
// three scalar currencies: CPU cycles (the `*Cycles` config fields and
// everything derived from them), byte counts (`*Bytes` fields), and
// simulated time (time.Duration). The type system separates Duration from
// int64 but not cycles from bytes, so this analyzer tracks units by
// dataflow:
//
//   - a cycles-carrying value must not be converted straight to
//     time.Duration — only the canonical converters, annotated
//     //lint:converter unitflow(reason), may cross that boundary
//     (their bodies are exempt from the rules; that is where the one
//     legitimate conversion lives);
//   - a byte count must not mix into cycle arithmetic (+ - % *) except
//     through the blessed bytes × cyclesPerKB idiom, which yields cycles;
//   - a byte-carrying value must not be passed where a callee declares a
//     `cycles` parameter.
//
// Units seed from names: integer fields, constants, and variables ending in
// Cycles are cycles, ending in CyclesPerKB are rates, ending in Bytes are
// byte counts; calls to functions named *Cycles or *CyclesFor yield cycles.
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"vread/internal/analysis"
)

// Analyzer is the unit-discipline invariant.
var Analyzer = &analysis.Analyzer{
	Name:       "unitflow",
	Doc:        "cycles must reach simulated time only through //lint:converter unitflow helpers; byte counts must not mix into cycle arithmetic",
	RunProgram: run,
}

var (
	rateName   = regexp.MustCompile(`[Cc]yclesPerKB$`)
	cyclesName = regexp.MustCompile(`[Cc]ycles(For)?$`)
	bytesName  = regexp.MustCompile(`[Bb]ytes$`)
)

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog
	badDirective := func(pos token.Pos, msg string) { pass.Reportf(pos, "%s", msg) }
	converters := analysis.AnnotatedFuncs(prog, "converter", "unitflow", badDirective)

	analysis.RunDataflow(prog, pass.Graph, analysis.DataflowSpec{
		SourceFacts: func(pkg *analysis.Package, e ast.Expr) []analysis.Fact {
			switch x := e.(type) {
			case *ast.CallExpr:
				if fn := staticCallee(pkg, x); fn != nil {
					if _, isConv := converters[fn.Origin()]; isConv {
						// A declared converter's result is the unit its
						// signature says — Duration results are typed, and
						// cycles results are covered by the name rule below.
						if cyclesName.MatchString(fn.Name()) {
							return []analysis.Fact{{Label: "cycles", Pos: x.Pos()}}
						}
						return nil
					}
					if !rateName.MatchString(fn.Name()) && cyclesName.MatchString(fn.Name()) {
						return []analysis.Fact{{Label: "cycles", Pos: x.Pos()}}
					}
				}
				return nil
			case *ast.Ident:
				return unitOfObj(resolve(pkg, x), e.Pos())
			case *ast.SelectorExpr:
				return unitOfObj(pkg.TypesInfo.Uses[x.Sel], e.Pos())
			}
			return nil
		},
		SkipBody: func(n *analysis.FuncNode) bool {
			if n.Obj == nil {
				return false
			}
			_, ok := converters[n.Obj]
			return ok
		},
		ExprSink: func(pkg *analysis.Package, e ast.Expr) []analysis.Sink {
			call, ok := e.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return nil
			}
			if !isDurationConversion(pkg, call) {
				return nil
			}
			return []analysis.Sink{{Expr: call.Args[0], Kind: "duration-conv", Detail: types.ExprString(call)}}
		},
		CallSink: func(pkg *analysis.Package, call *ast.CallExpr) []analysis.Sink {
			fn := staticCallee(pkg, call)
			if fn == nil {
				return nil
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return nil
			}
			var out []analysis.Sink
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if cyclesName.MatchString(sig.Params().At(i).Name()) && !rateName.MatchString(sig.Params().At(i).Name()) {
					out = append(out, analysis.Sink{Expr: call.Args[i], Kind: "cycles-param", Detail: fn.Name()})
				}
			}
			return out
		},
		OnBinary: onBinary,
		Report: func(fn *analysis.FuncNode, f analysis.Fact, hit analysis.SinkHit) {
			if pass.IsTestFile(hit.Pos) {
				return
			}
			switch {
			case hit.Kind == "duration-conv" && f.Label == "cycles":
				pass.Reportf(hit.Pos, "cycle count converted directly to time.Duration in %s; go through a //lint:converter unitflow helper (cpusched.CPU.DurFor)", hit.Detail)
			case hit.Kind == "cycles-param" && f.Label == "bytes":
				pass.Reportf(hit.Pos, "byte count passed as the cycles argument of %s; convert with a cycles-per-KB helper first", hit.Detail)
			case hit.Kind == "unit-mix":
				pass.Reportf(hit.Pos, "%s", hit.Detail)
			}
		},
	})
	return nil
}

// resolve returns the object an identifier uses or defines.
func resolve(pkg *analysis.Package, id *ast.Ident) types.Object {
	if obj := pkg.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pkg.TypesInfo.Defs[id]
}

// unitOfObj maps a named integer variable or constant to its unit fact.
func unitOfObj(obj types.Object, pos token.Pos) []analysis.Fact {
	if obj == nil {
		return nil
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return nil
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsUntyped) == 0 {
		return nil
	}
	name := obj.Name()
	switch {
	case rateName.MatchString(name):
		return []analysis.Fact{{Label: "rate", Pos: pos}}
	case cyclesName.MatchString(name):
		return []analysis.Fact{{Label: "cycles", Pos: pos}}
	case bytesName.MatchString(name):
		return []analysis.Fact{{Label: "bytes", Pos: pos}}
	}
	return nil
}

func staticCallee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.TypesInfo.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isDurationConversion reports whether call converts its operand to
// time.Duration.
func isDurationConversion(pkg *analysis.Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = pkg.TypesInfo.Uses[fn.Sel]
	default:
		return false
	}
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return false
	}
	return tn.Pkg().Path() == "time" && tn.Name() == "Duration"
}

// unitOf extracts the unit label of one operand's facts ("" when unitless).
func unitOf(facts []analysis.Fact) (string, analysis.Fact) {
	for _, f := range facts {
		switch f.Label {
		case "cycles", "bytes", "rate":
			return f.Label, f
		}
	}
	return "", analysis.Fact{}
}

// onBinary is the unit algebra. It returns the facts of the combined value
// and, when the combination itself is the defect, the violation message.
func onBinary(pkg *analysis.Package, be *ast.BinaryExpr, x, y []analysis.Fact) ([]analysis.Fact, string) {
	ux, fx := unitOf(x)
	uy, fy := unitOf(y)
	keep := func(u string) []analysis.Fact {
		switch u {
		case ux:
			return []analysis.Fact{fx}
		case uy:
			return []analysis.Fact{fy}
		}
		return nil
	}
	mixed := (ux == "bytes" && uy == "cycles") || (ux == "cycles" && uy == "bytes")
	switch be.Op {
	case token.ADD, token.SUB, token.REM:
		if mixed {
			return keep("cycles"), "byte count mixed into cycle arithmetic without an explicit conversion; multiply through a cyclesPerKB rate or a //lint:converter unitflow helper"
		}
		if ux != "" {
			return keep(ux), ""
		}
		return keep(uy), ""
	case token.MUL:
		if (ux == "bytes" && uy == "rate") || (ux == "rate" && uy == "bytes") {
			// The blessed idiom: bytes × cyclesPerKB (/1024) = cycles.
			return []analysis.Fact{{Label: "cycles", Pos: be.OpPos}}, ""
		}
		if mixed {
			return keep("cycles"), "byte count multiplied into cycle arithmetic without an explicit conversion; multiply through a cyclesPerKB rate or a //lint:converter unitflow helper"
		}
		if ux != "" {
			return keep(ux), ""
		}
		return keep(uy), ""
	case token.QUO:
		// bytes/1024 stays bytes, cycles/freq stays cycles; dividing two
		// like units cancels; deriving a rate is legitimate — no report.
		if ux == uy {
			return nil, ""
		}
		return keep(ux), ""
	case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
		return keep(ux), ""
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
		return nil, ""
	}
	return keep(ux), ""
}
