package storage

import (
	"testing"
	"testing/quick"
	"time"

	"vread/internal/faults"
	"vread/internal/sim"
)

func TestDiskReadTiming(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, "ssd", DiskConfig{})
	var done time.Duration
	env.Go("p", func(p *sim.Proc) {
		d.Read(p, 500_000_000) // 500MB at 500MB/s = 1s + 100µs latency
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Second + 100*time.Microsecond
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("read finished at %v, want ~%v", done, want)
	}
	if s := d.Stats(); s.Reads != 1 || s.BytesRead != 500_000_000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskFIFOSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, "ssd", DiskConfig{ReadLatency: time.Millisecond, ReadBandwidth: 1_000_000_000})
	var first, second time.Duration
	env.Go("a", func(p *sim.Proc) {
		d.Read(p, 0)
		first = env.Now()
	})
	env.Go("b", func(p *sim.Proc) {
		d.Read(p, 0)
		second = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if first != time.Millisecond || second != 2*time.Millisecond {
		t.Fatalf("completions at %v, %v; want 1ms, 2ms (FIFO)", first, second)
	}
}

func TestDiskWrite(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, "ssd", DiskConfig{})
	env.Go("p", func(p *sim.Proc) {
		d.Write(p, 1_000_000)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Writes != 1 || s.BytesWritten != 1_000_000 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.Writes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := NewPageCache("guest", 1<<20, 0) // 1 MiB = 16 chunks of 64 KiB
	hit, miss := c.Lookup(1, 0, 128<<10)
	if hit != 0 || miss != 128<<10 {
		t.Fatalf("cold lookup hit=%d miss=%d", hit, miss)
	}
	c.Insert(1, 0, 128<<10)
	hit, miss = c.Lookup(1, 0, 128<<10)
	if hit != 128<<10 || miss != 0 {
		t.Fatalf("warm lookup hit=%d miss=%d", hit, miss)
	}
	// Different object misses.
	hit, miss = c.Lookup(2, 0, 64<<10)
	if hit != 0 || miss != 64<<10 {
		t.Fatalf("other-object lookup hit=%d miss=%d", hit, miss)
	}
}

func TestCachePartialHit(t *testing.T) {
	c := NewPageCache("guest", 1<<20, 0)
	c.Insert(1, 0, 64<<10) // exactly chunk 0
	hit, miss := c.Lookup(1, 0, 128<<10)
	if hit != 64<<10 || miss != 64<<10 {
		t.Fatalf("partial lookup hit=%d miss=%d", hit, miss)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewPageCache("guest", 4*64<<10, 0) // 4 chunks
	for i := int64(0); i < 4; i++ {
		c.Insert(1, i*64<<10, 64<<10)
	}
	// Touch chunk 0 so chunk 1 is LRU.
	c.Lookup(1, 0, 64<<10)
	// Insert a 5th chunk; chunk 1 must be evicted.
	c.Insert(1, 4*64<<10, 64<<10)
	if !c.Contains(1, 0, 64<<10) {
		t.Fatal("recently-used chunk 0 evicted")
	}
	if c.Contains(1, 64<<10, 64<<10) {
		t.Fatal("LRU chunk 1 survived eviction")
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCacheInvalidateObject(t *testing.T) {
	c := NewPageCache("host", 1<<20, 0)
	c.Insert(1, 0, 128<<10)
	c.Insert(2, 0, 64<<10)
	c.InvalidateObject(1)
	if c.Contains(1, 0, 64<<10) {
		t.Fatal("invalidated object still cached")
	}
	if !c.Contains(2, 0, 64<<10) {
		t.Fatal("other object dropped by InvalidateObject")
	}
	c.DropAll()
	if c.Len() != 0 {
		t.Fatalf("Len after DropAll = %d", c.Len())
	}
}

func TestCacheStatsAccumulate(t *testing.T) {
	c := NewPageCache("g", 1<<20, 0)
	c.Lookup(1, 0, 100)
	c.Insert(1, 0, 100)
	c.Lookup(1, 0, 100)
	s := c.Stats()
	if s.MissBytes != 100 || s.HitBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetStats()
	if s := c.Stats(); s.HitBytes != 0 || s.MissBytes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestCacheUnalignedRanges(t *testing.T) {
	c := NewPageCache("g", 1<<20, 0)
	// Insert an unaligned range; the chunks it touches become cached whole.
	c.Insert(1, 1000, 100)
	hit, miss := c.Lookup(1, 0, 64<<10)
	if hit != 64<<10 || miss != 0 {
		t.Fatalf("chunk-0 lookup after unaligned insert hit=%d miss=%d", hit, miss)
	}
}

// Property: hit+miss always equals the requested length, and Lookup after
// Insert of the same range is a full hit, for arbitrary ranges.
func TestCacheLookupInsertProperty(t *testing.T) {
	f := func(offRaw, nRaw uint32) bool {
		off := int64(offRaw % (1 << 20))
		n := int64(nRaw%(1<<18)) + 1
		c := NewPageCache("g", 1<<30, 0) // big enough to avoid eviction
		hit, miss := c.Lookup(9, off, n)
		if hit != 0 || hit+miss != n {
			return false
		}
		c.Insert(9, off, n)
		hit, miss = c.Lookup(9, off, n)
		return hit == n && miss == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds more than its capacity in chunks.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(inserts []uint16) bool {
		c := NewPageCache("g", 8*64<<10, 0) // 8 chunks
		for _, ins := range inserts {
			c.Insert(int64(ins%4), int64(ins)*13, 64<<10)
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSlowFaultAddsLatency(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, "ssd", DiskConfig{})
	plan := faults.NewPlan(env)
	plan.Set(faults.Rule{Point: faults.DiskReadSlow, Prob: 1, Delay: 5 * time.Millisecond})
	d.InjectFaults(plan)
	var done time.Duration
	env.Go("p", func(p *sim.Proc) {
		d.Read(p, 0)
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 5*time.Millisecond + 100*time.Microsecond
	if done != want {
		t.Fatalf("faulted read finished at %v, want %v", done, want)
	}
	if plan.Fired(faults.DiskReadSlow) != 1 {
		t.Fatalf("fired = %d", plan.Fired(faults.DiskReadSlow))
	}
}

func TestDiskNilPlanUnchanged(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, "ssd", DiskConfig{})
	d.InjectFaults(nil)
	var done time.Duration
	env.Go("p", func(p *sim.Proc) {
		d.Read(p, 0)
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 100*time.Microsecond {
		t.Fatalf("read finished at %v, want bare latency", done)
	}
}
