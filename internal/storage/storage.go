// Package storage models the physical storage layer of a host: an SSD-like
// block device with FIFO service, and the LRU page caches that sit above it
// (one inside each guest kernel, one in the host kernel serving the vRead
// daemon's loop-mounted reads).
//
// The cache-level split is what produces the paper's read vs re-read shapes:
// vanilla HDFS re-reads hit the *datanode guest's* page cache (bounded by
// the VM's small RAM), while vRead re-reads hit the *host's* page cache.
package storage

import (
	"fmt"
	"time"

	"vread/internal/faults"
	"vread/internal/sim"
	"vread/internal/trace"
)

// DiskConfig describes a device. Zero values select an SSD similar to the
// paper's testbed drives.
type DiskConfig struct {
	// ReadLatency is the fixed per-request service latency. Default 100µs.
	ReadLatency time.Duration
	// WriteLatency is the fixed per-request latency (write-back cache on
	// the device). Default 60µs.
	WriteLatency time.Duration
	// ReadBandwidth in bytes/second. Default 500 MB/s.
	ReadBandwidth int64
	// WriteBandwidth in bytes/second. Default 400 MB/s.
	WriteBandwidth int64
}

func (c DiskConfig) withDefaults() DiskConfig {
	if c.ReadLatency == 0 {
		c.ReadLatency = 100 * time.Microsecond
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 60 * time.Microsecond
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 500_000_000
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 400_000_000
	}
	return c
}

// DiskStats counts device activity.
type DiskStats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Disk is one physical device with FIFO request service.
type Disk struct {
	env       *sim.Env
	cfg       DiskConfig
	name      string
	busyUntil time.Duration
	stats     DiskStats
	faults    *faults.Plan
}

// NewDisk creates a device.
func NewDisk(env *sim.Env, name string, cfg DiskConfig) *Disk {
	return &Disk{env: env, cfg: cfg.withDefaults(), name: name}
}

// Name returns the device name.
func (d *Disk) Name() string { return d.name }

// InjectFaults arms the device's faultpoints (disk.read.slow) from plan.
// A nil plan disables injection.
func (d *Disk) InjectFaults(plan *faults.Plan) { d.faults = plan }

// Stats returns a copy of the activity counters.
func (d *Disk) Stats() DiskStats { return d.stats }

// ResetStats zeroes the activity counters.
func (d *Disk) ResetStats() { d.stats = DiskStats{} }

// ReadAsync submits a read of n bytes; onDone fires when the device
// completes it (FIFO behind earlier requests).
func (d *Disk) ReadAsync(n int64, onDone func()) {
	d.ReadAsyncT(nil, n, onDone)
}

// ReadAsyncT is ReadAsync with a "disk read" span (submit → completion) on
// the request trace.
func (d *Disk) ReadAsyncT(tr *trace.Trace, n int64, onDone func()) {
	lat := d.cfg.ReadLatency
	if extra, ok := d.faults.ShouldDelay(faults.DiskReadSlow); ok {
		lat += extra
		tr.Event(trace.LayerDisk, "fault:disk-slow", 0)
	}
	sp := tr.Begin(trace.LayerDisk, "read")
	d.submit(n, lat, d.cfg.ReadBandwidth, func() {
		tr.EndSpan(sp, n)
		if onDone != nil {
			onDone()
		}
	})
	d.stats.Reads++
	d.stats.BytesRead += n
}

// WriteAsync submits a write of n bytes; onDone fires on completion.
func (d *Disk) WriteAsync(n int64, onDone func()) {
	d.submit(n, d.cfg.WriteLatency, d.cfg.WriteBandwidth, onDone)
	d.stats.Writes++
	d.stats.BytesWritten += n
}

// Read blocks p for the duration of a read of n bytes.
func (d *Disk) Read(p *sim.Proc, n int64) {
	d.wait(p, func(onDone func()) { d.ReadAsync(n, onDone) })
}

// ReadT is Read with a "disk read" span on the request trace.
func (d *Disk) ReadT(p *sim.Proc, tr *trace.Trace, n int64) {
	d.wait(p, func(onDone func()) { d.ReadAsyncT(tr, n, onDone) })
}

// Write blocks p for the duration of a write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int64) {
	d.wait(p, func(onDone func()) { d.WriteAsync(n, onDone) })
}

// WriteT is Write with a "disk write" span on the request trace.
func (d *Disk) WriteT(p *sim.Proc, tr *trace.Trace, n int64) {
	sp := tr.Begin(trace.LayerDisk, "write")
	d.wait(p, func(onDone func()) { d.WriteAsync(n, onDone) })
	tr.EndSpan(sp, n)
}

func (d *Disk) wait(p *sim.Proc, submit func(func())) {
	sig := sim.NewSignal(d.env)
	done := false
	submit(func() {
		done = true
		sig.Broadcast()
	})
	for !done {
		sig.Wait(p)
	}
}

func (d *Disk) submit(n int64, lat time.Duration, bw int64, onDone func()) {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative I/O size %d", n))
	}
	start := d.env.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	transfer := time.Duration(float64(n) / float64(bw) * float64(time.Second))
	finish := start + lat + transfer
	d.busyUntil = finish
	d.env.Schedule(finish-d.env.Now(), func() {
		if onDone != nil {
			onDone()
		}
	})
}

// ---------------------------------------------------------------------------
// Page cache.

// CacheKey identifies one cached chunk of an object.
type CacheKey struct {
	Object int64
	Chunk  int64
}

// CacheStats counts cache activity in bytes.
type CacheStats struct {
	HitBytes  int64
	MissBytes int64
}

// PageCache is an LRU cache over (object, chunk) pairs. Chunk granularity is
// configurable (default 64 KiB) — coarser than a real 4 KiB page cache but
// equivalent for sequential HDFS-block I/O, and much cheaper to simulate.
type PageCache struct {
	name      string
	chunkSize int64
	capacity  int // max chunks
	entries   map[CacheKey]*lruNode
	head      *lruNode // most recent
	tail      *lruNode // least recent
	stats     CacheStats
}

type lruNode struct {
	key        CacheKey
	prev, next *lruNode
}

// NewPageCache creates a cache holding capacityBytes with the given chunk
// size (0 = 64 KiB).
func NewPageCache(name string, capacityBytes, chunkSize int64) *PageCache {
	if chunkSize == 0 {
		chunkSize = 64 << 10
	}
	capChunks := int(capacityBytes / chunkSize)
	if capChunks < 1 {
		capChunks = 1
	}
	return &PageCache{
		name:      name,
		chunkSize: chunkSize,
		capacity:  capChunks,
		entries:   make(map[CacheKey]*lruNode),
	}
}

// Name returns the cache name.
func (c *PageCache) Name() string { return c.name }

// ChunkSize returns the cache granularity in bytes.
func (c *PageCache) ChunkSize() int64 { return c.chunkSize }

// Len returns the number of cached chunks.
func (c *PageCache) Len() int { return len(c.entries) }

// Stats returns a copy of the byte counters.
func (c *PageCache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the byte counters.
func (c *PageCache) ResetStats() { c.stats = CacheStats{} }

// Lookup classifies the byte range [off, off+n) of object into cached and
// uncached bytes, promoting hits in LRU order. It does not insert.
func (c *PageCache) Lookup(object, off, n int64) (hit, miss int64) {
	c.forEachChunk(off, n, func(chunk, bytes int64) {
		if node, ok := c.entries[CacheKey{object, chunk}]; ok {
			c.promote(node)
			hit += bytes
		} else {
			miss += bytes
		}
	})
	c.stats.HitBytes += hit
	c.stats.MissBytes += miss
	return hit, miss
}

// Insert marks the byte range [off, off+n) of object cached, evicting LRU
// chunks as needed.
func (c *PageCache) Insert(object, off, n int64) {
	c.forEachChunk(off, n, func(chunk, bytes int64) {
		key := CacheKey{object, chunk}
		if node, ok := c.entries[key]; ok {
			c.promote(node)
			return
		}
		node := &lruNode{key: key}
		c.entries[key] = node
		c.pushFront(node)
		for len(c.entries) > c.capacity {
			c.evictLRU()
		}
	})
}

// Contains reports whether the full range is cached, without promoting or
// counting stats.
func (c *PageCache) Contains(object, off, n int64) bool {
	all := true
	c.forEachChunk(off, n, func(chunk, bytes int64) {
		if _, ok := c.entries[CacheKey{object, chunk}]; !ok {
			all = false
		}
	})
	return all
}

// InvalidateObject drops every cached chunk of object.
func (c *PageCache) InvalidateObject(object int64) {
	for key, node := range c.entries {
		if key.Object == object {
			c.unlink(node)
			delete(c.entries, key)
		}
	}
}

// DropAll empties the cache (echo 3 > /proc/sys/vm/drop_caches).
func (c *PageCache) DropAll() {
	c.entries = make(map[CacheKey]*lruNode)
	c.head, c.tail = nil, nil
}

func (c *PageCache) forEachChunk(off, n int64, fn func(chunk, bytes int64)) {
	if n <= 0 {
		return
	}
	first := off / c.chunkSize
	last := (off + n - 1) / c.chunkSize
	for chunk := first; chunk <= last; chunk++ {
		lo := chunk * c.chunkSize
		hi := lo + c.chunkSize
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		fn(chunk, hi-lo)
	}
}

func (c *PageCache) promote(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *PageCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *PageCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.head == n {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *PageCache) evictLRU() {
	if c.tail == nil {
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.entries, victim.key)
}
