package sim

import (
	"sort"
	"testing"
	"time"
)

// Wheel geometry in time units, for steering events into a specific lane.
const (
	tickNs      = time.Duration(1) << tickShift              // 1.024 µs: one L0 bucket
	l0HorizonNs = time.Duration(wheelL0Slots) << tickShift   // ~262 µs: L0 coverage
	l1HorizonNs = time.Duration(wheelL1Slots) << l1TickShift // ~16.8 ms: L1 coverage
)

// scheduleMixed schedules n timers with delays spanning every lane — sub-tick
// (heap), L0, L1, and beyond the horizon (heap again) — and returns the
// expected firing order: (at, seq) with seq equal to schedule order.
func scheduleMixed(env *Env, n int, record func(i int)) []int {
	type slot struct {
		at  time.Duration
		idx int
	}
	slots := make([]slot, 0, n)
	for i := 0; i < n; i++ {
		i := i
		var d time.Duration
		switch env.Rand().Intn(4) {
		case 0: // sub-tick: rides the heap
			d = time.Duration(env.Rand().Intn(int(tickNs)))
		case 1: // L0 window
			d = tickNs + time.Duration(env.Rand().Intn(int(l0HorizonNs-tickNs)))
		case 2: // L1 window
			d = l0HorizonNs + time.Duration(env.Rand().Intn(int(l1HorizonNs-l0HorizonNs)))
		default: // beyond the horizon: heap
			d = l1HorizonNs + time.Duration(env.Rand().Intn(int(l1HorizonNs)))
		}
		at := env.Now() + d
		slots = append(slots, slot{at, i})
		env.Schedule(d, func() { record(i) })
	}
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].at < slots[b].at })
	want := make([]int, n)
	for i, s := range slots {
		want[i] = s.idx
	}
	return want
}

// TestWheelOrderAcrossLanes checks the engine's core contract with the wheel
// in place: no matter which container an event rode in, events fire in exact
// (at, seq) order — the wheel must be unobservable.
func TestWheelOrderAcrossLanes(t *testing.T) {
	env := NewEnv(7)
	var fired []int
	want := scheduleMixed(env, 800, func(i int) { fired = append(fired, i) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order diverges at %d: got #%d, want #%d", i, fired[i], want[i])
		}
	}
}

// TestWheelOrderAfterCursorAdvance re-runs the mixed-lane ordering check
// after the clock (and therefore the wheel cursor) has advanced far enough
// that both slot rings have wrapped many times.
func TestWheelOrderAfterCursorAdvance(t *testing.T) {
	env := NewEnv(11)
	env.Schedule(50*time.Millisecond, func() {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var fired []int
	want := scheduleMixed(env, 800, func(i int) { fired = append(fired, i) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order diverges at %d: got #%d, want #%d", i, fired[i], want[i])
		}
	}
}

// TestWheelWindowBoundaryCrossing is the livelock regression: an L0 drain at
// the last tick of an L1 window used to carry the cursor exactly onto the
// next window's start without cascading that window's occupied L1 bucket,
// after which drainTo kept draining empty L0 slots at a cursor that never
// passed the bucket's window-start bound. Both events must fire.
func TestWheelWindowBoundaryCrossing(t *testing.T) {
	env := NewEnv(1)
	var fired []string
	// Last tick of L1 window 0: lands in L0.
	env.Schedule((time.Duration(wheelL0Slots-1))<<tickShift, func() { fired = append(fired, "a") })
	// Mid L1 window 1: lands in an L1 bucket that must cascade after the
	// cursor crosses the boundary.
	env.Schedule((time.Duration(wheelL0Slots+44))<<tickShift, func() { fired = append(fired, "b") })
	// Exactly the window-1 start tick, for the tie on the boundary itself.
	env.Schedule((time.Duration(wheelL0Slots))<<tickShift, func() { fired = append(fired, "c") })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(fired); got != 3 {
		t.Fatalf("%d of 3 events fired across the L1 window boundary: %v", got, fired)
	}
	if fired[0] != "a" || fired[1] != "c" || fired[2] != "b" {
		t.Fatalf("events fired out of order across the window boundary: %v", fired)
	}
}

// TestWheelCancelInBuckets cancels a majority of wheel-resident timers;
// survivors must still fire in exact order and the tombstones must drain
// away without leaking (queueEmpty after the run).
func TestWheelCancelInBuckets(t *testing.T) {
	env := NewEnv(23)
	const n = 600
	var fired []int
	timers := make([]Timer, n)
	ats := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		i := i
		d := tickNs + time.Duration(env.Rand().Intn(int(l1HorizonNs)))
		ats[i] = env.Now() + d
		timers[i] = env.Schedule(d, func() { fired = append(fired, i) })
	}
	want := 0
	for i := range timers {
		if i%3 == 0 {
			want++
			continue
		}
		if !timers[i].Cancel() {
			t.Fatalf("Cancel #%d failed", i)
		}
	}
	if got := env.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if ats[b] < ats[a] || (ats[b] == ats[a] && b < a) {
			t.Fatalf("survivors fired out of (at, seq) order: #%d then #%d", a, b)
		}
	}
	if !env.queueEmpty() {
		t.Fatal("lanes not empty after run: tombstones leaked")
	}
}

// TestNextAtBounds pins the NextAt contract: false on an empty engine, exact
// for heap-resident events, and a conservative lower bound — never later
// than the true next event, never before the current clock's bucket — for
// wheel-resident ones.
func TestNextAtBounds(t *testing.T) {
	env := NewEnv(1)
	if _, ok := env.NextAt(); ok {
		t.Fatal("NextAt on an empty engine reports a pending event")
	}
	// Beyond the horizon: heap lane, bound is exact.
	far := env.Schedule(2*l1HorizonNs, func() {})
	if at, ok := env.NextAt(); !ok || at != int64(2*l1HorizonNs) {
		t.Fatalf("NextAt for heap event = (%d, %v), want exact (%d, true)", at, ok, int64(2*l1HorizonNs))
	}
	// An earlier wheel event: bound must move to at most its timestamp.
	wheelAt := 100 * time.Microsecond
	env.Schedule(wheelAt, func() {})
	at, ok := env.NextAt()
	if !ok {
		t.Fatal("NextAt lost the pending events")
	}
	if at > int64(wheelAt) {
		t.Fatalf("NextAt = %d is later than the next event at %d", at, int64(wheelAt))
	}
	if at < 0 {
		t.Fatalf("NextAt = %d is before the clock", at)
	}
	far.Cancel()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.NextAt(); ok {
		t.Fatal("NextAt after draining reports a pending event")
	}
}

// TestWheelDeterminism replays a mixed-lane schedule/cancel workload twice;
// traces must be byte-identical — bucket drains and cascades cannot leak
// into observable order.
func TestWheelDeterminism(t *testing.T) {
	run := func() []string {
		env := NewEnv(321)
		var trace []string
		var timers []Timer
		for i := 0; i < 500; i++ {
			d := time.Duration(env.Rand().Int63n(int64(2 * l1HorizonNs)))
			timers = append(timers, env.Schedule(d, func() {
				trace = append(trace, env.Now().String())
			}))
		}
		for i := 0; i < len(timers); i += 2 {
			timers[i].Cancel()
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestProcSleepZeroAlloc asserts the proc-sleep fast path: a park/sleep/wake
// cycle of a long-lived proc performs zero heap allocations at steady state.
// BENCH_2 recorded 1 alloc/op because its benchmark loop rebuilt the env and
// proc per batch; the steady-state contract is what the engine guarantees.
func TestProcSleepZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	env.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	// Warm up: free list, wheel buckets, proc wake binding.
	if err := env.RunFor(256 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := env.RunFor(time.Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("proc sleep cycle allocates %v objects at steady state, want 0", allocs)
	}
	env.Close()
}
