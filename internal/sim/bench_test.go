package sim

import (
	"testing"
	"time"
)

// The in-package twins of the vread-bench engine rows, here so the hot path
// can be profiled with -cpuprofile without going through the facade binary.

func BenchmarkScheduleFire(b *testing.B) {
	const batch = 1024
	fn := func() {}
	env := NewEnv(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			env.Schedule(time.Duration(j)*time.Nanosecond, fn)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	const batch = 1024
	fn := func() {}
	env := NewEnv(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			tm := env.Schedule(time.Duration(j)*time.Nanosecond, fn)
			if j%2 == 1 {
				tm.Cancel()
			}
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimerWheel(b *testing.B) {
	const batch = 1024
	fn := func() {}
	env := NewEnv(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			env.Schedule(time.Duration(j%200+1)*time.Microsecond, fn)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
