package sim

import (
	"testing"
	"time"
)

// TestScheduleZeroAlloc asserts the pooled event path: once the free list
// and heap capacity have warmed up, a Schedule/fire cycle performs zero heap
// allocations. This is the engine fast-path contract the BENCH_*.json
// trajectory tracks.
func TestScheduleZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	fn := func() {}
	// Warm the free list and the heap's capacity.
	for i := 0; i < 256; i++ {
		env.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Schedule(time.Microsecond, fn)
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule/fire cycle allocates %v objects at steady state, want 0", allocs)
	}
}

// TestScheduleCancelZeroAlloc is the same assertion for the cancel path:
// arming and cancelling a timeout must not allocate either.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	fn := func() {}
	for i := 0; i < 256; i++ {
		env.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := env.Schedule(time.Microsecond, fn)
		tm.Cancel()
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule/Cancel cycle allocates %v objects at steady state, want 0", allocs)
	}
}

// TestTimerWhenSafe covers the Timer.When contract: the zero Timer, a nil
// *Timer, and fired or cancelled timers all report 0 instead of panicking.
func TestTimerWhenSafe(t *testing.T) {
	var zero Timer
	if got := zero.When(); got != 0 {
		t.Fatalf("zero Timer When() = %v, want 0", got)
	}
	var nilTimer *Timer
	if got := nilTimer.When(); got != 0 {
		t.Fatalf("nil *Timer When() = %v, want 0", got)
	}
	if nilTimer.Cancel() {
		t.Fatal("nil *Timer Cancel() = true")
	}

	env := NewEnv(1)
	tm := env.Schedule(3*time.Millisecond, func() {})
	if got := tm.When(); got != 3*time.Millisecond {
		t.Fatalf("pending When() = %v, want 3ms", got)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tm.When(); got != 0 {
		t.Fatalf("fired When() = %v, want 0", got)
	}

	tm2 := env.Schedule(time.Millisecond, func() {})
	tm2.Cancel()
	if got := tm2.When(); got != 0 {
		t.Fatalf("cancelled When() = %v, want 0", got)
	}
}

// TestStaleTimerCannotResurrect proves the generation counter: a Timer whose
// event has fired and been recycled into a new callback must not cancel (or
// report times for) the new occupant.
func TestStaleTimerCannotResurrect(t *testing.T) {
	env := NewEnv(1)
	stale := env.Schedule(time.Millisecond, func() {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The free list now holds stale's event struct; this Schedule reuses it.
	fired := false
	fresh := env.Schedule(time.Millisecond, func() { fired = true })
	if stale.ev != fresh.ev {
		t.Fatalf("free list did not recycle the event struct (stale %p, fresh %p)", stale.ev, fresh.ev)
	}
	if stale.Cancel() {
		t.Fatal("stale Timer cancelled a recycled event")
	}
	if got := stale.When(); got != 0 {
		t.Fatalf("stale When() = %v, want 0", got)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled event did not fire; a stale Timer suppressed it")
	}
}

// TestPendingTracksCancel covers the live-event counter: Pending reports the
// real queue depth while cancelled entries may still occupy heap slots.
func TestPendingTracksCancel(t *testing.T) {
	env := NewEnv(1)
	fn := func() {}
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = env.Schedule(time.Duration(i+1)*time.Millisecond, fn)
	}
	if got := env.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel #%d failed", i)
		}
	}
	if got := env.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	if timers[0].Cancel() {
		t.Fatal("double Cancel returned true")
	}
	if got := env.Pending(); got != 6 {
		t.Fatalf("Pending after double cancel = %d, want 6", got)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
	if got := env.Fired(); got != 6 {
		t.Fatalf("Fired = %d, want 6", got)
	}
}

// TestCancelHeavyTimeoutWorkload is the pattern that used to leak: a
// consumer arming a timeout per operation that is almost always cancelled.
// Pending must track the real depth throughout, the heap must compact (no
// unbounded growth of dead entries), and delivery must stay deterministic.
func TestCancelHeavyTimeoutWorkload(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 0)
	const items = 500
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 0; i < items; i++ {
			p.Sleep(time.Microsecond)
			q.Put(p, i)
		}
		q.Close()
	})
	env.Go("consumer", func(p *Proc) {
		for {
			// Every GetTimeout arms a timer that the wake-up path cancels.
			v, ok := q.GetTimeout(p, time.Second)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("consumed %d items, want %d", len(got), items)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0 (cancelled timeouts leaked)", got)
	}
	if n := len(env.events); n >= items {
		t.Fatalf("heap holds %d entries after a %d-item cancel-heavy run; compaction never ran", n, items)
	}
	env.Close()
}

// TestCancelEveryPendingTimer cancels all of N >= minCompact timers so
// compaction runs with zero survivors. eventHeap.init used to index out of
// range on the emptied heap ((len-2)/4 truncates to 0 for len 0), crashing
// the engine on exactly the cancel-heavy workloads compaction targets.
func TestCancelEveryPendingTimer(t *testing.T) {
	env := NewEnv(1)
	// Exactly minCompact: the last Cancel is the one that trips compaction
	// (ncancel > len/2 and >= minCompact) with nothing left to keep. Delays
	// start beyond the timer-wheel horizon so every timer lands in the heap
	// lane — compaction only accounts for heap tombstones (wheel tombstones
	// die for free when their bucket drains).
	const n = minCompact
	const beyondHorizon = time.Duration(wheelL1Slots<<l1TickShift) * time.Nanosecond
	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		timers[i] = env.Schedule(beyondHorizon+time.Duration(i+1)*time.Millisecond, func() {
			t.Errorf("cancelled timer #%d fired", i)
		})
	}
	for i := range timers {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel #%d failed", i)
		}
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("Pending after cancelling everything = %d, want 0", got)
	}
	if n := len(env.events); n != 0 {
		t.Fatalf("heap holds %d entries after cancelling everything, want 0", n)
	}
	// The engine must still be usable after an empty-heap compaction.
	fired := false
	env.Schedule(time.Millisecond, func() { fired = true })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer scheduled after empty-heap compaction never fired")
	}
}

// TestCompactionPreservesOrder mass-cancels interleaved timers so compaction
// triggers mid-stream, then checks the survivors fire in exactly (at, seq)
// order.
func TestCompactionPreservesOrder(t *testing.T) {
	env := NewEnv(1)
	const n = 1000
	var fired []int
	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		// Deliberately non-monotone times so heap order differs from
		// schedule order.
		at := time.Duration((i*37)%n+1) * time.Millisecond
		timers[i] = env.Schedule(at, func() { fired = append(fired, i) })
	}
	// Cancel ~70% (every index not divisible by 3), enough to trip
	// compaction several times over.
	want := 0
	for i := range timers {
		if i%3 == 0 {
			want++
			continue
		}
		if !timers[i].Cancel() {
			t.Fatalf("Cancel #%d failed", i)
		}
	}
	if got := env.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	last := time.Duration(-1)
	lastIdx := -1
	for _, i := range fired {
		at := time.Duration((i*37)%n+1) * time.Millisecond
		if at < last || (at == last && i < lastIdx) {
			t.Fatalf("events fired out of (at, seq) order: %d (at %v) after %d (at %v)", i, at, lastIdx, last)
		}
		last, lastIdx = at, i
	}
}

// TestEngineDeterminismUnderCancel replays a mixed schedule/cancel workload
// twice; compaction timing must not leak into the observable event order.
func TestEngineDeterminismUnderCancel(t *testing.T) {
	run := func() []string {
		env := NewEnv(99)
		var trace []string
		var timers []Timer
		for i := 0; i < 400; i++ {
			i := i
			d := time.Duration(env.Rand().Intn(5000)) * time.Microsecond
			timers = append(timers, env.Schedule(d, func() {
				trace = append(trace, env.Now().String())
				_ = i
			}))
		}
		for i := 0; i < len(timers); i += 2 {
			timers[i].Cancel()
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestCancellationStormDuringDispatch is the storm regression: waves of
// timers where each firing callback mass-cancels the rest of its wave and
// schedules the next one. Cancellation here happens inside dispatch — while
// the engine is popping the heap — across enough waves to trip compaction
// repeatedly. Pending must stay exact, no cancelled timer may fire, and the
// heap must not accumulate dead entries across waves.
func TestCancellationStormDuringDispatch(t *testing.T) {
	env := NewEnv(1)
	const (
		waves    = 8
		perWave  = 2 * minCompact
		survivor = 0 // index within the wave that fires and runs the storm
	)
	firedPerWave := make([]int, waves)
	var launch func(wave int)
	launch = func(wave int) {
		if wave == waves {
			return
		}
		timers := make([]Timer, perWave)
		for i := 0; i < perWave; i++ {
			i := i
			// The survivor is earliest, so it fires first and cancels the
			// rest of the wave from inside its callback.
			at := time.Duration(i+1) * time.Millisecond
			timers[i] = env.Schedule(at, func() {
				firedPerWave[wave]++
				if i != survivor {
					t.Errorf("wave %d: cancelled timer %d fired", wave, i)
					return
				}
				for j := survivor + 1; j < perWave; j++ {
					if !timers[j].Cancel() {
						t.Errorf("wave %d: Cancel(%d) failed mid-dispatch", wave, j)
					}
				}
				// Double-cancel inside the storm must stay a no-op.
				if timers[survivor].Cancel() {
					t.Errorf("wave %d: cancelling the firing timer returned true", wave)
				}
				launch(wave + 1)
			})
		}
	}
	launch(0)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for w, n := range firedPerWave {
		if n != 1 {
			t.Fatalf("wave %d fired %d callbacks, want 1 (the survivor)", w, n)
		}
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("Pending after the storm = %d, want 0", got)
	}
	if n := len(env.events); n >= perWave {
		t.Fatalf("heap holds %d dead entries after %d storm waves; compaction never caught up", n, waves)
	}
}
