package sim

import "math/bits"

// The timer wheel is a two-level hierarchical calendar queue in front of the
// 4-ary heap. The simulation's highest-frequency timers — NIC segment pacing,
// softirq completion, ring doorbell polls — are short (microseconds to a few
// hundred microseconds) and fire in bulk; pushing each through the heap costs
// a full sift against every other pending event. The wheel gives those
// events O(1) insertion into a time bucket and amortizes ordering into one
// batch sort when the bucket's window arrives, while the heap keeps serving
// the two tails the wheel cannot improve on: events due in the current or
// next tick (a bucket round-trip would cost more than a shallow sift) and
// events beyond the outer horizon.
//
// Order is exactly the engine's (at, seq) total order regardless of which
// container an event rode in: a bucket is sorted by (at, seq) when drained,
// and the run loop always compares the drained batch, the heap top, and the
// earliest occupied bucket's window start before firing anything. A
// simulation therefore cannot observe whether the wheel is present — same
// pops, same clock, same seeds, byte-identical runs.
//
// Geometry (powers of two so the hot path is shifts and masks):
//
//	L0: 256 buckets × 1024 ns  — covers ~262 µs of near future
//	L1:  64 buckets × 262 µs   — covers ~16.8 ms, cascades into L0
//	heap: delays inside the current or next tick, or beyond the L1 horizon
const (
	tickShift   = 10 // 1024 ns per L0 tick
	wheelL0Bits = 8  // 256 L0 slots
	wheelL1Bits = 6  // 64 L1 slots

	wheelL0Slots = 1 << wheelL0Bits
	wheelL1Slots = 1 << wheelL1Bits
	l1TickShift  = tickShift + wheelL0Bits // one L1 slot spans a full L0 window
)

// lane records which container an event currently sits in, so Cancel can
// keep the heap's tombstone-compaction accounting separate from wheel
// tombstones (which die for free when their bucket drains).
const (
	laneHeap uint8 = iota
	laneL0
	laneL1
	laneDue
)

// wheel is the Env's two-level timer wheel plus the drained-batch buffer.
type wheel struct {
	l0 [wheelL0Slots][]*event
	l1 [wheelL1Slots][]*event
	// occ0/occ1 are occupancy bitmaps: bit i set ⇔ slot i non-empty. Finding
	// the earliest occupied bucket is a handful of TrailingZeros64 scans.
	occ0 [wheelL0Slots / 64]uint64
	occ1 uint64
	// cursor is the first L0 tick (absolute, at>>tickShift) that has not
	// been drained yet. Every occupied L0 slot holds ticks in
	// [cursor, cursor+wheelL0Slots); every occupied L1 slot is strictly
	// after the cursor's L1 slot.
	cursor uint64
	// due is the batch drained from the most recent bucket, sorted by
	// (at, seq); di is the consumption index. The backing array is reused
	// across drains.
	due []*event
	di  int
	// count is the number of events (including cancelled tombstones)
	// resident in L0+L1 buckets — not in due.
	count int
	// minTick caches nextBucketTick's answer while minValid. Inserts only
	// ever lower it in place; a drain removes the minimum bucket and
	// invalidates, so the bitmap scan runs once per drained bucket instead
	// of once per pop (the run loop asks for the earliest bucket on every
	// heap fire while any bucket is occupied).
	minTick  uint64
	minValid bool
}

// scheduleWheel files ev into the wheel if its timestamp lands in a bucket
// that has not been drained, and reports whether it did. Events for the
// current or next tick (or one already passed by the cursor) and events
// beyond the L1 horizon stay on the heap.
//
//lint:hotpath
func (e *Env) scheduleWheel(ev *event) bool {
	w := &e.wheel
	if w.count == 0 {
		// An empty wheel pins nothing: snap the cursor to the clock. The
		// cursor otherwise only advances on drains, so a heap-only stretch
		// (sub-tick event storms) would leave it behind `now` and near-now
		// events would start landing in buckets again once their tick drifted
		// past cursor+1.
		if nowTick := uint64(e.now) >> tickShift; nowTick > w.cursor {
			w.cursor = nowTick
		}
	}
	tickAt := uint64(ev.at) >> tickShift
	if tickAt <= w.cursor+1 {
		// Due now, in an already-drained bucket, or in the very next tick:
		// heap lane. Near-now events would only bounce through a bucket —
		// insert, scan, drain, sort — before firing almost immediately; the
		// heap handles a shallow working set of them at pure-heap cost, which
		// keeps sub-tick event storms as fast as the wheel-less engine.
		return false
	}
	if tickAt-w.cursor < wheelL0Slots {
		slot := tickAt & (wheelL0Slots - 1)
		ev.lane = laneL0
		w.l0[slot] = append(w.l0[slot], ev) //lint:allow hotalloc(bucket growth amortized: capacity tracks the per-tick working set)
		w.occ0[slot>>6] |= 1 << (slot & 63)
		w.count++
		// An insert may lower a valid cache or seed one for an empty wheel;
		// an invalidated cache over occupied buckets must stay invalid (the
		// true minimum could be an existing bucket, not this event).
		if w.minValid {
			if tickAt < w.minTick {
				w.minTick = tickAt
			}
		} else if w.count == 1 {
			w.minTick, w.minValid = tickAt, true
		}
		return true
	}
	l1At := tickAt >> wheelL0Bits
	l1Cursor := w.cursor >> wheelL0Bits
	if l1At-l1Cursor < wheelL1Slots {
		slot := l1At & (wheelL1Slots - 1)
		ev.lane = laneL1
		w.l1[slot] = append(w.l1[slot], ev) //lint:allow hotalloc(bucket growth amortized: capacity tracks the per-window working set)
		w.occ1 |= 1 << slot
		w.count++
		// An L1 slot's earliest possible tick is its window start (always
		// ahead of the cursor: l1At > l1Cursor). Same cache rule as L0.
		if tick := l1At << wheelL0Bits; w.minValid {
			if tick < w.minTick {
				w.minTick = tick
			}
		} else if w.count == 1 {
			w.minTick, w.minValid = tick, true
		}
		return true
	}
	return false // beyond the horizon: heap lane
}

// nextBucketTick returns the absolute L0 tick of the earliest occupied
// bucket (L0 slot or the first tick of an occupied L1 slot), or false when
// both levels are empty.
func (w *wheel) nextBucketTick() (uint64, bool) {
	if w.minValid {
		return w.minTick, true
	}
	best := uint64(0)
	found := false
	// L0: occupied slots all map to ticks in [cursor, cursor+slots); the
	// tick for slot s is cursor + ((s - cursor) mod slots).
	cslot := w.cursor & (wheelL0Slots - 1)
	for i := 0; i < len(w.occ0); i++ {
		word := w.occ0[i]
		for word != 0 {
			s := uint64(i<<6) + uint64(bits.TrailingZeros64(word))
			word &= word - 1
			tick := w.cursor + ((s - cslot) & (wheelL0Slots - 1))
			if !found || tick < best {
				best, found = tick, true
			}
		}
	}
	// L1: occupied slots map to L1 indices in [l1Cursor, l1Cursor+slots).
	// The cursor's own L1 window can be occupied when an L0 drain carried the
	// cursor across the window boundary before the slot cascaded; its window
	// start then lies at or before the cursor, but every member tick is still
	// >= cursor, so the cursor itself is the tight lower bound.
	l1Cursor := w.cursor >> wheelL0Bits
	c1 := l1Cursor & (wheelL1Slots - 1)
	for word := w.occ1; word != 0; {
		s := uint64(bits.TrailingZeros64(word))
		word &= word - 1
		l1 := l1Cursor + ((s - c1) & (wheelL1Slots - 1))
		tick := l1 << wheelL0Bits
		if tick < w.cursor {
			tick = w.cursor
		}
		if !found || tick < best {
			best, found = tick, true
		}
	}
	if found {
		w.minTick, w.minValid = best, true
	}
	return best, found
}

// drainTo advances the cursor to tick (the earliest occupied bucket, as
// returned by nextBucketTick) and drains that bucket: an L1 bucket cascades
// into L0; an L0 bucket becomes the sorted due batch.
func (e *Env) drainTo(tick uint64) {
	w := &e.wheel
	// Either branch removes the minimum bucket (the cascade also refills L0
	// slots without min maintenance); the next nextBucketTick rescans.
	w.minValid = false
	if l1 := tick >> wheelL0Bits; l1 >= w.cursor>>wheelL0Bits {
		slot := l1 & (wheelL1Slots - 1)
		if w.occ1&(1<<slot) != 0 {
			// tick's L1 window holds an undrained bucket: cascade it into L0
			// before any L0 drain in that window. The cursor advances to the
			// window start at most (never backward — the window may already
			// be current when an L0 drain carried the cursor across the
			// boundary); either way every member tick is >= cursor and
			// within the cursor's 256-tick L0 span.
			if start := l1 << wheelL0Bits; start > w.cursor {
				w.cursor = start
			}
			evs := w.l1[slot]
			w.l1[slot] = evs[:0]
			w.occ1 &^= 1 << slot
			for _, ev := range evs {
				t := uint64(ev.at) >> tickShift
				s := t & (wheelL0Slots - 1)
				ev.lane = laneL0
				w.l0[s] = append(w.l0[s], ev) //lint:allow hotalloc(cascade reuses L0 bucket capacity)
				w.occ0[s>>6] |= 1 << (s & 63)
			}
			for i := range evs {
				evs[i] = nil
			}
			return // L0 now occupied at or after cursor; caller loops
		}
	}
	slot := tick & (wheelL0Slots - 1)
	evs := w.l0[slot]
	w.l0[slot] = evs[:0]
	w.occ0[slot>>6] &^= 1 << (slot & 63)
	w.cursor = tick + 1
	w.due = w.due[:0]
	w.di = 0
	w.due = append(w.due, evs...) //lint:allow hotalloc(due batch reuses its backing array across drains)
	for i := range evs {
		evs[i] = nil
	}
	w.count -= len(w.due)
	for i := range w.due {
		w.due[i].lane = laneDue
	}
	sortEvents(w.due)
}

// dueHead returns the next un-cancelled event of the due batch without
// consuming it, recycling any cancelled tombstones it walks over.
func (e *Env) dueHead() *event {
	w := &e.wheel
	for w.di < len(w.due) {
		ev := w.due[w.di]
		if !ev.canceled {
			return ev
		}
		w.due[w.di] = nil
		w.di++
		e.recycle(ev)
	}
	return nil
}

// popNext removes and returns the globally next event — minimum (at, seq)
// across the due batch, the heap, and the wheel buckets — restricted to
// at <= deadline when deadline >= 0. Cancelled heap events are returned
// as-is (the run loop recycles them, exactly as before the wheel existed);
// cancelled wheel events are recycled internally.
//
//lint:hotpath
func (e *Env) popNext(deadline int64) (*event, bool) {
	w := &e.wheel
	for {
		d := e.dueHead()
		var h *event
		if len(e.events) > 0 {
			h = e.events[0]
		}
		if d != nil && (h == nil || lessEv(d, h)) {
			if deadline >= 0 && int64(d.at) > deadline {
				return nil, false
			}
			w.due[w.di] = nil
			w.di++
			return d, true
		}
		bucket, occupied := uint64(0), false
		if w.count > 0 {
			bucket, occupied = w.nextBucketTick()
		}
		if h != nil {
			// The heap top fires only if no undrained bucket could hold an
			// earlier-or-tied event; a tie on the bucket's window start must
			// drain the bucket first, since a member could carry a smaller
			// seq at the same timestamp.
			if !occupied || uint64(h.at)>>tickShift < bucket {
				if deadline >= 0 && int64(h.at) > deadline {
					return nil, false
				}
				e.events.pop()
				return h, true
			}
			e.drainTo(bucket)
			continue
		}
		if occupied {
			if deadline >= 0 && int64(bucket)<<tickShift > deadline {
				// Window-start lower bound already beyond the deadline: every
				// bucket event is later still.
				return nil, false
			}
			e.drainTo(bucket)
			continue
		}
		return nil, false
	}
}

// queueEmpty reports whether no events remain in any lane (live or
// tombstoned) — the run loop's idle condition.
func (e *Env) queueEmpty() bool {
	w := &e.wheel
	return len(e.events) == 0 && w.count == 0 && w.di >= len(w.due)
}

// NextAt returns a lower bound on the timestamp of the next pending event
// across every lane, and whether any event is pending at all. For heap and
// due events the bound is exact; for wheel-resident events it is the
// earliest occupied bucket's window start (the shard coordinator only needs
// a conservative bound to size an epoch window — running the window then
// refines the bound by draining the bucket, so progress is guaranteed).
// Cancelled tombstones count: their bound is still conservative, and they
// drain for free. The bound never trails the clock: a bucket's window start
// can fall behind now once RunUntil pins the clock mid-window, and a stale
// bound would let the coordinator open an epoch entirely in the past.
func (e *Env) NextAt() (int64, bool) {
	w := &e.wheel
	best := int64(-1)
	if w.di < len(w.due) {
		best = int64(w.due[w.di].at)
	}
	if len(e.events) > 0 && (best < 0 || int64(e.events[0].at) < best) {
		best = int64(e.events[0].at)
	}
	if w.count > 0 {
		if tick, ok := w.nextBucketTick(); ok {
			if at := int64(tick) << tickShift; best < 0 || at < best {
				best = at
			}
		}
	}
	if best >= 0 && best < int64(e.now) {
		best = int64(e.now)
	}
	return best, best >= 0
}

// sortEvents orders evs by (at, seq) in place without allocating: insertion
// sort for the typical small bucket, heapsort above that (deterministic —
// the key is unique — and O(n log n) worst case for poll storms that pile
// hundreds of timers into one tick).
func sortEvents(evs []*event) {
	if len(evs) <= 16 {
		for i := 1; i < len(evs); i++ {
			ev := evs[i]
			j := i - 1
			for j >= 0 && lessEv(ev, evs[j]) {
				evs[j+1] = evs[j]
				j--
			}
			evs[j+1] = ev
		}
		return
	}
	// Max-heapify then repeatedly swap the max to the tail.
	n := len(evs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMax(evs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		evs[0], evs[end] = evs[end], evs[0]
		siftDownMax(evs, 0, end)
	}
}

func siftDownMax(evs []*event, i, n int) {
	ev := evs[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && lessEv(evs[c], evs[c+1]) {
			c++
		}
		if !lessEv(ev, evs[c]) {
			break
		}
		evs[i] = evs[c]
		i = c
	}
	evs[i] = ev
}
