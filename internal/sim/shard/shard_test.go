package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vread/internal/sim"
)

const testLookahead = 8 * time.Microsecond

// buildRing constructs n LPs that bounce messages around a ring: each LP
// runs a local timer cadence from its own seeded RNG and forwards a token to
// its successor with a randomized cross-LP delay >= lookahead. Every receipt
// appends "lp/time/hop" to that LP's log. The returned run closure executes
// the scenario with K shards and returns the concatenated per-LP logs — the
// byte stream that must be identical for every K.
func ringRun(t *testing.T, n, k int, horizon time.Duration) string {
	t.Helper()
	c := New(Config{Shards: k, Lookahead: testLookahead})
	logs := make([][]string, n)
	lps := make([]*LP, n)
	for i := 0; i < n; i++ {
		lps[i] = c.AddLP(sim.NewEnv(int64(1000 + i)))
	}
	// recv[i] is LP i's token handler. A delivered fn runs on the receiving
	// LP, so it may touch only that LP's state: the sender captures the
	// receiver's handler, never its own.
	recv := make([]func(hop int), n)
	for i := 0; i < n; i++ {
		i := i
		lp := lps[i]
		env := lp.Env()
		// Local churn: a self-rearming timer with jitter from the LP's RNG,
		// exercising wheel and heap lanes inside each window.
		var tick func()
		tick = func() {
			logs[i] = append(logs[i], fmt.Sprintf("tick %d @%v", i, env.Now()))
			env.Schedule(time.Duration(env.Rand().Intn(40))*time.Microsecond+time.Microsecond, tick)
		}
		env.Schedule(time.Duration(i)*time.Microsecond, tick)

		// The ring token: receive, log, forward after a random >= lookahead
		// delay drawn from this LP's RNG.
		recv[i] = func(hop int) {
			logs[i] = append(logs[i], fmt.Sprintf("token hop %d @%v", hop, env.Now()))
			if hop >= 64 {
				return
			}
			d := testLookahead + time.Duration(env.Rand().Intn(30))*time.Microsecond
			next := recv[(i+1)%n]
			lp.Send(lps[(i+1)%n], d, func() { next(hop + 1) })
		}
		if i == 0 {
			env.Schedule(5*time.Microsecond, func() { recv[0](0) })
		}
	}
	if err := c.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	for i, lp := range lps {
		if got := lp.Env().Now(); got != horizon {
			t.Fatalf("LP %d clock = %v after RunUntil(%v)", i, got, horizon)
		}
	}
	var b strings.Builder
	for i, l := range logs {
		fmt.Fprintf(&b, "== lp %d (%d events fired) ==\n", i, lps[i].Env().Fired())
		for _, line := range l {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestShardCountInvariance is the tentpole contract: the same scenario run
// with 1, 2, 3, and 4 shards produces byte-identical logs, event counts
// included. Run with -race this also covers the window protocol's claim
// that concurrent shards never touch each other's state.
func TestShardCountInvariance(t *testing.T) {
	const n = 8
	horizon := 3 * time.Millisecond
	want := ringRun(t, n, 1, horizon)
	if !strings.Contains(want, "token hop 64") {
		t.Fatalf("scenario too short: ring never completed 64 hops\n%s", want)
	}
	for _, k := range []int{2, 3, 4, n, 2 * n} {
		if got := ringRun(t, n, k, horizon); got != want {
			t.Fatalf("K=%d diverges from serial run:\n--- serial ---\n%s\n--- K=%d ---\n%s", k, want, k, got)
		}
	}
}

// TestShardRunDrainsToEmpty covers Run (no horizon): a finite scenario ends
// with every queue empty and all cross-LP messages delivered.
func TestShardRunDrainsToEmpty(t *testing.T) {
	c := New(Config{Shards: 2, Lookahead: testLookahead})
	a := c.AddLP(sim.NewEnv(1))
	b := c.AddLP(sim.NewEnv(2))
	got := ""
	a.Env().Schedule(time.Microsecond, func() {
		a.Send(b, testLookahead, func() {
			got += fmt.Sprintf("b got ping @%v; ", b.Env().Now())
			b.Send(a, testLookahead, func() {
				got += fmt.Sprintf("a got pong @%v", a.Env().Now())
			})
		})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := "b got ping @9µs; a got pong @17µs"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if a.Env().Pending() != 0 || b.Env().Pending() != 0 {
		t.Fatalf("pending events after Run: a=%d b=%d", a.Env().Pending(), b.Env().Pending())
	}
}

// TestShardLookaheadViolationPanics pins the safety rail: a cross-LP send
// below the lookahead is a protocol violation and must panic rather than
// silently corrupt the window invariant.
func TestShardLookaheadViolationPanics(t *testing.T) {
	c := New(Config{Shards: 2, Lookahead: testLookahead})
	a := c.AddLP(sim.NewEnv(1))
	b := c.AddLP(sim.NewEnv(2))
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead cross-LP send did not panic")
		}
	}()
	a.Send(b, testLookahead-time.Nanosecond, func() {})
}

// TestShardSameLPSendIsUnrestricted: a same-LP send is a plain Schedule and
// may use any delay, including zero.
func TestShardSameLPSendIsUnrestricted(t *testing.T) {
	c := New(Config{Shards: 2, Lookahead: testLookahead})
	a := c.AddLP(sim.NewEnv(1))
	c.AddLP(sim.NewEnv(2))
	fired := false
	a.Env().Schedule(time.Microsecond, func() {
		a.Send(a, 0, func() { fired = true })
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("same-LP zero-delay send never fired")
	}
}

// TestShardProcErrorPropagates: a panicking proc inside any LP surfaces as
// the coordinator's run error, and the error is the same regardless of K.
func TestShardProcErrorPropagates(t *testing.T) {
	run := func(k int) error {
		c := New(Config{Shards: k, Lookahead: testLookahead})
		for i := 0; i < 4; i++ {
			i := i
			lp := c.AddLP(sim.NewEnv(int64(i)))
			env := lp.Env()
			if i == 2 {
				env.GoAfter(50*time.Microsecond, "boom", func(p *sim.Proc) {
					panic("lp 2 exploded")
				})
			} else {
				env.Schedule(time.Millisecond, func() {})
			}
		}
		return c.RunUntil(2 * time.Millisecond)
	}
	serial, parallel := run(1), run(4)
	if serial == nil || parallel == nil {
		t.Fatalf("proc panic did not surface: serial=%v parallel=%v", serial, parallel)
	}
	if serial.Error() != parallel.Error() {
		t.Fatalf("error differs by shard count: %q vs %q", serial, parallel)
	}
	if !strings.Contains(serial.Error(), "lp 2 exploded") {
		t.Fatalf("error lost the panic payload: %v", serial)
	}
}

// TestShardExplicitAssignment: SetShard pins override the contiguous
// default, and out-of-range pins fall back to it.
func TestShardExplicitAssignment(t *testing.T) {
	c := New(Config{Shards: 2, Lookahead: testLookahead})
	for i := 0; i < 4; i++ {
		lp := c.AddLP(sim.NewEnv(int64(i)))
		if i%2 == 1 {
			lp.SetShard(0)
		}
	}
	c.lps[0].SetShard(99) // out of range: contiguous fallback
	byShard := c.assign()
	if len(byShard) != 2 {
		t.Fatalf("assign built %d shards, want 2", len(byShard))
	}
	ids := func(lps []*LP) []int {
		var out []int
		for _, lp := range lps {
			out = append(out, lp.id)
		}
		return out
	}
	got0, got1 := fmt.Sprint(ids(byShard[0])), fmt.Sprint(ids(byShard[1]))
	if got0 != "[0 1 3]" || got1 != "[2]" {
		t.Fatalf("assignment = %s / %s, want [0 1 3] / [2]", got0, got1)
	}
}

// TestShardEmptyAndTrivial: zero LPs and an empty schedule both terminate
// immediately.
func TestShardEmptyAndTrivial(t *testing.T) {
	c := New(Config{Shards: 4, Lookahead: testLookahead})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	lp := c.AddLP(sim.NewEnv(1))
	if err := c.RunUntil(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := lp.Env().Now(); got != time.Millisecond {
		t.Fatalf("clock = %v after RunUntil(1ms) with no events", got)
	}
}
