// Package shard runs many sim.Envs in parallel under conservative lookahead.
//
// The serial engine keeps one Env per experiment cell; a datacenter-scale
// scenario with a thousand simulated hosts then advances on one core no
// matter how many the machine has. This package partitions such a scenario
// into logical processes (LPs) — one Env per simulated host — groups the LPs
// into K shards, and advances the shards concurrently with a classic
// CMB-style null-message-free window protocol:
//
//	W   = min over LPs of the next pending event time (Env.NextAt)
//	end = W + L, where L is the lookahead — a lower bound on the latency of
//	      any cross-LP interaction (netsim's minimum link latency)
//
// Every LP may execute its events in [W, end) without synchronizing: any
// message another LP emits during the window was sent at some t >= W and
// arrives at t+L >= end, strictly after the window. Workers advance their
// shards to end-1, meet at a barrier (par.Gang), the coordinator drains the
// cross-LP mailboxes, and the next window begins. Virtual time advances by
// at least L per epoch, so the loop never stalls.
//
// Determinism is partition-invariant by construction, not by luck:
//
//   - A cross-LP send goes through a mailbox at every K — including K=1 —
//     while a same-LP send schedules directly. The set of mailbox messages
//     per epoch is therefore identical for every K.
//   - Mailboxes drain on the coordinator between rounds, sorted by
//     (dst, at, src, srcSeq) — a total order independent of worker count,
//     interleaving, and completion order. Destination Envs assign their
//     event sequence numbers in that order, so every Env's heap history is
//     byte-identical at any K.
//   - RunUntil pins every Env's clock to exactly end-1 at the barrier, so
//     epoch boundaries leave no per-K residue in the clocks.
//
// A K-shard run and the 1-shard serial run therefore produce identical rows,
// traces, and fingerprints; the experiment suite asserts this byte-for-byte.
package shard

import (
	"fmt"
	"sort"
	"time"

	"vread/internal/par"
	"vread/internal/sim"
)

// Config sizes a Coordinator.
type Config struct {
	// Shards is the worker/shard count K. Values below 1 (and above the LP
	// count) are clamped. K=1 runs every LP on the calling goroutine with no
	// goroutines spawned at all.
	Shards int
	// Lookahead is the conservative window width L: no cross-LP Send may
	// deliver in less than L. netsim.Config.Lookahead() is the natural
	// source. Must be positive.
	Lookahead time.Duration
}

// Coordinator owns the LPs, the shard assignment, and the epoch loop.
type Coordinator struct {
	cfg Config
	//lint:shared(LP registry; frozen once the epoch loop starts)
	lps []*LP
	//lint:owner(coordinator: merged mailbox, filled and drained only between epochs)
	mail []msg
}

// LP is one logical process: a single-threaded Env plus its cross-LP
// mailbox. All simulation state reachable from the Env's callbacks must be
// private to the LP; the only sanctioned cross-LP channel is Send. The
// lpowner analyzer machine-checks this: the annotations below are the roots
// it propagates from.
type LP struct {
	id    int
	shard int
	//lint:owner(lp: the LP's single-threaded engine — only its own callbacks schedule here)
	env   *sim.Env
	coord *Coordinator
	//lint:owner(coordinator: outbox ordering state, advanced only inside Send and read at drain)
	seq uint64
	//lint:owner(coordinator: the outbox is filled inside Send and drained between epochs)
	out []msg
}

type msg struct {
	at  int64 // absolute arrival time, ns
	src int
	seq uint64
	dst int
	fn  func()
}

// New validates cfg and returns an empty Coordinator.
func New(cfg Config) *Coordinator {
	if cfg.Lookahead <= 0 {
		panic(fmt.Sprintf("shard: non-positive lookahead %v", cfg.Lookahead))
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Coordinator{cfg: cfg}
}

// AddLP registers env as the next LP and returns its handle. The default
// shard assignment is contiguous blocks in registration order — callers that
// register topology-major (rack by rack) get rack-contiguous shards for
// free; SetShard overrides per LP.
func (c *Coordinator) AddLP(env *sim.Env) *LP {
	lp := &LP{id: len(c.lps), shard: -1, env: env, coord: c}
	c.lps = append(c.lps, lp)
	return lp
}

// ID returns the LP's registration index.
func (lp *LP) ID() int { return lp.id }

// Env returns the LP's Env.
func (lp *LP) Env() *sim.Env { return lp.env }

// SetShard pins the LP to shard s, overriding the contiguous default.
func (lp *LP) SetShard(s int) { lp.shard = s }

// Shard returns the pinned shard, or -1 when the LP rides the contiguous
// default assignment.
func (lp *LP) Shard() int { return lp.shard }

// Send schedules fn on dst's Env at lp's current time plus delay. A same-LP
// send schedules directly (no lookahead constraint); a cross-LP send rides
// the mailbox and must respect the lookahead, because the window protocol's
// safety — no message lands inside an executing window — is exactly the
// claim that cross-LP delays are >= L.
//
//lint:owner(boundary: the sanctioned cross-LP channel — fn runs on dst's Env after the lookahead)
func (lp *LP) Send(dst *LP, delay time.Duration, fn func()) {
	if dst == lp {
		lp.env.Schedule(delay, fn)
		return
	}
	if delay < lp.coord.cfg.Lookahead {
		panic(fmt.Sprintf("shard: cross-LP delay %v below lookahead %v", delay, lp.coord.cfg.Lookahead))
	}
	lp.seq++
	lp.out = append(lp.out, msg{
		at:  int64(lp.env.Now() + delay),
		src: lp.id,
		seq: lp.seq,
		dst: dst.id,
		fn:  fn,
	})
}

// Shards returns the effective shard count for the current LP set.
func (c *Coordinator) Shards() int {
	k := c.cfg.Shards
	if k > len(c.lps) {
		k = len(c.lps)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Fired returns the total events executed across all LPs.
func (c *Coordinator) Fired() uint64 {
	var total uint64
	for _, lp := range c.lps {
		total += lp.env.Fired()
	}
	return total
}

// Run advances all LPs until no events remain anywhere, mailboxes included.
// Scenarios with self-rearming daemons never drain; bound those with
// RunUntil instead.
//
//lint:owner(coordinator: the epoch loop — never reachable from an LP callback)
func (c *Coordinator) Run() error { return c.run(-1) }

// RunUntil advances all LPs through every event with timestamp <= t and
// leaves every Env's clock at exactly t.
//
//lint:owner(coordinator: the epoch loop — never reachable from an LP callback)
func (c *Coordinator) RunUntil(t time.Duration) error {
	if t < 0 {
		return fmt.Errorf("shard: RunUntil(%v) is negative", t)
	}
	return c.run(t)
}

//lint:owner(coordinator: the epoch loop body — barrier rounds and drains)
func (c *Coordinator) run(horizon time.Duration) error {
	if len(c.lps) == 0 {
		return nil
	}
	byShard := c.assign()
	gang := par.NewGang(len(byShard))
	defer gang.Close()
	errs := make([]error, len(c.lps))
	lookahead := int64(c.cfg.Lookahead)

	for {
		c.drain()
		window, any := c.minNext()
		if !any || (horizon >= 0 && window > int64(horizon)) {
			break
		}
		end := window + lookahead
		if horizon >= 0 && end > int64(horizon)+1 {
			end = int64(horizon) + 1
		}
		deadline := time.Duration(end - 1)
		rerr := gang.Round(func(w int) error {
			for _, lp := range byShard[w] {
				if err := lp.env.RunUntil(deadline); err != nil {
					errs[lp.id] = err
					return nil // keep the barrier; surfaced below in LP order
				}
			}
			return nil
		})
		if rerr != nil {
			return rerr
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	if horizon >= 0 {
		// No events remain at or before the horizon; pin every clock to it.
		for _, lp := range c.lps {
			if lp.env.Now() < horizon {
				if err := lp.env.RunUntil(horizon); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// assign buckets LPs by shard: explicit SetShard pins win, everything else
// fills contiguous blocks in registration order.
//
//lint:owner(coordinator: shard assignment happens before the first epoch)
func (c *Coordinator) assign() [][]*LP {
	k := c.Shards()
	byShard := make([][]*LP, k)
	n := len(c.lps)
	for i, lp := range c.lps {
		s := lp.shard
		if s < 0 || s >= k {
			s = i * k / n
		}
		byShard[s] = append(byShard[s], lp)
	}
	return byShard
}

// drain moves every LP's outbox into the destination Envs in the canonical
// (dst, at, src, srcSeq) order. Runs on the coordinator between rounds: no
// LP is executing, so no locks are needed and the resulting Env sequence
// numbering is identical for every shard count.
//
//lint:owner(coordinator: the mailbox drain — the other half of the Send channel)
func (c *Coordinator) drain() {
	c.mail = c.mail[:0]
	for _, lp := range c.lps {
		c.mail = append(c.mail, lp.out...)
		for i := range lp.out {
			lp.out[i].fn = nil
		}
		lp.out = lp.out[:0]
	}
	if len(c.mail) == 0 {
		return
	}
	sort.Slice(c.mail, func(i, j int) bool {
		a, b := c.mail[i], c.mail[j]
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range c.mail {
		dst := c.lps[m.dst]
		dst.env.Schedule(time.Duration(m.at)-dst.env.Now(), m.fn)
	}
}

// minNext returns the minimum NextAt bound across LPs.
//
//lint:owner(coordinator: window computation between epochs)
func (c *Coordinator) minNext() (int64, bool) {
	best, any := int64(0), false
	for _, lp := range c.lps {
		if at, ok := lp.env.NextAt(); ok && (!any || at < best) {
			best, any = at, true
		}
	}
	return best, any
}
