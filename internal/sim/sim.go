// Package sim implements the deterministic discrete-event engine that every
// other subsystem of the vRead reproduction runs on.
//
// The engine combines two classic ideas:
//
//   - a virtual clock driven by a binary-heap event queue (ties broken by a
//     monotonically increasing sequence number, so runs are bit-reproducible);
//   - coroutine-style processes: each Proc is a goroutine, but at most one
//     goroutine — either the engine loop or exactly one Proc — executes at a
//     time, with explicit channel handoff. Processes therefore read like
//     straight-line imperative code (the HDFS datanode loop looks like a
//     datanode loop) while remaining fully deterministic.
//
// Virtual time is a time.Duration measured from the start of the run. No
// component of the simulator may consult the wall clock.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus the pending-event
// queue and the set of live processes. An Env is not safe for concurrent use;
// the whole point is that nothing in a simulation is concurrent in real time.
type Env struct {
	now     time.Duration
	events  eventHeap
	wheel   wheel    // short/mid-delay timers; heap keeps the two tails
	free    []*event // recycled events; Schedule pops here before allocating
	live    int      // scheduled events that are neither fired nor cancelled
	ncancel int      // cancelled events still occupying heap slots
	fired   uint64   // events executed since NewEnv
	seq     uint64
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	current *Proc

	// handback is signalled by a Proc when it parks (or exits), returning
	// control to the engine goroutine. A single channel suffices because at
	// most one Proc is runnable at a time.
	handback chan struct{}

	stopped  bool
	procErr  *procPanic
	idleHook func() // invoked when the queue drains during Run*, may add events
}

// NewEnv returns an empty environment with the virtual clock at zero. The
// seed feeds the environment's deterministic random source (used only by
// workload generators, never by the engine itself).
func NewEnv(seed int64) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    make(map[*Proc]struct{}),
		handback: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Stop makes the current Run call return after the event being processed
// completes. Pending events remain queued.
func (e *Env) Stop() { e.stopped = true }

// SetIdleHook registers a function invoked whenever the event queue drains
// while Run is active. The hook may schedule more work (for example, a
// benchmark driver starting the next phase); if it schedules nothing, Run
// returns. Passing nil clears the hook.
func (e *Env) SetIdleHook(fn func()) { e.idleHook = fn }

// Schedule runs fn at virtual time Now()+after. It returns a Timer that can
// cancel the callback as long as it has not fired.
//
// The returned Timer is a value: holding one does not pin the event, and at
// steady state (events recycled through the free list, heap capacity grown
// to the working set) a Schedule/fire cycle performs zero heap allocations.
//
//lint:hotpath
func (e *Env) Schedule(after time.Duration, fn func()) Timer {
	if after < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", after))
	}
	ev := e.alloc()
	ev.at = e.now + after
	ev.seq = e.nextSeq()
	ev.fn = fn
	if !e.scheduleWheel(ev) {
		ev.lane = laneHeap
		e.events.push(ev)
	}
	e.live++
	return Timer{env: e, ev: ev, gen: ev.gen}
}

func (e *Env) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// alloc takes an event from the free list, or allocates when the list is
// empty (cold start, or the pending working set grew).
func (e *Env) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{} //lint:allow hotalloc(pool refill: paid once per working-set growth, zero at steady state)
}

// recycle invalidates every outstanding Timer for ev (generation bump) and
// returns it to the free list for the next Schedule.
func (e *Env) recycle(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, ev) //lint:allow hotalloc(free-list growth is amortized into working-set size)
}

// Pending returns the number of scheduled events that have neither fired nor
// been cancelled — the real queue depth, regardless of how many cancelled
// timers still occupy heap slots awaiting compaction.
func (e *Env) Pending() int { return e.live }

// Fired returns the total number of events executed since NewEnv — the
// denominator of the engine's events/second throughput.
func (e *Env) Fired() uint64 { return e.fired }

// Run processes events until the queue is empty (and the idle hook, if any,
// declines to add more), Stop is called, or a process panics. It returns the
// first process panic as an error; engine-level misuse panics directly.
func (e *Env) Run() error { return e.run(-1) }

// RunUntil processes events with timestamps <= t, then advances the clock to
// exactly t (if the run was not stopped earlier).
func (e *Env) RunUntil(t time.Duration) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) is in the past (now %v)", t, e.now)
	}
	err := e.run(t)
	if err == nil && !e.stopped && e.now < t {
		e.now = t
	}
	return err
}

// RunFor is RunUntil(Now()+d).
func (e *Env) RunFor(d time.Duration) error { return e.RunUntil(e.now + d) }

//lint:hotpath
func (e *Env) run(deadline time.Duration) error {
	e.stopped = false
	for !e.stopped {
		ev, ok := e.popNext(int64(deadline))
		if !ok {
			if e.queueEmpty() && e.idleHook != nil {
				e.idleHook()
				if !e.queueEmpty() {
					continue
				}
			}
			break
		}
		if ev.canceled {
			// Cancelled events surface here only from the heap lane (wheel
			// tombstones are recycled inside popNext).
			e.ncancel--
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", ev.at, e.now))
		}
		e.now = ev.at
		fn := ev.fn
		e.live--
		e.fired++
		// Recycle before invoking: the generation bump makes any Timer still
		// pointing at ev stale, so a callback can neither cancel the event
		// that is firing nor resurrect it once the struct is reused.
		e.recycle(ev)
		fn()
		if e.procErr != nil {
			pe := e.procErr
			e.procErr = nil
			return pe
		}
	}
	return nil
}

// compact filters cancelled events out of the heap in place and restores the
// heap property. Called when cancelled entries outnumber live ones, so a
// cancel-heavy workload (timeouts that almost always get cancelled) keeps
// the heap proportional to the real queue depth instead of to its history.
func (e *Env) compact() {
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			e.recycle(ev)
		} else {
			kept = append(kept, ev) //lint:allow hotalloc(filters in place: capacity bounded by the source slice, never grows)
		}
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = kept
	e.events.init()
	e.ncancel = 0
}

// Close aborts every live process so their goroutines exit. The environment
// must not be used afterwards. It is safe to call Close on an environment
// whose processes have all finished.
func (e *Env) Close() {
	for p := range e.procs {
		if !p.started {
			// Goroutine is parked on its very first resume; abort it the
			// same way.
			p.started = true
		}
		e.current = p
		p.resume <- resumeMsg{abort: true}
		<-e.handback
		e.current = nil
	}
	e.procErr = nil
}

// Live reports the number of processes that have been started (or created)
// and have not yet finished.
func (e *Env) Live() int { return len(e.procs) }

// ---------------------------------------------------------------------------
// Events and timers.

// event is one heap entry. Events are pooled: after firing or cancellation
// the struct returns to the Env's free list and gen is bumped, so Timers
// from an earlier lifetime can never act on a reused event.
type event struct {
	at       time.Duration
	seq      uint64
	gen      uint64
	fn       func()
	canceled bool
	lane     uint8 // container the event currently sits in (heap/L0/L1/due)
}

// Timer identifies a scheduled callback and allows cancelling it. The zero
// Timer (and a nil *Timer) is valid and refers to no event. A Timer becomes
// stale — all methods turn into no-ops — once its callback fires or Cancel
// succeeds; the generation counter makes staleness detection safe even after
// the underlying event struct has been recycled for a new callback.
type Timer struct {
	env *Env
	ev  *event
	gen uint64
}

// pending reports whether the timer still refers to its original, un-fired,
// un-cancelled event.
func (t *Timer) pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled && t.ev.fn != nil
}

// Cancel prevents the callback from firing. It reports whether the callback
// was still pending. Cancelling an already-fired or already-cancelled timer
// — or the zero Timer — is a no-op returning false.
//
//lint:hotpath
func (t *Timer) Cancel() bool {
	if !t.pending() {
		return false
	}
	t.ev.canceled = true
	e := t.env
	e.live--
	if t.ev.lane == laneHeap {
		e.ncancel++
		// The cancelled entry stays in the heap until it surfaces or until
		// cancelled entries outnumber live ones, whichever comes first.
		if e.ncancel > len(e.events)/2 && e.ncancel >= minCompact {
			e.compact()
		}
	}
	// Wheel- and due-resident tombstones are recycled for free when their
	// bucket drains; they never join the heap's compaction accounting.
	return true
}

// minCompact is the cancelled-entry count below which compaction is not
// worth the reshuffle (the run loop discards small residues for free).
const minCompact = 32

// When returns the virtual time the timer is scheduled to fire at, or 0 when
// the timer is not pending (zero Timer, already fired, or cancelled).
func (t *Timer) When() time.Duration {
	if !t.pending() {
		return 0
	}
	return t.ev.at
}

// ---------------------------------------------------------------------------
// Processes.

type resumeMsg struct{ abort bool }

type procPanic struct {
	proc  string
	value interface{}
}

func (p *procPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.proc, p.value)
}

type abortSentinel struct{}

// Proc is a simulated process. All Proc methods that can block must be called
// only from the process's own goroutine (that is, from within the function
// passed to Go).
type Proc struct {
	env     *Env
	name    string
	resume  chan resumeMsg
	started bool
	done    bool
	doneSig *Signal
	// wake redispatches the process; bound once at creation so the wake-up
	// paths (Sleep, Signal, Broadcast) schedule it without allocating a
	// fresh closure per suspension.
	wake func()
}

// Go creates a process and schedules it to start at the current virtual time
// (after already-queued events).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAfter(0, name, fn)
}

// GoAfter creates a process that starts after the given virtual delay.
func (e *Env) GoAfter(after time.Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan resumeMsg)}
	p.wake = func() { e.dispatch(p) }
	p.doneSig = NewSignal(e)
	e.procs[p] = struct{}{}
	go p.run(fn)
	e.Schedule(after, func() {
		p.started = true
		e.dispatch(p)
	})
	return p
}

func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		r := recover()
		if _, ok := r.(abortSentinel); ok {
			delete(p.env.procs, p)
			p.done = true
			p.env.handback <- struct{}{}
			return
		}
		if r != nil {
			p.env.procErr = &procPanic{proc: p.name, value: r}
		}
		delete(p.env.procs, p)
		p.done = true
		p.doneSig.Broadcast()
		p.env.handback <- struct{}{}
	}()
	// Park until the start event dispatches us.
	if msg := <-p.resume; msg.abort {
		panic(abortSentinel{})
	}
	fn(p)
}

// dispatch transfers control to p until it parks or finishes. Must run on the
// engine goroutine (inside an event callback).
func (e *Env) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- resumeMsg{}
	<-e.handback
	e.current = prev
}

// park yields control back to the engine until some event dispatches p again.
func (p *Proc) park() {
	p.env.handback <- struct{}{}
	if msg := <-p.resume; msg.abort {
		panic(abortSentinel{})
	}
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d of virtual time.
//
//lint:hotpath
func (p *Proc) Sleep(d time.Duration) {
	p.checkContext()
	p.env.Schedule(d, p.wake)
	p.park()
}

// Yield reschedules the process behind all events pending at the current
// instant.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until other finishes. Joining a finished process returns
// immediately.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	other.doneSig.Wait(p)
}

// checkContext panics if a blocking method is invoked from outside the
// process goroutine — a programming error that would otherwise deadlock.
func (p *Proc) checkContext() {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its goroutine", p.name))
	}
}
