// Package sim implements the deterministic discrete-event engine that every
// other subsystem of the vRead reproduction runs on.
//
// The engine combines two classic ideas:
//
//   - a virtual clock driven by a binary-heap event queue (ties broken by a
//     monotonically increasing sequence number, so runs are bit-reproducible);
//   - coroutine-style processes: each Proc is a goroutine, but at most one
//     goroutine — either the engine loop or exactly one Proc — executes at a
//     time, with explicit channel handoff. Processes therefore read like
//     straight-line imperative code (the HDFS datanode loop looks like a
//     datanode loop) while remaining fully deterministic.
//
// Virtual time is a time.Duration measured from the start of the run. No
// component of the simulator may consult the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus the pending-event
// queue and the set of live processes. An Env is not safe for concurrent use;
// the whole point is that nothing in a simulation is concurrent in real time.
type Env struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	current *Proc

	// handback is signalled by a Proc when it parks (or exits), returning
	// control to the engine goroutine. A single channel suffices because at
	// most one Proc is runnable at a time.
	handback chan struct{}

	stopped  bool
	procErr  *procPanic
	idleHook func() // invoked when the queue drains during Run*, may add events
}

// NewEnv returns an empty environment with the virtual clock at zero. The
// seed feeds the environment's deterministic random source (used only by
// workload generators, never by the engine itself).
func NewEnv(seed int64) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    make(map[*Proc]struct{}),
		handback: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Stop makes the current Run call return after the event being processed
// completes. Pending events remain queued.
func (e *Env) Stop() { e.stopped = true }

// SetIdleHook registers a function invoked whenever the event queue drains
// while Run is active. The hook may schedule more work (for example, a
// benchmark driver starting the next phase); if it schedules nothing, Run
// returns. Passing nil clears the hook.
func (e *Env) SetIdleHook(fn func()) { e.idleHook = fn }

// Schedule runs fn at virtual time Now()+after. It returns a Timer that can
// cancel the callback as long as it has not fired.
func (e *Env) Schedule(after time.Duration, fn func()) *Timer {
	if after < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", after))
	}
	ev := &event{at: e.now + after, seq: e.nextSeq(), fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{env: e, ev: ev}
}

func (e *Env) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Run processes events until the queue is empty (and the idle hook, if any,
// declines to add more), Stop is called, or a process panics. It returns the
// first process panic as an error; engine-level misuse panics directly.
func (e *Env) Run() error { return e.run(-1) }

// RunUntil processes events with timestamps <= t, then advances the clock to
// exactly t (if the run was not stopped earlier).
func (e *Env) RunUntil(t time.Duration) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) is in the past (now %v)", t, e.now)
	}
	err := e.run(t)
	if err == nil && !e.stopped && e.now < t {
		e.now = t
	}
	return err
}

// RunFor is RunUntil(Now()+d).
func (e *Env) RunFor(d time.Duration) error { return e.RunUntil(e.now + d) }

func (e *Env) run(deadline time.Duration) error {
	e.stopped = false
	for !e.stopped {
		if e.events.Len() == 0 {
			if e.idleHook != nil {
				e.idleHook()
				if e.events.Len() > 0 {
					continue
				}
			}
			break
		}
		ev := e.events[0]
		if deadline >= 0 && ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", ev.at, e.now))
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil // mark fired so Timer.Cancel is O(1)
		fn()
		if e.procErr != nil {
			pe := e.procErr
			e.procErr = nil
			return pe
		}
	}
	return nil
}

// Close aborts every live process so their goroutines exit. The environment
// must not be used afterwards. It is safe to call Close on an environment
// whose processes have all finished.
func (e *Env) Close() {
	for p := range e.procs {
		if !p.started {
			// Goroutine is parked on its very first resume; abort it the
			// same way.
			p.started = true
		}
		e.current = p
		p.resume <- resumeMsg{abort: true}
		<-e.handback
		e.current = nil
	}
	e.procErr = nil
}

// Live reports the number of processes that have been started (or created)
// and have not yet finished.
func (e *Env) Live() int { return len(e.procs) }

// ---------------------------------------------------------------------------
// Events and timers.

type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
}

// Timer identifies a scheduled callback and allows cancelling it.
type Timer struct {
	env *Env
	ev  *event
}

// Cancel prevents the callback from firing. It reports whether the callback
// was still pending. Cancelling an already-fired or already-cancelled timer
// is a no-op returning false.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	return true
}

// When returns the virtual time the timer is scheduled to fire at.
func (t *Timer) When() time.Duration { return t.ev.at }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ---------------------------------------------------------------------------
// Processes.

type resumeMsg struct{ abort bool }

type procPanic struct {
	proc  string
	value interface{}
}

func (p *procPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.proc, p.value)
}

type abortSentinel struct{}

// Proc is a simulated process. All Proc methods that can block must be called
// only from the process's own goroutine (that is, from within the function
// passed to Go).
type Proc struct {
	env     *Env
	name    string
	resume  chan resumeMsg
	started bool
	done    bool
	doneSig *Signal
}

// Go creates a process and schedules it to start at the current virtual time
// (after already-queued events).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAfter(0, name, fn)
}

// GoAfter creates a process that starts after the given virtual delay.
func (e *Env) GoAfter(after time.Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan resumeMsg)}
	p.doneSig = NewSignal(e)
	e.procs[p] = struct{}{}
	go p.run(fn)
	e.Schedule(after, func() {
		p.started = true
		e.dispatch(p)
	})
	return p
}

func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		r := recover()
		if _, ok := r.(abortSentinel); ok {
			delete(p.env.procs, p)
			p.done = true
			p.env.handback <- struct{}{}
			return
		}
		if r != nil {
			p.env.procErr = &procPanic{proc: p.name, value: r}
		}
		delete(p.env.procs, p)
		p.done = true
		p.doneSig.Broadcast()
		p.env.handback <- struct{}{}
	}()
	// Park until the start event dispatches us.
	if msg := <-p.resume; msg.abort {
		panic(abortSentinel{})
	}
	fn(p)
}

// dispatch transfers control to p until it parks or finishes. Must run on the
// engine goroutine (inside an event callback).
func (e *Env) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- resumeMsg{}
	<-e.handback
	e.current = prev
}

// park yields control back to the engine until some event dispatches p again.
func (p *Proc) park() {
	p.env.handback <- struct{}{}
	if msg := <-p.resume; msg.abort {
		panic(abortSentinel{})
	}
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.checkContext()
	p.env.Schedule(d, func() { p.env.dispatch(p) })
	p.park()
}

// Yield reschedules the process behind all events pending at the current
// instant.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until other finishes. Joining a finished process returns
// immediately.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	other.doneSig.Wait(p)
}

// checkContext panics if a blocking method is invoked from outside the
// process goroutine — a programming error that would otherwise deadlock.
func (p *Proc) checkContext() {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its goroutine", p.name))
	}
}
