package sim

import "time"

// Signal is a reusable wake-up point: processes Wait on it, other code
// (processes or event callbacks) Signals or Broadcasts it. There is no
// memory: a Broadcast with no waiters is a no-op, exactly like a condition
// variable. Use Gate for level-triggered conditions.
type Signal struct {
	env     *Env
	waiters []*waiter
}

type waiter struct {
	p        *Proc
	fired    bool
	timedOut bool
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait suspends p until the next Signal or Broadcast.
//
//lint:hotpath
func (s *Signal) Wait(p *Proc) {
	p.checkContext()
	w := &waiter{p: p}               //lint:allow hotalloc(pooling is unsafe: a timed-out waiter may linger in s.waiters past reuse)
	s.waiters = append(s.waiters, w) //lint:allow hotalloc(amortized into the signal's waiter working set)
	p.park()
}

// WaitTimeout suspends p until the next Signal/Broadcast or until d elapses.
// It reports false on timeout.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	p.checkContext()
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	timer := s.env.Schedule(d, func() {
		if w.fired {
			return
		}
		w.fired = true
		w.timedOut = true
		s.env.dispatch(p)
	})
	p.park()
	timer.Cancel()
	return !w.timedOut
}

// Signal wakes exactly one waiting process (the longest-waiting one). It
// reports whether a process was woken. The wake-up schedules the process's
// prebound wake closure, so signalling allocates nothing.
//
//lint:hotpath
func (s *Signal) Signal() bool {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		s.env.Schedule(0, w.p.wake)
		return true
	}
	return false
}

// Broadcast wakes every currently waiting process.
//
//lint:hotpath
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.fired {
			continue
		}
		w.fired = true
		s.env.Schedule(0, w.p.wake)
	}
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int {
	n := 0
	for _, w := range s.waiters {
		if !w.fired {
			n++
		}
	}
	return n
}

// Gate is a level-triggered condition: Open lets all present and future
// waiters through until Close. It replaces the common "check flag, maybe
// wait" pattern.
type Gate struct {
	open bool
	sig  *Signal
}

// NewGate returns a Gate in the given initial state.
func NewGate(env *Env, open bool) *Gate {
	return &Gate{open: open, sig: NewSignal(env)}
}

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.sig.Wait(p)
	}
}

// Open opens the gate and wakes all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.sig.Broadcast()
}

// Close closes the gate; subsequent Wait calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports the gate state.
func (g *Gate) IsOpen() bool { return g.open }

// Mutex is a simulated mutual-exclusion lock. Lock order is FIFO.
type Mutex struct {
	locked bool
	sig    *Signal
}

// NewMutex returns an unlocked mutex.
func NewMutex(env *Env) *Mutex { return &Mutex{sig: NewSignal(env)} }

// Lock blocks p until the mutex is acquired.
//
//lint:hotpath
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.sig.Wait(p)
	}
	m.locked = true
}

// Unlock releases the mutex. Unlocking an unlocked mutex panics.
//
//lint:hotpath
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked Mutex")
	}
	m.locked = false
	m.sig.Signal()
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock() bool {
	if m.locked {
		return false
	}
	m.locked = true
	return true
}
