package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv(1)
	var got []int
	env.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	env.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	env.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if env.Now() != 3*time.Millisecond {
		t.Fatalf("Now() = %v, want 3ms", env.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	env := NewEnv(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	env := NewEnv(1)
	fired := false
	tm := env.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel on pending timer returned false")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	env := NewEnv(1)
	tm := env.Schedule(time.Millisecond, func() {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestProcSleep(t *testing.T) {
	env := NewEnv(1)
	var wake time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		wake = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
	if env.Live() != 0 {
		t.Fatalf("Live() = %d after Run", env.Live())
	}
}

func TestProcInterleaving(t *testing.T) {
	env := NewEnv(1)
	var trace []string
	mk := func(name string, d time.Duration) {
		env.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				trace = append(trace, fmt.Sprintf("%s@%v", name, env.Now()))
			}
		})
	}
	mk("a", 2*time.Millisecond)
	mk("b", 3*time.Millisecond)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Both wake at 6ms; b's wake event was scheduled earlier (at 3ms) than
	// a's (at 4ms), so FIFO tie-breaking runs b first.
	want := []string{"a@2ms", "b@3ms", "a@4ms", "b@6ms", "a@6ms", "b@9ms"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcJoin(t *testing.T) {
	env := NewEnv(1)
	var order []string
	worker := env.Go("worker", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "worker-done")
	})
	env.Go("waiter", func(p *Proc) {
		p.Join(worker)
		order = append(order, "joined")
		p.Join(worker) // join on finished proc returns immediately
		order = append(order, "joined-again")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "worker-done" || order[2] != "joined-again" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	env := NewEnv(1)
	env.Go("bad", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := env.Run()
	if err == nil {
		t.Fatal("Run returned nil for panicking process")
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		env.Schedule(time.Millisecond, tick)
	}
	env.Schedule(time.Millisecond, tick)
	if err := env.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if env.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v", env.Now())
	}
	if err := env.RunFor(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("count = %d, want 15", count)
	}
	env.Close()
}

func TestStop(t *testing.T) {
	env := NewEnv(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			env.Stop()
		}
		env.Schedule(time.Millisecond, tick)
	}
	env.Schedule(time.Millisecond, tick)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	env.Close()
}

func TestCloseAbortsParkedProcs(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	for i := 0; i < 4; i++ {
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			sig.Wait(p) // never signalled
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Live() != 4 {
		t.Fatalf("Live() = %d, want 4", env.Live())
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Live() = %d after Close", env.Live())
	}
}

func TestSignalWakeOrder(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var got []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Go(name, func(p *Proc) {
			sig.Wait(p)
			got = append(got, name)
		})
	}
	env.Schedule(time.Millisecond, func() {
		if !sig.Signal() {
			t.Error("Signal found no waiters")
		}
	})
	env.Schedule(2*time.Millisecond, func() { sig.Broadcast() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wake order = %v, want FIFO %v", got, want)
		}
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var timedOut, signalled bool
	env.Go("timeout", func(p *Proc) {
		timedOut = !sig.WaitTimeout(p, time.Millisecond)
	})
	env.Go("signalled", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // first waiter already timed out
		signalled = sig.WaitTimeout(p, 10*time.Millisecond)
	})
	env.Schedule(5*time.Millisecond, func() { sig.Broadcast() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !signalled {
		t.Fatal("second waiter should have been signalled")
	}
}

func TestGate(t *testing.T) {
	env := NewEnv(1)
	gate := NewGate(env, false)
	var passed []time.Duration
	env.Go("w1", func(p *Proc) {
		gate.Wait(p)
		passed = append(passed, env.Now())
	})
	env.Schedule(3*time.Millisecond, func() { gate.Open() })
	env.GoAfter(5*time.Millisecond, "w2", func(p *Proc) {
		gate.Wait(p) // already open: passes immediately
		passed = append(passed, env.Now())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(passed) != 2 || passed[0] != 3*time.Millisecond || passed[1] != 5*time.Millisecond {
		t.Fatalf("passed = %v", passed)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	env := NewEnv(1)
	mu := NewMutex(env)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			mu.Unlock()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms (serialized)", env.Now())
	}
}

func TestMutexTryLock(t *testing.T) {
	env := NewEnv(1)
	mu := NewMutex(env)
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
	if !mu.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 0)
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(p, i)
			p.Sleep(time.Microsecond)
		}
		q.Close()
	})
	env.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestQueueBlockingBounded(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 2)
	var putDone time.Duration
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			q.Put(p, i) // third Put must block until consumer runs
		}
		putDone = env.Now()
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		if v, ok := q.Get(p); !ok || v != 0 {
			t.Errorf("Get = %d,%v", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 5*time.Millisecond {
		t.Fatalf("third Put completed at %v, want 5ms", putDone)
	}
	env.Close()
}

func TestQueueGetTimeout(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, 0)
	var ok1, ok2 bool
	env.Go("consumer", func(p *Proc) {
		_, ok1 = q.GetTimeout(p, time.Millisecond)
		_, ok2 = q.GetTimeout(p, 10*time.Millisecond)
	})
	env.Go("producer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Put(p, "hello")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !ok2 {
		t.Fatal("second GetTimeout should have received the item")
	}
}

func TestQueueTryOps(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut(7) {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut(8) {
		t.Fatal("TryPut on full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 7 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestIdleHook(t *testing.T) {
	env := NewEnv(1)
	phases := 0
	env.SetIdleHook(func() {
		if phases < 3 {
			phases++
			env.Schedule(time.Millisecond, func() {})
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if phases != 3 {
		t.Fatalf("phases = %d, want 3", phases)
	}
	if env.Now() != 3*time.Millisecond {
		t.Fatalf("Now() = %v", env.Now())
	}
}

// TestDeterminism runs a moderately complex mixed workload twice and checks
// the traces are identical — the core guarantee everything else leans on.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		env := NewEnv(42)
		var trace []string
		q := NewQueue[int](env, 4)
		sig := NewSignal(env)
		for i := 0; i < 5; i++ {
			i := i
			env.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(time.Duration(env.Rand().Intn(1000)) * time.Microsecond)
					q.Put(p, i*100+j)
				}
			})
		}
		env.Go("cons", func(p *Proc) {
			for n := 0; n < 100; n++ {
				v, _ := q.Get(p)
				trace = append(trace, fmt.Sprintf("%v:%d", env.Now(), v))
				if n == 50 {
					sig.Broadcast()
				}
			}
		})
		env.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			trace = append(trace, fmt.Sprintf("woke@%v", env.Now()))
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any sequence of Put values, Get returns exactly that
// sequence (FIFO preservation through arbitrary blocking interleavings).
func TestQueueFIFOProperty(t *testing.T) {
	f := func(values []int16, capSeed uint8) bool {
		env := NewEnv(7)
		capacity := int(capSeed % 8) // 0..7, 0 = unbounded
		q := NewQueue[int16](env, capacity)
		var got []int16
		env.Go("p", func(p *Proc) {
			for _, v := range values {
				q.Put(p, v)
			}
			q.Close()
		})
		env.Go("c", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		if len(got) != len(values) {
			return false
		}
		for i := range values {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: N processes sleeping random durations always finish with the
// clock at the max duration, and Live() drains to zero.
func TestSleepMaxProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		env := NewEnv(3)
		var max time.Duration
		for i, d := range ds {
			dur := time.Duration(d) * time.Microsecond
			if dur > max {
				max = dur
			}
			env.Go(fmt.Sprintf("s%d", i), func(p *Proc) { p.Sleep(dur) })
		}
		if err := env.Run(); err != nil {
			return false
		}
		return env.Now() == max && env.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
