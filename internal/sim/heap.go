package sim

// eventHeap is a monomorphic 4-ary min-heap of *event ordered by (at, seq).
// It replaces container/heap's interface-boxed API on the engine's hottest
// path: push and pop are direct slice operations with no interface
// conversions, and the branching factor of 4 halves the tree depth (fewer
// cache lines touched per sift) while the four-way child comparison stays
// register-resident.
//
// seq is unique per event, so the order is total and pop order — and
// therefore the whole simulation — is deterministic whatever the internal
// layout history (growth, compaction) was.
type eventHeap []*event

// push appends ev and restores the heap property.
func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev) //lint:allow hotalloc(heap growth amortized: capacity tracks the pending working set)
	h.up(len(*h) - 1)
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	ev := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return ev
}

// init establishes the heap property over arbitrary contents (used after
// compaction filters cancelled events out in place).
func (h eventHeap) init() {
	if len(h) < 2 {
		// (len(h)-2)/4 truncates toward zero, so an empty heap would still
		// enter the loop at i=0 and index out of range; 0- and 1-element
		// heaps are trivially valid.
		return
	}
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}

func (h eventHeap) up(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEv(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (h eventHeap) down(i int) {
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessEv(h[c], h[min]) {
				min = c
			}
		}
		if !lessEv(h[min], ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// lessEv is the scalar comparison behind less, on events directly so the
// sift loops can hold the moving event in a register.
func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
