package sim

import "time"

// Queue is a bounded FIFO of T with blocking Put and Get, the workhorse for
// rings, socket buffers, and device queues. A capacity of 0 means unbounded.
type Queue[T any] struct {
	env      *Env
	items    []T
	capacity int
	notEmpty *Signal
	notFull  *Signal
	closed   bool
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{
		env:      env,
		capacity: capacity,
		notEmpty: NewSignal(env),
		notFull:  NewSignal(env),
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue closed: pending and future Gets drain remaining items
// and then return ok=false; Puts on a closed queue panic.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Put appends v, blocking while the queue is full.
//
//lint:hotpath
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.capacity > 0 && len(q.items) >= q.capacity && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, v) //lint:allow hotalloc(growth amortized into the queue's bounded working set)
	q.notEmpty.Signal()
}

// TryPut appends v if space is available, reporting success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	if q.capacity > 0 && len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the oldest item, blocking while the queue is empty.
// ok is false only when the queue is closed and drained.
//
//lint:hotpath
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	if len(q.items) == 0 {
		return v, false
	}
	return q.pop(), true
}

// GetTimeout is Get with a deadline; ok is false on timeout or closed-empty.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := q.env.Now() + d
	for len(q.items) == 0 && !q.closed {
		remaining := deadline - q.env.Now()
		if remaining <= 0 || !q.notEmpty.WaitTimeout(p, remaining) {
			return v, false
		}
	}
	if len(q.items) == 0 {
		return v, false
	}
	return q.pop(), true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.pop(), true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Signal()
	return v
}
