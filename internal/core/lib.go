package core

import (
	"fmt"
	"strings"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/guest"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// LibStats counts libvread activity in one client VM.
type LibStats struct {
	Opens         int64
	OpenFallbacks int64 // vRead_open returned null → vanilla socket path
	Reads         int64
	BytesRead     int64
	Retries       int64 // reads re-issued after a retryable daemon failure
}

// Lib is libvread: the user-level library of Table 1, wired into HDFS
// through the hdfs.BlockReader hook. It owns the block-name → descriptor
// hash so repeated reads of a block reuse one descriptor.
type Lib struct {
	mgr    *Manager
	vm     *cluster.VM
	daemon *Daemon
	vfds   map[string]*VFD
	stats  LibStats
	// faults is the plan evaluated at the guest-side hostile-ring
	// faultpoints (ring.badslot, ring.stalekey, ring.doorbellstorm) — the
	// manager-wide plan unless InjectGuestFaults armed a per-VM one.
	faults *faults.Plan
}

var _ hdfs.BlockReader = (*Lib)(nil)

func newLib(mgr *Manager, vm *cluster.VM, d *Daemon) *Lib {
	return &Lib{mgr: mgr, vm: vm, daemon: d, vfds: make(map[string]*VFD), faults: mgr.cfg.Faults}
}

// forgeHostile evaluates the hostile-guest faultpoints on one outgoing
// descriptor. These model a misbehaving (or compromised) guest driver, so
// they run on the guest side of the SHM boundary, right before the Put:
//
//   - ring.badslot corrupts the descriptor — an unknown opcode, a negative
//     or overflowing byte range, or an unbounded name, rotating through the
//     variants so a multi-fire plan covers every sanitizer arm;
//   - ring.stalekey stamps the previous epoch's key instead of the current
//     one (a guest replaying descriptors across a restore);
//   - ring.doorbellstorm floods the descriptor area with junk no-reply
//     descriptors ahead of the real one — each costs the daemon a wakeup and
//     advances its revocation streak, but none carries a reply channel, so
//     the real request's slot stream stays exact.
func (l *Lib) forgeHostile(p *sim.Proc, req *ringReq, tr *trace.Trace) {
	f := l.faults
	if f.Should(faults.RingBadSlot) {
		tr.Event(trace.LayerRing, "fault:bad-slot", 0)
		switch f.Fired(faults.RingBadSlot) % 4 {
		case 1:
			req.kind = ringReqKind(99)
		case 2:
			req.off = -1
		case 3:
			req.off = 1 << 62
			req.n = 1 << 62
		default:
			req.dn = strings.Repeat("x", maxRingNameBytes+1)
		}
	}
	if f.Should(faults.RingStaleKey) {
		tr.Event(trace.LayerRing, "fault:stale-key", 0)
		req.key = mintRingKey(l.vm.Name, l.daemon.ring.epoch-1)
	}
	if f.Should(faults.RingDoorbellStorm) {
		tr.Event(trace.LayerRing, "fault:doorbell-storm", 0)
		for i := 0; i < l.mgr.cfg.DoorbellStormBurst; i++ {
			l.vm.VCPU.RunT(p, l.mgr.cfg.EventFdCycles, metrics.TagOthers, tr)
			l.daemon.ring.reqs.Put(p, ringReq{kind: reqOpen, dn: "storm", path: "storm", key: req.key})
		}
	}
}

// Stats returns a copy of the library counters.
func (l *Lib) Stats() LibStats { return l.stats }

// OpenBlock implements hdfs.BlockReader: vRead_open for an HDFS block.
// ok=false falls back to the vanilla socket read (Algorithm 1's
// null-descriptor branch).
func (l *Lib) OpenBlock(p *sim.Proc, tr *trace.Trace, client *guest.Kernel, info hdfs.BlockInfo, dn string) (hdfs.BlockHandle, bool) {
	if client.Name() != l.vm.Name {
		return nil, false // library belongs to a different VM
	}
	return l.OpenPath(p, tr, dn, hdfs.BlockPathByName(info.BlockName()), info.BlockName())
}

// OpenPath is the generic vRead_open underneath OpenBlock: open any file on
// a datanode VM's image by path. This is the §3 generalization hook — other
// distributed file systems (QFS, GFS) plug their own chunk layouts in here.
// key names the descriptor in the library's hash.
func (l *Lib) OpenPath(p *sim.Proc, tr *trace.Trace, dn, path, key string) (*VFD, bool) {
	if vfd, ok := l.vfds[key]; ok {
		vfd.refs++
		return vfd, true
	}
	l.stats.Opens++
	vcpu := l.vm.VCPU
	cfg := l.mgr.cfg
	sp := tr.Begin(trace.LayerLib, "vread-open")
	vcpu.RunT(p, cfg.LibCallCycles, metrics.TagClientApp, tr)

	l.daemon.ring.reqMu.Lock(p)
	vcpu.RunT(p, cfg.EventFdCycles, metrics.TagOthers, tr)
	reply := sim.NewQueue[openResult](l.mgr.env, 0)
	req := ringReq{kind: reqOpen, dn: dn, path: path, key: l.daemon.ring.key, reply: reply, tr: tr}
	l.forgeHostile(p, &req, tr)
	l.daemon.ring.reqs.Put(p, req)
	res, _ := reply.Get(p)
	l.daemon.ring.reqMu.Unlock()
	tr.EndSpan(sp, 0)

	if !res.ok {
		tr.Event(trace.LayerLib, "open-fallback", 0)
		l.stats.OpenFallbacks++
		return nil, false
	}
	vfd := &VFD{lib: l, blockName: key, dn: dn, path: path, size: res.size, refs: 1}
	l.vfds[key] = vfd
	return vfd, true
}

// VFD is an open vRead descriptor (Table 1).
type VFD struct {
	lib       *Lib
	blockName string
	dn        string
	path      string
	size      int64
	refs      int
	pos       int64 // sequential cursor for Seek/Read (Table 1 API parity)
}

var _ hdfs.BlockHandle = (*VFD)(nil)

// Size returns the block file size at open time.
func (v *VFD) Size() int64 { return v.size }

// Seek is vRead_seek: set the descriptor's file offset, returning the
// resulting offset (Table 1's contract).
func (v *VFD) Seek(p *sim.Proc, off int64) (int64, error) {
	v.lib.vm.VCPU.Run(p, v.lib.mgr.cfg.LibCallCycles, metrics.TagClientApp)
	if off < 0 || off > v.size {
		return v.pos, fmt.Errorf("core: vRead_seek to %d outside [0,%d] of %s: %w", off, v.size, v.blockName, ErrBadRange)
	}
	v.pos = off
	return v.pos, nil
}

// Read is the sequential form of vRead_read: read up to n bytes from the
// descriptor's current offset, advancing it.
func (v *VFD) Read(p *sim.Proc, n int64) (data.Slice, error) {
	if remaining := v.size - v.pos; n > remaining {
		n = remaining
	}
	s, err := v.ReadAt(p, nil, v.pos, n)
	if err == nil {
		v.pos += n
	}
	return s, err
}

// ReadAt is vRead_read: write the request descriptor to the ring, doorbell
// the daemon, then drain slots into the application buffer. Retryable
// failures (ErrDaemonFailed, ErrShortRead) are re-issued with exponential
// backoff up to MaxReadRetries before surfacing — the degradation layer that
// rides out a daemon restart or a transient remote failure without the
// caller noticing.
func (v *VFD) ReadAt(p *sim.Proc, tr *trace.Trace, off, n int64) (data.Slice, error) {
	if off < 0 || n < 0 || off+n > v.size {
		return data.Slice{}, fmt.Errorf("core: vRead_read [%d,%d) outside block %s of %d: %w", off, off+n, v.blockName, v.size, ErrBadRange)
	}
	if n == 0 {
		return data.Slice{}, nil
	}
	l := v.lib
	cfg := l.mgr.cfg
	l.stats.Reads++
	sp := tr.Begin(trace.LayerLib, "vread-read")
	var s data.Slice
	var err error
	for attempt := 0; ; attempt++ {
		s, err = v.readOnce(p, tr, off, n)
		if err == nil || !retryableRead(err) || attempt >= cfg.MaxReadRetries {
			break
		}
		l.stats.Retries++
		tr.Event(trace.LayerLib, "read-retry", 0)
		p.Sleep(cfg.RetryBackoff << attempt)
	}
	if err != nil {
		tr.EndSpan(sp, 0)
		return data.Slice{}, err
	}
	tr.EndSpan(sp, n)
	l.stats.BytesRead += n
	return s, nil
}

// readOnce is one ring round trip: request descriptor in, slots drained out.
func (v *VFD) readOnce(p *sim.Proc, tr *trace.Trace, off, n int64) (data.Slice, error) {
	l := v.lib
	cfg := l.mgr.cfg
	vcpu := l.vm.VCPU
	vcpu.RunT(p, cfg.LibCallCycles, metrics.TagClientApp, tr)

	ring := l.daemon.ring
	ring.reqMu.Lock(p)
	defer ring.reqMu.Unlock()
	vcpu.RunT(p, cfg.EventFdCycles, metrics.TagOthers, tr)
	req := ringReq{kind: reqRead, dn: v.dn, path: v.path, off: off, n: n, key: ring.key, tr: tr}
	l.forgeHostile(p, &req, tr)
	ring.reqs.Put(p, req)

	rsp := tr.Begin(trace.LayerRing, "ring-drain")
	var parts data.Concat
	var got int64
	// Spinlocks and slot→application copies are charged in doorbell-batch
	// units, matching the driver's batched consumption.
	var accSlots, accBytes int64
	flush := func() {
		if accSlots > 0 {
			vcpu.RunT(p, cfg.SlotLockCycles*accSlots+cfg.guestCopyCycles(accBytes), metrics.TagCopyVRead, tr)
			accSlots, accBytes = 0, 0
		}
	}
	for {
		slot, ok := ring.full.Get(p)
		if !ok {
			tr.EndSpan(rsp, got)
			return data.Slice{}, fmt.Errorf("%w under %s", ErrRingClosed, v.blockName)
		}
		if slot.code != slotOK {
			ring.free.Put(p, struct{}{})
			tr.EndSpan(rsp, got)
			switch slot.code {
			case slotBadKey:
				return data.Slice{}, fmt.Errorf("%w reading %s", ErrStaleKey, v.blockName)
			case slotRevoked:
				return data.Slice{}, fmt.Errorf("%w reading %s", ErrRingRevoked, v.blockName)
			default:
				return data.Slice{}, fmt.Errorf("%w reading %s", ErrDaemonFailed, v.blockName)
			}
		}
		parts = append(parts, slot.s.Content())
		got += slot.s.Len()
		accSlots++
		accBytes += slot.s.Len()
		if accSlots >= int64(cfg.EventBatchSlots) {
			flush()
		}
		ring.free.Put(p, struct{}{})
		if slot.last {
			break
		}
	}
	flush()
	tr.EndSpan(rsp, got)
	if got != n {
		return data.Slice{}, fmt.Errorf("%w of %s: %d of %d", ErrShortRead, v.blockName, got, n)
	}
	return data.NewSlice(parts), nil
}

// Close is vRead_close: drop the descriptor once the last reference goes.
func (v *VFD) Close(p *sim.Proc, tr *trace.Trace) {
	l := v.lib
	l.vm.VCPU.RunT(p, l.mgr.cfg.LibCallCycles, metrics.TagClientApp, tr)
	v.refs--
	if v.refs <= 0 {
		delete(l.vfds, v.blockName)
	}
}
