package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"vread/internal/sim"
)

// White-box ring tests: the shared-memory channel invariants the daemon and
// driver rely on.

func TestRingSlotTokensConserved(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := Config{}.WithDefaults()
	r := newRing(env, cfg, "vm1")
	if r.free.Len() != cfg.RingSlots {
		t.Fatalf("initial free slots = %d, want %d", r.free.Len(), cfg.RingSlots)
	}
	// A producer/consumer pair cycling many slots leaves the count intact.
	env.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 5000; i++ {
			r.free.Get(p)
			r.full.Put(p, ringSlot{})
		}
	})
	env.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < 5000; i++ {
			r.full.Get(p)
			r.free.Put(p, struct{}{})
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.free.Len()+r.full.Len() != cfg.RingSlots {
		t.Fatalf("slot tokens leaked: free %d + full %d != %d", r.free.Len(), r.full.Len(), cfg.RingSlots)
	}
	if r.free.Len() != cfg.RingSlots {
		t.Fatalf("ring not drained: %d free", r.free.Len())
	}
}

func TestRingSlotsFor(t *testing.T) {
	env := sim.NewEnv(1)
	r := newRing(env, Config{SlotBytes: 4096}.WithDefaults(), "vm1")
	cases := []struct {
		n    int64
		want int64
	}{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {128 << 10, 32},
	}
	for _, c := range cases {
		if got := r.slotsFor(c.n); got != c.want {
			t.Errorf("slotsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Property: slotsFor never under-provisions (slots × slotBytes >= n) and
// never wastes a whole slot.
func TestRingSlotsForProperty(t *testing.T) {
	env := sim.NewEnv(1)
	r := newRing(env, Config{}.WithDefaults(), "vm1")
	f := func(raw uint32) bool {
		n := int64(raw)
		s := r.slotsFor(n)
		if s*r.cfg.SlotBytes < n {
			return false
		}
		return n == 0 || (s-1)*r.cfg.SlotBytes < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRingRequestSerialization: the request mutex admits one reader at a
// time, so interleaved requests never interleave their slots.
func TestRingRequestSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := Config{}.WithDefaults()
	r := newRing(env, cfg, "vm1")
	inCritical := 0
	maxInCritical := 0
	for i := 0; i < 4; i++ {
		env.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			for j := 0; j < 10; j++ {
				r.reqMu.Lock(p)
				inCritical++
				if inCritical > maxInCritical {
					maxInCritical = inCritical
				}
				p.Sleep(100)
				inCritical--
				r.reqMu.Unlock()
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInCritical != 1 {
		t.Fatalf("ring mutex admitted %d concurrent requests", maxInCritical)
	}
}
