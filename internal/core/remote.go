package core

import (
	"fmt"
	"sort"

	"vread/internal/cluster"
	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/fsim"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
	"vread/internal/trace"
)

// VReadPort is the host-terminated port of the daemons' TCP transport.
const VReadPort = 51000

// remoteReq asks a peer host's daemon to open or read a block file. tr rides
// along so the serving host charges its work to the originating request.
type remoteReq struct {
	reqID    int64
	fromHost string
	dn       string
	path     string
	off      int64
	n        int64
	open     bool
	tr       *trace.Trace
}

// remoteChunk is one response unit (data chunk or open reply). off is the
// absolute file offset of a data chunk: the receiving daemon verifies
// contiguity with it, so an injected drop or torn chunk surfaces as a
// detectable gap instead of silently corrupting the ring stream.
type remoteChunk struct {
	reqID  int64
	off    int64
	err    bool
	openOK bool
	size   int64
}

// chunkMsg is what lands on a pending request's queue.
type chunkMsg struct {
	payload data.Slice
	off     int64
	err     bool
	openOK  bool
	size    int64
}

// hostServer is the per-host daemon endpoint serving requests from peers:
// the remote half of Figures 7/8 (the "vRead-daemon" bar on the datanode
// side).
type hostServer struct {
	mgr    *Manager
	host   *cluster.Host
	thread *cpusched.Thread
	reqs   *sim.Queue[remoteReq]
	hr     *hostReader
}

func newHostServer(mgr *Manager, host *cluster.Host) *hostServer {
	thread := host.CPU.NewThread("vread-server:"+host.Name, DaemonEntity(host.Name))
	s := &hostServer{
		mgr:    mgr,
		host:   host,
		thread: thread,
		reqs:   sim.NewQueue[remoteReq](mgr.env, 0),
		hr:     newHostReader(mgr.cfg, host, thread),
	}
	mgr.env.Go("vread-server:"+host.Name, s.loop)
	return s
}

func (s *hostServer) loop(p *sim.Proc) {
	for {
		req, ok := s.reqs.Get(p)
		if !ok {
			return
		}
		if req.open {
			s.handleOpen(p, req)
		} else {
			s.handleRead(p, req)
		}
	}
}

// handleOpen checks the local mount table and replies with a header chunk.
func (s *hostServer) handleOpen(p *sim.Proc, req remoteReq) {
	sp := req.tr.Begin(trace.LayerRemote, "serve-open")
	s.thread.RunT(p, s.mgr.cfg.OpenCycles, metrics.TagOthers, req.tr)
	reply := remoteChunk{reqID: req.reqID}
	if m := s.mgr.mount(s.host.Name, req.dn); m != nil {
		if e, ok := m.Lookup(req.path); ok {
			reply.openOK = true
			reply.size = e.Size
		}
	}
	req.tr.EndSpan(sp, 0)
	s.send(p, req.tr, req.fromHost, data.Slice{C: data.Zero(0)}, reply)
}

// handleRead reads the requested window from the local mount (host page
// cache + disk) and actively pushes chunks to the requesting host — the
// paper's "active model for RDMA data exchange on the datanode side".
func (s *hostServer) handleRead(p *sim.Proc, req remoteReq) {
	m := s.mgr.mount(s.host.Name, req.dn)
	if m == nil {
		s.send(p, req.tr, req.fromHost, data.Slice{C: data.Zero(0)}, remoteChunk{reqID: req.reqID, err: true})
		return
	}
	e, ok := m.Lookup(req.path)
	if !ok {
		s.send(p, req.tr, req.fromHost, data.Slice{C: data.Zero(0)}, remoteChunk{reqID: req.reqID, err: true})
		return
	}
	sp := req.tr.Begin(trace.LayerRemote, "serve-read")
	dnVM := s.mgr.cl.VM(req.dn)
	obj := dnVM.HostCacheObject(e.Node.Ino())
	key := req.dn + ":" + req.path
	cfg := s.mgr.cfg
	for off := req.off; off < req.off+req.n; {
		chunk := req.off + req.n - off
		if chunk > cfg.RemoteChunkBytes {
			chunk = cfg.RemoteChunkBytes
		}
		s.hr.read(p, req.tr, obj, key, e.Size, off, chunk)
		payload, err := m.ReadAt(req.path, off, chunk)
		if err == nil && cfg.Faults.Should(faults.DiskReadError) {
			req.tr.Event(trace.LayerRemote, "fault:disk-error", 0)
			err = fsim.ErrStale
		}
		if err != nil {
			req.tr.EndSpan(sp, off-req.off)
			s.send(p, req.tr, req.fromHost, data.Slice{C: data.Zero(0)}, remoteChunk{reqID: req.reqID, err: true})
			return
		}
		if chunk > 1 && cfg.Faults.Should(faults.DiskReadTorn) {
			// Torn read: the chunk arrives short. The receiving daemon's
			// contiguity check catches the gap at the next chunk (or its
			// window timeout, if this was the last) and re-requests from
			// the end of the delivered prefix.
			req.tr.Event(trace.LayerRemote, "fault:disk-torn", 0)
			payload = payload.Sub(0, chunk/2)
		}
		s.send(p, req.tr, req.fromHost, payload, remoteChunk{reqID: req.reqID, off: off})
		off += chunk
	}
	req.tr.EndSpan(sp, req.n)
}

// send pushes one frame to a peer host over the configured transport.
func (s *hostServer) send(p *sim.Proc, tr *trace.Trace, dstHost string, payload data.Slice, meta remoteChunk) {
	s.mgr.sendFrame(p, s.host.Name, s.thread, dstHost, netsim.Frame{Payload: payload, Meta: meta, Trace: tr})
}

// ---------------------------------------------------------------------------
// Manager-side transport plumbing.

// sendFrame transmits a request or chunk frame daemon-to-daemon over the
// pair's current transport (RDMA, or TCP while a downgrade is active).
func (m *Manager) sendFrame(p *sim.Proc, srcHost string, srcThread *cpusched.Thread, dstHost string, fr netsim.Frame) {
	switch m.transportTo(srcHost, dstHost) {
	case TransportRDMA:
		qp := m.qpFor(srcHost, dstHost)
		sent := sim.NewSignal(m.env)
		done := false
		qp.PostFrom(srcHost, fr, func() {
			done = true
			sent.Broadcast()
		})
		for !done {
			sent.Wait(p)
		}
	case TransportTCP:
		// User-level TCP: per-segment syscall + copy cost on the sending
		// daemon, then the host kernel path.
		srcThread.RunT(p, m.cfg.TCPSegCycles, metrics.TagVReadNet, fr.Trace)
		nic := m.fabric().NIC(srcHost)
		sent := sim.NewSignal(m.env)
		done := false
		nic.SendToHost(dstHost, VReadPort, fr, func() {
			done = true
			sent.Broadcast()
		})
		for !done {
			sent.Wait(p)
		}
	default:
		panic(fmt.Sprintf("core: unknown transport %v", m.cfg.Transport))
	}
}

// noteRemoteFailureT is noteRemoteFailure plus the once-per-transition trace
// mark the acceptance test asserts on.
func (m *Manager) noteRemoteFailureT(tr *trace.Trace, a, b string) {
	if m.noteRemoteFailure(a, b) {
		tr.Event(trace.LayerDaemon, "transport-downgrade", 0)
	}
}

// qpFor lazily creates the QP connecting two hosts, charging RDMA CPU to
// each side's daemon-server thread.
func (m *Manager) qpFor(a, b string) *netsim.QP {
	key := qpKey(a, b)
	if qp, ok := m.qps[key]; ok {
		return qp
	}
	sa, sb := m.servers[a], m.servers[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("core: missing vRead server on %s or %s", a, b))
	}
	qp := m.fabric().NewQP(
		a, sa.thread, func(fr netsim.Frame) { m.onFrame(a, fr) },
		b, sb.thread, func(fr netsim.Frame) { m.onFrame(b, fr) },
	)
	m.qps[key] = qp
	return qp
}

func qpKey(a, b string) string {
	s := []string{a, b}
	sort.Strings(s)
	return s[0] + "|" + s[1]
}

// onFrame demultiplexes an arriving daemon-to-daemon frame on a host.
func (m *Manager) onFrame(host string, fr netsim.Frame) {
	switch meta := fr.Meta.(type) {
	case remoteReq:
		srv := m.servers[host]
		if srv == nil || !srv.reqs.TryPut(meta) {
			panic(fmt.Sprintf("core: no vRead server on %s", host))
		}
	case remoteChunk:
		pend := m.pending[meta.reqID]
		if pend == nil {
			return // request abandoned (timed out and retired) — drop
		}
		pend.TryPut(chunkMsg{payload: fr.Payload, off: meta.off, err: meta.err, openOK: meta.openOK, size: meta.size})
	default:
		panic(fmt.Sprintf("core: unexpected frame meta %T", fr.Meta))
	}
}

// onTCPFrame is the host-port handler for the TCP transport: the receiving
// daemon pays its per-segment user-level cost, then demux.
func (m *Manager) onTCPFrame(host string) netsim.HostHandler {
	return func(fr netsim.Frame) {
		srv := m.servers[host]
		srv.thread.PostT(m.cfg.TCPSegCycles, metrics.TagVReadNet, fr.Trace, func() {
			m.onFrame(host, fr)
		})
	}
}

// remoteOpen sends an open probe to the peer host and waits for the reply.
func (m *Manager) remoteOpen(p *sim.Proc, d *Daemon, dnHost string, req ringReq) openResult {
	m.nextReq++
	id := m.nextReq
	pend := sim.NewQueue[chunkMsg](m.env, 0)
	m.pending[id] = pend
	defer delete(m.pending, id)
	m.sendFrame(p, d.host.Name, d.thread, dnHost, netsim.Frame{
		Payload: data.NewSlice(data.Zero(64)),
		Meta:    remoteReq{reqID: id, fromHost: d.host.Name, dn: req.dn, path: req.path, open: true, tr: req.tr},
		Trace:   req.tr,
	})
	msg, ok := pend.GetTimeout(p, m.cfg.OpenTimeout)
	if !ok {
		// No reply at all: treat the transport as suspect so subsequent
		// reads to that host start on the TCP fallback.
		m.noteRemoteFailureT(req.tr, d.host.Name, dnHost)
		return openResult{}
	}
	if msg.err {
		return openResult{}
	}
	return openResult{ok: msg.openOK, size: msg.size}
}

// remoteRead sends a read request for one window and returns the queue its
// chunks will arrive on. The caller must call finishRemote when done.
func (m *Manager) remoteRead(p *sim.Proc, tr *trace.Trace, d *Daemon, dnHost, dn, path string, off, n int64) *sim.Queue[chunkMsg] {
	m.nextReq++
	id := m.nextReq
	pend := sim.NewQueue[chunkMsg](m.env, 0)
	m.pending[id] = pend
	m.pendingIDs[pend] = id
	m.sendFrame(p, d.host.Name, d.thread, dnHost, netsim.Frame{
		Payload: data.NewSlice(data.Zero(64)),
		Meta:    remoteReq{reqID: id, fromHost: d.host.Name, dn: dn, path: path, off: off, n: n, tr: tr},
		Trace:   tr,
	})
	return pend
}

// finishRemote retires a pending remote read.
func (m *Manager) finishRemote(q *sim.Queue[chunkMsg]) {
	if id, ok := m.pendingIDs[q]; ok {
		delete(m.pending, id)
		delete(m.pendingIDs, q)
	}
}
