package core

import (
	"strings"
	"testing"

	"vread/internal/sim"
)

// White-box tests for the daemon-side descriptor sanitizer: every rejection
// arm, as a table. The liveness half — a guest blocked on a rejected
// descriptor still gets a reply or an error slot — is covered black-box in
// ring_isolation_test.go; this table pins the verdicts themselves.

func sanitizeFixture() (*Daemon, *sim.Env) {
	env := sim.NewEnv(1)
	cfg := Config{}.WithDefaults()
	return &Daemon{cfg: cfg, ring: newRing(env, cfg, "vm1")}, env
}

func TestSanitizeReqVerdicts(t *testing.T) {
	d, env := sanitizeFixture()
	key := d.ring.key
	reply := sim.NewQueue[openResult](env, 0)
	longName := strings.Repeat("x", maxRingNameBytes+1)

	cases := []struct {
		name string
		req  ringReq
		want reqVerdict
	}{
		{"read ok", ringReq{kind: reqRead, dn: "dn1", path: "/b", off: 0, n: 4096, key: key}, reqAccept},
		{"open ok", ringReq{kind: reqOpen, dn: "dn1", path: "/b", key: key, reply: reply}, reqAccept},
		{"zero-length read ok", ringReq{kind: reqRead, dn: "dn1", path: "/b", key: key}, reqAccept},
		{"unknown opcode", ringReq{kind: ringReqKind(99), dn: "dn1", path: "/b", key: key}, reqMalformed},
		{"resume opcode from guest", ringReq{kind: reqResume, dn: "dn1", path: "/b", key: key}, reqMalformed},
		{"open without reply", ringReq{kind: reqOpen, dn: "dn1", path: "/b", key: key}, reqMalformed},
		{"empty datanode", ringReq{kind: reqRead, dn: "", path: "/b", key: key}, reqMalformed},
		{"oversized datanode", ringReq{kind: reqRead, dn: longName, path: "/b", key: key}, reqMalformed},
		{"empty path", ringReq{kind: reqRead, dn: "dn1", path: "", key: key}, reqMalformed},
		{"oversized path", ringReq{kind: reqRead, dn: "dn1", path: longName, key: key}, reqMalformed},
		{"negative offset", ringReq{kind: reqRead, dn: "dn1", path: "/b", off: -1, n: 1, key: key}, reqMalformed},
		{"negative length", ringReq{kind: reqRead, dn: "dn1", path: "/b", off: 0, n: -1, key: key}, reqMalformed},
		{"overflowing range", ringReq{kind: reqRead, dn: "dn1", path: "/b", off: 1 << 62, n: 1 << 62, key: key}, reqMalformed},
		{"zero key", ringReq{kind: reqRead, dn: "dn1", path: "/b", key: 0}, reqStaleKey},
		{"previous-epoch key", ringReq{kind: reqRead, dn: "dn1", path: "/b", key: mintRingKey("vm1", 0)}, reqStaleKey},
		{"other VM's key", ringReq{kind: reqRead, dn: "dn1", path: "/b", key: mintRingKey("vm2", 1)}, reqStaleKey},
	}
	for _, c := range cases {
		if _, got := d.sanitizeReq(c.req); got != c.want {
			t.Errorf("%s: verdict = %d, want %d", c.name, got, c.want)
		}
	}

	// Stale key outranks shape: a malformed descriptor with a dead key is a
	// key failure (the guest must re-attach before its shape matters).
	if _, got := d.sanitizeReq(ringReq{kind: ringReqKind(99), key: 0}); got != reqStaleKey {
		t.Errorf("stale key + malformed: verdict = %d, want reqStaleKey", got)
	}

	// Revocation outranks everything, including a perfectly valid read.
	d.ring.state = ringRevoked
	if _, got := d.sanitizeReq(ringReq{kind: reqRead, dn: "dn1", path: "/b", n: 1, key: key}); got != reqDenied {
		t.Errorf("revoked ring: verdict = %d, want reqDenied", got)
	}
}

func TestMintRingKey(t *testing.T) {
	if mintRingKey("vm1", 1) == 0 {
		t.Fatal("ring key minted as 0 (the unkeyed sentinel)")
	}
	if mintRingKey("vm1", 1) != mintRingKey("vm1", 1) {
		t.Fatal("ring key not deterministic for (vm, epoch)")
	}
	if mintRingKey("vm1", 1) == mintRingKey("vm1", 2) {
		t.Fatal("ring key did not change across epochs")
	}
	if mintRingKey("vm1", 1) == mintRingKey("vm2", 1) {
		t.Fatal("two VMs minted the same ring key at the same epoch")
	}
}

func TestRotateKeyAdvancesEpoch(t *testing.T) {
	env := sim.NewEnv(1)
	r := newRing(env, Config{}.WithDefaults(), "vm1")
	k1, e1 := r.key, r.epoch
	r.rotateKey()
	if r.epoch != e1+1 {
		t.Fatalf("epoch = %d after rotate, want %d", r.epoch, e1+1)
	}
	if r.key == k1 || r.key == 0 {
		t.Fatalf("rotated key = %#x (old %#x)", r.key, k1)
	}
	if r.key != mintRingKey("vm1", r.epoch) {
		t.Fatal("rotated key does not match mint for the new epoch")
	}
}

// dnShard must map any input — including hostile junk — to a valid index at
// every shard count the config admits.
func TestDNShardInRange(t *testing.T) {
	inputs := []string{"", "dn1", "storm", strings.Repeat("x", maxRingNameBytes+1), "\x00\xff"}
	for _, k := range []int{1, 2, 8, 13} {
		for _, in := range inputs {
			if got := dnShard(in, k); got < 0 || got >= k {
				t.Fatalf("dnShard(%q, %d) = %d out of range", in, k, got)
			}
		}
	}
}
