package core

import "errors"

// The typed errors a vRead read can surface. The chaos harness's first
// invariant — reads return correct bytes or a typed error, never silent
// corruption — is checked against these: every failure libvread reports
// wraps one of them, so callers (and the hdfs client's fallback) can
// distinguish "vRead degraded" from a programming error.
var (
	// ErrRingClosed means the shared-memory ring was torn down under the
	// read (VM shutdown). Not retryable.
	ErrRingClosed = errors.New("core: ring closed")
	// ErrDaemonFailed means the daemon aborted the read — stale mount,
	// injected disk error, crash, or remote retries exhausted. Retryable:
	// a crash-restarted daemon or refreshed mount may succeed.
	ErrDaemonFailed = errors.New("core: daemon failed")
	// ErrShortRead means the ring stream ended before the requested byte
	// count — a torn read. Retryable.
	ErrShortRead = errors.New("core: short vRead")
	// ErrBadRange means the caller asked for offsets outside the block —
	// a programming error in the caller, never retryable.
	ErrBadRange = errors.New("core: range outside block")
	// ErrStaleKey means the descriptor carried a ring key from a previous
	// epoch — the ring was restored (key rotated) under the caller, or the
	// guest replayed an old descriptor. Retryable: libvread stamps the
	// current key on the re-issued request.
	ErrStaleKey = errors.New("core: stale ring key")
	// ErrRingRevoked means the daemon revoked this VM's ring permission
	// (a misbehaving guest crossed the revocation threshold). Not
	// retryable: the ring stays revoked until the VM is torn down.
	ErrRingRevoked = errors.New("core: ring permission revoked")
	// ErrBadQuiesce means a RingSnapshot or RingRestore was refused: the
	// named client is unknown, the ring is in the wrong state for the
	// operation, or the snapshot's epoch no longer matches the ring.
	ErrBadQuiesce = errors.New("core: invalid ring quiesce")
	// ErrBadMigration means a MigrateMount was refused before any ring was
	// touched: unknown VM or host, wrong source host, or no mount to move.
	ErrBadMigration = errors.New("core: invalid mount migration")
)

// retryableRead reports whether libvread should re-issue the request.
func retryableRead(err error) bool {
	return errors.Is(err, ErrDaemonFailed) || errors.Is(err, ErrShortRead) ||
		errors.Is(err, ErrStaleKey)
}
