package core_test

import (
	"errors"
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// newFaultFixture is newFixture with a fault plan armed across every layer:
// the plan is bound to the cluster env's RNG and injected into the fabric,
// both host disks, and the vRead config. Tests arm rules with plan.Set AFTER
// the write phase so faultpoint evaluation counts start at the read under
// test.
func newFaultFixture(t *testing.T, vcfg core.Config) (*fixture, *faults.Plan) {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	plan := faults.NewPlan(c.Env)
	vcfg.Faults = plan
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.Fabric.InjectFaults(plan)
	h1.Disk.InjectFaults(plan)
	h2.Disk.InjectFaults(plan)
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	hcfg := hdfs.Config{BlockSize: 4 << 20}
	nn := hdfs.NewNameNode(c.Env, hcfg, c.Fabric)
	dn1 := hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	dn2 := hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)

	mgr := core.NewManager(c, nn, vcfg)
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	lib := mgr.EnableClient("client")
	cl.SetBlockReader(lib)
	return &fixture{c: c, nn: nn, dn1: dn1, dn2: dn2, cl: cl, mgr: mgr, lib: lib}, plan
}

// spanCount tallies closed spans/events by name.
func spanCount(tr *trace.Trace, name string) int {
	n := 0
	for _, s := range tr.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// assertSpansBalanced fails if any span was begun but never ended — the
// tracecharge discipline, checked dynamically on fault paths.
func assertSpansBalanced(t *testing.T, tr *trace.Trace) {
	t.Helper()
	for i, s := range tr.Spans {
		if s.End < s.Start {
			t.Errorf("span %d (%s/%s) begun at %v never ended", i, s.Layer, s.Name, s.Start)
		}
	}
}

// TestRDMATeardownFallsBackToTCP is the acceptance scenario: an injected QP
// teardown mid-read must complete the read over the TCP fallback path (traced
// "wire" spans), downgrade the host pair once, leak no pending remote reads,
// and recover to RDMA after the downgrade window.
func TestRDMATeardownFallsBackToTCP(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{Transport: core.TransportRDMA})
	defer fx.c.Close()
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
	content := data.Pattern{Seed: 9, Size: 4 << 20}
	fx.write(t, "/f", content)

	// Evaluations count QP work requests: open req, open reply, read req,
	// then data chunks. AfterN=5 tears the QP down on the third chunk of
	// the first window — mid-stream, with bytes already delivered.
	plan.Set(faults.Rule{Point: faults.RDMAQPTeardown, Prob: 1, AfterN: 5, MaxFires: 1})

	tracer := trace.NewTracer(fx.c.Env, 1)
	var tr *trace.Trace
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		tr = tracer.Request("remote-read")
		vfd, ok := fx.lib.OpenPath(p, tr, "dn2", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("vRead_open failed")
			return
		}
		got, err := vfd.ReadAt(p, tr, 0, content.Size)
		vfd.Close(p, tr)
		tr.Finish(content.Size)
		if err != nil {
			t.Errorf("read under QP teardown: %v", err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted by QP teardown recovery")
		}
	})
	if fired := plan.Fired(faults.RDMAQPTeardown); fired != 1 {
		t.Fatalf("teardown fired %d times", fired)
	}
	if d := fx.mgr.Downgrades(); d != 1 {
		t.Fatalf("downgrades = %d, want 1", d)
	}
	if n := fx.mgr.PendingRemoteReads(); n != 0 {
		t.Fatalf("%d pending remote reads leaked", n)
	}
	st := fx.mgr.Daemon("client").Stats()
	if st.RemoteRetries == 0 {
		t.Fatal("no remote retries recorded")
	}
	assertSpansBalanced(t, tr)
	if spanCount(tr, "transport-downgrade") != 1 {
		t.Fatalf("transport-downgrade events = %d, want 1", spanCount(tr, "transport-downgrade"))
	}
	if spanCount(tr, "rdma") == 0 {
		t.Fatal("no rdma spans before the teardown")
	}
	// The recovery ran over TCP: host-terminated frames pace through the
	// NIC as traced "wire" spans — the paper's fallback path, visible.
	if spanCount(tr, "wire") == 0 {
		t.Fatal("no wire spans: TCP fallback did not carry the read")
	}

	// Recovery: past the downgrade window the pair probes RDMA again over a
	// fresh QP (the one-shot teardown is spent).
	var tr2 *trace.Trace
	fx.run(t, 240*time.Second, "reader2", func(p *sim.Proc) {
		p.Sleep(300 * time.Millisecond) // > DowngradeWindow (250ms)
		tr2 = tracer.Request("recovered-read")
		vfd, ok := fx.lib.OpenPath(p, tr2, "dn2", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("re-open failed after recovery")
			return
		}
		got, err := vfd.ReadAt(p, tr2, 0, content.Size)
		vfd.Close(p, tr2)
		tr2.Finish(content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("recovered read failed: %v", err)
		}
	})
	if spanCount(tr2, "rdma") == 0 {
		t.Fatal("recovered read did not return to RDMA")
	}
	if d := fx.mgr.Downgrades(); d != 1 {
		t.Fatalf("recovery caused extra downgrades: %d", d)
	}
}

// TestDroppedFinalChunkDoesNotLeakPendingReader is the finishRemote
// regression: dropping the LAST chunk of a remote window used to leave the
// daemon blocked forever on the chunk queue. With the bounded wait it must
// time out, retire the request, re-request the tail, and finish the read.
func TestDroppedFinalChunkDoesNotLeakPendingReader(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{Transport: core.TransportTCP})
	defer fx.c.Close()
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
	content := data.Pattern{Seed: 11, Size: 1 << 20}
	fx.write(t, "/f", content)

	// Host-terminated frame evaluations: open req (1), open reply (2),
	// read req (3), then 16 × 64 KiB chunks (4–19). AfterN=18 drops
	// exactly the final chunk of the only window.
	plan.Set(faults.Rule{Point: faults.NetFrameDrop, Prob: 1, AfterN: 18, MaxFires: 1})

	tracer := trace.NewTracer(fx.c.Env, 1)
	var tr *trace.Trace
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		tr = tracer.Request("dropped-tail-read")
		vfd, ok := fx.lib.OpenPath(p, tr, "dn2", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("vRead_open failed")
			return
		}
		got, err := vfd.ReadAt(p, tr, 0, content.Size)
		vfd.Close(p, tr)
		tr.Finish(content.Size)
		if err != nil {
			t.Errorf("read with dropped final chunk: %v", err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted by final-chunk retry")
		}
	})
	if fired := plan.Fired(faults.NetFrameDrop); fired != 1 {
		t.Fatalf("drop fired %d times (frame numbering changed?)", fired)
	}
	if n := fx.mgr.PendingRemoteReads(); n != 0 {
		t.Fatalf("%d pending remote reads leaked after dropped final chunk", n)
	}
	if st := fx.mgr.Daemon("client").Stats(); st.RemoteRetries != 1 {
		t.Fatalf("remote retries = %d, want 1", st.RemoteRetries)
	}
	assertSpansBalanced(t, tr)
}

// TestDaemonCrashFallsBackThenRecovers: a crash kills the in-flight read and
// invalidates the host's mount metadata; the client degrades to the vanilla
// socket path (correct bytes, served by the datanode process) until
// ResyncHost remounts, after which vRead serves again.
func TestDaemonCrashFallsBackThenRecovers(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 21, Size: 2 << 20}
	fx.write(t, "/f", content)

	// Ring-request evaluations: open (1), read (2). The open succeeds, the
	// read crashes the daemon.
	plan.Set(faults.Rule{Point: faults.DaemonCrash, Prob: 1, AfterN: 1, MaxFires: 1})

	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted across daemon crash")
		}
	})
	st := fx.mgr.Daemon("client").Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if fx.lib.Stats().Retries == 0 {
		t.Fatal("libvread never retried the crashed read")
	}
	// The whole file was served by the vanilla fallback: the crash
	// invalidated the mounts, so every retry missed.
	if fx.dn1.ServedBytes() != content.Size {
		t.Fatalf("datanode streamed %d bytes, want full %d via fallback", fx.dn1.ServedBytes(), content.Size)
	}

	// Recovery: remount, re-read — vRead serves locally again.
	fx.mgr.ResyncHost("host1")
	fx.run(t, 240*time.Second, "reader2", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("post-resync read failed: %v", err)
		}
	})
	if st := fx.mgr.Daemon("client").Stats(); st.BytesLocal != content.Size {
		t.Fatalf("post-resync local bytes = %d, want %d", st.BytesLocal, content.Size)
	}
}

// TestTornLocalReadRetriesToCorrectBytes: a one-shot torn disk read ends the
// ring stream short; libvread's byte-count check turns it into a retry, never
// a truncated buffer.
func TestTornLocalReadRetriesToCorrectBytes(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 31, Size: 2 << 20}
	fx.write(t, "/f", content)
	plan.Set(faults.Rule{Point: faults.DiskReadTorn, Prob: 1, MaxFires: 1})

	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("torn read leaked truncated bytes")
		}
	})
	if fx.lib.Stats().Retries != 1 {
		t.Fatalf("lib retries = %d, want 1", fx.lib.Stats().Retries)
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("torn read fell back to the socket path instead of retrying")
	}
}

// TestLostDoorbellsOnlyAddLatency: with every doorbell lost, reads still
// complete correctly — the guest watchdog bounds the damage to latency.
func TestLostDoorbellsOnlyAddLatency(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 41, Size: 1 << 20}
	fx.write(t, "/f", content)
	plan.Set(faults.Rule{Point: faults.RingDoorbellLost, Prob: 1})

	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("read under lost doorbells: %v", err)
		}
	})
	if st := fx.mgr.Daemon("client").Stats(); st.DoorbellsLost == 0 {
		t.Fatal("no lost doorbells recorded")
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("lost doorbells caused a fallback")
	}
}

// TestExhaustedRetriesSurfaceTypedError: when the daemon fails every attempt,
// libvread reports ErrDaemonFailed (a typed error, the no-silent-corruption
// contract) and every trace span still closes.
func TestExhaustedRetriesSurfaceTypedError(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 51, Size: 1 << 20}
	fx.write(t, "/f", content)
	// Crash every ring request after the open: all retries fail.
	plan.Set(faults.Rule{Point: faults.DaemonCrash, Prob: 1, AfterN: 1})

	tracer := trace.NewTracer(fx.c.Env, 1)
	var tr *trace.Trace
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		tr = tracer.Request("doomed-read")
		vfd, ok := fx.lib.OpenPath(p, tr, "dn1", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("open failed before the fault window")
			return
		}
		_, err := vfd.ReadAt(p, tr, 0, content.Size)
		vfd.Close(p, tr)
		tr.Finish(0)
		if !errors.Is(err, core.ErrDaemonFailed) {
			t.Errorf("err = %v, want ErrDaemonFailed", err)
		}
	})
	if fx.lib.Stats().Retries == 0 {
		t.Fatal("no retries before surfacing the error")
	}
	assertSpansBalanced(t, tr)
	if spanCount(tr, "read-retry") == 0 {
		t.Fatal("no read-retry marks on the trace")
	}
}
