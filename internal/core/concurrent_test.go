package core_test

import (
	"fmt"
	"testing"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/sim"
)

// TestConcurrentReadersShareOneRing: multiple processes in the client VM
// read different files through the same vRead ring simultaneously; the
// per-ring serialization must keep every stream intact.
func TestConcurrentReadersShareOneRing(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()

	const files = 3
	contents := make([]data.Pattern, files)
	for i := range contents {
		contents[i] = data.Pattern{Seed: uint64(100 + i), Size: 3 << 20}
		fx.write(t, fmt.Sprintf("/f%d", i), contents[i])
	}

	okCount := 0
	for i := 0; i < files; i++ {
		i := i
		fx.c.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			r, err := fx.cl.Open(p, fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close(p)
			// Interleave many small positional reads across readers.
			for off := int64(0); off < contents[i].Size; off += 256 << 10 {
				s, err := r.ReadAt(p, off, 64<<10)
				if err != nil {
					t.Error(err)
					return
				}
				want := data.NewSlice(contents[i]).Sub(off, 64<<10)
				if !data.Equal(s, want) {
					t.Errorf("reader %d: bytes differ at %d", i, off)
					return
				}
			}
			okCount++
		})
	}
	if err := fx.c.Env.RunUntil(fx.c.Env.Now() + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if okCount != files {
		t.Fatalf("only %d/%d readers finished", okCount, files)
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("some reads leaked to the datanode process")
	}
}

// TestVReadSurvivesBlockDeletionBehindMount: the namenode deletes a file;
// the daemon's dentry refresh drops the block, and a subsequent open falls
// back (and then fails at the HDFS level, since the file is gone).
func TestVReadSurvivesBlockDeletionBehindMount(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 3, Size: 1 << 20}
	fx.write(t, "/doomed", content)

	fx.run(t, 2*time.Minute, "delete-then-read", func(p *sim.Proc) {
		if err := fx.cl.DeleteFile(p, "/doomed"); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * time.Millisecond) // let the refresh land
		if _, err := fx.cl.Open(p, "/doomed"); err == nil {
			t.Error("open of deleted file succeeded")
		}
	})
	mount := fx.mgr.Mount("host1", "dn1")
	if _, ok := mount.Lookup(hdfs.BlockPath(1)); ok {
		t.Fatal("deleted block still visible in the daemon mount")
	}
}

// TestRemoteWindowing: a remote read far larger than the remote window must
// arrive complete and in order (the window loop of readRemote).
func TestRemoteWindowing(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{RemoteWindowBytes: 256 << 10})
	defer fx.c.Close()
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
	content := data.Pattern{Seed: 8, Size: 5 << 20} // 20 windows
	fx.write(t, "/big", content)
	fx.run(t, 10*time.Minute, "windowed-read", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/big")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("windowed remote read corrupted")
		}
	})
	if st := fx.mgr.Daemon("client").Stats(); st.BytesRemote != content.Size {
		t.Fatalf("remote bytes = %d", st.BytesRemote)
	}
}

// TestRingGeometryOverride: custom slot/batch settings flow through the
// manager into a working ring.
func TestRingGeometryOverride(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{SlotBytes: 1 << 10, EventBatchSlots: 8, RingSlots: 128})
	defer fx.c.Close()
	content := data.Pattern{Seed: 4, Size: 2 << 20}
	fx.write(t, "/geo", content)
	fx.run(t, 10*time.Minute, "geo-read", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/geo")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("read corrupted with custom ring geometry")
		}
	})
}
