package core

import (
	"vread/internal/data"
	"vread/internal/sim"
	"vread/internal/trace"
)

// ringState is a ring's permission state. The ring is the trust boundary
// between a guest and the hypervisor daemon, and — SIVSHM-style — each peer's
// segment carries its own state so one misbehaving VM never degrades
// another's channel.
type ringState int

const (
	// ringAttached is the normal serving state.
	ringAttached ringState = iota
	// ringQuiesced holds the channel for a snapshot: the daemon captures
	// popped descriptors into the pending set instead of serving them, and
	// guests block on their replies until a restore replays the set.
	ringQuiesced
	// ringRevoked is the isolation terminal state: every descriptor is
	// rejected with a revocation error until the VM is torn down.
	ringRevoked
)

func (s ringState) String() string {
	switch s {
	case ringQuiesced:
		return "quiesced"
	case ringRevoked:
		return "revoked"
	default:
		return "attached"
	}
}

// mintRingKey derives a VM's ring key for one epoch (FNV-1a over the VM name
// and the epoch). Keys are deterministic — (seed, plan) replay depends on it —
// and never zero, so an unstamped descriptor can never pass the check.
func mintRingKey(vm string, epoch int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(vm); i++ {
		h ^= uint64(vm[i])
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(epoch>>(8*i)) & 0xff
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// ring is the guest↔daemon shared-memory channel (§3.3): a POSIX SHM object
// surfaced to the guest as a virtual PCI device and divided into fixed-size
// slots. Requests travel guest→daemon through a small descriptor area;
// response data travels daemon→guest through the slots. Doorbells
// (eventfds) are modeled by the queues' wakeup semantics, with their CPU
// cost charged explicitly by the two sides.
//
// Requests are serialized per ring (the prototype's HDFS input streams read
// one range at a time), enforced by reqMu.
//
// Isolation state: the ring belongs to one VM and carries a per-epoch key
// minted at attach time. Every descriptor must be stamped with the current
// key — the daemon checks it on every doorbell — and the key rotates on every
// RingRestore, so descriptors captured across a quiesce are re-admitted
// explicitly rather than replaying by accident.
type ring struct {
	cfg   Config
	reqMu *sim.Mutex
	// reqs is the descriptor area. Every field of a popped ringReq was
	// written by guest code on the far side of the SHM boundary and is
	// hostile until Daemon.sanitizeReq accepts it.
	//
	//lint:source guesttaint(descriptor area is guest-writable shared memory)
	reqs *sim.Queue[ringReq]
	free *sim.Queue[struct{}] // slot tokens
	full *sim.Queue[ringSlot] // filled slots in order

	vm    string // owning client VM
	epoch int64  // key epoch; bumped by every restore
	key   uint64 // current ring key (mintRingKey(vm, epoch))
	state ringState
	// pending is the replayable set of descriptors captured while quiesced:
	// drained from the descriptor area at snapshot time plus any that arrive
	// during the blackout. RingRestore re-stamps and replays them in order.
	pending []ringReq
	// badStreak counts consecutive rejected descriptors toward the
	// revocation threshold; any accepted descriptor resets it.
	badStreak int
}

type ringReqKind int

const (
	reqOpen ringReqKind = iota
	reqRead
	// reqResume is the daemon-internal restore kick: RingRestore pushes one
	// after rotating the key, and the daemon replays the pending set when it
	// pops it. A guest forging the kind fails the key-or-state guard and the
	// descriptor is dropped like a corrupt doorbell write.
	reqResume
)

// ringReq is one descriptor written by libvread. tr is the request trace the
// descriptor belongs to (nil when untraced); the daemon charges its work to
// it. key must match the ring's current epoch key or the daemon rejects the
// descriptor unserved.
type ringReq struct {
	kind  ringReqKind
	dn    string // datanode ID
	path  string // block file path
	off   int64
	n     int64
	key   uint64
	reply *sim.Queue[openResult] // open only
	tr    *trace.Trace
}

type openResult struct {
	ok   bool
	size int64
}

// slotCode classifies a response slot, so libvread can map daemon-side
// rejections to distinct typed errors.
type slotCode int

const (
	slotOK      slotCode = iota
	slotFailed           // stream failed (ErrDaemonFailed); guest aborts the read
	slotBadKey           // descriptor carried a stale ring key (ErrStaleKey)
	slotRevoked          // ring permission revoked (ErrRingRevoked)
)

// ringSlot is one filled data slot.
type ringSlot struct {
	s    data.Slice
	code slotCode
	last bool
}

func newRing(env *sim.Env, cfg Config, vm string) *ring {
	r := &ring{
		cfg:   cfg,
		reqMu: sim.NewMutex(env),
		reqs:  sim.NewQueue[ringReq](env, 64),
		free:  sim.NewQueue[struct{}](env, cfg.RingSlots),
		full:  sim.NewQueue[ringSlot](env, cfg.RingSlots),
		vm:    vm,
		epoch: 1,
	}
	r.key = mintRingKey(vm, r.epoch)
	for i := 0; i < cfg.RingSlots; i++ {
		r.free.TryPut(struct{}{})
	}
	return r
}

// rotateKey advances the epoch and mints the next key (RingRestore).
func (r *ring) rotateKey() {
	r.epoch++
	r.key = mintRingKey(r.vm, r.epoch)
}

// slotsFor returns how many slots a byte range occupies.
func (r *ring) slotsFor(n int64) int64 {
	return (n + r.cfg.SlotBytes - 1) / r.cfg.SlotBytes
}
