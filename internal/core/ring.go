package core

import (
	"vread/internal/data"
	"vread/internal/sim"
	"vread/internal/trace"
)

// ring is the guest↔daemon shared-memory channel (§3.3): a POSIX SHM object
// surfaced to the guest as a virtual PCI device and divided into fixed-size
// slots. Requests travel guest→daemon through a small descriptor area;
// response data travels daemon→guest through the slots. Doorbells
// (eventfds) are modeled by the queues' wakeup semantics, with their CPU
// cost charged explicitly by the two sides.
//
// Requests are serialized per ring (the prototype's HDFS input streams read
// one range at a time), enforced by reqMu.
type ring struct {
	cfg   Config
	reqMu *sim.Mutex
	// reqs is the descriptor area. Every field of a popped ringReq was
	// written by guest code on the far side of the SHM boundary and is
	// hostile until Daemon.sanitizeReq accepts it.
	//
	//lint:source guesttaint(descriptor area is guest-writable shared memory)
	reqs *sim.Queue[ringReq]
	free *sim.Queue[struct{}] // slot tokens
	full *sim.Queue[ringSlot] // filled slots in order
}

type ringReqKind int

const (
	reqOpen ringReqKind = iota
	reqRead
)

// ringReq is one descriptor written by libvread. tr is the request trace the
// descriptor belongs to (nil when untraced); the daemon charges its work to
// it.
type ringReq struct {
	kind  ringReqKind
	dn    string // datanode ID
	path  string // block file path
	off   int64
	n     int64
	reply *sim.Queue[openResult] // open only
	tr    *trace.Trace
}

type openResult struct {
	ok   bool
	size int64
}

// ringSlot is one filled data slot.
type ringSlot struct {
	s    data.Slice
	err  bool // stream failed; guest aborts the read
	last bool
}

func newRing(env *sim.Env, cfg Config) *ring {
	r := &ring{
		cfg:   cfg,
		reqMu: sim.NewMutex(env),
		reqs:  sim.NewQueue[ringReq](env, 64),
		free:  sim.NewQueue[struct{}](env, cfg.RingSlots),
		full:  sim.NewQueue[ringSlot](env, cfg.RingSlots),
	}
	for i := 0; i < cfg.RingSlots; i++ {
		r.free.TryPut(struct{}{})
	}
	return r
}

// slotsFor returns how many slots a byte range occupies.
func (r *ring) slotsFor(n int64) int64 {
	return (n + r.cfg.SlotBytes - 1) / r.cfg.SlotBytes
}
