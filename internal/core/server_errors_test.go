package core

import (
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/data"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// serverFixture drives hostServer handlers directly: a mounted datanode on
// host1 holding /blk_1, and host2 as the requesting side whose pending queue
// we register by hand.
type serverFixture struct {
	c    *cluster.Cluster
	m    *Manager
	srv  *hostServer
	pend *sim.Queue[chunkMsg]
}

const serverBlockSize = 1 << 20

func newServerFixture(t *testing.T) *serverFixture {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	dnVM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	if err := dnVM.FS.WriteFile("/blk_1", data.Pattern{Seed: 7, Size: serverBlockSize}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c, nil, Config{Transport: TransportTCP})
	m.MountDatanode("dn1")
	m.ensureServer(h2)
	fx := &serverFixture{c: c, m: m, srv: m.servers["host1"]}
	fx.pend = sim.NewQueue[chunkMsg](c.Env, 0)
	m.nextReq++
	m.pending[m.nextReq] = fx.pend
	return fx
}

// call runs one handler invocation to completion and returns every chunk the
// requesting host received.
func (fx *serverFixture) call(t *testing.T, req remoteReq) []chunkMsg {
	t.Helper()
	req.reqID = fx.m.nextReq
	req.fromHost = "host2"
	done := false
	fx.c.Go("driver", func(p *sim.Proc) {
		if req.open {
			fx.srv.handleOpen(p, req)
		} else {
			fx.srv.handleRead(p, req)
		}
		done = true
	})
	if err := fx.c.Env.RunUntil(fx.c.Env.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("handler did not finish")
	}
	var got []chunkMsg
	for {
		msg, ok := fx.pend.TryGet()
		if !ok {
			return got
		}
		got = append(got, msg)
	}
}

func TestHostServerOpenErrors(t *testing.T) {
	tests := []struct {
		name   string
		dn     string
		path   string
		wantOK bool
	}{
		{"unknown datanode", "nope", "/blk_1", false},
		{"unknown path", "dn1", "/nope", false},
		{"valid open", "dn1", "/blk_1", true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fx := newServerFixture(t)
			defer fx.c.Close()
			got := fx.call(t, remoteReq{dn: tc.dn, path: tc.path, open: true})
			if len(got) != 1 {
				t.Fatalf("got %d reply chunks, want 1", len(got))
			}
			if got[0].err {
				t.Fatal("open reply flagged err; opens must miss, not fail")
			}
			if got[0].openOK != tc.wantOK {
				t.Fatalf("openOK = %v, want %v", got[0].openOK, tc.wantOK)
			}
			if tc.wantOK && got[0].size != serverBlockSize {
				t.Fatalf("open size = %d, want %d", got[0].size, serverBlockSize)
			}
		})
	}
}

func TestHostServerReadErrors(t *testing.T) {
	tests := []struct {
		name    string
		dn      string
		path    string
		off, n  int64
		wantErr bool
		// minChunks counts data chunks expected before any error chunk.
		minChunks int
	}{
		{"unknown datanode", "nope", "/blk_1", 0, 4096, true, 0},
		{"unknown path", "dn1", "/nope", 0, 4096, true, 0},
		{"offset past EOF", "dn1", "/blk_1", serverBlockSize + 4096, 4096, true, 0},
		{"window overrunning EOF", "dn1", "/blk_1", serverBlockSize - 100, 4096, true, 0},
		{"valid read", "dn1", "/blk_1", 0, 128 << 10, false, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fx := newServerFixture(t)
			defer fx.c.Close()
			got := fx.call(t, remoteReq{dn: tc.dn, path: tc.path, off: tc.off, n: tc.n})
			if len(got) == 0 {
				t.Fatal("no reply chunks")
			}
			last := got[len(got)-1]
			if last.err != tc.wantErr {
				t.Fatalf("last chunk err = %v, want %v", last.err, tc.wantErr)
			}
			var bytes int64
			dataChunks := 0
			for i, msg := range got {
				if msg.err {
					if i != len(got)-1 {
						t.Fatal("error chunk before end of stream")
					}
					continue
				}
				if msg.off != tc.off+bytes {
					t.Fatalf("chunk %d at offset %d, want contiguous %d", i, msg.off, tc.off+bytes)
				}
				bytes += msg.payload.Len()
				dataChunks++
			}
			if dataChunks < tc.minChunks {
				t.Fatalf("got %d data chunks, want at least %d", dataChunks, tc.minChunks)
			}
			if !tc.wantErr && bytes != tc.n {
				t.Fatalf("streamed %d bytes, want %d", bytes, tc.n)
			}
		})
	}
}
