package core

import (
	"fmt"
	"time"

	"vread/internal/cluster"
	"vread/internal/faults"
	"vread/internal/fsim"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/netsim"
	"vread/internal/sim"
)

// DaemonEntity returns the metrics entity name that all vRead hypervisor
// work on a host is charged to (the "vRead-daemon" bars of Figures 6–8).
func DaemonEntity(host string) string { return "vread-daemon@" + host }

// Manager assembles vRead over a cluster: per-host read-only mounts of every
// datanode image (the losetup/kpartx step), per-host daemon servers, per-
// client-VM daemons with their rings, and the namenode-driven dentry refresh
// (§3.2's synchronization).
type Manager struct {
	env *sim.Env
	cfg Config
	cl  *cluster.Cluster
	nn  hdfs.Namespace

	mounts         map[string]*mountTable // host → sharded datanode→mount table
	daemons        map[string]*Daemon     // client VM → daemon
	clientOrder    []string               // client VMs in EnableClient order (deterministic iteration)
	libs           map[string]*Lib
	servers        map[string]*hostServer
	qps            map[string]*netsim.QP
	pending        map[int64]*sim.Queue[chunkMsg]
	pendingIDs     map[*sim.Queue[chunkMsg]]int64
	nextReq        int64
	refreshes      int64
	refreshBatches int64
	// downgraded maps a host-pair key to the virtual instant its RDMA→TCP
	// downgrade expires. Recovery is lazy — checked on the next send rather
	// than by timer — so an idle downgrade leaves no pending event behind
	// (the chaos harness asserts Env.Pending drains to zero).
	downgraded map[string]time.Duration
	downgrades int64
}

// NewManager creates the vRead system. It installs a daemon server on every
// existing host and subscribes to namespace block events (nn may be nil for
// non-HDFS deployments — call BlockAdded/BlockRemoved from the other file
// system's metadata server instead); call MountDatanode for each datanode
// VM and EnableClient for each client VM. nn may be a standalone NameNode
// or a federated Router — the manager only consumes block events.
func NewManager(cl *cluster.Cluster, nn hdfs.Namespace, cfg Config) *Manager {
	m := &Manager{
		env:        cl.Env,
		cfg:        cfg.WithDefaults(),
		cl:         cl,
		nn:         nn,
		mounts:     make(map[string]*mountTable),
		daemons:    make(map[string]*Daemon),
		libs:       make(map[string]*Lib),
		servers:    make(map[string]*hostServer),
		qps:        make(map[string]*netsim.QP),
		pending:    make(map[int64]*sim.Queue[chunkMsg]),
		pendingIDs: make(map[*sim.Queue[chunkMsg]]int64),
		downgraded: make(map[string]time.Duration),
	}
	if nn != nil {
		nn.AddBlockListener(m)
	}
	return m
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

func (m *Manager) fabric() *netsim.Fabric { return m.cl.Fabric }

// ensureServer installs the per-host daemon server (idempotent).
func (m *Manager) ensureServer(h *cluster.Host) *hostServer {
	if s, ok := m.servers[h.Name]; ok {
		return s
	}
	s := newHostServer(m, h)
	m.servers[h.Name] = s
	// The TCP port is bound even under RDMA: it is the fallback path an
	// injected QP teardown downgrades onto (§3.4's "TCP when RoCE is
	// unavailable").
	m.fabric().BindHostPort(h.Name, VReadPort, m.onTCPFrame(h.Name))
	return s
}

// MountDatanode mounts a datanode VM's disk image read-only on its host and
// records it in the datanode-ID → mount hash.
func (m *Manager) MountDatanode(vmName string) {
	vm := m.cl.VM(vmName)
	if vm == nil {
		panic(fmt.Sprintf("core: unknown VM %q", vmName))
	}
	m.ensureServer(vm.Host)
	tab := m.mounts[vm.Host.Name]
	if tab == nil {
		tab = newMountTable(m.cfg.MountTableShards)
		m.mounts[vm.Host.Name] = tab
	}
	if tab.get(vmName) != nil {
		return
	}
	tab.put(vmName, fsim.MountRO(vm.FS))
}

// UnmountDatanode removes a datanode's mount from a host (migration).
func (m *Manager) UnmountDatanode(host, vmName string) {
	m.mounts[host].remove(vmName)
}

// mount resolves the mount table entry for (host, datanode).
func (m *Manager) mount(host, dn string) *fsim.HostMount {
	return m.mounts[host].get(dn)
}

// Mount exposes the mount table entry for tests and tooling.
func (m *Manager) Mount(host, dn string) *fsim.HostMount { return m.mount(host, dn) }

// EnableClient creates the client VM's ring, daemon and libvread, returning
// the BlockReader to install on its DFSClient.
func (m *Manager) EnableClient(vmName string) *Lib {
	if lib, ok := m.libs[vmName]; ok {
		return lib
	}
	vm := m.cl.VM(vmName)
	if vm == nil {
		panic(fmt.Sprintf("core: unknown VM %q", vmName))
	}
	m.ensureServer(vm.Host)
	d := newDaemon(m, vm)
	m.daemons[vmName] = d
	m.clientOrder = append(m.clientOrder, vmName)
	lib := newLib(m, vm, d)
	m.libs[vmName] = lib
	return lib
}

// InjectGuestFaults arms a per-VM fault plan on one client's ring endpoints —
// libvread's descriptor forging and its daemon's serving path — so a hostile-
// guest storm targets a single ring while every other VM keeps the manager-
// wide plan. This is the isolation test lever: the harness arms the hostile
// points on one VM and asserts its neighbours' reads stay clean.
func (m *Manager) InjectGuestFaults(vmName string, plan *faults.Plan) {
	if d := m.daemons[vmName]; d != nil {
		d.InjectFaults(plan)
	}
	if l := m.libs[vmName]; l != nil {
		l.faults = plan
	}
}

// Daemon returns a client VM's daemon (nil if not enabled).
func (m *Manager) Daemon(vmName string) *Daemon { return m.daemons[vmName] }

// DaemonStats returns the daemon counters for a client VM, derived from the
// daemon's event stream. The zero value is returned when vRead is not
// enabled for the VM.
func (m *Manager) DaemonStats(vmName string) DaemonStats {
	if d := m.daemons[vmName]; d != nil {
		return d.Stats()
	}
	return DaemonStats{}
}

// LibStats returns the libvread counters for a client VM (zero value when
// vRead is not enabled there).
func (m *Manager) LibStats(vmName string) LibStats {
	if l := m.libs[vmName]; l != nil {
		return l.Stats()
	}
	return LibStats{}
}

// Lib returns a client VM's libvread (nil if not enabled).
func (m *Manager) Lib(vmName string) *Lib { return m.libs[vmName] }

// Refreshes returns the number of dentry refresh operations triggered by
// namenode block events (fig13's write-path overhead).
func (m *Manager) Refreshes() int64 { return m.refreshes }

// RefreshBatches returns how many batched refresh tasks ran — the wakeup
// count the per-shard coalescing reduced Refreshes() down to.
func (m *Manager) RefreshBatches() int64 { return m.refreshBatches }

// ---------------------------------------------------------------------------
// hdfs.BlockEventListener: the namenode-driven mount synchronization.

// BlockAdded refreshes the new block's dentry on the datanode's host. The
// refresh runs asynchronously on the host's daemon thread — an open racing
// ahead of it simply falls back to the vanilla path, exactly like the
// prototype.
func (m *Manager) BlockAdded(dn string, blockPath string) {
	m.enqueueRefresh(dn, blockPath)
}

// BlockRemoved drops the block's dentry.
func (m *Manager) BlockRemoved(dn string, blockPath string) {
	m.enqueueRefresh(dn, blockPath)
}

// enqueueRefresh queues one dentry refresh on the datanode's host, batched
// per mount-table shard: the first op of a burst posts the daemon-thread
// task, later ops ride the same wakeup. Every op pays RefreshCycles — the
// batching removes scheduling round trips, not modeled work.
func (m *Manager) enqueueRefresh(dn string, blockPath string) {
	host, ok := m.fabric().HostOf(dn)
	if !ok {
		return
	}
	tab := m.mounts[host]
	mount := tab.get(dn)
	if mount == nil {
		return
	}
	m.refreshes++
	sh := tab.shard(dn)
	sh.pending = append(sh.pending, refreshOp{mount: mount, path: blockPath})
	if sh.scheduled {
		return
	}
	sh.scheduled = true
	srv := m.servers[host]
	srv.thread.Post(m.cfg.RefreshCycles, metrics.TagOthers, func() {
		m.drainRefreshes(srv, sh)
	})
}

// drainRefreshes runs one shard's queued refresh batch. The scheduling Post
// charged the first op's cycles; a batch of K ops charges the remaining
// (K-1)·RefreshCycles in one more slice on the same thread before the
// refreshes apply — same total cycles as unbatched, one wakeup.
func (m *Manager) drainRefreshes(srv *hostServer, sh *mountShard) {
	ops := sh.pending
	sh.pending = nil
	sh.scheduled = false
	m.refreshBatches++
	run := func() {
		for _, op := range ops {
			op.mount.RefreshPath(op.path)
		}
	}
	if extra := int64(len(ops)-1) * m.cfg.RefreshCycles; extra > 0 {
		srv.thread.Post(extra, metrics.TagOthers, run)
		return
	}
	run()
}

// DatanodeMigrated updates the mount hash after a datanode VM live-migrates
// (§6): unmount on the old host, remount on the new one. The fabric
// registration itself is the cluster's job.
func (m *Manager) DatanodeMigrated(vmName, oldHost string) {
	m.UnmountDatanode(oldHost, vmName)
	m.MountDatanode(vmName)
}

// ---------------------------------------------------------------------------
// Degradation state: RDMA→TCP downgrade and crash recovery.

// transportTo picks the transport for a send between two hosts, honouring an
// active downgrade. An expired downgrade is cleared here — the next send
// probes RDMA again over a fresh QP (the broken one was dropped when the
// failure was noted).
func (m *Manager) transportTo(a, b string) Transport {
	if m.cfg.Transport != TransportRDMA || len(m.downgraded) == 0 {
		return m.cfg.Transport
	}
	key := qpKey(a, b)
	until, ok := m.downgraded[key]
	if !ok {
		return TransportRDMA
	}
	if m.env.Now() >= until {
		delete(m.downgraded, key)
		return TransportRDMA
	}
	return TransportTCP
}

// noteRemoteFailure records a failed remote exchange between two hosts.
// Under RDMA it discards the (presumed broken) QP and downgrades the pair to
// TCP for DowngradeWindow; it reports whether this call was the downgrade
// transition (so the caller can mark the trace exactly once).
func (m *Manager) noteRemoteFailure(a, b string) bool {
	if m.cfg.Transport != TransportRDMA {
		return false
	}
	key := qpKey(a, b)
	delete(m.qps, key)
	_, already := m.downgraded[key]
	m.downgraded[key] = m.env.Now() + m.cfg.DowngradeWindow
	if !already {
		m.downgrades++
	}
	return !already
}

// Downgrades returns how many RDMA→TCP downgrade transitions have occurred.
func (m *Manager) Downgrades() int64 { return m.downgrades }

// PendingRemoteReads returns the number of outstanding remote requests — the
// chaos harness asserts it drains to zero (no leaked sim.Queue readers).
func (m *Manager) PendingRemoteReads() int { return len(m.pending) }

// invalidateMounts empties every mount's dentry cache on a host — the
// metadata a daemon crash loses. Reads and opens on the host miss (vanilla
// fallback) until vRead_update refreshes paths or ResyncHost remounts.
func (m *Manager) invalidateMounts(host string) {
	m.mounts[host].each(func(mnt *fsim.HostMount) { mnt.Invalidate() })
}

// ResyncHost re-snapshots every mount on a host — the full remount a
// restarted daemon performs to recover from invalidated metadata.
func (m *Manager) ResyncHost(host string) {
	m.mounts[host].each(func(mnt *fsim.HostMount) { mnt.RefreshAll() })
}
