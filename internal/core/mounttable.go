package core

import (
	"vread/internal/fsim"
)

// defaultMountTableShards is the shard count when the config leaves it zero.
const defaultMountTableShards = 8

// mountTable is one host's datanode→mount map, sharded by datanode-name
// hash. Two things scale with it on a host serving dozens of mounts:
//
//   - lookup/update state is per shard, so namenode-driven refreshes for
//     different datanodes touch disjoint structures instead of serializing
//     on one metadata lock;
//   - dentry refreshes batch per shard: the first block event posts one
//     daemon-thread task, and every event that lands before it runs rides
//     the same wakeup (each op still pays its RefreshCycles, but a write
//     burst costs one scheduling round trip instead of one per block).
//
// The shard count K comes from Config.MountTableShards; the hostile-guest
// harness runs its storms at K=1 and K>1 to prove the fold (and everything
// behind it) is shard-count-agnostic.
type mountTable struct {
	shards []mountShard
}

func newMountTable(shards int) *mountTable {
	if shards <= 0 {
		shards = defaultMountTableShards
	}
	return &mountTable{shards: make([]mountShard, shards)}
}

type mountShard struct {
	mounts    map[string]*fsim.HostMount
	pending   []refreshOp
	scheduled bool
}

// refreshOp is one queued dentry refresh.
type refreshOp struct {
	mount *fsim.HostMount
	path  string
}

// dnShard hashes a datanode name to its shard (FNV-1a 32). The fold onto the
// shard count makes any input — including a hostile one — land on a valid
// shard index, so this doubles as the taint barrier for datanode names used
// to index the shard slice.
//
//lint:sanitizer guesttaint(FNV hash folded into [0,shards) — every input maps to a valid shard index)
func dnShard(dn string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(dn); i++ {
		h ^= uint32(dn[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

func (t *mountTable) shard(dn string) *mountShard { return &t.shards[dnShard(dn, len(t.shards))] }

func (t *mountTable) get(dn string) *fsim.HostMount {
	if t == nil {
		return nil
	}
	return t.shard(dn).mounts[dn]
}

func (t *mountTable) put(dn string, mnt *fsim.HostMount) {
	sh := t.shard(dn)
	if sh.mounts == nil {
		sh.mounts = make(map[string]*fsim.HostMount)
	}
	sh.mounts[dn] = mnt
}

func (t *mountTable) remove(dn string) {
	if t == nil {
		return
	}
	delete(t.shard(dn).mounts, dn)
}

// each visits every mount. Visit order is unspecified; callers only apply
// idempotent per-mount state changes (invalidate, resync).
func (t *mountTable) each(fn func(*fsim.HostMount)) {
	if t == nil {
		return
	}
	for i := range t.shards {
		for _, mnt := range t.shards[i].mounts {
			fn(mnt)
		}
	}
}
