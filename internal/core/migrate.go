package core

import (
	"fmt"
	"time"

	"vread/internal/faults"
	"vread/internal/sim"
)

// This file is the availability half of the hardened ring: the
// RingSnapshot/RingRestore quiesce protocol and the live mount migration
// built on it. The protocol exists because a mount can only be torn down
// safely when no descriptor references it — quiescing drains in-flight
// descriptors into a replayable pending set, the mount moves, and the
// restore rotates the ring key and replays the set, so a guest blocked on a
// read through the blackout simply sees a slow read, never an error or a
// torn stream.

// RingSnapshot is the token returned by a successful quiesce. It pins the
// key epoch it was taken under; a restore with a stale snapshot (the ring
// was restored by someone else in between) is refused.
type RingSnapshot struct {
	vm      string
	epoch   int64
	pending int
}

// VM returns the client VM whose ring was quiesced.
func (s *RingSnapshot) VM() string { return s.vm }

// daemonFor resolves a VM name to its daemon, or nil when unknown. The name
// may ride in a RingSnapshot alongside captured guest descriptors, so the
// lookup is the declared laundering point: a nil-checked map hit keys no
// state an unknown or forged name could reach.
//
//lint:sanitizer guesttaint(VM names resolve only through a nil-checked daemon-table lookup)
func (m *Manager) daemonFor(vm string) *Daemon { return m.daemons[vm] }

// Pending returns how many descriptors were already captured at snapshot
// time (more may arrive during the blackout).
func (s *RingSnapshot) Pending() int { return s.pending }

// RingSnapshot quiesces one client VM's ring: the state flips to quiesced,
// descriptors already in the descriptor area drain into the pending set, and
// the call blocks until the request the daemon is currently serving (if any)
// completes. On return the ring is quiet — no daemon-side work references
// any mount on behalf of this VM — and every descriptor that arrives until
// RingRestore is captured, not served.
func (m *Manager) RingSnapshot(p *sim.Proc, vm string) (*RingSnapshot, error) {
	d := m.daemonFor(vm)
	if d == nil {
		return nil, fmt.Errorf("%w: no vRead client %q", ErrBadQuiesce, vm)
	}
	r := d.ring
	if r.state != ringAttached {
		return nil, fmt.Errorf("%w: ring of %q is %s, not attached", ErrBadQuiesce, vm, r.state)
	}
	r.state = ringQuiesced
	// Drain the descriptor area into the pending set. Nothing can interleave
	// with this loop (TryGet never blocks), so capture order is exactly
	// submission order.
	for {
		req, ok := r.reqs.TryGet()
		if !ok {
			break
		}
		r.pending = append(r.pending, req)
		d.emit(req.tr, evQuiesceHold, 1)
	}
	for d.busy {
		d.idle.Wait(p)
	}
	return &RingSnapshot{vm: vm, epoch: r.epoch, pending: len(r.pending)}, nil
}

// RingRestore re-attaches a quiesced ring: the key rotates to the next
// epoch (descriptors stamped with the old key are now stale and rejected
// typed), the state flips back to attached, and the daemon is kicked to
// replay the pending set in capture order under the new key.
func (m *Manager) RingRestore(p *sim.Proc, snap *RingSnapshot) error {
	if snap == nil {
		return fmt.Errorf("%w: nil snapshot", ErrBadQuiesce)
	}
	d := m.daemonFor(snap.vm)
	if d == nil {
		return fmt.Errorf("%w: no vRead client %q", ErrBadQuiesce, snap.vm)
	}
	r := d.ring
	if r.state != ringQuiesced {
		return fmt.Errorf("%w: ring of %q is %s, not quiesced", ErrBadQuiesce, snap.vm, r.state)
	}
	if r.epoch != snap.epoch {
		return fmt.Errorf("%w: snapshot of %q is for epoch %d, ring is at %d", ErrBadQuiesce, snap.vm, snap.epoch, r.epoch)
	}
	r.rotateKey()
	r.state = ringAttached
	r.reqs.Put(p, ringReq{kind: reqResume, key: r.key})
	return nil
}

// MountMigration reports one live mount migration.
type MountMigration struct {
	VM       string        // the migrated datanode VM
	SrcHost  string        // host the mount left
	DstHost  string        // host the mount landed on
	Blackout time.Duration // virtual quiesce-start → rings-restored window
	Quiesced int           // client rings quiesced for the cutover
	Captured int           // descriptors captured and replayed across the blackout
}

// MigrateMount live-migrates a datanode VM and its mount from srcHost to
// dstHost: quiesce every attached client ring, unmount the image on the
// source, migrate the VM, pay the image re-attach delay, re-mount and resync
// on the target, then restore the rings (rotating their keys) and replay
// every captured descriptor. Reads in flight across the cutover block on
// their reply slots and complete after the replay — the blackout shows up as
// read latency, never as an error or lost read.
func (m *Manager) MigrateMount(p *sim.Proc, vm, srcHost, dstHost string) (MountMigration, error) {
	mig := MountMigration{VM: vm, SrcHost: srcHost, DstHost: dstHost}
	dnVM := m.cl.VM(vm)
	if dnVM == nil {
		return mig, fmt.Errorf("%w: unknown VM %q", ErrBadMigration, vm)
	}
	if dnVM.Host.Name != srcHost {
		return mig, fmt.Errorf("%w: %q lives on %q, not %q", ErrBadMigration, vm, dnVM.Host.Name, srcHost)
	}
	dst := m.cl.Host(dstHost)
	if dst == nil {
		return mig, fmt.Errorf("%w: unknown host %q", ErrBadMigration, dstHost)
	}
	if srcHost == dstHost {
		return mig, fmt.Errorf("%w: %q is already on %q", ErrBadMigration, vm, dstHost)
	}
	if m.mount(srcHost, vm) == nil {
		return mig, fmt.Errorf("%w: %q is not mounted on %q", ErrBadMigration, vm, srcHost)
	}
	start := m.env.Now()
	// Quiesce every attached client ring in EnableClient order. Quiesced or
	// revoked rings are skipped: a concurrent snapshot owns the former, and
	// the latter serves nothing anyway.
	snaps := make([]*RingSnapshot, 0, len(m.clientOrder))
	for _, cvm := range m.clientOrder {
		if m.daemons[cvm].ring.state != ringAttached {
			continue
		}
		snap, err := m.RingSnapshot(p, cvm)
		if err != nil {
			return mig, err
		}
		snaps = append(snaps, snap)
	}
	mig.Quiesced = len(snaps)

	m.UnmountDatanode(srcHost, vm)
	m.cl.MigrateVM(vm, dst)
	p.Sleep(m.cfg.MigrateRemountDelay)
	m.MountDatanode(vm)
	m.ResyncHost(dstHost)

	for _, snap := range snaps {
		mig.Captured += len(m.daemonFor(snap.vm).ring.pending)
		if err := m.RingRestore(p, snap); err != nil {
			return mig, err
		}
	}
	mig.Blackout = m.env.Now() - start
	return mig, nil
}

// MaybeMigrateMount evaluates the mount.migrate faultpoint and, when it
// fires, live-migrates the named datanode's mount to dstHost (the fault-plan
// action form of MigrateMount, mirroring Cluster.MaybeKillRack). The source
// host is the VM's current host; a no-op move (already on dstHost) reports
// the firing without migrating.
func (m *Manager) MaybeMigrateMount(p *sim.Proc, vm, dstHost string) (MountMigration, bool, error) {
	if !m.cfg.Faults.Should(faults.MountMigrate) {
		return MountMigration{}, false, nil
	}
	dnVM := m.cl.VM(vm)
	if dnVM == nil {
		return MountMigration{}, true, fmt.Errorf("%w: unknown VM %q", ErrBadMigration, vm)
	}
	if dnVM.Host.Name == dstHost {
		return MountMigration{VM: vm, SrcHost: dstHost, DstHost: dstHost}, true, nil
	}
	mig, err := m.MigrateMount(p, vm, dnVM.Host.Name, dstHost)
	return mig, true, err
}
