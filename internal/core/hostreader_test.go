package core

// White-box tests for the hostReader's readahead-window bookkeeping: the
// two-window pipeline, waitInflight on overlapping windows, and the raSeq
// reset on non-sequential (backwards) reads.

import (
	"testing"

	"vread/internal/cluster"
	"vread/internal/sim"
	"vread/internal/trace"
)

const (
	hrChunk    = 256 << 10 // request size driving the reader
	hrFileSize = 8 << 20
	hrObj      = int64(42)
	hrKey      = "blk_42"
)

type hrFixture struct {
	c  *cluster.Cluster
	hr *hostReader
	tc *trace.Tracer
}

func newHRFixture(t *testing.T) *hrFixture {
	t.Helper()
	c := cluster.New(1, cluster.Params{})
	h := c.AddHost("host1")
	th := h.CPU.NewThread("hr-test", "hr-test")
	return &hrFixture{
		c:  c,
		hr: newHostReader(Config{}.WithDefaults(), h, th),
		tc: trace.NewTracer(c.Env, 1),
	}
}

// run drives fn as a simulated process and then lets the env drain (so
// outstanding readahead windows complete before the test returns).
func (f *hrFixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	f.c.Env.Go("hr-test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	if err := f.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test process did not finish")
	}
}

// read performs one traced hostReader read and returns its trace.
func (f *hrFixture) read(p *sim.Proc, off int64) *trace.Trace {
	tr := f.tc.Request("hr-read")
	f.hr.read(p, tr, hrObj, hrKey, hrFileSize, off, hrChunk)
	tr.Finish(hrChunk)
	return tr
}

func countEvents(tr *trace.Trace, name string) int {
	n := 0
	for _, s := range tr.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// TestHostReaderWindowPipeline: a sequential reader keeps two readahead
// windows in flight, contiguous and non-overlapping, and stops issuing once
// two full windows are ahead of the cursor.
func TestHostReaderWindowPipeline(t *testing.T) {
	f := newHRFixture(t)
	ra := f.hr.cfg.HostReadaheadBytes
	f.run(t, func(p *sim.Proc) {
		f.read(p, 0)
		if got := len(f.hr.raFlight[hrKey]); got != 1 {
			t.Fatalf("after first read: %d windows in flight, want 1", got)
		}
		first := f.hr.raFlight[hrKey][0]
		if first.start != hrChunk || first.end != hrChunk+ra {
			t.Fatalf("first window = [%d,%d), want [%d,%d)", first.start, first.end, hrChunk, int64(hrChunk)+ra)
		}

		// Second read overlaps the in-flight window: waitInflight drains it,
		// and the next window is issued from where the first left off.
		f.read(p, hrChunk)
		f.read(p, 2*hrChunk)
		wins := f.hr.raFlight[hrKey]
		if len(wins) != 2 {
			t.Fatalf("pipeline depth = %d windows, want 2 (%+v)", len(wins), wins)
		}
		if wins[0].end != wins[1].start {
			t.Errorf("windows not contiguous: [%d,%d) then [%d,%d)",
				wins[0].start, wins[0].end, wins[1].start, wins[1].end)
		}
		if wins[0].start < wins[1].end && wins[1].start < wins[0].end {
			t.Errorf("in-flight windows overlap: %+v", wins)
		}
		issued := f.hr.raIssued[hrKey]

		// With two full windows ahead, the next read must not issue more.
		f.read(p, 3*hrChunk)
		if f.hr.raIssued[hrKey] != issued {
			t.Errorf("throttle failed: issued advanced %d → %d with 2 windows ahead",
				issued, f.hr.raIssued[hrKey])
		}
		if f.hr.raSeq[hrKey] != 4*hrChunk {
			t.Errorf("raSeq = %d, want %d", f.hr.raSeq[hrKey], 4*hrChunk)
		}
	})
	// All windows complete once the env drains.
	if got := len(f.hr.raFlight[hrKey]); got != 0 {
		t.Errorf("windows leaked after drain: %d", got)
	}
}

// TestHostReaderWaitInflight: a read overlapping an in-flight readahead
// window blocks on it instead of issuing a duplicate disk read, then hits
// the freshly filled cache.
func TestHostReaderWaitInflight(t *testing.T) {
	f := newHRFixture(t)
	f.run(t, func(p *sim.Proc) {
		tr1 := f.read(p, 0) // cold: misses, issues window [chunk, chunk+ra)
		if countEvents(tr1, "host-cache-miss") != 1 {
			t.Errorf("first read: miss events = %d, want 1", countEvents(tr1, "host-cache-miss"))
		}
		// The window covering [chunk, ...) is still in flight (1 MiB of disk
		// time has not elapsed); this read overlaps it.
		if len(f.hr.raFlight[hrKey]) != 1 || f.hr.raFlight[hrKey][0].finished {
			t.Fatalf("precondition: window not in flight: %+v", f.hr.raFlight[hrKey])
		}
		tr2 := f.read(p, hrChunk)
		if countEvents(tr2, "host-cache-miss") != 0 {
			t.Errorf("overlapping read re-read the disk instead of waiting")
		}
		if countEvents(tr2, "host-cache-hit") != 1 {
			t.Errorf("overlapping read: hit events = %d, want 1", countEvents(tr2, "host-cache-hit"))
		}
	})
}

// TestHostReaderBackwardsSeekResetsSeq: a non-sequential read re-arms the
// sequential detector — raSeq follows the new cursor, the issue high-water
// mark drops, and no window is issued for the seek itself.
func TestHostReaderBackwardsSeekResetsSeq(t *testing.T) {
	f := newHRFixture(t)
	f.run(t, func(p *sim.Proc) {
		f.read(p, 0)
		f.read(p, hrChunk)
		if f.hr.raIssued[hrKey] == 0 {
			t.Fatal("precondition: sequential run issued nothing")
		}
		inFlight := len(f.hr.raFlight[hrKey])

		// Seek back to the start: reset, but never cancels in-flight I/O.
		f.read(p, 0)
		if got := f.hr.raSeq[hrKey]; got != hrChunk {
			t.Errorf("raSeq after backwards seek = %d, want %d", got, hrChunk)
		}
		if got := f.hr.raIssued[hrKey]; got != 0 {
			t.Errorf("raIssued after backwards seek = %d, want 0", got)
		}
		if got := len(f.hr.raFlight[hrKey]); got != inFlight {
			t.Errorf("backwards seek changed in-flight windows: %d → %d", inFlight, got)
		}

		// Resuming sequentially re-issues from the new cursor, not from the
		// stale pre-seek high-water mark.
		f.read(p, hrChunk)
		wins := f.hr.raFlight[hrKey]
		if len(wins) == 0 {
			t.Fatal("no window issued after resuming the sequential run")
		}
		last := wins[len(wins)-1]
		if last.start != 2*hrChunk {
			t.Errorf("resumed window starts at %d, want %d (cursor), not the stale mark", last.start, 2*hrChunk)
		}
		if f.hr.raIssued[hrKey] != last.end {
			t.Errorf("raIssued = %d, want %d", f.hr.raIssued[hrKey], last.end)
		}
	})
}
