package core_test

import (
	"errors"
	"testing"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/sim"
	"vread/internal/trace"
)

// Black-box liveness tests for the hardened ring: every sanitizer rejection
// path must leave the guest with a typed error (or a clean retry), never a
// hang, and the quiesce/restore protocol must replay captured descriptors
// byte-exactly. The verdict table itself is pinned white-box in
// sanitize_test.go.

// TestHostileForgedDescriptorsStayLive drives each guest-side forgery through
// a full ring round trip: a one-shot forgery is retried to correct bytes
// without a fallback; a persistent one exhausts the retries into the expected
// typed error — and in both shapes the sim drains (fx.run would fail the test
// on a hung reader).
func TestHostileForgedDescriptorsStayLive(t *testing.T) {
	cases := []struct {
		name string
		rule faults.Rule
		// persistent forgeries surface wantErr after retries; one-shot
		// forgeries (wantErr nil) must recover to correct bytes.
		wantErr    error
		wantStale  int64 // daemon StaleKeys count after the read
		minRejects int64
	}{
		{
			name:       "bad slot one-shot recovers",
			rule:       faults.Rule{Point: faults.RingBadSlot, Prob: 1, AfterN: 1, MaxFires: 1},
			minRejects: 1,
		},
		{
			name: "bad slot persistent surfaces daemon error",
			// Unlimited fires cycle all four forgery variants (bad opcode,
			// negative range, overflowing range, oversized name) across the
			// 1+MaxReadRetries attempts — every sanitizer arm, end to end.
			rule:       faults.Rule{Point: faults.RingBadSlot, Prob: 1, AfterN: 1},
			wantErr:    core.ErrDaemonFailed,
			minRejects: 4,
		},
		{
			name:       "stale key one-shot recovers",
			rule:       faults.Rule{Point: faults.RingStaleKey, Prob: 1, AfterN: 1, MaxFires: 1},
			wantStale:  1,
			minRejects: 1,
		},
		{
			name:       "stale key persistent surfaces typed error",
			rule:       faults.Rule{Point: faults.RingStaleKey, Prob: 1, AfterN: 1},
			wantErr:    core.ErrStaleKey,
			wantStale:  4,
			minRejects: 4,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fx, plan := newFaultFixture(t, core.Config{})
			defer fx.c.Close()
			content := data.Pattern{Seed: 61, Size: 1 << 20}
			fx.write(t, "/f", content)
			plan.Set(c.rule)

			tracer := trace.NewTracer(fx.c.Env, 1)
			var tr *trace.Trace
			fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
				tr = tracer.Request("hostile-read")
				vfd, ok := fx.lib.OpenPath(p, tr, "dn1", hdfs.BlockPath(1), "blk_1")
				if !ok {
					t.Error("open failed before the forgery window")
					return
				}
				got, err := vfd.ReadAt(p, tr, 0, content.Size)
				vfd.Close(p, tr)
				tr.Finish(0)
				if c.wantErr != nil {
					if !errors.Is(err, c.wantErr) {
						t.Errorf("err = %v, want %v", err, c.wantErr)
					}
					return
				}
				if err != nil {
					t.Errorf("forged read did not recover: %v", err)
					return
				}
				if !data.Equal(got, data.NewSlice(content)) {
					t.Error("bytes corrupted by forged descriptor recovery")
				}
			})
			st := fx.mgr.Daemon("client").Stats()
			if st.RingRejects < c.minRejects {
				t.Errorf("ring rejects = %d, want >= %d", st.RingRejects, c.minRejects)
			}
			if st.StaleKeys != c.wantStale {
				t.Errorf("stale-key rejects = %d, want %d", st.StaleKeys, c.wantStale)
			}
			if fx.lib.Stats().Retries == 0 {
				t.Error("libvread never retried the forged read")
			}
			if fx.dn1.ServedBytes() != 0 {
				t.Error("forgery caused a vanilla fallback")
			}
			if fired := plan.Fired(c.rule.Point); fired < c.minRejects {
				t.Errorf("%s fired %d times, want >= %d", c.rule.Point, fired, c.minRejects)
			}
			assertSpansBalanced(t, tr)
		})
	}
}

// TestDoorbellStormKeepsStreamExact: junk no-reply descriptors flooding the
// ring ahead of every real request are each rejected and dropped, while the
// real requests' slot streams stay byte-exact — no fallback, no hang.
func TestDoorbellStormKeepsStreamExact(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 71, Size: 1 << 20}
	fx.write(t, "/f", content)
	plan.Set(faults.Rule{Point: faults.RingDoorbellStorm, Prob: 1})

	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("read under doorbell storm: %v", err)
		}
	})
	burst := int64(fx.mgr.Config().DoorbellStormBurst)
	st := fx.mgr.Daemon("client").Stats()
	if want := plan.Fired(faults.RingDoorbellStorm) * burst; st.RingRejects != want {
		t.Fatalf("ring rejects = %d, want %d (one per junk descriptor)", st.RingRejects, want)
	}
	if fx.lib.Stats().Retries != 0 {
		t.Fatal("storm corrupted a real request's stream")
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("storm caused a vanilla fallback")
	}
}

// TestSlotHeldOnlyAddsLatency: a guest holding the slot spinlock burns daemon
// CPU and stalls the fill, but the read still completes with correct bytes.
func TestSlotHeldOnlyAddsLatency(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 81, Size: 1 << 20}
	fx.write(t, "/f", content)
	plan.Set(faults.Rule{Point: faults.RingSlotHeld, Prob: 1, Delay: 2 * time.Millisecond})

	start := fx.c.Env.Now()
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("read under held slots: %v", err)
		}
	})
	fired := plan.Fired(faults.RingSlotHeld)
	if fired == 0 {
		t.Fatal("slot-held never fired")
	}
	if elapsed := fx.c.Env.Now() - start; elapsed < time.Duration(fired)*2*time.Millisecond {
		t.Fatalf("elapsed %v under %d held slots: holds not paid", elapsed, fired)
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("held slot caused a vanilla fallback")
	}
}

// TestPersistentForgeryRevokesRing: with RingRevokeThreshold set, a streak of
// forged descriptors revokes the ring; the revoked guest gets ErrRingRevoked
// (not a retry loop), and its subsequent opens fall back to the vanilla
// socket path — degraded, still correct.
func TestPersistentForgeryRevokesRing(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{RingRevokeThreshold: 3})
	defer fx.c.Close()
	content := data.Pattern{Seed: 91, Size: 1 << 20}
	fx.write(t, "/f", content)
	plan.Set(faults.Rule{Point: faults.RingBadSlot, Prob: 1, AfterN: 1, MaxFires: 3})

	tracer := trace.NewTracer(fx.c.Env, 1)
	var tr *trace.Trace
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		tr = tracer.Request("revoked-read")
		vfd, ok := fx.lib.OpenPath(p, tr, "dn1", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("open failed before the forgery window")
			return
		}
		_, err := vfd.ReadAt(p, tr, 0, content.Size)
		vfd.Close(p, tr)
		tr.Finish(0)
		if !errors.Is(err, core.ErrRingRevoked) {
			t.Errorf("err = %v, want ErrRingRevoked", err)
		}
	})
	d := fx.mgr.Daemon("client")
	if d.RingState() != "revoked" {
		t.Fatalf("ring state = %q, want revoked", d.RingState())
	}
	if st := d.Stats(); st.Revocations != 1 {
		t.Fatalf("revocations = %d, want 1", st.Revocations)
	}
	assertSpansBalanced(t, tr)

	// The revocation is sticky: a fresh, well-formed read is denied at the
	// ring and served by the datanode process instead.
	fx.run(t, 240*time.Second, "reader2", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("fallback read after revocation: %v", err)
		}
	})
	if d.RingState() != "revoked" {
		t.Fatal("revocation did not stick")
	}
	if fx.dn1.ServedBytes() != content.Size {
		t.Fatalf("datanode streamed %d bytes, want full %d via fallback", fx.dn1.ServedBytes(), content.Size)
	}
}

// TestRingSnapshotRestoreRoundTrip: descriptors submitted while the ring is
// quiesced are captured, the guest blocks (no error), and the restore rotates
// the key and replays them to correct bytes.
func TestRingSnapshotRestoreRoundTrip(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 101, Size: 1 << 20}
	fx.write(t, "/f", content)

	d := fx.mgr.Daemon("client")
	key0 := d.RingKey()
	readDone := false
	fx.c.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // after the snapshot below
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted across quiesce/restore")
		}
		readDone = true
	})
	fx.run(t, 240*time.Second, "driver", func(p *sim.Proc) {
		snap, err := fx.mgr.RingSnapshot(p, "client")
		if err != nil {
			t.Fatal(err)
		}
		if d.RingState() != "quiesced" {
			t.Fatalf("ring state = %q after snapshot", d.RingState())
		}
		p.Sleep(10 * time.Millisecond) // let the reader block on the quiesced ring
		if readDone {
			t.Fatal("read completed against a quiesced ring")
		}
		if st := d.Stats(); st.QuiesceHolds == 0 {
			t.Fatal("no descriptors captured while quiesced")
		}
		if err := fx.mgr.RingRestore(p, snap); err != nil {
			t.Fatal(err)
		}
		if d.RingState() != "attached" {
			t.Fatalf("ring state = %q after restore", d.RingState())
		}
	})
	if !readDone {
		t.Fatal("captured read never completed after restore")
	}
	if d.RingKey() == key0 {
		t.Fatal("restore did not rotate the ring key")
	}
	if st := d.Stats(); st.Replayed == 0 {
		t.Fatal("no captured descriptors replayed")
	}
}

// TestRingSnapshotRestoreValidation pins the protocol's refusal paths.
func TestRingSnapshotRestoreValidation(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	fx.run(t, 120*time.Second, "driver", func(p *sim.Proc) {
		if _, err := fx.mgr.RingSnapshot(p, "nobody"); err == nil {
			t.Error("snapshot of unknown VM succeeded")
		}
		if err := fx.mgr.RingRestore(p, nil); err == nil {
			t.Error("restore of nil snapshot succeeded")
		}
		snap, err := fx.mgr.RingSnapshot(p, "client")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fx.mgr.RingSnapshot(p, "client"); err == nil {
			t.Error("double snapshot succeeded")
		}
		if err := fx.mgr.RingRestore(p, snap); err != nil {
			t.Fatal(err)
		}
		if err := fx.mgr.RingRestore(p, snap); err == nil {
			t.Error("restore of an already-restored ring succeeded")
		}
		// A spent snapshot must not restore a later quiesce: the epochs no
		// longer match.
		if _, err := fx.mgr.RingSnapshot(p, "client"); err != nil {
			t.Fatal(err)
		}
		if err := fx.mgr.RingRestore(p, snap); err == nil {
			t.Error("stale-epoch snapshot restored a newer quiesce")
		}
	})
}

// TestMigrateMountReplaysInFlightRead: a read in flight across a live mount
// migration blocks through the blackout and completes with correct bytes on
// the target host — the migration is latency, never an error.
func TestMigrateMountReplaysInFlightRead(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn1"} })
	content := data.Pattern{Seed: 111, Size: 4 << 20}
	fx.write(t, "/f", content)

	readDone := false
	fx.c.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("bytes corrupted across mount migration")
		}
		readDone = true
	})
	var mig core.MountMigration
	fx.run(t, 240*time.Second, "driver", func(p *sim.Proc) {
		var err error
		mig, err = fx.mgr.MigrateMount(p, "dn1", "host1", "host2")
		if err != nil {
			t.Fatal(err)
		}
	})
	if !readDone {
		t.Fatal("in-flight read never completed after migration")
	}
	if mig.Quiesced != 1 {
		t.Errorf("quiesced %d rings, want 1", mig.Quiesced)
	}
	if mig.Blackout <= 0 {
		t.Errorf("blackout = %v, want > 0", mig.Blackout)
	}
	if fx.mgr.Mount("host2", "dn1") == nil {
		t.Fatal("dn1 not mounted on host2 after migration")
	}
	if fx.mgr.Mount("host1", "dn1") != nil {
		t.Fatal("dn1 still mounted on host1 after migration")
	}
	if vm := fx.c.VM("dn1"); vm.Host.Name != "host2" {
		t.Fatalf("dn1 VM on %q, want host2", vm.Host.Name)
	}
	if n := fx.mgr.PendingRemoteReads(); n != 0 {
		t.Fatalf("%d pending remote reads leaked across migration", n)
	}

	// Post-migration reads are remote (client on host1, mount on host2) and
	// still served by vRead, not the datanode socket path.
	fx.run(t, 240*time.Second, "reader2", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil || !data.Equal(got, data.NewSlice(content)) {
			t.Errorf("post-migration read: %v", err)
		}
	})
	if st := fx.mgr.Daemon("client").Stats(); st.BytesRemote == 0 {
		t.Fatal("post-migration read did not take the remote path")
	}
	if fx.dn1.ServedBytes() != 0 {
		t.Fatal("migration pushed reads onto the vanilla fallback")
	}
}

// TestMigrateMountValidation pins the migration's refusal paths.
func TestMigrateMountValidation(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	fx.run(t, 120*time.Second, "driver", func(p *sim.Proc) {
		if _, err := fx.mgr.MigrateMount(p, "nobody", "host1", "host2"); err == nil {
			t.Error("migrating an unknown VM succeeded")
		}
		if _, err := fx.mgr.MigrateMount(p, "dn1", "host2", "host1"); err == nil {
			t.Error("migrating from the wrong source host succeeded")
		}
		if _, err := fx.mgr.MigrateMount(p, "dn1", "host1", "host1"); err == nil {
			t.Error("migrating to the source host succeeded")
		}
		if _, err := fx.mgr.MigrateMount(p, "dn1", "host1", "nowhere"); err == nil {
			t.Error("migrating to an unknown host succeeded")
		}
		fx.mgr.UnmountDatanode("host1", "dn1")
		if _, err := fx.mgr.MigrateMount(p, "dn1", "host1", "host2"); err == nil {
			t.Error("migrating an unmounted datanode succeeded")
		}
		fx.mgr.MountDatanode("dn1")
	})
}

// TestMaybeMigrateMountFaultpoint: the fault-plan action form — unarmed it is
// a no-op that draws no randomness; armed it performs the migration.
func TestMaybeMigrateMountFaultpoint(t *testing.T) {
	fx, plan := newFaultFixture(t, core.Config{})
	defer fx.c.Close()
	fx.run(t, 240*time.Second, "driver", func(p *sim.Proc) {
		if _, fired, _ := fx.mgr.MaybeMigrateMount(p, "dn1", "host2"); fired {
			t.Fatal("unarmed mount.migrate fired")
		}
		plan.Set(faults.Rule{Point: faults.MountMigrate, Prob: 1, MaxFires: 1})
		mig, fired, err := fx.mgr.MaybeMigrateMount(p, "dn1", "host2")
		if !fired {
			t.Fatal("armed mount.migrate did not fire")
		}
		if err != nil {
			t.Fatal(err)
		}
		if mig.SrcHost != "host1" || mig.DstHost != "host2" {
			t.Fatalf("migration %q -> %q, want host1 -> host2", mig.SrcHost, mig.DstHost)
		}
		// Already on the target: the firing is reported, nothing moves.
		plan.Set(faults.Rule{Point: faults.MountMigrate, Prob: 1})
		mig, fired, err = fx.mgr.MaybeMigrateMount(p, "dn1", "host2")
		if !fired || err != nil {
			t.Fatalf("no-op migration: fired=%v err=%v", fired, err)
		}
		if mig.SrcHost != "host2" || mig.Quiesced != 0 {
			t.Fatalf("no-op migration quiesced %d rings from %q", mig.Quiesced, mig.SrcHost)
		}
	})
	if fx.mgr.Mount("host2", "dn1") == nil {
		t.Fatal("dn1 not mounted on host2")
	}
}
