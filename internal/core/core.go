// Package core implements vRead, the paper's contribution: a hypervisor-
// level shortcut that lets HDFS client VMs read block files directly from
// datanode VMs' disk images.
//
// The three components of §3 map onto:
//
//   - lib.go — libvread, the user-level library (Table 1's API plus the
//     block-name → descriptor hash) exposed to HDFS through the
//     hdfs.BlockReader hook (the re-implemented read1/read2 call it);
//   - ring.go — the guest↔daemon shared-memory channel: a POSIX-SHM ring of
//     1024 × 4 KiB slots surfaced as a virtual PCI device, with per-slot
//     spinlocks and eventfd doorbells translated to virtual interrupts;
//   - daemon.go / remote.go — the per-VM hypervisor daemon: the datanode-ID →
//     mount-point hash over read-only loop mounts of datanode images, host-
//     page-cache-backed local reads, dentry refresh on namenode block events,
//     and daemon-to-daemon remote reads over RDMA (RoCE) or TCP.
//
// manager.go assembles all of it over a cluster and implements the
// BlockEventListener trigger (§3.2's namenode-driven synchronization) and
// datanode VM migration support (§6).
package core

import (
	"time"

	"vread/internal/faults"
)

// Transport selects the daemon-to-daemon remote transport.
type Transport int

// Remote transports.
const (
	// TransportRDMA uses RoCE verbs: near-zero CPU, data DMA'd straight
	// into the requesting host's ring memory (the paper's preferred mode).
	TransportRDMA Transport = iota
	// TransportTCP uses a user-level TCP exchange between daemons — works
	// everywhere but burns more CPU than vhost-net (Figure 8's finding).
	TransportTCP
)

func (t Transport) String() string {
	if t == TransportTCP {
		return "tcp"
	}
	return "rdma"
}

// Config holds vRead parameters. Zero values select the paper's prototype
// defaults.
type Config struct {
	// RingSlots is the number of ring buffer slots. Default 1024.
	RingSlots int
	// SlotBytes is the slot size. Default 4096.
	SlotBytes int64
	// SlotLockCycles is the pthread spinlock cost per slot access (paid on
	// both sides). Default 120.
	SlotLockCycles int64
	// EventFdCycles is one doorbell (eventfd write + wakeup). Default 2500.
	EventFdCycles int64
	// GuestIRQCycles is the guest-side virtual interrupt (driver
	// translation of the eventfd). Default 2500.
	GuestIRQCycles int64
	// EventBatchSlots is how many slots ride one doorbell. Default 32.
	EventBatchSlots int
	// LibCallCycles is the guest-side cost of one libvread call (JNI + hash
	// lookup). Default 800.
	LibCallCycles int64
	// OpenCycles is daemon-side vRead_open processing. Default 6000.
	OpenCycles int64
	// LoopReadCyclesPerKB is the daemon's cost of reading the mounted image
	// through the host FS (loop device + page cache copy into the ring).
	// Default 700.
	LoopReadCyclesPerKB int64
	// DiskSubmitCycles is per host disk I/O submission. Default 6000.
	DiskSubmitCycles int64
	// RemoteChunkBytes is the RDMA write / TCP segment unit. Default 64 KiB.
	RemoteChunkBytes int64
	// RemoteWindowBytes bounds in-flight remote data per request. Default 1 MiB.
	RemoteWindowBytes int64
	// TCPSegCycles is per-segment user-level TCP cost on each daemon
	// (syscall + user/kernel crossing; deliberately above vhost-net's
	// per-frame cost, matching §5.1's finding). Default 9000.
	TCPSegCycles int64
	// Transport selects the remote path. Default RDMA.
	Transport Transport
	// DirectDiskBypass enables §6's alternative: read the image via the
	// raw device, skipping the host FS — no page cache benefit and extra
	// per-request address translation.
	DirectDiskBypass bool
	// AddrTranslateCycles is the per-request triple address translation
	// cost when bypassing the host FS. Default 4500.
	AddrTranslateCycles int64
	// RefreshCycles is the daemon-side cost of one dentry/inode refresh
	// (vRead_update). Default 5000.
	RefreshCycles int64
	// GuestCopyCyclesPerKB is the guest-side cost of copying ring slots
	// into the application buffer through JNI (libvread is C, HDFS is
	// Java, so every slot crosses the JNI boundary). Default 1600.
	GuestCopyCyclesPerKB int64
	// OpenTimeout bounds how long vRead_open waits before falling back to
	// the vanilla path. Default 50ms.
	OpenTimeout time.Duration
	// HostReadaheadBytes is the host file system's sequential readahead
	// window over loop-mounted images. Default 1 MiB.
	HostReadaheadBytes int64
	// RemoteReadTimeout bounds how long the daemon waits for the next chunk
	// of a remote window before abandoning the transfer and retrying (the
	// detection latency of a torn QP or dropped segment). Default 25ms.
	RemoteReadTimeout time.Duration
	// MaxReadRetries bounds retries at both degradation layers: libvread
	// re-issuing a failed ring read and the daemon re-requesting a failed
	// remote window. Default 3.
	MaxReadRetries int
	// RetryBackoff is libvread's base retry delay, doubled per attempt.
	// Default 500µs.
	RetryBackoff time.Duration
	// DowngradeWindow is how long a host pair stays on the TCP fallback
	// after an RDMA failure before probing RDMA again over a fresh QP.
	// Default 250ms.
	DowngradeWindow time.Duration
	// DoorbellWatchdog is the guest driver's poll interval that bounds the
	// latency of a lost doorbell. Default 1ms.
	DoorbellWatchdog time.Duration
	// DaemonRestartDelay is how long a crashed daemon takes to come back.
	// Default 5ms.
	DaemonRestartDelay time.Duration
	// MountTableShards is the shard count of each host's mount table.
	// Default 8.
	MountTableShards int
	// RingRevokeThreshold revokes a client VM's ring after this many
	// consecutive rejected descriptors (malformed or stale-keyed) — the
	// SIVSHM-style isolation response to a misbehaving peer. 0 disables
	// revocation (the default): every rejection is answered typed and the
	// ring stays attached.
	RingRevokeThreshold int
	// MigrateRemountDelay is the image re-attach cost during a live mount
	// migration (losetup/kpartx + FS snapshot on the target host), charged
	// between the source unmount and the target mount. Default 3ms.
	MigrateRemountDelay time.Duration
	// SlotHeldSpinCycles is the daemon CPU burned per ring.slotheld firing:
	// a guest holding a slot spinlock makes the daemon spin, not sleep.
	// Default 20000.
	SlotHeldSpinCycles int64
	// DoorbellStormBurst is how many junk no-reply descriptors one
	// ring.doorbellstorm firing floods the descriptor area with. Default 4.
	DoorbellStormBurst int
	// Faults is the fault-injection plan evaluated at the core faultpoints
	// (disk.read.error, disk.read.torn, ring.doorbell.lost, ring.stall,
	// ring.slotheld, daemon.crash, mount.migrate, and — on the guest side —
	// ring.badslot, ring.doorbellstorm, ring.stalekey). Nil disables
	// injection. Manager.InjectGuestFaults overrides it per client VM.
	Faults *faults.Plan
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.RingSlots == 0 {
		c.RingSlots = 1024
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 4096
	}
	if c.SlotLockCycles == 0 {
		c.SlotLockCycles = 120
	}
	if c.EventFdCycles == 0 {
		c.EventFdCycles = 2500
	}
	if c.GuestIRQCycles == 0 {
		c.GuestIRQCycles = 2500
	}
	if c.EventBatchSlots == 0 {
		c.EventBatchSlots = 32
	}
	if c.LibCallCycles == 0 {
		c.LibCallCycles = 800
	}
	if c.OpenCycles == 0 {
		c.OpenCycles = 6000
	}
	if c.LoopReadCyclesPerKB == 0 {
		c.LoopReadCyclesPerKB = 700
	}
	if c.DiskSubmitCycles == 0 {
		c.DiskSubmitCycles = 6000
	}
	if c.RemoteChunkBytes == 0 {
		c.RemoteChunkBytes = 64 << 10
	}
	if c.RemoteWindowBytes == 0 {
		c.RemoteWindowBytes = 1 << 20
	}
	if c.TCPSegCycles == 0 {
		c.TCPSegCycles = 9000
	}
	if c.AddrTranslateCycles == 0 {
		c.AddrTranslateCycles = 4500
	}
	if c.RefreshCycles == 0 {
		c.RefreshCycles = 5000
	}
	if c.GuestCopyCyclesPerKB == 0 {
		c.GuestCopyCyclesPerKB = 1600
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 50 * time.Millisecond
	}
	if c.HostReadaheadBytes == 0 {
		c.HostReadaheadBytes = 1 << 20
	}
	if c.RemoteReadTimeout == 0 {
		c.RemoteReadTimeout = 25 * time.Millisecond
	}
	if c.MaxReadRetries == 0 {
		c.MaxReadRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.DowngradeWindow == 0 {
		c.DowngradeWindow = 250 * time.Millisecond
	}
	if c.DoorbellWatchdog == 0 {
		c.DoorbellWatchdog = time.Millisecond
	}
	if c.DaemonRestartDelay == 0 {
		c.DaemonRestartDelay = 5 * time.Millisecond
	}
	if c.MountTableShards == 0 {
		c.MountTableShards = 8
	}
	if c.MigrateRemountDelay == 0 {
		c.MigrateRemountDelay = 3 * time.Millisecond
	}
	if c.SlotHeldSpinCycles == 0 {
		c.SlotHeldSpinCycles = 20000
	}
	if c.DoorbellStormBurst == 0 {
		c.DoorbellStormBurst = 4
	}
	return c
}

func (c Config) loopReadCycles(n int64) int64  { return n * c.LoopReadCyclesPerKB / 1024 }
func (c Config) guestCopyCycles(n int64) int64 { return n * c.GuestCopyCyclesPerKB / 1024 }
