package core_test

import (
	"testing"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// fixture: client+dn1 on host1, dn2 on host2, vRead enabled for the client.
type fixture struct {
	c   *cluster.Cluster
	nn  *hdfs.NameNode
	dn1 *hdfs.DataNode
	dn2 *hdfs.DataNode
	cl  *hdfs.Client
	mgr *core.Manager
	lib *core.Lib
}

func newFixture(t *testing.T, hcfg hdfs.Config, vcfg core.Config) *fixture {
	t.Helper()
	if hcfg.BlockSize == 0 {
		hcfg.BlockSize = 4 << 20
	}
	c := cluster.New(1, cluster.Params{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	clientVM := h1.AddVM("client", metrics.TagClientApp)
	dn1VM := h1.AddVM("dn1", metrics.TagDatanodeApp)
	dn2VM := h2.AddVM("dn2", metrics.TagDatanodeApp)

	nn := hdfs.NewNameNode(c.Env, hcfg, c.Fabric)
	dn1 := hdfs.StartDataNode(c.Env, nn, dn1VM.Kernel)
	dn2 := hdfs.StartDataNode(c.Env, nn, dn2VM.Kernel)
	cl := hdfs.NewClient(c.Env, nn, clientVM.Kernel)

	mgr := core.NewManager(c, nn, vcfg)
	mgr.MountDatanode("dn1")
	mgr.MountDatanode("dn2")
	lib := mgr.EnableClient("client")
	cl.SetBlockReader(lib)
	return &fixture{c: c, nn: nn, dn1: dn1, dn2: dn2, cl: cl, mgr: mgr, lib: lib}
}

func (fx *fixture) run(t *testing.T, d time.Duration, name string, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	fx.c.Go(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	if err := fx.c.Env.RunUntil(fx.c.Env.Now() + d); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("%s did not finish within %v", name, d)
	}
}

func (fx *fixture) write(t *testing.T, path string, content data.Content) {
	t.Helper()
	fx.run(t, 120*time.Second, "writer", func(p *sim.Proc) {
		if err := fx.cl.WriteFile(p, path, content); err != nil {
			t.Error(err)
		}
	})
}

func TestColocatedVReadServesWithoutDatanode(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 41, Size: 10 << 20}
	fx.write(t, "/f", content)

	fx.run(t, 120*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("vRead bytes differ from written bytes")
		}
	})
	// Every byte came through the daemon; the datanode process streamed none.
	if fx.dn1.ServedBytes() != 0 {
		t.Fatalf("datanode streamed %d bytes despite vRead", fx.dn1.ServedBytes())
	}
	st := fx.mgr.Daemon("client").Stats()
	if st.BytesLocal != content.Size {
		t.Fatalf("daemon served %d local bytes, want %d", st.BytesLocal, content.Size)
	}
	if st.OpenMisses != 0 {
		t.Fatalf("unexpected open misses: %d", st.OpenMisses)
	}
	if ls := fx.lib.Stats(); ls.Opens != 3 { // 10 MiB / 4 MiB blocks
		t.Fatalf("lib opens = %d, want 3", ls.Opens)
	}
}

func TestNamenodeEventRefreshesMount(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	fx.write(t, "/f", data.Pattern{Seed: 1, Size: 1 << 20})
	mount := fx.mgr.Mount("host1", "dn1")
	if _, ok := mount.Lookup(hdfs.BlockPath(1)); !ok {
		t.Fatal("new block not visible in mount after namenode event")
	}
	if fx.mgr.Refreshes() == 0 {
		t.Fatal("no refreshes recorded")
	}
}

func TestUnmountedDatanodeFallsBack(t *testing.T) {
	// dn3 exists but its image was never mounted — opens must fall back to
	// the vanilla socket path and still return correct bytes.
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	dn3VM := fx.c.Host("host1").AddVM("dn3", metrics.TagDatanodeApp)
	dn3 := hdfs.StartDataNode(fx.c.Env, fx.nn, dn3VM.Kernel)
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn3"} })

	content := data.Pattern{Seed: 77, Size: 2 << 20}
	fx.write(t, "/f", content)
	fx.run(t, 120*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("fallback bytes differ")
		}
	})
	if fx.lib.Stats().OpenFallbacks == 0 {
		t.Fatal("no fallbacks recorded")
	}
	if dn3.ServedBytes() != content.Size {
		t.Fatalf("datanode streamed %d, want full %d via fallback", dn3.ServedBytes(), content.Size)
	}
}

func TestReReadHitsHostCache(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 5, Size: 8 << 20}
	fx.write(t, "/f", content)

	var cold, warm time.Duration
	var reads1 int64
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		// Purge everything the write left behind.
		fx.c.Host("host1").Cache.DropAll()
		fx.c.VM("dn1").Kernel.DropCaches()
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		start := fx.c.Env.Now()
		if _, err := r.ReadFull(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		cold = fx.c.Env.Now() - start
		reads1 = fx.c.Host("host1").Disk.Stats().Reads

		if err := r.Seek(p, 0); err != nil {
			t.Error(err)
			return
		}
		start = fx.c.Env.Now()
		if _, err := r.ReadFull(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		warm = fx.c.Env.Now() - start
	})
	if got := fx.c.Host("host1").Disk.Stats().Reads; got != reads1 {
		t.Fatalf("re-read touched the disk (%d → %d reads)", reads1, got)
	}
	if warm >= cold/2 {
		t.Fatalf("re-read %v not much faster than cold read %v", warm, cold)
	}
}

func TestRemoteReadRDMA(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{Transport: core.TransportRDMA})
	defer fx.c.Close()
	fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
	content := data.Pattern{Seed: 9, Size: 6 << 20}
	fx.write(t, "/f", content)

	fx.c.Reg.MarkWindow(fx.c.Env.Now())
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		got, err := r.ReadFull(p, content.Size)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(got, data.NewSlice(content)) {
			t.Error("remote vRead bytes differ")
		}
	})
	st := fx.mgr.Daemon("client").Stats()
	if st.BytesRemote != content.Size {
		t.Fatalf("remote bytes = %d, want %d", st.BytesRemote, content.Size)
	}
	if fx.dn2.ServedBytes() != 0 {
		t.Fatal("datanode process streamed bytes despite remote vRead")
	}
	// RDMA CPU charged on both daemon entities; datanode side (active
	// pusher) pays more than the client side.
	cliRDMA := fx.c.Reg.WindowCycles(core.DaemonEntity("host1"), metrics.TagRDMA)
	dnRDMA := fx.c.Reg.WindowCycles(core.DaemonEntity("host2"), metrics.TagRDMA)
	if cliRDMA == 0 || dnRDMA == 0 {
		t.Fatalf("rdma cycles: client %d dn %d", cliRDMA, dnRDMA)
	}
	if dnRDMA <= cliRDMA {
		t.Fatalf("active-push model: datanode rdma %d should exceed client %d", dnRDMA, cliRDMA)
	}
	// No vhost-net involvement in the data path.
	if fx.c.Reg.WindowCycles("client", metrics.TagVhostNet) != 0 {
		t.Fatal("vhost-net cycles charged during remote vRead")
	}
}

func TestRemoteReadTCPCostsMoreThanRDMA(t *testing.T) {
	measure := func(tr core.Transport) (int64, bool) {
		fx := newFixture(t, hdfs.Config{}, core.Config{Transport: tr})
		defer fx.c.Close()
		fx.nn.SetPlacementPolicy(func(string, string, int) []string { return []string{"dn2"} })
		content := data.Pattern{Seed: 9, Size: 4 << 20}
		fx.write(t, "/f", content)
		fx.c.Reg.MarkWindow(fx.c.Env.Now())
		okRead := true
		fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
			r, err := fx.cl.Open(p, "/f")
			if err != nil {
				okRead = false
				return
			}
			defer r.Close(p)
			got, err := r.ReadFull(p, content.Size)
			if err != nil || !data.Equal(got, data.NewSlice(content)) {
				okRead = false
			}
		})
		total := fx.c.Reg.WindowEntityCycles(core.DaemonEntity("host1")) +
			fx.c.Reg.WindowEntityCycles(core.DaemonEntity("host2"))
		return total, okRead
	}
	rdma, ok1 := measure(core.TransportRDMA)
	tcp, ok2 := measure(core.TransportTCP)
	if !ok1 || !ok2 {
		t.Fatalf("reads failed: rdma=%v tcp=%v", ok1, ok2)
	}
	if tcp <= rdma {
		t.Fatalf("TCP daemon cycles %d not above RDMA %d (Fig 8 vs Fig 7)", tcp, rdma)
	}
}

func TestVReadFasterThanVanillaColocated(t *testing.T) {
	read := func(withVRead bool) time.Duration {
		fx := newFixture(t, hdfs.Config{}, core.Config{})
		defer fx.c.Close()
		if !withVRead {
			fx.cl.SetBlockReader(nil)
		}
		content := data.Pattern{Seed: 3, Size: 8 << 20}
		fx.write(t, "/f", content)
		fx.c.Host("host1").Cache.DropAll()
		fx.c.VM("dn1").Kernel.DropCaches()
		fx.c.VM("client").Kernel.DropCaches()
		var elapsed time.Duration
		fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
			r, err := fx.cl.Open(p, "/f")
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close(p)
			start := fx.c.Env.Now()
			if _, err := r.ReadFull(p, content.Size); err != nil {
				t.Error(err)
			}
			elapsed = fx.c.Env.Now() - start
		})
		return elapsed
	}
	vanilla := read(false)
	vread := read(true)
	if vread >= vanilla {
		t.Fatalf("vRead %v not faster than vanilla %v for co-located cold read", vread, vanilla)
	}
}

func TestDirectDiskBypassSkipsHostCache(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{DirectDiskBypass: true})
	defer fx.c.Close()
	content := data.Pattern{Seed: 4, Size: 4 << 20}
	fx.write(t, "/f", content)
	var reads1, reads2 int64
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if _, err := r.ReadFull(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		reads1 = fx.c.Host("host1").Disk.Stats().Reads
		if err := r.Seek(p, 0); err != nil {
			t.Error(err)
			return
		}
		if _, err := r.ReadFull(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		reads2 = fx.c.Host("host1").Disk.Stats().Reads
	})
	if reads2 <= reads1 {
		t.Fatal("bypass mode should re-hit the disk on re-read")
	}
}

func TestVFDReuseAndClose(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 2, Size: 2 << 20}
	fx.write(t, "/f", content)
	fx.run(t, 240*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		// Many positional reads on the same block reuse one descriptor.
		for i := 0; i < 10; i++ {
			if _, err := r.ReadAt(p, int64(i)*1000, 500); err != nil {
				t.Error(err)
				return
			}
		}
		r.Close(p)
	})
	st := fx.lib.Stats()
	if st.Opens != 1 {
		t.Fatalf("lib opens = %d, want 1 (descriptor reuse)", st.Opens)
	}
	if st.Reads != 10 {
		t.Fatalf("lib reads = %d", st.Reads)
	}
}

// TestVFDSeekRead exercises the full Table 1 API surface: open, seek, read,
// close — through libvread's generic path.
func TestVFDSeekRead(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 91, Size: 2 << 20}
	fx.write(t, "/f", content)
	fx.run(t, 2*time.Minute, "seeker", func(p *sim.Proc) {
		vfd, ok := fx.lib.OpenPath(p, nil, "dn1", hdfs.BlockPath(1), "blk_1")
		if !ok {
			t.Error("vRead_open failed")
			return
		}
		defer vfd.Close(p, nil)
		if vfd.Size() != content.Size {
			t.Errorf("Size = %d", vfd.Size())
		}
		// vRead_seek then sequential vRead_reads across the cursor.
		if pos, err := vfd.Seek(p, 1<<20); err != nil || pos != 1<<20 {
			t.Errorf("Seek = %d, %v", pos, err)
			return
		}
		a, err := vfd.Read(p, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := vfd.Read(p, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		if !data.Equal(a, data.NewSlice(content).Sub(1<<20, 64<<10)) ||
			!data.Equal(b, data.NewSlice(content).Sub(1<<20+64<<10, 64<<10)) {
			t.Error("sequential reads after seek differ")
		}
		// Seek out of range is rejected; reads at EOF return empty.
		if _, err := vfd.Seek(p, content.Size+1); err == nil {
			t.Error("seek past EOF succeeded")
		}
		if _, err := vfd.Seek(p, content.Size); err != nil {
			t.Error(err)
			return
		}
		if s, err := vfd.Read(p, 100); err != nil || s.Len() != 0 {
			t.Errorf("read at EOF = %d bytes, %v", s.Len(), err)
		}
	})
}

func TestVReadOutOfRangeRead(t *testing.T) {
	fx := newFixture(t, hdfs.Config{}, core.Config{})
	defer fx.c.Close()
	content := data.Pattern{Seed: 2, Size: 1 << 20}
	fx.write(t, "/f", content)
	fx.run(t, 120*time.Second, "reader", func(p *sim.Proc) {
		r, err := fx.cl.Open(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close(p)
		if _, err := r.ReadAt(p, content.Size-10, 20); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
}
