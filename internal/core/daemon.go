package core

import (
	"vread/internal/cluster"
	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/fsim"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// DaemonStats counts one daemon's activity. It is not maintained as parallel
// bookkeeping: Stats derives it from the daemon's event stream (a
// trace.Counter fed by the same emit calls that mark request traces).
type DaemonStats struct {
	Opens         int64
	OpenMisses    int64 // stale dentry / unknown datanode → vanilla fallback
	BytesLocal    int64 // served from a local mount
	BytesRemote   int64 // served daemon-to-daemon
	Crashes       int64 // injected daemon crash/restart cycles
	RemoteRetries int64 // remote windows re-requested after timeout/gap
	DoorbellsLost int64 // doorbells recovered by the guest watchdog
	RingRejects   int64 // descriptors the sanitizer refused (malformed, stale key, revoked)
	StaleKeys     int64 // rejects specifically for a stale ring key
	Revocations   int64 // ring permission revocations (at most 1 per ring)
	Replayed      int64 // captured descriptors replayed after a RingRestore
	QuiesceHolds  int64 // descriptors captured into the pending set while quiesced
}

// Daemon event names (the reduced stream DaemonStats is derived from).
const (
	evOpen         = "open"
	evOpenMiss     = "open-miss"
	evBytesLocal   = "bytes-local"
	evBytesRemote  = "bytes-remote"
	evCrash        = "crash"
	evRemoteRetry  = "remote-retry"
	evDoorbellLost = "doorbell-lost"
	evRingReject   = "ring-reject"
	evStaleKey     = "ring-stale-key"
	evRevoke       = "ring-revoke"
	evReplay       = "ring-replay"
	evQuiesceHold  = "ring-quiesce-hold"
)

// Daemon is the per-VM hypervisor daemon (§3.2): it owns the shared-memory
// ring of one client VM and serves its vRead requests from mounted datanode
// images (local) or peer daemons (remote).
type Daemon struct {
	cfg    Config
	mgr    *Manager
	vm     *cluster.VM // the client VM served
	host   *cluster.Host
	thread *cpusched.Thread
	ring   *ring
	hr     *hostReader
	events *trace.Counter
	// faults is the plan evaluated at this daemon's (and its guest's)
	// faultpoints — the manager-wide plan unless InjectGuestFaults armed a
	// per-VM one, so a hostile-guest storm can target a single ring.
	faults *faults.Plan
	// busy is true while one descriptor is being served; idle broadcasts on
	// every return to the pop loop. RingSnapshot waits on it to let the
	// in-service request drain before the blackout starts.
	busy bool
	idle *sim.Signal
}

func newDaemon(mgr *Manager, vm *cluster.VM) *Daemon {
	thread := vm.Host.CPU.NewThread("vread-daemon:"+vm.Name, DaemonEntity(vm.Host.Name))
	d := &Daemon{
		cfg:    mgr.cfg,
		mgr:    mgr,
		vm:     vm,
		host:   vm.Host,
		thread: thread,
		ring:   newRing(mgr.env, mgr.cfg, vm.Name),
		hr:     newHostReader(mgr.cfg, vm.Host, thread),
		events: trace.NewCounter(),
		faults: mgr.cfg.Faults,
		idle:   sim.NewSignal(mgr.env),
	}
	mgr.env.Go("vread-daemon:"+vm.Name, d.loop)
	return d
}

// RingState exposes the ring's permission state (tests and tooling).
func (d *Daemon) RingState() string { return d.ring.state.String() }

// RingKey exposes the current ring key (tests and tooling).
func (d *Daemon) RingKey() uint64 { return d.ring.key }

// emit records one daemon event in the always-on counter and, when the
// request is sampled, as an instantaneous mark on its trace.
func (d *Daemon) emit(tr *trace.Trace, name string, n int64) {
	d.events.Add(name, n)
	tr.Event(trace.LayerDaemon, name, n)
}

// hostReader is the shared "read a mounted image through the host FS"
// machinery used by both local daemons and the per-host remote server:
// host page cache, disk misses, loop-device CPU, and the host file system's
// sequential readahead.
type hostReader struct {
	cfg      Config
	host     *cluster.Host
	thread   *cpusched.Thread
	env      *sim.Env
	raSeq    map[string]int64
	raIssued map[string]int64
	raFlight map[string][]*raWindow
}

// raWindow tracks one in-flight host readahead I/O.
type raWindow struct {
	start, end int64
	finished   bool
	done       *sim.Signal
}

func newHostReader(cfg Config, host *cluster.Host, thread *cpusched.Thread) *hostReader {
	return &hostReader{
		cfg: cfg, host: host, thread: thread,
		env:      host.CPU.Env(),
		raSeq:    make(map[string]int64),
		raIssued: make(map[string]int64),
		raFlight: make(map[string][]*raWindow),
	}
}

// read charges the full host-side cost of reading [off, off+n) of the
// mounted file identified by (obj, key) with snapshot size fileSize.
func (h *hostReader) read(p *sim.Proc, tr *trace.Trace, obj int64, key string, fileSize, off, n int64) {
	sp := tr.Begin(trace.LayerHostFS, "host-read")
	if h.cfg.DirectDiskBypass {
		// §6: raw device read — no host cache, triple address translation.
		h.thread.RunT(p, h.cfg.AddrTranslateCycles, metrics.TagOthers, tr)
		h.thread.RunT(p, h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr)
		h.host.Disk.ReadT(p, tr, n)
	} else {
		_, miss := h.host.Cache.Lookup(obj, off, n)
		if miss > 0 {
			h.waitInflight(p, key, off, n)
			if _, miss = h.host.Cache.Lookup(obj, off, n); miss > 0 {
				tr.Event(trace.LayerHostFS, "host-cache-miss", miss)
				h.thread.RunT(p, h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr)
				h.host.Disk.ReadT(p, tr, miss)
				h.host.Cache.Insert(obj, off, n)
			} else {
				tr.Event(trace.LayerHostFS, "host-cache-hit", n)
			}
		} else {
			tr.Event(trace.LayerHostFS, "host-cache-hit", n)
		}
		h.readahead(tr, obj, key, fileSize, off, n)
	}
	h.thread.RunT(p, h.cfg.loopReadCycles(n), metrics.TagLoopDevice, tr)
	tr.EndSpan(sp, n)
}

// waitInflight blocks until no unfinished readahead window overlaps the
// range.
func (h *hostReader) waitInflight(p *sim.Proc, key string, off, n int64) {
	for {
		var w *raWindow
		for _, cand := range h.raFlight[key] {
			if !cand.finished && cand.start < off+n && off < cand.end {
				w = cand
				break
			}
		}
		if w == nil {
			return
		}
		for !w.finished {
			w.done.Wait(p)
		}
	}
}

// readahead asynchronously pulls the next sequential window into the host
// page cache. The submit and disk time charge to the triggering request's
// trace: the I/O runs on its behalf even though it completes asynchronously.
func (h *hostReader) readahead(tr *trace.Trace, obj int64, key string, fileSize, off, n int64) {
	end := off + n
	if off != h.raSeq[key] {
		// New sequential run: re-arm and forget prior issue bookkeeping
		// (the cache may have been dropped since the last run).
		h.raSeq[key] = end
		h.raIssued[key] = 0
		return
	}
	h.raSeq[key] = end
	raStart := end
	if issued := h.raIssued[key]; issued > raStart {
		raStart = issued
	}
	// Keep up to two full windows in flight ahead of the reader.
	if raStart-end >= 2*h.cfg.HostReadaheadBytes {
		return
	}
	raEnd := raStart + h.cfg.HostReadaheadBytes
	if raEnd > fileSize {
		raEnd = fileSize
	}
	if raEnd <= raStart {
		return
	}
	win := raEnd - raStart
	if h.host.Cache.Contains(obj, raStart, win) {
		h.raIssued[key] = raEnd
		return
	}
	h.thread.PostT(h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr, nil)
	w := &raWindow{start: raStart, end: raEnd, done: sim.NewSignal(h.env)}
	h.raFlight[key] = append(h.raFlight[key], w)
	h.host.Disk.ReadAsyncT(tr, win, func() {
		h.host.Cache.Insert(obj, w.start, win)
		w.finished = true
		w.done.Broadcast()
		list := h.raFlight[key]
		for i, cand := range list {
			if cand == w {
				h.raFlight[key] = append(list[:i], list[i+1:]...)
				break
			}
		}
	})
	h.raIssued[key] = raEnd
}

// Stats derives the daemon's counters from its reduced event stream.
func (d *Daemon) Stats() DaemonStats {
	return DaemonStats{
		Opens:         d.events.Get(evOpen),
		OpenMisses:    d.events.Get(evOpenMiss),
		BytesLocal:    d.events.Get(evBytesLocal),
		BytesRemote:   d.events.Get(evBytesRemote),
		Crashes:       d.events.Get(evCrash),
		RemoteRetries: d.events.Get(evRemoteRetry),
		DoorbellsLost: d.events.Get(evDoorbellLost),
		RingRejects:   d.events.Get(evRingReject),
		StaleKeys:     d.events.Get(evStaleKey),
		Revocations:   d.events.Get(evRevoke),
		Replayed:      d.events.Get(evReplay),
		QuiesceHolds:  d.events.Get(evQuiesceHold),
	}
}

// loop services ring requests, one at a time (the ring serializes). The
// state machine sits here: a resume kick replays the pending set, a quiesced
// ring captures instead of serving, and everything else goes through serve.
func (d *Daemon) loop(p *sim.Proc) {
	for {
		req, ok := d.ring.reqs.Get(p)
		if !ok {
			return
		}
		if req.kind == reqResume {
			// Only the restore path knows the freshly rotated key; a guest
			// forging the kind fails this guard and is dropped like a
			// corrupt doorbell write.
			if req.key == d.ring.key && d.ring.state == ringAttached {
				d.replayPending(p)
			}
			continue
		}
		if d.ring.state == ringQuiesced {
			d.ring.pending = append(d.ring.pending, req)
			d.emit(req.tr, evQuiesceHold, 1)
			continue
		}
		d.busy = true
		d.serve(p, req)
		d.busy = false
		d.idle.Broadcast()
	}
}

// replayPending serves the descriptors captured across a quiesce, in arrival
// order, re-stamped with the rotated key (the restore re-admits them — the
// old key is dead). A re-quiesce mid-replay re-captures the remainder.
func (d *Daemon) replayPending(p *sim.Proc) {
	pend := d.ring.pending
	d.ring.pending = nil
	d.busy = true
	for i, pr := range pend {
		if d.ring.state != ringAttached {
			d.ring.pending = append(d.ring.pending, pend[i:]...)
			break
		}
		pr.key = d.ring.key
		d.emit(pr.tr, evReplay, 1)
		d.serve(p, pr)
	}
	d.busy = false
	d.idle.Broadcast()
}

// serve handles one descriptor: sanitize, evaluate the crash fault, then
// dispatch.
func (d *Daemon) serve(p *sim.Proc, req ringReq) {
	req, verdict := d.sanitizeReq(req)
	// Wake from the guest's doorbell.
	d.thread.RunT(p, d.cfg.EventFdCycles, metrics.TagOthers, req.tr)
	if verdict != reqAccept {
		d.rejectReq(p, req, verdict)
		return
	}
	d.ring.badStreak = 0
	if d.faults.Should(faults.DaemonCrash) {
		d.crashRestart(p, req)
		return
	}
	switch req.kind {
	case reqOpen:
		d.handleOpen(p, req)
	case reqRead:
		d.handleRead(p, req)
	}
}

// maxRingNameBytes bounds the dn and path strings one descriptor may carry,
// matching the prototype's fixed-size descriptor slots.
const maxRingNameBytes = 4096

func validRingName(s string) bool { return s != "" && len(s) <= maxRingNameBytes }

// reqVerdict is sanitizeReq's ruling on one descriptor.
type reqVerdict int

const (
	reqAccept    reqVerdict = iota
	reqMalformed            // bad opcode, unbounded name, or bad byte range
	reqStaleKey             // key does not match the ring's current epoch
	reqDenied               // ring permission revoked
)

// sanitizeReq is the daemon-side validation of one guest-written ring
// descriptor (§3.3 hardened per SIVSHM): the ring must not be revoked, the
// descriptor's key must match the ring's current epoch key (checked on every
// doorbell), the opcode must be known, the datanode ID and block path
// non-empty and bounded, the byte range non-negative without overflow, and
// an open must carry its reply queue. The raw fields feed map lookups,
// readahead keys, and offset arithmetic, so nothing downstream may see a
// descriptor this has not accepted.
//
//lint:sanitizer guesttaint(rejects revoked rings, stale keys, unknown opcodes, unbounded names, and negative or overflowing byte ranges at the pop)
func (d *Daemon) sanitizeReq(req ringReq) (ringReq, reqVerdict) {
	if d.ring.state == ringRevoked {
		return req, reqDenied
	}
	if req.key != d.ring.key {
		return req, reqStaleKey
	}
	switch req.kind {
	case reqOpen:
		if req.reply == nil {
			return req, reqMalformed
		}
	case reqRead:
	default:
		return req, reqMalformed
	}
	if !validRingName(req.dn) || !validRingName(req.path) {
		return req, reqMalformed
	}
	if req.off < 0 || req.n < 0 || req.off+req.n < 0 {
		return req, reqMalformed
	}
	return req, reqAccept
}

// rejectReq fails a refused descriptor back to the guest without touching
// any daemon state, and advances the revocation streak. Liveness contract:
// any descriptor with a reply queue gets an empty reply, any other shape
// gets an error slot — except an open-like descriptor with no reply channel,
// which is dropped like a corrupt doorbell write (nothing is waiting on it;
// an error slot would poison the next real read's stream).
func (d *Daemon) rejectReq(p *sim.Proc, req ringReq, verdict reqVerdict) {
	d.emit(req.tr, evRingReject, 1)
	code := slotFailed
	switch verdict {
	case reqStaleKey:
		code = slotBadKey
		d.emit(req.tr, evStaleKey, 1)
		req.tr.Event(trace.LayerRing, "ring-reject:stale-key", 0)
	case reqDenied:
		code = slotRevoked
		req.tr.Event(trace.LayerRing, "ring-reject:revoked", 0)
	default:
		req.tr.Event(trace.LayerRing, "ring-reject:malformed", 0)
	}
	if d.ring.state != ringRevoked {
		d.ring.badStreak++
		if t := d.cfg.RingRevokeThreshold; t > 0 && d.ring.badStreak >= t {
			d.ring.state = ringRevoked
			d.emit(req.tr, evRevoke, 1)
			req.tr.Event(trace.LayerRing, "ring-revoked", 0)
		}
	}
	switch {
	case req.reply != nil:
		req.reply.Put(p, openResult{})
	case req.kind == reqOpen:
		// Junk no-reply open: dropped; no reader is blocked on it.
	default:
		d.pushErrorCode(p, req.tr, code)
	}
}

// crashRestart models the daemon dying under a request and supervisord
// bringing it back: the in-flight request fails (the guest sees an error and
// falls back), the host's cached mount metadata is lost — every mount stale
// until vRead_update or a resync — and the ring goes quiet for the restart
// delay.
func (d *Daemon) crashRestart(p *sim.Proc, req ringReq) {
	d.emit(req.tr, evCrash, 1)
	req.tr.Event(trace.LayerDaemon, "fault:daemon-crash", 0)
	d.mgr.invalidateMounts(d.host.Name)
	switch req.kind {
	case reqOpen:
		req.reply.Put(p, openResult{})
	case reqRead:
		d.pushError(p, req.tr)
	}
	p.Sleep(d.cfg.DaemonRestartDelay)
}

// InjectFaults arms a plan on this daemon's faultpoints (per-VM targeting;
// the manager-wide plan is the default).
func (d *Daemon) InjectFaults(plan *faults.Plan) { d.faults = plan }

// handleOpen resolves a block file against the mount hash (local) or a peer
// daemon (remote) and replies through the ring.
func (d *Daemon) handleOpen(p *sim.Proc, req ringReq) {
	sp := req.tr.Begin(trace.LayerDaemon, "open")
	d.thread.RunT(p, d.cfg.OpenCycles, metrics.TagOthers, req.tr)
	d.emit(req.tr, evOpen, 1)
	res := openResult{}
	dnHost, known := d.mgr.fabric().HostOf(req.dn)
	switch {
	case !known:
		// Unknown datanode: fall back.
	case dnHost == d.host.Name:
		if m := d.mgr.mount(d.host.Name, req.dn); m != nil {
			if e, ok := m.Lookup(req.path); ok {
				res = openResult{ok: true, size: e.Size}
			}
		}
	default:
		res = d.mgr.remoteOpen(p, d, dnHost, req)
	}
	if !res.ok {
		d.emit(req.tr, evOpenMiss, 1)
	}
	req.tr.EndSpan(sp, 0)
	req.reply.Put(p, res)
}

// handleRead serves one read request into the ring.
func (d *Daemon) handleRead(p *sim.Proc, req ringReq) {
	dnHost, known := d.mgr.fabric().HostOf(req.dn)
	if !known {
		d.pushError(p, req.tr)
		return
	}
	if dnHost == d.host.Name {
		d.readLocal(p, req)
		return
	}
	d.readRemote(p, dnHost, req)
}

// readLocal reads from the loop-mounted image through the host page cache
// (or the raw device with DirectDiskBypass) and fills ring slots.
func (d *Daemon) readLocal(p *sim.Proc, req ringReq) {
	m := d.mgr.mount(d.host.Name, req.dn)
	if m == nil {
		d.pushError(p, req.tr)
		return
	}
	e, ok := m.Lookup(req.path)
	if !ok {
		d.pushError(p, req.tr)
		return
	}
	sp := req.tr.Begin(trace.LayerDaemon, "read-local")
	dnVM := d.mgr.cl.VM(req.dn)
	obj := dnVM.HostCacheObject(e.Node.Ino())
	key := req.dn + ":" + req.path
	batch := int64(d.cfg.EventBatchSlots) * d.cfg.SlotBytes
	for off := req.off; off < req.off+req.n; {
		want := req.off + req.n - off
		if want > batch {
			want = batch
		}
		d.hr.read(p, req.tr, obj, key, e.Size, off, want)
		s, err := m.ReadAt(req.path, off, want)
		if err == nil && d.faults.Should(faults.DiskReadError) {
			req.tr.Event(trace.LayerDaemon, "fault:disk-error", 0)
			err = fsim.ErrStale
		}
		if err != nil {
			req.tr.EndSpan(sp, off-req.off)
			d.pushError(p, req.tr)
			return
		}
		if want > 1 && d.faults.Should(faults.DiskReadTorn) {
			// Torn read: a prefix lands in the ring, then the stream ends.
			// libvread's byte-count check turns it into ErrShortRead and
			// retries — never silent truncation.
			req.tr.Event(trace.LayerDaemon, "fault:disk-torn", 0)
			torn := s.Sub(0, want/2)
			d.fillSlots(p, req.tr, torn, true)
			d.doorbell(p, req.tr)
			req.tr.EndSpan(sp, off-req.off+torn.Len())
			return
		}
		last := off+want == req.off+req.n
		d.fillSlots(p, req.tr, s, last)
		d.doorbell(p, req.tr)
		d.events.Add(evBytesLocal, want)
		off += want
	}
	req.tr.EndSpan(sp, req.n)
}

// readRemote pulls windows of the range from the peer daemon and relays the
// arriving chunks into the ring. With RDMA the payload lands in the SHM
// directly (no local per-byte cost); with TCP the local daemon pays a
// per-segment user-level receive cost (charged by the transport).
//
// Degradation: each chunk wait is bounded by RemoteReadTimeout and verified
// contiguous via its offset. A timeout, error chunk, or gap retires the
// window (finishRemote on every path — a dropped final chunk can never leave
// a blocked queue reader behind), notes the transport failure (RDMA pairs
// downgrade to TCP), and re-requests the remainder from the end of the
// delivered prefix — slots already in the ring are never re-sent, so the
// guest stream stays exact. MaxReadRetries exhausted → error slot → the
// guest falls back.
func (d *Daemon) readRemote(p *sim.Proc, dnHost string, req ringReq) {
	sp := req.tr.Begin(trace.LayerDaemon, "read-remote")
	req.tr.Annotate(sp, "peer", dnHost)
	retries := 0
	for off := req.off; off < req.off+req.n; {
		win := req.off + req.n - off
		if win > d.cfg.RemoteWindowBytes {
			win = d.cfg.RemoteWindowBytes
		}
		chunks := d.mgr.remoteRead(p, req.tr, d, dnHost, req.dn, req.path, off, win)
		var got int64
		failed := false
		for got < win {
			msg, ok := chunks.GetTimeout(p, d.cfg.RemoteReadTimeout)
			if !ok || msg.err || msg.off != off+got {
				failed = true
				break
			}
			last := off+got+msg.payload.Len() == req.off+req.n
			d.fillSlots(p, req.tr, msg.payload, last)
			got += msg.payload.Len()
			d.events.Add(evBytesRemote, msg.payload.Len())
		}
		d.mgr.finishRemote(chunks)
		if failed {
			d.mgr.noteRemoteFailureT(req.tr, d.host.Name, dnHost)
			retries++
			if retries > d.cfg.MaxReadRetries {
				req.tr.EndSpan(sp, off+got-req.off)
				d.pushError(p, req.tr)
				return
			}
			d.emit(req.tr, evRemoteRetry, 1)
			off += got // keep the delivered contiguous prefix
			continue
		}
		d.doorbell(p, req.tr)
		off += win
	}
	req.tr.EndSpan(sp, req.n)
}

// fillSlots splits a slice across ring slots, paying the per-slot lock cost
// as one batched charge (the per-byte copy into the ring is part of
// loopReadCycles locally, and of the transport cost remotely).
func (d *Daemon) fillSlots(p *sim.Proc, tr *trace.Trace, s data.Slice, last bool) {
	if stall, ok := d.faults.ShouldDelay(faults.RingStall); ok {
		// Ring stall: the guest stops draining for a while. With the free
		// queue exhausted the daemon blocks on slot tokens — the ring's
		// natural backpressure — until the guest resumes.
		tr.Event(trace.LayerRing, "fault:ring-stall", 0)
		p.Sleep(stall)
	}
	if hold, ok := d.faults.ShouldDelay(faults.RingSlotHeld); ok {
		// Slot spinlock held by the guest: unlike a stall, the daemon burns
		// CPU spinning on the lock, then waits out the hold.
		tr.Event(trace.LayerRing, "fault:slot-held", 0)
		d.thread.RunT(p, d.cfg.SlotHeldSpinCycles, metrics.TagOthers, tr)
		p.Sleep(hold)
	}
	d.thread.RunT(p, d.cfg.SlotLockCycles*d.ring.slotsFor(s.Len()), metrics.TagOthers, tr)
	for off := int64(0); off < s.Len(); {
		n := s.Len() - off
		if n > d.cfg.SlotBytes {
			n = d.cfg.SlotBytes
		}
		d.ring.free.Get(p)
		isLast := last && off+n == s.Len()
		d.ring.full.Put(p, ringSlot{s: s.Sub(off, n), last: isLast})
		off += n
	}
}

// doorbell signals the guest: eventfd on the daemon side, virtual interrupt
// on the vCPU. A lost doorbell (injected) costs the eventfd write but the
// interrupt only arrives when the guest driver's watchdog poll notices the
// filled slots — DoorbellWatchdog of extra latency, never a hang.
func (d *Daemon) doorbell(p *sim.Proc, tr *trace.Trace) {
	d.thread.RunT(p, d.cfg.EventFdCycles, metrics.TagOthers, tr)
	if d.faults.Should(faults.RingDoorbellLost) {
		d.emit(tr, evDoorbellLost, 1)
		tr.Event(trace.LayerRing, "fault:doorbell-lost", 0)
		d.mgr.env.Schedule(d.cfg.DoorbellWatchdog, func() {
			d.vm.VCPU.PostT(d.cfg.GuestIRQCycles, metrics.TagOthers, tr, nil)
		})
		return
	}
	d.vm.VCPU.PostT(d.cfg.GuestIRQCycles, metrics.TagOthers, tr, nil)
}

// pushError aborts the in-flight read on the guest side.
func (d *Daemon) pushError(p *sim.Proc, tr *trace.Trace) {
	d.pushErrorCode(p, tr, slotFailed)
}

// pushErrorCode aborts the in-flight read with a specific slot code, so
// libvread can surface the matching typed error.
func (d *Daemon) pushErrorCode(p *sim.Proc, tr *trace.Trace, code slotCode) {
	d.ring.free.Get(p)
	d.ring.full.Put(p, ringSlot{code: code, last: true})
	d.doorbell(p, tr)
}
