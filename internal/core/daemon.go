package core

import (
	"vread/internal/cluster"
	"vread/internal/cpusched"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/fsim"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
)

// DaemonStats counts one daemon's activity. It is not maintained as parallel
// bookkeeping: Stats derives it from the daemon's event stream (a
// trace.Counter fed by the same emit calls that mark request traces).
type DaemonStats struct {
	Opens         int64
	OpenMisses    int64 // stale dentry / unknown datanode → vanilla fallback
	BytesLocal    int64 // served from a local mount
	BytesRemote   int64 // served daemon-to-daemon
	Crashes       int64 // injected daemon crash/restart cycles
	RemoteRetries int64 // remote windows re-requested after timeout/gap
	DoorbellsLost int64 // doorbells recovered by the guest watchdog
}

// Daemon event names (the reduced stream DaemonStats is derived from).
const (
	evOpen         = "open"
	evOpenMiss     = "open-miss"
	evBytesLocal   = "bytes-local"
	evBytesRemote  = "bytes-remote"
	evCrash        = "crash"
	evRemoteRetry  = "remote-retry"
	evDoorbellLost = "doorbell-lost"
)

// Daemon is the per-VM hypervisor daemon (§3.2): it owns the shared-memory
// ring of one client VM and serves its vRead requests from mounted datanode
// images (local) or peer daemons (remote).
type Daemon struct {
	cfg    Config
	mgr    *Manager
	vm     *cluster.VM // the client VM served
	host   *cluster.Host
	thread *cpusched.Thread
	ring   *ring
	hr     *hostReader
	events *trace.Counter
}

func newDaemon(mgr *Manager, vm *cluster.VM) *Daemon {
	thread := vm.Host.CPU.NewThread("vread-daemon:"+vm.Name, DaemonEntity(vm.Host.Name))
	d := &Daemon{
		cfg:    mgr.cfg,
		mgr:    mgr,
		vm:     vm,
		host:   vm.Host,
		thread: thread,
		ring:   newRing(mgr.env, mgr.cfg),
		hr:     newHostReader(mgr.cfg, vm.Host, thread),
		events: trace.NewCounter(),
	}
	mgr.env.Go("vread-daemon:"+vm.Name, d.loop)
	return d
}

// emit records one daemon event in the always-on counter and, when the
// request is sampled, as an instantaneous mark on its trace.
func (d *Daemon) emit(tr *trace.Trace, name string, n int64) {
	d.events.Add(name, n)
	tr.Event(trace.LayerDaemon, name, n)
}

// hostReader is the shared "read a mounted image through the host FS"
// machinery used by both local daemons and the per-host remote server:
// host page cache, disk misses, loop-device CPU, and the host file system's
// sequential readahead.
type hostReader struct {
	cfg      Config
	host     *cluster.Host
	thread   *cpusched.Thread
	env      *sim.Env
	raSeq    map[string]int64
	raIssued map[string]int64
	raFlight map[string][]*raWindow
}

// raWindow tracks one in-flight host readahead I/O.
type raWindow struct {
	start, end int64
	finished   bool
	done       *sim.Signal
}

func newHostReader(cfg Config, host *cluster.Host, thread *cpusched.Thread) *hostReader {
	return &hostReader{
		cfg: cfg, host: host, thread: thread,
		env:      host.CPU.Env(),
		raSeq:    make(map[string]int64),
		raIssued: make(map[string]int64),
		raFlight: make(map[string][]*raWindow),
	}
}

// read charges the full host-side cost of reading [off, off+n) of the
// mounted file identified by (obj, key) with snapshot size fileSize.
func (h *hostReader) read(p *sim.Proc, tr *trace.Trace, obj int64, key string, fileSize, off, n int64) {
	sp := tr.Begin(trace.LayerHostFS, "host-read")
	if h.cfg.DirectDiskBypass {
		// §6: raw device read — no host cache, triple address translation.
		h.thread.RunT(p, h.cfg.AddrTranslateCycles, metrics.TagOthers, tr)
		h.thread.RunT(p, h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr)
		h.host.Disk.ReadT(p, tr, n)
	} else {
		_, miss := h.host.Cache.Lookup(obj, off, n)
		if miss > 0 {
			h.waitInflight(p, key, off, n)
			if _, miss = h.host.Cache.Lookup(obj, off, n); miss > 0 {
				tr.Event(trace.LayerHostFS, "host-cache-miss", miss)
				h.thread.RunT(p, h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr)
				h.host.Disk.ReadT(p, tr, miss)
				h.host.Cache.Insert(obj, off, n)
			} else {
				tr.Event(trace.LayerHostFS, "host-cache-hit", n)
			}
		} else {
			tr.Event(trace.LayerHostFS, "host-cache-hit", n)
		}
		h.readahead(tr, obj, key, fileSize, off, n)
	}
	h.thread.RunT(p, h.cfg.loopReadCycles(n), metrics.TagLoopDevice, tr)
	tr.EndSpan(sp, n)
}

// waitInflight blocks until no unfinished readahead window overlaps the
// range.
func (h *hostReader) waitInflight(p *sim.Proc, key string, off, n int64) {
	for {
		var w *raWindow
		for _, cand := range h.raFlight[key] {
			if !cand.finished && cand.start < off+n && off < cand.end {
				w = cand
				break
			}
		}
		if w == nil {
			return
		}
		for !w.finished {
			w.done.Wait(p)
		}
	}
}

// readahead asynchronously pulls the next sequential window into the host
// page cache. The submit and disk time charge to the triggering request's
// trace: the I/O runs on its behalf even though it completes asynchronously.
func (h *hostReader) readahead(tr *trace.Trace, obj int64, key string, fileSize, off, n int64) {
	end := off + n
	if off != h.raSeq[key] {
		// New sequential run: re-arm and forget prior issue bookkeeping
		// (the cache may have been dropped since the last run).
		h.raSeq[key] = end
		h.raIssued[key] = 0
		return
	}
	h.raSeq[key] = end
	raStart := end
	if issued := h.raIssued[key]; issued > raStart {
		raStart = issued
	}
	// Keep up to two full windows in flight ahead of the reader.
	if raStart-end >= 2*h.cfg.HostReadaheadBytes {
		return
	}
	raEnd := raStart + h.cfg.HostReadaheadBytes
	if raEnd > fileSize {
		raEnd = fileSize
	}
	if raEnd <= raStart {
		return
	}
	win := raEnd - raStart
	if h.host.Cache.Contains(obj, raStart, win) {
		h.raIssued[key] = raEnd
		return
	}
	h.thread.PostT(h.cfg.DiskSubmitCycles, metrics.TagDiskRead, tr, nil)
	w := &raWindow{start: raStart, end: raEnd, done: sim.NewSignal(h.env)}
	h.raFlight[key] = append(h.raFlight[key], w)
	h.host.Disk.ReadAsyncT(tr, win, func() {
		h.host.Cache.Insert(obj, w.start, win)
		w.finished = true
		w.done.Broadcast()
		list := h.raFlight[key]
		for i, cand := range list {
			if cand == w {
				h.raFlight[key] = append(list[:i], list[i+1:]...)
				break
			}
		}
	})
	h.raIssued[key] = raEnd
}

// Stats derives the daemon's counters from its reduced event stream.
func (d *Daemon) Stats() DaemonStats {
	return DaemonStats{
		Opens:         d.events.Get(evOpen),
		OpenMisses:    d.events.Get(evOpenMiss),
		BytesLocal:    d.events.Get(evBytesLocal),
		BytesRemote:   d.events.Get(evBytesRemote),
		Crashes:       d.events.Get(evCrash),
		RemoteRetries: d.events.Get(evRemoteRetry),
		DoorbellsLost: d.events.Get(evDoorbellLost),
	}
}

// loop services ring requests, one at a time (the ring serializes).
func (d *Daemon) loop(p *sim.Proc) {
	for {
		req, ok := d.ring.reqs.Get(p)
		if !ok {
			return
		}
		req, valid := d.sanitizeReq(req)
		// Wake from the guest's doorbell.
		d.thread.RunT(p, d.cfg.EventFdCycles, metrics.TagOthers, req.tr)
		if !valid {
			d.rejectReq(p, req)
			continue
		}
		if d.cfg.Faults.Should(faults.DaemonCrash) {
			d.crashRestart(p, req)
			continue
		}
		switch req.kind {
		case reqOpen:
			d.handleOpen(p, req)
		case reqRead:
			d.handleRead(p, req)
		}
	}
}

// maxRingNameBytes bounds the dn and path strings one descriptor may carry,
// matching the prototype's fixed-size descriptor slots.
const maxRingNameBytes = 4096

func validRingName(s string) bool { return s != "" && len(s) <= maxRingNameBytes }

// sanitizeReq is the daemon-side validation of one guest-written ring
// descriptor (§3.3): the opcode must be known, the datanode ID and block
// path non-empty and bounded, the byte range non-negative without overflow,
// and an open must carry its reply queue. The raw fields feed map lookups,
// readahead keys, and offset arithmetic, so nothing downstream may see a
// descriptor this has not accepted.
//
//lint:sanitizer guesttaint(rejects unknown opcodes, unbounded names, and negative or overflowing byte ranges at the pop)
func (d *Daemon) sanitizeReq(req ringReq) (ringReq, bool) {
	switch req.kind {
	case reqOpen:
		if req.reply == nil {
			return req, false
		}
	case reqRead:
	default:
		return req, false
	}
	if !validRingName(req.dn) || !validRingName(req.path) {
		return req, false
	}
	if req.off < 0 || req.n < 0 || req.off+req.n < 0 {
		return req, false
	}
	return req, true
}

// rejectReq fails a malformed descriptor back to the guest without touching
// any daemon state: opens get an empty reply, reads an error slot. A
// descriptor with no usable reply channel is dropped, like a corrupt
// doorbell write.
func (d *Daemon) rejectReq(p *sim.Proc, req ringReq) {
	switch {
	case req.kind == reqOpen && req.reply != nil:
		req.reply.Put(p, openResult{})
	case req.kind == reqRead:
		d.pushError(p, req.tr)
	}
}

// crashRestart models the daemon dying under a request and supervisord
// bringing it back: the in-flight request fails (the guest sees an error and
// falls back), the host's cached mount metadata is lost — every mount stale
// until vRead_update or a resync — and the ring goes quiet for the restart
// delay.
func (d *Daemon) crashRestart(p *sim.Proc, req ringReq) {
	d.emit(req.tr, evCrash, 1)
	req.tr.Event(trace.LayerDaemon, "fault:daemon-crash", 0)
	d.mgr.invalidateMounts(d.host.Name)
	switch req.kind {
	case reqOpen:
		req.reply.Put(p, openResult{})
	case reqRead:
		d.pushError(p, req.tr)
	}
	p.Sleep(d.cfg.DaemonRestartDelay)
}

// handleOpen resolves a block file against the mount hash (local) or a peer
// daemon (remote) and replies through the ring.
func (d *Daemon) handleOpen(p *sim.Proc, req ringReq) {
	sp := req.tr.Begin(trace.LayerDaemon, "open")
	d.thread.RunT(p, d.cfg.OpenCycles, metrics.TagOthers, req.tr)
	d.emit(req.tr, evOpen, 1)
	res := openResult{}
	dnHost, known := d.mgr.fabric().HostOf(req.dn)
	switch {
	case !known:
		// Unknown datanode: fall back.
	case dnHost == d.host.Name:
		if m := d.mgr.mount(d.host.Name, req.dn); m != nil {
			if e, ok := m.Lookup(req.path); ok {
				res = openResult{ok: true, size: e.Size}
			}
		}
	default:
		res = d.mgr.remoteOpen(p, d, dnHost, req)
	}
	if !res.ok {
		d.emit(req.tr, evOpenMiss, 1)
	}
	req.tr.EndSpan(sp, 0)
	req.reply.Put(p, res)
}

// handleRead serves one read request into the ring.
func (d *Daemon) handleRead(p *sim.Proc, req ringReq) {
	dnHost, known := d.mgr.fabric().HostOf(req.dn)
	if !known {
		d.pushError(p, req.tr)
		return
	}
	if dnHost == d.host.Name {
		d.readLocal(p, req)
		return
	}
	d.readRemote(p, dnHost, req)
}

// readLocal reads from the loop-mounted image through the host page cache
// (or the raw device with DirectDiskBypass) and fills ring slots.
func (d *Daemon) readLocal(p *sim.Proc, req ringReq) {
	m := d.mgr.mount(d.host.Name, req.dn)
	if m == nil {
		d.pushError(p, req.tr)
		return
	}
	e, ok := m.Lookup(req.path)
	if !ok {
		d.pushError(p, req.tr)
		return
	}
	sp := req.tr.Begin(trace.LayerDaemon, "read-local")
	dnVM := d.mgr.cl.VM(req.dn)
	obj := dnVM.HostCacheObject(e.Node.Ino())
	key := req.dn + ":" + req.path
	batch := int64(d.cfg.EventBatchSlots) * d.cfg.SlotBytes
	for off := req.off; off < req.off+req.n; {
		want := req.off + req.n - off
		if want > batch {
			want = batch
		}
		d.hr.read(p, req.tr, obj, key, e.Size, off, want)
		s, err := m.ReadAt(req.path, off, want)
		if err == nil && d.cfg.Faults.Should(faults.DiskReadError) {
			req.tr.Event(trace.LayerDaemon, "fault:disk-error", 0)
			err = fsim.ErrStale
		}
		if err != nil {
			req.tr.EndSpan(sp, off-req.off)
			d.pushError(p, req.tr)
			return
		}
		if want > 1 && d.cfg.Faults.Should(faults.DiskReadTorn) {
			// Torn read: a prefix lands in the ring, then the stream ends.
			// libvread's byte-count check turns it into ErrShortRead and
			// retries — never silent truncation.
			req.tr.Event(trace.LayerDaemon, "fault:disk-torn", 0)
			torn := s.Sub(0, want/2)
			d.fillSlots(p, req.tr, torn, true)
			d.doorbell(p, req.tr)
			req.tr.EndSpan(sp, off-req.off+torn.Len())
			return
		}
		last := off+want == req.off+req.n
		d.fillSlots(p, req.tr, s, last)
		d.doorbell(p, req.tr)
		d.events.Add(evBytesLocal, want)
		off += want
	}
	req.tr.EndSpan(sp, req.n)
}

// readRemote pulls windows of the range from the peer daemon and relays the
// arriving chunks into the ring. With RDMA the payload lands in the SHM
// directly (no local per-byte cost); with TCP the local daemon pays a
// per-segment user-level receive cost (charged by the transport).
//
// Degradation: each chunk wait is bounded by RemoteReadTimeout and verified
// contiguous via its offset. A timeout, error chunk, or gap retires the
// window (finishRemote on every path — a dropped final chunk can never leave
// a blocked queue reader behind), notes the transport failure (RDMA pairs
// downgrade to TCP), and re-requests the remainder from the end of the
// delivered prefix — slots already in the ring are never re-sent, so the
// guest stream stays exact. MaxReadRetries exhausted → error slot → the
// guest falls back.
func (d *Daemon) readRemote(p *sim.Proc, dnHost string, req ringReq) {
	sp := req.tr.Begin(trace.LayerDaemon, "read-remote")
	req.tr.Annotate(sp, "peer", dnHost)
	retries := 0
	for off := req.off; off < req.off+req.n; {
		win := req.off + req.n - off
		if win > d.cfg.RemoteWindowBytes {
			win = d.cfg.RemoteWindowBytes
		}
		chunks := d.mgr.remoteRead(p, req.tr, d, dnHost, req.dn, req.path, off, win)
		var got int64
		failed := false
		for got < win {
			msg, ok := chunks.GetTimeout(p, d.cfg.RemoteReadTimeout)
			if !ok || msg.err || msg.off != off+got {
				failed = true
				break
			}
			last := off+got+msg.payload.Len() == req.off+req.n
			d.fillSlots(p, req.tr, msg.payload, last)
			got += msg.payload.Len()
			d.events.Add(evBytesRemote, msg.payload.Len())
		}
		d.mgr.finishRemote(chunks)
		if failed {
			d.mgr.noteRemoteFailureT(req.tr, d.host.Name, dnHost)
			retries++
			if retries > d.cfg.MaxReadRetries {
				req.tr.EndSpan(sp, off+got-req.off)
				d.pushError(p, req.tr)
				return
			}
			d.emit(req.tr, evRemoteRetry, 1)
			off += got // keep the delivered contiguous prefix
			continue
		}
		d.doorbell(p, req.tr)
		off += win
	}
	req.tr.EndSpan(sp, req.n)
}

// fillSlots splits a slice across ring slots, paying the per-slot lock cost
// as one batched charge (the per-byte copy into the ring is part of
// loopReadCycles locally, and of the transport cost remotely).
func (d *Daemon) fillSlots(p *sim.Proc, tr *trace.Trace, s data.Slice, last bool) {
	if stall, ok := d.cfg.Faults.ShouldDelay(faults.RingStall); ok {
		// Ring stall: the guest stops draining for a while. With the free
		// queue exhausted the daemon blocks on slot tokens — the ring's
		// natural backpressure — until the guest resumes.
		tr.Event(trace.LayerRing, "fault:ring-stall", 0)
		p.Sleep(stall)
	}
	d.thread.RunT(p, d.cfg.SlotLockCycles*d.ring.slotsFor(s.Len()), metrics.TagOthers, tr)
	for off := int64(0); off < s.Len(); {
		n := s.Len() - off
		if n > d.cfg.SlotBytes {
			n = d.cfg.SlotBytes
		}
		d.ring.free.Get(p)
		isLast := last && off+n == s.Len()
		d.ring.full.Put(p, ringSlot{s: s.Sub(off, n), last: isLast})
		off += n
	}
}

// doorbell signals the guest: eventfd on the daemon side, virtual interrupt
// on the vCPU. A lost doorbell (injected) costs the eventfd write but the
// interrupt only arrives when the guest driver's watchdog poll notices the
// filled slots — DoorbellWatchdog of extra latency, never a hang.
func (d *Daemon) doorbell(p *sim.Proc, tr *trace.Trace) {
	d.thread.RunT(p, d.cfg.EventFdCycles, metrics.TagOthers, tr)
	if d.cfg.Faults.Should(faults.RingDoorbellLost) {
		d.emit(tr, evDoorbellLost, 1)
		tr.Event(trace.LayerRing, "fault:doorbell-lost", 0)
		d.mgr.env.Schedule(d.cfg.DoorbellWatchdog, func() {
			d.vm.VCPU.PostT(d.cfg.GuestIRQCycles, metrics.TagOthers, tr, nil)
		})
		return
	}
	d.vm.VCPU.PostT(d.cfg.GuestIRQCycles, metrics.TagOthers, tr, nil)
}

// pushError aborts the in-flight read on the guest side.
func (d *Daemon) pushError(p *sim.Proc, tr *trace.Trace) {
	d.ring.free.Get(p)
	d.ring.full.Put(p, ringSlot{err: true, last: true})
	d.doorbell(p, tr)
}
