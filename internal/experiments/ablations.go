package experiments

import (
	"fmt"
	"time"

	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
)

// AblationRow is one measurement of a design-choice sweep.
type AblationRow struct {
	Study  string
	Config string
	Value  float64
	Unit   string
}

// RunAblationRingSlots sweeps the ring geometry (slot size × doorbell batch)
// and reports warm co-located read throughput — the §3.3/§4 design choice
// (1024 × 4 KiB slots, batched events).
func RunAblationRingSlots(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	type geom struct {
		slotBytes int64
		batch     int
	}
	geoms := []geom{
		{1 << 10, 32}, {4 << 10, 1}, {4 << 10, 32}, {4 << 10, 256}, {16 << 10, 32},
	}
	return runCells(opt, len(geoms), func(i int, o Options) ([]AblationRow, error) {
		g := geoms[i]
		o.VRead = true
		o.VReadConfig = &core.Config{SlotBytes: g.slotBytes, EventBatchSlots: g.batch}
		thr, err := warmReadThroughput(o, Colocated)
		if err != nil {
			return nil, err
		}
		return []AblationRow{{
			Study:  "ring-geometry",
			Config: fmt.Sprintf("slot=%dB batch=%d", g.slotBytes, g.batch),
			Value:  thr,
			Unit:   "MB/s warm read",
		}}, nil
	})
}

// RunAblationDirectRead compares the mounted-FS daemon path against §6's
// raw-device bypass: the bypass loses the host page cache, so re-reads
// collapse to disk speed.
func RunAblationDirectRead(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	return runCells(opt, 2, func(i int, o Options) ([]AblationRow, error) {
		bypass := i == 1
		o.VRead = true
		o.DirectDiskBypass = bypass
		thr, err := warmReadThroughput(o, Colocated)
		if err != nil {
			return nil, err
		}
		name := "mounted host FS"
		if bypass {
			name = "raw-device bypass"
		}
		return []AblationRow{{Study: "direct-read", Config: name, Value: thr, Unit: "MB/s warm read"}}, nil
	})
}

// RunAblationTransport compares remote-read throughput and daemon CPU
// between RDMA and TCP daemons (the §5.1 finding that motivates RoCE).
func RunAblationTransport(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	transports := []core.Transport{core.TransportRDMA, core.TransportTCP}
	return runCells(opt, len(transports), func(i int, o Options) ([]AblationRow, error) {
		tr := transports[i]
		o.VRead = true
		o.Transport = tr
		tb := NewTestbed(o)
		defer tb.Close()
		tb.Place(Remote)
		fileSize := o.scaled(1<<30, 64<<20)
		const path = "/bench/transport"
		var elapsed time.Duration
		if err := tb.Run("ablation-transport-"+tr.String(), time.Hour, func(p *sim.Proc) error {
			if err := tb.Client.WriteFile(p, path, data.Pattern{Seed: 4, Size: fileSize}); err != nil {
				return err
			}
			tb.DropAllCaches()
			tb.C.Reg.MarkWindow(tb.C.Env.Now())
			start := tb.C.Env.Now()
			if err := readAll(p, tb, path, 1<<20); err != nil {
				return err
			}
			elapsed = tb.C.Env.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
		cycles := tb.C.Reg.WindowEntityCycles(core.DaemonEntity("host1")) +
			tb.C.Reg.WindowEntityCycles(core.DaemonEntity("host2"))
		return []AblationRow{
			{Study: "remote-transport", Config: tr.String(), Value: metrics.Throughput(fileSize, elapsed), Unit: "MB/s cold read"},
			{Study: "remote-transport", Config: tr.String(), Value: float64(cycles) / 1e6, Unit: "daemon Mcycles"},
		}, nil
	})
}

// RunAblationShortCircuit compares the §2.2 alternatives for a co-located
// read: vanilla inter-VM, HDFS short-circuit (client inside the datanode
// VM), shared-memory networking (one copy removed), and vRead.
func RunAblationShortCircuit(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	variants := []string{"vanilla", "ivshmem-net", "vRead", "short-circuit (same VM)"}
	return runCells(opt, len(variants), func(i int, o Options) ([]AblationRow, error) {
		variant := variants[i]
		mk := func(thr float64) []AblationRow {
			return []AblationRow{{Study: "alternatives", Config: variant, Value: thr, Unit: "MB/s cold read"}}
		}

		// vanilla, shared-memory networking and vRead: standard testbed.
		if i < 3 {
			o.VRead = variant == "vRead"
			o.SharedMemNet = variant == "ivshmem-net"
			thr, err := coldReadThroughput(o, Colocated)
			if err != nil {
				return nil, err
			}
			return mk(thr), nil
		}

		// Short-circuit: the client runs inside the datanode VM (the
		// placement §2.2 argues against, as it penalizes everything
		// non-local).
		o.VRead = false
		o.ShortCircuit = true
		tb := NewTestbed(o)
		defer tb.Close()
		scClient := hdfs.NewClient(tb.C.Env, tb.NS, tb.C.VM("dn1").Kernel)
		tb.Place(Colocated)
		fileSize := o.scaled(1<<30, 64<<20)
		var elapsed time.Duration
		if err := tb.Run("ablation-shortcircuit", time.Hour, func(p *sim.Proc) error {
			if err := scClient.WriteFile(p, "/bench/sc", data.Pattern{Seed: 5, Size: fileSize}); err != nil {
				return err
			}
			tb.DropAllCaches()
			start := tb.C.Env.Now()
			r, err := scClient.Open(p, "/bench/sc")
			if err != nil {
				return err
			}
			defer r.Close(p)
			if _, err := r.ReadFull(p, fileSize); err != nil {
				return err
			}
			elapsed = tb.C.Env.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
		return mk(metrics.Throughput(fileSize, elapsed)), nil
	})
}

// RunAblationSRIOV reproduces §6's modern-hardware discussion: SR-IOV
// passthrough NICs speed up the wire but leave the datanode VM on the data
// path, so vRead's advantage persists — and the two compose (vRead+SR-IOV).
func RunAblationSRIOV(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	type variant struct {
		name  string
		vread bool
		sriov bool
	}
	type cell struct {
		v        variant
		scenario Scenario
	}
	var cells []cell
	for _, v := range []variant{
		{"vanilla virtio", false, false},
		{"vanilla + SR-IOV", false, true},
		{"vRead", true, false},
		{"vRead + SR-IOV", true, true},
	} {
		for _, scenario := range []Scenario{Colocated, Remote} {
			cells = append(cells, cell{v, scenario})
		}
	}
	return runCells(opt, len(cells), func(i int, o Options) ([]AblationRow, error) {
		v, scenario := cells[i].v, cells[i].scenario
		o.VRead = v.vread
		o.SRIOV = v.sriov
		thr, err := coldReadThroughput(o, scenario)
		if err != nil {
			return nil, err
		}
		return []AblationRow{{
			Study:  "sriov-interplay",
			Config: fmt.Sprintf("%s, %s", v.name, scenario),
			Value:  thr,
			Unit:   "MB/s cold read",
		}}, nil
	})
}

// readAll streams the file sequentially with the given buffer.
func readAll(p *sim.Proc, tb *Testbed, path string, buf int64) error {
	r, err := tb.Client.Open(p, path)
	if err != nil {
		return err
	}
	defer r.Close(p)
	_, err = hdfsReadToEOF(p, r, buf)
	return err
}

func hdfsReadToEOF(p *sim.Proc, r *hdfs.FileReader, buf int64) (int64, error) {
	var total int64
	for total < r.Size() {
		s, err := r.Read(p, buf)
		if err != nil {
			return total, err
		}
		total += s.Len()
	}
	return total, nil
}

// coldReadThroughput writes a 1 GB (scaled) file, drops caches, and streams it.
func coldReadThroughput(opt Options, scenario Scenario) (float64, error) {
	return measureThroughput(opt, scenario, false)
}

// warmReadThroughput measures the second (cached) read.
func warmReadThroughput(opt Options, scenario Scenario) (float64, error) {
	return measureThroughput(opt, scenario, true)
}

func measureThroughput(opt Options, scenario Scenario, warm bool) (float64, error) {
	tb := NewTestbed(opt)
	defer tb.Close()
	tb.Place(scenario)
	fileSize := opt.scaled(1<<30, 64<<20)
	const path = "/bench/thr"
	var elapsed time.Duration
	if err := tb.Run("throughput", time.Hour, func(p *sim.Proc) error {
		if err := tb.Client.WriteFile(p, path, data.Pattern{Seed: 3, Size: fileSize}); err != nil {
			return err
		}
		tb.DropAllCaches()
		if warm {
			if err := readAll(p, tb, path, 1<<20); err != nil {
				return err
			}
		}
		start := tb.C.Env.Now()
		if err := readAll(p, tb, path, 1<<20); err != nil {
			return err
		}
		elapsed = tb.C.Env.Now() - start
		return nil
	}); err != nil {
		return 0, err
	}
	return metrics.Throughput(fileSize, elapsed), nil
}
