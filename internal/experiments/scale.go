package experiments

import (
	"errors"
	"fmt"
	"time"

	"vread/internal/cluster"
	"vread/internal/core"
	"vread/internal/data"
	"vread/internal/faults"
	"vread/internal/hdfs"
	"vread/internal/metrics"
	"vread/internal/sim"
	"vread/internal/trace"
	"vread/internal/workload"
)

// ScaleConfig describes a datacenter-scale scenario: a federated namespace
// over a multi-domain topology, driven by an open-loop read storm, with an
// optional mid-storm rack kill. Zero values select a small smoke-sized
// federation; the acceptance shape (1000 hosts, 4 shards, RF 3) is just
// bigger numbers.
type ScaleConfig struct {
	// Topology: Domains × RacksPerDomain × HostsPerRack hosts.
	// Defaults 3 × 2 × 2.
	Domains        int
	RacksPerDomain int
	HostsPerRack   int
	// Shards is the namespace shard count. Default 4.
	Shards int
	// Replication is the write-pipeline depth (ring replica count).
	// Default 3.
	Replication int
	// VNodes per ring member. Default hdfs.DefaultVNodes.
	VNodes int
	// Datanodes is the datanode VM count, spread round-robin across racks.
	// Default 6.
	Datanodes int
	// Clients is the client VM count, placed in the last domain (so a rack
	// kill in an earlier domain never kills the readers). Default 2.
	Clients int
	// Files written before the storm. Default 6 (each one block).
	Files int
	// FileSize in bytes. Default 256 KiB.
	FileSize int64
	// QPSLevels are the open-loop arrival rates — one experiment cell per
	// level. Default {2000}.
	QPSLevels []float64
	// Reads is the arrival count per cell. Default 60.
	Reads int
	// KillRack names the rack a rack.kill firing takes down ("" = the
	// fault is never evaluated). Arm the rack.kill point via
	// Options.Faults, e.g. "rack.kill:after=30,max=1".
	KillRack string
	// Deadline bounds each cell in virtual time. Default 1h.
	Deadline time.Duration
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Domains == 0 {
		c.Domains = 3
	}
	if c.RacksPerDomain == 0 {
		c.RacksPerDomain = 2
	}
	if c.HostsPerRack == 0 {
		c.HostsPerRack = 2
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.Datanodes == 0 {
		c.Datanodes = 6
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.Files == 0 {
		c.Files = 6
	}
	if c.FileSize == 0 {
		c.FileSize = 256 << 10
	}
	if len(c.QPSLevels) == 0 {
		c.QPSLevels = []float64{2000}
	}
	if c.Reads == 0 {
		c.Reads = 60
	}
	if c.Deadline == 0 {
		c.Deadline = time.Hour
	}
	return c
}

// SLORow is one p50/p95/p99 read-latency row of a scale run.
type SLORow struct {
	Cell        string  `json:"cell"`  // e.g. "qps=2000"
	Phase       string  `json:"phase"` // "steady" | "degraded"
	QPS         float64 `json:"qps"`
	Arrivals    int     `json:"arrivals"`
	OKs         int     `json:"oks"`
	TypedErrors int     `json:"typed_errors"`
	P50us       int64   `json:"p50_us"`
	P95us       int64   `json:"p95_us"`
	P99us       int64   `json:"p99_us"`
	MaxUs       int64   `json:"max_us"`
}

// String renders the row for terminal output (deterministic).
func (r SLORow) String() string {
	return fmt.Sprintf("%-12s %-9s qps=%-7g arrivals=%-4d ok=%-4d typed=%-3d p50=%dµs p95=%dµs p99=%dµs max=%dµs",
		r.Cell, r.Phase, r.QPS, r.Arrivals, r.OKs, r.TypedErrors, r.P50us, r.P95us, r.P99us, r.MaxUs)
}

// RenderSLORows renders rows one per line — the byte-identity witness the
// serial-vs-parallel determinism contract is checked against.
func RenderSLORows(rows []SLORow) string {
	out := ""
	for _, r := range rows {
		out += r.String() + "\n"
	}
	return out
}

// RunScale runs one experiment cell per QPS level — each a fresh federated
// testbed driven by an open-loop storm — and returns SLO rows in cell order
// ("steady" phase, plus "degraded" after a mid-storm rack kill). Cells run
// under the standard parallel fan-out; rows are byte-identical between
// serial and parallel runs.
func RunScale(opt Options, sc ScaleConfig) ([]SLORow, error) {
	opt = opt.withDefaults()
	sc = sc.withDefaults()
	return runCells(opt, len(sc.QPSLevels), func(i int, o Options) ([]SLORow, error) {
		return runScaleCell(o, sc, sc.QPSLevels[i])
	})
}

// runScaleCell builds the federation and drives one storm at one QPS level.
func runScaleCell(opt Options, sc ScaleConfig, qps float64) ([]SLORow, error) {
	c := cluster.New(opt.Seed, cluster.Params{FreqHz: opt.FreqHz})
	defer c.Close()
	spec := cluster.TopologySpec{
		Domains:        sc.Domains,
		RacksPerDomain: sc.RacksPerDomain,
		HostsPerRack:   sc.HostsPerRack,
	}
	hosts := c.BuildTopology(spec)
	racks := c.Racks()

	plan := faults.NewPlan(c.Env)
	c.InjectFaults(plan)
	c.Fabric.InjectFaults(plan)
	for _, h := range hosts {
		h.Disk.InjectFaults(plan)
	}

	// Datanode VMs round-robin across racks (first hosts of each rack);
	// client VMs on the tail hosts of the last domain, away from any
	// earlier-domain rack kill.
	dnNames := make([]string, sc.Datanodes)
	for i := range dnNames {
		rack := racks[i%len(racks)]
		rh := c.RackHosts(rack)
		host := rh[(i/len(racks))%len(rh)]
		dnNames[i] = fmt.Sprintf("dn%d", i)
		host.AddVM(dnNames[i], metrics.TagDatanodeApp)
	}
	clientNames := make([]string, sc.Clients)
	for j := range clientNames {
		host := hosts[len(hosts)-1-j%spec.HostsPerRack]
		clientNames[j] = fmt.Sprintf("c%d", j)
		host.AddVM(clientNames[j], metrics.TagClientApp)
	}

	hcfg := hdfs.Config{Replication: sc.Replication}
	if opt.BlockSize != 0 {
		hcfg.BlockSize = opt.BlockSize
	}
	router := hdfs.NewRouter(c.Env, hcfg, c.Fabric, hdfs.RouterOptions{
		Shards:   sc.Shards,
		RingSeed: opt.Seed,
		VNodes:   sc.VNodes,
	})
	router.InjectFaults(plan)
	for _, dn := range dnNames {
		hdfs.StartDataNode(c.Env, router, c.VM(dn).Kernel)
	}
	clients := make([]*hdfs.Client, sc.Clients)
	for j, name := range clientNames {
		clients[j] = hdfs.NewClient(c.Env, router, c.VM(name).Kernel)
	}

	vcfg := core.Config{Transport: opt.Transport, Faults: plan}
	if opt.VReadConfig != nil {
		vcfg = *opt.VReadConfig
		vcfg.Transport = opt.Transport
		vcfg.Faults = plan
	}
	mgr := core.NewManager(c, router, vcfg)
	for _, dn := range dnNames {
		mgr.MountDatanode(dn)
	}
	libs := make([]*core.Lib, sc.Clients)
	for j, name := range clientNames {
		libs[j] = mgr.EnableClient(name)
		clients[j].SetBlockReader(libs[j])
	}

	tracer := trace.NewTracer(c.Env, 1)
	contents := make([]data.Pattern, sc.Files)
	blocks := make([][]hdfs.BlockInfo, sc.Files)
	filePath := func(i int) string { return fmt.Sprintf("/scale/f%d", i) }

	killed := false
	var results []workload.OpResult
	var stormErr error
	done := false
	c.Go("scale-storm", func(p *sim.Proc) {
		defer func() { done = true }()
		// Quiet phase: write the dataset through the federation before any
		// faultpoint arms, so every later failure has known bytes to check.
		for i := range contents {
			contents[i] = data.Pattern{Seed: uint64(opt.Seed)*1000 + uint64(i), Size: sc.FileSize}
			if err := clients[0].WriteFile(p, filePath(i), contents[i]); err != nil {
				stormErr = fmt.Errorf("write f%d: %w", i, err)
				return
			}
			var err error
			blocks[i], err = router.GetBlockLocations(p, clients[0].Kernel(), filePath(i))
			if err != nil {
				stormErr = fmt.Errorf("locate f%d: %w", i, err)
				return
			}
		}
		for _, r := range opt.Faults {
			plan.Set(r)
		}

		results = workload.RunOpenLoop(p, c.Env, workload.OpenLoopConfig{
			QPS:      qps,
			Arrivals: sc.Reads,
		}, func(op *sim.Proc, i int) string {
			if sc.KillRack != "" && c.MaybeKillRack(sc.KillRack) {
				killed = true
			}
			phase := "steady"
			if killed {
				phase = "degraded"
			}
			return phase + "/" + scaleRead(op, c, router, libs, clients, tracer, contents, blocks, sc, i)
		})
	})
	if err := c.Env.RunUntil(c.Env.Now() + sc.Deadline); err != nil {
		return nil, fmt.Errorf("scale qps=%g: %w", qps, err)
	}
	if stormErr != nil {
		return nil, stormErr
	}
	if !done {
		return nil, fmt.Errorf("scale qps=%g: storm wedged (deadline %v)", qps, sc.Deadline)
	}
	if pend := c.Env.Pending(); pend != 0 {
		return nil, fmt.Errorf("scale qps=%g: %d events still pending after drain", qps, pend)
	}
	if pend := mgr.PendingRemoteReads(); pend != 0 {
		return nil, fmt.Errorf("scale qps=%g: %d remote reads leaked", qps, pend)
	}
	for _, tr := range tracer.Traces() {
		for _, s := range tr.Spans {
			if s.End < s.Start {
				return nil, fmt.Errorf("scale qps=%g: %s: span %s/%s never closed", qps, tr.Name, s.Layer, s.Name)
			}
		}
	}

	cell := fmt.Sprintf("qps=%g", qps)
	var rows []SLORow
	for _, phase := range []string{"steady", "degraded"} {
		row := SLORow{Cell: cell, Phase: phase, QPS: qps}
		for _, r := range results {
			switch r.Label {
			case phase + "/ok":
				row.OKs++
			case phase + "/typed":
				row.TypedErrors++
			case phase + "/corrupt", phase + "/untyped":
				return nil, fmt.Errorf("scale qps=%g: invariant broken: %s outcome", qps, r.Label)
			default:
				continue
			}
			row.Arrivals++
		}
		if row.Arrivals == 0 {
			continue
		}
		slo := workload.SLOOf(results, phase+"/ok")
		row.P50us = slo.P50.Microseconds()
		row.P95us = slo.P95.Microseconds()
		row.P99us = slo.P99.Microseconds()
		row.MaxUs = slo.Max.Microseconds()
		rows = append(rows, row)
	}
	return rows, nil
}

// scaleRead performs one storm read: deterministic file/range choice from
// the arrival index, metadata through the federation router, then the vRead
// path with replica failover in location order. Outcomes: "ok" (correct
// bytes), "typed" (typed error / all replicas unavailable), "corrupt",
// "untyped" (both invariant violations).
func scaleRead(op *sim.Proc, c *cluster.Cluster, router *hdfs.Router,
	libs []*core.Lib, clients []*hdfs.Client, tracer *trace.Tracer,
	contents []data.Pattern, blocks [][]hdfs.BlockInfo, sc ScaleConfig, i int) string {
	fileIdx := i % sc.Files
	ci := i % sc.Clients
	size := sc.FileSize
	off := int64(i*7919) % (size - 1)
	n := size - off
	if n > 64<<10 {
		n = 64 << 10
	}
	want := data.NewSlice(contents[fileIdx]).Sub(off, n)

	tr := tracer.Request(fmt.Sprintf("scale-read-%d", i))
	defer tr.Finish(n)

	// Metadata through the router: bills the RPC and evaluates shard.kill.
	infos, err := router.GetBlockLocations(op, clients[ci].Kernel(), fmt.Sprintf("/scale/f%d", fileIdx))
	if err != nil {
		if errors.Is(err, hdfs.ErrShardDown) {
			return "typed"
		}
		return "untyped"
	}
	blk := infos[0] // files are single-block at these sizes

	sawUntyped := false
	for _, loc := range blk.Locations {
		vfd, ok := libs[ci].OpenPath(op, tr, loc, hdfs.BlockPath(blk.ID), blk.ID.BlockName())
		if !ok {
			continue // replica unreachable (dead rack, crashed daemon) — fail over
		}
		got, err := vfd.ReadAt(op, tr, off, n)
		vfd.Close(op, tr)
		switch {
		case err == nil:
			if data.Equal(got, want) {
				return "ok"
			}
			return "corrupt"
		case errors.Is(err, core.ErrDaemonFailed), errors.Is(err, core.ErrShortRead),
			errors.Is(err, core.ErrRingClosed), errors.Is(err, core.ErrBadRange):
			continue // typed failure — fail over to the next replica
		default:
			sawUntyped = true
		}
	}
	if sawUntyped {
		return "untyped"
	}
	return "typed" // every replica failed with a typed error or open miss
}
